/**
 * @file
 * Quickstart: boot Browsix, run shell pipelines (the kernel.system flow
 * of Figure 4), inspect the shared filesystem, and run programs from
 * three different language runtimes in one session.
 */
#include <cstdio>

#include "core/browsix.h"

int
main()
{
    // Boot a kernel over an in-memory filesystem with the standard
    // executables staged (/bin/sh, /usr/bin/{cat,ls,grep,...,node,make}).
    browsix::Browsix bx;

    std::printf("== hello, pipes ==\n");
    auto r = bx.run("echo hello from browsix | wc");
    std::printf("$ echo hello from browsix | wc\n%s", r.out.c_str());

    std::printf("\n== shared filesystem ==\n");
    r = bx.run("mkdir /tmp/demo && echo 'b\\na\\nc' > /tmp/demo/f && "
               "sort /tmp/demo/f");
    std::printf("$ sort /tmp/demo/f\n%s", r.out.c_str());

    std::printf("\n== processes in three runtimes ==\n");
    // Node.js utility:
    r = bx.run("sha1sum /bin/dash | head -n 1");
    std::printf("$ sha1sum /bin/dash (browser-node)\n%s", r.out.c_str());
    // Emterpreter bytecode with real fork():
    r = bx.run("forktest");
    std::printf("$ forktest (Emterpreter, fork via memory+PC snapshot)\n%s",
                r.out.c_str());
    // A compute kernel interpreted by the Emterpreter VM:
    r = bx.run("primes");
    std::printf("$ primes (interpreted bytecode): %s", r.out.c_str());

    std::printf("\n== exit codes & signals ==\n");
    r = bx.run("false || echo 'false failed as expected'");
    std::printf("%s", r.out.c_str());

    std::printf("\nquickstart done.\n");
    return 0;
}
