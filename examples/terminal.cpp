/**
 * @file
 * The Browsix terminal case study (§5.1.2): a POSIX shell (our dash
 * equivalent) driving the Unix utility set, with pipes, redirection,
 * environment variables, background jobs, and programs from all the
 * supported language runtimes.
 *
 * Run with arguments to execute your own command, e.g.:
 *   ./terminal "ls /usr/bin | head -n 5"
 */
#include <cstdio>

#include "core/browsix.h"

int
main(int argc, char **argv)
{
    browsix::Browsix bx;
    bx.rootFs().writeFile("/home/file.txt",
                          std::string("apple pie\nbanana\napple sauce\n"));

    auto shell = [&](const std::string &cmd) {
        std::printf("browsix$ %s\n", cmd.c_str());
        auto r = bx.run(cmd, 60000);
        std::fputs(r.out.c_str(), stdout);
        std::fputs(r.err.c_str(), stderr);
        if (r.exitCode() != 0)
            std::printf("[exit %d]\n", r.exitCode());
    };

    if (argc > 1) {
        for (int i = 1; i < argc; i++)
            shell(argv[i]);
        return 0;
    }

    // A scripted session exercising the terminal's feature set.
    shell("ls /usr/bin | head -n 8");
    shell("cd /home && cat file.txt | grep apple > apples.txt && "
          "wc apples.txt");
    shell("echo $HOME and pid $$");
    shell("export NAME=browsix; env | grep NAME");
    shell("seq 5 | sort -r | xargs echo countdown:");
    shell("sha1sum /home/file.txt");
    shell("forktest");
    shell("primes | tee /tmp/primes.out");
    shell("[ -f /tmp/primes.out ] && echo 'tee wrote the file'");
    shell("false || echo 'short-circuit works'");
    return 0;
}
