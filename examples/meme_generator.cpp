/**
 * @file
 * The meme-generator case study (§5.1.1): the unmodified Go server runs
 * as a Browsix process; the web application routes requests either to it
 * (offline / powerful device) or to a remote server across a simulated
 * WAN, using the same XMLHttpRequest-like interface for both.
 */
#include <cstdio>

#include "apps/meme/png.h"
#include "apps/meme/server.h"
#include "core/browsix.h"
#include "jsvm/util.h"
#include "net/netsim.h"

using namespace browsix;

int
main()
{
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);

    // Launch the GopherJS-compiled server in Browsix and wait for the
    // socket notification (§4.1) instead of polling.
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8080"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    if (!bx.waitForPort(8080, 15000)) {
        std::printf("server failed to start\n");
        return 1;
    }
    std::printf("meme-server listening on 8080 (in-Browsix)\n");

    // The remote deployment: same handler, native int64, WAN away.
    apps::MemeTemplates native_templates;
    uint32_t seed = 11;
    for (const auto &name : apps::memeTemplateNames()) {
        native_templates.images[name] = apps::makeTemplateImage(320, 240,
                                                                seed);
        seed = seed * 31 + 7;
    }
    net::SimulatedRemoteServer remote(
        &bx.browser().mainLoop(), net::LinkParams::ec2(),
        [&](const net::HttpRequest &req) {
            return apps::handleMemeRequest<int64_t>(native_templates, req);
        });

    auto via_browsix = [&](const net::HttpRequest &req,
                           net::HttpResponse &out) {
        auto x = bx.xhr(8080, req, 60000);
        out = x.response;
        return x.err;
    };
    auto via_remote = [&](const net::HttpRequest &req,
                          net::HttpResponse &out) {
        bool done = false;
        int err = 0;
        remote.request(req, [&](int e, net::HttpResponse r) {
            err = e;
            out = std::move(r);
            done = true;
        });
        bx.runUntil([&]() { return done; }, 60000);
        return err;
    };

    // The dynamic routing policy (§5.1.1): offline or powerful device ->
    // in-Browsix; otherwise remote.
    for (bool offline : {false, true}) {
        bool use_local = offline; // the paper also checks device class
        std::printf("\n[policy] network %s -> %s server\n",
                    offline ? "unavailable" : "available",
                    use_local ? "in-Browsix" : "remote");

        net::HttpRequest list;
        list.target = "/api/images";
        net::HttpResponse resp;
        int64_t t0 = jsvm::nowUs();
        int err = use_local ? via_browsix(list, resp)
                            : via_remote(list, resp);
        std::printf("GET /api/images -> %d in %.2f ms: %s\n", resp.status,
                    (jsvm::nowUs() - t0) / 1000.0,
                    err == 0 ? std::string(resp.body.begin(),
                                           resp.body.end())
                                   .c_str()
                             : "error");

        net::HttpRequest gen;
        gen.target =
            "/api/meme?template=doge&top=MUCH%20UNIX&bottom=SUCH%20WOW";
        t0 = jsvm::nowUs();
        err = use_local ? via_browsix(gen, resp) : via_remote(gen, resp);
        bool valid = err == 0 && apps::validatePng(resp.body);
        std::printf("GET /api/meme -> %d in %.2f ms (%zu bytes, png %s)\n",
                    resp.status, (jsvm::nowUs() - t0) / 1000.0,
                    resp.body.size(), valid ? "valid" : "INVALID");
    }
    std::printf("\nmeme generation works offline, from unmodified server "
                "code.\n");
    return 0;
}
