/**
 * @file
 * The LaTeX editor case study (§2): an "editor" whose Build-PDF button
 * invokes `make` inside Browsix; pdflatex and bibtex read packages from
 * the lazily-fetched TeX Live tree and write the PDF into the shared
 * filesystem, with stdout/stderr streamed back to the application.
 *
 * Runs the build twice to show the browser-cache effect on the lazy
 * HTTP-backed filesystem (cold vs warm).
 */
#include <cstdio>

#include "core/browsix.h"
#include "jsvm/util.h"

using namespace browsix;

namespace {

void
buildPdf(Browsix &bx, const char *label)
{
    std::string console;
    bool exited = false;
    int status = 0;
    int64_t t0 = jsvm::nowUs();
    // Figure 4: kernel.system with exit/stdout/stderr callbacks.
    bx.kernel().system(
        "cd /home && /usr/bin/make",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { console.append(d.begin(), d.end()); },
        [&](const bfs::Buffer &d) { console.append(d.begin(), d.end()); });
    bx.runUntil([&]() { return exited; }, 120000);
    double ms = (jsvm::nowUs() - t0) / 1000.0;

    std::printf("--- %s build: %.1f ms, exit %d ---\n", label, ms,
                sys::wexitstatus(status));
    std::printf("%s", console.c_str());
    if (sys::wexitstatus(status) == 0) {
        bfs::Buffer pdf;
        bx.fs().readFileSync("/home/main.pdf", pdf);
        std::printf("[editor] displaying main.pdf (%zu bytes)\n",
                    pdf.size());
    } else {
        std::printf("[editor] build failed; showing the log above\n");
    }
}

} // namespace

int
main()
{
    BootConfig cfg;
    cfg.texlive = true;
    cfg.texPackages = 60;
    // Model the TeX Live server across a real network so laziness and
    // caching matter (20 ms RTT, ~50 Mbit/s).
    cfg.texliveNet = bfs::NetworkParams{20000, 6.25};
    Browsix bx(cfg);

    std::printf("staged project: /home/main.tex, /home/main.bib, "
                "/home/Makefile\n\n");

    buildPdf(bx, "cold (packages fetched lazily over HTTP)");
    std::printf("\n[network] fetches=%llu bytes=%llu\n\n",
                static_cast<unsigned long long>(
                    bx.texliveHttp()->fetchCount()),
                static_cast<unsigned long long>(
                    bx.texliveHttp()->bytesFetched()));

    // Edit the document (the user types), then rebuild: make re-runs
    // pdflatex, but every package now comes from the browser cache.
    bx.run("cd /home && echo 'one more paragraph here' >> main.tex");
    uint64_t before = bx.texliveHttp()->fetchCount();
    buildPdf(bx, "warm (browser cache)");
    std::printf("\n[network] additional fetches=%llu\n",
                static_cast<unsigned long long>(
                    bx.texliveHttp()->fetchCount() - before));
    return 0;
}
