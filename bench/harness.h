/**
 * @file
 * Shared benchmark harness: timing helpers, and NodeDirectApi — the
 * paper's "Node.js on Linux" configuration (Figure 9's middle column):
 * the same utility code, the same JavaScript costs (bundle parse, JS
 * arithmetic), but the C++ bindings call the filesystem directly instead
 * of making Browsix syscalls.
 */
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "apps/coreutils/coreutils.h"
#include "bfs/path.h"
#include "core/browsix.h"
#include "jsvm/util.h"
#include "runtime/node/node_runtime.h"

namespace browsix {
namespace bench {

/** Milliseconds elapsed running fn. */
inline double
timeMs(const std::function<void()> &fn)
{
    int64_t t0 = jsvm::nowUs();
    fn();
    return (jsvm::nowUs() - t0) / 1000.0;
}

struct Series
{
    std::vector<double> samples;

    void add(double v) { samples.push_back(v); }
    double
    mean() const
    {
        if (samples.empty())
            return 0;
        return std::accumulate(samples.begin(), samples.end(), 0.0) /
               samples.size();
    }
    double
    min() const
    {
        return samples.empty()
                   ? 0
                   : *std::min_element(samples.begin(), samples.end());
    }
};

/**
 * True when BROWSIX_BENCH_SMOKE is set: the `bench-smoke` ctest label
 * runs every benchmark this way — one un-warmed iteration, enough to
 * prove the workload still executes without paying for stable numbers.
 */
inline bool
smokeMode()
{
    static const bool v = []() {
        const char *s = std::getenv("BROWSIX_BENCH_SMOKE");
        return s && *s && std::string(s) != "0";
    }();
    return v;
}

/**
 * Machine-readable results: when BROWSIX_BENCH_JSON names a directory,
 * every metric recorded via recordMetric() is written to
 * `<dir>/<bench>.json` at process exit as
 *   {"bench": "...", "metrics": [{"name": ..., "value": ..., "unit":
 *   ...}, ...]}
 * — the per-bench JSON the CI uploads as its `bench-results` artifact so
 * successive PRs accumulate a perf trajectory. A no-op when the variable
 * is unset (interactive runs keep their human-readable tables).
 */
inline void
recordMetric(const std::string &bench, const std::string &name,
             double value, const std::string &unit = "us")
{
    struct Row
    {
        std::string name;
        double value;
        std::string unit;
    };
    struct Sink
    {
        // Keyed by bench name: a binary recording under several names
        // gets one correctly-labelled file per name.
        std::map<std::string, std::vector<Row>> benches;

        ~Sink()
        {
            const char *dir = std::getenv("BROWSIX_BENCH_JSON");
            if (!dir || !*dir)
                return;
            for (const auto &[bench, rows] : benches) {
                std::string path =
                    std::string(dir) + "/" + bench + ".json";
                std::FILE *f = std::fopen(path.c_str(), "w");
                if (!f)
                    continue;
                std::fprintf(f, "{\"bench\": \"%s\", \"metrics\": [",
                             bench.c_str());
                for (size_t i = 0; i < rows.size(); i++) {
                    std::fprintf(
                        f,
                        "%s\n  {\"name\": \"%s\", \"value\": %.6g, "
                        "\"unit\": \"%s\"}",
                        i ? "," : "", rows[i].name.c_str(), rows[i].value,
                        rows[i].unit.c_str());
                }
                std::fprintf(f, "\n]}\n");
                std::fclose(f);
            }
        }
    };
    static Sink sink;
    sink.benches[bench].push_back(Row{name, value, unit});
}

/**
 * Serialize a kernel latency histogram through recordMetric: one row
 * each for p50/p99/mean/max (µs) plus the sample count, named
 * "<prefix>.p50" and so on. The JSON schema stays the plain
 * {"name", "value", "unit"} rows documented in BUILDING.md
 * ("Histogram JSON").
 */
inline void
recordHistogram(const std::string &bench, const std::string &prefix,
                const kernel::LatencyHistogram &h)
{
    recordMetric(bench, prefix + ".p50",
                 static_cast<double>(h.percentileUs(50)), "us");
    recordMetric(bench, prefix + ".p99",
                 static_cast<double>(h.percentileUs(99)), "us");
    recordMetric(bench, prefix + ".mean", h.meanUs(), "us");
    recordMetric(bench, prefix + ".max", static_cast<double>(h.maxUs),
                 "us");
    recordMetric(bench, prefix + ".count", static_cast<double>(h.count),
                 "calls");
}

/** Repeat fn `warmup + runs` times; collect the timed runs. */
inline Series
measure(int warmup, int runs, const std::function<void()> &fn)
{
    if (smokeMode()) {
        warmup = 0;
        runs = runs > 0 ? 1 : runs;
    }
    Series s;
    for (int i = 0; i < warmup; i++)
        fn();
    for (int i = 0; i < runs; i++)
        s.add(timeMs(fn));
    return s;
}

/**
 * Node bindings that skip the kernel: direct VFS access, inline
 * completion. Everything JavaScript about Node is still charged by the
 * caller (bundle parse, sha1Js); only the OS underneath differs.
 */
class NodeDirectApi : public rt::NodeApi,
                      public std::enable_shared_from_this<NodeDirectApi>
{
  public:
    NodeDirectApi(bfs::Vfs &vfs, std::vector<std::string> args)
        : vfs_(vfs)
    {
        argv = std::move(args);
        env["PATH"] = "/usr/bin:/bin";
        pid = 1;
    }

    int exitCode = -1;
    std::string out;
    std::string errOut;

    void
    readFile(const std::string &path, DataCb cb) override
    {
        bfs::Buffer data;
        int rc = vfs_.readFileSync(bfs::joinPath(cwd, path), data);
        cb(rc, std::move(data));
    }

    void
    writeFile(const std::string &path, bfs::Buffer data, VoidCb cb) override
    {
        int rc = -1;
        vfs_.writeFile(bfs::joinPath(cwd, path), std::move(data),
                       [&](int err) { rc = err; });
        if (cb)
            cb(rc);
    }

    void
    appendFile(const std::string &path, bfs::Buffer data, VoidCb cb) override
    {
        bfs::Buffer existing;
        vfs_.readFileSync(bfs::joinPath(cwd, path), existing);
        existing.insert(existing.end(), data.begin(), data.end());
        writeFile(path, std::move(existing), std::move(cb));
    }

    void
    readdir(const std::string &path, NamesCb cb) override
    {
        vfs_.readdir(bfs::joinPath(cwd, path),
                     [&](int err, std::vector<bfs::DirEntry> es) {
                         std::vector<std::string> names;
                         for (auto &e : es)
                             names.push_back(e.name);
                         cb(err, std::move(names));
                     });
    }

    void
    stat(const std::string &path, StatCb cb) override
    {
        bfs::Stat st;
        int rc = vfs_.statSync(bfs::joinPath(cwd, path), st);
        cb(rc, sys::statXFromBfs(st));
    }

    void
    lstat(const std::string &path, StatCb cb) override
    {
        vfs_.lstat(bfs::joinPath(cwd, path),
                   [&](int err, const bfs::Stat &st) {
                       cb(err, sys::statXFromBfs(st));
                   });
    }

    void
    unlink(const std::string &path, VoidCb cb) override
    {
        vfs_.unlink(bfs::joinPath(cwd, path),
                    [&](int err) {
                        if (cb)
                            cb(err);
                    });
    }

    void
    mkdir(const std::string &path, VoidCb cb) override
    {
        vfs_.mkdir(bfs::joinPath(cwd, path), 0755, [&](int err) {
            if (cb)
                cb(err);
        });
    }

    void
    rmdir(const std::string &path, VoidCb cb) override
    {
        vfs_.rmdir(bfs::joinPath(cwd, path), [&](int err) {
            if (cb)
                cb(err);
        });
    }

    void
    rename(const std::string &from, const std::string &to,
           VoidCb cb) override
    {
        vfs_.rename(bfs::joinPath(cwd, from), bfs::joinPath(cwd, to),
                    [&](int err) {
                        if (cb)
                            cb(err);
                    });
    }

    void
    utimes(const std::string &path, int64_t at, int64_t mt,
           VoidCb cb) override
    {
        vfs_.utimes(bfs::joinPath(cwd, path), at, mt, [&](int err) {
            if (cb)
                cb(err);
        });
    }

    void
    open(const std::string &path, int oflags, IntCb cb) override
    {
        bfs::OpenFilePtr f;
        int rc = -1;
        vfs_.open(bfs::joinPath(cwd, path), oflags, 0644,
                  [&](int err, bfs::OpenFilePtr file) {
                      rc = err;
                      f = std::move(file);
                  });
        if (rc != 0) {
            cb(-rc);
            return;
        }
        int fd = nextFd_++;
        files_[fd] = OpenState{f, 0};
        cb(fd);
    }

    void
    read(int fd, size_t n, DataCb cb) override
    {
        auto it = files_.find(fd);
        if (it == files_.end()) {
            cb(EBADF, {});
            return;
        }
        OpenState &st = it->second;
        bfs::Buffer out_data;
        int rc = -1;
        st.file->pread(st.offset, n, [&](int err, bfs::BufferPtr data) {
            rc = err;
            if (data)
                out_data = *data;
        });
        st.offset += out_data.size();
        cb(rc, std::move(out_data));
    }

    void
    write(int fd, bfs::Buffer data, IntCb cb) override
    {
        auto it = files_.find(fd);
        if (it == files_.end()) {
            if (cb)
                cb(-EBADF);
            return;
        }
        OpenState &st = it->second;
        size_t n = 0;
        st.file->pwrite(st.offset, data.data(), data.size(),
                        [&](int, size_t written) { n = written; });
        st.offset += n;
        if (cb)
            cb(static_cast<int64_t>(n));
    }

    void
    close(int fd, VoidCb cb) override
    {
        files_.erase(fd);
        if (cb)
            cb(0);
    }

    void
    stdoutWrite(const std::string &s, VoidCb cb) override
    {
        out += s;
        if (cb)
            cb(0);
    }

    void
    stderrWrite(const std::string &s, VoidCb cb) override
    {
        errOut += s;
        if (cb)
            cb(0);
    }

    void stdinRead(DataCb cb) override { cb(0, {}); }

    void
    spawn(const std::vector<std::string> &, IntCb cb) override
    {
        cb(-ENOSYS); // plain Node runs: no Browsix process tree
    }

    void
    waitPid(int, std::function<void(int, int)> cb) override
    {
        cb(-ECHILD, 0);
    }

    void
    kill(int, int, VoidCb cb) override
    {
        if (cb)
            cb(EPERM);
    }

    void exit(int code) override { exitCode = code; }
    int64_t nowMs() override { return jsvm::nowUs() / 1000; }

  private:
    struct OpenState
    {
        bfs::OpenFilePtr file;
        uint64_t offset;
    };

    bfs::Vfs &vfs_;
    int nextFd_ = 3;
    std::map<int, OpenState> files_;
};

/**
 * Run a registered utility under "Node.js on Linux": charge the node
 * bundle's parse cost (startup), then run the utility over direct
 * bindings. Returns captured stdout.
 */
inline std::string
runNodeDirect(bfs::Vfs &vfs, const jsvm::CostModel &costs,
              const std::vector<std::string> &util_argv)
{
    apps::registerAllPrograms();
    apps::registerCoreutils();
    const apps::ProgramSpec *node =
        apps::ProgramRegistry::instance().find("node");
    costs.chargeParse(node->bundleKb * 1024); // node startup: parse/JIT
    std::vector<std::string> argv = {"/usr/bin/node",
                                     "/usr/bin/" + util_argv[0]};
    argv.insert(argv.end(), util_argv.begin() + 1, util_argv.end());
    auto api = std::make_shared<NodeDirectApi>(vfs, argv);
    rt::NodeUtilFn fn = rt::lookupNodeUtil(util_argv[0]);
    if (!fn)
        return "";
    fn(api);
    return api->out;
}

/** A deterministic pseudo-random file (the sha1sum workload). */
inline bfs::Buffer
makeBlob(size_t bytes, uint32_t seed)
{
    bfs::Buffer out(bytes);
    uint32_t x = seed | 1;
    for (size_t i = 0; i < bytes; i++) {
        x = x * 1664525 + 1013904223;
        out[i] = static_cast<uint8_t>(x >> 24);
    }
    return out;
}

} // namespace bench
} // namespace browsix
