/**
 * @file
 * Process-lifecycle microbenchmark: spawn/wait4/kill latency as the live
 * process population grows (10 / 100 / 1000 / 10000 parked processes).
 *
 * A driver process runs spawn→waitpid and spawn→kill→waitpid cycles
 * while the parked population sits in the process table, so every sample
 * crosses the real syscall path — and the sharded table — at the target
 * population. Results are the kernel's per-syscall log2 latency
 * histograms, printed as a table and serialized (p50/p99/mean/max/count
 * per call) into $BROWSIX_BENCH_JSON via bench::recordHistogram.
 *
 * Under BROWSIX_BENCH_SMOKE only the 10-process point runs, with a
 * handful of cycles — enough to prove the workload executes.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "tests/test_util.h"

using namespace browsix;

namespace {

/** The scale whose numbers are the paper-claim ones (10k live guests):
 * its p99s are exported as flat gated metrics, smaller scales stay
 * informational histogram rows. Smoke mode never reaches it. */
constexpr int kHeadlineLive = 10000;

void
registerBenchPrograms()
{
    // Parked background process (testutil's canonical pipe2+read park):
    // async runtime, so no 1 MB shared-heap personality per instance —
    // a 1000-strong population stays cheap.
    testutil::addParkProgram("bx-park");
    testutil::addProgram("bx-noop", [](rt::EmEnv &) -> int { return 0; },
                         apps::RuntimeKind::EmAsync);
    testutil::addProgram(
        "bx-proc-driver",
        [](rt::EmEnv &env) -> int {
            int cycles = std::atoi(env.argv().at(1).c_str());
            for (int i = 0; i < cycles; i++) {
                int pid =
                    env.spawn({"/usr/bin/bx-noop"}, std::vector<int>{});
                if (pid <= 0)
                    return 10;
                int st = 0;
                if (env.waitpid(pid, &st, 0) != pid)
                    return 11;
                if (!sys::wifExited(st))
                    return 12;
            }
            for (int i = 0; i < cycles; i++) {
                int pid =
                    env.spawn({"/usr/bin/bx-park"}, std::vector<int>{});
                if (pid <= 0)
                    return 13;
                if (env.kill(pid, sys::SIGKILL) != 0)
                    return 14;
                int st = 0;
                if (env.waitpid(pid, &st, 0) != pid)
                    return 15;
                if (sys::wtermsig(st) != sys::SIGKILL)
                    return 16;
            }
            return 0;
        },
        apps::RuntimeKind::EmAsync);
}

/** Host-side OS thread count from /proc/self/status; -1 if unreadable.
 * The scheduler's whole point is that this stays ~poolSize no matter how
 * many guests are live. */
int
hostThreadCount()
{
    std::ifstream st("/proc/self/status");
    std::string line;
    while (std::getline(st, line)) {
        if (line.rfind("Threads:", 0) == 0)
            return std::atoi(line.c_str() + 8);
    }
    return -1;
}

void
runScale(int live, int cycles)
{
    Browsix bx;
    for (const char *p : {"bx-park", "bx-noop", "bx-proc-driver"})
        testutil::stage(bx, p);

    int parked = 0, failed = 0;
    for (int i = 0; i < live; i++) {
        bx.kernel().spawnRoot(
            {"/usr/bin/bx-park"}, bx.kernel().defaultEnv, "/", [](int) {},
            nullptr, nullptr,
            [&](int pid) { (pid > 0 ? parked : failed)++; });
    }
    if (!bx.runUntil([&]() { return parked + failed == live; }, 300000) ||
        failed > 0) {
        std::fprintf(stderr, "proc_micro: parked only %d/%d processes\n",
                     parked, live);
        std::exit(1);
    }

    auto r = bx.runArgv({"/usr/bin/bx-proc-driver", std::to_string(cycles)},
                        600000);
    if (!r.ok || r.exitCode() != 0) {
        std::fprintf(stderr,
                     "proc_micro: driver failed at live=%d (rc=%d)\n",
                     live, r.exitCode());
        std::exit(1);
    }

    const kernel::KernelStats &st = bx.kernel().stats();
    std::printf("live=%-5d %-6s %10s %10s %10s %8s\n", live, "call",
                "p50(us)", "p99(us)", "mean(us)", "count");
    for (const char *name : {"spawn", "wait4", "kill"}) {
        const kernel::LatencyHistogram *h = st.latency(name);
        if (!h) {
            std::fprintf(stderr, "proc_micro: no %s histogram\n", name);
            std::exit(1);
        }
        std::printf("           %-6s %10llu %10llu %10.1f %8llu\n", name,
                    static_cast<unsigned long long>(h->percentileUs(50)),
                    static_cast<unsigned long long>(h->percentileUs(99)),
                    h->meanUs(), static_cast<unsigned long long>(h->count));
        bench::recordHistogram(
            "proc_micro",
            std::string(name) + ".live" + std::to_string(live), *h);
        // The headline scale also lands flat, gate-friendly keys: the
        // trajectory checker ratio- and ceiling-gates these (histogram
        // sub-rows are informational only).
        if (live == kHeadlineLive) {
            bench::recordMetric("proc_micro",
                                "proc_" + std::string(name) + "_p99_us",
                                static_cast<double>(h->percentileUs(99)),
                                "us");
        }
    }
    int threads = hostThreadCount();
    unsigned pool = bx.kernel().scheduler().poolSize();
    std::printf("           host_threads=%d pool=%u\n\n", threads, pool);
    if (live == kHeadlineLive && threads > 0) {
        bench::recordMetric("proc_micro", "host_threads",
                            static_cast<double>(threads), "threads");
        if (threads > static_cast<int>(pool) + 8) {
            std::fprintf(stderr,
                         "proc_micro: %d host threads for %d guests on a "
                         "%u-thread pool — processes are costing threads\n",
                         threads, live, pool);
            std::exit(1);
        }
    }

    // Teardown: SIGKILL broadcast against the parked population.
    bx.kernel().kill(-1, sys::SIGKILL);
    if (!bx.runUntil([&]() { return bx.kernel().taskCount() == 0; },
                     300000)) {
        std::fprintf(stderr, "proc_micro: teardown left %zu tasks\n",
                     bx.kernel().taskCount());
        std::exit(1);
    }
}

} // namespace

int
main()
{
    registerBenchPrograms();
    std::vector<int> scales =
        bench::smokeMode()
            ? std::vector<int>{10}
            : std::vector<int>{10, 100, 1000, kHeadlineLive};
    int cycles = bench::smokeMode() ? 4 : 64;
    for (int live : scales)
        runScale(live, cycles);
    return 0;
}
