/**
 * @file
 * Connection-scale HTTP serving through the ring-native path: one
 * meme-httpd process (EmRing runtime, net::HttpServer::run's epoll loop)
 * behind net::SimBackend, with 1k+ concurrent simulated connections
 * issuing keep-alive request rounds — JSON API, sendfile static file,
 * chunked encoding, then a connection:close teardown.
 *
 * This is §5.2's client/server experiment scaled from one request to
 * serving-path throughput: every byte crosses a SimLink-shaped link in
 * both directions, readiness arrives via epoll_wait SQEs parked on the
 * deferral protocol, and every ready connection's read rides one
 * doorbell-coalesced SQ batch. Reported: per-request latency
 * percentiles, Atomics notifies per request, requests per doorbell,
 * deferred-CQE share, and the kernel's drain-pass shape histograms.
 */
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "net/http.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

constexpr int kRounds = 3;

struct ClientConn
{
    net::HttpParser parser{net::HttpParser::Mode::Response};
    std::shared_ptr<kernel::Kernel::HostConn> conn;
    int64_t sentAtUs = 0;
    int round = 0;
    bool done = false;
    bool failed = false;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(p / 100.0 *
                                     static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

int
main()
{
    const int conns_n = smokeMode() ? 64 : 1024;
    const uint64_t total_requests =
        static_cast<uint64_t>(conns_n) * kRounds;

    BootConfig cfg;
    cfg.memeAssets = true;
    cfg.simNet = true;
    // A LAN-ish link: 200 µs RTT, infinite bandwidth. Real-time (not
    // TestClock) because worker threads genuinely block on Atomics.
    cfg.simNetLink = net::LinkParams{200, 0};
    Browsix bx(cfg);

    bx.kernel().spawnRoot(
        {"/usr/bin/meme-httpd", "8080", std::to_string(conns_n),
         std::to_string(total_requests)},
        {}, "/", [](int) {}, nullptr, nullptr, [](int) {});
    if (!bx.waitForPort(8080, 30000)) {
        std::fprintf(stderr, "http_serve: meme-httpd never listened\n");
        return 1;
    }

    const kernel::KernelStats base = bx.kernel().stats();

    std::vector<double> lat_us;
    lat_us.reserve(total_requests);
    std::vector<std::shared_ptr<ClientConn>> clients;
    clients.reserve(conns_n);
    size_t completed = 0;
    size_t failures = 0;

    // Per-connection request schedule: keep-alive JSON round, a
    // sendfile-backed static round, then a chunked round that also asks
    // the server to close (graceful FIN + drain on both sides).
    auto sendRound = [&](const std::shared_ptr<ClientConn> &c) {
        net::HttpRequest req;
        if (c->round == 1) {
            req.target = "/memes/wonka.bimg";
        } else if (c->round == kRounds - 1) {
            req.target = "/api/images?chunked=1";
            req.headers["connection"] = "close";
        } else {
            req.target = "/api/images";
        }
        auto bytes = net::serializeRequest(req);
        c->sentAtUs = jsvm::nowUs();
        c->conn->write(bfs::Buffer(bytes.begin(), bytes.end()));
    };

    int64_t t0 = jsvm::nowUs();
    for (int i = 0; i < conns_n; i++) {
        auto c = std::make_shared<ClientConn>();
        clients.push_back(c);
        bx.kernel().connect(
            8080,
            [&, c](const bfs::Buffer &data) {
                c->parser.feed(data);
                while (c->parser.done()) {
                    lat_us.push_back(static_cast<double>(jsvm::nowUs() -
                                                         c->sentAtUs));
                    c->round++;
                    c->parser.reset();
                    if (c->round < kRounds) {
                        sendRound(c);
                    } else if (!c->done) {
                        c->done = true;
                        completed++;
                        c->conn->close();
                    }
                }
            },
            [&, c]() {
                if (!c->done) {
                    c->done = true;
                    c->failed = true;
                    failures++;
                    completed++;
                }
            },
            [&, c](int err,
                   std::shared_ptr<kernel::Kernel::HostConn> conn) {
                if (err) {
                    c->done = true;
                    c->failed = true;
                    failures++;
                    completed++;
                    return;
                }
                c->conn = std::move(conn);
                sendRound(c);
            });
    }

    bool finished = bx.runUntil(
        [&]() { return completed >= static_cast<size_t>(conns_n); },
        240000);
    double wall_ms = (jsvm::nowUs() - t0) / 1000.0;
    if (!finished || failures > 0 ||
        lat_us.size() != static_cast<size_t>(total_requests)) {
        std::fprintf(stderr,
                     "http_serve: FAILED finished=%d failures=%zu "
                     "responses=%zu/%llu\n",
                     finished ? 1 : 0, failures, lat_us.size(),
                     static_cast<unsigned long long>(total_requests));
        return 1;
    }

    const kernel::KernelStats &ks = bx.kernel().stats();
    double requests = static_cast<double>(total_requests);
    double notifies =
        static_cast<double>(ks.ringNotifies - base.ringNotifies);
    double doorbells =
        static_cast<double>(ks.ringDoorbells - base.ringDoorbells);
    double deferred = static_cast<double>(ks.ringDeferredCompletions -
                                          base.ringDeferredCompletions);
    double ring_calls =
        static_cast<double>(ks.ringSyscallCount - base.ringSyscallCount);

    std::sort(lat_us.begin(), lat_us.end());
    double p50 = percentile(lat_us, 50), p99 = percentile(lat_us, 99);

    std::printf("http_serve: %d concurrent connections x %d requests "
                "(simNet rtt=%lld us)\n\n",
                conns_n, kRounds,
                static_cast<long long>(cfg.simNetLink.rttUs));
    std::printf("  wall time              %10.1f ms\n", wall_ms);
    std::printf("  request latency p50    %10.0f us\n", p50);
    std::printf("  request latency p99    %10.0f us\n", p99);
    std::printf("  ring syscalls          %10.0f (%.1f per request)\n",
                ring_calls, ring_calls / requests);
    std::printf("  notifies per request   %10.2f\n", notifies / requests);
    std::printf("  requests per doorbell  %10.2f\n",
                doorbells > 0 ? requests / doorbells : requests);
    std::printf("  deferred CQEs          %10.0f (%.2f per request)\n",
                deferred, deferred / requests);

    const char *bench = "http_serve";
    recordMetric(bench, "http_connections", conns_n, "conns");
    recordMetric(bench, "http_requests", requests, "reqs");
    recordMetric(bench, "http_wall_ms", wall_ms, "ms");
    recordMetric(bench, "http_p50_us", p50, "us");
    recordMetric(bench, "http_p99_us", p99, "us");
    recordMetric(bench, "http_ring_calls_per_request",
                 ring_calls / requests, "calls");
    recordMetric(bench, "http_notifies_per_request", notifies / requests,
                 "notifies");
    // Unit "ratio" exempts these from the lower-is-better relative
    // gate: requests-per-doorbell improves upward, and the deferred-CQE
    // share is protocol shape, not a cost.
    recordMetric(bench, "http_requests_per_doorbell",
                 doorbells > 0 ? requests / doorbells : requests,
                 "ratio");
    recordMetric(bench, "http_deferred_cqe_per_request",
                 deferred / requests, "ratio");
    recordHistogram(bench, "ring_batch_depth", ks.ringBatchDepth);
    recordHistogram(bench, "ring_drain", ks.ringDrainUs);
    return 0;
}
