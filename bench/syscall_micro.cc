/**
 * @file
 * System-call microbenchmarks (§3.2 and §6).
 *
 * The paper's claims:
 *  - "Message passing is three orders of magnitude slower than
 *    traditional system calls" (§6) — motivating both conventions.
 *  - "Synchronous system calls are faster in practice" (§3.2): one
 *    message instead of two, integer args instead of copied buffers, a
 *    blocking primitive instead of stack unwinding.
 *
 * Measured here: a direct in-process call (the "traditional syscall"
 * stand-in), a bare postMessage round-trip, and per-call cost of the
 * async vs sync vs ring Browsix conventions measured from inside a C
 * program that issues a configurable number of getpid() calls. The ring
 * convention is swept over batch sizes 1/8/64: one doorbell message and
 * one Atomics wake per batch is what amortizes the per-call overhead
 * away (cphVB-style batched dispatch applied to the syscall transport).
 */
#include <cstdio>
#include <cstring>

#include "bench/harness.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

/** getpid() in a loop; call count from argv[1]. */
int
sysbenchMain(rt::EmEnv &env)
{
    int n = env.argv().size() > 1 ? std::atoi(env.argv()[1].c_str()) : 0;
    for (int i = 0; i < n; i++) {
        if (env.getpid() <= 0)
            return 1;
    }
    return 0;
}

/** getpid() through the ring in batches; argv[1]=count, argv[2]=batch. */
int
sysbenchRingMain(rt::EmEnv &env)
{
    int n = env.argv().size() > 1 ? std::atoi(env.argv()[1].c_str()) : 0;
    int batch = std::max(
        1, env.argv().size() > 2 ? std::atoi(env.argv()[2].c_str()) : 1);
    rt::RingSyscalls *ring = env.ring();
    if (!ring)
        return 2;
    std::vector<uint32_t> seqs;
    for (int i = 0; i < n;) {
        int k = std::min(batch, n - i);
        seqs.clear();
        for (int j = 0; j < k; j++)
            seqs.push_back(ring->submit(sys::GETPID, {}));
        ring->flush();
        for (uint32_t seq : seqs) {
            if (ring->wait(seq).r0 <= 0)
                return 1;
        }
        i += k;
    }
    return 0;
}

/** Gather writes through the ring; argv[1]=rounds, argv[2]=batch. Each
 * round submits `batch` writev SQEs (4 iovs x 64 B each) under one
 * doorbell and reaps them — the printf-heavy stdio pattern. */
int
sysbenchWritevMain(rt::EmEnv &env)
{
    int rounds =
        env.argv().size() > 1 ? std::atoi(env.argv()[1].c_str()) : 0;
    int batch = std::max(
        1, env.argv().size() > 2 ? std::atoi(env.argv()[2].c_str()) : 1);
    rt::RingSyscalls *ring = env.ring();
    rt::SyncSyscalls *sync = env.syncCalls();
    if (!ring || !sync)
        return 2;
    int fd = env.open("/tmp/wv.bin",
                      bfs::flags::CREAT | bfs::flags::RDWR);
    if (fd < 0)
        return 3;
    constexpr int kIovs = 4;
    constexpr int32_t kIovLen = 64;
    for (int r = 0; r < rounds; r++) {
        sync->resetScratch();
        std::vector<uint32_t> seqs;
        for (int b = 0; b < batch; b++) {
            std::vector<sys::IoVec> iovs;
            for (int i = 0; i < kIovs; i++) {
                uint32_t p = sync->alloc(kIovLen);
                std::memset(sync->heapData() + p, 'a' + i, kIovLen);
                iovs.push_back(
                    sys::IoVec{static_cast<int32_t>(p), kIovLen});
            }
            seqs.push_back(ring->submitv(sys::WRITEV, fd, iovs));
        }
        ring->flush(); // one doorbell (at most) for the whole batch
        for (uint32_t s : seqs) {
            if (ring->wait(s).r0 != kIovs * kIovLen)
                return 1;
        }
    }
    env.close(fd);
    return 0;
}

void
registerSysbench()
{
    apps::registerAllPrograms();
    auto &reg = apps::ProgramRegistry::instance();
    reg.add(apps::ProgramSpec{"sysbench-sync", apps::RuntimeKind::EmSync,
                              64, sysbenchMain, nullptr});
    reg.add(apps::ProgramSpec{"sysbench-async", apps::RuntimeKind::EmAsync,
                              64, sysbenchMain, nullptr});
    reg.add(apps::ProgramSpec{"sysbench-ring", apps::RuntimeKind::EmRing,
                              64, sysbenchRingMain, nullptr});
    reg.add(apps::ProgramSpec{"sysbench-writev", apps::RuntimeKind::EmRing,
                              64, sysbenchWritevMain, nullptr});
}

/** Per-call microseconds: run with N calls and 0 calls, difference/N. */
double
perCallUs(Browsix &bx, const std::string &exe, int n,
          const std::vector<std::string> &extra = {})
{
    double with = 1e9, without = 1e9;
    const int reps = smokeMode() ? 1 : 3;
    for (int rep = 0; rep < reps; rep++) {
        std::vector<std::string> argv = {exe, std::to_string(n)};
        argv.insert(argv.end(), extra.begin(), extra.end());
        with = std::min(with, timeMs([&]() { bx.runArgv(argv, 120000); }));
        argv[1] = "0";
        without =
            std::min(without, timeMs([&]() { bx.runArgv(argv, 120000); }));
    }
    return (with - without) * 1000.0 / n;
}

} // namespace

int
main()
{
    registerSysbench();
    const int kCalls = smokeMode() ? 50 : 300;

    BootConfig cfg;
    cfg.profile = jsvm::BrowserProfile::chrome2016();
    Browsix bx(cfg);
    auto &reg = apps::ProgramRegistry::instance();
    bx.rootFs().writeFile("/usr/bin/sysbench-sync",
                          reg.bundleFor("sysbench-sync"));
    bx.rootFs().writeFile("/usr/bin/sysbench-async",
                          reg.bundleFor("sysbench-async"));
    bx.rootFs().writeFile("/usr/bin/sysbench-ring",
                          reg.bundleFor("sysbench-ring"));
    bx.rootFs().writeFile("/usr/bin/sysbench-writev",
                          reg.bundleFor("sysbench-writev"));

    // Direct call baseline: what a real getpid costs in-process.
    bfs::Stat st;
    volatile int sink = 0;
    const int kDirect = smokeMode() ? 10000 : 1000000;
    double direct_ms = timeMs([&]() {
        for (int i = 0; i < kDirect; i++) {
            bx.fs().statSync("/usr/bin", st);
            sink += static_cast<int>(st.size);
        }
    });
    double direct_us = direct_ms * 1000.0 / kDirect;

    // Bare postMessage round-trip (charged with the Chrome profile).
    jsvm::Browser browser(jsvm::BrowserProfile::chrome2016());
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto w = browser.createWorker(
        url, [](jsvm::WorkerScope &scope, auto) {
            scope.setOnMessage([&scope](jsvm::Value v) {
                scope.postMessage(v);
            });
        });
    int received = 0;
    w->setOnMessage([&](jsvm::Value) { received++; });
    const int kPings = 100;
    double pm_ms = timeMs([&]() {
        for (int i = 0; i < kPings; i++) {
            int target = received + 1;
            w->postMessage(jsvm::Value(i));
            browser.runUntil([&]() { return received >= target; }, 10000);
        }
    });
    w->terminate();
    double pm_us = pm_ms * 1000.0 / kPings;

    double async_us = perCallUs(bx, "/usr/bin/sysbench-async", kCalls);
    double sync_us = perCallUs(bx, "/usr/bin/sysbench-sync", kCalls);
    const int kBatches[] = {1, 8, 64};
    double ring_us[3];
    for (int i = 0; i < 3; i++) {
        ring_us[i] = perCallUs(bx, "/usr/bin/sysbench-ring", kCalls,
                               {std::to_string(kBatches[i])});
    }

    std::printf("syscall-path microbenchmarks (Chrome 2016 profile):\n\n");
    std::printf("%-36s | %12s\n", "operation", "per-op us");
    std::printf("-------------------------------------+--------------\n");
    std::printf("%-36s | %12.3f\n", "direct call (traditional syscall)",
                direct_us);
    std::printf("%-36s | %12.1f\n", "postMessage round-trip", pm_us);
    std::printf("%-36s | %12.1f\n", "Browsix async syscall (getpid)",
                async_us);
    std::printf("%-36s | %12.1f\n", "Browsix sync syscall (getpid)",
                sync_us);
    for (int i = 0; i < 3; i++) {
        char label[64];
        std::snprintf(label, sizeof(label),
                      "Browsix ring syscall (batch %d)", kBatches[i]);
        std::printf("%-36s | %12.1f\n", label, ring_us[i]);
    }
    std::printf("\nmessage passing vs direct call: %.0fx (paper: \"three "
                "orders of magnitude\")\n",
                pm_us / direct_us);
    std::printf("sync vs async per syscall: %.2fx faster (paper: sync "
                "\"faster in practice\";\none message instead of two)\n",
                async_us / sync_us);
    std::printf("ring batch-64 vs sync per syscall: %.2fx faster (one "
                "doorbell + one wake per batch)\n",
                sync_us / ring_us[2]);

    recordMetric("syscall_micro", "direct_call_us", direct_us);
    recordMetric("syscall_micro", "postmessage_roundtrip_us", pm_us);
    recordMetric("syscall_micro", "async_syscall_us", async_us);
    recordMetric("syscall_micro", "sync_syscall_us", sync_us);
    for (int i = 0; i < 3; i++) {
        recordMetric("syscall_micro",
                     "ring_syscall_batch" + std::to_string(kBatches[i]) +
                         "_us",
                     ring_us[i]);
    }

    // ---- batched coreutils traffic: els -lR, serial vs statBatch ----
    // The stat-heavy `ls -lR` hot path over a staged tree. --serial pays
    // one ring round-trip (doorbell + wake) per lstat; the batched sweep
    // covers a whole directory's entries with one doorbell. The metric
    // that matters is Atomics notifies per ring syscall.
    const int kDirs = smokeMode() ? 2 : 8;
    const int kFilesPerDir = smokeMode() ? 8 : 24;
    for (int d = 0; d < kDirs; d++) {
        std::string dir = "/data/d" + std::to_string(d);
        bx.rootFs().mkdirAll(dir);
        for (int fno = 0; fno < kFilesPerDir; fno++) {
            bx.rootFs().writeFile(dir + "/f" + std::to_string(fno),
                                  std::string(64, 'x'));
        }
    }
    auto lsRun = [&](bool serial) {
        std::vector<std::string> argv = {"/usr/bin/els", "-lR", "/data"};
        if (serial)
            argv.insert(argv.begin() + 2, "--serial");
        kernel::KernelStats before = bx.kernel().stats();
        double ms = timeMs([&]() { bx.runArgv(argv, 120000); });
        kernel::KernelStats after = bx.kernel().stats();
        double calls = static_cast<double>(after.ringSyscallCount -
                                           before.ringSyscallCount);
        double notifies = static_cast<double>(after.ringNotifies -
                                              before.ringNotifies);
        return std::pair<double, double>(
            ms, calls > 0 ? notifies / calls : 0);
    };
    lsRun(true); // warm the tree through the VFS before measuring
    auto [serial_ms, serial_npo] = lsRun(true);
    auto [batch_ms, batch_npo] = lsRun(false);

    std::printf("\nbatched coreutils traffic (els -lR, %d dirs x %d "
                "files):\n\n",
                kDirs, kFilesPerDir);
    std::printf("%-24s | %10s | %18s\n", "mode", "ms", "notifies/ringcall");
    std::printf("-------------------------+------------+----------------"
                "----\n");
    std::printf("%-24s | %10.2f | %18.3f\n", "serial (1 call/lstat)",
                serial_ms, serial_npo);
    std::printf("%-24s | %10.2f | %18.3f\n", "batched (statBatch)",
                batch_ms, batch_npo);
    std::printf("\nbatching cuts Atomics notifies per ring call %.1fx\n",
                batch_npo > 0 ? serial_npo / batch_npo : 0);
    recordMetric("syscall_micro", "ls_serial_ms", serial_ms, "ms");
    recordMetric("syscall_micro", "ls_batch_ms", batch_ms, "ms");
    recordMetric("syscall_micro", "ls_serial_notifies_per_call",
                 serial_npo, "ratio");
    recordMetric("syscall_micro", "ls_batch_notifies_per_call", batch_npo,
                 "ratio");

    // ---- vectored write traffic: writev SQEs, serial vs batch-8 ----
    // Each writev is one ring entry carrying four spans; at batch 8 one
    // doorbell and one wake cover eight gathers, and under the coalesced
    // doorbell bursty rounds skip even the per-batch message.
    const int kWvRounds = smokeMode() ? 20 : 300;
    struct WvResult
    {
        double ms;
        double notifies_per_call;
        double messages_per_burst;
    };
    auto writevRun = [&](int batch) {
        kernel::KernelStats before = bx.kernel().stats();
        double ms = timeMs([&]() {
            bx.runArgv({"/usr/bin/sysbench-writev",
                        std::to_string(kWvRounds),
                        std::to_string(batch)},
                       120000);
        });
        kernel::KernelStats after = bx.kernel().stats();
        double calls = static_cast<double>(after.ringSyscallCount -
                                           before.ringSyscallCount);
        double notifies = static_cast<double>(after.ringNotifies -
                                              before.ringNotifies);
        double doorbells = static_cast<double>(after.ringDoorbells -
                                               before.ringDoorbells);
        return WvResult{ms, calls > 0 ? notifies / calls : 0,
                        doorbells / kWvRounds};
    };
    WvResult wv1 = writevRun(1);
    WvResult wv8 = writevRun(8);
    std::printf("\nvectored write traffic (writev, 4 iovs x 64 B, %d "
                "rounds):\n\n",
                kWvRounds);
    std::printf("%-24s | %10s | %18s | %18s\n", "mode", "ms",
                "notifies/ringcall", "messages/burst");
    std::printf("-------------------------+------------+----------------"
                "----+--------------------\n");
    std::printf("%-24s | %10.2f | %18.3f | %18.3f\n", "serial (batch 1)",
                wv1.ms, wv1.notifies_per_call, wv1.messages_per_burst);
    std::printf("%-24s | %10.2f | %18.3f | %18.3f\n", "batch 8", wv8.ms,
                wv8.notifies_per_call, wv8.messages_per_burst);
    recordMetric("syscall_micro", "writev_batch1_notifies_per_call",
                 wv1.notifies_per_call, "ratio");
    recordMetric("syscall_micro", "writev_batch8_notifies_per_call",
                 wv8.notifies_per_call, "ratio");
    recordMetric("syscall_micro", "writev_batch8_ms", wv8.ms, "ms");
    recordMetric("syscall_micro", "writev_batch8_messages_per_burst",
                 wv8.messages_per_burst, "ratio");
    (void)sink;
    return 0;
}
