/**
 * @file
 * System-call microbenchmarks (§3.2 and §6).
 *
 * The paper's claims:
 *  - "Message passing is three orders of magnitude slower than
 *    traditional system calls" (§6) — motivating both conventions.
 *  - "Synchronous system calls are faster in practice" (§3.2): one
 *    message instead of two, integer args instead of copied buffers, a
 *    blocking primitive instead of stack unwinding.
 *
 * Measured here: a direct in-process call (the "traditional syscall"
 * stand-in), a bare postMessage round-trip, and per-call cost of the
 * async vs sync Browsix conventions measured from inside a C program
 * that issues a configurable number of getpid() calls.
 */
#include <cstdio>

#include "bench/harness.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

/** getpid() in a loop; call count from argv[1]. */
int
sysbenchMain(rt::EmEnv &env)
{
    int n = env.argv().size() > 1 ? std::atoi(env.argv()[1].c_str()) : 0;
    for (int i = 0; i < n; i++) {
        if (env.getpid() <= 0)
            return 1;
    }
    return 0;
}

void
registerSysbench()
{
    apps::registerAllPrograms();
    auto &reg = apps::ProgramRegistry::instance();
    reg.add(apps::ProgramSpec{"sysbench-sync", apps::RuntimeKind::EmSync,
                              64, sysbenchMain, nullptr});
    reg.add(apps::ProgramSpec{"sysbench-async", apps::RuntimeKind::EmAsync,
                              64, sysbenchMain, nullptr});
}

/** Per-call microseconds: run with N calls and 0 calls, difference/N. */
double
perCallUs(Browsix &bx, const std::string &exe, int n)
{
    double with = 1e9, without = 1e9;
    const int reps = smokeMode() ? 1 : 3;
    for (int rep = 0; rep < reps; rep++) {
        with = std::min(with, timeMs([&]() {
                            bx.runArgv({exe, std::to_string(n)}, 120000);
                        }));
        without = std::min(without, timeMs([&]() {
                               bx.runArgv({exe, "0"}, 120000);
                           }));
    }
    return (with - without) * 1000.0 / n;
}

} // namespace

int
main()
{
    registerSysbench();
    const int kCalls = smokeMode() ? 50 : 300;

    BootConfig cfg;
    cfg.profile = jsvm::BrowserProfile::chrome2016();
    Browsix bx(cfg);
    auto &reg = apps::ProgramRegistry::instance();
    bx.rootFs().writeFile("/usr/bin/sysbench-sync",
                          reg.bundleFor("sysbench-sync"));
    bx.rootFs().writeFile("/usr/bin/sysbench-async",
                          reg.bundleFor("sysbench-async"));

    // Direct call baseline: what a real getpid costs in-process.
    bfs::Stat st;
    volatile int sink = 0;
    const int kDirect = smokeMode() ? 10000 : 1000000;
    double direct_ms = timeMs([&]() {
        for (int i = 0; i < kDirect; i++) {
            bx.fs().statSync("/usr/bin", st);
            sink += static_cast<int>(st.size);
        }
    });
    double direct_us = direct_ms * 1000.0 / kDirect;

    // Bare postMessage round-trip (charged with the Chrome profile).
    jsvm::Browser browser(jsvm::BrowserProfile::chrome2016());
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto w = browser.createWorker(
        url, [](jsvm::WorkerScope &scope, auto) {
            scope.setOnMessage([&scope](jsvm::Value v) {
                scope.postMessage(v);
            });
        });
    int received = 0;
    w->setOnMessage([&](jsvm::Value) { received++; });
    const int kPings = 100;
    double pm_ms = timeMs([&]() {
        for (int i = 0; i < kPings; i++) {
            int target = received + 1;
            w->postMessage(jsvm::Value(i));
            browser.runUntil([&]() { return received >= target; }, 10000);
        }
    });
    w->terminate();
    double pm_us = pm_ms * 1000.0 / kPings;

    double async_us = perCallUs(bx, "/usr/bin/sysbench-async", kCalls);
    double sync_us = perCallUs(bx, "/usr/bin/sysbench-sync", kCalls);

    std::printf("syscall-path microbenchmarks (Chrome 2016 profile):\n\n");
    std::printf("%-36s | %12s\n", "operation", "per-op us");
    std::printf("-------------------------------------+--------------\n");
    std::printf("%-36s | %12.3f\n", "direct call (traditional syscall)",
                direct_us);
    std::printf("%-36s | %12.1f\n", "postMessage round-trip", pm_us);
    std::printf("%-36s | %12.1f\n", "Browsix async syscall (getpid)",
                async_us);
    std::printf("%-36s | %12.1f\n", "Browsix sync syscall (getpid)",
                sync_us);
    std::printf("\nmessage passing vs direct call: %.0fx (paper: \"three "
                "orders of magnitude\")\n",
                pm_us / direct_us);
    std::printf("sync vs async per syscall: %.2fx faster (paper: sync "
                "\"faster in practice\";\none message instead of two)\n",
                async_us / sync_us);
    (void)sink;
    return 0;
}
