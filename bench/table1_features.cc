/**
 * @file
 * Table 1 reproduction: feature comparison of JavaScript execution
 * environments. The Browsix rows are *probed live* against a booted
 * kernel (each check actually exercises the feature, multi-process where
 * the table claims multi-process); the non-Browsix rows reproduce the
 * paper's published matrix (those systems are external).
 */
#include <cstdio>

#include "apps/meme/server.h"
#include "bench/harness.h"

using namespace browsix;

namespace {

struct Probe
{
    const char *name;
    bool (*fn)(Browsix &);
};

bool
probeFilesystem(Browsix &bx)
{
    // Two processes share state through the FS.
    auto r = bx.run("echo shared > /tmp/t1");
    if (r.exitCode() != 0)
        return false;
    r = bx.run("cat /tmp/t1");
    return r.out == "shared\n";
}

bool
probeSocketServerAndClient(Browsix &bx)
{
    apps::stageMemeAssets(bx.rootFs());
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8099"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    if (!bx.waitForPort(8099, 10000))
        return false;
    auto r = bx.run("curl http://localhost:8099/api/images");
    bool ok = r.exitCode() == 0 &&
              r.out.find("doge") != std::string::npos;
    for (int pid : bx.kernel().pids())
        bx.kernel().kill(pid, sys::SIGKILL);
    return ok;
}

bool
probeProcesses(Browsix &bx)
{
    // spawn + wait4 + fork (the Emterpreter binary forks for real).
    auto r = bx.run("forktest");
    return r.exitCode() == 0 &&
           r.out == "hello from child\nhello from parent\n";
}

bool
probePipes(Browsix &bx)
{
    auto r = bx.run("seq 5 | sort -r | head -n 1");
    return r.out == "5\n";
}

bool
probeSignals(Browsix &bx)
{
    apps::stageMemeAssets(bx.rootFs());
    int pid = 0;
    bool exited = false;
    int status = 0;
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8098"}}, "/",
                          [&](int st) {
                              status = st;
                              exited = true;
                          },
                          nullptr, nullptr, [&](int p) { pid = p; });
    if (!bx.waitForPort(8098, 10000))
        return false;
    bx.kernel().kill(pid, sys::SIGTERM);
    bx.runUntil([&]() { return exited; }, 10000);
    return exited && sys::wtermsig(status) == sys::SIGTERM;
}

const char *
cell(int v)
{
    return v == 2 ? "  yes  " : v == 1 ? "single " : "   -   ";
}

} // namespace

int
main()
{
    std::printf("Table 1: feature comparison (Browsix rows probed live; "
                "others per the paper)\n\n");

    // Probe Browsix for real.
    Browsix bx;
    Probe probes[] = {
        {"Filesystem", probeFilesystem},
        {"Socket servers+clients", probeSocketServerAndClient},
        {"Processes", probeProcesses},
        {"Pipes", probePipes},
        {"Signals", probeSignals},
    };
    bool all = true;
    std::printf("live probes against this build:\n");
    for (const auto &p : probes) {
        bool ok = p.fn(bx);
        all = all && ok;
        std::printf("  %-24s %s\n", p.name, ok ? "PASS" : "FAIL");
    }
    std::printf("\n");

    // The matrix (2 = multi-process, 1 = single process only, 0 = none).
    struct MatrixRow
    {
        const char *system;
        int fs, sock_client, sock_server, procs, pipes, signals;
        bool probed;
    };
    MatrixRow rows[] = {
        {"BROWSIX (this repo)", 2, 2, 2, 2, 2, 2, true},
        {"Doppio", 1, 1, 0, 0, 0, 0, false},
        {"WebAssembly", 0, 0, 0, 0, 0, 0, false},
        {"Emscripten (alone)", 1, 1, 0, 0, 1, 0, false},
        {"GopherJS (alone)", 0, 0, 0, 0, 0, 0, false},
        {"BROWSIX + Emscripten", 2, 2, 2, 2, 2, 2, true},
        {"BROWSIX + GopherJS", 2, 2, 2, 2, 2, 2, true},
    };
    std::printf("%-22s | %7s | %7s | %7s | %7s | %7s | %7s\n", "",
                "filesys", "sockcli", "socksrv", "procs", "pipes",
                "signals");
    std::printf("-----------------------+---------+---------+---------+--"
                "-------+---------+--------\n");
    for (const auto &r : rows) {
        std::printf("%-22s | %s | %s | %s | %s | %s | %s%s\n", r.system,
                    cell(r.fs), cell(r.sock_client), cell(r.sock_server),
                    cell(r.procs), cell(r.pipes), cell(r.signals),
                    r.probed ? "  (probed)" : "");
    }
    std::printf("\n'single' = available to one process only (the paper's "
                "dagger); Browsix rows\nrequire the live probes above to "
                "pass: %s\n",
                all ? "ALL PASS" : "FAILURES PRESENT");
    return all ? 0 : 1;
}
