/**
 * @file
 * Figure 9 reproduction: execution time of Unix utilities under Native
 * (C, direct filesystem), Node.js (same utility, JS costs, direct OS),
 * and Browsix (same utility inside the kernel, message-passing
 * syscalls).
 *
 * Paper (Thinkpad X1, Chrome 2016):
 *   sha1sum: native 0.002 s | node 0.067 s | browsix 0.189 s
 *   ls:      native 0.001 s | node 0.044 s | browsix 0.108 s
 * Claimed shape: "most of the overhead can be attributed to JavaScript;
 * running in the BROWSIX environment adds roughly another 3x over
 * Node.js".
 */
#include <cstdio>

#include "apps/coreutils/coreutils.h"
#include "bench/harness.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

void
stageWorkload(Browsix &bx)
{
    // sha1sum target: the paper hashes /usr/bin/node (a multi-MB
    // binary); ls target: /usr/bin (dozens of entries). Both exist in
    // our tree; add the big stand-in binary.
    // ~1 MB: consistent with the paper's 2 ms native sha1sum time.
    bx.rootFs().writeFile("/data/nodebin", makeBlob(1024 * 1024, 99));
}

struct Row
{
    const char *command;
    double native_ms;
    double node_ms;
    double browsix_ms;
    double paper_native_ms;
    double paper_node_ms;
    double paper_browsix_ms;
};

void
printRow(const Row &r)
{
    std::printf("%-10s | %9.2f | %9.2f | %9.2f | %7.1fx | %6.2fx |"
                " (paper: %5.0f / %5.0f / %5.0f ms -> %4.1fx, %3.1fx)\n",
                r.command, r.native_ms, r.node_ms, r.browsix_ms,
                r.node_ms / std::max(r.native_ms, 0.01),
                r.browsix_ms / std::max(r.node_ms, 0.01),
                r.paper_native_ms, r.paper_node_ms, r.paper_browsix_ms,
                r.paper_node_ms / r.paper_native_ms,
                r.paper_browsix_ms / r.paper_node_ms);
}

} // namespace

int
main()
{
    const int kRuns = 5;
    jsvm::CostModel chrome(jsvm::BrowserProfile::chrome2016());

    std::printf("Figure 9: utilities under Native / Node.js / Browsix\n");
    std::printf("(browser profile: %s; %d runs each, mean)\n\n",
                chrome.profile().name.c_str(), kRuns);
    std::printf("%-10s | %9s | %9s | %9s | %8s | %7s\n", "command",
                "native ms", "node ms", "browsix ms", "node/nat",
                "bsx/node");
    std::printf("-----------+-----------+-----------+-----------+--------"
                "--+--------\n");

    // --- Native & Node share one plain VFS; Browsix gets the kernel. ---
    BootConfig cfg;
    cfg.profile = jsvm::BrowserProfile::chrome2016();
    Browsix bx(cfg);
    stageWorkload(bx);

    // sha1sum ---------------------------------------------------------
    Series native_sha = measure(1, kRuns, [&]() {
        std::string out = apps::nativeSha1sum(bx.fs(), "/data/nodebin");
        if (out.empty())
            std::abort();
    });
    Series node_sha = measure(1, kRuns, [&]() {
        runNodeDirect(bx.fs(), chrome, {"sha1sum", "/data/nodebin"});
    });
    Series bsx_sha = measure(1, kRuns, [&]() {
        auto r = bx.runArgv({"/usr/bin/sha1sum", "/data/nodebin"}, 120000);
        if (r.exitCode() != 0)
            std::abort();
    });
    printRow(Row{"sha1sum", native_sha.mean(), node_sha.mean(),
                 bsx_sha.mean(), 2, 67, 189});

    // ls ---------------------------------------------------------------
    Series native_ls = measure(1, kRuns, [&]() {
        apps::nativeLs(bx.fs(), "/usr/bin", false);
    });
    Series node_ls = measure(1, kRuns, [&]() {
        runNodeDirect(bx.fs(), chrome, {"ls", "/usr/bin"});
    });
    Series bsx_ls = measure(1, kRuns, [&]() {
        auto r = bx.runArgv({"/usr/bin/ls", "/usr/bin"}, 120000);
        if (r.exitCode() != 0)
            std::abort();
    });
    printRow(Row{"ls", native_ls.mean(), node_ls.mean(), bsx_ls.mean(),
                 1, 44, 108});

    // ls -l (per-entry lstat syscalls; heavier Browsix traffic) --------
    Series native_lsl = measure(1, kRuns, [&]() {
        apps::nativeLs(bx.fs(), "/usr/bin", true);
    });
    Series node_lsl = measure(1, kRuns, [&]() {
        runNodeDirect(bx.fs(), chrome, {"ls", "-l", "/usr/bin"});
    });
    Series bsx_lsl = measure(1, kRuns, [&]() {
        bx.runArgv({"/usr/bin/ls", "-l", "/usr/bin"}, 120000);
    });
    printRow(Row{"ls -l", native_lsl.mean(), node_lsl.mean(),
                 bsx_lsl.mean(), 1, 44, 108});

    std::printf(
        "\nShape check: native << node (JS tax: bundle parse + JS-number "
        "SHA-1),\nnode << browsix (worker spawn + message-passing "
        "syscalls), browsix/node in the\npaper is ~3x.\n");
    return 0;
}
