/**
 * @file
 * Figure 2 reproduction: component size breakdown. The paper reports the
 * lines of code of each Browsix component; here the table is computed
 * from this repository's sources at run time and printed alongside the
 * paper's numbers. (Ours are larger: the paper's components sit on a
 * browser + BrowserFS + Emscripten/GopherJS/Node, all of which this
 * reproduction had to build as well.)
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#ifndef BROWSIX_SRC_DIR
#define BROWSIX_SRC_DIR "."
#endif

namespace {

size_t
countLines(const std::filesystem::path &p)
{
    std::ifstream in(p);
    size_t n = 0;
    std::string line;
    while (std::getline(in, line))
        n++;
    return n;
}

size_t
locOf(const std::string &subdir)
{
    namespace fs = std::filesystem;
    fs::path root = fs::path(BROWSIX_SRC_DIR) / subdir;
    size_t total = 0;
    if (!fs::exists(root))
        return 0;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file())
            continue;
        auto ext = entry.path().extension();
        if (ext == ".cc" || ext == ".h" || ext == ".cpp")
            total += countLines(entry.path());
    }
    return total;
}

} // namespace

int
main()
{
    struct RowSpec
    {
        const char *component;
        std::vector<const char *> dirs;
        int paper_loc; // Figure 2 (TypeScript/JS lines), -1 if N/A
        const char *note;
    };
    const RowSpec rows[] = {
        {"Kernel", {"src/kernel"}, 2249, "tasks, syscalls, pipes, sockets"},
        {"Filesystem (BrowserFS+mods)", {"src/bfs"}, 1231,
         "here: full FS incl. overlay/HTTP"},
        {"Shared syscall module",
         {"src/runtime/syscall_proto.h", "src/runtime/syscall_proto.cc",
          "src/runtime/syscall_client.h", "src/runtime/syscall_client.cc"},
         421, "conventions + client layer"},
        {"Emscripten integration",
         {"src/runtime/emscripten", "src/runtime/emvm"}, 1557,
         "incl. the Emterpreter VM"},
        {"GopherJS integration", {"src/runtime/gopher"}, 926,
         "goroutines, channels, int64"},
        {"Node.js integration", {"src/runtime/node"}, 1742,
         "browser-node bindings"},
        {"Browser substrate", {"src/jsvm"}, -1,
         "(the browser itself: not in Fig.2)"},
        {"Applications", {"src/apps"}, -1,
         "(dash, make, TeX, coreutils, meme)"},
        {"Embedder API", {"src/core"}, -1, "(§4.1 surface)"},
    };

    std::printf("Figure 2: component lines of code (computed from this "
                "source tree)\n\n");
    std::printf("%-30s | %9s | %9s | %s\n", "component", "this repo",
                "paper", "notes");
    std::printf("-------------------------------+-----------+-----------+"
                "---------------------------\n");
    size_t total = 0;
    for (const auto &r : rows) {
        size_t loc = 0;
        for (const char *d : r.dirs) {
            std::filesystem::path p =
                std::filesystem::path(BROWSIX_SRC_DIR) / d;
            if (std::filesystem::is_regular_file(p))
                loc += countLines(p);
            else
                loc += locOf(d);
        }
        total += loc;
        if (r.paper_loc >= 0)
            std::printf("%-30s | %9zu | %9d | %s\n", r.component, loc,
                        r.paper_loc, r.note);
        else
            std::printf("%-30s | %9zu | %9s | %s\n", r.component, loc,
                        "-", r.note);
    }
    std::printf("-------------------------------+-----------+-----------+"
                "---------------------------\n");
    std::printf("%-30s | %9zu | %9d |\n", "TOTAL", total, 8126);
    std::printf("\n(The paper's 8,126 lines ride on an existing browser, "
                "BrowserFS, Emscripten,\nGopherJS and Node; this repo "
                "implements those substrates too, hence larger.)\n");
    return 0;
}
