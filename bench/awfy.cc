/**
 * @file
 * AWFY-style macro suite for the emvm execution tiers. Each kernel
 * (sieve, nbody, richards, permute, json) runs through the base, fused,
 * and trace tiers at the same problem size; every run's checksum is
 * checked against the native C++ reference, so a tier that gets fast by
 * getting wrong fails the bench instead of flattering it.
 *
 * Emits per-kernel wall times (`awfy_<name>_<tier>_ms`), per-kernel and
 * geomean speedup ratios against base (`awfy_<name>_trace_vs_base`,
 * `awfy_geomean_trace_vs_base`, ...), and the aggregate
 * `emvm_fused_dispatch_ratio` — fused dispatches per original
 * instruction retired, i.e. how much of the stream superinstruction
 * fusion actually swallowed. The ratio metrics are gated by hard
 * ceilings in check_trajectory.py: the trace tier must keep its >=2x
 * geomean over base, and fusion must keep collapsing the dispatch
 * count, on every future PR.
 */
#include <cmath>
#include <cstdio>

#include "apps/awfy/awfy.h"
#include "bench/harness.h"
#include "runtime/emvm/vm.h"

using namespace browsix;
using namespace browsix::bench;

int
main()
{
    const emvm::Tier tiers[] = {emvm::Tier::Base, emvm::Tier::Fused,
                                emvm::Tier::Trace};
    bool ok = true;
    double logSumFused = 0, logSumTrace = 0;
    uint64_t fusedDispatches = 0, fusedRetired = 0;
    uint64_t tracesEntered = 0, traceDeopts = 0;
    int kernels = 0;

    std::printf("%-10s %12s %12s %12s %10s %10s\n", "kernel", "base ms",
                "fused ms", "trace ms", "fused/base", "trace/base");
    for (const auto &b : apps::awfyBenches()) {
        const int64_t n = smokeMode() ? b.smokeN : b.benchN;
        const int64_t want = b.native(n);
        const emvm::Image img = apps::awfyImage(b.name);
        double ms[3] = {0, 0, 0};
        // Deliberately NOT measure(): the smoke clamp (one un-warmed
        // iteration) is fine for metrics gated relatively, but the awfy
        // ratio metrics face hard ceilings, and a cold single shot swings
        // the per-kernel ratios ~2x run to run. The smoke problem sizes
        // are a few milliseconds, so a warmed best-of-5 still keeps the
        // whole smoke bench under half a second.
        const int runs = 5;
        for (int t = 0; t < 3; t++) {
            Series s;
            auto once = [&] {
                emvm::Vm vm(img, tiers[t]);
                if (!vm.start("run", {n}) ||
                    vm.run() != emvm::RunState::Done ||
                    vm.exitCode() != want) {
                    std::fprintf(stderr,
                                 "FAIL: %s on %s tier: got %lld want %lld "
                                 "(%s)\n",
                                 b.name.c_str(), emvm::tierName(tiers[t]),
                                 static_cast<long long>(vm.exitCode()),
                                 static_cast<long long>(want),
                                 vm.trapMessage().c_str());
                    ok = false;
                }
                if (tiers[t] == emvm::Tier::Fused) {
                    fusedDispatches += vm.stats().fusedDispatches;
                    fusedRetired += vm.instructionsRetired();
                } else if (tiers[t] == emvm::Tier::Trace) {
                    tracesEntered += vm.stats().tracesEntered;
                    traceDeopts += vm.stats().traceDeopts;
                }
            };
            once(); // warmup
            for (int i = 0; i < runs; i++)
                s.add(timeMs(once));
            ms[t] = s.min();
            recordMetric("awfy",
                         "awfy_" + b.name + "_" +
                             emvm::tierName(tiers[t]) + "_ms",
                         ms[t], "ms");
        }
        double fusedRatio = ms[0] > 0 ? ms[1] / ms[0] : 1.0;
        double traceRatio = ms[0] > 0 ? ms[2] / ms[0] : 1.0;
        recordMetric("awfy", "awfy_" + b.name + "_fused_vs_base",
                     fusedRatio, "ratio");
        recordMetric("awfy", "awfy_" + b.name + "_trace_vs_base",
                     traceRatio, "ratio");
        logSumFused += std::log(fusedRatio);
        logSumTrace += std::log(traceRatio);
        kernels++;
        std::printf("%-10s %12.3f %12.3f %12.3f %9.2fx %9.2fx\n",
                    b.name.c_str(), ms[0], ms[1], ms[2], fusedRatio,
                    traceRatio);
    }

    const double geoFused = std::exp(logSumFused / kernels);
    const double geoTrace = std::exp(logSumTrace / kernels);
    const double dispatchRatio =
        fusedRetired ? static_cast<double>(fusedDispatches) / fusedRetired
                     : 1.0;
    std::printf("geomean fused/base %.3f, trace/base %.3f\n", geoFused,
                geoTrace);
    std::printf("fused dispatches per retired instruction: %.3f "
                "(traces entered %llu, deopts %llu)\n",
                dispatchRatio,
                static_cast<unsigned long long>(tracesEntered),
                static_cast<unsigned long long>(traceDeopts));
    recordMetric("awfy", "awfy_geomean_fused_vs_base", geoFused, "ratio");
    recordMetric("awfy", "awfy_geomean_trace_vs_base", geoTrace, "ratio");
    recordMetric("awfy", "emvm_fused_dispatch_ratio", dispatchRatio,
                 "ratio");
    recordMetric("awfy", "awfy_traces_entered",
                 static_cast<double>(tracesEntered), "count");
    recordMetric("awfy", "awfy_trace_deopts",
                 static_cast<double>(traceDeopts), "count");
    return ok ? 0 : 1;
}
