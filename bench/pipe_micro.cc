/**
 * @file
 * Pipe data-plane microbenchmarks.
 *
 * The headline measurement is the completion-deferral protocol on the
 * syscall ring (the `cat | grep` shape from §4/§6): a ring-convention
 * producer streams chunks into a pipe while a ring-convention consumer
 * polls for readiness and reaps batched READ SQEs. Blocking calls park
 * kernel-side (the SQE's ctx joins the pipe waiter list) and their CQEs
 * land when the event arrives, so the pipeline never falls back to
 * one-message-per-call — the A/B leg runs the identical byte stream
 * through the per-call sync convention. Reported per leg: wall clock,
 * Atomics notifies per ring call (the batching figure of merit),
 * deferred completions, and the span-to-span zero-copy completions the
 * pipe bridge produces. `read`/`write` latency percentiles go to the
 * bench JSON via the kernel's per-syscall histograms.
 *
 * The rest are the pure substrate pieces the google-benchmark version
 * of this file measured, ported to the harness JSON schema: pipe
 * throughput vs buffer size (the §3.4/§6 backpressure machinery) plus
 * the guest-heap span-to-span fast path, structured-clone cost, Int64
 * emulation vs native (the §5.2 meme bottleneck), JS-semantics SHA-1 vs
 * native (Figure 9's JS tax), and the Emterpreter VM's interpretation
 * rate (the §5.2 async-build tax).
 */
#include <cstdio>
#include <cstring>

#include <map>

#include "apps/coreutils/sha1.h"
#include "apps/tex/tex.h"
#include "bench/harness.h"
#include "kernel/pipe.h"
#include "runtime/emvm/vm.h"
#include "runtime/gopher/int64emu.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

// ---------------------------------------------------------------------
// ring-pipelined producer/consumer (cat | grep shape)
// ---------------------------------------------------------------------

/** Producer: stream chunks to fd 1 as batched WRITE SQEs.
 * argv: chunks, chunk_size, batch. */
int
pipeSrcMain(rt::EmEnv &env)
{
    int chunks = std::atoi(env.argv()[1].c_str());
    int csz = std::atoi(env.argv()[2].c_str());
    int batch = std::max(1, std::atoi(env.argv()[3].c_str()));
    rt::RingSyscalls *ring = env.ring();
    rt::SyncSyscalls *sync = env.syncCalls();
    if (!ring || !sync)
        return 2;
    int sent = 0;
    std::vector<uint32_t> seqs;
    while (sent < chunks) {
        int k = std::min(batch, chunks - sent);
        sync->resetScratch();
        seqs.clear();
        for (int j = 0; j < k; j++) {
            uint32_t p = sync->alloc(static_cast<size_t>(csz));
            std::memset(sync->heapData() + p, 'x',
                        static_cast<size_t>(csz));
            sync->heapData()[p + csz - 1] = '\n'; // line-oriented stream
            seqs.push_back(ring->submit(
                sys::WRITE,
                {1, static_cast<int32_t>(p), csz, 0, 0, 0}));
        }
        ring->flush(); // one doorbell (at most) for the whole batch
        for (uint32_t s : seqs) {
            // A write against a full pipe parks kernel-side; its CQE
            // arrives as a deferred completion once the reader drains.
            if (ring->wait(s).r0 != csz)
                return 1;
        }
        sent += k;
    }
    return 0;
}

/** Consumer: poll fd 0 for readiness, then reap a batch of READ SQEs —
 * the grep half: scan every chunk for line ends. argv: expected_bytes,
 * chunk_size, batch. */
int
pipeSinkMain(rt::EmEnv &env)
{
    long expected = std::atol(env.argv()[1].c_str());
    int csz = std::atoi(env.argv()[2].c_str());
    int batch = std::max(1, std::atoi(env.argv()[3].c_str()));
    rt::RingSyscalls *ring = env.ring();
    rt::SyncSyscalls *sync = env.syncCalls();
    if (!ring || !sync)
        return 2;
    long got = 0, lines = 0;
    bool eof = false;
    std::vector<uint32_t> seqs, ptrs;
    while (!eof) {
        // One readiness SQE covers the whole next batch: it parks (one
        // deferred CQE) only when the pipe is genuinely empty.
        std::vector<rt::EmEnv::PollSpec> pfds(1);
        pfds[0].fd = 0;
        pfds[0].events = sys::POLLIN_;
        if (env.poll(pfds) < 0)
            return 3;
        sync->resetScratch();
        seqs.clear();
        ptrs.clear();
        for (int j = 0; j < batch; j++) {
            uint32_t p = sync->alloc(static_cast<size_t>(csz));
            ptrs.push_back(p);
            seqs.push_back(ring->submit(
                sys::READ, {0, static_cast<int32_t>(p), csz, 0, 0, 0}));
        }
        ring->flush();
        for (size_t j = 0; j < seqs.size(); j++) {
            rt::RingSyscalls::Completion c = ring->wait(seqs[j]);
            if (c.r0 < 0)
                return 4;
            if (c.r0 == 0) {
                eof = true;
                continue;
            }
            got += c.r0;
            const uint8_t *d = sync->heapData() + ptrs[j];
            for (int32_t b = 0; b < c.r0; b++)
                lines += d[b] == '\n';
        }
    }
    return got == expected && lines > 0 ? 0 : 5;
}

/** Sync-fallback producer: one blocking write per chunk. */
int
pipeSrcSyncMain(rt::EmEnv &env)
{
    int chunks = std::atoi(env.argv()[1].c_str());
    int csz = std::atoi(env.argv()[2].c_str());
    std::string chunk(static_cast<size_t>(csz), 'x');
    chunk.back() = '\n';
    for (int i = 0; i < chunks; i++) {
        if (env.write(1, chunk) != csz)
            return 1;
    }
    return 0;
}

/** Sync-fallback consumer: one blocking read per chunk. */
int
pipeSinkSyncMain(rt::EmEnv &env)
{
    long expected = std::atol(env.argv()[1].c_str());
    int csz = std::atoi(env.argv()[2].c_str());
    long got = 0, lines = 0;
    for (;;) {
        bfs::Buffer buf;
        int64_t n = env.read(0, buf, static_cast<size_t>(csz));
        if (n < 0)
            return 4;
        if (n == 0)
            break;
        got += n;
        for (int64_t b = 0; b < n; b++)
            lines += buf[static_cast<size_t>(b)] == '\n';
    }
    return got == expected && lines > 0 ? 0 : 5;
}

/** Plumbing: pipe2, spawn src | sink across it, reap both.
 * argv: chunks, chunk_size, batch, src_exe, sink_exe. */
int
pipeDriverMain(rt::EmEnv &env)
{
    const std::vector<std::string> &argv = env.argv();
    long total = std::atol(argv[1].c_str()) * std::atol(argv[2].c_str());
    int fds[2];
    if (env.pipe2(fds) != 0)
        return 2;
    int src = env.spawn({argv[4], argv[1], argv[2], argv[3]},
                        {0, fds[1], 2});
    int sink = env.spawn({argv[5], std::to_string(total), argv[2], argv[3]},
                         {fds[0], 1, 2});
    // Drop the driver's pipe ends so the sink sees EOF when src exits.
    env.close(fds[0]);
    env.close(fds[1]);
    if (src < 0 || sink < 0)
        return 3;
    int st = 0;
    if (env.waitpid(src, &st, 0) != src || sys::wexitstatus(st) != 0)
        return 4;
    if (env.waitpid(sink, &st, 0) != sink || sys::wexitstatus(st) != 0)
        return 5;
    return 0;
}

// ---------------------------------------------------------------------
// epoll+sendfile server (accept -> interest list -> kernel-side move)
// ---------------------------------------------------------------------

/** Server: batched ACCEPT SQEs park on the listener, accepted fds join
 * an epoll interest list, and sendfile moves the payload file into each
 * connection kernel-side — no guest-heap bounce on the data plane.
 * argv: port, nconns, payload_bytes. */
int
serverMain(rt::EmEnv &env)
{
    int port = std::atoi(env.argv()[1].c_str());
    int nconns = std::atoi(env.argv()[2].c_str());
    long payload = std::atol(env.argv()[3].c_str());
    rt::RingSyscalls *ring = env.ring();
    rt::SyncSyscalls *sync = env.syncCalls();
    if (!ring || !sync)
        return 2;
    int f = env.open("/tmp/srv_payload",
                     bfs::flags::CREAT | bfs::flags::RDWR);
    if (f < 0)
        return 3;
    // Batched payload writes: one doorbell covers the whole file.
    {
        sync->resetScratch();
        std::vector<std::pair<uint32_t, int32_t>> ws;
        for (long w = 0; w < payload; w += 4096) {
            int32_t n = static_cast<int32_t>(
                payload - w < 4096 ? payload - w : 4096);
            uint32_t p = sync->alloc(static_cast<size_t>(n));
            std::memset(sync->heapData() + p, 'y',
                        static_cast<size_t>(n));
            sync->heapData()[p + n - 1] = '\n';
            ws.emplace_back(
                ring->submit(sys::WRITE,
                             {f, static_cast<int32_t>(p), n, 0, 0, 0}),
                n);
        }
        ring->flush();
        for (auto &w : ws) {
            if (ring->wait(w.first).r0 != w.second)
                return 4;
        }
    }
    int s = env.socket();
    if (s < 0 || env.bind(s, port) != 0 || env.listen(s, nconns) != 0)
        return 5;
    int ep = env.epollCreate();
    if (ep < 0)
        return 6;
    // All accepts up front, one doorbell: every SQE parks on the
    // listener's rendezvous and its deferred CQE carries a connection.
    std::vector<uint32_t> seqs;
    for (int i = 0; i < nconns; i++)
        seqs.push_back(ring->submit(sys::ACCEPT, {s, 0, 0, 0, 0, 0}));
    ring->flush();
    env.write(1, "ready\n"); // the driver may spawn clients now
    std::map<int, long> sent;
    std::vector<int> conns;
    for (uint32_t q : seqs) {
        int c = static_cast<int>(ring->wait(q).r0);
        if (c < 0)
            return 7;
        conns.push_back(c);
        sent[c] = 0;
    }
    // The interest list is edited in one batch too: EPOLL_CTL is
    // integer-only, so nothing needs the scratch region.
    seqs.clear();
    for (int c : conns)
        seqs.push_back(ring->submit(
            sys::EPOLL_CTL,
            {ep, sys::EPOLL_CTL_ADD_, c, sys::POLLOUT_, 0, 0}));
    ring->flush();
    for (uint32_t q : seqs) {
        if (ring->wait(q).r0 != 0)
            return 8;
    }
    int open_conns = nconns;
    std::vector<rt::EmEnv::PollSpec> evs(static_cast<size_t>(nconns));
    while (open_conns > 0) {
        int n = env.epollWait(ep, evs);
        if (n < 0)
            return 9;
        // One SENDFILE SQE per ready connection, one doorbell for the
        // round. When a connection's pipe fills, that SQE parks and
        // re-drives off the client's drain cycles (deferred CQE).
        std::vector<std::pair<int, uint32_t>> sf;
        for (int j = 0; j < n; j++) {
            int c = evs[j].fd;
            if (!(evs[j].revents & sys::POLLOUT_))
                return 10;
            sf.emplace_back(
                c, ring->submit(
                       sys::SENDFILE,
                       {c, f, static_cast<int32_t>(sent[c]),
                        static_cast<int32_t>(payload - sent[c]), 0, 0}));
        }
        ring->flush();
        std::vector<int> finished;
        for (auto &e : sf) {
            int64_t moved = ring->wait(e.second).r0;
            if (moved < 0)
                return 11;
            sent[e.first] += moved;
            if (sent[e.first] >= payload)
                finished.push_back(e.first);
        }
        seqs.clear();
        for (int c : finished) {
            seqs.push_back(ring->submit(
                sys::EPOLL_CTL, {ep, sys::EPOLL_CTL_DEL_, c, 0, 0, 0}));
            seqs.push_back(ring->submit(sys::CLOSE, {c, 0, 0, 0, 0, 0}));
            open_conns--;
        }
        ring->flush();
        for (uint32_t q : seqs) {
            if (ring->wait(q).r0 != 0)
                return 12;
        }
    }
    env.close(ep);
    env.close(s);
    env.close(f);
    return 0;
}

/** Client: ring CONNECT (parks until the listener takes it), then the
 * consumer shape over the socket — poll for readability, reap batched
 * READ SQEs until EOF. argv: port, expected_bytes, chunk, batch. */
int
clientMain(rt::EmEnv &env)
{
    int port = std::atoi(env.argv()[1].c_str());
    long expected = std::atol(env.argv()[2].c_str());
    int csz = std::atoi(env.argv()[3].c_str());
    int batch = std::max(1, std::atoi(env.argv()[4].c_str()));
    rt::RingSyscalls *ring = env.ring();
    rt::SyncSyscalls *sync = env.syncCalls();
    if (!ring || !sync)
        return 2;
    int s = env.socket();
    if (s < 0)
        return 3;
    if (env.connect(s, port) != 0)
        return 4;
    long got = 0, lines = 0;
    std::vector<uint32_t> seqs, ptrs;
    std::vector<rt::EmEnv::PollSpec> pfds(1);
    while (got < expected) {
        pfds[0].fd = s;
        pfds[0].events = sys::POLLIN_;
        if (env.poll(pfds) < 0)
            return 5;
        // Only submit reads the remaining byte count can satisfy: a
        // speculative read past the payload would park until the
        // server's close and pay a needless deferred wake.
        long want = (expected - got + csz - 1) / csz;
        int k = want < batch ? static_cast<int>(want) : batch;
        sync->resetScratch();
        seqs.clear();
        ptrs.clear();
        for (int j = 0; j < k; j++) {
            uint32_t p = sync->alloc(static_cast<size_t>(csz));
            ptrs.push_back(p);
            seqs.push_back(ring->submit(
                sys::READ, {s, static_cast<int32_t>(p), csz, 0, 0, 0}));
        }
        ring->flush();
        bool eof = false;
        for (size_t j = 0; j < seqs.size(); j++) {
            rt::RingSyscalls::Completion c = ring->wait(seqs[j]);
            if (c.r0 < 0)
                return 6;
            if (c.r0 == 0) {
                eof = true;
                continue;
            }
            got += c.r0;
            const uint8_t *d = sync->heapData() + ptrs[j];
            for (int32_t b = 0; b < c.r0; b++)
                lines += d[b] == '\n';
        }
        if (eof)
            break;
    }
    if (got != expected || lines <= 0)
        return 7;
    // EOF confirmation: poll wakes on the server's close, then a single
    // read observes 0.
    pfds[0].fd = s;
    pfds[0].events = sys::POLLIN_;
    if (env.poll(pfds) < 0)
        return 8;
    bfs::Buffer b;
    if (env.read(s, b, 1) != 0)
        return 9;
    env.close(s);
    return 0;
}

/** Plumbing: spawn the server, wait for its listen announcement over a
 * pipe, fan out clients, reap everything.
 * argv: port, nconns, payload_bytes, chunk, batch. */
int
serverDriverMain(rt::EmEnv &env)
{
    const std::vector<std::string> &argv = env.argv();
    int nconns = std::atoi(argv[2].c_str());
    int p[2];
    if (env.pipe2(p) != 0)
        return 2;
    int srv = env.spawn(
        {"/usr/bin/srvbench-server", argv[1], argv[2], argv[3]},
        {0, p[1], 2});
    if (srv < 0)
        return 3;
    env.close(p[1]);
    bfs::Buffer b;
    if (env.read(p[0], b, 6) <= 0) // blocks until "ready\n"
        return 4;
    env.close(p[0]);
    std::vector<int> clients;
    for (int i = 0; i < nconns; i++) {
        int c = env.spawn({"/usr/bin/srvbench-client", argv[1], argv[3],
                           argv[4], argv[5]},
                          {0, 1, 2});
        if (c < 0)
            return 5;
        clients.push_back(c);
    }
    int st = 0;
    for (int c : clients) {
        if (env.waitpid(c, &st, 0) != c || sys::wexitstatus(st) != 0)
            return 6;
    }
    if (env.waitpid(srv, &st, 0) != srv || sys::wexitstatus(st) != 0)
        return 7;
    return 0;
}

void
registerPipeBench()
{
    apps::registerAllPrograms();
    auto &reg = apps::ProgramRegistry::instance();
    reg.add(apps::ProgramSpec{"pipebench-src", apps::RuntimeKind::EmRing,
                              64, pipeSrcMain, nullptr});
    reg.add(apps::ProgramSpec{"pipebench-sink", apps::RuntimeKind::EmRing,
                              64, pipeSinkMain, nullptr});
    reg.add(apps::ProgramSpec{"pipebench-src-sync",
                              apps::RuntimeKind::EmSync, 64,
                              pipeSrcSyncMain, nullptr});
    reg.add(apps::ProgramSpec{"pipebench-sink-sync",
                              apps::RuntimeKind::EmSync, 64,
                              pipeSinkSyncMain, nullptr});
    reg.add(apps::ProgramSpec{"pipebench-driver", apps::RuntimeKind::EmRing,
                              64, pipeDriverMain, nullptr});
    reg.add(apps::ProgramSpec{"pipebench-driver-sync",
                              apps::RuntimeKind::EmSync, 64,
                              pipeDriverMain, nullptr});
    reg.add(apps::ProgramSpec{"srvbench-server", apps::RuntimeKind::EmRing,
                              64, serverMain, nullptr});
    reg.add(apps::ProgramSpec{"srvbench-client", apps::RuntimeKind::EmRing,
                              64, clientMain, nullptr});
    reg.add(apps::ProgramSpec{"srvbench-driver", apps::RuntimeKind::EmRing,
                              64, serverDriverMain, nullptr});
}

struct LegResult
{
    double ms = 0;
    double calls = 0;
    double notifies_per_call = 0;
    double deferred = 0;
    double zero_copy = 0;
};

LegResult
runPipeline(Browsix &bx, const std::string &driver, int chunks, int csz,
            int batch, const std::string &src, const std::string &sink)
{
    std::vector<std::string> argv = {driver,
                                     std::to_string(chunks),
                                     std::to_string(csz),
                                     std::to_string(batch),
                                     src,
                                     sink};
    const int reps = smokeMode() ? 1 : 3;
    LegResult best;
    best.ms = 1e18;
    for (int rep = 0; rep < reps; rep++) {
        kernel::KernelStats before = bx.kernel().stats();
        RunResult r;
        double ms = timeMs([&]() { r = bx.runArgv(argv, 120000); });
        if (!r.ok || r.exitCode() != 0) {
            std::fprintf(stderr, "pipe_micro: %s failed (rc=%d)\n",
                         driver.c_str(), r.exitCode());
            std::exit(1);
        }
        kernel::KernelStats after = bx.kernel().stats();
        LegResult cur;
        cur.ms = ms;
        cur.calls = static_cast<double>(after.ringSyscallCount -
                                        before.ringSyscallCount);
        double notifies = static_cast<double>(after.ringNotifies -
                                              before.ringNotifies);
        cur.notifies_per_call =
            cur.calls > 0 ? notifies / cur.calls : 0;
        cur.deferred = static_cast<double>(after.ringDeferredCompletions -
                                           before.ringDeferredCompletions);
        cur.zero_copy = static_cast<double>(after.zeroCopyCompletions -
                                            before.zeroCopyCompletions);
        if (cur.ms < best.ms)
            best = cur;
    }
    return best;
}

/** Minimum wall-clock over `reps` runs of fn (1 in smoke mode). */
double
bestMs(int reps, const std::function<void()> &fn)
{
    if (smokeMode())
        reps = 1;
    double best = 1e18;
    for (int i = 0; i < reps; i++)
        best = std::min(best, timeMs(fn));
    return best;
}

} // namespace

int
main()
{
    registerPipeBench();
    BootConfig cfg;
    cfg.profile = jsvm::BrowserProfile::chrome2016();
    Browsix bx(cfg);
    auto &reg = apps::ProgramRegistry::instance();
    for (const char *p :
         {"pipebench-src", "pipebench-sink", "pipebench-src-sync",
          "pipebench-sink-sync", "pipebench-driver",
          "pipebench-driver-sync", "srvbench-server", "srvbench-client",
          "srvbench-driver"}) {
        bx.rootFs().writeFile(std::string("/usr/bin/") + p,
                              reg.bundleFor(p));
    }

    // ---- deferred-CQE pipeline vs per-call sync fallback ----
    const int kChunks = smokeMode() ? 48 : 512;
    const int kChunkBytes = 512;
    const int kBatch = 8;
    LegResult ring = runPipeline(bx, "/usr/bin/pipebench-driver", kChunks,
                                 kChunkBytes, kBatch, "/usr/bin/pipebench-src",
                                 "/usr/bin/pipebench-sink");
    // ---- epoll+sendfile server leg: accept, connect, epoll_wait and
    // sendfile all complete through deferred CQEs ----
    const int kConns = 4;
    const long kPayload = smokeMode() ? 24 * 1024 : 96 * 1024;
    {
        kernel::KernelStats before = bx.kernel().stats();
        RunResult r;
        double ms = timeMs([&]() {
            r = bx.runArgv({"/usr/bin/srvbench-driver", "9000",
                            std::to_string(kConns),
                            std::to_string(kPayload), "1024", "8"},
                           120000);
        });
        if (!r.ok || r.exitCode() != 0) {
            std::fprintf(stderr,
                         "pipe_micro: server leg failed (rc=%d)\n",
                         r.exitCode());
            return 1;
        }
        kernel::KernelStats after = bx.kernel().stats();
        double calls = static_cast<double>(after.ringSyscallCount -
                                           before.ringSyscallCount);
        double notifies = static_cast<double>(after.ringNotifies -
                                              before.ringNotifies);
        double per_call = calls > 0 ? notifies / calls : 0;
        double deferred =
            static_cast<double>(after.ringDeferredCompletions -
                                before.ringDeferredCompletions);
        double sf_bytes = static_cast<double>(after.sendfileBytes -
                                              before.sendfileBytes);
        double parked =
            static_cast<double>((after.connectsParked -
                                 before.connectsParked) +
                                (after.epollWaitsParked -
                                 before.epollWaitsParked));
        std::printf("\nepoll+sendfile server (%d conns x %ld B): "
                    "%.2f ms, %.0f ring calls, %.3f notifies/ringcall, "
                    "%.0f deferred, %.0f parked, %.0f sendfile bytes\n",
                    kConns, kPayload, ms, calls, per_call, deferred,
                    parked, sf_bytes);
        recordMetric("pipe_micro", "server_ring_ms", ms, "ms");
        recordMetric("pipe_micro", "server_ring_notifies_per_call",
                     per_call, "ratio");
        recordMetric("pipe_micro", "server_ring_deferred_completions",
                     deferred, "calls");
        recordMetric("pipe_micro", "server_blocking_parks", parked,
                     "calls");
        recordMetric("pipe_micro", "server_sendfile_bytes", sf_bytes,
                     "bytes");
    }

    // Snapshot the data-plane latency histograms before the sync leg
    // muddies them: every read/write so far went through the ring legs.
    const kernel::KernelStats &st = bx.kernel().stats();
    for (const char *name :
         {"read", "write", "poll", "epoll_wait", "sendfile"}) {
        if (const kernel::LatencyHistogram *h = st.latency(name))
            recordHistogram("pipe_micro", std::string("ring_") + name, *h);
    }
    LegResult sync = runPipeline(
        bx, "/usr/bin/pipebench-driver-sync", kChunks, kChunkBytes, kBatch,
        "/usr/bin/pipebench-src-sync", "/usr/bin/pipebench-sink-sync");

    std::printf("deferred-CQE pipeline (%d x %d B chunks, batch %d):\n\n",
                kChunks, kChunkBytes, kBatch);
    std::printf("%-26s | %10s | %10s | %18s | %10s | %10s\n", "leg", "ms",
                "ringcalls", "notifies/ringcall", "deferred", "zerocopy");
    std::printf("---------------------------+------------+------------+--"
                "------------------+------------+------------\n");
    std::printf("%-26s | %10.2f | %10.0f | %18.3f | %10.0f | %10.0f\n",
                "ring (deferral protocol)", ring.ms, ring.calls,
                ring.notifies_per_call, ring.deferred, ring.zero_copy);
    std::printf("%-26s | %10.2f | %10.0f | %18.3f | %10.0f | %10.0f\n",
                "sync fallback", sync.ms, sync.calls,
                sync.notifies_per_call, sync.deferred, sync.zero_copy);
    std::printf("\nring vs sync wall clock: %.2fx\n",
                ring.ms > 0 ? sync.ms / ring.ms : 0);

    recordMetric("pipe_micro", "pipeline_ring_ms", ring.ms, "ms");
    recordMetric("pipe_micro", "pipeline_sync_ms", sync.ms, "ms");
    recordMetric("pipe_micro", "pipeline_ring_notifies_per_call",
                 ring.notifies_per_call, "ratio");
    recordMetric("pipe_micro", "pipeline_ring_deferred_completions",
                 ring.deferred, "calls");
    recordMetric("pipe_micro", "pipeline_ring_zero_copy_completions",
                 ring.zero_copy, "calls");
    recordMetric("pipe_micro", "pipeline_sync_over_ring_speedup",
                 ring.ms > 0 ? sync.ms / ring.ms : 0, "ratio");

    // ---- in-kernel pipe throughput vs buffer size ----
    const size_t kTotal = smokeMode() ? (1u << 16) : (1u << 20);
    for (size_t capacity : {size_t(4096), size_t(65536), size_t(1) << 20}) {
        double ms = bestMs(3, [&]() {
            kernel::Pipe pipe(capacity);
            bfs::Buffer chunk(4096, 'x');
            size_t written = 0, read = 0;
            // Interleave writes and drains: with a small buffer this
            // goes through the backpressure wait queues constantly.
            while (read < kTotal) {
                if (written < kTotal) {
                    pipe.write(chunk,
                               [&](int, size_t n) { written += n; });
                }
                pipe.read(8192, [&](int, bfs::BufferPtr d) {
                    read += d->size();
                });
            }
        });
        double mbps = kTotal / 1e6 / (ms / 1000.0);
        std::printf("pipe transfer, %7zu B buffer: %8.1f MB/s\n", capacity,
                    mbps);
        recordMetric("pipe_micro",
                     "pipe_transfer_cap" + std::to_string(capacity) +
                         "_mbps",
                     mbps, "MB/s");
    }

    // ---- span-to-span fast path (guest heap -> guest heap) ----
    {
        kernel::Pipe pipe(4096);
        std::vector<uint8_t> dst(4096), src(4096, 'y');
        size_t moved = 0;
        const size_t kSpanTotal = smokeMode() ? (1u << 18) : (1u << 22);
        double ms = bestMs(3, [&]() {
            moved = 0;
            while (moved < kSpanTotal) {
                // Reader parks first, so the write lands span-to-span
                // (one memcpy, no deque Buffer).
                pipe.readInto(bfs::ByteSpan{dst.data(), dst.size()},
                              [&](int, size_t n) { moved += n; });
                pipe.writeFrom(
                    bfs::ConstByteSpan{src.data(), src.size()},
                    [](int, size_t) {});
            }
        });
        double mbps = kSpanTotal / 1e6 / (ms / 1000.0);
        std::printf("pipe span-to-span:            %8.1f MB/s "
                    "(%llu B moved without a deque Buffer)\n",
                    mbps,
                    static_cast<unsigned long long>(pipe.spanToSpanBytes()));
        if (pipe.spanToSpanBytes() == 0) {
            std::fprintf(stderr,
                         "pipe_micro: span-to-span path never taken\n");
            return 1;
        }
        recordMetric("pipe_micro", "pipe_span_to_span_mbps", mbps, "MB/s");
    }

    // ---- structured clone ----
    for (size_t bytes : {size_t(64), size_t(4096), size_t(65536)}) {
        jsvm::Value msg = jsvm::Value::object();
        msg.set("data",
                jsvm::Value::bytes(std::vector<uint8_t>(bytes, 7)));
        msg.set("name", jsvm::Value("write"));
        const int kClones = smokeMode() ? 200 : 5000;
        volatile size_t sink = 0;
        double ms = bestMs(3, [&]() {
            for (int i = 0; i < kClones; i++) {
                jsvm::Value copy = msg.clone();
                sink += copy.type() == jsvm::Value::Type::Object;
            }
        });
        recordMetric("pipe_micro",
                     "structured_clone_" + std::to_string(bytes) + "b_us",
                     ms * 1000.0 / kClones, "us");
        (void)sink;
    }

    // ---- int64 emulation vs native ----
    {
        const int kRounds = smokeMode() ? 2000 : 200000;
        int64_t nx = 0x12345678, ny = 0x9abcdef0;
        double native_ms = bestMs(3, [&]() {
            for (int i = 0; i < kRounds; i++) {
                nx = nx * ny + 12345;
                ny = ny ^ (nx >> 13);
            }
        });
        rt::Int64 ex(0x12345678), ey(0x9abcdef0);
        double emu_ms = bestMs(3, [&]() {
            for (int i = 0; i < kRounds; i++) {
                ex = ex * ey + rt::Int64(12345);
                ey = ey ^ (ex >> 13);
            }
        });
        double slowdown = native_ms > 0 ? emu_ms / native_ms : 0;
        std::printf("int64 emulation slowdown:     %8.1fx\n", slowdown);
        recordMetric("pipe_micro", "int64_emulation_slowdown", slowdown,
                     "ratio");
        if (nx == 42 && ex.low() == 43)
            std::printf("(unreachable)\n"); // keep the loops live
    }

    // ---- SHA-1: native vs JS semantics ----
    {
        std::vector<uint8_t> data(65536, 0xAB);
        const int kHashes = smokeMode() ? 4 : 64;
        volatile uint32_t sink = 0;
        double native_ms = bestMs(3, [&]() {
            for (int i = 0; i < kHashes; i++)
                sink += apps::sha1Native(data)[0];
        });
        double js_ms = bestMs(3, [&]() {
            for (int i = 0; i < kHashes; i++)
                sink += apps::sha1Js(data)[0];
        });
        double native_mbps =
            kHashes * data.size() / 1e6 / (native_ms / 1000.0);
        double js_mbps = kHashes * data.size() / 1e6 / (js_ms / 1000.0);
        std::printf("sha1 native: %.1f MB/s, JS semantics: %.1f MB/s\n",
                    native_mbps, js_mbps);
        recordMetric("pipe_micro", "sha1_native_mbps", native_mbps,
                     "MB/s");
        recordMetric("pipe_micro", "sha1_js_mbps", js_mbps, "MB/s");
        (void)sink;
    }

    // ---- Emterpreter VM interpretation rate ----
    {
        const int kIters = smokeMode() ? 5000 : 100000;
        volatile int64_t sink = 0;
        double native_ms =
            bestMs(3, [&]() { sink += apps::typesetNative(7, kIters); });
        const emvm::Image &img = apps::typesetImage();
        double vm_ms = bestMs(3, [&]() {
            emvm::Vm vm(img);
            vm.start("typeset", {7, kIters});
            vm.run();
            sink += vm.exitCode();
        });
        recordMetric("pipe_micro", "typeset_native_mops",
                     kIters / 1000.0 / native_ms, "Mops/s");
        recordMetric("pipe_micro", "typeset_emterpreted_mops",
                     kIters / 1000.0 / vm_ms, "Mops/s");
        (void)sink;
    }
    return 0;
}
