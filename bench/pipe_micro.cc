/**
 * @file
 * google-benchmark microbenchmarks for the pure substrate pieces:
 * pipe throughput vs buffer size (the §3.4/§6 backpressure machinery),
 * structured-clone cost, Int64 emulation vs native (the §5.2 meme
 * bottleneck), JS-semantics SHA-1 vs native (Figure 9's JS tax), and the
 * Emterpreter VM's interpretation rate (the §5.2 async-build tax).
 */
#include <benchmark/benchmark.h>

#include "apps/coreutils/sha1.h"
#include "apps/tex/tex.h"
#include "jsvm/value.h"
#include "kernel/pipe.h"
#include "runtime/emvm/vm.h"
#include "runtime/gopher/int64emu.h"

using namespace browsix;

// ---------- pipes ----------

static void
BM_PipeTransfer(benchmark::State &state)
{
    size_t capacity = static_cast<size_t>(state.range(0));
    size_t total = 1 << 20;
    for (auto _ : state) {
        kernel::Pipe pipe(capacity);
        bfs::Buffer chunk(4096, 'x');
        size_t written = 0, read = 0;
        // Interleave writes and drains: with a small buffer this goes
        // through the backpressure wait queues constantly.
        while (read < total) {
            if (written < total) {
                pipe.write(chunk, [&](int, size_t n) { written += n; });
            }
            pipe.read(8192, [&](int, bfs::BufferPtr d) {
                read += d->size();
            });
        }
        benchmark::DoNotOptimize(read);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            total);
}
BENCHMARK(BM_PipeTransfer)->Arg(4096)->Arg(65536)->Arg(1 << 20);

// ---------- structured clone ----------

static void
BM_StructuredClone(benchmark::State &state)
{
    size_t bytes = static_cast<size_t>(state.range(0));
    jsvm::Value msg = jsvm::Value::object();
    msg.set("data", jsvm::Value::bytes(std::vector<uint8_t>(bytes, 7)));
    msg.set("name", jsvm::Value("write"));
    for (auto _ : state) {
        jsvm::Value copy = msg.clone();
        benchmark::DoNotOptimize(copy);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            bytes);
}
BENCHMARK(BM_StructuredClone)->Arg(64)->Arg(4096)->Arg(65536);

// ---------- int64 emulation ----------

static void
BM_Int64Native(benchmark::State &state)
{
    int64_t x = 0x12345678, y = 0x9abcdef0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; i++) {
            x = x * y + 12345;
            y = y ^ (x >> 13);
        }
        benchmark::DoNotOptimize(x);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_Int64Native);

static void
BM_Int64Emulated(benchmark::State &state)
{
    rt::Int64 x(0x12345678), y(0x9abcdef0);
    for (auto _ : state) {
        for (int i = 0; i < 1000; i++) {
            x = x * y + rt::Int64(12345);
            y = y ^ (x >> 13);
        }
        benchmark::DoNotOptimize(x);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_Int64Emulated);

static void
BM_Int64EmulatedDiv(benchmark::State &state)
{
    rt::Int64 x(987654321012345ll), y(12345);
    for (auto _ : state) {
        benchmark::DoNotOptimize(x / y);
    }
}
BENCHMARK(BM_Int64EmulatedDiv);

// ---------- SHA-1 ----------

static void
BM_Sha1Native(benchmark::State &state)
{
    std::vector<uint8_t> data(65536, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(apps::sha1Native(data));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            data.size());
}
BENCHMARK(BM_Sha1Native);

static void
BM_Sha1JsSemantics(benchmark::State &state)
{
    std::vector<uint8_t> data(65536, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(apps::sha1Js(data));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            data.size());
}
BENCHMARK(BM_Sha1JsSemantics);

// ---------- Emterpreter VM ----------

static void
BM_TypesetNative(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(apps::typesetNative(7, 100000));
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TypesetNative);

static void
BM_TypesetEmterpreted(benchmark::State &state)
{
    const emvm::Image &img = apps::typesetImage();
    for (auto _ : state) {
        emvm::Vm vm(img);
        vm.start("typeset", {7, 100000});
        vm.run();
        benchmark::DoNotOptimize(vm.exitCode());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TypesetEmterpreted);

BENCHMARK_MAIN();
