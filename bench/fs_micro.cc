/**
 * @file
 * Filesystem ablation (§3.6): lazy vs eager overlay initialization.
 *
 * "BROWSIX modifies BrowserFS's overlay backend to lazily load files
 * from its read-only underlay; the original version eagerly read all
 * files ... upon initialization. BROWSIX's approach drastically improves
 * the startup time of the kernel [and] minimizes the amount of data
 * transferred over the network."
 *
 * Sweeps the size of the staged remote tree and reports kernel-startup
 * time and bytes transferred for both strategies, plus the first-access
 * latency lazy loading pays instead.
 *
 * Also sweeps the read path's data movement: pread through the historical
 * copying pipeline (backend allocates an intermediate bfs::Buffer, the
 * kernel memcpys it into the guest heap) against the zero-copy
 * preadInto pipeline (the backend fills the caller's window in place) at
 * 4 KiB / 64 KiB / 1 MiB.
 */
#include <cstdio>
#include <cstring>

#include "apps/tex/tex.h"
#include "bench/harness.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

struct Result
{
    double initMs;
    uint64_t bytes;
    uint64_t fetches;
};

Result
runInit(size_t n_files, bool lazy)
{
    auto store = std::make_shared<bfs::HttpStore>();
    for (size_t i = 0; i < n_files; i++) {
        store->put("/tree/pkg" + std::to_string(i) + ".sty",
                   std::string(2048 + (i % 5) * 1024, '%'));
    }
    auto cache = std::make_shared<bfs::BrowserHttpCache>();
    jsvm::EventLoop loop;
    auto http = std::make_shared<bfs::HttpBackend>(
        store, cache, &loop, bfs::NetworkParams{/*rttUs=*/2000,
                                                /*bytesPerUs=*/6.25});
    auto upper = std::make_shared<bfs::InMemBackend>();
    bfs::OverlayBackend overlay(upper, http,
                                bfs::OverlayBackend::Options(lazy));
    bool done = false;
    double ms = timeMs([&]() {
        overlay.initialize([&](int) { done = true; });
        while (!done)
            loop.pumpOne(true);
    });
    return Result{ms, http->bytesFetched(), http->fetchCount()};
}

/** Per-op µs for one pread size: the copying path models the pre-zero-copy
 * kernel (backend Buffer + memcpy into the destination); the zero-copy
 * path is preadInto straight into the destination. */
void
preadSweep(size_t bytes, const std::string &label)
{
    auto mem = std::make_shared<bfs::InMemBackend>();
    mem->writeFile("/blob", makeBlob(bytes, 0x5eed));
    bfs::OpenFilePtr f;
    mem->open("/blob", bfs::flags::RDONLY, 0,
              [&](int, bfs::OpenFilePtr file) { f = std::move(file); });

    std::vector<uint8_t> dest(bytes);
    const int iters =
        smokeMode() ? 1 : static_cast<int>(std::max<size_t>(
                              16, (8u << 20) / std::max<size_t>(bytes, 1)));

    double copy_ms = timeMs([&]() {
        for (int i = 0; i < iters; i++) {
            f->pread(0, bytes, [&](int, bfs::BufferPtr data) {
                // What completeData used to do: bounce the intermediate
                // buffer into the caller's memory.
                std::memcpy(dest.data(), data->data(), data->size());
            });
        }
    });
    double zero_ms = timeMs([&]() {
        for (int i = 0; i < iters; i++) {
            f->preadInto(0, bfs::ByteSpan{dest.data(), bytes},
                         [](int, size_t) {});
        }
    });
    double copy_us = copy_ms * 1000.0 / iters;
    double zero_us = zero_ms * 1000.0 / iters;
    std::printf("%8s | %12.2f | %12.2f | %10.2fx\n", label.c_str(),
                copy_us, zero_us, zero_us > 0 ? copy_us / zero_us : 0);
    recordMetric("fs_micro", "pread_copy_" + label + "_us", copy_us);
    recordMetric("fs_micro", "pread_zerocopy_" + label + "_us", zero_us);
}

/** Per-op µs for one pwrite size: the copying path models the
 * pre-zero-copy kernel (argData materializes an intermediate bfs::Buffer
 * from the guest window, then pwrite); the zero-copy path hands the
 * window straight to pwriteFrom. */
void
pwriteSweep(size_t bytes, const std::string &label)
{
    auto mem = std::make_shared<bfs::InMemBackend>();
    mem->writeFile("/blob", makeBlob(bytes, 0x5eed));
    bfs::OpenFilePtr f;
    mem->open("/blob", bfs::flags::RDWR, 0,
              [&](int, bfs::OpenFilePtr file) { f = std::move(file); });

    std::vector<uint8_t> src = makeBlob(bytes, 0xbeef);
    const int iters =
        smokeMode() ? 1 : static_cast<int>(std::max<size_t>(
                              16, (8u << 20) / std::max<size_t>(bytes, 1)));

    double copy_ms = timeMs([&]() {
        for (int i = 0; i < iters; i++) {
            // What argData used to do: bounce the guest window through
            // an intermediate Buffer before the backend write.
            bfs::Buffer bounce(src.begin(), src.end());
            f->pwrite(0, bounce.data(), bounce.size(), [](int, size_t) {});
        }
    });
    double zero_ms = timeMs([&]() {
        for (int i = 0; i < iters; i++) {
            f->pwriteFrom(0, bfs::ConstByteSpan{src.data(), bytes},
                          [](int, size_t) {});
        }
    });
    double copy_us = copy_ms * 1000.0 / iters;
    double zero_us = zero_ms * 1000.0 / iters;
    std::printf("%8s | %12.2f | %12.2f | %10.2fx\n", label.c_str(),
                copy_us, zero_us, zero_us > 0 ? copy_us / zero_us : 0);
    recordMetric("fs_micro", "pwrite_copy_" + label + "_us", copy_us);
    recordMetric("fs_micro", "pwrite_zerocopy_" + label + "_us", zero_us);
}

/** Directory-listing data movement: getdents through the encoded-record
 * bounce (Buffer + memcpy into the destination) vs getdentsInto encoding
 * records straight into the caller's window. */
void
getdentsSweep()
{
    auto mem = std::make_shared<bfs::InMemBackend>();
    const int kEntries = 256;
    for (int i = 0; i < kEntries; i++)
        mem->writeFile("/dir/entry-" + std::to_string(i) + ".dat", "x");
    auto vfs = std::make_shared<bfs::Vfs>();
    vfs->mount("/", mem);

    const int iters = smokeMode() ? 1 : 2000;
    std::vector<uint8_t> dest(16 * 1024);

    double copy_ms = timeMs([&]() {
        for (int i = 0; i < iters; i++) {
            kernel::DirFile dir(vfs.get(), "/dir");
            for (;;) {
                size_t got = 0;
                dir.getdents(dest.size(),
                             [&](int, bfs::BufferPtr data) {
                                 if (data && !data->empty()) {
                                     std::memcpy(dest.data(),
                                                 data->data(),
                                                 data->size());
                                     got = data->size();
                                 }
                             });
                if (got == 0)
                    break;
            }
        }
    });
    double zero_ms = timeMs([&]() {
        for (int i = 0; i < iters; i++) {
            kernel::DirFile dir(vfs.get(), "/dir");
            for (;;) {
                size_t got = 0;
                dir.getdentsInto(
                    bfs::ByteSpan{dest.data(), dest.size()},
                    [&](int, size_t n) { got = n; });
                if (got == 0)
                    break;
            }
        }
    });
    double copy_us = copy_ms * 1000.0 / iters;
    double zero_us = zero_ms * 1000.0 / iters;
    std::printf("\ngetdents (%d entries): bounce %0.2f us/listing, "
                "zero-copy %0.2f us/listing (%0.2fx)\n",
                kEntries, copy_us, zero_us,
                zero_us > 0 ? copy_us / zero_us : 0);
    recordMetric("fs_micro", "getdents_copy_us", copy_us);
    recordMetric("fs_micro", "getdents_zerocopy_us", zero_us);
}

} // namespace

int
main()
{
    std::printf("Overlay initialization: lazy (Browsix) vs eager "
                "(original BrowserFS)\nnetwork: 2 ms RTT per request, "
                "~50 Mbit/s\n\n");
    std::printf("%8s | %14s | %14s | %14s | %14s\n", "files",
                "lazy init ms", "lazy bytes", "eager init ms",
                "eager bytes");
    std::printf("---------+----------------+----------------+-----------"
                "-----+---------------\n");
    for (size_t n : {50u, 200u, 800u}) {
        Result lazy = runInit(n, true);
        Result eager = runInit(n, false);
        std::printf("%8zu | %14.2f | %14llu | %14.1f | %14llu\n", n,
                    lazy.initMs,
                    static_cast<unsigned long long>(lazy.bytes),
                    eager.initMs,
                    static_cast<unsigned long long>(eager.bytes));
        recordMetric("fs_micro",
                     "lazy_init_" + std::to_string(n) + "files_ms",
                     lazy.initMs, "ms");
        recordMetric("fs_micro",
                     "eager_init_" + std::to_string(n) + "files_ms",
                     eager.initMs, "ms");
    }

    // What laziness costs instead: the first access pays the fetch.
    auto store = std::make_shared<bfs::HttpStore>();
    store->put("/tree/one.sty", std::string(4096, '%'));
    auto cache = std::make_shared<bfs::BrowserHttpCache>();
    jsvm::EventLoop loop;
    auto http = std::make_shared<bfs::HttpBackend>(
        store, cache, &loop, bfs::NetworkParams{2000, 6.25});
    auto upper = std::make_shared<bfs::InMemBackend>();
    bfs::OverlayBackend overlay(upper, http,
                                bfs::OverlayBackend::Options(true));
    auto openOnce = [&]() {
        bool done = false;
        double ms = timeMs([&]() {
            overlay.open("/tree/one.sty", bfs::flags::RDONLY, 0,
                         [&](int, bfs::OpenFilePtr) { done = true; });
            while (!done)
                loop.pumpOne(true);
        });
        return ms;
    };
    double first = openOnce();
    double second = openOnce();
    std::printf("\nlazy first-access latency: %.2f ms (network); repeat "
                "access: %.3f ms (browser cache)\n",
                first, second);
    recordMetric("fs_micro", "lazy_first_access_ms", first, "ms");
    recordMetric("fs_micro", "lazy_repeat_access_ms", second, "ms");
    std::printf("\nConclusion (matches §3.6): eager startup scales with "
                "the whole distribution;\nlazy startup is constant and "
                "shifts a one-time per-file cost to first access.\n");

    std::printf("\npread data movement: copying pipeline (intermediate "
                "Buffer + memcpy) vs zero-copy preadInto\n\n");
    std::printf("%8s | %12s | %12s | %10s\n", "size", "copy us/op",
                "zerocopy us", "speedup");
    std::printf("---------+--------------+--------------+------------\n");
    preadSweep(4096, "4KiB");
    preadSweep(64 * 1024, "64KiB");
    preadSweep(1 << 20, "1MiB");

    std::printf("\npwrite data movement: copying pipeline (intermediate "
                "Buffer from the guest window) vs zero-copy pwriteFrom\n\n");
    std::printf("%8s | %12s | %12s | %10s\n", "size", "copy us/op",
                "zerocopy us", "speedup");
    std::printf("---------+--------------+--------------+------------\n");
    pwriteSweep(4096, "4KiB");
    pwriteSweep(64 * 1024, "64KiB");
    pwriteSweep(1 << 20, "1MiB");

    getdentsSweep();

    std::printf("\nThe win scales with payload size: past 64 KiB the "
                "intermediate buffer's\nallocate+copy dominates the "
                "per-call cost the ring already amortized away — now in "
                "both directions, and for directory listings.\n");
    return 0;
}
