/**
 * @file
 * LaTeX editor timings (§5.2): building a single-page document with a
 * bibliography.
 *
 * Paper: native ~100 ms; Browsix with synchronous syscalls ~3 s; with
 * asynchronous syscalls + the Emterpreter ~12 s. Shape: native << sync
 * << async, with async/sync ~ 4x.
 *
 * Also reports cold (lazy HTTP package fetches) vs warm (browser cache)
 * builds — the §2.2/§3.6 lazy-loading story.
 */
#include <cstdio>

#include "apps/tex/tex.h"
#include "bench/harness.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

double
browsixBuild(bool sync_calls, bfs::BrowserHttpCachePtr cache,
             double *cold_ms)
{
    BootConfig cfg;
    cfg.profile = jsvm::BrowserProfile::chrome2016();
    cfg.texlive = true;
    cfg.pdflatexSync = sync_calls;
    cfg.texliveNet = bfs::NetworkParams{20000, 6.25}; // 20ms RTT, 50Mb/s
    cfg.httpCache = cache;
    Browsix bx(cfg);

    // Cold build: lazy fetches hit the network.
    double cold = timeMs([&]() {
        auto r = bx.run("cd /home && /usr/bin/pdflatex main.tex && "
                        "/usr/bin/bibtex main && /usr/bin/pdflatex "
                        "main.tex",
                        600000);
        if (r.exitCode() != 0) {
            std::fprintf(stderr, "build failed: %s\n", r.out.c_str());
            std::abort();
        }
    });
    if (cold_ms)
        *cold_ms = cold;

    // Warm build: everything cached; measure again.
    double warm = timeMs([&]() {
        auto r = bx.run("cd /home && /usr/bin/pdflatex main.tex && "
                        "/usr/bin/bibtex main && /usr/bin/pdflatex "
                        "main.tex",
                        600000);
        if (r.exitCode() != 0)
            std::abort();
    });
    return warm;
}

} // namespace

int
main()
{
    std::printf("LaTeX build timings (single page + bibliography), "
                "pdflatex + bibtex + pdflatex\n\n");

    // --- native baseline: direct VFS, native typesetting ---
    auto store = std::make_shared<bfs::HttpStore>();
    apps::populateTexliveStore(*store);
    auto cache = std::make_shared<bfs::BrowserHttpCache>();
    auto http = std::make_shared<bfs::HttpBackend>(store, cache, nullptr,
                                                   bfs::NetworkParams{});
    auto root = std::make_shared<bfs::InMemBackend>();
    auto upper = std::make_shared<bfs::InMemBackend>();
    auto overlay = std::make_shared<bfs::OverlayBackend>(upper, http);
    bfs::Vfs vfs;
    vfs.mount("/", root);
    vfs.mount("/texlive", overlay);
    apps::stageLatexProject(*root, "/home", 1);

    double native_ms = timeMs([&]() {
        std::string log;
        if (apps::pdflatexNative(vfs, "/home/main.tex", log) != 0)
            std::abort();
        apps::bibtexNative(vfs, "/home/main", log);
        apps::pdflatexNative(vfs, "/home/main.tex", log);
    });

    // --- Browsix, synchronous syscalls (Chrome + SAB) ---
    double sync_cold = 0;
    double sync_warm = browsixBuild(true, nullptr, &sync_cold);

    // --- Browsix, asynchronous syscalls + Emterpreter ---
    double async_cold = 0;
    double async_warm = browsixBuild(false, nullptr, &async_cold);

    std::printf("%-34s | %10s | (paper)\n", "configuration", "time ms");
    std::printf("-----------------------------------+------------+--------"
                "\n");
    std::printf("%-34s | %10.1f | ~100 ms\n", "native (Linux)", native_ms);
    std::printf("%-34s | %10.1f |\n", "Browsix sync, cold (lazy fetch)",
                sync_cold);
    std::printf("%-34s | %10.1f | ~3000 ms\n", "Browsix sync, warm",
                sync_warm);
    std::printf("%-34s | %10.1f |\n", "Browsix async+Emterpreter, cold",
                async_cold);
    std::printf("%-34s | %10.1f | ~12000 ms\n",
                "Browsix async+Emterpreter, warm", async_warm);

    std::printf("\nratios: sync/native %.1fx (paper ~30x), async/sync "
                "%.1fx (paper ~4x)\n",
                sync_warm / native_ms, async_warm / sync_warm);
    std::printf("\"While in relative terms this is a significant "
                "slowdown, this time is fast\nenough to be acceptable.\" "
                "(§5.2)\n");
    return 0;
}
