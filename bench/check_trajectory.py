#!/usr/bin/env python3
"""Warn-only bench-trajectory regression check.

Compares the fs_micro/syscall_micro JSON a CI run just produced against
the committed baseline (bench/baselines/, recorded from a full local run
of the zero-copy data-plane PR). Lower-is-better metrics that regressed
past the threshold emit GitHub warning annotations; the exit code is
always 0 for now — per ROADMAP, the gate hardens once a few PRs of
trajectory accumulate.

Usage: check_trajectory.py <results-dir> <baseline-dir> [threshold]

threshold is the allowed ratio current/baseline (default 2.5: smoke-tier
numbers come from a single un-warmed iteration on shared CI runners, so
only gross regressions are worth flagging).
"""
import json
import os
import sys

BENCHES = ("fs_micro", "syscall_micro")

# Throughput/latency metrics where a higher value is a regression. Ratio
# metrics (notifies per call, messages per burst) are capped separately:
# they are scheduling-dependent but bounded by the protocol, so a hard
# ceiling beats a relative one.
RATIO_CEILINGS = {
    # The smoke tier stages a tiny tree (2 dirs x 8 files), so its
    # per-directory chunks amortize less than the full run's 0.19.
    "ls_batch_notifies_per_call": 0.7,
    "writev_batch8_notifies_per_call": 0.25,
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::bench-trajectory: cannot read {path}: {e}")
        return None
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    results_dir, baseline_dir = sys.argv[1], sys.argv[2]
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 2.5

    warned = 0
    compared = 0
    for bench in BENCHES:
        cur = load(os.path.join(results_dir, f"{bench}.json"))
        base = load(os.path.join(baseline_dir, f"{bench}.json"))
        if cur is None or base is None:
            continue
        for name, m in sorted(cur.items()):
            value = m["value"]
            if name in RATIO_CEILINGS:
                compared += 1
                ceiling = RATIO_CEILINGS[name]
                if value > ceiling:
                    warned += 1
                    print(
                        f"::warning::bench-trajectory {bench}/{name}: "
                        f"{value:.3g} exceeds protocol ceiling {ceiling}"
                    )
                continue
            b = base.get(name)
            if b is None or b["value"] <= 0 or m.get("unit") == "ratio":
                continue
            compared += 1
            ratio = value / b["value"]
            if ratio > threshold:
                warned += 1
                print(
                    f"::warning::bench-trajectory {bench}/{name}: "
                    f"{value:.6g}{m.get('unit', '')} is {ratio:.2f}x the "
                    f"baseline {b['value']:.6g} (threshold {threshold}x)"
                )
    print(
        f"bench-trajectory: compared {compared} metrics, "
        f"{warned} warning(s) (warn-only gate)"
    )
    return 0  # warn-only for now


if __name__ == "__main__":
    sys.exit(main())
