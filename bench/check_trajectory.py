#!/usr/bin/env python3
"""Failing bench-trajectory regression gate.

Compares the fs_micro/syscall_micro/pipe_micro JSON a CI run just
produced against the committed baseline (bench/baselines/, recorded from
smoke-tier runs). Lower-is-better metrics that regressed past the
threshold emit GitHub error annotations and fail the job; protocol-bound
ratio metrics (Atomics notifies per ring call) are checked against hard
ceilings instead of a relative threshold.

Usage: check_trajectory.py <results-dir> <baseline-dir> [threshold]

threshold is the allowed ratio current/baseline (default 4.0: smoke-tier
numbers come from a single un-warmed iteration on shared CI runners, so
only order-of-magnitude regressions are worth failing on).
"""
import json
import os
import sys

BENCHES = ("fs_micro", "syscall_micro", "pipe_micro")

# Throughput/latency metrics where a higher value is a regression. Ratio
# metrics (notifies per call, messages per burst) are capped separately:
# they are scheduling-dependent but bounded by the protocol, so a hard
# ceiling beats a relative one.
RATIO_CEILINGS = {
    # The smoke tier stages a tiny tree (2 dirs x 8 files), so its
    # per-directory chunks amortize less than the full run's 0.19.
    "ls_batch_notifies_per_call": 0.7,
    "writev_batch8_notifies_per_call": 0.25,
    # The deferral-protocol acceptance line: batched submits plus
    # deferred CQEs (each paying its own notify) must stay under one
    # notify per two ring calls. The full run sits near 0.43, the smoke
    # tier near 0.2.
    "pipeline_ring_notifies_per_call": 0.5,
    # The server-shaped leg (parked accepts -> epoll interest list ->
    # kernel-side sendfile) holds the same line: full run near 0.29,
    # smoke tier near 0.42.
    "server_ring_notifies_per_call": 0.5,
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::error::bench-trajectory: cannot read {path}: {e}")
        return None
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    results_dir, baseline_dir = sys.argv[1], sys.argv[2]
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 4.0

    failed = 0
    compared = 0
    for bench in BENCHES:
        cur = load(os.path.join(results_dir, f"{bench}.json"))
        base = load(os.path.join(baseline_dir, f"{bench}.json"))
        if cur is None or base is None:
            failed += 1
            continue
        for name, m in sorted(cur.items()):
            value = m["value"]
            if name in RATIO_CEILINGS:
                compared += 1
                ceiling = RATIO_CEILINGS[name]
                if value > ceiling:
                    failed += 1
                    print(
                        f"::error::bench-trajectory {bench}/{name}: "
                        f"{value:.3g} exceeds protocol ceiling {ceiling}"
                    )
                continue
            b = base.get(name)
            if b is None or b["value"] <= 0 or m.get("unit") == "ratio":
                continue
            # Histogram percentile rows are microsecond-scale and come
            # from one un-warmed iteration: informational, not gated.
            if name.rsplit(".", 1)[-1] in ("p50", "p99", "mean", "max"):
                continue
            compared += 1
            ratio = value / b["value"]
            if ratio > threshold:
                failed += 1
                print(
                    f"::error::bench-trajectory {bench}/{name}: "
                    f"{value:.6g}{m.get('unit', '')} is {ratio:.2f}x the "
                    f"baseline {b['value']:.6g} (threshold {threshold}x)"
                )
    print(
        f"bench-trajectory: compared {compared} metrics, "
        f"{failed} failure(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
