#!/usr/bin/env python3
"""Failing bench-trajectory regression gate.

Compares the fs_micro/syscall_micro/pipe_micro/proc_micro JSON a CI run
just produced against the committed baseline (bench/baselines/, recorded
from smoke-tier runs). Lower-is-better metrics that regressed past the
threshold emit GitHub error annotations and fail the job; protocol-bound
ratio metrics (Atomics notifies per ring call) are checked against hard
ceilings instead of a relative threshold, and the scheduler's
10k-live-guest latency/thread metrics (flat proc_*_p99_us keys, emitted
only by full-tier proc_micro runs — the CI stress job) are gated against
absolute ceilings whenever present.

Usage: check_trajectory.py <results-dir> <baseline-dir> [threshold]
                           [--only bench[,bench...]]

threshold is the allowed ratio current/baseline (default 4.0: smoke-tier
numbers come from a single un-warmed iteration on shared CI runners, so
only order-of-magnitude regressions are worth failing on). --only
restricts the gate to the named benches — the CI stress job uses it to
gate just its full-tier proc_micro results.
"""
import json
import os
import sys

BENCHES = (
    "fs_micro",
    "syscall_micro",
    "pipe_micro",
    "proc_micro",
    "http_serve",
    "awfy",
)

# Throughput/latency metrics where a higher value is a regression. Ratio
# metrics (notifies per call, messages per burst) are capped separately:
# they are scheduling-dependent but bounded by the protocol, so a hard
# ceiling beats a relative one.
RATIO_CEILINGS = {
    # The smoke tier stages a tiny tree (2 dirs x 8 files), so its
    # per-directory chunks amortize less than the full run's 0.19.
    "ls_batch_notifies_per_call": 0.7,
    "writev_batch8_notifies_per_call": 0.25,
    # The deferral-protocol acceptance line: batched submits plus
    # deferred CQEs (each paying its own notify) must stay under one
    # notify per two ring calls. The full run sits near 0.43, the smoke
    # tier near 0.2.
    "pipeline_ring_notifies_per_call": 0.5,
    # The server-shaped leg (parked accepts -> epoll interest list ->
    # kernel-side sendfile) holds the same line: full run near 0.29,
    # smoke tier near 0.42.
    "server_ring_notifies_per_call": 0.5,
    # Connection-scale serving (http_serve): one epoll wake plus one
    # batched read/writev pair per request leaves the smoke tier near
    # 4.7 notifies per request; a per-connection or per-call notify
    # pattern would push this past the tens.
    "http_notifies_per_request": 8.0,
    # emvm execution-tier acceptance lines (bench_awfy). These are wall
    # time ratios of tiered runs against the base interpreter measured in
    # the same process, so machine speed cancels out; smoke runs are
    # warmed best-of-5 (see bench/awfy.cc), which holds run-to-run spread
    # to a few percent. The geomean trace ceiling of 0.5 IS the tentpole
    # acceptance criterion — the fused+trace tiers must keep a >=2x
    # geomean speedup over base. Smoke-tier measurements sit at
    # 0.41-0.45 geomean (full tier: ~0.42), so the ceiling carries
    # 12%+ headroom for shared-runner jitter while still failing any
    # change that costs the tiers a real fraction of their win.
    "awfy_geomean_trace_vs_base": 0.5,
    "awfy_geomean_fused_vs_base": 0.62,
    # Per-kernel lines (smoke max over 12 runs → ceiling): loop-dominated
    # kernels trace well (sieve/nbody/json 0.28-0.36); the call-heavy
    # pair deopts at every CALL and effectively runs the fused tier
    # (richards <=0.56, permute <=0.73).
    "awfy_sieve_trace_vs_base": 0.5,
    "awfy_nbody_trace_vs_base": 0.5,
    "awfy_richards_trace_vs_base": 0.72,
    "awfy_permute_trace_vs_base": 0.9,
    "awfy_json_trace_vs_base": 0.5,
    # Fused dispatches per original instruction retired: deterministic
    # for a given translator (0.587 across the suite). A ceiling of 0.65
    # fails any change that stops superinstructions from swallowing the
    # hot dispatch pairs.
    "emvm_fused_dispatch_ratio": 0.65,
}

# Absolute ceilings for the worker-pool scheduler's headline numbers,
# recorded only by full-tier proc_micro runs at 10k live guests (smoke
# never reaches that scale, so these keys are simply absent there). The
# measured Release-build values are ~210us / ~25us / ~160us and 3
# threads; ceilings carry ~50x headroom for shared CI runners while
# still catching a return to thread-per-process (which would blow
# host_threads by 3 orders of magnitude and the p99s with it).
ABS_CEILINGS = {
    "proc_spawn_p99_us": 10000,
    "proc_wait4_p99_us": 2000,
    "proc_kill_p99_us": 10000,
    "host_threads": 64,
    # http_serve end-to-end request latency at the smoke tier (64
    # concurrent simulated connections): measured ~56ms p99 (dominated
    # by the connect-burst accept ramp); the ceiling catches a return
    # to per-request round-trips or a serving-loop stall.
    "http_p99_us": 2000000,
}

# Absolute ceilings for specific latency-histogram percentile rows —
# the promoted subset of the otherwise-informational "<prefix>.p50/.p99"
# rows (see the suffix skip below). Values carry ~50-100x headroom over
# the smoke-tier measurements so shared-runner jitter never trips them,
# while a protocol regression (a parked CQE charged to the syscall, a
# drain pass gone quadratic) still lands well past the line.
PCTL_CEILINGS = {
    # pipe_micro per-syscall dispatch->completion latency (smoke: p99s
    # of 3us read / 466us write / 4.6ms poll).
    "ring_read.p99": 50000,
    "ring_write.p99": 50000,
    "ring_poll.p99": 500000,
    "ring_epoll_wait.p99": 500000,
    "ring_sendfile.p99": 50000,
    # Ring drain-pass shape (http_serve): SQEs per productive pass is
    # bounded by per-ring capacity (64) times the handful of live rings
    # a pass may cover; pass wall time p99 measured ~tens of us.
    "ring_batch_depth.p99": 512,
    "ring_drain.p99": 100000,
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::error::bench-trajectory: cannot read {path}: {e}")
        return None
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    argv = list(sys.argv[1:])
    benches = BENCHES
    if "--only" in argv:
        i = argv.index("--only")
        benches = tuple(argv[i + 1].split(","))
        del argv[i : i + 2]
        unknown = [b for b in benches if b not in BENCHES]
        if unknown:
            print(f"::error::bench-trajectory: unknown bench {unknown}")
            return 2
    if len(argv) < 2:
        print(__doc__)
        return 2
    results_dir, baseline_dir = argv[0], argv[1]
    threshold = float(argv[2]) if len(argv) > 2 else 4.0

    failed = 0
    compared = 0
    for bench in benches:
        cur = load(os.path.join(results_dir, f"{bench}.json"))
        base = load(os.path.join(baseline_dir, f"{bench}.json"))
        if cur is None or base is None:
            failed += 1
            continue
        for name, m in sorted(cur.items()):
            value = m["value"]
            if name in RATIO_CEILINGS:
                compared += 1
                ceiling = RATIO_CEILINGS[name]
                if value > ceiling:
                    failed += 1
                    print(
                        f"::error::bench-trajectory {bench}/{name}: "
                        f"{value:.3g} exceeds protocol ceiling {ceiling}"
                    )
                continue
            if name in ABS_CEILINGS:
                compared += 1
                ceiling = ABS_CEILINGS[name]
                if value > ceiling:
                    failed += 1
                    print(
                        f"::error::bench-trajectory {bench}/{name}: "
                        f"{value:.6g}{m.get('unit', '')} exceeds absolute "
                        f"ceiling {ceiling}"
                    )
                continue
            if name in PCTL_CEILINGS:
                compared += 1
                ceiling = PCTL_CEILINGS[name]
                if value > ceiling:
                    failed += 1
                    print(
                        f"::error::bench-trajectory {bench}/{name}: "
                        f"{value:.6g}{m.get('unit', '')} exceeds "
                        f"percentile ceiling {ceiling}"
                    )
                continue
            b = base.get(name)
            if b is None or b["value"] <= 0 or m.get("unit") == "ratio":
                continue
            # Histogram rows are informational, not gated: percentiles
            # are microsecond-scale from one un-warmed iteration, and
            # .count is workload size, which legitimately differs between
            # the smoke and full tiers (the stress job gates full-tier
            # results against this same smoke baseline).
            if name.rsplit(".", 1)[-1] in (
                "p50",
                "p99",
                "mean",
                "max",
                "count",
            ):
                continue
            compared += 1
            ratio = value / b["value"]
            if ratio > threshold:
                failed += 1
                print(
                    f"::error::bench-trajectory {bench}/{name}: "
                    f"{value:.6g}{m.get('unit', '')} is {ratio:.2f}x the "
                    f"baseline {b['value']:.6g} (threshold {threshold}x)"
                )
    print(
        f"bench-trajectory: compared {compared} metrics, "
        f"{failed} failure(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
