/**
 * @file
 * Meme generator measurements (§5.2):
 *
 *  (a) list request: "1.7 ms natively, 9 ms in Google Chrome, and 6 ms
 *      in Firefox. ... When comparing an instance of the meme-server
 *      running on an EC2 instance, the in-BROWSIX request completed
 *      three times as fast." Protocol: mean of 100 runs after a 20-run
 *      warmup (reduced to 50/10 here; identical statistics).
 *
 *  (b) meme generation: ~200 ms server-side vs ~2 s in the browser —
 *      attributed to GopherJS's missing 64-bit integers, which our
 *      Int64 emulation reproduces.
 */
#include <cstdio>

#include "apps/meme/server.h"
#include "bench/harness.h"
#include "net/netsim.h"

using namespace browsix;
using namespace browsix::bench;

namespace {

constexpr int kWarmup = 10;
constexpr int kRuns = 50;

double
browsixListMs(const jsvm::BrowserProfile &profile)
{
    BootConfig cfg;
    cfg.profile = profile;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8080"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    if (!bx.waitForPort(8080, 15000))
        std::abort();
    net::HttpRequest req;
    req.target = "/api/images";
    Series s = measure(kWarmup, kRuns, [&]() {
        auto x = bx.xhr(8080, req, 60000);
        if (x.err != 0)
            std::abort();
    });
    return s.mean();
}

} // namespace

int
main()
{
    apps::MemeTemplates templates;
    uint32_t seed = 11;
    for (const auto &name : apps::memeTemplateNames()) {
        templates.images[name] = apps::makeTemplateImage(320, 240, seed);
        seed = seed * 31 + 7;
    }

    // ---------------- (a) list request ----------------
    std::printf("meme list request (GET /api/images), mean of %d runs "
                "after %d warmup:\n\n",
                kRuns, kWarmup);

    // native: handler invoked in-process (server on the same machine).
    net::HttpRequest list;
    list.target = "/api/images";
    Series native = measure(kWarmup, kRuns, [&]() {
        auto resp = apps::handleMemeRequest<int64_t>(templates, list);
        if (resp.status != 200)
            std::abort();
    });

    double chrome_ms = browsixListMs(jsvm::BrowserProfile::chrome2016());
    double firefox_ms = browsixListMs(jsvm::BrowserProfile::firefox2016());

    // remote: native server behind an EC2-like link.
    jsvm::EventLoop loop;
    net::SimulatedRemoteServer remote(
        &loop, net::LinkParams::ec2(), [&](const net::HttpRequest &req) {
            return apps::handleMemeRequest<int64_t>(templates, req);
        });
    Series remote_s = measure(kWarmup / 2, kRuns / 2, [&]() {
        bool done = false;
        remote.request(list, [&](int, net::HttpResponse) { done = true; });
        while (!done)
            loop.pumpOne(true);
    });

    std::printf("%-28s | %8s | (paper)\n", "configuration", "ms");
    std::printf("-----------------------------+----------+--------\n");
    std::printf("%-28s | %8.2f | 1.7 ms\n", "native (same machine)",
                native.mean());
    std::printf("%-28s | %8.2f | 9 ms\n", "in-Browsix (Chrome profile)",
                chrome_ms);
    std::printf("%-28s | %8.2f | 6 ms\n", "in-Browsix (Firefox profile)",
                firefox_ms);
    std::printf("%-28s | %8.2f | ~3x in-Browsix\n", "remote (EC2 link)",
                remote_s.mean());
    std::printf("\nremote/in-Browsix(FF): %.1fx (paper: ~3x)\n\n",
                remote_s.mean() / firefox_ms);

    // ---------------- (b) meme generation ----------------
    std::printf("meme generation (render + PNG encode):\n\n");
    net::HttpRequest gen;
    gen.target = "/api/meme?template=doge&top=MUCH%20UNIX&bottom=WOW";

    Series gen_native = measure(2, 5, [&]() {
        apps::handleMemeRequest<int64_t>(templates, gen);
    });
    Series gen_emulated = measure(1, 3, [&]() {
        // The GopherJS build: int64 arithmetic through double limbs.
        apps::handleMemeRequest<rt::Int64>(templates, gen);
    });

    std::printf("%-28s | %8s | (paper)\n", "configuration", "ms");
    std::printf("-----------------------------+----------+--------\n");
    std::printf("%-28s | %8.1f | ~200 ms\n", "native int64 (server-side)",
                gen_native.mean());
    std::printf("%-28s | %8.1f | ~2000 ms\n",
                "GopherJS int64 emulation", gen_emulated.mean());
    std::printf("\nslowdown: %.1fx (paper ~10x) — \"primarily due to "
                "missing 64-bit integer\nprimitives when numerical code "
                "is compiled to JavaScript with GopherJS\" (§5.2)\n",
                gen_emulated.mean() / gen_native.mean());
    return 0;
}
