/**
 * @file
 * Differential correctness for the emvm execution tiers (base, fused,
 * trace). Every test runs the same image through all three tiers and
 * requires bit-identical observable state: run state, exit code, trap
 * message, guest memory, and the retired-instruction counter (which by
 * contract counts *original* instructions regardless of tier).
 *
 * Also covers the machinery the tiers lean on: snapshot/restore across
 * tiers (including doctored snapshots whose pc points into the interior
 * of a superinstruction), interrupt-token delivery out of fused code
 * and traces (SIGKILL of a spinning guest), hostile image rejection,
 * and the assembler's serialize-time hardening.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>

#include "apps/awfy/awfy.h"
#include "core/browsix.h"
#include "jsvm/sab.h"
#include "jsvm/util.h"
#include "runtime/emvm/assembler.h"
#include "runtime/emvm/vm.h"

using namespace browsix;
using namespace browsix::emvm;

namespace {

constexpr Tier kTiers[] = {Tier::Base, Tier::Fused, Tier::Trace};

Image
mustAssemble(const std::string &src)
{
    Image img;
    std::string err;
    EXPECT_TRUE(assemble(src, img, err)) << err;
    return img;
}

/** Everything a guest can observe about its own execution. */
struct TierResult
{
    RunState st = RunState::Trapped;
    int64_t exitCode = 0;
    std::string trap;
    uint64_t retired = 0;
    std::vector<uint8_t> mem;

    bool operator==(const TierResult &o) const
    {
        return st == o.st && exitCode == o.exitCode && trap == o.trap &&
               retired == o.retired && mem == o.mem;
    }
};

std::string
describe(const TierResult &r)
{
    switch (r.st) {
      case RunState::Done:
        return "Done exit=" + std::to_string(r.exitCode) +
               " retired=" + std::to_string(r.retired);
      case RunState::Trapped:
        return "Trapped '" + r.trap + "' retired=" + std::to_string(r.retired);
      default:
        return "state=" + std::to_string(static_cast<int>(r.st));
    }
}

TierResult
runTier(const Image &img, Tier tier, const std::string &fn = "main",
        const std::vector<int64_t> &args = {})
{
    Vm vm(img, tier);
    vm.setTraceThreshold(4); // make the trace tier kick in at test sizes
    TierResult r;
    if (!vm.start(fn, args)) {
        ADD_FAILURE() << "no function " << fn;
        return r;
    }
    r.st = vm.run();
    EXPECT_NE(r.st, RunState::Syscall) << "tests here must be syscall-free";
    r.exitCode = vm.exitCode();
    r.trap = vm.trapMessage();
    r.retired = vm.instructionsRetired();
    r.mem = vm.memory();
    return r;
}

/** Run on all tiers and require identical observable behavior. */
void
expectTierAgreement(const Image &img, const std::string &fn = "main",
                    const std::vector<int64_t> &args = {},
                    const char *what = "program")
{
    TierResult base = runTier(img, Tier::Base, fn, args);
    for (Tier t : {Tier::Fused, Tier::Trace}) {
        TierResult r = runTier(img, t, fn, args);
        EXPECT_TRUE(r == base)
            << what << ": " << tierName(t) << " diverged from base\n"
            << "  base:  " << describe(base) << "\n"
            << "  " << tierName(t) << ": " << describe(r);
    }
}

} // namespace

// ---------- AWFY kernels: the macro-benchmark suite itself ----------

TEST(EmvmTiers, AwfyKernelsMatchNativeOnEveryTier)
{
    for (const auto &bench : apps::awfyBenches()) {
        Image img = apps::awfyImage(bench.name);
        int64_t want = bench.native(bench.smokeN);
        TierResult base;
        for (Tier tier : kTiers) {
            Vm vm(img, tier);
            vm.setTraceThreshold(4);
            ASSERT_TRUE(vm.start("run", {bench.smokeN})) << bench.name;
            ASSERT_EQ(vm.run(), RunState::Done)
                << bench.name << " on " << tierName(tier) << ": "
                << vm.trapMessage();
            EXPECT_EQ(vm.exitCode(), want)
                << bench.name << " checksum diverged on " << tierName(tier);
            if (tier == Tier::Base) {
                base.retired = vm.instructionsRetired();
                base.mem = vm.memory();
                EXPECT_EQ(vm.stats().fusedDispatches, 0u);
                EXPECT_EQ(vm.stats().tracesEntered, 0u);
            } else {
                // Truthful counters: retired counts original instructions
                // no matter how they were dispatched.
                EXPECT_EQ(vm.instructionsRetired(), base.retired)
                    << bench.name << " retired diverged on "
                    << tierName(tier);
                EXPECT_EQ(vm.memory(), base.mem)
                    << bench.name << " memory diverged on "
                    << tierName(tier);
                EXPECT_GT(vm.stats().fusedDispatches, 0u) << bench.name;
                EXPECT_GT(vm.stats().superinstructionsHit, 0u) << bench.name;
            }
            if (tier == Tier::Trace) {
                // Every kernel has a hot backedge at these sizes.
                EXPECT_GT(vm.stats().tracesTranslated, 0u) << bench.name;
                EXPECT_GT(vm.stats().tracesEntered, 0u) << bench.name;
            }
        }
    }
}

TEST(EmvmTiers, AwfyGuestBinariesPrintTheNativeChecksum)
{
    // The staged /usr/bin/awfy-* images print run(guestN) and exit 0;
    // spot-check two through the whole kernel/runtime stack.
    Browsix bx;
    for (const char *name : {"sieve", "json"}) {
        const apps::AwfyBench *b = apps::awfyBench(name);
        ASSERT_NE(b, nullptr);
        auto r = bx.runArgv({"/usr/bin/awfy-" + b->name});
        ASSERT_TRUE(r.ok) << name;
        EXPECT_EQ(r.exitCode(), 0) << name;
        EXPECT_EQ(r.out, std::to_string(b->native(b->guestN)) + "\n") << name;
    }
}

// ---------- randomized differential testing ----------

namespace {

Instr
ins(Op op, int64_t imm = 0)
{
    Instr i;
    i.op = op;
    i.imm = imm;
    return i;
}

int64_t
randomPushValue(std::mt19937 &rng)
{
    static const int64_t menu[] = {0,   1,     2,     3,        -1,  8,
                                   17,  63,    64,    100,      250, 255,
                                   256, 65535, 65536, 1u << 31, -12345,
                                   static_cast<int64_t>(0x8000000000000000ull)};
    return menu[rng() % (sizeof(menu) / sizeof(menu[0]))];
}

/**
 * A random program body: arithmetic, stack traffic, memory ops, local
 * slots (including out-of-range ones, to exercise fault parity), and
 * forward-only branches so termination is structural. Targets stay
 * within [lo, hi] of the surrounding program.
 */
std::vector<Instr>
randomBody(std::mt19937 &rng, size_t len, size_t bodyStart, size_t exitPc)
{
    static const Op pool[] = {
        Op::PUSH,   Op::PUSH,  Op::PUSH,    Op::PUSH,    Op::DUP,
        Op::POP,    Op::SWAP,  Op::LOADL,   Op::STOREL,  Op::LOAD8,
        Op::LOAD32, Op::LOAD64, Op::STORE8, Op::STORE32, Op::STORE64,
        Op::ADD,    Op::SUB,   Op::MUL,     Op::DIVS,    Op::MODS,
        Op::AND,    Op::OR,    Op::XOR,     Op::SHL,     Op::SHR,
        Op::EQ,     Op::NE,    Op::LT,      Op::LE,      Op::GT,
        Op::GE,     Op::JMP,   Op::JZ,      Op::JNZ,     Op::NOP,
    };
    std::vector<Instr> body;
    for (size_t i = 0; i < len; i++) {
        Op op = pool[rng() % (sizeof(pool) / sizeof(pool[0]))];
        size_t pc = bodyStart + i;
        size_t lastBody = bodyStart + len - 1;
        if (op == Op::JMP || op == Op::JZ || op == Op::JNZ) {
            if (pc + 1 > lastBody) {
                body.push_back(ins(Op::NOP));
                continue;
            }
            // Mostly stay inside the body (always reaching the loop
            // epilogue keeps counted loops terminating); occasionally
            // bail straight to the exit pc.
            size_t target = (rng() % 8 == 0)
                                ? exitPc
                                : pc + 1 + rng() % (lastBody - pc + 1);
            body.push_back(ins(op, static_cast<int64_t>(target)));
        } else if (op == Op::PUSH) {
            body.push_back(ins(op, randomPushValue(rng)));
        } else if (op == Op::LOADL || op == Op::STOREL) {
            // nlocals is 4; slot 5 exercises the bad-local fault.
            static const int64_t slots[] = {0, 1, 2, 0, 1, 2, 5};
            body.push_back(ins(op, slots[rng() % 7]));
        } else {
            body.push_back(ins(op));
        }
    }
    return body;
}

Image
straightLineImage(std::mt19937 &rng)
{
    Image img;
    img.memSize = 256;
    Function f;
    f.name = "main";
    f.nargs = 0;
    f.nlocals = 4;
    size_t len = 8 + rng() % 40;
    f.code = randomBody(rng, len, 0, len);
    f.code.push_back(ins(Op::HALT));
    img.functions.push_back(std::move(f));
    return img;
}

Image
countedLoopImage(std::mt19937 &rng)
{
    // push K; storel 3; body...; loadl 3; push 1; sub; storel 3;
    // loadl 3; jnz body — a hot backedge around a random body. Local 3
    // is the counter; the body never touches slot 3, so the loop always
    // terminates (any branch inside the body still reaches the
    // decrement, and the only other escape is a jump to HALT).
    Image img;
    img.memSize = 256;
    Function f;
    f.name = "main";
    f.nargs = 0;
    f.nlocals = 4;
    size_t bodyLen = 4 + rng() % 20;
    size_t bodyStart = 2;
    size_t haltPc = bodyStart + bodyLen + 6;
    f.code.push_back(ins(Op::PUSH, 12 + rng() % 30));
    f.code.push_back(ins(Op::STOREL, 3));
    auto body = randomBody(rng, bodyLen, bodyStart, haltPc);
    f.code.insert(f.code.end(), body.begin(), body.end());
    f.code.push_back(ins(Op::LOADL, 3));
    f.code.push_back(ins(Op::PUSH, 1));
    f.code.push_back(ins(Op::SUB));
    f.code.push_back(ins(Op::STOREL, 3));
    f.code.push_back(ins(Op::LOADL, 3));
    f.code.push_back(ins(Op::JNZ, static_cast<int64_t>(bodyStart)));
    f.code.push_back(ins(Op::HALT));
    img.functions.push_back(std::move(f));
    return img;
}

} // namespace

TEST(EmvmTiers, RandomStraightLineProgramsAgree)
{
    std::mt19937 rng(0xb51dead);
    for (int i = 0; i < 400; i++) {
        Image img = straightLineImage(rng);
        std::string err;
        ASSERT_TRUE(img.validate(&err)) << err;
        expectTierAgreement(img, "main", {},
                            ("straight-line #" + std::to_string(i)).c_str());
    }
}

TEST(EmvmTiers, RandomCountedLoopProgramsAgree)
{
    // Hot backedges at threshold 4: most of these promote to traces and
    // many fault from inside trace code (division, wild loads, bad
    // locals), exercising deopt-with-state-reconstruction.
    std::mt19937 rng(0xf05ed);
    for (int i = 0; i < 400; i++) {
        Image img = countedLoopImage(rng);
        std::string err;
        ASSERT_TRUE(img.validate(&err)) << err;
        expectTierAgreement(img, "main", {},
                            ("counted-loop #" + std::to_string(i)).c_str());
    }
}

TEST(EmvmTiers, ArithmeticEdgeCasesAgree)
{
    // INT64_MIN / -1, modulo by -1, shift counts >= 64, division by
    // zero mid-loop (faulting out of a hot trace), wrapping multiply.
    const char *src = R"(
.memory 64
.func main 0 2
    push -9223372036854775808
    push -1
    divs
    pop
    push -9223372036854775808
    push -1
    mods
    pop
    push 1
    push 200
    shl
    pop
    push -1
    push 70
    shr
    pop
    push 20
    storel 0
loop:
    push 1000
    loadl 0
    push 10
    sub
    divs
    storel 1
    loadl 0
    push 1
    sub
    storel 0
    loadl 0
    jnz loop
    loadl 1
    halt
.end
)";
    // The loop divides by (counter - 10): iterations with counter 20..11
    // succeed, counter 10 divides by zero — after the backedge got hot.
    expectTierAgreement(mustAssemble(src), "main", {}, "arith-edges");
    TierResult r = runTier(mustAssemble(src), Tier::Trace);
    EXPECT_EQ(r.st, RunState::Trapped);
    EXPECT_EQ(r.trap, "division by zero");
}

TEST(EmvmTiers, RecursionOverflowAgreesAcrossTiers)
{
    const char *src = R"(
.func main 0 0
    push 0
    call main
    halt
.end
)";
    expectTierAgreement(mustAssemble(src), "main", {}, "stack-overflow");
    TierResult r = runTier(mustAssemble(src), Tier::Fused);
    EXPECT_EQ(r.st, RunState::Trapped);
    EXPECT_EQ(r.trap, "call stack overflow");
}

// ---------- snapshot/restore across tiers ----------

TEST(EmvmTiers, SnapshotAtSyscallResumesIdenticallyOnEveryTier)
{
    // A hot loop that makes a syscall every iteration: snapshot at the
    // 10th syscall (mid-loop, traces already hot), restore into a VM of
    // every tier, and finish. §4.3's contract: a restored VM is
    // indistinguishable, whatever executes it afterwards.
    const char *src = R"(
.memory 64
.func main 0 2
    push 30
    storel 0
loop:
    push 39
    loadl 0
    syscall 1
    loadl 1
    add
    storel 1
    loadl 0
    push 1
    sub
    storel 0
    loadl 0
    jnz loop
    loadl 1
    halt
.end
)";
    Image img = mustAssemble(src);
    auto serve = [](Vm &vm) { // echo the argument back as the result
        return vm.pendingArgs().at(0);
    };

    // Reference: pure base, serviced to completion.
    Vm ref(img, Tier::Base);
    ASSERT_TRUE(ref.start("main", {}));
    RunState st;
    while ((st = ref.run()) == RunState::Syscall)
        ref.resume(serve(ref));
    ASSERT_EQ(st, RunState::Done);
    const int64_t want = ref.exitCode();

    // Hot VM: run to the 10th syscall, snapshot there.
    Vm hot(img, Tier::Trace);
    hot.setTraceThreshold(4);
    ASSERT_TRUE(hot.start("main", {}));
    for (int i = 0; i < 10; i++) {
        ASSERT_EQ(hot.run(), RunState::Syscall);
        if (i < 9)
            hot.resume(serve(hot));
    }
    EXPECT_GT(hot.stats().tracesEntered, 0u) << "loop should be hot by now";
    // pendingArgs are not part of the snapshot (the kernel owns the
    // in-flight syscall); remember the echo value before parking.
    const int64_t parked = serve(hot);
    std::vector<uint8_t> snap = hot.snapshot();

    for (Tier tier : kTiers) {
        Vm vm(img, tier);
        vm.setTraceThreshold(4);
        ASSERT_TRUE(Vm::restore(img, snap, vm)) << tierName(tier);
        // Byte-exactness: re-snapshotting the restored VM is an
        // identity, independent of tier.
        EXPECT_EQ(vm.snapshot(), snap) << tierName(tier);
        vm.resume(parked); // answer the syscall the snapshot is parked on
        RunState s;
        while ((s = vm.run()) == RunState::Syscall)
            vm.resume(serve(vm));
        ASSERT_EQ(s, RunState::Done) << tierName(tier) << ": "
                                     << vm.trapMessage();
        EXPECT_EQ(vm.exitCode(), want) << tierName(tier);
    }
}

namespace {

/**
 * Build a snapshot by hand (format: BSXSNAP1, mem, stack, frames,
 * awaiting/running flags) so tests can park the pc anywhere — including
 * pcs interior to a fused superinstruction, which no organic snapshot
 * produces but a doctored or version-skewed one can.
 */
std::vector<uint8_t>
handSnapshot(uint32_t memSize, const std::vector<int64_t> &stack, uint32_t fn,
             uint32_t pc, const std::vector<int64_t> &locals)
{
    std::vector<uint8_t> s = {'B', 'S', 'X', 'S', 'N', 'A', 'P', '1'};
    auto p32 = [&](uint32_t v) {
        size_t n = s.size();
        s.resize(n + 4);
        std::memcpy(s.data() + n, &v, 4);
    };
    auto p64 = [&](uint64_t v) {
        size_t n = s.size();
        s.resize(n + 8);
        std::memcpy(s.data() + n, &v, 8);
    };
    p32(memSize);
    s.resize(s.size() + memSize, 0);
    p32(static_cast<uint32_t>(stack.size()));
    for (int64_t v : stack)
        p64(static_cast<uint64_t>(v));
    p32(1); // one frame
    p32(fn);
    p32(pc);
    p32(static_cast<uint32_t>(locals.size()));
    for (int64_t v : locals)
        p64(static_cast<uint64_t>(v));
    s.push_back(0); // not awaiting a syscall
    s.push_back(1); // running
    return s;
}

} // namespace

TEST(EmvmTiers, DoctoredInteriorPcSnapshotMatchesBaseSemantics)
{
    // main: loadl 0 / push 1 / add / storel 0 / loadl 0 / halt — the
    // first four fuse into INC_LOCAL. Park the pc at 3 (interior) with
    // the stack the base interpreter would have there; the fused tier
    // must step base semantics to the next fusion boundary, not snap to
    // one.
    const char *src = R"(
.memory 64
.func main 0 1
    loadl 0
    push 1
    add
    storel 0
    loadl 0
    halt
.end
)";
    Image img = mustAssemble(src);
    for (uint32_t pc : {3u, 2u, 1u}) {
        // Base-accurate stack at each interior pc, starting from
        // local0 = 41: pc1 has [41], pc2 has [41, 1], pc3 has [42].
        std::vector<int64_t> stack;
        if (pc == 1)
            stack = {41};
        else if (pc == 2)
            stack = {41, 1};
        else
            stack = {42};
        auto snap = handSnapshot(64, stack, 0, pc, {41});
        TierResult base, other;
        for (Tier tier : kTiers) {
            Vm vm(img, tier);
            ASSERT_TRUE(Vm::restore(img, snap, vm)) << tierName(tier);
            TierResult r;
            r.st = vm.run();
            r.exitCode = vm.exitCode();
            r.trap = vm.trapMessage();
            r.retired = vm.instructionsRetired();
            r.mem = vm.memory();
            if (tier == Tier::Base)
                base = r;
            else
                EXPECT_TRUE(r == base)
                    << "interior pc " << pc << " on " << tierName(tier)
                    << ": " << describe(r) << " vs base " << describe(base);
        }
        Vm check(img, Tier::Base);
        ASSERT_TRUE(Vm::restore(img, snap, check));
        ASSERT_EQ(check.run(), RunState::Done);
        EXPECT_EQ(check.exitCode(), 42) << "interior pc " << pc;
    }
}

TEST(EmvmTiers, RestoreRejectsFrameWithWrongLocalsCount)
{
    // Frames are always constructed with max(nlocals, nargs) slots, and
    // the fused/trace tiers validate local indices at translate time
    // against that invariant instead of bounds-checking at run time. A
    // doctored snapshot carrying a short (or oversized) locals array
    // must therefore be rejected by restore, never executed.
    const char *src = R"(
.memory 64
.func main 0 1
    loadl 0
    push 1
    add
    storel 0
    loadl 0
    halt
.end
)";
    Image img = mustAssemble(src);
    for (Tier tier : kTiers) {
        Vm vm(img, tier);
        EXPECT_FALSE(Vm::restore(img, handSnapshot(64, {}, 0, 0, {}), vm))
            << tierName(tier) << " accepted a frame with 0 locals";
        EXPECT_FALSE(
            Vm::restore(img, handSnapshot(64, {}, 0, 0, {41, 0}), vm))
            << tierName(tier) << " accepted a frame with extra locals";
        ASSERT_TRUE(Vm::restore(img, handSnapshot(64, {}, 0, 0, {41}), vm))
            << tierName(tier);
        ASSERT_EQ(vm.run(), RunState::Done) << tierName(tier);
        EXPECT_EQ(vm.exitCode(), 42) << tierName(tier);
    }
}

TEST(EmvmTiers, DupOfPushedImmediateAddsCorrectlyInTraces)
{
    // `push 7 / dup / add` makes the MOVI's register both operands of
    // the ADD; the trace builder's MOVI->ADDI fold must not erase the
    // MOVI while its register is still read (or live deeper in the
    // vstack via a second dup). Hot loop so the trace tier compiles it.
    const char *src = R"(
.func main 0 2
    push 0
    storel 1
loop:
    push 7
    dup
    add
    push 7
    dup
    dup
    add
    add
    add
    loadl 1
    add
    storel 1
    loadl 0
    push 1
    add
    storel 0
    loadl 0
    push 50
    lt
    jnz loop
    loadl 1
    halt
.end
)";
    Image img = mustAssemble(src);
    expectTierAgreement(img, "main", {}, "dup+add immediate fold");
    TierResult r = runTier(img, Tier::Trace);
    ASSERT_EQ(r.st, RunState::Done);
    EXPECT_EQ(r.exitCode, 50 * (7 + 7 + 7 + 7 + 7)); // 14 + 21 per round
}

// ---------- interrupt delivery out of fused code and traces ----------

TEST(EmvmTiers, InterruptTokenUnwindsSpinningLoopOnEveryTier)
{
    // `loop: jmp loop` is the worst case: in the trace tier it becomes
    // a single trace op that branches to itself. The periodic interrupt
    // check must still fire.
    Image img = mustAssemble(".func main 0 0\nloop:\n  jmp loop\n.end\n");
    for (Tier tier : kTiers) {
        Vm vm(img, tier);
        vm.setTraceThreshold(4);
        ASSERT_TRUE(vm.start("main", {}));
        jsvm::InterruptToken token;
        std::atomic<bool> unwound{false};
        std::thread runner([&] {
            try {
                vm.run(&token);
            } catch (const jsvm::WorkerTerminated &) {
                unwound = true;
            }
        });
        token.interrupt();
        runner.join();
        EXPECT_TRUE(unwound.load())
            << tierName(tier) << " never checked the interrupt token";
    }
}

TEST(EmvmTiers, SigkillUnwindsSpinningEmvmGuest)
{
    // Same property end-to-end: a spinning bytecode guest under the
    // kernel (which runs the trace tier) must die promptly on SIGKILL,
    // like the parked-ring-waiter legs in test_ring.cc.
    Image spin = mustAssemble(R"(
.memory 64
.data 0 "spin\n"
.func main 0 0
    push 4
    push 1
    push 0
    push 5
    syscall 3
    pop
loop:
    jmp loop
.end
)");
    Browsix bx;
    auto bytes = spin.serialize();
    bx.rootFs().writeFile("/usr/bin/spin-em",
                          bfs::Buffer(bytes.begin(), bytes.end()));
    std::string out;
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/spin-em"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find("spin") != std::string::npos; }, 10000));
    EXPECT_EQ(bx.kernel().kill(pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000))
        << "SIGKILL must unwind a spinning emvm guest";
    EXPECT_EQ(sys::wtermsig(status), sys::SIGKILL);
}

// ---------- hostile images ----------

namespace {

/**
 * Byte offset of instruction k's immediate inside a serialized
 * single-function image whose function name is `name`: magic(7) +
 * nfn(4) + namelen(4) + name + nargs(4) + nlocals(4) + codelen(4), then
 * 9 bytes per instruction (1 opcode + 8 imm).
 */
size_t
immOffset(const std::string &name, size_t k)
{
    return 7 + 4 + 4 + name.size() + 4 + 4 + 4 + k * 9 + 1;
}

} // namespace

TEST(EmvmImage, TruncatedImagesAreRejected)
{
    Image img = mustAssemble(R"(
.memory 64
.data 8 "payload"
.func main 0 1
    push 3
    jz skip
    nop
skip:
    halt
.end
)");
    std::vector<uint8_t> bytes = img.serialize();
    Image out;
    ASSERT_TRUE(Image::deserialize(bytes, out));
    for (size_t len = 0; len < bytes.size(); len++) {
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
        EXPECT_FALSE(Image::deserialize(cut, out))
            << "truncated to " << len << " of " << bytes.size();
    }
    // Same sweep, coarse, over a real program image.
    std::vector<uint8_t> sieve = apps::awfyImage("sieve").serialize();
    ASSERT_TRUE(Image::deserialize(sieve, out));
    for (size_t len = 0; len < sieve.size(); len += 97) {
        std::vector<uint8_t> cut(sieve.begin(), sieve.begin() + len);
        EXPECT_FALSE(Image::deserialize(cut, out)) << "truncated to " << len;
    }
}

TEST(EmvmImage, CorruptOperandsAreRejectedAtDeserialize)
{
    // main: [0]=push 0, [1]=jz 0, [2]=syscall 0, [3]=call 0, [4]=halt
    Image img = mustAssemble(R"(
.func main 0 0
    push 0
    jz start
start:
    syscall 0
    call main
    halt
.end
)");
    std::vector<uint8_t> good = img.serialize();
    Image out;
    ASSERT_TRUE(Image::deserialize(good, out));

    struct Patch
    {
        size_t instr;
        int64_t imm;
        const char *what;
    };
    const Patch patches[] = {
        {1, 999, "jump target out of range"},
        {1, -1, "negative jump target"},
        {2, 7, "syscall arity out of range"},
        {2, -2, "negative syscall arity"},
        {3, 12, "call target out of range"},
    };
    for (const auto &p : patches) {
        std::vector<uint8_t> bad = good;
        size_t off = immOffset("main", p.instr);
        ASSERT_LE(off + 8, bad.size());
        std::memcpy(bad.data() + off, &p.imm, 8);
        EXPECT_FALSE(Image::deserialize(bad, out)) << p.what;
    }
    // An opcode past HALT is rejected too.
    std::vector<uint8_t> bad = good;
    bad[immOffset("main", 4) - 1] = 0xee;
    EXPECT_FALSE(Image::deserialize(bad, out)) << "illegal opcode";

    // validate() backs serialize(): a hand-built image with a wild jump
    // refuses to serialize at all.
    Image wild;
    Function f;
    f.name = "main";
    f.code.push_back(ins(Op::JMP, 5));
    wild.functions.push_back(f);
    std::string why;
    EXPECT_FALSE(wild.validate(&why));
    EXPECT_NE(why.find("jump target"), std::string::npos) << why;
}

// ---------- assembler hardening ----------

TEST(Assembler, RejectsJumpsToTrailingLabels)
{
    Image img;
    std::string err;
    // `end:` sits after the last instruction; jumping there would fall
    // off the function, so it must be a source-level error.
    EXPECT_FALSE(assemble(".func main 0 0\n  jmp end\n  halt\nend:\n.end\n",
                          img, err));
    EXPECT_NE(err.find("past the last instruction"), std::string::npos)
        << err;
    // ...but an unused trailing label stays legal.
    EXPECT_TRUE(assemble(".func main 0 0\n  halt\nend:\n.end\n", img, err))
        << err;
}

TEST(Assembler, RejectsSyscallArityOutOfRange)
{
    Image img;
    std::string err;
    EXPECT_FALSE(assemble(".func main 0 0\n  syscall 7\n  halt\n.end\n", img,
                          err));
    EXPECT_NE(err.find("syscall arity"), std::string::npos) << err;
    EXPECT_FALSE(assemble(".func main 0 0\n  syscall -1\n  halt\n.end\n", img,
                          err));
    EXPECT_TRUE(assemble(".func main 0 0\n  push 39\n  syscall 0\n  halt\n"
                         ".end\n",
                         img, err))
        << err;
}
