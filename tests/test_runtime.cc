/**
 * @file
 * Runtime-layer tests: syscall protocol packing, the Emterpreter VM
 * (assembler, execution, faults, snapshot/restore), GopherJS int64
 * emulation (property-tested against native int64), and the Emscripten
 * mode matrix (sync vs Emterpreter, fork availability).
 */
#include <gtest/gtest.h>

#include <random>

#include "apps/make/make.h"
#include "apps/registry.h"
#include "core/browsix.h"
#include "jsvm/util.h"
#include "runtime/emvm/assembler.h"
#include "runtime/emvm/vm.h"
#include "runtime/gopher/int64emu.h"
#include "runtime/syscall_proto.h"

using namespace browsix;
using namespace browsix::sys;
using namespace browsix::emvm;
using browsix::rt::Int64;

// ---------- syscall protocol ----------

TEST(Proto, TrapNamesRoundtrip)
{
    for (int trap : {EXIT, FORK, READ, WRITE, OPEN, CLOSE, WAIT4, SPAWN,
                     GETDENTS64, SOCKET, PERSONALITY}) {
        EXPECT_EQ(trapFromName(trapName(trap)), trap);
    }
    EXPECT_EQ(trapFromName("no-such-call"), -1);
}

TEST(Proto, PaperUsesGetdents220)
{
    // Figure 6 implements syscall 220 (getdents64); keep the number.
    EXPECT_EQ(GETDENTS64, 220);
    EXPECT_STREQ(trapName(220), "getdents64");
}

TEST(Proto, StatPackUnpackRoundtrip)
{
    StatX st;
    st.ino = 0x1234567890ull;
    st.mode = S_IFREG_ | 0644;
    st.nlink = 3;
    st.size = 9876543210ull;
    st.atimeUs = 111;
    st.mtimeUs = -5;
    st.ctimeUs = 1ll << 40;
    uint8_t buf[STAT_BYTES];
    packStat(st, buf);
    StatX out = unpackStat(buf);
    EXPECT_EQ(out.ino, st.ino);
    EXPECT_EQ(out.mode, st.mode);
    EXPECT_EQ(out.nlink, st.nlink);
    EXPECT_EQ(out.size, st.size);
    EXPECT_EQ(out.mtimeUs, st.mtimeUs);
    EXPECT_EQ(out.ctimeUs, st.ctimeUs);
    EXPECT_TRUE(out.isFile());
}

TEST(Proto, StatValueRoundtrip)
{
    StatX st;
    st.mode = S_IFDIR_ | 0755;
    st.size = 4096;
    StatX out = statFromValue(statToValue(st));
    EXPECT_TRUE(out.isDir());
    EXPECT_EQ(out.size, 4096u);
}

TEST(Proto, DirentsRoundtripAndAlignment)
{
    std::vector<Dirent> in = {{1, DT_REG, "a"},
                              {2, DT_DIR, "some-longer-name"},
                              {3, DT_LNK, "ln"}};
    auto packed = encodeDirents(in);
    EXPECT_EQ(packed.size() % 4, 0u);
    auto out = decodeDirents(packed.data(), packed.size());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].name, "some-longer-name");
    EXPECT_EQ(out[1].type, DT_DIR);
    EXPECT_EQ(out[2].ino, 3u);
}

TEST(Proto, WaitStatusHelpers)
{
    EXPECT_TRUE(wifExited(statusFromExitCode(3)));
    EXPECT_EQ(wexitstatus(statusFromExitCode(3)), 3);
    EXPECT_FALSE(wifExited(statusFromSignal(9)));
    EXPECT_EQ(wtermsig(statusFromSignal(9)), 9);
}

// ---------- assembler + VM ----------

namespace {

Image
mustAssemble(const std::string &src)
{
    Image img;
    std::string err;
    EXPECT_TRUE(assemble(src, img, err)) << err;
    return img;
}

int64_t
runToCompletion(Vm &vm)
{
    RunState st = vm.run();
    EXPECT_EQ(st, RunState::Done) << vm.trapMessage();
    return vm.exitCode();
}

} // namespace

TEST(Assembler, RejectsErrorsWithLineNumbers)
{
    Image img;
    std::string err;
    EXPECT_FALSE(assemble(".func f 0 0\n  frobnicate\n.end\n", img, err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
    EXPECT_FALSE(assemble(".func f 0 0\n  jmp nowhere\n.end\n", img, err));
    EXPECT_NE(err.find("nowhere"), std::string::npos);
    EXPECT_FALSE(assemble(".func f 0 0\n  push 1\n", img, err))
        << "missing .end";
}

TEST(Assembler, DataDirectivesInitializeMemory)
{
    Image img = mustAssemble(".memory 64\n.data 4 \"AB\\n\"\n"
                             ".func main 0 0\n  push 0\n  halt\n.end\n");
    Vm vm(img);
    ASSERT_TRUE(vm.start("main", {}));
    runToCompletion(vm);
    EXPECT_EQ(vm.memory()[4], 'A');
    EXPECT_EQ(vm.memory()[6], '\n');
}

TEST(Vm, ArithmeticAndControlFlow)
{
    // sum 1..10 = 55
    Image img = mustAssemble(R"(
.func main 0 2
    push 0
    storel 0
    push 1
    storel 1
loop:
    loadl 1
    push 10
    gt
    jnz done
    loadl 0
    loadl 1
    add
    storel 0
    loadl 1
    push 1
    add
    storel 1
    jmp loop
done:
    loadl 0
    halt
.end
)");
    Vm vm(img);
    ASSERT_TRUE(vm.start("main", {}));
    EXPECT_EQ(runToCompletion(vm), 55);
}

TEST(Vm, FunctionCallsPassArgsAndReturnValues)
{
    Image img = mustAssemble(R"(
.func add3 3 3
    loadl 0
    loadl 1
    add
    loadl 2
    add
    ret
.end
.func main 0 0
    push 10
    push 20
    push 12
    call add3
    halt
.end
)");
    Vm vm(img);
    ASSERT_TRUE(vm.start("main", {}));
    EXPECT_EQ(runToCompletion(vm), 42);
}

TEST(Vm, MemoryLoadStoreWidths)
{
    Image img = mustAssemble(R"(
.memory 64
.func main 0 0
    push 8
    push 300
    store32
    push 8
    load32
    push 16
    push -2
    store64
    push 16
    load64
    add
    halt
.end
)");
    Vm vm(img);
    ASSERT_TRUE(vm.start("main", {}));
    EXPECT_EQ(runToCompletion(vm), 298);
}

TEST(Vm, FaultsAreTrappedNotUb)
{
    Image img = mustAssemble(
        ".memory 16\n.func main 0 0\n  push 9999\n  load32\n  halt\n.end\n");
    Vm vm(img);
    ASSERT_TRUE(vm.start("main", {}));
    EXPECT_EQ(vm.run(), RunState::Trapped);
    EXPECT_NE(vm.trapMessage().find("out of bounds"), std::string::npos);
}

TEST(Vm, DivideByZeroTraps)
{
    Image img = mustAssemble(
        ".func main 0 0\n  push 1\n  push 0\n  divs\n  halt\n.end\n");
    Vm vm(img);
    vm.start("main", {});
    EXPECT_EQ(vm.run(), RunState::Trapped);
}

TEST(Vm, StackUnderflowTraps)
{
    Image img = mustAssemble(".func main 0 0\n  add\n  halt\n.end\n");
    Vm vm(img);
    vm.start("main", {});
    EXPECT_EQ(vm.run(), RunState::Trapped);
}

TEST(Vm, SyscallSuspendsAndResumes)
{
    Image img = mustAssemble(R"(
.func main 0 0
    push 20
    syscall 0      ; getpid()
    push 100
    add
    halt
.end
)");
    Vm vm(img);
    vm.start("main", {});
    ASSERT_EQ(vm.run(), RunState::Syscall);
    EXPECT_EQ(vm.pendingTrap(), 20);
    EXPECT_TRUE(vm.pendingArgs().empty());
    vm.resume(7);
    EXPECT_EQ(runToCompletion(vm), 107);
}

TEST(Vm, ImageSerializationRoundtrips)
{
    Image img = mustAssemble(
        ".memory 128\n.data 0 \"xyz\"\n"
        ".func main 0 1\n  push 3\n  halt\n.end\n");
    auto bytes = img.serialize();
    EXPECT_TRUE(Image::isImage(bytes.data(), bytes.size()));
    Image out;
    ASSERT_TRUE(Image::deserialize(bytes, out));
    EXPECT_EQ(out.functions.size(), img.functions.size());
    EXPECT_EQ(out.initData, img.initData);
    Vm vm(out);
    vm.start("main", {});
    EXPECT_EQ(runToCompletion(vm), 3);
}

TEST(Vm, SnapshotRestoresMidSyscallExactly)
{
    // The fork mechanism: snapshot while awaiting a syscall result, then
    // both machines resume with different values (parent pid vs 0).
    Image img = mustAssemble(R"(
.memory 64
.func main 0 1
    push 5
    storel 0
    push 2
    syscall 0      ; fork()
    loadl 0
    add            ; result + 5
    halt
.end
)");
    Vm parent(img);
    parent.start("main", {});
    ASSERT_EQ(parent.run(), RunState::Syscall);
    ASSERT_EQ(parent.pendingTrap(), 2);

    auto snap = parent.snapshot();
    Vm child(img);
    ASSERT_TRUE(Vm::restore(img, snap, child));

    parent.resume(1234);
    child.resume(0);
    EXPECT_EQ(runToCompletion(parent), 1239);
    EXPECT_EQ(runToCompletion(child), 5);
}

TEST(Vm, SnapshotPreservesMemoryWrites)
{
    Image img = mustAssemble(R"(
.memory 64
.func main 0 0
    push 8
    push 77
    store32
    push 20
    syscall 0
    pop
    push 8
    load32
    halt
.end
)");
    Vm vm(img);
    vm.start("main", {});
    ASSERT_EQ(vm.run(), RunState::Syscall);
    auto snap = vm.snapshot();
    Vm restored(img);
    ASSERT_TRUE(Vm::restore(img, snap, restored));
    restored.resume(0);
    EXPECT_EQ(runToCompletion(restored), 77);
}

TEST(Vm, InstructionCountGrowsWithWork)
{
    Image img = mustAssemble(R"(
.func main 1 2
    push 0
    storel 1
loop:
    loadl 1
    loadl 0
    ge
    jnz done
    loadl 1
    push 1
    add
    storel 1
    jmp loop
done:
    push 0
    halt
.end
)");
    Vm small(img), big(img);
    small.start("main", {100});
    big.start("main", {10000});
    runToCompletion(small);
    runToCompletion(big);
    EXPECT_GT(big.instructionsRetired(),
              small.instructionsRetired() * 50);
}

// ---------- Int64 emulation ----------

TEST(Int64Emu, BasicConversions)
{
    for (int64_t v :
         std::vector<int64_t>{0, 1, -1, 42, -42, int64_t{1} << 40,
                              -(int64_t{1} << 40), INT64_MAX,
                              INT64_MIN + 1}) {
        EXPECT_EQ(Int64(v).toInt(), v) << v;
    }
}

TEST(Int64Emu, KnownMultiplications)
{
    EXPECT_EQ((Int64(1000000007) * Int64(998244353)).toInt(),
              1000000007ll * 998244353ll);
    EXPECT_EQ((Int64(-5) * Int64(7)).toInt(), -35);
    EXPECT_EQ((Int64(1) << 63).toInt(), INT64_MIN);
}

TEST(Int64Emu, DivisionTruncatesTowardZero)
{
    EXPECT_EQ((Int64(7) / Int64(2)).toInt(), 3);
    EXPECT_EQ((Int64(-7) / Int64(2)).toInt(), -3);
    EXPECT_EQ((Int64(7) / Int64(-2)).toInt(), -3);
    EXPECT_EQ((Int64(-7) % Int64(3)).toInt(), -1);
}

class Int64Property : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(Int64Property, MatchesNativeInt64)
{
    std::mt19937_64 rng(GetParam());
    for (int i = 0; i < 500; i++) {
        int64_t a = static_cast<int64_t>(rng());
        int64_t b = static_cast<int64_t>(rng());
        // keep shifts in range, divisors nonzero
        int s = static_cast<int>(rng() % 63) + 1;
        if (b == 0)
            b = 1;
        Int64 ea(a), eb(b);
        EXPECT_EQ((ea + eb).toInt(), static_cast<int64_t>(
                                         static_cast<uint64_t>(a) +
                                         static_cast<uint64_t>(b)));
        EXPECT_EQ((ea - eb).toInt(), static_cast<int64_t>(
                                         static_cast<uint64_t>(a) -
                                         static_cast<uint64_t>(b)));
        EXPECT_EQ((ea * eb).toInt(),
                  static_cast<int64_t>(static_cast<uint64_t>(a) *
                                       static_cast<uint64_t>(b)));
        EXPECT_EQ((ea & eb).toInt(), a & b);
        EXPECT_EQ((ea | eb).toInt(), a | b);
        EXPECT_EQ((ea ^ eb).toInt(), a ^ b);
        EXPECT_EQ((ea << s).toInt(),
                  static_cast<int64_t>(static_cast<uint64_t>(a) << s));
        EXPECT_EQ(ea.shrU(s).toInt(),
                  static_cast<int64_t>(static_cast<uint64_t>(a) >> s));
        EXPECT_EQ((ea < eb), a < b);
        EXPECT_EQ((ea == eb), a == b);
        // division: avoid INT64_MIN / -1 UB
        if (!(a == INT64_MIN && b == -1)) {
            EXPECT_EQ((ea / eb).toInt(), a / b) << a << "/" << b;
            EXPECT_EQ((ea % eb).toInt(), a % b) << a << "%" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Int64Property,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---------- Emscripten mode matrix ----------

TEST(EmscriptenModes, ForkWorksUnderEmterpreter)
{
    Browsix bx;
    auto r = bx.runArgv({"/usr/bin/forktest"});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "hello from child\nhello from parent\n")
        << "wait4 orders parent output after the child's";
}

TEST(EmscriptenModes, ForkWithoutEmterpreterFails)
{
    // §2.2: a program compiled without the Emterpreter that calls fork
    // "will fail at runtime". pdflatex-sync is such a program; drive a
    // fork attempt through make compiled the wrong way.
    Browsix bx;
    apps::ProgramRegistry::instance().add(apps::ProgramSpec{
        "make-miscompiled", apps::RuntimeKind::EmSync, 512,
        apps::makeMain, nullptr});
    bx.rootFs().writeFile(
        "/usr/bin/make-miscompiled",
        apps::ProgramRegistry::instance().bundleFor("make-miscompiled"));
    bx.rootFs().writeFile("/home/Makefile",
                          std::string("t:\n\techo never\n"));
    auto r = bx.run("cd /home && /usr/bin/make-miscompiled");
    EXPECT_NE(r.exitCode(), 0);
    EXPECT_NE(r.err.find("fork"), std::string::npos) << r.err;
}

TEST(EmscriptenModes, VmForkThroughKernelMatchesUnitSemantics)
{
    // End-to-end: the forktest VM image forks through the real kernel
    // twice in a row; pids must differ and output stay deterministic.
    Browsix bx;
    auto r1 = bx.runArgv({"/usr/bin/forktest"});
    auto r2 = bx.runArgv({"/usr/bin/forktest"});
    EXPECT_EQ(r1.out, r2.out);
}

TEST(EmscriptenModes, PrimesComputesCorrectly)
{
    Browsix bx;
    auto r = bx.runArgv({"/usr/bin/primes"});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "303\n") << "303 primes below 2000";
}

TEST(TypesetKernel, NativeAndBytecodeAgree)
{
    // The async/sync LaTeX comparison is only fair if both compute paths
    // produce identical results.
    const emvm::Image &img = apps::typesetImage();
    for (int64_t seed : {1ll, 42ll, 123456789ll}) {
        Vm vm(img);
        ASSERT_TRUE(vm.start("typeset", {seed, 5000}));
        RunState st = vm.run();
        ASSERT_EQ(st, RunState::Done);
        EXPECT_EQ(vm.exitCode(), apps::typesetNative(seed, 5000))
            << "seed " << seed;
    }
}

TEST(TypesetKernel, InterpretationIsSlowerThanNative)
{
    const emvm::Image &img = apps::typesetImage();
    int64_t iters = 400000;
    int64_t t0 = jsvm::nowUs();
    apps::typesetNative(7, iters);
    int64_t native_us = jsvm::nowUs() - t0;
    Vm vm(img);
    vm.start("typeset", {7, iters});
    t0 = jsvm::nowUs();
    vm.run();
    int64_t interp_us = jsvm::nowUs() - t0;
    EXPECT_GT(interp_us, native_us * 3)
        << "the Emterpreter tax must be real (native " << native_us
        << "us vs interpreted " << interp_us << "us)";
}
