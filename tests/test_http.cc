/**
 * @file
 * HTTP/1.1 parser + serializer tests (incremental feeding, chunked
 * bodies, pipelining, malformed input) and the simulated remote link.
 */
#include <gtest/gtest.h>

#include "jsvm/util.h"
#include "net/http.h"
#include "net/netsim.h"

using namespace browsix::net;

namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

std::string
str(const std::vector<uint8_t> &v)
{
    return std::string(v.begin(), v.end());
}

} // namespace

TEST(HttpSerialize, RequestAddsContentLength)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/api/meme";
    req.body = bytes("hello");
    std::string out = str(serializeRequest(req));
    EXPECT_NE(out.find("POST /api/meme HTTP/1.1\r\n"), std::string::npos);
    EXPECT_NE(out.find("content-length: 5\r\n"), std::string::npos);
    EXPECT_NE(out.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpSerialize, ResponseRoundtrip)
{
    HttpResponse resp;
    resp.status = 404;
    resp.reason = "Not Found";
    resp.headers["content-type"] = "text/plain";
    resp.body = bytes("nope");
    auto wire = serializeResponse(resp);

    HttpParser p(HttpParser::Mode::Response);
    ASSERT_TRUE(p.feed(wire));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.response().status, 404);
    EXPECT_EQ(p.response().reason, "Not Found");
    EXPECT_EQ(p.response().header("content-type"), "text/plain");
    EXPECT_EQ(str(p.response().body), "nope");
}

TEST(HttpParser, RequestWithQueryAndHeaders)
{
    HttpParser p(HttpParser::Mode::Request);
    ASSERT_TRUE(p.feed(bytes("GET /api/meme?top=hi%20there&x=1 HTTP/1.1\r\n"
                             "Host: localhost:8080\r\n"
                             "Accept: */*\r\n\r\n")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().header("host"), "localhost:8080");
    auto [path, query] = splitTarget(p.request().target);
    EXPECT_EQ(path, "/api/meme");
    EXPECT_EQ(query["top"], "hi there");
    EXPECT_EQ(query["x"], "1");
}

class HttpParserFeedSizes : public ::testing::TestWithParam<size_t>
{
};

TEST_P(HttpParserFeedSizes, ByteGranularityIsIrrelevant)
{
    // An incremental parser must produce identical results no matter how
    // the socket fragments the stream.
    std::string wire =
        "HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\nhello world";
    HttpParser p(HttpParser::Mode::Response);
    size_t chunk = GetParam();
    for (size_t off = 0; off < wire.size(); off += chunk) {
        size_t n = std::min(chunk, wire.size() - off);
        ASSERT_TRUE(p.feed(
            reinterpret_cast<const uint8_t *>(wire.data()) + off, n));
    }
    ASSERT_TRUE(p.done());
    EXPECT_EQ(str(p.response().body), "hello world");
}

INSTANTIATE_TEST_SUITE_P(Sizes, HttpParserFeedSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1024));

TEST(HttpParser, ChunkedBodyDecodes)
{
    HttpResponse resp;
    resp.body = bytes(std::string(5000, 'z'));
    auto wire = serializeResponseChunked(resp, 1024);
    HttpParser p(HttpParser::Mode::Response);
    // feed in awkward pieces
    for (size_t off = 0; off < wire.size(); off += 333) {
        size_t n = std::min<size_t>(333, wire.size() - off);
        ASSERT_TRUE(p.feed(wire.data() + off, n));
    }
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.response().body.size(), 5000u);
    EXPECT_EQ(p.response().body[4999], 'z');
}

TEST(HttpParser, ChunkedEmptyBody)
{
    HttpParser p(HttpParser::Mode::Response);
    ASSERT_TRUE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                             "transfer-encoding: chunked\r\n\r\n"
                             "0\r\n\r\n")));
    EXPECT_TRUE(p.done());
    EXPECT_TRUE(p.response().body.empty());
}

TEST(HttpParser, PipelinedBytesLandInTrailing)
{
    HttpParser p(HttpParser::Mode::Request);
    ASSERT_TRUE(p.feed(bytes("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n"
                             "\r\n")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.request().target, "/a");
    p.reset();
    ASSERT_TRUE(p.feed(bytes("")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.request().target, "/b");
}

TEST(HttpParser, MalformedStartLineFails)
{
    HttpParser p(HttpParser::Mode::Response);
    EXPECT_FALSE(p.feed(bytes("NOT-HTTP GARBAGE\r\n\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, MalformedHeaderFails)
{
    HttpParser p(HttpParser::Mode::Request);
    EXPECT_FALSE(p.feed(bytes("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, BadChunkSizeFails)
{
    HttpParser p(HttpParser::Mode::Response);
    EXPECT_FALSE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                              "transfer-encoding: chunked\r\n\r\n"
                              "zz\r\n")));
}

TEST(HttpUtil, UrlDecode)
{
    EXPECT_EQ(urlDecode("a%20b+c"), "a b c");
    EXPECT_EQ(urlDecode("%41%6a"), "Aj");
    EXPECT_EQ(urlDecode("100%"), "100%") << "stray % stays literal";
}

TEST(HttpUtil, ParseQueryEdgeCases)
{
    auto q = parseQuery("a=1&b=&c&d=x%3Dy");
    EXPECT_EQ(q["a"], "1");
    EXPECT_EQ(q["b"], "");
    EXPECT_EQ(q["c"], "");
    EXPECT_EQ(q["d"], "x=y");
}

TEST(NetSim, RemoteRequestPaysRtt)
{
    browsix::jsvm::EventLoop loop;
    LinkParams link{/*rttUs=*/10000, /*bytesPerUs=*/0};
    SimulatedRemoteServer server(&loop, link, [](const HttpRequest &) {
        HttpResponse r;
        r.body = {'o', 'k'};
        return r;
    });
    bool done = false;
    int64_t t0 = browsix::jsvm::nowUs();
    int64_t elapsed = 0;
    HttpRequest req;
    server.request(req, [&](int err, HttpResponse resp) {
        EXPECT_EQ(err, 0);
        EXPECT_EQ(resp.body.size(), 2u);
        elapsed = browsix::jsvm::nowUs() - t0;
        done = true;
    });
    while (!done && browsix::jsvm::nowUs() - t0 < 2000000)
        loop.pumpOne(true);
    ASSERT_TRUE(done);
    EXPECT_GE(elapsed, 10000) << "request + response each pay rtt/2";
}

TEST(NetSim, BandwidthDelaysLargePayloads)
{
    browsix::jsvm::EventLoop loop;
    LinkParams slow{/*rttUs=*/0, /*bytesPerUs=*/1.0}; // 1 MB/s
    SimulatedRemoteServer server(&loop, slow, [](const HttpRequest &) {
        HttpResponse r;
        r.body.assign(50000, 'x');
        return r;
    });
    bool done = false;
    int64_t t0 = browsix::jsvm::nowUs();
    HttpRequest req;
    int64_t elapsed = 0;
    server.request(req, [&](int, HttpResponse) {
        elapsed = browsix::jsvm::nowUs() - t0;
        done = true;
    });
    while (!done && browsix::jsvm::nowUs() - t0 < 2000000)
        loop.pumpOne(true);
    ASSERT_TRUE(done);
    EXPECT_GE(elapsed, 50000) << "50 KB at 1 B/us is 50 ms downstream";
}
