/**
 * @file
 * HTTP/1.1 parser + serializer tests (incremental feeding, chunked
 * bodies, pipelining, hostile input), the net::HttpServer connection
 * loop over in-memory fake transports, and the simulated remote link.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <deque>
#include <set>

#include "jsvm/util.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/netsim.h"
#include "runtime/syscall_proto.h"

using namespace browsix::net;

namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

std::string
str(const std::vector<uint8_t> &v)
{
    return std::string(v.begin(), v.end());
}

} // namespace

TEST(HttpSerialize, RequestAddsContentLength)
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/api/meme";
    req.body = bytes("hello");
    std::string out = str(serializeRequest(req));
    EXPECT_NE(out.find("POST /api/meme HTTP/1.1\r\n"), std::string::npos);
    EXPECT_NE(out.find("content-length: 5\r\n"), std::string::npos);
    EXPECT_NE(out.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpSerialize, ResponseRoundtrip)
{
    HttpResponse resp;
    resp.status = 404;
    resp.reason = "Not Found";
    resp.headers["content-type"] = "text/plain";
    resp.body = bytes("nope");
    auto wire = serializeResponse(resp);

    HttpParser p(HttpParser::Mode::Response);
    ASSERT_TRUE(p.feed(wire));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.response().status, 404);
    EXPECT_EQ(p.response().reason, "Not Found");
    EXPECT_EQ(p.response().header("content-type"), "text/plain");
    EXPECT_EQ(str(p.response().body), "nope");
}

TEST(HttpParser, RequestWithQueryAndHeaders)
{
    HttpParser p(HttpParser::Mode::Request);
    ASSERT_TRUE(p.feed(bytes("GET /api/meme?top=hi%20there&x=1 HTTP/1.1\r\n"
                             "Host: localhost:8080\r\n"
                             "Accept: */*\r\n\r\n")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().header("host"), "localhost:8080");
    auto [path, query] = splitTarget(p.request().target);
    EXPECT_EQ(path, "/api/meme");
    EXPECT_EQ(query["top"], "hi there");
    EXPECT_EQ(query["x"], "1");
}

class HttpParserFeedSizes : public ::testing::TestWithParam<size_t>
{
};

TEST_P(HttpParserFeedSizes, ByteGranularityIsIrrelevant)
{
    // An incremental parser must produce identical results no matter how
    // the socket fragments the stream.
    std::string wire =
        "HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\nhello world";
    HttpParser p(HttpParser::Mode::Response);
    size_t chunk = GetParam();
    for (size_t off = 0; off < wire.size(); off += chunk) {
        size_t n = std::min(chunk, wire.size() - off);
        ASSERT_TRUE(p.feed(
            reinterpret_cast<const uint8_t *>(wire.data()) + off, n));
    }
    ASSERT_TRUE(p.done());
    EXPECT_EQ(str(p.response().body), "hello world");
}

INSTANTIATE_TEST_SUITE_P(Sizes, HttpParserFeedSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1024));

TEST(HttpParser, ChunkedBodyDecodes)
{
    HttpResponse resp;
    resp.body = bytes(std::string(5000, 'z'));
    auto wire = serializeResponseChunked(resp, 1024);
    HttpParser p(HttpParser::Mode::Response);
    // feed in awkward pieces
    for (size_t off = 0; off < wire.size(); off += 333) {
        size_t n = std::min<size_t>(333, wire.size() - off);
        ASSERT_TRUE(p.feed(wire.data() + off, n));
    }
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.response().body.size(), 5000u);
    EXPECT_EQ(p.response().body[4999], 'z');
}

TEST(HttpParser, ChunkedEmptyBody)
{
    HttpParser p(HttpParser::Mode::Response);
    ASSERT_TRUE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                             "transfer-encoding: chunked\r\n\r\n"
                             "0\r\n\r\n")));
    EXPECT_TRUE(p.done());
    EXPECT_TRUE(p.response().body.empty());
}

TEST(HttpParser, PipelinedBytesLandInTrailing)
{
    HttpParser p(HttpParser::Mode::Request);
    ASSERT_TRUE(p.feed(bytes("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n"
                             "\r\n")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.request().target, "/a");
    p.reset();
    ASSERT_TRUE(p.feed(bytes("")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(p.request().target, "/b");
}

TEST(HttpParser, MalformedStartLineFails)
{
    HttpParser p(HttpParser::Mode::Response);
    EXPECT_FALSE(p.feed(bytes("NOT-HTTP GARBAGE\r\n\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, MalformedHeaderFails)
{
    HttpParser p(HttpParser::Mode::Request);
    EXPECT_FALSE(p.feed(bytes("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, BadChunkSizeFails)
{
    HttpParser p(HttpParser::Mode::Response);
    EXPECT_FALSE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                              "transfer-encoding: chunked\r\n\r\n"
                              "zz\r\n")));
}

TEST(HttpParser, ThreePipelinedRequestsCompleteInOneFeed)
{
    // A pipelining client may land several complete messages in one
    // read. Each reset() must immediately re-parse the trailing bytes so
    // every back-to-back message is done() without further feeds.
    HttpParser p(HttpParser::Mode::Request);
    ASSERT_TRUE(p.feed(bytes("GET /a HTTP/1.1\r\n\r\n"
                             "POST /b HTTP/1.1\r\ncontent-length: 4\r\n"
                             "\r\nbody"
                             "GET /c HTTP/1.1\r\nhost: x\r\n\r\n")));
    std::vector<std::string> targets;
    while (p.done()) {
        targets.push_back(p.request().target);
        p.reset();
    }
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0], "/a");
    EXPECT_EQ(targets[1], "/b");
    EXPECT_EQ(targets[2], "/c");
    EXPECT_FALSE(p.failed());
    EXPECT_TRUE(p.idle()) << "nothing left over after the last message";
}

TEST(HttpParser, ChunkSizeGarbageSuffixFails)
{
    // Strict hex: stoull would silently accept "10junk" as 0x10.
    HttpParser p(HttpParser::Mode::Response);
    EXPECT_FALSE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                              "transfer-encoding: chunked\r\n\r\n"
                              "10junk\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, ChunkExtensionIgnored)
{
    HttpParser p(HttpParser::Mode::Response);
    ASSERT_TRUE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                             "transfer-encoding: chunked\r\n\r\n"
                             "5;ext=x\r\nhello\r\n0\r\n\r\n")));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(str(p.response().body), "hello");
}

TEST(HttpParser, MissingChunkCrlfFails)
{
    // The CRLF terminating each chunk's data is mandatory framing; a
    // server that skips it could smuggle bytes into the next chunk size.
    HttpParser p(HttpParser::Mode::Response);
    EXPECT_FALSE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                              "transfer-encoding: chunked\r\n\r\n"
                              "5\r\nhelloXY")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, OversizedChunkRejectedByBodyCap)
{
    HttpParser p(HttpParser::Mode::Response);
    p.setMaxBodyBytes(16);
    // The declared chunk alone busts the cap: fail before buffering it.
    EXPECT_FALSE(p.feed(bytes("HTTP/1.1 200 OK\r\n"
                              "transfer-encoding: chunked\r\n\r\n"
                              "ffff\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, ContentLengthOverBodyCapFails)
{
    HttpParser p(HttpParser::Mode::Request);
    p.setMaxBodyBytes(10);
    EXPECT_FALSE(p.feed(bytes("POST / HTTP/1.1\r\n"
                              "content-length: 11\r\n\r\n")));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, HeaderCapEnforced)
{
    HttpParser p(HttpParser::Mode::Request);
    p.setMaxHeaderBytes(64);
    std::string big = "GET / HTTP/1.1\r\nx-pad: " +
                      std::string(128, 'a') + "\r\n\r\n";
    EXPECT_FALSE(p.feed(bytes(big)));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, HeaderCapStopsUnterminatedFlood)
{
    // No complete line ever arrives — the parser must still fail at the
    // cap instead of buffering the flood without bound.
    HttpParser p(HttpParser::Mode::Request);
    p.setMaxHeaderBytes(64);
    std::vector<uint8_t> flood(65, 'A');
    EXPECT_FALSE(p.feed(flood));
    EXPECT_TRUE(p.failed());
}

TEST(HttpParser, TruncationDetectableViaIdle)
{
    // EOF-at-idle is a clean close; EOF mid-message is truncation. The
    // server loop distinguishes them with idle()/done().
    HttpParser clean(HttpParser::Mode::Request);
    EXPECT_TRUE(clean.idle());

    HttpParser cut(HttpParser::Mode::Request);
    ASSERT_TRUE(cut.feed(bytes("GET / HTTP/1.1\r\nhost: ")));
    EXPECT_FALSE(cut.idle());
    EXPECT_FALSE(cut.done());

    HttpParser cutBody(HttpParser::Mode::Request);
    ASSERT_TRUE(cutBody.feed(bytes("POST / HTTP/1.1\r\n"
                                   "content-length: 8\r\n\r\nfour")));
    EXPECT_FALSE(cutBody.idle());
    EXPECT_FALSE(cutBody.done());
}

TEST(HttpUtil, UrlDecode)
{
    EXPECT_EQ(urlDecode("a%20b+c"), "a b c");
    EXPECT_EQ(urlDecode("%41%6a"), "Aj");
    EXPECT_EQ(urlDecode("100%"), "100%") << "stray % stays literal";
}

TEST(HttpUtil, ParseQueryEdgeCases)
{
    auto q = parseQuery("a=1&b=&c&d=x%3Dy");
    EXPECT_EQ(q["a"], "1");
    EXPECT_EQ(q["b"], "");
    EXPECT_EQ(q["c"], "");
    EXPECT_EQ(q["d"], "x=y");
}

// ---------------------------------------------------------------------------
// net::HttpServer over in-memory fake transports.
// ---------------------------------------------------------------------------

namespace {

/** Scripted blocking transport: each read() call consumes the next
 * scripted buffer; an empty script is EOF. Records the teardown order. */
class FakeTransport : public HttpTransport
{
  public:
    std::deque<std::vector<uint8_t>> reads;
    std::string out;
    std::vector<std::string> ops;
    bool finSent = false;
    bool closed = false;

    int64_t read(int, browsix::bfs::Buffer &o, size_t maxlen) override
    {
        if (reads.empty())
            return 0;
        auto &b = reads.front();
        size_t n = std::min(maxlen, b.size());
        o.insert(o.end(), b.begin(), b.begin() + n);
        if (n == b.size())
            reads.pop_front();
        else
            b.erase(b.begin(), b.begin() + n);
        return static_cast<int64_t>(n);
    }
    int64_t writev(int,
                   const std::vector<browsix::bfs::Buffer> &bufs) override
    {
        int64_t total = 0;
        for (const auto &b : bufs) {
            out.append(b.begin(), b.end());
            total += static_cast<int64_t>(b.size());
        }
        ops.push_back("writev");
        return total;
    }
    int shutdownWrite(int) override
    {
        finSent = true;
        ops.push_back("fin");
        return 0;
    }
    int close(int) override
    {
        closed = true;
        ops.push_back("close");
        return 0;
    }
};

/** FakeTransport plus a tiny in-memory filesystem for the sendfile
 * (bodyFile) path. */
class FakeFileTransport : public FakeTransport
{
  public:
    std::map<std::string, std::string> files;

    int64_t fileSize(const std::string &path) override
    {
        auto it = files.find(path);
        return it == files.end() ? -2
                                 : static_cast<int64_t>(it->second.size());
    }
    int64_t sendFile(int, const std::string &path, size_t len) override
    {
        ops.push_back("sendfile");
        out += files[path].substr(0, len);
        return static_cast<int64_t>(len);
    }
};

std::vector<uint8_t>
request(const std::string &target,
        const std::map<std::string, std::string> &headers = {})
{
    HttpRequest req;
    req.target = target;
    req.headers = headers;
    return serializeRequest(req);
}

HttpServer::Handler
echoHandler()
{
    return [](const HttpRequest &req) {
        HttpResponse resp;
        std::string body = "echo " + req.target;
        resp.body.assign(body.begin(), body.end());
        return resp;
    };
}

size_t
countOf(const std::string &haystack, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        n++;
    return n;
}

} // namespace

TEST(HttpServer, KeepAliveServesSequentialRequests)
{
    FakeTransport t;
    t.reads.push_back(request("/one"));
    t.reads.push_back(request("/two"));
    HttpServer server(t, echoHandler());
    server.serveConn(3);

    EXPECT_EQ(server.stats().connections, 1u);
    EXPECT_EQ(server.stats().requests, 2u);
    EXPECT_EQ(server.stats().keepAliveReuses, 1u);
    EXPECT_EQ(server.stats().pipelinedRequests, 0u);
    EXPECT_EQ(countOf(t.out, "HTTP/1.1 200"), 2u);
    EXPECT_NE(t.out.find("echo /one"), std::string::npos);
    EXPECT_NE(t.out.find("echo /two"), std::string::npos);
    EXPECT_TRUE(t.finSent);
    EXPECT_TRUE(t.closed);
}

TEST(HttpServer, PipelinedRequestsAnswerInOneFlush)
{
    FakeTransport t;
    auto both = request("/a");
    auto b = request("/b");
    both.insert(both.end(), b.begin(), b.end());
    t.reads.push_back(std::move(both));
    HttpServer server(t, echoHandler());
    server.serveConn(3);

    EXPECT_EQ(server.stats().requests, 2u);
    EXPECT_EQ(server.stats().pipelinedRequests, 1u);
    EXPECT_EQ(countOf(t.out, "HTTP/1.1 200"), 2u);
    // Both responses coalesced into a single writev.
    EXPECT_EQ(std::count(t.ops.begin(), t.ops.end(), "writev"), 1);
    EXPECT_LT(t.out.find("echo /a"), t.out.find("echo /b"));
}

TEST(HttpServer, MalformedRequestGets400AndClose)
{
    FakeTransport t;
    t.reads.push_back(bytes("GARBAGE REQUEST\r\n\r\n"));
    HttpServer server(t, echoHandler());
    server.serveConn(3);

    EXPECT_EQ(server.stats().requests, 0u);
    EXPECT_EQ(server.stats().parseErrors, 1u);
    EXPECT_NE(t.out.find("HTTP/1.1 400 Bad Request"), std::string::npos);
    EXPECT_NE(t.out.find("connection: close"), std::string::npos);
    EXPECT_TRUE(t.closed);
}

TEST(HttpServer, ConnectionCloseHonored)
{
    FakeTransport t;
    t.reads.push_back(request("/bye", {{"connection", "close"}}));
    // A second request is already queued; it must be drained, not served.
    t.reads.push_back(request("/never"));
    HttpServer server(t, echoHandler());
    server.serveConn(3);

    EXPECT_EQ(server.stats().requests, 1u);
    EXPECT_EQ(countOf(t.out, "HTTP/1.1 200"), 1u);
    EXPECT_NE(t.out.find("connection: close"), std::string::npos);
    EXPECT_EQ(t.out.find("echo /never"), std::string::npos);
    // Graceful: FIN before close, and the drain consumed the backlog.
    EXPECT_TRUE(t.finSent);
    EXPECT_TRUE(t.reads.empty());
}

TEST(HttpServer, Http10DefaultsToClose)
{
    FakeTransport t;
    t.reads.push_back(bytes("GET /old HTTP/1.0\r\n\r\n"));
    t.reads.push_back(request("/never"));
    HttpServer server(t, echoHandler());
    server.serveConn(3);

    EXPECT_EQ(server.stats().requests, 1u);
    EXPECT_NE(t.out.find("connection: close"), std::string::npos);
    EXPECT_TRUE(t.closed);
}

TEST(HttpServer, ChunkedResponseRoundtripsToClient)
{
    FakeTransport t;
    t.reads.push_back(request("/chunky"));
    std::string payload(5000, 'q');
    HttpServer server(t, [&](const HttpRequest &) {
        HttpResponse resp;
        resp.headers["transfer-encoding"] = "chunked";
        resp.body.assign(payload.begin(), payload.end());
        return resp;
    });
    server.serveConn(3);

    EXPECT_EQ(server.stats().chunkedBodies, 1u);
    EXPECT_NE(t.out.find("transfer-encoding: chunked"),
              std::string::npos);
    // The client parser must reassemble the exact body.
    HttpParser p(HttpParser::Mode::Response);
    ASSERT_TRUE(p.feed(bytes(t.out)));
    ASSERT_TRUE(p.done());
    EXPECT_EQ(str(p.response().body), payload);
}

TEST(HttpServer, SendfileBodyStreamsAfterHeaders)
{
    FakeFileTransport t;
    t.files["/memes/a.bimg"] = "filebytes";
    t.reads.push_back(request("/memes/a.bimg"));
    HttpServer server(t, [](const HttpRequest &req) {
        HttpResponse resp;
        resp.bodyFile = splitTarget(req.target).first;
        resp.headers["content-type"] = "application/octet-stream";
        return resp;
    });
    server.serveConn(3);

    EXPECT_EQ(server.stats().requests, 1u);
    EXPECT_EQ(server.stats().sendfileBodies, 1u);
    EXPECT_NE(t.out.find("content-length: 9"), std::string::npos);
    // Headers flushed via writev strictly before the file streamed.
    auto wv = std::find(t.ops.begin(), t.ops.end(), "writev");
    auto sf = std::find(t.ops.begin(), t.ops.end(), "sendfile");
    ASSERT_NE(wv, t.ops.end());
    ASSERT_NE(sf, t.ops.end());
    EXPECT_LT(wv - t.ops.begin(), sf - t.ops.begin());
    EXPECT_NE(t.out.find("\r\n\r\nfilebytes"), std::string::npos);
}

TEST(HttpServer, MissingBodyFileAnswers404)
{
    FakeFileTransport t;
    t.reads.push_back(request("/memes/missing.bimg"));
    HttpServer server(t, [](const HttpRequest &req) {
        HttpResponse resp;
        resp.bodyFile = splitTarget(req.target).first;
        return resp;
    });
    server.serveConn(3);

    EXPECT_EQ(server.stats().sendfileBodies, 0u);
    EXPECT_NE(t.out.find("HTTP/1.1 404"), std::string::npos);
}

TEST(HttpServer, TruncatedRequestCounted)
{
    FakeTransport t;
    t.reads.push_back(bytes("GET / HTTP/1.1\r\nhost: dead-peer"));
    HttpServer server(t, echoHandler());
    server.serveConn(3);

    EXPECT_EQ(server.stats().requests, 0u);
    EXPECT_EQ(server.stats().truncated, 1u);
    EXPECT_TRUE(t.closed);
}

TEST(HttpServer, HeaderCapRejectsOversizedRequest)
{
    FakeTransport t;
    t.reads.push_back(
        request("/", {{"x-pad", std::string(256, 'a')}}));
    HttpServerOptions opts;
    opts.maxHeaderBytes = 64;
    HttpServer server(t, echoHandler(), opts);
    server.serveConn(3);

    EXPECT_EQ(server.stats().parseErrors, 1u);
    EXPECT_NE(t.out.find("HTTP/1.1 400"), std::string::npos);
}

namespace {

/** Readiness-driven fake for HttpServer::run: a listener with a scripted
 * backlog plus per-connection scripted reads. Level-triggered: a
 * connection is "ready" whenever it has bytes or (script exhausted) EOF
 * to report. */
class FakeEventTransport : public HttpEventTransport
{
  public:
    static constexpr int kListener = 100;

    std::deque<int> backlog;
    std::map<int, std::deque<std::vector<uint8_t>>> reads;
    std::set<int> interest;
    std::string out;
    std::map<int, bool> finSent;
    std::map<int, bool> closedFd;
    int waits = 0;

    int64_t read(int fd, browsix::bfs::Buffer &o, size_t maxlen) override
    {
        auto &script = reads[fd];
        if (script.empty())
            return 0;
        auto &b = script.front();
        size_t n = std::min(maxlen, b.size());
        o.insert(o.end(), b.begin(), b.begin() + n);
        if (n == b.size())
            script.pop_front();
        else
            b.erase(b.begin(), b.begin() + n);
        return static_cast<int64_t>(n);
    }
    int64_t writev(int,
                   const std::vector<browsix::bfs::Buffer> &bufs) override
    {
        int64_t total = 0;
        for (const auto &b : bufs) {
            out.append(b.begin(), b.end());
            total += static_cast<int64_t>(b.size());
        }
        return total;
    }
    int shutdownWrite(int fd) override
    {
        finSent[fd] = true;
        return 0;
    }
    int close(int fd) override
    {
        closedFd[fd] = true;
        interest.erase(fd);
        return 0;
    }
    int accept(int) override
    {
        if (backlog.empty())
            return -EAGAIN;
        int fd = backlog.front();
        backlog.pop_front();
        return fd;
    }
    int epollCreate() override { return 500; }
    int epollCtl(int, int op, int fd, int) override
    {
        if (op == browsix::sys::EPOLL_CTL_DEL_)
            interest.erase(fd);
        else
            interest.insert(fd);
        return 0;
    }
    int epollWait(int, std::vector<Event> &evs,
                  size_t maxevents) override
    {
        if (++waits > 10000)
            return -ETIMEDOUT; // broken loop: fail instead of hanging
        evs.clear();
        if (interest.count(kListener) && !backlog.empty())
            evs.push_back({kListener, browsix::sys::POLLIN_});
        for (int fd : interest) {
            if (fd == kListener || evs.size() >= maxevents)
                continue;
            evs.push_back({fd, browsix::sys::POLLIN_});
        }
        return static_cast<int>(evs.size());
    }
};

} // namespace

TEST(HttpServerRun, RequiresEventTransport)
{
    FakeTransport t;
    HttpServer server(t, echoHandler());
    EXPECT_EQ(server.run(5), -ENOTSUP);
}

TEST(HttpServerRun, ServesTwoConnectionsAndDrains)
{
    FakeEventTransport t;
    t.backlog = {7, 8};
    t.reads[7].push_back(request("/seven"));
    t.reads[8].push_back(request("/eight"));
    HttpServerOptions opts;
    opts.maxRequests = 2;
    HttpServer server(t, echoHandler(), opts);

    EXPECT_EQ(server.run(FakeEventTransport::kListener), 0);
    EXPECT_EQ(server.stats().connections, 2u);
    EXPECT_EQ(server.stats().requests, 2u);
    EXPECT_NE(t.out.find("echo /seven"), std::string::npos);
    EXPECT_NE(t.out.find("echo /eight"), std::string::npos);
    EXPECT_TRUE(t.closedFd[7]);
    EXPECT_TRUE(t.closedFd[8]);
    EXPECT_TRUE(t.closedFd[500]) << "epoll fd released on exit";
    EXPECT_TRUE(t.interest.empty());
}

TEST(HttpServerRun, ServerInitiatedCloseIsGraceful)
{
    FakeEventTransport t;
    t.backlog = {9};
    t.reads[9].push_back(request("/bye", {{"connection", "close"}}));
    // Bytes the peer had in flight after our FIN: discarded, not parsed.
    t.reads[9].push_back(bytes("GARBAGE AFTER CLOSE\r\n\r\n"));
    HttpServerOptions opts;
    opts.maxRequests = 1;
    HttpServer server(t, echoHandler(), opts);

    EXPECT_EQ(server.run(FakeEventTransport::kListener), 0);
    EXPECT_EQ(server.stats().requests, 1u);
    EXPECT_EQ(server.stats().parseErrors, 0u)
        << "post-FIN bytes are drained, not parsed";
    EXPECT_TRUE(t.finSent[9]);
    EXPECT_TRUE(t.closedFd[9]);
    EXPECT_EQ(countOf(t.out, "HTTP/1.1"), 1u);
}

TEST(HttpServerRun, TruncatedConnCountedInEventLoop)
{
    FakeEventTransport t;
    t.backlog = {11};
    t.reads[11].push_back(bytes("GET / HTTP/1.1\r\nhost: gone"));
    HttpServerOptions opts;
    opts.maxRequests = 1;
    HttpServer server(t, echoHandler(), opts);

    // The lone connection dies mid-request, so maxRequests is never
    // reached; cap the loop by closing the listener via draining on a
    // second idle pass. run() exits only via draining, so instead serve
    // a second healthy connection to satisfy maxRequests.
    t.backlog.push_back(12);
    t.reads[12].push_back(request("/ok"));

    EXPECT_EQ(server.run(FakeEventTransport::kListener), 0);
    EXPECT_EQ(server.stats().truncated, 1u);
    EXPECT_EQ(server.stats().requests, 1u);
    EXPECT_TRUE(t.closedFd[11]);
    EXPECT_TRUE(t.closedFd[12]);
}

TEST(NetSim, RemoteRequestPaysRtt)
{
    browsix::jsvm::EventLoop loop;
    LinkParams link{/*rttUs=*/10000, /*bytesPerUs=*/0};
    SimulatedRemoteServer server(&loop, link, [](const HttpRequest &) {
        HttpResponse r;
        r.body = {'o', 'k'};
        return r;
    });
    bool done = false;
    int64_t t0 = browsix::jsvm::nowUs();
    int64_t elapsed = 0;
    HttpRequest req;
    server.request(req, [&](int err, HttpResponse resp) {
        EXPECT_EQ(err, 0);
        EXPECT_EQ(resp.body.size(), 2u);
        elapsed = browsix::jsvm::nowUs() - t0;
        done = true;
    });
    while (!done && browsix::jsvm::nowUs() - t0 < 2000000)
        loop.pumpOne(true);
    ASSERT_TRUE(done);
    EXPECT_GE(elapsed, 10000) << "request + response each pay rtt/2";
}

TEST(NetSim, BandwidthDelaysLargePayloads)
{
    browsix::jsvm::EventLoop loop;
    LinkParams slow{/*rttUs=*/0, /*bytesPerUs=*/1.0}; // 1 MB/s
    SimulatedRemoteServer server(&loop, slow, [](const HttpRequest &) {
        HttpResponse r;
        r.body.assign(50000, 'x');
        return r;
    });
    bool done = false;
    int64_t t0 = browsix::jsvm::nowUs();
    HttpRequest req;
    int64_t elapsed = 0;
    server.request(req, [&](int, HttpResponse) {
        elapsed = browsix::jsvm::nowUs() - t0;
        done = true;
    });
    while (!done && browsix::jsvm::nowUs() - t0 < 2000000)
        loop.pumpOne(true);
    ASSERT_TRUE(done);
    EXPECT_GE(elapsed, 50000) << "50 KB at 1 B/us is 50 ms downstream";
}
