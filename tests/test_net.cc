/**
 * @file
 * net::NetBackend tests: the port namespace and accept/connect
 * rendezvous (loopback), shutdown(2) half-close semantics on connected
 * sockets, SimBackend's shaped byte delivery under a virtual clock, and
 * the end-to-end serving paths (meme-server over simNet, meme-httpd's
 * ring-native epoll loop) through the public Browsix API.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/browsix.h"
#include "jsvm/test_clock.h"
#include "net/net_backend.h"
#include "net/netsim.h"
#include "runtime/syscall_proto.h"

using namespace browsix;

namespace {

kernel::SocketFilePtr
makeListener(net::NetBackend &backend, int port, int backlog = 8)
{
    auto sock = std::make_shared<kernel::SocketFile>();
    EXPECT_EQ(sock->bind(port), 0);
    EXPECT_EQ(sock->listen(backlog), 0);
    backend.addListener(port, sock);
    return sock;
}

/** Blocking-style read of whatever the socket has buffered. */
std::string
readSome(kernel::SocketFile &sock)
{
    std::string got;
    sock.read(4096, [&](int err, bfs::BufferPtr data) {
        if (err == 0 && data)
            got.assign(data->begin(), data->end());
    });
    return got;
}

void
writeAll(kernel::SocketFile &sock, const std::string &s, int *err_out = nullptr)
{
    sock.write(bfs::Buffer(s.begin(), s.end()),
               [err_out](int err, size_t) {
                   if (err_out)
                       *err_out = err;
               });
}

} // namespace

TEST(NetBackendPorts, AllocBindPortHonorsRequestAndRefusesTaken)
{
    net::LoopbackBackend backend;
    EXPECT_EQ(backend.allocBindPort(8080), 8080);
    makeListener(backend, 8080);
    EXPECT_EQ(backend.allocBindPort(8080), -EADDRINUSE);

    int scanned = backend.allocBindPort(0);
    EXPECT_GE(scanned, 32768);
    EXPECT_NE(backend.allocBindPort(0), scanned)
        << "scanned binds advance";
    EXPECT_NE(backend.allocEphemeralPort(), backend.allocEphemeralPort());
}

TEST(NetBackendPorts, ListenerEntriesLazilyDropWithTheirSocket)
{
    net::LoopbackBackend backend;
    auto sock = makeListener(backend, 9000);
    EXPECT_TRUE(backend.portListening(9000));
    EXPECT_EQ(backend.listener(9000), sock);

    // Last close leaves the Listening state; the stale entry must be
    // erased on lookup rather than handed to a connector.
    sock->unref();
    EXPECT_EQ(backend.listener(9000), nullptr);
    EXPECT_FALSE(backend.portListening(9000));
    EXPECT_EQ(backend.allocBindPort(9000), 9000) << "port reusable";
}

TEST(NetBackendPorts, OnPortListenFiresNowOrOnArrival)
{
    net::LoopbackBackend backend;
    makeListener(backend, 7000);
    int immediate = 0, later = 0;
    backend.onPortListen(7000, [&]() { immediate++; });
    EXPECT_EQ(immediate, 1) << "already-listening port fires inline";

    backend.onPortListen(7001, [&]() { later++; });
    EXPECT_EQ(later, 0);
    makeListener(backend, 7001);
    EXPECT_EQ(later, 1) << "watcher fires when the listener arrives";
}

TEST(NetBackendConnect, LoopbackRoundtrip)
{
    net::LoopbackBackend backend;
    auto listener = makeListener(backend, 8080);

    auto client = std::make_shared<kernel::SocketFile>();
    ASSERT_EQ(backend.connect(*client, 8080), 0);
    EXPECT_EQ(client->state(), kernel::SocketFile::State::Connected);
    EXPECT_EQ(client->remotePort(), 8080);

    kernel::SocketFilePtr server;
    listener->accept([&](int err, kernel::SocketFilePtr s) {
        EXPECT_EQ(err, 0);
        server = std::move(s);
    });
    ASSERT_TRUE(server);
    EXPECT_EQ(server->port(), 8080);
    EXPECT_EQ(server->remotePort(), client->port());

    writeAll(*client, "ping");
    EXPECT_EQ(readSome(*server), "ping");
    writeAll(*server, "pong");
    EXPECT_EQ(readSome(*client), "pong");
}

TEST(NetBackendConnect, RefusedWithoutListener)
{
    net::LoopbackBackend backend;
    auto client = std::make_shared<kernel::SocketFile>();
    EXPECT_EQ(backend.connect(*client, 4444), ECONNREFUSED);
    EXPECT_NE(client->state(), kernel::SocketFile::State::Connected);
}

TEST(NetBackendConnect, ParkedConnectPromotedByAccept)
{
    net::LoopbackBackend backend;
    auto listener = makeListener(backend, 8080, /*backlog=*/1);

    // Fill the backlog.
    auto first = std::make_shared<kernel::SocketFile>();
    ASSERT_EQ(backend.connect(*first, 8080), 0);

    // The next connect parks on the full backlog (the deferred-CQE path).
    auto second = std::make_shared<kernel::SocketFile>();
    int second_err = -1;
    bool parked = backend.connectOrPark(second, 8080,
                                        [&](int err) { second_err = err; });
    EXPECT_TRUE(parked);
    EXPECT_EQ(second_err, -1) << "completion deferred";

    // Accepting the first connection frees a slot and promotes the
    // parked connect.
    kernel::SocketFilePtr served;
    listener->accept(
        [&](int, kernel::SocketFilePtr s) { served = std::move(s); });
    ASSERT_TRUE(served);
    EXPECT_EQ(second_err, 0);
    EXPECT_EQ(second->state(), kernel::SocketFile::State::Connected);
}

TEST(NetBackendConnect, ParkedConnectRefusedWhenListenerCloses)
{
    net::LoopbackBackend backend;
    auto listener = makeListener(backend, 8080, /*backlog=*/1);
    auto first = std::make_shared<kernel::SocketFile>();
    ASSERT_EQ(backend.connect(*first, 8080), 0);

    auto second = std::make_shared<kernel::SocketFile>();
    int second_err = -1;
    ASSERT_TRUE(backend.connectOrPark(second, 8080,
                                      [&](int err) { second_err = err; }));
    listener->unref(); // owner exits without ever accepting
    EXPECT_EQ(second_err, ECONNREFUSED);
}

TEST(SocketShutdown, WrHalfCloseFinsPeerAfterDrain)
{
    net::LoopbackBackend backend;
    auto listener = makeListener(backend, 8080);
    auto client = std::make_shared<kernel::SocketFile>();
    ASSERT_EQ(backend.connect(*client, 8080), 0);
    kernel::SocketFilePtr server;
    listener->accept(
        [&](int, kernel::SocketFilePtr s) { server = std::move(s); });
    ASSERT_TRUE(server);

    writeAll(*client, "last words");
    EXPECT_EQ(client->shutdown(sys::SHUT_WR_), 0);

    // Buffered bytes drain before the peer observes EOF.
    EXPECT_EQ(readSome(*server), "last words");
    bool eof = false;
    server->read(16, [&](int err, bfs::BufferPtr data) {
        eof = (err == 0 && data && data->empty());
    });
    EXPECT_TRUE(eof);

    // Our write side is gone (EPIPE locally)...
    int werr = 0;
    writeAll(*client, "too late", &werr);
    EXPECT_EQ(werr, EPIPE);

    // ...but the receive stream still works: half-close, not close.
    writeAll(*server, "reply");
    EXPECT_EQ(readSome(*client), "reply");
}

TEST(SocketShutdown, RdCollapsesReceiveStream)
{
    net::LoopbackBackend backend;
    auto listener = makeListener(backend, 8080);
    auto client = std::make_shared<kernel::SocketFile>();
    ASSERT_EQ(backend.connect(*client, 8080), 0);
    kernel::SocketFilePtr server;
    listener->accept(
        [&](int, kernel::SocketFilePtr s) { server = std::move(s); });
    ASSERT_TRUE(server);

    EXPECT_EQ(client->shutdown(sys::SHUT_RD_), 0);
    EXPECT_TRUE(client->readable()) << "reads now complete immediately";
    bool eof = false;
    client->read(16, [&](int err, bfs::BufferPtr data) {
        eof = (err == 0 && data && data->empty());
    });
    EXPECT_TRUE(eof);
}

TEST(SocketShutdown, ErrorCases)
{
    kernel::SocketFile unconnected;
    EXPECT_EQ(unconnected.shutdown(sys::SHUT_WR_), ENOTCONN);

    net::LoopbackBackend backend;
    auto listener = makeListener(backend, 8080);
    auto client = std::make_shared<kernel::SocketFile>();
    ASSERT_EQ(backend.connect(*client, 8080), 0);
    EXPECT_EQ(client->shutdown(42), EINVAL);
}

TEST(SimBackendTest, DeliveryPaysPropagationDelay)
{
    jsvm::TestClock clock;
    jsvm::EventLoop loop;
    net::SimBackend backend(&loop, net::LinkParams{10000, 0});
    net::ConnectionStreams cs = backend.makeConnection();

    std::string msg = "across the wire";
    cs.client.tx->write(bfs::Buffer(msg.begin(), msg.end()),
                        [](int, size_t) {});
    EXPECT_FALSE(cs.server.rx->readable())
        << "bytes are in flight, not delivered synchronously";

    int64_t t0 = clock.nowUs();
    clock.pumpUntilIdle(loop);
    EXPECT_TRUE(cs.server.rx->readable());
    EXPECT_GE(clock.nowUs() - t0, 5000) << "one-way is rtt/2";

    std::string got;
    cs.server.rx->read(4096, [&](int err, bfs::BufferPtr data) {
        if (err == 0 && data)
            got.assign(data->begin(), data->end());
    });
    EXPECT_EQ(got, msg);
    EXPECT_EQ(backend.stats().connections, 1u);
    EXPECT_GE(backend.stats().linkChunks, 1u);
    EXPECT_EQ(backend.stats().bytesShaped, msg.size());
}

TEST(SimBackendTest, BandwidthSerializesBytes)
{
    jsvm::TestClock clock;
    jsvm::EventLoop loop;
    // 1 B/us = 1 MB/s, zero propagation: 50 KB takes >= 50 ms.
    net::SimBackend backend(&loop, net::LinkParams{0, 1.0});
    net::ConnectionStreams cs = backend.makeConnection();

    bfs::Buffer payload(50000, 'x');
    cs.client.tx->write(std::move(payload), [](int, size_t) {});
    int64_t t0 = clock.nowUs();
    clock.pumpUntilIdle(loop);

    size_t delivered = 0;
    while (cs.server.rx->readable() && cs.server.rx->buffered() > 0) {
        cs.server.rx->read(16384, [&](int err, bfs::BufferPtr data) {
            if (err == 0 && data)
                delivered += data->size();
        });
        clock.pumpUntilIdle(loop);
    }
    EXPECT_EQ(delivered, 50000u);
    EXPECT_GE(clock.nowUs() - t0, 50000);
    EXPECT_GT(backend.stats().linkChunks, 1u)
        << "large payloads ship as multiple shaped chunks";
}

TEST(SimBackendTest, EofArrivesAfterShapedBytes)
{
    jsvm::TestClock clock;
    jsvm::EventLoop loop;
    net::SimBackend backend(&loop, net::LinkParams{10000, 0});
    net::ConnectionStreams cs = backend.makeConnection();

    std::string msg = "fin follows";
    cs.client.tx->write(bfs::Buffer(msg.begin(), msg.end()),
                        [](int, size_t) {});
    cs.client.tx->closeWriter(); // FIN right behind the data
    clock.pumpUntilIdle(loop);

    std::string got;
    cs.server.rx->read(4096, [&](int err, bfs::BufferPtr data) {
        if (err == 0 && data)
            got.assign(data->begin(), data->end());
    });
    EXPECT_EQ(got, msg) << "data lands before the propagated FIN";
    bool eof = false;
    cs.server.rx->read(16, [&](int err, bfs::BufferPtr data) {
        eof = (err == 0 && data && data->empty());
    });
    EXPECT_TRUE(eof);
}

TEST(NetIntegration, MemeServerOverSimNet)
{
    // The §5.2 client/server experiment over the shaped backend: the
    // whole request/response (and the server's graceful FIN via the
    // shutdown trap) crosses simulated links in both directions.
    BootConfig cfg;
    cfg.memeAssets = true;
    cfg.simNet = true;
    cfg.simNetLink = net::LinkParams{2000, 0};
    Browsix bx(cfg);
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8080"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    ASSERT_TRUE(bx.waitForPort(8080, 15000));

    net::HttpRequest req;
    req.target = "/api/images";
    auto x = bx.xhr(8080, req, 30000);
    ASSERT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 200);
    std::string body(x.response.body.begin(), x.response.body.end());
    EXPECT_NE(body.find("wonka"), std::string::npos);
}

TEST(NetIntegration, MemeHttpdRingServerEndToEnd)
{
    // meme-httpd is the ring-native serving path: EmRing runtime,
    // HttpServer::run's epoll loop, batched reads, kernel-side sendfile
    // for /memes/ statics, chunked when asked.
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    bx.kernel().spawnRoot({"/usr/bin/meme-httpd", "8081"}, {}, "/",
                          [](int) {}, nullptr, nullptr, [](int) {});
    ASSERT_TRUE(bx.waitForPort(8081, 15000));

    net::HttpRequest api;
    api.target = "/api/images";
    auto x = bx.xhr(8081, api, 30000);
    ASSERT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 200);
    EXPECT_EQ(x.response.header("content-type"), "application/json");
    std::string body(x.response.body.begin(), x.response.body.end());
    EXPECT_NE(body.find("doge"), std::string::npos);

    // Static file: streamed kernel-side via sendfile SQEs.
    net::HttpRequest file;
    file.target = "/memes/wonka.bimg";
    x = bx.xhr(8081, file, 30000);
    ASSERT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 200);
    EXPECT_GT(x.response.body.size(), 1000u);

    // Chunked transfer encoding on request.
    net::HttpRequest chunked;
    chunked.target = "/api/images?chunked=1";
    x = bx.xhr(8081, chunked, 30000);
    ASSERT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 200);
    std::string cbody(x.response.body.begin(), x.response.body.end());
    EXPECT_NE(cbody.find("wonka"), std::string::npos);

    // Traversal attempts must not escape /memes.
    net::HttpRequest evil;
    evil.target = "/memes/../etc/passwd";
    x = bx.xhr(8081, evil, 30000);
    ASSERT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 404);
}
