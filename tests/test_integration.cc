/**
 * @file
 * End-to-end integration tests mirroring the paper's three case studies:
 * the LaTeX editor (make -> pdflatex/bibtex over the lazy TeX tree), the
 * meme generator (GopherJS server + XHR client + remote fallback), and
 * the terminal (shell scripts over the utility set), plus kill/cancel
 * flows (§2: "If the user cancels PDF generation, BROWSIX sends a
 * SIGKILL").
 */
#include <gtest/gtest.h>

#include "apps/meme/png.h"
#include "apps/meme/server.h"
#include "core/browsix.h"
#include "net/netsim.h"

using namespace browsix;

// ---------- LaTeX editor ----------

TEST(LatexEditor, FullMakeBuildProducesPdf)
{
    BootConfig cfg;
    cfg.texlive = true;
    Browsix bx(cfg);
    // First pdflatex run creates main.aux; bibtex then the final build,
    // exactly the Makefile flow of §2.1.
    auto r = bx.run("cd /home && /usr/bin/make", 60000);
    EXPECT_EQ(r.exitCode(), 0) << r.out << r.err;
    bfs::Buffer pdf;
    ASSERT_EQ(bx.fs().readFileSync("/home/main.pdf", pdf), 0);
    EXPECT_GT(pdf.size(), 20u);
    EXPECT_EQ(std::string(pdf.begin(), pdf.begin() + 4), "%PDF");
}

TEST(LatexEditor, SecondBuildIsUpToDate)
{
    BootConfig cfg;
    cfg.texlive = true;
    Browsix bx(cfg);
    ASSERT_EQ(bx.run("cd /home && /usr/bin/make", 60000).exitCode(), 0);
    auto r = bx.run("cd /home && /usr/bin/make", 60000);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_NE(r.out.find("up to date"), std::string::npos) << r.out;
}

TEST(LatexEditor, ErrorOutputReachesTheApplication)
{
    BootConfig cfg;
    cfg.texlive = true;
    Browsix bx(cfg);
    bx.rootFs().writeFile(
        "/home/broken.tex",
        std::string("\\documentclass{article}\n"
                    "\\usepackage{nonexistent-package}\n"
                    "\\begin{document}x\\end{document}\n"));
    bx.rootFs().writeFile(
        "/home/Makefile",
        std::string("broken.pdf: broken.tex\n"
                    "\t/usr/bin/pdflatex broken.tex\n"));
    std::string captured_out;
    bool exited = false;
    int status = 0;
    // Figure 4's flow: system() with stdout/stderr callbacks.
    bx.kernel().system(
        "cd /home && /usr/bin/make",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) {
            captured_out.append(d.begin(), d.end());
        },
        [&](const bfs::Buffer &d) {
            captured_out.append(d.begin(), d.end());
        });
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 60000));
    EXPECT_NE(sys::wexitstatus(status), 0);
    EXPECT_NE(captured_out.find("nonexistent-package"), std::string::npos)
        << "the editor displays pdflatex's output to the user";
}

TEST(LatexEditor, WarmCacheSkipsNetworkFetches)
{
    auto cache = std::make_shared<bfs::BrowserHttpCache>();
    uint64_t cold_fetches = 0;
    {
        BootConfig cfg;
        cfg.texlive = true;
        cfg.httpCache = cache;
        Browsix bx(cfg);
        ASSERT_EQ(
            bx.run("cd /home && /usr/bin/pdflatex main.tex", 60000)
                .exitCode(),
            0);
        cold_fetches = bx.texliveHttp()->fetchCount();
    }
    {
        BootConfig cfg;
        cfg.texlive = true;
        cfg.httpCache = cache; // second visit, same browser cache
        Browsix bx(cfg);
        ASSERT_EQ(
            bx.run("cd /home && /usr/bin/pdflatex main.tex", 60000)
                .exitCode(),
            0);
        EXPECT_LT(bx.texliveHttp()->fetchCount(), cold_fetches)
            << "\"subsequent accesses to the same files are "
               "instantaneous, as the browser caches them\" (§1)";
    }
}

TEST(LatexEditor, CancelViaSigkillStopsBuild)
{
    BootConfig cfg;
    cfg.texlive = true;
    Browsix bx(cfg);
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/make"}, bx.kernel().defaultEnv, "/home",
        [&](int st) {
            status = st;
            exited = true;
        },
        nullptr, nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.runUntil([&]() { return pid > 0; }, 5000));
    bx.kernel().kill(pid, sys::SIGKILL);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000));
    EXPECT_EQ(sys::wtermsig(status), sys::SIGKILL);
    // Children may briefly linger as orphans; they must get reaped.
    bx.runUntil([&]() { return bx.kernel().taskCount() == 0; }, 10000);
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

// ---------- meme generator ----------

namespace {

struct MemeRig
{
    BootConfig cfg;
    std::unique_ptr<Browsix> bx;

    MemeRig()
    {
        cfg.memeAssets = true;
        bx = std::make_unique<Browsix>(cfg);
        bx->kernel().spawnRoot({"/usr/bin/meme-server"},
                               {{"MEME_PORT", "8080"}}, "/", [](int) {},
                               nullptr, nullptr, [](int) {});
        EXPECT_TRUE(bx->waitForPort(8080, 10000));
    }
};

} // namespace

TEST(MemeGenerator, ListThenGenerate)
{
    MemeRig rig;
    net::HttpRequest list;
    list.target = "/api/images";
    auto x = rig.bx->xhr(8080, list);
    ASSERT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 200);

    net::HttpRequest gen;
    gen.target = "/api/meme?template=wonka&top=IN%20BROWSER&bottom=NO%20"
                 "SERVER";
    auto g = rig.bx->xhr(8080, gen, 60000);
    ASSERT_EQ(g.err, 0);
    EXPECT_EQ(g.response.status, 200);
    EXPECT_EQ(g.response.header("content-type"), "image/png");
    EXPECT_TRUE(apps::validatePng(g.response.body));
}

TEST(MemeGenerator, ConcurrentRequestsAreServed)
{
    // One goroutine per connection (§4.3): two overlapping XHRs.
    MemeRig rig;
    net::HttpRequest req;
    req.target = "/api/images";
    int done = 0;
    for (int i = 0; i < 2; i++) {
        // xhr() is synchronous; issue back-to-back instead and confirm
        // the server survives sequential connections.
        auto x = rig.bx->xhr(8080, req);
        EXPECT_EQ(x.err, 0);
        done++;
    }
    EXPECT_EQ(done, 2);
}

TEST(MemeGenerator, DynamicRoutingFallsBackToRemote)
{
    // The §5.1.1 policy: offline -> in-Browsix server; online -> remote.
    // Exercise both paths and check they serve the same list.
    MemeRig rig;
    apps::MemeTemplates native_templates;
    native_templates.images["wonka"] = apps::makeTemplateImage(320, 240, 11);

    net::SimulatedRemoteServer remote(
        &rig.bx->browser().mainLoop(), net::LinkParams::ec2(),
        [&](const net::HttpRequest &req) {
            return apps::handleMemeRequest<int64_t>(native_templates, req);
        });

    net::HttpRequest req;
    req.target = "/api/images";
    // in-Browsix
    auto local = rig.bx->xhr(8080, req);
    ASSERT_EQ(local.err, 0);
    // remote
    bool done = false;
    net::HttpResponse remote_resp;
    remote.request(req, [&](int err, net::HttpResponse r) {
        EXPECT_EQ(err, 0);
        remote_resp = std::move(r);
        done = true;
    });
    ASSERT_TRUE(rig.bx->runUntil([&]() { return done; }, 10000));
    EXPECT_EQ(remote_resp.status, 200);
    std::string rbody(remote_resp.body.begin(), remote_resp.body.end());
    EXPECT_NE(rbody.find("wonka"), std::string::npos);
}

// ---------- terminal ----------

TEST(Terminal, PaperPipelineExample)
{
    Browsix bx;
    bx.rootFs().writeFile("/home/file.txt",
                          std::string("apple\nbanana\napple pie\n"));
    auto r = bx.run("cd /home && cat file.txt | grep apple > apples.txt "
                    "&& cat apples.txt");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "apple\napple pie\n");
}

TEST(Terminal, ScriptWithControlFlowAndSubshells)
{
    Browsix bx;
    bx.rootFs().writeFile(
        "/home/build.sh",
        std::string("#!/bin/sh\n"
                    "mkdir /tmp/workdir\n"
                    "cd /tmp/workdir\n"
                    "echo step1 > log\n"
                    "[ -f log ] && echo have-log\n"
                    "(echo in-subshell)\n"
                    "seq 3 | sort -r | head -n 1\n"));
    auto r = bx.run("/bin/sh /home/build.sh");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_EQ(r.out, "have-log\nin-subshell\n3\n");
}

TEST(Terminal, BackgroundServerThenClient)
{
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    auto r = bx.run("MEME_PORT=8088 /usr/bin/meme-server & true");
    EXPECT_EQ(r.exitCode(), 0);
    ASSERT_TRUE(bx.waitForPort(8088, 10000));
    r = bx.run("curl http://localhost:8088/api/images");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_NE(r.out.find("philosoraptor"), std::string::npos);
    for (int pid : bx.kernel().pids())
        bx.kernel().kill(pid, sys::SIGKILL);
}

TEST(Terminal, EmterpreterBinariesRunFromShell)
{
    Browsix bx;
    auto r = bx.run("hello-em && forktest && primes");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_EQ(r.out, "hello from the emterpreter\n"
                     "hello from child\nhello from parent\n"
                     "303\n");
}

TEST(Terminal, MixedRuntimePipeline)
{
    // A bytecode (Emterpreter) producer piped into a Node consumer: the
    // language-agnostic process model of Table 1.
    Browsix bx;
    auto r = bx.run("primes | wc");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_EQ(r.out, "1 1 4\n");
}

TEST(Terminal, ShellStartupIsolatedPerInvocation)
{
    Browsix bx;
    bx.run("export LEAKY=1");
    auto r = bx.run("env | grep LEAKY | wc");
    EXPECT_EQ(r.out, "0 0 0\n") << "processes do not share environments";
}
