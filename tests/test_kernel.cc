/**
 * @file
 * Kernel tests: pipes (buffering, backpressure, EOF/EPIPE), sockets,
 * process lifecycle (spawn/exit/wait4/zombies/orphans), descriptor
 * inheritance and dup, signals (handlers, defaults, SIGKILL), the two
 * syscall conventions, shebang resolution, and host connections.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/browsix.h"
#include "kernel/latency_histogram.h"
#include "kernel/pipe.h"
#include "kernel/socket.h"
#include "kernel/task_table.h"
#include "tests/test_util.h"

using namespace browsix;
using namespace browsix::kernel;

// ---------- TaskTable (unit) ----------

namespace {

std::unique_ptr<Task>
makeTask(int pid)
{
    auto t = std::make_unique<Task>();
    t->pid = pid;
    return t;
}

} // namespace

TEST(TaskTable, BandedLookupInsertErase)
{
    TaskTable tbl;
    // Pids kBands apart share a band; consecutive pids round-robin.
    const int stride = TaskTable::kBands;
    std::vector<int> pids = {1, 2, stride, stride + 1, 3 * stride + 1};
    for (int pid : pids)
        tbl.insert(makeTask(pid));
    EXPECT_EQ(tbl.size(), pids.size());
    EXPECT_EQ(TaskTable::bandOf(1), TaskTable::bandOf(stride + 1));
    EXPECT_NE(TaskTable::bandOf(1), TaskTable::bandOf(2));
    for (int pid : pids) {
        ASSERT_NE(tbl.find(pid), nullptr) << pid;
        EXPECT_EQ(tbl.find(pid)->pid, pid);
    }
    EXPECT_EQ(tbl.find(33), nullptr);
    EXPECT_EQ(tbl.pids(), (std::vector<int>{1, 2, stride, stride + 1,
                                            3 * stride + 1}))
        << "pids() reports ascending across bands";

    EXPECT_TRUE(tbl.erase(stride + 1));
    EXPECT_FALSE(tbl.erase(stride + 1)) << "second erase is a no-op";
    EXPECT_EQ(tbl.size(), pids.size() - 1);
    EXPECT_EQ(tbl.find(stride + 1), nullptr);
    EXPECT_NE(tbl.find(1), nullptr)
        << "same-band neighbour must survive an erase";

    std::set<int> visited;
    tbl.forEach([&visited](Task &t) { visited.insert(t.pid); });
    EXPECT_EQ(visited, (std::set<int>{1, 2, stride, 3 * stride + 1}));
}

TEST(TaskTable, FreePidHintProbesBandsInO1)
{
    TaskTable tbl;
    const int stride = TaskTable::kBands;
    // Band 1 fully packed for its first four slots: 1, 65, 129, 193.
    for (int i = 0; i < 4; i++)
        tbl.insert(makeTask(1 + i * stride));

    // First probe walks the occupied prefix once and parks the hint past
    // it; the next probe starts there directly.
    EXPECT_EQ(tbl.lowestFreeInBand(1, 1 << 20), 1 + 4 * stride);
    EXPECT_EQ(tbl.freeHint(1), 1 + 4 * stride);
    tbl.insert(makeTask(1 + 4 * stride));
    EXPECT_EQ(tbl.freeHint(1), 1 + 5 * stride)
        << "occupying the hinted slot advances the hint lazily";

    // Erasing below the hint lowers it: the freed pid is reissued first.
    tbl.erase(1 + 2 * stride);
    EXPECT_EQ(tbl.freeHint(1), 1 + 2 * stride);
    EXPECT_EQ(tbl.lowestFreeInBand(1, 1 << 20), 1 + 2 * stride);

    // A returned-but-never-inserted pid stays the hint (no reservation).
    EXPECT_EQ(tbl.lowestFreeInBand(1, 1 << 20), 1 + 2 * stride);

    // Band 0 has no pid 0: its floor is kBands itself.
    EXPECT_EQ(tbl.lowestFreeInBand(0, 1 << 20), stride);

    // A band saturated up to max_pid reports full; erase reopens it.
    const int tiny_max = 2 * stride + 2;
    TaskTable small;
    small.insert(makeTask(2));
    small.insert(makeTask(2 + stride));
    small.insert(makeTask(2 + 2 * stride));
    EXPECT_EQ(small.lowestFreeInBand(2, tiny_max), -1);
    small.erase(2 + stride);
    EXPECT_EQ(small.lowestFreeInBand(2, tiny_max), 2 + stride);
}

TEST(Process, PidHintSurvivesWraparoundCollisions)
{
    // Kernel-level leg of the hint: park the cursor on live pids across
    // the wrap via setNextPid and verify allocation keeps handing out
    // fresh pids without one-at-a-time probing artifacts (duplicates,
    // EAGAIN on a mostly-empty table).
    testutil::addParkProgram("hint-park");
    Browsix bx;
    testutil::stage(bx, "hint-park");
    auto park_one = [&bx]() {
        int got = 0;
        bx.kernel().spawnRoot({"/usr/bin/hint-park"},
                              bx.kernel().defaultEnv, "/", [](int) {},
                              nullptr, nullptr,
                              [&got](int pid) { got = pid; });
        EXPECT_TRUE(bx.runUntil([&got]() { return got != 0; }, 30000));
        return got;
    };
    std::set<int> seen;
    for (int i = 0; i < 4; i++)
        ASSERT_TRUE(seen.insert(park_one()).second);
    int first = *seen.begin();
    // Repeatedly aim the cursor at the same live pid: every allocation
    // must come back unique, and ones after the first in the band jump
    // straight from the hint instead of rescanning the occupied prefix.
    for (int i = 0; i < 8; i++) {
        bx.kernel().setNextPid(first);
        ASSERT_TRUE(seen.insert(park_one()).second)
            << "hint handed out a duplicate pid";
    }
    // Aim at the wrap boundary: the top pid allocates, then the cursor
    // wraps onto the live low pids and the hint skips them too.
    bx.kernel().setNextPid(kernel::Kernel::kMaxPid);
    ASSERT_TRUE(seen.insert(park_one()).second);
    ASSERT_TRUE(seen.insert(park_one()).second);
    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&bx]() { return bx.kernel().taskCount() == 0; }, 30000));
}

// ---------- LatencyHistogram (unit) ----------

TEST(LatencyHistogram, BucketBoundaries)
{
    EXPECT_EQ(LatencyHistogram::bucketFor(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketFor(1), 1u);
    EXPECT_EQ(LatencyHistogram::bucketFor(2), 2u);
    EXPECT_EQ(LatencyHistogram::bucketFor(3), 2u);
    EXPECT_EQ(LatencyHistogram::bucketFor(4), 3u);
    EXPECT_EQ(LatencyHistogram::bucketFor(1023), 10u);
    EXPECT_EQ(LatencyHistogram::bucketFor(1024), 11u);
    EXPECT_EQ(LatencyHistogram::bucketFor(~uint64_t(0)),
              LatencyHistogram::kBuckets - 1)
        << "huge samples land in the top bucket, not out of bounds";
    EXPECT_EQ(LatencyHistogram::bucketCeilingUs(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketCeilingUs(1), 1u);
    EXPECT_EQ(LatencyHistogram::bucketCeilingUs(2), 3u);
    EXPECT_EQ(LatencyHistogram::bucketCeilingUs(10), 1023u);
}

TEST(LatencyHistogram, RecordAndPercentiles)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentileUs(50), 0u) << "empty histogram";
    for (int i = 0; i < 90; i++)
        h.record(1); // bucket 1
    for (int i = 0; i < 10; i++)
        h.record(100); // bucket 7: [64, 127]
    EXPECT_EQ(h.count, 100u);
    EXPECT_EQ(h.maxUs, 100u);
    EXPECT_DOUBLE_EQ(h.meanUs(), 10.9);
    EXPECT_EQ(h.percentileUs(50), 1u);
    EXPECT_EQ(h.percentileUs(90), 1u);
    EXPECT_EQ(h.percentileUs(95), 100u)
        << "p95 reports the bucket ceiling clamped to the observed max";
    EXPECT_EQ(h.percentileUs(99), 100u);
    uint64_t bucket_sum = 0;
    for (uint64_t b : h.buckets)
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, h.count);
}

// ---------- Pipe (unit) ----------

namespace {

bfs::Buffer
toBuf(const std::string &s)
{
    return bfs::Buffer(s.begin(), s.end());
}

} // namespace

TEST(Pipe, WriteThenReadImmediate)
{
    Pipe p;
    bool wrote = false;
    p.write(toBuf("abc"), [&](int err, size_t n) {
        EXPECT_EQ(err, 0);
        EXPECT_EQ(n, 3u);
        wrote = true;
    });
    EXPECT_TRUE(wrote);
    std::string got;
    p.read(10, [&](int err, bfs::BufferPtr data) {
        EXPECT_EQ(err, 0);
        got.assign(data->begin(), data->end());
    });
    EXPECT_EQ(got, "abc");
}

TEST(Pipe, ReadBeforeWriteQueues)
{
    Pipe p;
    std::string got;
    p.read(10, [&](int, bfs::BufferPtr data) {
        got.assign(data->begin(), data->end());
    });
    EXPECT_TRUE(got.empty());
    p.write(toBuf("late"), [](int, size_t) {});
    EXPECT_EQ(got, "late");
}

TEST(Pipe, BackpressureHoldsOversizeWrite)
{
    Pipe p(8);
    bool first_done = false, second_done = false;
    p.write(toBuf("12345678"), [&](int, size_t) { first_done = true; });
    EXPECT_TRUE(first_done);
    p.write(toBuf("ABCD"), [&](int err, size_t n) {
        EXPECT_EQ(err, 0);
        EXPECT_EQ(n, 4u);
        second_done = true;
    });
    EXPECT_FALSE(second_done) << "buffer full: write must stall";
    EXPECT_EQ(p.backpressureStalls(), 1u);
    std::string got;
    p.read(8, [&](int, bfs::BufferPtr d) {
        got.assign(d->begin(), d->end());
    });
    EXPECT_EQ(got, "12345678");
    EXPECT_TRUE(second_done) << "drain completes the stalled write";
    p.read(8, [&](int, bfs::BufferPtr d) {
        got.assign(d->begin(), d->end());
    });
    EXPECT_EQ(got, "ABCD");
}

TEST(Pipe, EofAfterWriterClose)
{
    Pipe p;
    p.write(toBuf("tail"), [](int, size_t) {});
    p.closeWriter();
    std::string got = "x";
    p.read(10, [&](int err, bfs::BufferPtr d) {
        EXPECT_EQ(err, 0);
        got.assign(d->begin(), d->end());
    });
    EXPECT_EQ(got, "tail") << "buffered data is still readable";
    bool eof = false;
    p.read(10, [&](int err, bfs::BufferPtr d) {
        EXPECT_EQ(err, 0);
        eof = d->empty();
    });
    EXPECT_TRUE(eof);
}

TEST(Pipe, WriterCloseWakesBlockedReader)
{
    Pipe p;
    bool eof = false;
    p.read(10, [&](int err, bfs::BufferPtr d) {
        EXPECT_EQ(err, 0);
        eof = d->empty();
    });
    p.closeWriter();
    EXPECT_TRUE(eof);
}

TEST(Pipe, EpipeOnWriteAfterReaderClose)
{
    Pipe p;
    p.closeReader();
    int err = 0;
    p.write(toBuf("x"), [&](int e, size_t) { err = e; });
    EXPECT_EQ(err, EPIPE);
}

TEST(Pipe, ReaderCloseFailsStalledWrites)
{
    Pipe p(4);
    int err = 0;
    p.write(toBuf("123456"), [&](int e, size_t) { err = e; });
    EXPECT_EQ(err, 0) << "still stalled";
    p.closeReader();
    EXPECT_EQ(err, EPIPE);
}

TEST(Pipe, ZeroLengthWriteCompletesWithoutWakingReader)
{
    Pipe p;
    bool reader_fired = false;
    p.read(10, [&](int, bfs::BufferPtr) { reader_fired = true; });
    int err = -1;
    size_t n = 99;
    p.write(bfs::Buffer{}, [&](int e, size_t written) {
        err = e;
        n = written;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 0u);
    EXPECT_FALSE(reader_fired)
        << "POSIX: write(fd, buf, 0) transfers nothing; a blocked reader "
           "must keep waiting for real data";
    p.write(toBuf("go"), [](int, size_t) {});
    EXPECT_TRUE(reader_fired);
}

TEST(Pipe, ZeroLengthWriteAfterReaderCloseStillEpipe)
{
    Pipe p;
    p.closeReader();
    int err = -1;
    p.write(bfs::Buffer{}, [&](int e, size_t) { err = e; });
    EXPECT_EQ(err, EPIPE)
        << "the reader-closed check precedes the empty-write shortcut";
}

TEST(Pipe, ReadAfterBothEndsClosed)
{
    Pipe p;
    p.write(toBuf("last"), [](int, size_t) {});
    p.closeWriter();
    p.closeReader();
    // Buffered data is still drainable through the raw pipe...
    std::string got;
    p.read(10, [&](int err, bfs::BufferPtr d) {
        EXPECT_EQ(err, 0);
        got.assign(d->begin(), d->end());
    });
    EXPECT_EQ(got, "last");
    // ...and every read after the drain is a clean EOF, repeatedly.
    for (int i = 0; i < 3; i++) {
        bool eof = false;
        p.read(10, [&](int err, bfs::BufferPtr d) {
            EXPECT_EQ(err, 0);
            eof = d->empty();
        });
        EXPECT_TRUE(eof) << "read " << i << " after both ends closed";
    }
}

TEST(Pipe, CapacityOneBackpressureInterleaving)
{
    // A 1-byte pipe forces the tightest possible write/read interleave:
    // every byte of a multi-byte write round-trips through the stall
    // queue before the completion callback may fire.
    Pipe p(1);
    int werr = -1;
    size_t wtotal = 0;
    bool wdone = false;
    p.write(toBuf("abc"), [&](int e, size_t n) {
        werr = e;
        wtotal = n;
        wdone = true;
    });
    EXPECT_FALSE(wdone) << "only 1 of 3 bytes fits";
    EXPECT_EQ(p.backpressureStalls(), 1u);
    std::string got;
    for (int i = 0; i < 3; i++) {
        EXPECT_EQ(p.buffered(), 1u) << "refilled to capacity after drain "
                                    << i;
        p.read(1, [&](int err, bfs::BufferPtr d) {
            EXPECT_EQ(err, 0);
            got.append(d->begin(), d->end());
        });
        // The write completes exactly when its final byte is accepted
        // into the buffer — that happens on draining byte 2, which frees
        // space for byte 3.
        EXPECT_EQ(wdone, i >= 1) << "after drain " << i;
    }
    EXPECT_EQ(got, "abc") << "bytes arrive in write order";
    EXPECT_EQ(werr, 0);
    EXPECT_EQ(wtotal, 3u) << "blocking write reports the full length";
    EXPECT_EQ(p.bytesTransferred(), 3u);
}

TEST(Pipe, EpipeDeliveryOrderIsFifo)
{
    // Several writers stalled behind a full buffer: when the reader goes
    // away, their failures must be delivered in the order the writes were
    // issued, and a subsequent write fails inline — EPIPE is not sticky
    // only for the first victim.
    Pipe p(2);
    std::vector<int> order;
    int err1 = -1, err2 = -1, err3 = -1;
    p.write(toBuf("xx"), [&](int e, size_t) {
        EXPECT_EQ(e, 0);
        order.push_back(0);
    });
    p.write(toBuf("aa"), [&](int e, size_t) {
        err1 = e;
        order.push_back(1);
    });
    p.write(toBuf("bb"), [&](int e, size_t) {
        err2 = e;
        order.push_back(2);
    });
    EXPECT_EQ(p.backpressureStalls(), 2u);
    p.closeReader();
    EXPECT_EQ(err1, EPIPE);
    EXPECT_EQ(err2, EPIPE);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}))
        << "stalled writes fail oldest-first";
    p.write(toBuf("cc"), [&](int e, size_t) {
        err3 = e;
        order.push_back(3);
    });
    EXPECT_EQ(err3, EPIPE) << "writes after reader close fail inline";
    EXPECT_EQ(order.back(), 3);
}

TEST(Pipe, ReentrantWriteCompletionSurvivesWaiterChurn)
{
    // Regression (PR 6): pump() used to hold a reference to the front
    // write waiter across its completion callback; a callback that
    // reenters write() grows the waiter deque under pump's feet and the
    // old reference could dangle (ASan caught it through exactly this
    // shape). Chained completions must stay safe and lose no bytes.
    Pipe p(4);
    size_t written = 0, completions = 0;
    std::function<void(int, size_t)> chain = [&](int e, size_t n) {
        ASSERT_EQ(e, 0);
        written += n;
        completions++;
        if (completions <= 6) {
            // Each finished write immediately parks two more oversize
            // writes (6 > capacity 4, so they can never complete
            // inline): the deque grows mid-pump, every time.
            p.write(toBuf("123456"), chain);
            p.write(toBuf("abcdef"), chain);
        }
    };
    p.write(toBuf("seed-data!"), chain); // 10 bytes: parks immediately
    size_t read_bytes = 0;
    int guard = 0;
    while ((p.buffered() > 0 || completions < 13) && guard++ < 1000) {
        p.read(3, [&](int err, bfs::BufferPtr d) {
            ASSERT_EQ(err, 0);
            read_bytes += d->size();
        });
    }
    EXPECT_EQ(completions, 13u) << "1 seed + 6 rounds x 2 chained";
    EXPECT_EQ(written, 82u) << "10 + 12 x 6 bytes, none lost";
    EXPECT_EQ(read_bytes, 82u);
    EXPECT_EQ(p.bytesTransferred(), 82u);
    EXPECT_EQ(p.backpressureStalls(), 13u)
        << "every oversize write must round-trip the stall queue";
}

TEST(Pipe, SpanToSpanTransferSkipsTheDeque)
{
    // The zero-copy leg of the deferred-CQE protocol: a parked
    // span-shaped reader (its window pinned by a ring READ) is served
    // straight from a span-shaped writer's window — one memcpy, no
    // transit through the pipe's own deque.
    Pipe p;
    uint8_t dst[8] = {0};
    int rerr = -1;
    size_t rn = 99;
    p.readInto(bfs::ByteSpan{dst, sizeof(dst)}, [&](int e, size_t n) {
        rerr = e;
        rn = n;
    });
    EXPECT_EQ(rn, 99u) << "empty pipe: the window parks";
    const uint8_t src[8] = {'z', 'e', 'r', 'o', 'c', 'o', 'p', 'y'};
    int werr = -1;
    size_t wn = 0;
    p.writeFrom(bfs::ConstByteSpan{src, sizeof(src)}, [&](int e, size_t n) {
        werr = e;
        wn = n;
    });
    EXPECT_EQ(rerr, 0);
    EXPECT_EQ(rn, 8u);
    EXPECT_EQ(werr, 0);
    EXPECT_EQ(wn, 8u);
    EXPECT_EQ(std::memcmp(dst, src, 8), 0) << "byte-exact, in place";
    EXPECT_EQ(p.spanToSpanBytes(), 8u) << "counted as window-to-window";
    EXPECT_EQ(p.buffered(), 0u) << "nothing transited the deque";
    EXPECT_EQ(p.bytesTransferred(), 8u);
}

TEST(PipeEnd, RefcountedCloseDrivesEof)
{
    auto p = std::make_shared<Pipe>();
    auto w1 = std::make_shared<PipeEndFile>(p, false);
    w1->ref(); // two descriptors share the write end (dup/inheritance)
    w1->unref();
    EXPECT_FALSE(p->writerClosed()) << "one reference remains";
    w1->unref();
    EXPECT_TRUE(p->writerClosed()) << "last close ends the stream";
}

// ---------- Socket (unit) ----------

TEST(Socket, AcceptBeforeConnectQueuesWaiter)
{
    SocketFile listener;
    EXPECT_EQ(listener.bind(100), 0);
    EXPECT_EQ(listener.listen(4), 0);
    SocketFilePtr got;
    listener.accept([&](int err, SocketFilePtr peer) {
        EXPECT_EQ(err, 0);
        got = peer;
    });
    EXPECT_EQ(got, nullptr);
    auto peer = std::make_shared<SocketFile>();
    peer->establish(std::make_shared<Pipe>(), std::make_shared<Pipe>(),
                    100, 5000);
    EXPECT_EQ(listener.enqueueConnection(peer), 0);
    EXPECT_EQ(got, peer);
}

TEST(Socket, BacklogLimitRefuses)
{
    SocketFile listener;
    listener.bind(100);
    listener.listen(1);
    auto mk = []() {
        auto s = std::make_shared<SocketFile>();
        s->establish(std::make_shared<Pipe>(), std::make_shared<Pipe>(),
                     100, 1);
        return s;
    };
    EXPECT_EQ(listener.enqueueConnection(mk()), 0);
    EXPECT_EQ(listener.enqueueConnection(mk()), ECONNREFUSED);
}

TEST(Socket, ListenerCloseCollapsesNeverAcceptedPeers)
{
    // Regression (PR 6): closing a listening socket dropped its pending
    // (never-accepted) connections without collapsing their pipe ends —
    // a client parked reading its side of the rendezvous hung forever.
    // The close must EOF the client's reads and EPIPE its writes.
    auto listener = std::make_shared<SocketFile>();
    EXPECT_EQ(listener->bind(100), 0);
    EXPECT_EQ(listener->listen(4), 0);
    auto to_server = std::make_shared<Pipe>();
    auto to_client = std::make_shared<Pipe>();
    auto server_end = std::make_shared<SocketFile>();
    server_end->establish(to_server, to_client, 100, 5000);
    EXPECT_EQ(listener->enqueueConnection(server_end), 0);
    auto client = std::make_shared<SocketFile>();
    client->establish(to_client, to_server, 5000, 100);
    bool eof = false;
    client->read(16, [&](int err, bfs::BufferPtr d) {
        EXPECT_EQ(err, 0);
        eof = d && d->empty();
    });
    EXPECT_FALSE(eof) << "nothing written yet: the read parks";
    listener->unref(); // last close; the connection was never accepted
    EXPECT_TRUE(eof)
        << "collapse must wake the parked reader with a clean EOF";
    int werr = -1;
    client->write(toBuf("x"), [&](int e, size_t) { werr = e; });
    EXPECT_EQ(werr, EPIPE) << "the far side is gone for good";
}

TEST(Socket, IoRequiresConnection)
{
    SocketFile s;
    int err = 0;
    s.read(10, [&](int e, bfs::BufferPtr) { err = e; });
    EXPECT_EQ(err, ENOTCONN);
    s.write(toBuf("x"), [&](int e, size_t) { err = e; });
    EXPECT_EQ(err, ENOTCONN);
}

// ---------- process lifecycle (full stack) ----------

TEST(Process, ExitCodePropagates)
{
    Browsix bx;
    EXPECT_EQ(bx.run("true").exitCode(), 0);
    EXPECT_EQ(bx.run("false").exitCode(), 1);
    EXPECT_EQ(bx.run("exit 42").exitCode(), 42);
}

TEST(Process, SpawnMissingExecutableFails)
{
    Browsix bx;
    auto r = bx.runArgv({"/no/such/program"});
    EXPECT_FALSE(r.ok) << "spawn itself fails; nothing ran";
    EXPECT_EQ(r.exitCode(), 127);
    // Through the shell, the same mistake surfaces as exit code 127.
    EXPECT_EQ(bx.run("/no/such/program").exitCode(), 127);
}

TEST(Process, TasksAreReapedAfterExit)
{
    Browsix bx;
    bx.run("true");
    bx.run("true");
    EXPECT_EQ(bx.kernel().taskCount(), 0u)
        << "no zombies after root tasks exit";
}

TEST(Process, GetPidAndPpidDiffer)
{
    Browsix bx;
    // $$ is the shell's pid; a child's getppid (via wait-status plumbing)
    // is covered by the shell tests; here check pids are allocated.
    auto r1 = bx.run("echo $$");
    auto r2 = bx.run("echo $$");
    EXPECT_NE(r1.out, r2.out) << "fresh pid per process";
}

TEST(Process, WaitStatusEncodesSignalDeath)
{
    Browsix bx;
    bool exited = false;
    int status = 0;
    int child = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/meme-server"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        nullptr, nullptr, [&](int pid) { child = pid; });
    ASSERT_TRUE(bx.runUntil([&]() { return child > 0; }, 5000));
    // The server runs forever; kill it.
    bx.kernel().kill(child, sys::SIGKILL);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 5000));
    EXPECT_FALSE(sys::wifExited(status));
    EXPECT_EQ(sys::wtermsig(status), sys::SIGKILL);
}

TEST(Process, KillEsrchForUnknownPid)
{
    Browsix bx;
    EXPECT_EQ(bx.kernel().kill(4242, sys::SIGTERM), ESRCH);
}

TEST(Process, ShebangChainResolvesInterpreter)
{
    Browsix bx;
    // /usr/bin/wc is "#!/usr/bin/node" + marker: two-level resolution.
    auto r = bx.run("echo abc | wc");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "1 1 4\n");
}

TEST(Process, ShebangWithEnvResolves)
{
    Browsix bx;
    bx.rootFs().writeFile("/usr/bin/viaenv",
                          std::string("#!/usr/bin/env node\n"
                                      "//:node-util:echo\n"));
    auto r = bx.runArgv({"/usr/bin/viaenv", "worked"});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "worked\n");
}

TEST(Process, ExecveReplacesImage)
{
    Browsix bx;
    // make's fork children exec /bin/sh; a direct observation: run make
    // with a rule whose command's output proves sh ran in the child.
    bx.rootFs().writeFile("/home/Makefile",
                          std::string("out:\n\techo from-exec > out\n"));
    auto r = bx.run("cd /home && /usr/bin/make");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    bfs::Buffer data;
    ASSERT_EQ(bx.fs().readFileSync("/home/out", data), 0);
    EXPECT_EQ(std::string(data.begin(), data.end()), "from-exec\n");
}

TEST(Process, OrphansAreReparentedAndReaped)
{
    Browsix bx;
    // Parent exits immediately, leaving a background sleep-ish child
    // (meme-server). The child must not leak as a zombie forever.
    auto r = bx.run("MEME_PORT=9911 /usr/bin/meme-server & true");
    EXPECT_EQ(r.exitCode(), 0);
    bx.waitForPort(9911, 5000);
    // find the orphan and kill it
    std::vector<int> pids = bx.kernel().pids();
    for (int pid : pids)
        bx.kernel().kill(pid, sys::SIGKILL);
    bx.runUntil([&]() { return bx.kernel().taskCount() == 0; }, 5000);
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

// ---------- signals ----------

TEST(Signals, DefaultTermSignalKills)
{
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "9912"}}, "/",
                          [&](int st) {
                              status = st;
                              exited = true;
                          },
                          nullptr, nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.waitForPort(9912, 5000));
    bx.kernel().kill(pid, sys::SIGTERM);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 5000));
    EXPECT_EQ(sys::wtermsig(status), sys::SIGTERM);
}

TEST(Signals, DeliveredCountIncrements)
{
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    int pid = 0;
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "9913"}}, "/", [](int) {},
                          nullptr, nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.waitForPort(9913, 5000));
    uint64_t before = bx.kernel().stats().signalsDelivered;
    bx.kernel().kill(pid, sys::SIGKILL);
    EXPECT_EQ(bx.kernel().stats().signalsDelivered, before + 1);
    bx.runUntil([&]() { return bx.kernel().taskCount() == 0; }, 5000);
}

TEST(Signals, EpipeWriteDeliversSigpipe)
{
    // POSIX: a write that fails with EPIPE also raises SIGPIPE. The
    // kernel write path must route the failure through the signal
    // machinery — under the default disposition that kills the writer.
    testutil::addProgram(
        "sigpipe-default",
        [](rt::EmEnv &env) -> int {
            int fds[2];
            if (env.pipe2(fds) != 0)
                return 1;
            env.close(fds[0]);
            env.write(fds[1], std::string("doomed"));
            return 0; // unreachable: SIGPIPE terminates first
        },
        apps::RuntimeKind::EmRing);
    Browsix bx;
    testutil::stage(bx, "sigpipe-default");
    auto r = bx.runArgv({"/usr/bin/sigpipe-default"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(sys::wtermsig(r.status), sys::SIGPIPE)
        << "default disposition: the EPIPE write kills the process";
}

TEST(Signals, IgnoredSigpipeLeavesPlainEpipe)
{
    // With SIGPIPE ignored (how every networked program survives a peer
    // hangup), the same write must come back as a plain -EPIPE return.
    testutil::addProgram(
        "sigpipe-ignored",
        [](rt::EmEnv &env) -> int {
            rt::blockingCall(
                env.client(), "sigaction",
                {jsvm::Value(sys::SIGPIPE),
                 jsvm::Value(
                     static_cast<int>(sys::SigDisposition::Ignore))});
            int fds[2];
            if (env.pipe2(fds) != 0)
                return 1;
            env.close(fds[0]);
            if (env.write(fds[1], std::string("quiet")) != -EPIPE)
                return 2;
            return 0;
        },
        apps::RuntimeKind::EmRing);
    Browsix bx;
    testutil::stage(bx, "sigpipe-ignored");
    auto r = bx.runArgv({"/usr/bin/sigpipe-ignored"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0)
        << "Ignore disposition: EPIPE only, no termination";
}

// ---------- sockets (full stack) ----------

TEST(Sockets, ListenNotificationFires)
{
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    bool notified = false;
    bx.kernel().onPortListen(8080, [&]() { notified = true; });
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8080"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    ASSERT_TRUE(bx.runUntil([&]() { return notified; }, 5000));
    EXPECT_TRUE(bx.kernel().portListening(8080));
}

TEST(Sockets, ConnectToUnboundPortRefused)
{
    Browsix bx;
    int err = 0;
    bool done = false;
    bx.kernel().connect(
        12345, nullptr, nullptr,
        [&](int e, std::shared_ptr<kernel::Kernel::HostConn>) {
            err = e;
            done = true;
        });
    bx.runUntil([&]() { return done; }, 2000);
    EXPECT_EQ(err, ECONNREFUSED);
}

TEST(Sockets, HostToServerRoundtrip)
{
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8080"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    ASSERT_TRUE(bx.waitForPort(8080, 5000));
    net::HttpRequest req;
    req.target = "/api/images";
    auto x = bx.xhr(8080, req);
    EXPECT_EQ(x.err, 0);
    EXPECT_EQ(x.response.status, 200);
    std::string body(x.response.body.begin(), x.response.body.end());
    EXPECT_NE(body.find("doge"), std::string::npos);
}

TEST(Sockets, InBrowsixCurlTalksToServer)
{
    // curl (Node, socket client) -> meme-server (Go, socket server):
    // processes talking over kernel sockets, §3.5.
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8080"}}, "/", [](int) {},
                          nullptr, nullptr, [](int) {});
    ASSERT_TRUE(bx.waitForPort(8080, 5000));
    auto r = bx.run("curl http://localhost:8080/api/images");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_NE(r.out.find("wonka"), std::string::npos);
}

// ---------- descriptor semantics ----------

TEST(Fds, RedirectionWritesFile)
{
    Browsix bx;
    auto r = bx.run("echo data > /tmp/out && cat /tmp/out");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "data\n");
}

TEST(Fds, AppendRedirection)
{
    Browsix bx;
    auto r = bx.run("echo a > /tmp/f && echo b >> /tmp/f && cat /tmp/f");
    EXPECT_EQ(r.out, "a\nb\n");
}

TEST(Fds, StderrRedirectionAndDup)
{
    Browsix bx;
    auto r = bx.run("ls /missing 2> /tmp/err; wc /tmp/err");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_NE(r.out, "0 0 0 /tmp/err\n") << "stderr must have been captured";
    r = bx.run("ls /missing 2>&1 | grep -v '^$' | wc");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_NE(r.out.substr(0, 2), "0 ");
}

TEST(Fds, InputRedirection)
{
    Browsix bx;
    bx.rootFs().writeFile("/tmp/in", std::string("x\ny\n"));
    auto r = bx.run("wc < /tmp/in");
    EXPECT_EQ(r.out, "2 2 4\n");
}

// ---------- syscall conventions ----------

TEST(Syscalls, SyncAndAsyncBothWork)
{
    // pdflatex-sync uses the synchronous convention; node utilities the
    // asynchronous one. Run both against the same kernel.
    BootConfig cfg;
    cfg.texlive = true;
    cfg.pdflatexSync = true;
    Browsix bx(cfg);
    uint64_t sync0 = bx.kernel().stats().syncSyscallCount;
    auto r = bx.run("cd /home && /usr/bin/pdflatex main.tex");
    EXPECT_EQ(r.exitCode(), 0) << r.out;
    EXPECT_GT(bx.kernel().stats().syncSyscallCount, sync0)
        << "sync-compiled pdflatex must use the shared-memory convention";
    uint64_t async0 = bx.kernel().stats().asyncSyscallCount;
    bx.run("echo hi");
    EXPECT_GT(bx.kernel().stats().asyncSyscallCount, async0);
}

TEST(Syscalls, EmterpreterVariantUsesAsyncOnly)
{
    BootConfig cfg;
    cfg.texlive = true;
    cfg.pdflatexSync = false;
    Browsix bx(cfg);
    uint64_t sync0 = bx.kernel().stats().syncSyscallCount;
    // Generous cap: the Emterpreter VM is ~10x slower under ASan/TSan,
    // and runUntil returns the moment the process exits anyway.
    auto r = bx.run("cd /home && /usr/bin/pdflatex main.tex", 600000);
    EXPECT_EQ(r.exitCode(), 0) << r.out;
    EXPECT_EQ(bx.kernel().stats().syncSyscallCount, sync0);
}

TEST(Syscalls, UnknownSyscallIsEnosys)
{
    // Covered indirectly: fork from a sync-mode program returns ENOSYS.
    // (See EmscriptenModes.ForkWithoutEmterpreterFails in test_runtime.)
    SUCCEED();
}

// ---------- cwd ----------

TEST(Cwd, ChdirAffectsRelativePaths)
{
    Browsix bx;
    bx.rootFs().mkdirAll("/work/sub");
    bx.rootFs().writeFile("/work/sub/f", std::string("found"));
    auto r = bx.run("cd /work/sub && cat f && pwd");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "found/work/sub\n");
}

TEST(Cwd, SpawnInheritsCwd)
{
    Browsix bx;
    bx.rootFs().mkdirAll("/work");
    bx.rootFs().writeFile("/work/here", std::string("yes\n"));
    auto r = bx.run("cd /work && cat here");
    EXPECT_EQ(r.out, "yes\n");
}

// ---------- read-path correctness (zero-copy PR) ----------

namespace {

/**
 * A hostile backend whose pread hands back more bytes than requested.
 * The kernel must clamp to the caller-supplied length — a guest buffer
 * may never be overrun by a misbehaving (or malicious) backend.
 */
class OverReturningFs : public bfs::InMemBackend
{
  public:
    void
    open(const std::string &path, int oflags, uint32_t mode,
         bfs::OpenCb cb) override
    {
        bfs::InMemBackend::open(
            path, oflags, mode, [cb](int err, bfs::OpenFilePtr f) {
                cb(err, err ? nullptr
                            : std::make_shared<Wrap>(std::move(f)));
            });
    }

  private:
    struct Wrap : bfs::OpenFile
    {
        explicit Wrap(bfs::OpenFilePtr f) : inner(std::move(f)) {}

        void
        pread(uint64_t off, size_t len, bfs::DataCb cb) override
        {
            inner->pread(off, len * 2 + 32, std::move(cb)); // over-return
        }
        void
        preadInto(uint64_t off, bfs::ByteSpan dst, bfs::SizeCb cb) override
        {
            // Fill only the window but *lie* about the count: the kernel
            // must clamp what it reports to the guest.
            inner->preadInto(off, dst, [cb](int err, size_t n) {
                cb(err, err ? n : n + 1000);
            });
        }
        void
        pwrite(uint64_t off, const uint8_t *d, size_t n,
               bfs::SizeCb cb) override
        {
            inner->pwrite(off, d, n, std::move(cb));
        }
        void fstat(bfs::StatCb cb) override { inner->fstat(std::move(cb)); }
        void
        ftruncate(uint64_t s, bfs::ErrCb cb) override
        {
            inner->ftruncate(s, std::move(cb));
        }

        bfs::OpenFilePtr inner;
    };
};

} // namespace

TEST(Syscalls, ReadlinkTruncatesPosixStyle)
{
    // readlink(2) silently truncates to bufsiz (no NUL, no error) and
    // returns the byte count; ERANGE stays getcwd's contract.
    testutil::addProgram(
        "readlink-trunc",
        [](rt::EmEnv &env) -> int {
            const std::string target = "/a/very/long/target";
            if (env.symlink(target, "/tmp/lnk") != 0)
                return 1;
            rt::SyncSyscalls *sync = env.syncCalls();
            sync->resetScratch();
            int32_t p = static_cast<int32_t>(sync->pushString("/tmp/lnk"));
            uint32_t buf = sync->alloc(32);
            std::memset(sync->heapData() + buf, '#', 32);

            // Truncating read: 4 of 19 bytes, no ERANGE, no NUL.
            int64_t r = sync->call(
                sys::READLINK,
                {p, static_cast<int32_t>(buf), 4, 0, 0, 0});
            if (r != 4)
                return 2;
            if (std::string(reinterpret_cast<char *>(sync->heapData()) +
                                buf, 4) != "/a/v")
                return 3;
            if (sync->heapData()[buf + 4] != '#')
                return 4; // nothing past bufsiz may be written

            // Roomy read: the whole target, length returned.
            r = sync->call(sys::READLINK,
                           {p, static_cast<int32_t>(buf), 32, 0, 0, 0});
            if (r != static_cast<int64_t>(target.size()))
                return 5;
            if (std::string(reinterpret_cast<char *>(sync->heapData()) +
                                buf,
                            target.size()) != target)
                return 6;

            // POSIX: bufsiz <= 0 is EINVAL.
            r = sync->call(sys::READLINK,
                           {p, static_cast<int32_t>(buf), 0, 0, 0, 0});
            if (r != -EINVAL)
                return 7;

            // getcwd keeps ERANGE when the buffer is too small (cwd "/"
            // needs 2 bytes with its NUL; offer 1).
            uint32_t cb = sync->alloc(4);
            r = sync->call(sys::GETCWD,
                           {static_cast<int32_t>(cb), 1, 0, 0, 0, 0});
            if (r != -ERANGE)
                return 8;
            return 0;
        },
        apps::RuntimeKind::EmSync);
    Browsix bx;
    testutil::stage(bx, "readlink-trunc");
    auto r = bx.runArgv({"/usr/bin/readlink-trunc"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(Syscalls, ShortGuestBufferIsNeverOverrun)
{
    // read and pread against the over-returning backend: the completion
    // count and the bytes written must both be clamped to the caller's
    // length argument, leaving sentinel bytes beyond the window intact.
    testutil::addProgram(
        "clamp-read",
        [](rt::EmEnv &env) -> int {
            int fd = env.open("/evil/f", 0);
            if (fd < 0)
                return 1;
            rt::SyncSyscalls *sync = env.syncCalls();
            sync->resetScratch();
            uint32_t buf = sync->alloc(16);
            std::memset(sync->heapData() + buf, '#', 16);

            int64_t r = sync->call(
                sys::PREAD,
                {fd, static_cast<int32_t>(buf), 8, 0, 0, 0});
            if (r != 8)
                return 2; // count must be clamped to len
            if (std::string(reinterpret_cast<char *>(sync->heapData()) +
                                buf, 8) != "ABCDEFGH")
                return 3;
            for (int i = 8; i < 16; i++) {
                if (sync->heapData()[buf + i] != '#')
                    return 4; // guest memory past len was written
            }

            std::memset(sync->heapData() + buf, '#', 16);
            r = sync->call(sys::READ,
                           {fd, static_cast<int32_t>(buf), 8, 0, 0, 0});
            if (r != 8)
                return 5;
            for (int i = 8; i < 16; i++) {
                if (sync->heapData()[buf + i] != '#')
                    return 6;
            }
            env.close(fd);
            return 0;
        },
        apps::RuntimeKind::EmSync);
    Browsix bx;
    auto evil = std::make_shared<OverReturningFs>();
    evil->writeFile("/f", std::string("ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                      "0123456789abcdefghijklmnop"));
    bx.fs().mount("/evil", evil);
    testutil::stage(bx, "clamp-read");
    auto r = bx.runArgv({"/usr/bin/clamp-read"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
}

namespace {

/** A backend whose writes fail past byte 8 — drives the vectored
 * partial-write short-count semantics. */
class FailingTailWriteFs : public bfs::InMemBackend
{
  public:
    void
    open(const std::string &path, int oflags, uint32_t mode,
         bfs::OpenCb cb) override
    {
        bfs::InMemBackend::open(
            path, oflags, mode, [cb](int err, bfs::OpenFilePtr f) {
                cb(err, err ? nullptr
                            : std::make_shared<Wrap>(std::move(f)));
            });
    }

  private:
    struct Wrap : bfs::OpenFile
    {
        explicit Wrap(bfs::OpenFilePtr f) : inner(std::move(f)) {}

        void
        pread(uint64_t off, size_t len, bfs::DataCb cb) override
        {
            inner->pread(off, len, std::move(cb));
        }
        void
        pwrite(uint64_t off, const uint8_t *d, size_t n,
               bfs::SizeCb cb) override
        {
            // pwriteFrom's default routes here, so both write paths hit
            // the fault injection: bytes [0, 8) succeed, a write landing
            // at or past 8 fails, one straddling it short-writes.
            if (off >= 8) {
                cb(EIO, 0);
                return;
            }
            size_t allowed = n;
            if (off + n > 8)
                allowed = static_cast<size_t>(8 - off);
            inner->pwrite(off, d, allowed, std::move(cb));
        }
        void fstat(bfs::StatCb cb) override { inner->fstat(std::move(cb)); }
        void
        ftruncate(uint64_t s, bfs::ErrCb cb) override
        {
            inner->ftruncate(s, std::move(cb));
        }

        bfs::OpenFilePtr inner;
    };
};

} // namespace

TEST(Syscalls, VectoredIoShortCountsAndDegenerateIovs)
{
    // The sync-convention legs of readv/writev/preadv/pwritev: short
    // counts at EOF, zero-length iovs, iovcnt bounds, out-of-heap iovs,
    // and error-after-partial-progress reporting the bytes moved.
    testutil::addProgram(
        "vectored-sync",
        [](rt::EmEnv &env) -> int {
            rt::SyncSyscalls *sync = env.syncCalls();
            int fd = env.open("/tmp/v.txt",
                              bfs::flags::CREAT | bfs::flags::RDWR);
            if (fd < 0)
                return 1;

            // writev of three fragments, the middle one zero-length.
            sync->resetScratch();
            uint32_t pa = sync->alloc(8);
            std::memcpy(sync->heapData() + pa, "0123", 4);
            uint32_t pz = sync->alloc(8); // zero-length iov's pointer
            uint32_t pb = sync->alloc(8);
            std::memcpy(sync->heapData() + pb, "456789", 6);
            sys::IoVec iovs[3] = {
                {static_cast<int32_t>(pa), 4},
                {static_cast<int32_t>(pz), 0},
                {static_cast<int32_t>(pb), 6}};
            uint32_t arr = sync->alloc(sizeof(iovs));
            std::memcpy(sync->heapData() + arr, iovs, sizeof(iovs));
            int64_t r = sync->call(
                sys::WRITEV,
                {fd, static_cast<int32_t>(arr), 3, 0, 0, 0});
            if (r != 10)
                return 2;

            // readv into two non-adjacent 8-byte windows: 10 bytes of
            // file fill the first fully and the second halfway; the
            // sentinel tail must stay untouched.
            sync->resetScratch();
            uint32_t r1 = sync->alloc(8);
            sync->alloc(16); // gap defeats contiguous-run merging
            uint32_t r2 = sync->alloc(8);
            std::memset(sync->heapData() + r1, '#', 8);
            std::memset(sync->heapData() + r2, '#', 8);
            sys::IoVec riovs[2] = {{static_cast<int32_t>(r1), 8},
                                   {static_cast<int32_t>(r2), 8}};
            arr = sync->alloc(sizeof(riovs));
            std::memcpy(sync->heapData() + arr, riovs, sizeof(riovs));
            r = sync->call(sys::PREADV,
                           {fd, static_cast<int32_t>(arr), 2, 0, 0, 0});
            if (r != 10)
                return 3;
            if (std::memcmp(sync->heapData() + r1, "01234567", 8) != 0)
                return 4;
            if (std::memcmp(sync->heapData() + r2, "89", 2) != 0)
                return 5;
            for (int i = 2; i < 8; i++) {
                if (sync->heapData()[r2 + i] != '#')
                    return 6; // short run wrote past its count
            }

            // preadv entirely past EOF: 0, not an error.
            r = sync->call(sys::PREADV,
                           {fd, static_cast<int32_t>(arr), 2, 100, 0, 0});
            if (r != 0)
                return 7;

            // Degenerate counts: 0 and > IOV_MAX are EINVAL.
            r = sync->call(sys::WRITEV,
                           {fd, static_cast<int32_t>(arr), 0, 0, 0, 0});
            if (r != -EINVAL)
                return 8;
            r = sync->call(
                sys::WRITEV,
                {fd, static_cast<int32_t>(arr), sys::kIovMax + 1, 0, 0, 0});
            if (r != -EINVAL)
                return 9;

            // Out-of-heap: the array itself, then an entry's span.
            int32_t heap_len = static_cast<int32_t>(sync->heapSize());
            r = sync->call(sys::WRITEV, {fd, heap_len, 2, 0, 0, 0});
            if (r != -EFAULT)
                return 10;
            sys::IoVec bad[2] = {{static_cast<int32_t>(pa), 4},
                                 {heap_len - 2, 16}};
            arr = sync->alloc(sizeof(bad));
            std::memcpy(sync->heapData() + arr, bad, sizeof(bad));
            r = sync->call(sys::WRITEV,
                           {fd, static_cast<int32_t>(arr), 2, 0, 0, 0});
            if (r != -EFAULT)
                return 11;

            // Scalar sync write now shares the window rules: a bogus
            // source pointer is EFAULT, not a silent clamp.
            r = sync->call(sys::WRITE, {fd, heap_len, 8, 0, 0, 0});
            if (r != -EFAULT)
                return 12;
            // Negative offsets are EINVAL before any uint64 cast can
            // wrap backend arithmetic (pwrite and pread alike).
            r = sync->call(sys::PWRITE,
                           {fd, static_cast<int32_t>(pa), 4, -1, 0, 0});
            if (r != -EINVAL)
                return 16;
            r = sync->call(sys::PREAD,
                           {fd, static_cast<int32_t>(pa), 4, -1, 0, 0});
            if (r != -EINVAL)
                return 17;
            env.close(fd);

            // Partial-write short count: the backend faults past byte 8,
            // so a 4+6-byte pwritev reports the 8 bytes that landed; a
            // pwritev starting in the faulting region is a plain error.
            int efd = env.open("/evil/w.txt",
                               bfs::flags::CREAT | bfs::flags::RDWR);
            if (efd < 0)
                return 13;
            sync->resetScratch();
            uint32_t wa = sync->alloc(8);
            std::memcpy(sync->heapData() + wa, "AAAA", 4);
            sync->alloc(16);
            uint32_t wb = sync->alloc(8);
            std::memcpy(sync->heapData() + wb, "BBBBBB", 6);
            sys::IoVec wiovs[2] = {{static_cast<int32_t>(wa), 4},
                                   {static_cast<int32_t>(wb), 6}};
            arr = sync->alloc(sizeof(wiovs));
            std::memcpy(sync->heapData() + arr, wiovs, sizeof(wiovs));
            r = sync->call(sys::PWRITEV,
                           {efd, static_cast<int32_t>(arr), 2, 0, 0, 0});
            if (r != 8)
                return 14; // 4 + first 4 of the second run, then EIO
            r = sync->call(sys::PWRITEV,
                           {efd, static_cast<int32_t>(arr), 2, 9, 0, 0});
            if (r != -EIO)
                return 15; // error with no progress is the error itself
            env.close(efd);
            return 0;
        },
        apps::RuntimeKind::EmSync);
    Browsix bx;
    bx.fs().mount("/evil", std::make_shared<FailingTailWriteFs>());
    testutil::stage(bx, "vectored-sync");
    auto r = bx.runArgv({"/usr/bin/vectored-sync"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(Syscalls, GetdentsEncodesIntoGuestWindow)
{
    // The zero-copy getdents leg: records land in the guest window with
    // correct framing, a window too small for one record is EINVAL, and
    // nothing past the returned byte count is touched.
    testutil::addProgram(
        "getdents-into",
        [](rt::EmEnv &env) -> int {
            if (env.mkdir("/tmp/d") != 0 ||
                env.mkdir("/tmp/d/sub") != 0)
                return 1;
            int wfd = env.open("/tmp/d/file-with-a-longish-name",
                               bfs::flags::CREAT | bfs::flags::WRONLY);
            if (wfd < 0)
                return 2;
            env.close(wfd);
            int fd = env.open("/tmp/d", 0);
            if (fd < 0)
                return 3;

            rt::SyncSyscalls *sync = env.syncCalls();
            sync->resetScratch();
            uint32_t buf = sync->alloc(256);
            std::memset(sync->heapData() + buf, '#', 256);
            int64_t r = sync->call(
                sys::GETDENTS64,
                {fd, static_cast<int32_t>(buf), 256, 0, 0, 0});
            if (r <= 0)
                return 4;
            auto ents = sys::decodeDirents(sync->heapData() + buf,
                                           static_cast<size_t>(r));
            // ".", "..", "sub", and the long file name — all framed.
            if (ents.size() != 4)
                return 5;
            bool saw_sub = false, saw_file = false;
            for (const auto &e : ents) {
                if (e.name == "sub" && e.type == sys::DT_DIR)
                    saw_sub = true;
                if (e.name == "file-with-a-longish-name" &&
                    e.type == sys::DT_REG)
                    saw_file = true;
            }
            if (!saw_sub || !saw_file)
                return 6;
            for (int64_t i = r; i < 256; i++) {
                if (sync->heapData()[buf + i] != '#')
                    return 7; // wrote past the reported count
            }
            // End of directory: 0.
            r = sync->call(sys::GETDENTS64,
                           {fd, static_cast<int32_t>(buf), 256, 0, 0, 0});
            if (r != 0)
                return 8;
            env.close(fd);

            // A window smaller than even the "." record is EINVAL.
            fd = env.open("/tmp/d", 0);
            if (fd < 0)
                return 9;
            r = sync->call(sys::GETDENTS64,
                           {fd, static_cast<int32_t>(buf), 12, 0, 0, 0});
            if (r != -EINVAL)
                return 10;
            env.close(fd);
            return 0;
        },
        apps::RuntimeKind::EmSync);
    Browsix bx;
    testutil::stage(bx, "getdents-into");
    auto r = bx.runArgv({"/usr/bin/getdents-into"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
}

TEST(Syscalls, SyncPreadWithBogusPointerIsEfault)
{
    // The sync convention's heapSpan resolution: a destination window
    // outside the personality heap completes with -EFAULT instead of
    // writing out of bounds.
    testutil::addProgram(
        "efault-read",
        [](rt::EmEnv &env) -> int {
            int fd = env.open("/tmp/x",
                              bfs::flags::CREAT | bfs::flags::RDWR);
            if (fd < 0)
                return 1;
            if (env.write(fd, std::string("data")) != 4)
                return 2;
            rt::SyncSyscalls *sync = env.syncCalls();
            int32_t heap_len = static_cast<int32_t>(sync->heapSize());
            int64_t r = sync->call(sys::PREAD,
                                   {fd, heap_len, 16, 0, 0, 0});
            if (r != -EFAULT)
                return 3;
            r = sync->call(sys::PREAD,
                           {fd, heap_len - 8, 4096, 0, 0, 0});
            if (r != -EFAULT)
                return 4;
            env.close(fd);
            return 0;
        },
        apps::RuntimeKind::EmSync);
    Browsix bx;
    testutil::stage(bx, "efault-read");
    auto r = bx.runArgv({"/usr/bin/efault-read"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
}
