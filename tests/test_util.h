/**
 * @file
 * Shared helpers for suites (and benches) that register ad-hoc test
 * programs: registry add, filesystem staging, and the canonical
 * park-forever program.
 */
#pragma once

#include <string>

#include "apps/registry.h"
#include "core/browsix.h"

namespace browsix {
namespace testutil {

/** Register an EmProgramFn under `name` (re-registration overwrites).
 * Tiny 4 KB bundle: helper programs should cost spawns, not parses. */
inline void
addProgram(const std::string &name, rt::EmProgramFn fn,
           apps::RuntimeKind kind)
{
    apps::registerAllPrograms();
    apps::ProgramRegistry::instance().add(
        apps::ProgramSpec{name, kind, 4, std::move(fn), nullptr});
}

/** Stage a registered program's bundle at /usr/bin/<name>. */
inline void
stage(Browsix &bx, const std::string &name)
{
    bx.rootFs().writeFile(
        "/usr/bin/" + name,
        apps::ProgramRegistry::instance().bundleFor(name));
}

/**
 * The canonical parked process: blocks forever reading its own empty
 * pipe (the write end stays open, so no EOF). Async runtime by default —
 * no per-process shared heap, so big parked populations stay cheap.
 */
inline void
addParkProgram(const std::string &name,
               apps::RuntimeKind kind = apps::RuntimeKind::EmAsync)
{
    addProgram(
        name,
        [](rt::EmEnv &env) -> int {
            int fds[2];
            if (env.pipe2(fds) != 0)
                return 1;
            bfs::Buffer buf;
            env.read(fds[0], buf, 1); // parks until SIGKILL
            return 0;
        },
        kind);
}

} // namespace testutil
} // namespace browsix
