/**
 * @file
 * Shell tests: the pure lexer/parser, then a parameterized execution
 * sweep of commands through the full Browsix stack (the terminal case
 * study's substrate, §5.1.2).
 */
#include <gtest/gtest.h>

#include "apps/shell/shell_parse.h"
#include "core/browsix.h"

using namespace browsix;
using namespace browsix::apps::sh;

namespace {

List
mustParse(const std::string &src)
{
    List list;
    std::string err;
    EXPECT_TRUE(parseScript(src, list, err)) << src << ": " << err;
    return list;
}

} // namespace

// ---------- lexer / parser (pure) ----------

TEST(ShellParse, SimpleCommandWords)
{
    List l = mustParse("echo hello world");
    ASSERT_EQ(l.items.size(), 1u);
    const Command &c = l.items[0].first.commands[0];
    ASSERT_EQ(c.words.size(), 3u);
    EXPECT_EQ(c.words[0].raw(), "echo");
    EXPECT_EQ(c.words[2].raw(), "world");
}

TEST(ShellParse, QuotingPreservesSpacesAndKind)
{
    List l = mustParse("echo 'a b' \"c $X\" d\\ e");
    const Command &c = l.items[0].first.commands[0];
    ASSERT_EQ(c.words.size(), 4u);
    EXPECT_EQ(c.words[1].segments[0].quote, Segment::Single);
    EXPECT_EQ(c.words[1].segments[0].text, "a b");
    EXPECT_EQ(c.words[2].segments[0].quote, Segment::Double);
    EXPECT_EQ(c.words[3].raw(), "d e");
}

TEST(ShellParse, PipelineSplitsCommands)
{
    List l = mustParse("cat f | grep x | wc");
    ASSERT_EQ(l.items[0].first.commands.size(), 3u);
}

TEST(ShellParse, OperatorsSequenceAndShortCircuit)
{
    List l = mustParse("a && b || c; d &");
    ASSERT_EQ(l.items.size(), 4u);
    EXPECT_EQ(l.items[0].second, SeqOp::And);
    EXPECT_EQ(l.items[1].second, SeqOp::Or);
    EXPECT_EQ(l.items[2].second, SeqOp::Seq);
    EXPECT_EQ(l.items[3].second, SeqOp::Background);
}

TEST(ShellParse, Redirections)
{
    List l = mustParse("cmd < in > out 2> err");
    const Command &c = l.items[0].first.commands[0];
    ASSERT_EQ(c.redirs.size(), 3u);
    EXPECT_EQ(c.redirs[0].kind, Redirect::In);
    EXPECT_EQ(c.redirs[0].fd, 0);
    EXPECT_EQ(c.redirs[1].kind, Redirect::Out);
    EXPECT_EQ(c.redirs[1].fd, 1);
    EXPECT_EQ(c.redirs[2].kind, Redirect::Out);
    EXPECT_EQ(c.redirs[2].fd, 2);
    EXPECT_EQ(c.redirs[2].target.raw(), "err");
}

TEST(ShellParse, DupRedirect)
{
    List l = mustParse("cmd 2>&1");
    const Command &c = l.items[0].first.commands[0];
    ASSERT_EQ(c.redirs.size(), 1u);
    EXPECT_EQ(c.redirs[0].kind, Redirect::DupOut);
    EXPECT_EQ(c.redirs[0].fd, 2);
    EXPECT_EQ(c.redirs[0].dupFd, 1);
}

TEST(ShellParse, AppendRedirect)
{
    List l = mustParse("echo x >> log");
    EXPECT_EQ(l.items[0].first.commands[0].redirs[0].kind,
              Redirect::Append);
}

TEST(ShellParse, AssignmentsBeforeWords)
{
    List l = mustParse("FOO=bar BAZ=1 cmd arg");
    const Command &c = l.items[0].first.commands[0];
    ASSERT_EQ(c.assigns.size(), 2u);
    EXPECT_EQ(c.assigns[0].first, "FOO");
    EXPECT_EQ(c.assigns[0].second.raw(), "bar");
    ASSERT_EQ(c.words.size(), 2u);
}

TEST(ShellParse, EqualsAfterFirstWordIsNotAssignment)
{
    List l = mustParse("echo a=b");
    const Command &c = l.items[0].first.commands[0];
    EXPECT_TRUE(c.assigns.empty());
    ASSERT_EQ(c.words.size(), 2u);
    EXPECT_EQ(c.words[1].raw(), "a=b");
}

TEST(ShellParse, SubshellGrouping)
{
    List l = mustParse("(cd /tmp; pwd) > out");
    const Command &c = l.items[0].first.commands[0];
    ASSERT_NE(c.subshell, nullptr);
    EXPECT_EQ(c.subshell->items.size(), 2u);
    ASSERT_EQ(c.redirs.size(), 1u);
}

TEST(ShellParse, CommentsAndBlankLines)
{
    List l = mustParse("# a comment\n\necho ok # trailing\n");
    ASSERT_EQ(l.items.size(), 1u);
    EXPECT_EQ(l.items[0].first.commands[0].words.size(), 2u);
}

TEST(ShellParse, SyntaxErrorsAreReported)
{
    List list;
    std::string err;
    EXPECT_FALSE(parseScript("echo 'unterminated", list, err));
    EXPECT_FALSE(parseScript("cmd >", list, err));
    EXPECT_FALSE(parseScript("(a; b", list, err));
    EXPECT_FALSE(parseScript("| cmd", list, err));
}

TEST(ShellParse, GlobMatcher)
{
    EXPECT_TRUE(globMatch("*.txt", "a.txt"));
    EXPECT_TRUE(globMatch("*.txt", ".txt"));
    EXPECT_FALSE(globMatch("*.txt", "a.txt.bak"));
    EXPECT_TRUE(globMatch("a?c", "abc"));
    EXPECT_FALSE(globMatch("a?c", "ac"));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("a*b*c", "aXXbYYc"));
    EXPECT_FALSE(globMatch("a*b*c", "aXXcYYb"));
}

// ---------- execution sweep (full stack) ----------

struct ShellCase
{
    const char *name;
    const char *cmd;
    const char *stdin_data;
    const char *want_out;
    int want_code;
};

class ShellExec : public ::testing::TestWithParam<ShellCase>
{
};

TEST_P(ShellExec, ProducesExpectedOutput)
{
    const ShellCase &tc = GetParam();
    Browsix bx;
    bx.rootFs().writeFile("/data/lines.txt",
                          std::string("banana\napple\ncherry\n"));
    bx.rootFs().writeFile("/data/nums.txt", std::string("3\n1\n2\n"));
    auto r = bx.run(tc.cmd, 30000, tc.stdin_data);
    EXPECT_TRUE(r.ok) << tc.cmd;
    EXPECT_EQ(r.exitCode(), tc.want_code) << tc.cmd << "\nerr: " << r.err;
    EXPECT_EQ(r.out, tc.want_out) << tc.cmd;
}

INSTANTIATE_TEST_SUITE_P(
    Commands, ShellExec,
    ::testing::Values(
        ShellCase{"echo", "echo hi there", "", "hi there\n", 0},
        ShellCase{"echo_n", "echo -n x", "", "x", 0},
        ShellCase{"quoted", "echo 'a  b'", "", "a  b\n", 0},
        ShellCase{"var", "X=5; echo $X", "", "5\n", 0},
        ShellCase{"var_braces", "X=ab; echo ${X}c", "", "abc\n", 0},
        ShellCase{"var_in_dquotes", "X=v; echo \"[$X]\"", "", "[v]\n", 0},
        ShellCase{"var_not_in_squotes", "X=v; echo '$X'", "", "$X\n", 0},
        ShellCase{"status_var", "false; echo $?", "", "1\n", 0},
        ShellCase{"and_ok", "true && echo yes", "", "yes\n", 0},
        ShellCase{"and_skip", "false && echo no; echo done", "", "done\n",
                  0},
        ShellCase{"or_taken", "false || echo rescued", "", "rescued\n", 0},
        ShellCase{"or_skipped", "true || echo no", "", "", 0},
        ShellCase{"pipe2", "echo a b c | wc", "", "1 3 6\n", 0},
        ShellCase{"pipe3", "cat /data/lines.txt | sort | head -n 1", "",
                  "apple\n", 0},
        ShellCase{"sort_r", "sort -r /data/lines.txt", "",
                  "cherry\nbanana\napple\n", 0},
        ShellCase{"sort_n", "sort -n /data/nums.txt", "", "1\n2\n3\n", 0},
        ShellCase{"grep", "grep an /data/lines.txt", "", "banana\n", 0},
        ShellCase{"grep_v", "grep -v an /data/lines.txt", "",
                  "apple\ncherry\n", 0},
        ShellCase{"grep_miss", "grep zzz /data/lines.txt", "", "", 1},
        ShellCase{"stdin_pipe", "sort", "b\na\n", "a\nb\n", 0},
        ShellCase{"tail", "tail -n 2 /data/lines.txt", "",
                  "apple\ncherry\n", 0},
        ShellCase{"seq_xargs", "seq 3 | xargs echo", "", "1 2 3\n", 0},
        ShellCase{"tee", "echo t | tee /tmp/t1 /tmp/t2 && cat /tmp/t1",
                  "", "t\nt\n", 0},
        ShellCase{"subst", "echo $(echo inner)", "", "inner\n", 0},
        ShellCase{"subst_nested", "echo $(echo $(echo deep))", "",
                  "deep\n", 0},
        ShellCase{"test_eq", "test a = a && echo same", "", "same\n", 0},
        ShellCase{"test_f", "[ -f /data/lines.txt ] && echo file", "",
                  "file\n", 0},
        ShellCase{"test_d", "[ -d /data ] && echo dir", "", "dir\n", 0},
        ShellCase{"cd_pwd", "cd /data && pwd", "", "/data\n", 0},
        ShellCase{"subshell_cd", "(cd /data); pwd", "", "/\n", 0},
        ShellCase{"exported_env",
                  "export GREETING=hello; env | grep GREETING", "",
                  "GREETING=hello\n", 0},
        ShellCase{"cmd_env_prefix", "FOO=bar env | grep '^FOO='", "",
                  "FOO=bar\n", 0},
        ShellCase{"not_found", "definitely-not-a-command", "", "", 127},
        ShellCase{"exit_code", "exit 7", "", "", 7},
        ShellCase{"cp_cat",
                  "cp /data/lines.txt /tmp/c && head -n 1 /tmp/c", "",
                  "banana\n", 0},
        ShellCase{"mkdir_ls", "mkdir /tmp/nd && ls /tmp", "", "nd\n", 0},
        ShellCase{"touch_rm",
                  "touch /tmp/tf && rm /tmp/tf && ls /tmp", "", "", 0},
        ShellCase{"glob", "cd /data && echo *.txt", "",
                  "lines.txt nums.txt\n", 0},
        ShellCase{"glob_nomatch", "cd /data && echo *.xyz", "",
                  "*.xyz\n", 0},
        ShellCase{"background_wait",
                  "echo bg > /tmp/bg & wait; cat /tmp/bg", "", "bg\n", 0}),
    [](const ::testing::TestParamInfo<ShellCase> &info) {
        return info.param.name;
    });

TEST(ShellScripts, RunsScriptFileWithArgs)
{
    Browsix bx;
    bx.rootFs().writeFile("/tmp/s.sh",
                          std::string("#!/bin/sh\necho args:$#\n"
                                      "echo first:$1\necho name:$0\n"));
    auto r = bx.run("/bin/sh /tmp/s.sh alpha beta");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "args:2\nfirst:alpha\nname:/tmp/s.sh\n");
}

TEST(ShellScripts, ShebangScriptRunsDirectly)
{
    Browsix bx;
    bx.rootFs().writeFile("/usr/bin/greet",
                          std::string("#!/bin/sh\necho greetings $1\n"));
    auto r = bx.run("greet world");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "greetings world\n");
}

TEST(ShellScripts, ShiftConsumesPositionals)
{
    Browsix bx;
    bx.rootFs().writeFile("/tmp/s.sh",
                          std::string("echo $1; shift; echo $1\n"));
    auto r = bx.run("/bin/sh /tmp/s.sh a b");
    EXPECT_EQ(r.out, "a\nb\n");
}

TEST(ShellScripts, PipelineOfUtilitiesLikeThePaper)
{
    // §5.1.2's example: cat file.txt | grep apple > apples.txt
    Browsix bx;
    bx.rootFs().writeFile(
        "/home/file.txt",
        std::string("apple pie\nbanana split\napple sauce\n"));
    auto r = bx.run(
        "cd /home && cat file.txt | grep apple > apples.txt && "
        "wc apples.txt");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "2 4 22 apples.txt\n");
}
