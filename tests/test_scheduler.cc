/**
 * @file
 * Worker-pool scheduler tests (ROADMAP item 1: decouple "process" from
 * "thread"): pooled workers on the kernel run queue, run-state
 * introspection, FIFO fairness under a single pool thread, SIGKILL of a
 * task that never reached a pool thread, the per-tenant NPROC quota
 * (the fork-bomb fence), and Kernel::system surfacing spawn failures
 * instead of panicking.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.h"
#include "core/browsix.h"
#include "tests/test_util.h"

using namespace browsix;

namespace {

using testutil::stage;

void
addProgram(const std::string &name, rt::EmProgramFn fn,
           apps::RuntimeKind kind = apps::RuntimeKind::EmAsync)
{
    testutil::addProgram(name, std::move(fn), kind);
}

} // namespace

TEST(Scheduler, ProcessesAreQueueItemsNotThreads)
{
    // The tentpole contract: every process worker is pooled (a run-queue
    // item stepped by the shared pool), not a dedicated thread pair.
    testutil::addParkProgram("sched-park");
    Browsix bx;
    stage(bx, "sched-park");
    EXPECT_GE(bx.kernel().scheduler().poolSize(), 2u);

    int pid = 0;
    bx.kernel().spawnRoot({"/usr/bin/sched-park"}, bx.kernel().defaultEnv,
                          "/", [](int) {}, nullptr, nullptr,
                          [&](int p) { pid = p; });
    ASSERT_TRUE(bx.runUntil([&]() { return pid > 0; }, 30000));
    kernel::Task *t = bx.kernel().task(pid);
    ASSERT_NE(t, nullptr);
    ASSERT_NE(t->worker, nullptr);
    EXPECT_TRUE(t->worker->pooled())
        << "kernel-spawned workers must ride the pool";

    // Once it blocks on its empty pipe the process costs zero threads:
    // the worker winds down to Parked (idle, not queued, not running).
    ASSERT_TRUE(bx.runUntil(
        [&]() { return bx.kernel().runState(pid) == kernel::RunState::Parked; },
        30000))
        << "a blocked process must park instead of holding a thread";
    EXPECT_GT(bx.kernel().scheduler().steps(), 0u);

    EXPECT_EQ(bx.kernel().kill(pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&]() { return bx.kernel().taskCount() == 0; }, 30000));
    EXPECT_EQ(bx.kernel().runState(pid), kernel::RunState::Zombie)
        << "a reaped pid reads as Zombie, not a stale phase";
}

TEST(Scheduler, SingleThreadPoolCannotBeStarvedBySpinners)
{
    // Fairness at worker granularity: with ONE pool thread, four guests
    // spinning in a syscall loop must not starve a newcomer — each spin
    // iteration parks its fiber awaiting the reply, the worker yields its
    // quantum, and FIFO ordering guarantees the newcomer's turn.
    addProgram("sched-spin", [](rt::EmEnv &env) -> int {
        for (;;)
            env.getpid(); // parks per call; killed by the host at the end
        return 0;
    });
    addProgram("sched-visitor", [](rt::EmEnv &env) -> int {
        return env.getpid() > 0 ? 0 : 1;
    });
    Browsix bx;
    bx.kernel().setPoolThreads(1);
    stage(bx, "sched-spin");
    stage(bx, "sched-visitor");

    int spinners = 0;
    for (int i = 0; i < 4; i++) {
        bx.kernel().spawnRoot({"/usr/bin/sched-spin"},
                              bx.kernel().defaultEnv, "/", [](int) {},
                              nullptr, nullptr,
                              [&](int p) { spinners += p > 0 ? 1 : 0; });
    }
    ASSERT_TRUE(bx.runUntil([&]() { return spinners == 4; }, 30000));

    // The visitor must run to completion while the spinners never exit.
    auto r = bx.runArgv({"/usr/bin/sched-visitor"}, 60000);
    EXPECT_TRUE(r.ok) << "spinners starved the run queue";
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(bx.kernel().taskCount(), 4u) << "spinners must still be live";

    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&]() { return bx.kernel().taskCount() == 0; }, 30000));
}

TEST(Scheduler, SigkillOfQueuedNeverRunTaskReapsCleanly)
{
    // SIGKILL a task whose worker is Runnable but has never been stepped:
    // a hog pins the single pool thread in a long CPU burst (no syscalls,
    // so its fiber never yields), the victim is spawned and killed while
    // provably still in the run queue, and its never-started guest fiber
    // must be dropped without unwinding — clean reap, right status.
    addProgram("sched-hog", [](rt::EmEnv &) -> int {
        auto until =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        volatile uint64_t x = 0;
        while (std::chrono::steady_clock::now() < until)
            x += 1;
        return x ? 0 : 1;
    });
    testutil::addParkProgram("sched-park");
    Browsix bx;
    bx.kernel().setPoolThreads(1);
    stage(bx, "sched-hog");
    stage(bx, "sched-park");

    int hog_exit = -1, hog_pid = 0;
    bx.kernel().spawnRoot({"/usr/bin/sched-hog"}, bx.kernel().defaultEnv,
                          "/", [&](int st) { hog_exit = st; }, nullptr,
                          nullptr, [&](int p) { hog_pid = p; });
    ASSERT_TRUE(bx.runUntil(
        [&]() {
            return hog_pid > 0 &&
                   bx.kernel().runState(hog_pid) ==
                       kernel::RunState::Running;
        },
        30000))
        << "hog never started its CPU burst";

    int victim_exit = -1, victim_pid = 0;
    bx.kernel().spawnRoot({"/usr/bin/sched-park"}, bx.kernel().defaultEnv,
                          "/", [&](int st) { victim_exit = st; }, nullptr,
                          nullptr, [&](int p) { victim_pid = p; });
    ASSERT_TRUE(bx.runUntil([&]() { return victim_pid > 0; }, 30000));
    // The one pool thread is inside the hog's burst: the victim can only
    // be queued (its boot step has not happened, its fiber never ran).
    EXPECT_EQ(bx.kernel().runState(victim_pid), kernel::RunState::Runnable)
        << "victim should be waiting in the run queue";
    EXPECT_EQ(bx.kernel().kill(victim_pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return victim_exit != -1; }, 30000));
    EXPECT_EQ(sys::wtermsig(victim_exit), sys::SIGKILL);
    EXPECT_EQ(bx.kernel().runState(victim_pid), kernel::RunState::Zombie);

    ASSERT_TRUE(bx.runUntil([&]() { return hog_exit != -1; }, 60000))
        << "hog never finished after the kill";
    EXPECT_EQ(sys::wexitstatus(hog_exit), 0);
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

TEST(Scheduler, NprocQuotaReturnsEagainAndRecoversAfterReap)
{
    // The per-tenant NPROC fence: a root process and its descendants
    // share one live-process budget. Spawns past it fail with -EAGAIN;
    // reaping a child frees the slot.
    testutil::addParkProgram("sched-park");
    addProgram("sched-quota", [](rt::EmEnv &env) -> int {
        std::vector<int> kids;
        int rc = 0;
        for (int i = 0; i < 16; i++) {
            int pid =
                env.spawn({"/usr/bin/sched-park"}, std::vector<int>{});
            if (pid < 0) {
                rc = pid;
                break;
            }
            kids.push_back(pid);
        }
        if (rc != -EAGAIN)
            return 1; // quota never engaged
        // Limit 4, root charges 1: exactly 3 children fit.
        if (kids.size() != 3)
            return 2;
        // Reap one child: its slot must become spawnable again.
        if (env.kill(kids[0], sys::SIGKILL) != 0)
            return 3;
        int st = 0;
        if (env.waitpid(kids[0], &st, 0) != kids[0])
            return 4;
        int again = env.spawn({"/usr/bin/sched-park"}, std::vector<int>{});
        if (again <= 0)
            return 5;
        // And the budget is exhausted again right after.
        if (env.spawn({"/usr/bin/sched-park"}, std::vector<int>{}) !=
            -EAGAIN)
            return 6;
        if (env.kill(-1, sys::SIGKILL) != 0) // broadcast excludes self
            return 7;
        while (env.waitpid(-1, nullptr, 0) > 0) {
        }
        return 0;
    });
    Browsix bx;
    bx.kernel().setNprocLimit(4);
    stage(bx, "sched-park");
    stage(bx, "sched-quota");
    auto r = bx.runArgv({"/usr/bin/sched-quota"}, 60000);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

TEST(Scheduler, TimerParkedWorkerRewakesThroughTheDedupedWakePath)
{
    // A pooled worker that goes Idle with a pending loop timer is brought
    // back by the scheduler's timer rail. Regression: timer promotion
    // used to push the worker onto the run queue directly, skipping
    // signalWork's Idle->Queued CAS — a wake landing in the same window
    // (Atomics::notify of a parked guest, or any signalWork) could then
    // double-queue the worker and two pool threads would resume the same
    // guest fiber at once. Race hundreds of 1ms promotions against a
    // notify/signalWork hammer so TSan (and step()'s ownership CAS)
    // catch any return of the raw push.
    jsvm::Browser browser;
    auto sched = std::make_shared<kernel::Scheduler>(2);
    browser.setExecutor(sched);
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto sab = std::make_shared<jsvm::SharedArrayBuffer>(16);
    std::atomic<int> rounds{0};
    std::atomic<int> timer_fired{0};
    auto w = browser.createWorker(url, [&](jsvm::WorkerScope &scope, auto) {
        // Rail 1: a self-re-arming 1ms loop timer, so nearly every step
        // parks the worker with a pending deadline (finishStep ->
        // scheduleTimer -> promoteDueTimersLocked, over and over).
        auto rearm = std::make_shared<std::function<void()>>();
        jsvm::EventLoop *loop = &scope.loop();
        *rearm = [rearm, loop, &timer_fired]() {
            timer_fired++;
            loop->setTimeout(*rearm, 1000);
        };
        loop->setTimeout(*rearm, 1000);
        // Rail 2: a guest fiber parking in Atomics::wait each round; the
        // main-thread notify makes it runnable — and signals the worker —
        // right as a timer promotion may be in flight.
        jsvm::InterruptToken *token = &scope.token();
        scope.startGuest([sab, token, &rounds]() {
            for (;;) {
                if (jsvm::Atomics::wait(*sab, 0, 0, -1, token) !=
                    jsvm::WaitResult::Ok)
                    return; // interrupted: terminate() is unwinding us
                rounds++;
            }
        });
    });
    ASSERT_TRUE(w->pooled());
    const int kRounds = 300;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while ((rounds < kRounds || timer_fired < 20) &&
           std::chrono::steady_clock::now() < deadline) {
        jsvm::Atomics::notify(*sab, 0);
        w->signalWork();
        std::this_thread::yield();
    }
    EXPECT_GE(rounds.load(), kRounds) << "parked guest stopped being rewoken";
    EXPECT_GE(timer_fired.load(), 20) << "scheduler timer rail never fired";
    w->terminate();
    // Retire the pool from this thread (the Kernel does the same in its
    // destructor): without it, a pool thread can drop the last Worker ref
    // — and with it the last Scheduler ref — and ~Scheduler would then
    // join the pool from inside one of its own threads.
    sched->shutdown();
}

TEST(Scheduler, KernelSystemSurfacesSpawnFailureInsteadOfPanicking)
{
    // Regression: a missing /bin/sh used to panic the whole embedder
    // from inside Kernel::system's spawn callback. The negative errno
    // must surface through on_exit instead.
    Browsix bx;
    int unlink_rc = -1;
    bx.fs().unlink("/bin/sh", [&](int err) { unlink_rc = err; });
    ASSERT_TRUE(bx.runUntil([&]() { return unlink_rc != -1; }, 30000));
    ASSERT_EQ(unlink_rc, 0);

    int got = 1;
    bx.kernel().system("echo hi", [&](int status) { got = status; },
                       nullptr, nullptr);
    ASSERT_TRUE(bx.runUntil([&]() { return got != 1; }, 30000))
        << "spawn failure never reached on_exit";
    EXPECT_EQ(got, -ENOENT) << "on_exit must carry the spawn errno";
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}
