/**
 * @file
 * Browser-substrate tests: structured clone, event loops, workers,
 * SharedArrayBuffer + Atomics, blobs, and the cost model.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "jsvm/browser.h"
#include "jsvm/cost_model.h"
#include "jsvm/test_clock.h"
#include "jsvm/util.h"

using namespace browsix::jsvm;

// ---------- Value & structured clone ----------

TEST(Value, TypesAndAccessors)
{
    EXPECT_TRUE(Value().isUndefined());
    EXPECT_TRUE(Value::null().isNull());
    EXPECT_TRUE(Value(true).asBool());
    EXPECT_DOUBLE_EQ(Value(3.5).asNumber(), 3.5);
    EXPECT_EQ(Value(42).asInt(), 42);
    EXPECT_EQ(Value("hi").asString(), "hi");
}

TEST(Value, ObjectGetSetAndMissingKeys)
{
    Value v = Value::object();
    v.set("a", Value(1));
    v.set("b", Value("x"));
    EXPECT_EQ(v.get("a").asInt(), 1);
    EXPECT_EQ(v.get("b").asString(), "x");
    EXPECT_TRUE(v.get("missing").isUndefined());
    EXPECT_TRUE(Value(7).get("anything").isUndefined());
}

TEST(Value, ArrayPushAndAt)
{
    Value v = Value::array();
    v.push(Value(1));
    v.push(Value("two"));
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v.at(0).asInt(), 1);
    EXPECT_EQ(v.at(1).asString(), "two");
    EXPECT_TRUE(v.at(5).isUndefined());
}

TEST(Value, CloneDeepCopiesBytes)
{
    Value v = Value::bytes({1, 2, 3});
    Value c = v.clone();
    (*v.asBytes())[0] = 99;
    EXPECT_EQ((*c.asBytes())[0], 1) << "clone must not share ArrayBuffers";
}

TEST(Value, CloneDeepCopiesNestedContainers)
{
    Value v = Value::object();
    Value inner = Value::array();
    inner.push(Value(1));
    v.set("arr", std::move(inner));
    Value c = v.clone();
    v.asObject()["arr"].push(Value(2));
    EXPECT_EQ(c.get("arr").size(), 1u);
}

TEST(Value, CloneSharesSharedArrayBuffers)
{
    auto sab = std::make_shared<SharedArrayBuffer>(64);
    Value v(sab);
    Value c = v.clone();
    EXPECT_EQ(c.asShared().get(), sab.get())
        << "SABs pass through structured clone by reference";
}

TEST(Value, ApproxByteSizeCountsPayloads)
{
    Value v = Value::object();
    v.set("data", Value::bytes(std::vector<uint8_t>(1000)));
    EXPECT_GE(v.approxByteSize(), 1000u);
}

// ---------- EventLoop ----------

TEST(EventLoop, RunsPostedTasksInOrder)
{
    EventLoop loop;
    std::vector<int> order;
    loop.post([&]() { order.push_back(1); });
    loop.post([&]() { order.push_back(2); });
    loop.pump();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, CurrentIsSetDuringTask)
{
    EventLoop loop;
    EventLoop *seen = nullptr;
    loop.post([&]() { seen = EventLoop::current(); });
    loop.pump();
    EXPECT_EQ(seen, &loop);
    EXPECT_EQ(EventLoop::current(), nullptr);
}

TEST(EventLoop, TimerFiresAfterDelay)
{
    EventLoop loop;
    bool fired = false;
    int64_t t0 = nowUs();
    loop.setTimeout([&]() { fired = true; }, 5000);
    loop.pump();
    EXPECT_FALSE(fired) << "timer must not fire early";
    while (!fired && nowUs() - t0 < 1000000)
        loop.pumpOne(true);
    EXPECT_TRUE(fired);
    EXPECT_GE(nowUs() - t0, 5000);
}

TEST(EventLoop, ClearTimeoutCancels)
{
    TestClock clock;
    EventLoop loop;
    bool fired = false;
    uint64_t id = loop.setTimeout([&]() { fired = true; }, 1000);
    loop.clearTimeout(id);
    clock.advanceUs(3000); // well past the (cancelled) deadline
    loop.pump();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, CrossThreadPostWakesRun)
{
    EventLoop loop;
    std::atomic<bool> ran{false};
    std::thread t([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        loop.post([&]() {
            ran = true;
            loop.stop();
        });
    });
    loop.run();
    t.join();
    EXPECT_TRUE(ran);
}

TEST(EventLoop, IdleReflectsQueueAndTimers)
{
    EventLoop loop;
    EXPECT_TRUE(loop.idle());
    loop.post([]() {});
    EXPECT_FALSE(loop.idle());
    loop.pump();
    EXPECT_TRUE(loop.idle());
    uint64_t id = loop.setTimeout([]() {}, 100000);
    EXPECT_FALSE(loop.idle());
    loop.clearTimeout(id);
    EXPECT_TRUE(loop.idle());
}

// ---------- deterministic test clock ----------

TEST(TestClock, ReroutesNowUsWhileInstalled)
{
    int64_t real_before = nowUs();
    {
        TestClock clock(500);
        EXPECT_EQ(TestClock::active(), &clock);
        EXPECT_EQ(nowUs(), 500);
        clock.advanceUs(250);
        EXPECT_EQ(nowUs(), 750);
        clock.advanceUs(-10);
        EXPECT_EQ(nowUs(), 750) << "time never moves backwards";
    }
    EXPECT_EQ(TestClock::active(), nullptr);
    EXPECT_GE(nowUs(), real_before) << "real clock restored on scope exit";
}

TEST(TestClock, NestedClocksRestoreOuter)
{
    TestClock outer(1000);
    {
        TestClock inner(9999999);
        EXPECT_EQ(nowUs(), 9999999);
    }
    EXPECT_EQ(TestClock::active(), &outer);
    EXPECT_EQ(nowUs(), 1000);
}

TEST(TestClock, TimerFiresAtExactVirtualDeadline)
{
    TestClock clock;
    EventLoop loop;
    int64_t fired_at = -1;
    int64_t t0 = nowUs();
    loop.setTimeout([&]() { fired_at = nowUs(); }, 5000);
    loop.pump();
    EXPECT_EQ(fired_at, -1) << "virtual time has not advanced";
    EXPECT_EQ(loop.nextTimerDueUs(), t0 + 5000);
    size_t ran = clock.pumpUntilIdle(loop);
    EXPECT_EQ(ran, 1u);
    EXPECT_EQ(fired_at, t0 + 5000)
        << "the pump jumps exactly to the deadline, no sleeping, no slop";
    EXPECT_TRUE(loop.idle());
}

TEST(TestClock, PumpRunsTimerCascadesInDueOrder)
{
    // Timers that schedule more timers: the pump must repeatedly jump to
    // the next deadline until the loop is genuinely idle.
    TestClock clock;
    EventLoop loop;
    std::vector<int> order;
    loop.setTimeout(
        [&]() {
            order.push_back(2);
            loop.setTimeout([&]() { order.push_back(3); }, 3000);
        },
        2000);
    loop.setTimeout([&]() { order.push_back(1); }, 1000);
    loop.post([&]() { order.push_back(0); });
    clock.pumpUntilIdle(loop);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}))
        << "ready tasks first, then timers in due-time order";
    EXPECT_TRUE(loop.idle());
}

TEST(TestClock, PumpStopsAtVirtualBudget)
{
    TestClock clock;
    EventLoop loop;
    bool fired = false;
    loop.setTimeout([&]() { fired = true; }, 10000000); // 10s virtual
    clock.pumpUntilIdle(loop, /*max_virtual_us=*/1000000);
    EXPECT_FALSE(fired) << "a timer past the budget is left pending";
    EXPECT_FALSE(loop.idle());
    clock.pumpUntilIdle(loop, /*max_virtual_us=*/60000000);
    EXPECT_TRUE(fired);
}

TEST(TestClock, CostChargesBecomeVirtualTime)
{
    // Under a TestClock, cost-model charges advance the virtual clock
    // instead of spinning or sleeping — kernel-lifecycle tests that spawn
    // workers (25ms charge each) pay nothing in wall time.
    TestClock clock;
    CostModel costs(BrowserProfile::chrome2016());
    int64_t t0 = nowUs();
    costs.chargeSpawn();
    EXPECT_EQ(nowUs() - t0, 25000) << "chrome2016 workerSpawnUs, exactly";
    t0 = nowUs();
    costs.chargeMessage(0);
    EXPECT_EQ(nowUs() - t0, 450) << "postMessageUs, exactly";
}

// ---------- SharedArrayBuffer + Atomics ----------

TEST(Atomics, LoadStoreAdd)
{
    SharedArrayBuffer sab(64);
    Atomics::store(sab, 8, 41);
    EXPECT_EQ(Atomics::load(sab, 8), 41);
    EXPECT_EQ(Atomics::add(sab, 8, 1), 41) << "add returns the old value";
    EXPECT_EQ(Atomics::load(sab, 8), 42);
}

TEST(Atomics, CompareExchange)
{
    SharedArrayBuffer sab(16);
    Atomics::store(sab, 0, 5);
    EXPECT_EQ(Atomics::compareExchange(sab, 0, 5, 9), 5);
    EXPECT_EQ(Atomics::load(sab, 0), 9);
    EXPECT_EQ(Atomics::compareExchange(sab, 0, 5, 7), 9)
        << "failed CAS returns current value";
    EXPECT_EQ(Atomics::load(sab, 0), 9);
}

TEST(Atomics, WaitReturnsNotEqualImmediately)
{
    SharedArrayBuffer sab(16);
    Atomics::store(sab, 0, 1);
    EXPECT_EQ(Atomics::wait(sab, 0, 0, -1), WaitResult::NotEqual);
}

TEST(Atomics, WaitTimesOut)
{
    SharedArrayBuffer sab(16);
    int64_t t0 = nowUs();
    EXPECT_EQ(Atomics::wait(sab, 0, 0, 2000), WaitResult::TimedOut);
    EXPECT_GE(nowUs() - t0, 2000);
}

TEST(Atomics, NotifyWakesWaiter)
{
    SharedArrayBuffer sab(16);
    std::atomic<int> result{-1};
    std::thread waiter([&]() {
        result = static_cast<int>(Atomics::wait(sab, 0, 0, -1));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Atomics::store(sab, 0, 1);
    EXPECT_EQ(Atomics::notify(sab, 0), 1);
    waiter.join();
    EXPECT_EQ(result, static_cast<int>(WaitResult::Ok));
}

TEST(Atomics, NotifyOnlyWakesMatchingOffset)
{
    SharedArrayBuffer sab(32);
    std::atomic<bool> woke{false};
    std::thread waiter([&]() {
        Atomics::wait(sab, 0, 0, 200000);
        woke = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(Atomics::notify(sab, 4), 0) << "different address: no waiters";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(woke);
    Atomics::notify(sab, 0);
    waiter.join();
}

TEST(Atomics, InterruptTokenWakesWaiter)
{
    SharedArrayBuffer sab(16);
    InterruptToken token;
    std::atomic<int> result{-1};
    std::thread waiter([&]() {
        result = static_cast<int>(Atomics::wait(sab, 0, 0, -1, &token));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.interrupt();
    waiter.join();
    EXPECT_EQ(result, static_cast<int>(WaitResult::Interrupted));
}

TEST(Atomics, NotifyCountLimitsWakes)
{
    SharedArrayBuffer sab(16);
    std::atomic<int> woken{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < 3; i++) {
        ts.emplace_back([&]() {
            if (Atomics::wait(sab, 0, 0, 500000) == WaitResult::Ok)
                woken++;
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(Atomics::notify(sab, 0, 1), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(woken, 1);
    Atomics::notify(sab, 0); // release the rest
    for (auto &t : ts)
        t.join();
}

// ---------- Blob registry ----------

TEST(Blob, CreateResolveRevoke)
{
    BlobRegistry blobs;
    std::string url = blobs.createObjectUrl({1, 2, 3});
    EXPECT_EQ(url.rfind("blob:", 0), 0u);
    auto data = blobs.resolve(url);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->size(), 3u);
    blobs.revokeObjectUrl(url);
    EXPECT_EQ(blobs.resolve(url), nullptr);
}

TEST(Blob, UrlsAreUnique)
{
    BlobRegistry blobs;
    EXPECT_NE(blobs.createObjectUrl({1}), blobs.createObjectUrl({1}));
}

// ---------- Worker ----------

TEST(Worker, EchoRoundtrip)
{
    Browser browser;
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto w = browser.createWorker(url, [](WorkerScope &scope, auto) {
        scope.setOnMessage([&scope](Value v) {
            Value reply = Value::object();
            reply.set("echo", v.get("msg").clone());
            scope.postMessage(reply);
        });
    });
    std::string got;
    w->setOnMessage([&](Value v) { got = v.get("echo").asString(); });
    Value msg = Value::object();
    msg.set("msg", Value("ping"));
    w->postMessage(msg);
    EXPECT_TRUE(browser.runUntil([&]() { return !got.empty(); }, 5000));
    EXPECT_EQ(got, "ping");
    w->terminate();
}

TEST(Worker, MessagesAreCopiedNotShared)
{
    Browser browser;
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto payload = std::make_shared<std::vector<uint8_t>>(
        std::vector<uint8_t>{1, 2, 3});
    std::atomic<int> first_byte{-1};
    auto w = browser.createWorker(url, [&](WorkerScope &scope, auto) {
        scope.setOnMessage([&](Value v) {
            first_byte = (*v.asBytes())[0];
            scope.postMessage(Value("done"));
        });
    });
    bool done = false;
    w->setOnMessage([&](Value) { done = true; });
    Value v(payload);
    w->postMessage(v);
    // Mutating the sender's copy after postMessage must not be visible.
    (*payload)[0] = 77;
    browser.runUntil([&]() { return done; }, 5000);
    EXPECT_EQ(first_byte, 1);
    w->terminate();
}

TEST(Worker, TerminateInterruptsAtomicsWait)
{
    Browser browser;
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto sab = std::make_shared<SharedArrayBuffer>(16);
    std::atomic<bool> unwound{false};
    auto w = browser.createWorker(url, [&](WorkerScope &scope, auto) {
        auto th = std::make_shared<std::thread>([&scope, sab, &unwound]() {
            WaitResult r =
                Atomics::wait(*sab, 0, 0, -1, &scope.token());
            if (r == WaitResult::Interrupted)
                unwound = true;
        });
        scope.atExit([th]() { th->join(); });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    w->terminate();
    EXPECT_TRUE(unwound);
}

TEST(Worker, SharedMemoryIsVisibleAcrossContexts)
{
    Browser browser;
    std::string url = browser.blobs().createObjectUrl({'x'});
    auto sab = std::make_shared<SharedArrayBuffer>(16);
    auto w = browser.createWorker(url, [](WorkerScope &scope, auto) {
        scope.setOnMessage([&scope](Value v) {
            auto heap = v.get("heap").asShared();
            Atomics::store(*heap, 0, 123);
            scope.postMessage(Value("stored"));
        });
    });
    bool done = false;
    w->setOnMessage([&](Value) { done = true; });
    Value msg = Value::object();
    msg.set("heap", Value(sab));
    w->postMessage(msg);
    browser.runUntil([&]() { return done; }, 5000);
    EXPECT_EQ(Atomics::load(*sab, 0), 123)
        << "worker writes through the SAB must be visible to the main "
           "context";
    w->terminate();
}

TEST(Worker, TerminatedWorkerDropsMessages)
{
    Browser browser;
    std::string url = browser.blobs().createObjectUrl({'x'});
    std::atomic<int> received{0};
    auto w = browser.createWorker(url, [&](WorkerScope &scope, auto) {
        scope.setOnMessage([&](Value) { received++; });
    });
    w->terminate();
    w->postMessage(Value(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(received, 0);
}

// ---------- Cost model ----------

TEST(CostModel, FastProfileChargesNothing)
{
    CostModel costs(BrowserProfile::fast());
    int64_t t0 = nowUs();
    for (int i = 0; i < 1000; i++)
        costs.chargeMessage(1024);
    EXPECT_LT(nowUs() - t0, 50000);
}

TEST(CostModel, MessageChargeScalesWithProfile)
{
    CostModel costs(BrowserProfile::chrome2016());
    int64_t t0 = nowUs();
    costs.chargeMessage(0);
    int64_t elapsed = nowUs() - t0;
    EXPECT_GE(elapsed, 150) << "Chrome profile: ~200us per postMessage";
    EXPECT_LT(elapsed, 5000);
}

TEST(CostModel, ChromeSlowerThanFirefoxPerMessage)
{
    // The paper measures the meme list request slower in Chrome (9ms)
    // than Firefox (6ms); the profiles must preserve that ordering.
    EXPECT_GT(BrowserProfile::chrome2016().postMessageUs,
              BrowserProfile::firefox2016().postMessageUs);
}
