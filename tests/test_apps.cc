/**
 * @file
 * Application tests: SHA-1 (both implementations against FIPS vectors),
 * Makefile parsing, the TeX engines (package closure, aux/bbl flow,
 * errors), the meme pipeline (image, font, PNG validity), and the
 * program registry/bundle format.
 */
#include <gtest/gtest.h>

#include "apps/coreutils/coreutils.h"
#include "apps/coreutils/sha1.h"
#include "apps/make/make.h"
#include "apps/meme/png.h"
#include "apps/meme/server.h"
#include "apps/registry.h"
#include "apps/tex/tex.h"
#include "core/browsix.h"
#include "jsvm/util.h"

using namespace browsix;
using namespace browsix::apps;

// ---------- SHA-1 ----------

struct Sha1Vector
{
    const char *msg;
    const char *hex;
};

class Sha1Known : public ::testing::TestWithParam<Sha1Vector>
{
};

TEST_P(Sha1Known, NativeMatchesFips)
{
    const auto &v = GetParam();
    auto d = sha1Native(reinterpret_cast<const uint8_t *>(v.msg),
                        strlen(v.msg));
    EXPECT_EQ(sha1Hex(d), v.hex);
}

TEST_P(Sha1Known, JsSemanticsMatchesFips)
{
    const auto &v = GetParam();
    auto d = sha1Js(reinterpret_cast<const uint8_t *>(v.msg),
                    strlen(v.msg));
    EXPECT_EQ(sha1Hex(d), v.hex)
        << "the slow JS-number implementation must still be correct";
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Sha1Known,
    ::testing::Values(
        Sha1Vector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        Sha1Vector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        Sha1Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                   "nopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        Sha1Vector{"The quick brown fox jumps over the lazy dog",
                   "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

TEST(Sha1, ImplementationsAgreeOnBinaryData)
{
    std::vector<uint8_t> data(100000);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<uint8_t>(i * 7 + (i >> 8));
    EXPECT_EQ(sha1Hex(sha1Native(data)), sha1Hex(sha1Js(data)));
}

TEST(Sha1, JsSemanticsCostsMore)
{
    std::vector<uint8_t> data(500000, 0xAB);
    int64_t t0 = jsvm::nowUs();
    sha1Native(data);
    int64_t native_us = jsvm::nowUs() - t0;
    t0 = jsvm::nowUs();
    sha1Js(data);
    int64_t js_us = jsvm::nowUs() - t0;
    EXPECT_GT(js_us, native_us * 2)
        << "JS tax must be real: native " << native_us << "us vs js "
        << js_us << "us";
}

// ---------- Makefile parsing ----------

TEST(MakeParse, VariablesRulesAndCommands)
{
    Makefile mf;
    std::string err;
    ASSERT_TRUE(parseMakefile("CC = mycc\n"
                              "# comment\n"
                              "all: a.o b.o\n"
                              "\t$(CC) -o all a.o b.o\n"
                              "\t@echo done\n"
                              "a.o: a.c\n"
                              "\t$(CC) -c a.c\n",
                              mf, err))
        << err;
    EXPECT_EQ(mf.vars.at("CC"), "mycc");
    EXPECT_EQ(mf.defaultTarget, "all");
    const MakeRule *all = mf.find("all");
    ASSERT_NE(all, nullptr);
    EXPECT_EQ(all->deps, (std::vector<std::string>{"a.o", "b.o"}));
    EXPECT_EQ(all->commands.size(), 2u);
}

TEST(MakeParse, CommandOutsideRuleIsError)
{
    Makefile mf;
    std::string err;
    EXPECT_FALSE(parseMakefile("\techo orphan\n", mf, err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(MakeExec, RebuildOnlyWhenStale)
{
    Browsix bx;
    bx.rootFs().writeFile("/home/Makefile",
                          std::string("out: in\n\tcat in > out\n"));
    bx.rootFs().writeFile("/home/in", std::string("v1\n"));
    auto r = bx.run("cd /home && /usr/bin/make && cat out");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_NE(r.out.find("v1"), std::string::npos);
    // Second run: up to date, no rebuild.
    r = bx.run("cd /home && /usr/bin/make");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_NE(r.out.find("up to date"), std::string::npos) << r.out;
    // Touch the dep: rebuilds.
    r = bx.run("cd /home && echo v2 > in && /usr/bin/make && cat out");
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_NE(r.out.find("v2"), std::string::npos);
}

TEST(MakeExec, FailingCommandStopsWithError2)
{
    Browsix bx;
    bx.rootFs().writeFile("/home/Makefile",
                          std::string("t:\n\tfalse\n\techo never\n"));
    auto r = bx.run("cd /home && /usr/bin/make");
    EXPECT_EQ(r.exitCode(), 2);
    EXPECT_NE(r.err.find("Error 1"), std::string::npos);
    EXPECT_EQ(r.out.find("never"), std::string::npos);
}

TEST(MakeExec, MissingRuleIsError)
{
    Browsix bx;
    bx.rootFs().writeFile("/home/Makefile",
                          std::string("a: missing-dep\n\techo x\n"));
    auto r = bx.run("cd /home && /usr/bin/make");
    EXPECT_EQ(r.exitCode(), 2);
    EXPECT_NE(r.err.find("No rule to make target"), std::string::npos);
}

TEST(MakeExec, DependencyChainBuildsInOrder)
{
    Browsix bx;
    bx.rootFs().writeFile(
        "/home/Makefile",
        std::string("final: mid\n\tcat mid > final\n"
                    "mid: src\n\tcat src > mid\n"));
    bx.rootFs().writeFile("/home/src", std::string("origin\n"));
    auto r = bx.run("cd /home && /usr/bin/make && cat final");
    EXPECT_EQ(r.exitCode(), 0) << r.err;
    EXPECT_NE(r.out.find("origin"), std::string::npos);
}

// ---------- TeX engines ----------

namespace {

struct TexRig
{
    BootConfig cfg;
    std::unique_ptr<Browsix> bx;

    explicit TexRig(bool sync = true)
    {
        cfg.texlive = true;
        cfg.pdflatexSync = sync;
        bx = std::make_unique<Browsix>(cfg);
    }
};

} // namespace

TEST(Tex, PdflatexProducesPdfAuxLog)
{
    TexRig rig;
    auto r = rig.bx->run("cd /home && /usr/bin/pdflatex main.tex");
    EXPECT_EQ(r.exitCode(), 0) << r.out;
    for (const char *f : {"/home/main.pdf", "/home/main.aux",
                          "/home/main.log"}) {
        bfs::Stat st;
        EXPECT_EQ(rig.bx->fs().statSync(f, st), 0) << f;
        EXPECT_GT(st.size, 0u) << f;
    }
    bfs::Buffer pdf;
    rig.bx->fs().readFileSync("/home/main.pdf", pdf);
    EXPECT_EQ(std::string(pdf.begin(), pdf.begin() + 8), "%PDF-1.5");
}

TEST(Tex, MissingPackageFailsWithLatexError)
{
    TexRig rig;
    rig.bx->rootFs().writeFile(
        "/home/bad.tex",
        std::string("\\documentclass{article}\n"
                    "\\usepackage{does-not-exist}\n"
                    "\\begin{document}x\\end{document}\n"));
    auto r = rig.bx->run("cd /home && /usr/bin/pdflatex bad.tex");
    EXPECT_EQ(r.exitCode(), 1);
    EXPECT_NE(r.out.find("does-not-exist"), std::string::npos)
        << "the error (shown to the user per §2.1) must name the file";
}

TEST(Tex, BibtexConsumesAuxProducesBbl)
{
    TexRig rig;
    auto r = rig.bx->run(
        "cd /home && /usr/bin/pdflatex main.tex && /usr/bin/bibtex main");
    EXPECT_EQ(r.exitCode(), 0) << r.out;
    bfs::Buffer bbl;
    ASSERT_EQ(rig.bx->fs().readFileSync("/home/main.bbl", bbl), 0);
    std::string s(bbl.begin(), bbl.end());
    EXPECT_NE(s.find("\\bibitem{browsix}"), std::string::npos);
    EXPECT_NE(s.find("Powers, Bobby"), std::string::npos);
}

TEST(Tex, BibtexWithoutAuxFails)
{
    TexRig rig;
    auto r = rig.bx->run("cd /home && /usr/bin/bibtex nothere");
    EXPECT_EQ(r.exitCode(), 2);
}

TEST(Tex, MissingCitationWarnsAndExits1)
{
    TexRig rig;
    rig.bx->rootFs().writeFile(
        "/home/c.tex", std::string("\\documentclass{article}\n"
                                   "\\begin{document}\n"
                                   "\\cite{ghost}\n"
                                   "\\bibliography{main}\n"
                                   "\\end{document}\n"));
    auto r = rig.bx->run(
        "cd /home && /usr/bin/pdflatex c.tex && /usr/bin/bibtex c");
    EXPECT_EQ(r.exitCode(), 1);
    EXPECT_NE(r.out.find("ghost"), std::string::npos);
}

TEST(Tex, LazyFetchesOnlyNeededFiles)
{
    TexRig rig;
    rig.bx->run("cd /home && /usr/bin/pdflatex main.tex");
    auto *http = rig.bx->texliveHttp();
    ASSERT_NE(http, nullptr);
    // The store holds ~70+ files; a build touches ~25.
    EXPECT_GT(http->fetchCount(), 5u);
    EXPECT_LT(http->fetchCount(), 40u)
        << "lazy loading must not sweep the whole distribution";
}

TEST(Tex, TransitivePackageRequiresAreFetched)
{
    TexRig rig;
    // hyperref requires url + keyval; all three must land in the cache.
    rig.bx->run("cd /home && /usr/bin/pdflatex main.tex");
    std::string log;
    bfs::Buffer buf;
    rig.bx->fs().readFileSync("/home/main.log", buf);
    log.assign(buf.begin(), buf.end());
    // 1 cls + clo + 5 named pkgs + deps(keyval,amstext,amsbsy,graphics,
    // url) + 12 fonts = 22+
    EXPECT_NE(log.find("files read"), std::string::npos);
}

// ---------- meme pipeline ----------

TEST(Image, BimgRoundtrip)
{
    Image img = makeTemplateImage(16, 8, 3);
    auto bytes = encodeBimg(img);
    Image out;
    ASSERT_TRUE(decodeBimg(bytes, out));
    EXPECT_EQ(out.w, 16);
    EXPECT_EQ(out.h, 8);
    EXPECT_EQ(out.rgba, img.rgba);
}

TEST(Image, BimgRejectsGarbage)
{
    Image out;
    EXPECT_FALSE(decodeBimg({1, 2, 3}, out));
    std::vector<uint8_t> truncated = encodeBimg(makeTemplateImage(8, 8, 1));
    truncated.resize(20);
    EXPECT_FALSE(decodeBimg(truncated, out));
}

TEST(Image, DrawTextChangesPixelsIdenticallyForBothInt64s)
{
    Image a = makeTemplateImage(120, 60, 9);
    Image b = a;
    drawMemeText<int64_t>(a, "HELLO", 60, 30, 2);
    drawMemeText<rt::Int64>(b, "HELLO", 60, 30, 2);
    EXPECT_EQ(a.rgba, b.rgba)
        << "int64 emulation must not change rendering results";
    EXPECT_NE(a.rgba, makeTemplateImage(120, 60, 9).rgba)
        << "text must actually draw";
}

TEST(Image, VignetteAgreesAcrossInt64s)
{
    Image a = makeTemplateImage(64, 48, 5);
    Image b = a;
    applyVignette<int64_t>(a);
    applyVignette<rt::Int64>(b);
    EXPECT_EQ(a.rgba, b.rgba);
}

TEST(Png, Crc32KnownValue)
{
    const char *s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const uint8_t *>(s), 9), 0xCBF43926u);
}

TEST(Png, Adler32KnownValue)
{
    // adler32("Wikipedia") = 0x11E60398
    const char *s = "Wikipedia";
    EXPECT_EQ(adler32(reinterpret_cast<const uint8_t *>(s), 9),
              0x11E60398u);
}

TEST(Png, EncodeValidates)
{
    Image img = makeTemplateImage(70, 40, 2);
    auto png = encodePng(img);
    EXPECT_TRUE(validatePng(png));
    png[30] ^= 0xFF; // corrupt IHDR payload
    EXPECT_FALSE(validatePng(png));
}

TEST(Png, LargeImageUsesMultipleDeflateBlocks)
{
    Image img = makeTemplateImage(300, 200, 4); // raw > 65535
    auto png = encodePng(img);
    EXPECT_TRUE(validatePng(png));
    EXPECT_GT(png.size(), 240000u);
}

TEST(Meme, HandlerServesListAndPng)
{
    MemeTemplates t;
    t.images["x"] = makeTemplateImage(80, 60, 1);
    net::HttpRequest req;
    req.target = "/api/images";
    auto resp = handleMemeRequest<int64_t>(t, req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(std::string(resp.body.begin(), resp.body.end()), "[\"x\"]");

    req.target = "/api/meme?template=x&top=HI&bottom=LOW";
    resp = handleMemeRequest<int64_t>(t, req);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.header("content-type"), "image/png");
    EXPECT_TRUE(validatePng(resp.body));
}

TEST(Meme, UnknownTemplateIs404)
{
    MemeTemplates t;
    net::HttpRequest req;
    req.target = "/api/meme?template=nope";
    EXPECT_EQ(handleMemeRequest<int64_t>(t, req).status, 404);
    req.target = "/bogus";
    EXPECT_EQ(handleMemeRequest<int64_t>(t, req).status, 404);
}

TEST(Meme, EmulatedInt64RenderingIsSlower)
{
    MemeTemplates t;
    t.images["x"] = makeTemplateImage(320, 240, 1);
    net::HttpRequest req;
    req.target = "/api/meme?template=x&top=SLOW&bottom=PATH";
    int64_t t0 = jsvm::nowUs();
    handleMemeRequest<int64_t>(t, req);
    int64_t native_us = jsvm::nowUs() - t0;
    t0 = jsvm::nowUs();
    handleMemeRequest<rt::Int64>(t, req);
    int64_t emulated_us = jsvm::nowUs() - t0;
    EXPECT_GT(emulated_us, native_us * 2)
        << "the paper's int64-emulation slowdown must be reproducible ("
        << native_us << "us vs " << emulated_us << "us)";
}

// ---------- registry / bundles ----------

TEST(Registry, BundleRoundtripAndPadding)
{
    registerAllPrograms();
    auto &reg = ProgramRegistry::instance();
    auto bundle = reg.bundleFor("dash");
    EXPECT_EQ(ProgramRegistry::programFromBundle(bundle), "dash");
    EXPECT_GE(bundle.size(), 1200u * 1024u)
        << "bundles must carry their compiled-JS size for parse costs";
    EXPECT_EQ(ProgramRegistry::programFromBundle({1, 2, 3}), "");
}

TEST(Registry, NodeBundleIsTheLargest)
{
    registerAllPrograms();
    auto &reg = ProgramRegistry::instance();
    EXPECT_GT(reg.find("node")->bundleKb, reg.find("dash")->bundleKb);
}

// ---------- native baseline helpers ----------

TEST(NativeUtils, Sha1AndWcAgreeWithBrowsixVersions)
{
    Browsix bx;
    bx.rootFs().writeFile("/data/f.txt", std::string("one two\nthree\n"));
    std::string native = nativeSha1sum(bx.fs(), "/data/f.txt");
    auto r = bx.run("sha1sum /data/f.txt");
    EXPECT_EQ(r.exitCode(), 0);
    // Same digest, same formatting.
    EXPECT_EQ(r.out, native);
    EXPECT_EQ(nativeWc(bx.fs(), "/data/f.txt"), "2 3 14 /data/f.txt\n");
    auto rw = bx.run("wc /data/f.txt");
    EXPECT_EQ(rw.out, "2 3 14 /data/f.txt\n");
}

TEST(NativeUtils, LsMatchesBrowsixLs)
{
    Browsix bx;
    bx.rootFs().mkdirAll("/data/d");
    bx.rootFs().writeFile("/data/a", std::string("1"));
    bx.rootFs().writeFile("/data/b", std::string("22"));
    EXPECT_EQ(nativeLs(bx.fs(), "/data", false), "a\nb\nd\n");
    auto r = bx.run("ls /data");
    EXPECT_EQ(r.out, "a\nb\nd\n");
}

// ---------- els (ring-batched ls) ----------

TEST(Els, ListsAndRecursesWithBatchedStats)
{
    Browsix bx;
    bx.rootFs().mkdirAll("/tree/sub");
    bx.rootFs().writeFile("/tree/b.txt", std::string(3, 'b'));
    bx.rootFs().writeFile("/tree/a.txt", std::string(5, 'a'));
    bx.rootFs().writeFile("/tree/sub/c.txt", std::string(7, 'c'));

    // Plain listing: sorted names.
    auto r = bx.runArgv({"/usr/bin/els", "/tree"});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "a.txt\nb.txt\nsub\n");

    // Long + recursive: per-entry lstat data (type char + size), and the
    // subdirectory is walked.
    r = bx.runArgv({"/usr/bin/els", "-lR", "/tree"});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_NE(r.out.find("/tree:\n"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("-rw-r--r-- 1 5 a.txt"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("drw-r--r-- 1"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("/tree/sub:\n"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("-rw-r--r-- 1 7 c.txt"), std::string::npos)
        << r.out;
    EXPECT_GT(bx.kernel().stats().ringSyscallCount, 0u)
        << "els must run on the ring convention";

    // --serial must produce byte-identical output (it is the A/B
    // baseline for the bench, not a different ls).
    auto serial = bx.runArgv({"/usr/bin/els", "-lR", "--serial", "/tree"});
    EXPECT_EQ(serial.exitCode(), 0);
    EXPECT_EQ(serial.out, r.out);

    // A missing operand reports and fails.
    r = bx.runArgv({"/usr/bin/els", "/nope"});
    EXPECT_EQ(r.exitCode(), 2);
}

// ---------- ecat (zero-copy vectored cat) ----------

TEST(Ecat, StreamsByteExactThroughPreadWindowsAndWritev)
{
    Browsix bx;
    // Big enough for several 8x16KiB rounds plus a ragged tail, with
    // content that catches any reordered or dropped chunk.
    std::string big;
    big.reserve(300 * 1024);
    for (int i = 0; big.size() < 300 * 1024; i++)
        big += "line " + std::to_string(i * 2654435761u) + "\n";
    bx.rootFs().writeFile("/data/big.txt", big);
    bx.rootFs().writeFile("/data/small.txt", std::string("tiny\n"));
    bx.rootFs().writeFile("/data/empty.txt", std::string());

    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ecat", "/data/big.txt"}, 120000);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out.size(), big.size());
    EXPECT_EQ(r.out, big) << "batched ecat must reproduce the file";
    auto after = bx.kernel().stats();
    EXPECT_GT(after.ringSyscallCount, before.ringSyscallCount)
        << "ecat must run on the ring convention";
    EXPECT_GT(after.zeroCopyCompletions, before.zeroCopyCompletions)
        << "pread windows and writev gathers are the zero-copy path";

    // --serial is the A/B baseline: byte-identical output.
    auto serial =
        bx.runArgv({"/usr/bin/ecat", "--serial", "/data/big.txt"}, 120000);
    EXPECT_EQ(serial.exitCode(), 0);
    EXPECT_EQ(serial.out, r.out);

    // Sub-chunk and empty files; multiple operands concatenate in order.
    r = bx.runArgv({"/usr/bin/ecat", "/data/small.txt", "/data/empty.txt",
                    "/data/small.txt"});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "tiny\ntiny\n");

    // Errors: missing operand, unreadable file (later operands still
    // stream).
    r = bx.runArgv({"/usr/bin/ecat"});
    EXPECT_EQ(r.exitCode(), 2);
    r = bx.runArgv({"/usr/bin/ecat", "/nope", "/data/small.txt"});
    EXPECT_EQ(r.exitCode(), 2);
    EXPECT_EQ(r.out, "tiny\n");
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}
