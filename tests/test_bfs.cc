/**
 * @file
 * Filesystem tests: paths, in-memory backend, HTTP-lazy backend (with
 * cache + network counters), overlay (copy-up, whiteouts, locking,
 * lazy-vs-eager), VFS mounts and symlink resolution, plus a randomized
 * model-based property test of the overlay.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>

#include "bfs/http_backend.h"
#include "bfs/inmem.h"
#include "bfs/overlay.h"
#include "bfs/path.h"
#include "bfs/vfs.h"
#include "jsvm/util.h"

using namespace browsix;
using namespace browsix::bfs;

namespace {

/** Synchronous helpers for inline backends. */
int
statOf(Backend &b, const std::string &path, Stat *out = nullptr)
{
    int result = -1;
    b.stat(path, [&](int err, const Stat &st) {
        result = err;
        if (out)
            *out = st;
    });
    return result;
}

int
writeWhole(Backend &b, const std::string &path, const std::string &data)
{
    int result = -1;
    b.open(path, flags::CREAT | flags::TRUNC | flags::WRONLY, 0644,
           [&](int err, OpenFilePtr f) {
               if (err) {
                   result = err;
                   return;
               }
               f->pwrite(0, reinterpret_cast<const uint8_t *>(data.data()),
                         data.size(),
                         [&](int werr, size_t) { result = werr; });
           });
    return result;
}

int
readWhole(Backend &b, const std::string &path, std::string &out)
{
    int result = -1;
    b.open(path, flags::RDONLY, 0, [&](int err, OpenFilePtr f) {
        if (err) {
            result = err;
            return;
        }
        f->fstat([&, f](int serr, const Stat &st) {
            if (serr) {
                result = serr;
                return;
            }
            f->pread(0, st.size, [&](int rerr, BufferPtr data) {
                result = rerr;
                if (!rerr)
                    out.assign(data->begin(), data->end());
            });
        });
    });
    return result;
}

std::vector<std::string>
namesOf(Backend &b, const std::string &path, int *err_out = nullptr)
{
    std::vector<std::string> names;
    b.readdir(path, [&](int err, std::vector<DirEntry> es) {
        if (err_out)
            *err_out = err;
        for (auto &e : es)
            names.push_back(e.name);
    });
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace

// ---------- path helpers ----------

struct PathCase
{
    const char *in;
    const char *want;
};

class PathNormalize : public ::testing::TestWithParam<PathCase>
{
};

TEST_P(PathNormalize, Normalizes)
{
    EXPECT_EQ(normalizePath(GetParam().in), GetParam().want);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, PathNormalize,
    ::testing::Values(PathCase{"/", "/"}, PathCase{"", "/"},
                      PathCase{"/a/b", "/a/b"}, PathCase{"a/b", "/a/b"},
                      PathCase{"/a//b/", "/a/b"},
                      PathCase{"/a/./b", "/a/b"},
                      PathCase{"/a/../b", "/b"},
                      PathCase{"/../..", "/"},
                      PathCase{"/a/b/../../c", "/c"},
                      PathCase{"/a/b/..", "/a"}));

TEST(Path, JoinRespectsAbsoluteRhs)
{
    EXPECT_EQ(joinPath("/a/b", "c"), "/a/b/c");
    EXPECT_EQ(joinPath("/a/b", "/c"), "/c");
    EXPECT_EQ(joinPath("/a", "../c"), "/c");
}

TEST(Path, DirnameBasename)
{
    EXPECT_EQ(bfs::dirname("/a/b/c"), "/a/b");
    EXPECT_EQ(bfs::dirname("/a"), "/");
    EXPECT_EQ(bfs::dirname("/"), "/");
    EXPECT_EQ(bfs::basename("/a/b/c"), "c");
    EXPECT_EQ(bfs::basename("/"), "");
}

TEST(Path, PrefixMatchingIsComponentWise)
{
    EXPECT_TRUE(pathHasPrefix("/a/b/c", "/a/b"));
    EXPECT_TRUE(pathHasPrefix("/a/b", "/a/b"));
    EXPECT_FALSE(pathHasPrefix("/a/bc", "/a/b"))
        << "prefix must end at a component boundary";
    EXPECT_TRUE(pathHasPrefix("/anything", "/"));
}

// ".." must never climb above the root, no matter how it is spelled, and
// trailing/doubled slashes must collapse — these are the inputs a hostile
// or sloppy process hands the VFS.
INSTANTIATE_TEST_SUITE_P(
    PathEdges, PathNormalize,
    ::testing::Values(PathCase{"/../a", "/a"}, PathCase{"..", "/"},
                      PathCase{"../..", "/"},
                      PathCase{"/a/../../..", "/"},
                      PathCase{"/a/../../etc/passwd", "/etc/passwd"},
                      PathCase{"./..", "/"}, PathCase{"a/..", "/"},
                      PathCase{"/a/b/", "/a/b"}, PathCase{"/a/", "/a"},
                      PathCase{"///", "/"}, PathCase{"/a//b//", "/a/b"},
                      PathCase{"/a/./", "/a"},
                      PathCase{"/..//../b/", "/b"}));

TEST(Path, TrailingSlashVariantsAgree)
{
    EXPECT_EQ(bfs::dirname("/a/b/"), "/a");
    EXPECT_EQ(bfs::basename("/a/b/"), "b");
    EXPECT_EQ(joinPath("/a/b/", "../c"), "/a/c");
    EXPECT_EQ(joinPath("/a/", "b/"), "/a/b");
    EXPECT_EQ(joinPath("/", ".."), "/");
    EXPECT_EQ(joinPath("/a", "..//..//.."), "/");
    EXPECT_EQ(splitPath("///a//b/"),
              (std::vector<std::string>{"a", "b"}));
}

// ---------- in-memory backend ----------

TEST(InMem, WriteThenReadBack)
{
    InMemBackend fs;
    ASSERT_EQ(writeWhole(fs, "/f.txt", "hello"), 0);
    std::string got;
    ASSERT_EQ(readWhole(fs, "/f.txt", got), 0);
    EXPECT_EQ(got, "hello");
}

TEST(InMem, OpenMissingWithoutCreatFails)
{
    InMemBackend fs;
    int err = -1;
    fs.open("/nope", flags::RDONLY, 0,
            [&](int e, OpenFilePtr) { err = e; });
    EXPECT_EQ(err, ENOENT);
}

TEST(InMem, ExclFailsOnExisting)
{
    InMemBackend fs;
    writeWhole(fs, "/f", "x");
    int err = -1;
    fs.open("/f", flags::CREAT | flags::EXCL | flags::WRONLY, 0644,
            [&](int e, OpenFilePtr) { err = e; });
    EXPECT_EQ(err, EEXIST);
}

TEST(InMem, TruncClearsContent)
{
    InMemBackend fs;
    writeWhole(fs, "/f", "longcontent");
    writeWhole(fs, "/f", "x"); // helper uses TRUNC
    std::string got;
    readWhole(fs, "/f", got);
    EXPECT_EQ(got, "x");
}

TEST(InMem, PreadBeyondEofIsEmpty)
{
    InMemBackend fs;
    writeWhole(fs, "/f", "abc");
    fs.open("/f", flags::RDONLY, 0, [&](int, OpenFilePtr f) {
        f->pread(100, 10, [&](int err, BufferPtr data) {
            EXPECT_EQ(err, 0);
            EXPECT_TRUE(data->empty());
        });
    });
}

TEST(InMem, PwriteExtendsWithZeros)
{
    InMemBackend fs;
    writeWhole(fs, "/f", "ab");
    fs.open("/f", flags::WRONLY, 0, [&](int, OpenFilePtr f) {
        uint8_t b = 'z';
        f->pwrite(5, &b, 1, [](int, size_t) {});
    });
    std::string got;
    readWhole(fs, "/f", got);
    EXPECT_EQ(got, std::string("ab\0\0\0z", 6));
}

TEST(InMem, MkdirRmdirSemantics)
{
    InMemBackend fs;
    int err = -1;
    fs.mkdir("/d", 0755, [&](int e) { err = e; });
    EXPECT_EQ(err, 0);
    fs.mkdir("/d", 0755, [&](int e) { err = e; });
    EXPECT_EQ(err, EEXIST);
    writeWhole(fs, "/d/f", "x");
    fs.rmdir("/d", [&](int e) { err = e; });
    EXPECT_EQ(err, ENOTEMPTY);
    fs.unlink("/d/f", [&](int e) { err = e; });
    EXPECT_EQ(err, 0);
    fs.rmdir("/d", [&](int e) { err = e; });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(statOf(fs, "/d"), ENOENT);
}

TEST(InMem, MkdirWithoutParentFails)
{
    InMemBackend fs;
    int err = -1;
    fs.mkdir("/a/b/c", 0755, [&](int e) { err = e; });
    EXPECT_EQ(err, ENOENT);
    EXPECT_EQ(fs.mkdirAll("/a/b/c"), 0);
    EXPECT_EQ(statOf(fs, "/a/b/c"), 0);
}

TEST(InMem, UnlinkedFileStaysReadableThroughOpenHandle)
{
    InMemBackend fs;
    writeWhole(fs, "/f", "data");
    OpenFilePtr held;
    fs.open("/f", flags::RDONLY, 0,
            [&](int, OpenFilePtr f) { held = f; });
    int err = -1;
    fs.unlink("/f", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    held->pread(0, 4, [&](int rerr, BufferPtr data) {
        EXPECT_EQ(rerr, 0);
        EXPECT_EQ(data->size(), 4u);
    });
}

TEST(InMem, RenameMovesAndReplaces)
{
    InMemBackend fs;
    writeWhole(fs, "/a", "A");
    writeWhole(fs, "/b", "B");
    int err = -1;
    fs.rename("/a", "/b", [&](int e) { err = e; });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(statOf(fs, "/a"), ENOENT);
    std::string got;
    readWhole(fs, "/b", got);
    EXPECT_EQ(got, "A");
}

TEST(InMem, SymlinkReadlink)
{
    InMemBackend fs;
    writeWhole(fs, "/target", "T");
    int err = -1;
    fs.symlink("/target", "/link", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    std::string t;
    fs.readlink("/link", [&](int e, const std::string &s) {
        err = e;
        t = s;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(t, "/target");
    Stat st;
    ASSERT_EQ(statOf(fs, "/link", &st), 0);
    EXPECT_TRUE(st.isSymlink()) << "backend stat is lstat-like";
}

TEST(InMem, ReaddirListsEntriesWithTypes)
{
    InMemBackend fs;
    fs.mkdirAll("/d/sub");
    fs.writeFile("/d/f", std::string("x"));
    std::vector<DirEntry> entries;
    fs.readdir("/d", [&](int, std::vector<DirEntry> es) { entries = es; });
    ASSERT_EQ(entries.size(), 2u);
    std::map<std::string, FileType> types;
    for (auto &e : entries)
        types[e.name] = e.type;
    EXPECT_EQ(types["sub"], FileType::Directory);
    EXPECT_EQ(types["f"], FileType::Regular);
}

TEST(InMem, UtimesUpdatesStat)
{
    InMemBackend fs;
    fs.writeFile("/f", std::string("x"));
    int err = -1;
    fs.utimes("/f", 111, 222, [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    Stat st;
    statOf(fs, "/f", &st);
    EXPECT_EQ(st.atimeUs, 111);
    EXPECT_EQ(st.mtimeUs, 222);
}

// ---------- HTTP backend ----------

TEST(HttpBackend, ReadOnlySemantics)
{
    auto store = std::make_shared<HttpStore>();
    store->put("/f", std::string("remote"));
    auto cache = std::make_shared<BrowserHttpCache>();
    HttpBackend fs(store, cache, nullptr, NetworkParams{});
    EXPECT_TRUE(fs.readOnly());
    int err = -1;
    fs.open("/f", flags::WRONLY, 0, [&](int e, OpenFilePtr) { err = e; });
    EXPECT_EQ(err, EROFS);
    fs.unlink("/f", [&](int e) { err = e; });
    EXPECT_EQ(err, EROFS);
}

TEST(HttpBackend, FetchesAndCaches)
{
    auto store = std::make_shared<HttpStore>();
    store->put("/dir/f", std::string("remote-data"));
    auto cache = std::make_shared<BrowserHttpCache>();
    HttpBackend fs(store, cache, nullptr, NetworkParams{});

    std::string got;
    EXPECT_EQ(readWhole(fs, "/dir/f", got), 0);
    EXPECT_EQ(got, "remote-data");
    uint64_t fetches_after_first = fs.fetchCount();
    got.clear();
    EXPECT_EQ(readWhole(fs, "/dir/f", got), 0);
    EXPECT_EQ(fs.fetchCount(), fetches_after_first)
        << "second access must hit the browser cache";
    EXPECT_GE(cache->hits, 1u);
}

TEST(HttpBackend, StatAndReaddirFromIndex)
{
    auto store = std::make_shared<HttpStore>();
    store->put("/a/x", std::string("1234"));
    store->put("/a/y", std::string("56"));
    store->put("/b", std::string("7"));
    auto cache = std::make_shared<BrowserHttpCache>();
    HttpBackend fs(store, cache, nullptr, NetworkParams{});

    Stat st;
    ASSERT_EQ(statOf(fs, "/a/x", &st), 0);
    EXPECT_EQ(st.size, 4u);
    ASSERT_EQ(statOf(fs, "/a", &st), 0);
    EXPECT_TRUE(st.isDir());
    EXPECT_EQ(namesOf(fs, "/a"), (std::vector<std::string>{"x", "y"}));
    EXPECT_EQ(namesOf(fs, "/"), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(statOf(fs, "/missing"), ENOENT);
}

TEST(HttpBackend, LatencyIsScheduledOnLoop)
{
    auto store = std::make_shared<HttpStore>();
    store->put("/f", std::string(1000, 'x'));
    auto cache = std::make_shared<BrowserHttpCache>();
    jsvm::EventLoop loop;
    HttpBackend fs(store, cache, &loop,
                   NetworkParams{/*rttUs=*/3000, /*bytesPerUs=*/1.0});

    bool done = false;
    int64_t t0 = jsvm::nowUs();
    fs.open("/f", flags::RDONLY, 0, [&](int err, OpenFilePtr) {
        EXPECT_EQ(err, 0);
        done = true;
    });
    EXPECT_FALSE(done) << "completion must be asynchronous";
    while (!done && jsvm::nowUs() - t0 < 2000000)
        loop.pumpOne(true);
    EXPECT_TRUE(done);
    // index fetch + file fetch, each >= rtt
    EXPECT_GE(jsvm::nowUs() - t0, 6000);
}

// ---------- overlay ----------

struct OverlayRig
{
    std::shared_ptr<InMemBackend> upper = std::make_shared<InMemBackend>();
    std::shared_ptr<InMemBackend> lower = std::make_shared<InMemBackend>();
    std::shared_ptr<OverlayBackend> fs;

    explicit OverlayRig(bool lazy = true)
    {
        lower->writeFile("/ro.txt", std::string("read-only"));
        lower->mkdirAll("/pkg");
        lower->writeFile("/pkg/a.sty", std::string("AAA"));
        lower->writeFile("/pkg/b.sty", std::string("BBB"));
        fs = std::make_shared<OverlayBackend>(
            upper, lower, OverlayBackend::Options(lazy));
    }
};

TEST(Overlay, ReadsFallThroughToLower)
{
    OverlayRig rig;
    std::string got;
    EXPECT_EQ(readWhole(*rig.fs, "/ro.txt", got), 0);
    EXPECT_EQ(got, "read-only");
}

TEST(Overlay, WriteCopiesUpAndShadowsLower)
{
    OverlayRig rig;
    int err = -1;
    rig.fs->open("/ro.txt", flags::WRONLY, 0, [&](int e, OpenFilePtr f) {
        err = e;
        uint8_t b = 'X';
        f->pwrite(0, &b, 1, [](int, size_t) {});
    });
    ASSERT_EQ(err, 0);
    EXPECT_EQ(rig.fs->copyUpCount(), 1u);
    std::string got;
    readWhole(*rig.fs, "/ro.txt", got);
    EXPECT_EQ(got, "Xead-only");
    // lower unchanged
    std::string l;
    readWhole(*rig.lower, "/ro.txt", l);
    EXPECT_EQ(l, "read-only");
}

TEST(Overlay, TruncOpenSkipsCopyUp)
{
    OverlayRig rig;
    writeWhole(*rig.fs, "/ro.txt", "new");
    EXPECT_EQ(rig.fs->copyUpCount(), 0u)
        << "O_TRUNC discards contents; copying them up is wasted work";
    std::string got;
    readWhole(*rig.fs, "/ro.txt", got);
    EXPECT_EQ(got, "new");
}

TEST(Overlay, UnlinkLowerFileCreatesWhiteout)
{
    OverlayRig rig;
    int err = -1;
    rig.fs->unlink("/ro.txt", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    EXPECT_EQ(statOf(*rig.fs, "/ro.txt"), ENOENT);
    // still present underneath
    EXPECT_EQ(statOf(*rig.lower, "/ro.txt"), 0);
    // and absent from listings
    auto names = namesOf(*rig.fs, "/");
    EXPECT_EQ(std::count(names.begin(), names.end(), "ro.txt"), 0);
}

TEST(Overlay, RecreateAfterUnlink)
{
    OverlayRig rig;
    rig.fs->unlink("/ro.txt", [](int) {});
    EXPECT_EQ(writeWhole(*rig.fs, "/ro.txt", "reborn"), 0);
    std::string got;
    readWhole(*rig.fs, "/ro.txt", got);
    EXPECT_EQ(got, "reborn");
}

TEST(Overlay, ReaddirMergesLayers)
{
    OverlayRig rig;
    rig.upper->mkdirAll("/pkg");
    rig.upper->writeFile("/pkg/c.sty", std::string("CCC"));
    EXPECT_EQ(namesOf(*rig.fs, "/pkg"),
              (std::vector<std::string>{"a.sty", "b.sty", "c.sty"}));
}

TEST(Overlay, ShadowedFilePrefersUpper)
{
    OverlayRig rig;
    rig.upper->mkdirAll("/pkg");
    rig.upper->writeFile("/pkg/a.sty", std::string("UPPER"));
    std::string got;
    readWhole(*rig.fs, "/pkg/a.sty", got);
    EXPECT_EQ(got, "UPPER");
    auto names = namesOf(*rig.fs, "/pkg");
    EXPECT_EQ(std::count(names.begin(), names.end(), "a.sty"), 1)
        << "no duplicate entries for shadowed files";
}

TEST(Overlay, RenameFromLowerLeavesWhiteout)
{
    OverlayRig rig;
    int err = -1;
    rig.fs->rename("/ro.txt", "/moved.txt", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    EXPECT_EQ(statOf(*rig.fs, "/ro.txt"), ENOENT);
    std::string got;
    readWhole(*rig.fs, "/moved.txt", got);
    EXPECT_EQ(got, "read-only");
}

TEST(Overlay, RenameUpperFileIntoLowerOnlyDirectory)
{
    // The destination's parent exists only in the underlay: rename must
    // shadow the directory chain into the writable layer first.
    OverlayRig rig;
    writeWhole(*rig.fs, "/new.txt", "fresh");
    int err = -1;
    rig.fs->rename("/new.txt", "/pkg/new.sty", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    std::string got;
    EXPECT_EQ(readWhole(*rig.fs, "/pkg/new.sty", got), 0);
    EXPECT_EQ(got, "fresh");
    EXPECT_EQ(statOf(*rig.fs, "/new.txt"), ENOENT);
    // The underlay saw none of it.
    EXPECT_EQ(statOf(*rig.lower, "/pkg/new.sty"), ENOENT);
    auto names = namesOf(*rig.fs, "/pkg");
    EXPECT_EQ(std::count(names.begin(), names.end(), "new.sty"), 1);
}

TEST(Overlay, RenameUpperDirectoryIntoLowerOnlyParent)
{
    OverlayRig rig;
    rig.upper->mkdirAll("/d");
    rig.upper->writeFile("/d/f.txt", std::string("inside"));
    int err = -1;
    rig.fs->rename("/d", "/pkg/d", [&](int e) { err = e; });
    ASSERT_EQ(err, 0) << "directory rename must shadow /pkg like a file "
                         "rename does";
    std::string got;
    EXPECT_EQ(readWhole(*rig.fs, "/pkg/d/f.txt", got), 0);
    EXPECT_EQ(got, "inside");
    EXPECT_EQ(statOf(*rig.fs, "/d"), ENOENT);
}

TEST(Overlay, RenameShadowedFileHidesLowerCopy)
{
    OverlayRig rig;
    rig.upper->mkdirAll("/pkg");
    rig.upper->writeFile("/pkg/a.sty", std::string("UPPER"));
    int err = -1;
    rig.fs->rename("/pkg/a.sty", "/pkg/z.sty", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    std::string got;
    readWhole(*rig.fs, "/pkg/z.sty", got);
    EXPECT_EQ(got, "UPPER") << "the upper version moves";
    EXPECT_EQ(statOf(*rig.fs, "/pkg/a.sty"), ENOENT)
        << "the lower copy must not reappear at the old name";
    EXPECT_EQ(statOf(*rig.lower, "/pkg/a.sty"), 0) << "underlay untouched";
}

TEST(Overlay, RenameOntoExistingLowerTargetShadowsIt)
{
    OverlayRig rig;
    int err = -1;
    rig.fs->rename("/ro.txt", "/pkg/a.sty", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    std::string got;
    readWhole(*rig.fs, "/pkg/a.sty", got);
    EXPECT_EQ(got, "read-only") << "renamed content replaces the target";
    auto names = namesOf(*rig.fs, "/pkg");
    EXPECT_EQ(std::count(names.begin(), names.end(), "a.sty"), 1)
        << "no duplicate entry for the replaced target";
    EXPECT_EQ(statOf(*rig.fs, "/ro.txt"), ENOENT);
}

TEST(Overlay, RenameMissingSourceIsEnoent)
{
    OverlayRig rig;
    int err = -1;
    rig.fs->rename("/nope", "/also-nope", [&](int e) { err = e; });
    EXPECT_EQ(err, ENOENT);
}

TEST(Overlay, UnlinkAfterCrossLayerRenameLeavesNoGhosts)
{
    // Move a lower file, then delete it at the new name: both names must
    // read ENOENT even though the underlay still holds the original.
    OverlayRig rig;
    rig.fs->rename("/ro.txt", "/moved.txt", [](int) {});
    int err = -1;
    rig.fs->unlink("/moved.txt", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    EXPECT_EQ(statOf(*rig.fs, "/moved.txt"), ENOENT);
    EXPECT_EQ(statOf(*rig.fs, "/ro.txt"), ENOENT);
    EXPECT_EQ(statOf(*rig.lower, "/ro.txt"), 0);
    auto names = namesOf(*rig.fs, "/");
    EXPECT_EQ(std::count(names.begin(), names.end(), "moved.txt"), 0);
    EXPECT_EQ(std::count(names.begin(), names.end(), "ro.txt"), 0);
}

TEST(Overlay, UnlinkErrors)
{
    OverlayRig rig;
    int err = -1;
    rig.fs->unlink("/nope", [&](int e) { err = e; });
    EXPECT_EQ(err, ENOENT);
    err = -1;
    rig.fs->unlink("/pkg", [&](int e) { err = e; });
    EXPECT_EQ(err, EISDIR) << "directories take rmdir, not unlink";
}

TEST(Overlay, UnlinkShadowedFileRemovesBothViews)
{
    OverlayRig rig;
    rig.upper->mkdirAll("/pkg");
    rig.upper->writeFile("/pkg/a.sty", std::string("UPPER"));
    int err = -1;
    rig.fs->unlink("/pkg/a.sty", [&](int e) { err = e; });
    ASSERT_EQ(err, 0);
    EXPECT_EQ(statOf(*rig.fs, "/pkg/a.sty"), ENOENT)
        << "neither the upper copy nor the lower copy may survive";
    auto names = namesOf(*rig.fs, "/pkg");
    EXPECT_EQ(std::count(names.begin(), names.end(), "a.sty"), 0);
}

TEST(Overlay, LazyDoesNotTouchLowerAtInit)
{
    // The §3.6 change: BrowserFS originally read every underlay file at
    // initialization; Browsix made it lazy.
    auto store = std::make_shared<HttpStore>();
    for (int i = 0; i < 20; i++)
        store->put("/f" + std::to_string(i), std::string(1000, 'x'));
    auto cache = std::make_shared<BrowserHttpCache>();
    auto http = std::make_shared<HttpBackend>(store, cache, nullptr,
                                              NetworkParams{});
    auto upper = std::make_shared<InMemBackend>();
    OverlayBackend lazy(upper, http, OverlayBackend::Options(true));
    int err = -1;
    lazy.initialize([&](int e) { err = e; });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(http->bytesFetched(), 0u) << "lazy init transfers nothing";
}

TEST(Overlay, EagerInitCopiesEverything)
{
    auto store = std::make_shared<HttpStore>();
    for (int i = 0; i < 20; i++)
        store->put("/f" + std::to_string(i), std::string(1000, 'x'));
    auto cache = std::make_shared<BrowserHttpCache>();
    auto http = std::make_shared<HttpBackend>(store, cache, nullptr,
                                              NetworkParams{});
    auto upper = std::make_shared<InMemBackend>();
    OverlayBackend eager(upper, http, OverlayBackend::Options(false));
    int err = -1;
    eager.initialize([&](int e) { err = e; });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(eager.eagerFilesCopied(), 20u);
    EXPECT_GE(http->bytesFetched(), 20000u);
    std::string got;
    EXPECT_EQ(readWhole(*upper, "/f3", got), 0);
}

TEST(PathLocks, SerializesCriticalSections)
{
    PathLockManager locks;
    std::vector<int> order;
    PathLockManager::Release rel1;
    locks.withLock("/p", [&](PathLockManager::Release r) {
        order.push_back(1);
        rel1 = r; // hold the lock
    });
    locks.withLock("/p", [&](PathLockManager::Release r) {
        order.push_back(2);
        r();
    });
    locks.withLock("/q", [&](PathLockManager::Release r) {
        order.push_back(3); // different path: immediate
        r();
    });
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
    EXPECT_EQ(locks.contentionCount(), 1u);
    rel1(); // now the queued /p holder runs
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// ---------- VFS ----------

TEST(Vfs, MountResolutionPrefersLongestPrefix)
{
    auto root = std::make_shared<InMemBackend>();
    auto sub = std::make_shared<InMemBackend>();
    root->writeFile("/f", std::string("root"));
    sub->writeFile("/f", std::string("sub"));
    Vfs vfs;
    vfs.mount("/", root);
    vfs.mount("/sub", sub);
    Buffer data;
    ASSERT_EQ(vfs.readFileSync("/f", data), 0);
    EXPECT_EQ(std::string(data.begin(), data.end()), "root");
    ASSERT_EQ(vfs.readFileSync("/sub/f", data), 0);
    EXPECT_EQ(std::string(data.begin(), data.end()), "sub");
}

TEST(Vfs, SubmountAppearsInParentListing)
{
    auto root = std::make_shared<InMemBackend>();
    auto sub = std::make_shared<InMemBackend>();
    Vfs vfs;
    vfs.mount("/", root);
    vfs.mount("/texlive", sub);
    std::vector<std::string> names;
    vfs.readdir("/", [&](int, std::vector<DirEntry> es) {
        for (auto &e : es)
            names.push_back(e.name);
    });
    EXPECT_NE(std::find(names.begin(), names.end(), "texlive"),
              names.end());
}

TEST(Vfs, StatFollowsSymlinksLstatDoesNot)
{
    auto root = std::make_shared<InMemBackend>();
    root->writeFile("/target", std::string("T"));
    Vfs vfs;
    vfs.mount("/", root);
    bool done = false;
    vfs.symlink("/target", "/link", [&](int e) {
        EXPECT_EQ(e, 0);
        done = true;
    });
    ASSERT_TRUE(done);
    Stat st;
    ASSERT_EQ(vfs.statSync("/link", st), 0);
    EXPECT_TRUE(st.isFile());
    vfs.lstat("/link", [&](int e, const Stat &lst) {
        EXPECT_EQ(e, 0);
        EXPECT_TRUE(lst.isSymlink());
    });
}

TEST(Vfs, OpenThroughSymlink)
{
    auto root = std::make_shared<InMemBackend>();
    root->writeFile("/bin/dash", std::string("real"));
    Vfs vfs;
    vfs.mount("/", root);
    root->symlink("/bin/dash", "/bin/sh", [](int) {});
    Buffer data;
    ASSERT_EQ(vfs.readFileSync("/bin/sh", data), 0);
    EXPECT_EQ(std::string(data.begin(), data.end()), "real");
}

TEST(Vfs, SymlinkLoopIsDetected)
{
    auto root = std::make_shared<InMemBackend>();
    Vfs vfs;
    vfs.mount("/", root);
    root->symlink("/b", "/a", [](int) {});
    root->symlink("/a", "/b", [](int) {});
    int err = 0;
    vfs.stat("/a", [&](int e, const Stat &) { err = e; });
    EXPECT_EQ(err, ELOOP);
}

TEST(Vfs, CrossBackendRenameIsExdev)
{
    auto root = std::make_shared<InMemBackend>();
    auto sub = std::make_shared<InMemBackend>();
    root->writeFile("/f", std::string("x"));
    Vfs vfs;
    vfs.mount("/", root);
    vfs.mount("/sub", sub);
    int err = 0;
    vfs.rename("/f", "/sub/f", [&](int e) { err = e; });
    EXPECT_EQ(err, EXDEV);
}

// ---------- model-based property test of the overlay ----------

TEST(OverlayProperty, RandomOpsMatchModel)
{
    // The overlay over a pre-populated lower layer must be functionally
    // indistinguishable from a plain mutable filesystem with the same
    // initial content.
    std::mt19937 rng(1234);
    for (int round = 0; round < 20; round++) {
        auto upper = std::make_shared<InMemBackend>();
        auto lower = std::make_shared<InMemBackend>();
        std::map<std::string, std::string> model;
        for (int i = 0; i < 6; i++) {
            std::string name = "/f" + std::to_string(i);
            std::string content = "init" + std::to_string(i);
            lower->writeFile(name, content);
            model[name] = content;
        }
        OverlayBackend fs(upper, lower, OverlayBackend::Options(true));

        for (int step = 0; step < 60; step++) {
            std::string path = "/f" + std::to_string(rng() % 8);
            switch (rng() % 4) {
              case 0: { // write
                std::string content = "v" + std::to_string(step);
                if (writeWhole(fs, path, content) == 0)
                    model[path] = content;
                break;
              }
              case 1: { // unlink
                int err = -1;
                fs.unlink(path, [&](int e) { err = e; });
                EXPECT_EQ(err == 0, model.count(path) == 1)
                    << "unlink " << path << " divergence";
                model.erase(path);
                break;
              }
              case 2: { // read
                std::string got;
                int err = readWhole(fs, path, got);
                if (model.count(path)) {
                    EXPECT_EQ(err, 0) << path;
                    EXPECT_EQ(got, model[path]) << path;
                } else {
                    EXPECT_EQ(err, ENOENT) << path;
                }
                break;
              }
              case 3: { // stat
                Stat st;
                int err = statOf(fs, path, &st);
                if (model.count(path)) {
                    EXPECT_EQ(err, 0);
                    EXPECT_EQ(st.size, model[path].size());
                } else {
                    EXPECT_EQ(err, ENOENT);
                }
                break;
              }
            }
        }
        // Final listing must equal the model's key set.
        auto names = namesOf(fs, "/");
        std::vector<std::string> want;
        for (auto &[k, v] : model)
            want.push_back(k.substr(1));
        EXPECT_EQ(names, want);
    }
}

// ---------- zero-copy preadInto ----------

TEST(PreadInto, InMemFillsWindowAndClampsToSpan)
{
    InMemBackend fs;
    fs.writeFile("/f", std::string("abcdefghij"));
    OpenFilePtr f;
    fs.open("/f", flags::RDONLY, 0,
            [&](int, OpenFilePtr file) { f = std::move(file); });
    ASSERT_TRUE(f);

    // A 4-byte window at offset 2 gets exactly "cdef"; the sentinel
    // bytes around the window must never be touched.
    uint8_t buf[8];
    std::memset(buf, '#', sizeof(buf));
    int err = -1;
    size_t n = 0;
    f->preadInto(2, ByteSpan{buf + 2, 4}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(std::string(buf + 2, buf + 6), "cdef");
    EXPECT_EQ(buf[0], '#');
    EXPECT_EQ(buf[1], '#');
    EXPECT_EQ(buf[6], '#');
    EXPECT_EQ(buf[7], '#');

    // Short at EOF, zero past it — same contract as pread.
    f->preadInto(8, ByteSpan{buf, 8}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 2u);
    f->preadInto(100, ByteSpan{buf, 8}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 0u);
}

TEST(PreadInto, DefaultFallbackClampsOverReturningBackend)
{
    // A backend whose pread hands back more than was asked for must not
    // overrun the caller's window: the default preadInto clamps.
    struct OverF : OpenFile
    {
        void pread(uint64_t, size_t, DataCb cb) override
        {
            cb(0, std::make_shared<Buffer>(64, uint8_t('Z')));
        }
        void pwrite(uint64_t, const uint8_t *, size_t, SizeCb cb) override
        {
            cb(EROFS, 0);
        }
        void fstat(StatCb cb) override { cb(0, Stat{}); }
        void ftruncate(uint64_t, ErrCb cb) override { cb(EROFS); }
    };
    OverF f;
    uint8_t buf[16];
    std::memset(buf, '#', sizeof(buf));
    int err = -1;
    size_t n = 0;
    f.preadInto(0, ByteSpan{buf + 4, 8}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 8u) << "count must be clamped to the window";
    EXPECT_EQ(std::string(buf + 4, buf + 12), "ZZZZZZZZ");
    for (int i : {0, 1, 2, 3, 12, 13, 14, 15})
        EXPECT_EQ(buf[i], '#') << "overrun at sentinel " << i;
}

TEST(PreadInto, OverlayCrossesLowerAndUpperLayers)
{
    OverlayRig rig;
    uint8_t buf[16];

    // Lower-layer open: the read-only InMem node fills the window.
    OpenFilePtr ro;
    rig.fs->open("/ro.txt", flags::RDONLY, 0,
                 [&](int, OpenFilePtr f) { ro = std::move(f); });
    ASSERT_TRUE(ro);
    size_t n = 0;
    ro->preadInto(5, ByteSpan{buf, sizeof(buf)},
                  [&](int, size_t got) { n = got; });
    EXPECT_EQ(std::string(buf, buf + n), "only");

    // Write-open copies up; the upper layer's handle must serve the same
    // bytes through preadInto (the lower/upper boundary crossing).
    OpenFilePtr rw;
    rig.fs->open("/ro.txt", flags::RDWR, 0,
                 [&](int, OpenFilePtr f) { rw = std::move(f); });
    ASSERT_TRUE(rw);
    EXPECT_EQ(rig.fs->copyUpCount(), 1u);
    rw->preadInto(0, ByteSpan{buf, sizeof(buf)},
                  [&](int, size_t got) { n = got; });
    EXPECT_EQ(std::string(buf, buf + n), "read-only");

    uint8_t x = 'X';
    rw->pwrite(0, &x, 1, [](int, size_t) {});
    rw->preadInto(0, ByteSpan{buf, sizeof(buf)},
                  [&](int, size_t got) { n = got; });
    EXPECT_EQ(std::string(buf, buf + n), "Xead-only");

    // The lower layer still serves the original bytes.
    OpenFilePtr lo;
    rig.lower->open("/ro.txt", flags::RDONLY, 0,
                    [&](int, OpenFilePtr f) { lo = std::move(f); });
    lo->preadInto(0, ByteSpan{buf, sizeof(buf)},
                  [&](int, size_t got) { n = got; });
    EXPECT_EQ(std::string(buf, buf + n), "read-only");
}

TEST(PwriteFrom, InMemConsumesWindowInPlace)
{
    InMemBackend fs;
    fs.writeFile("/f", std::string("0123456789"));
    OpenFilePtr f;
    fs.open("/f", flags::RDWR, 0,
            [&](int, OpenFilePtr file) { f = std::move(file); });
    ASSERT_TRUE(f);

    // Overwrite the middle from a caller-owned window.
    const uint8_t mid[] = {'X', 'Y', 'Z'};
    int err = -1;
    size_t n = 0;
    f->pwriteFrom(3, ConstByteSpan{mid, 3}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 3u);
    Buffer out;
    ASSERT_EQ(fs.readFile("/f", out), 0);
    EXPECT_EQ(std::string(out.begin(), out.end()), "012XYZ6789");

    // Past EOF: the gap zero-fills, exactly like pwrite.
    f->pwriteFrom(12, ConstByteSpan{mid, 3}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 3u);
    ASSERT_EQ(fs.readFile("/f", out), 0);
    ASSERT_EQ(out.size(), 15u);
    EXPECT_EQ(out[10], 0);
    EXPECT_EQ(out[11], 0);
    EXPECT_EQ(std::string(out.begin() + 12, out.end()), "XYZ");

    // Zero-length window (null data is legal): a no-op success.
    f->pwriteFrom(0, ConstByteSpan{nullptr, 0}, [&](int e, size_t got) {
        err = e;
        n = got;
    });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, 0u);
}

TEST(PwriteFrom, DefaultForwardsToPwrite)
{
    // A backend that only implements pwrite still serves pwriteFrom via
    // the base-class forward — the window's lifetime contract makes the
    // raw-pointer handoff safe.
    struct PlainF : OpenFile
    {
        Buffer data;
        void pread(uint64_t, size_t, DataCb cb) override
        {
            cb(0, std::make_shared<Buffer>(data));
        }
        void
        pwrite(uint64_t off, const uint8_t *d, size_t n,
               SizeCb cb) override
        {
            if (off + n > data.size())
                data.resize(off + n, 0);
            if (n)
                std::memcpy(data.data() + off, d, n);
            cb(0, n);
        }
        void fstat(StatCb cb) override { cb(0, Stat{}); }
        void ftruncate(uint64_t, ErrCb cb) override { cb(0); }
    };
    PlainF f;
    const std::string payload = "forwarded";
    int err = -1;
    size_t n = 0;
    f.pwriteFrom(2,
                 ConstByteSpan{reinterpret_cast<const uint8_t *>(
                                   payload.data()),
                               payload.size()},
                 [&](int e, size_t got) {
                     err = e;
                     n = got;
                 });
    EXPECT_EQ(err, 0);
    EXPECT_EQ(n, payload.size());
    EXPECT_EQ(std::string(f.data.begin() + 2, f.data.end()), payload);
}

TEST(PwriteFrom, OverlayCopyUpThenUpperServesWindowWrites)
{
    OverlayRig rig;
    // Write-open a lower-only file: copy-up happens (itself via
    // pwriteFrom into the upper layer), and the returned upper handle
    // consumes caller windows directly.
    OpenFilePtr rw;
    rig.fs->open("/ro.txt", flags::RDWR, 0,
                 [&](int, OpenFilePtr f) { rw = std::move(f); });
    ASSERT_TRUE(rw);
    EXPECT_EQ(rig.fs->copyUpCount(), 1u);
    const uint8_t w[] = {'W', 'R', 'I', 'T'};
    size_t n = 0;
    rw->pwriteFrom(0, ConstByteSpan{w, 4}, [&](int, size_t got) { n = got; });
    EXPECT_EQ(n, 4u);
    std::string got;
    EXPECT_EQ(readWhole(*rig.fs, "/ro.txt", got), 0);
    EXPECT_EQ(got, "WRIT-only");
    // The lower layer keeps the pristine bytes.
    EXPECT_EQ(readWhole(*rig.lower, "/ro.txt", got), 0);
    EXPECT_EQ(got, "read-only");
}

TEST(PwriteFrom, HttpBackendIsReadOnly)
{
    auto store = std::make_shared<HttpStore>();
    store->put("/doc.txt", std::string("fetched"));
    auto cache = std::make_shared<BrowserHttpCache>();
    HttpBackend http(store, cache, nullptr, NetworkParams{});
    OpenFilePtr f;
    http.open("/doc.txt", flags::RDONLY, 0,
              [&](int, OpenFilePtr file) { f = std::move(file); });
    ASSERT_TRUE(f);
    const uint8_t b = 'x';
    int err = -1;
    f->pwriteFrom(0, ConstByteSpan{&b, 1},
                  [&](int e, size_t) { err = e; });
    EXPECT_EQ(err, EROFS);
}

TEST(PreadInto, HttpBackendFillsFromFetchedBlob)
{
    auto store = std::make_shared<HttpStore>();
    store->put("/doc.txt", std::string("hello from http"));
    auto cache = std::make_shared<BrowserHttpCache>();
    HttpBackend http(store, cache, nullptr, NetworkParams{});
    OpenFilePtr f;
    http.open("/doc.txt", flags::RDONLY, 0,
              [&](int err, OpenFilePtr file) {
                  ASSERT_EQ(err, 0);
                  f = std::move(file);
              });
    ASSERT_TRUE(f);
    uint8_t buf[8];
    std::memset(buf, '#', sizeof(buf));
    size_t n = 0;
    f->preadInto(6, ByteSpan{buf, 4}, [&](int, size_t got) { n = got; });
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(std::string(buf, buf + 4), "from");
    EXPECT_EQ(buf[4], '#');
}
