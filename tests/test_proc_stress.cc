/**
 * @file
 * Process-lifecycle stress suite (ctest label `stress`): spawn/exit
 * churn of 1000+ processes against the sharded process table, pid
 * allocation across wraparound, concurrent waitpid from many parents,
 * waitpid edge cases (WNOHANG, ECHILD, FIFO reap order, wait-any racing
 * wait-specific), and SIGKILL storms against parked ring waiters.
 *
 * Deterministic by construction: tests advance through runUntil
 * predicates and synchronous kernel-side kills — no wall-clock sleeps —
 * and the churn/FIFO tests run under jsvm::TestClock so cost-model
 * charges become virtual time.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "core/browsix.h"
#include "jsvm/test_clock.h"
#include "runtime/syscall_ring.h"
#include "tests/test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BROWSIX_TSAN_BUILD 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) && !defined(BROWSIX_TSAN_BUILD)
#define BROWSIX_TSAN_BUILD 1
#endif

using namespace browsix;

namespace {

using testutil::stage;

void
addProgram(const std::string &name, rt::EmProgramFn fn,
           apps::RuntimeKind kind = apps::RuntimeKind::EmAsync)
{
    testutil::addProgram(name, std::move(fn), kind);
}

void
addParkProgram(const std::string &name = "stress-park")
{
    testutil::addParkProgram(name);
}

} // namespace

// ---------- churn: the headline population ----------

TEST(ProcStress, ChurnOfThousandProcessesReapsEverything)
{
    jsvm::TestClock clock;
    addProgram("stress-noop", [](rt::EmEnv &) -> int { return 0; });
    Browsix bx;
    stage(bx, "stress-noop");

    const int rounds = 16, batch = 64; // 1024 processes total
    std::set<int> pids_seen;
    int exits = 0, spawn_failures = 0;
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < batch; i++) {
            bx.kernel().spawnRoot(
                {"/usr/bin/stress-noop"}, bx.kernel().defaultEnv, "/",
                [&](int) { exits++; }, nullptr, nullptr, [&](int pid) {
                    if (pid > 0)
                        pids_seen.insert(pid);
                    else
                        spawn_failures++;
                });
        }
        ASSERT_TRUE(bx.runUntil(
            [&]() { return exits + spawn_failures == (r + 1) * batch; },
            120000))
            << "round " << r << ": only " << exits << " exits";
    }
    EXPECT_EQ(spawn_failures, 0);
    EXPECT_EQ(pids_seen.size(), static_cast<size_t>(rounds * batch))
        << "monotonic pid allocation must never hand out a duplicate";
    EXPECT_EQ(bx.kernel().taskCount(), 0u) << "no zombies, no leaks";
    EXPECT_GE(bx.kernel().stats().processesSpawned,
              static_cast<uint64_t>(rounds * batch));
}

// ---------- pid allocation across wraparound ----------

TEST(ProcStress, PidAllocationSkipsLivePidsOnWraparound)
{
    addParkProgram();
    Browsix bx;
    stage(bx, "stress-park");

    auto park_one = [&bx]() {
        int got = 0;
        bx.kernel().spawnRoot({"/usr/bin/stress-park"},
                              bx.kernel().defaultEnv, "/", [](int) {},
                              nullptr, nullptr,
                              [&got](int pid) { got = pid; });
        EXPECT_TRUE(bx.runUntil([&got]() { return got != 0; }, 30000));
        EXPECT_GT(got, 0);
        return got;
    };

    std::set<int> low;
    for (int i = 0; i < 3; i++)
        low.insert(park_one());

    // Jump the cursor to the top of pid space: the next spawns take the
    // last pids before the wrap, then wrap — and must skip every pid
    // still live in the table.
    bx.kernel().setNextPid(kernel::Kernel::kMaxPid - 1);
    int top1 = park_one();
    int top2 = park_one();
    EXPECT_EQ(top1, kernel::Kernel::kMaxPid - 1);
    EXPECT_EQ(top2, kernel::Kernel::kMaxPid);
    int wrapped1 = park_one();
    int wrapped2 = park_one();
    EXPECT_LT(wrapped1, top1) << "cursor must wrap, not keep growing";
    EXPECT_EQ(low.count(wrapped1), 0u) << "live pid handed out twice";
    EXPECT_EQ(low.count(wrapped2), 0u) << "live pid handed out twice";
    EXPECT_NE(wrapped1, wrapped2);

    // Point the cursor directly at a live pid: the allocator must skip
    // to the next free one instead of duplicating it.
    int first_live = *low.begin();
    bx.kernel().setNextPid(first_live);
    int skipped = park_one();
    EXPECT_EQ(low.count(skipped), 0u);
    EXPECT_NE(skipped, wrapped1);
    EXPECT_NE(skipped, wrapped2);

    EXPECT_EQ(bx.kernel().taskCount(), 8u);
    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&bx]() { return bx.kernel().taskCount() == 0; }, 30000));
}

// ---------- concurrent waitpid from many parents ----------

TEST(ProcStress, ManyParentsWaitConcurrently)
{
    // Children exit with a code derived from their own pid, so each
    // parent can verify it reaped exactly its own children with the
    // right statuses — cross-parent leakage would be caught.
    addProgram("stress-pidcode", [](rt::EmEnv &env) -> int {
        return env.getpid() % 121;
    });
    addProgram("stress-parent", [](rt::EmEnv &env) -> int {
        const int n = 16;
        std::set<int> kids;
        for (int i = 0; i < n; i++) {
            int pid = env.spawn({"/usr/bin/stress-pidcode"},
                                std::vector<int>{});
            if (pid <= 0)
                return 100;
            kids.insert(pid);
        }
        for (int i = 0; i < n; i++) {
            int st = 0;
            int pid = env.waitpid(-1, &st, 0);
            if (pid <= 0)
                return 101;
            if (!kids.erase(pid))
                return 102; // not ours, or reaped twice
            if (!sys::wifExited(st) || sys::wexitstatus(st) != pid % 121)
                return 103;
        }
        if (!kids.empty())
            return 104;
        if (env.waitpid(-1, nullptr, 0) != -ECHILD)
            return 105;
        return 0;
    });
    Browsix bx;
    stage(bx, "stress-pidcode");
    stage(bx, "stress-parent");

    const int parents = 8;
    int done = 0;
    std::vector<int> statuses(parents, -1);
    for (int i = 0; i < parents; i++) {
        bx.kernel().spawnRoot({"/usr/bin/stress-parent"},
                              bx.kernel().defaultEnv, "/",
                              [&done, &statuses, i](int st) {
                                  statuses[i] = st;
                                  done++;
                              },
                              nullptr, nullptr, [](int) {});
    }
    ASSERT_TRUE(
        bx.runUntil([&]() { return done == parents; }, 240000));
    for (int i = 0; i < parents; i++)
        EXPECT_EQ(sys::wexitstatus(statuses[i]), 0) << "parent " << i;
    EXPECT_EQ(bx.kernel().taskCount(), 0u);

    // The whole exercise crossed the real syscall path, so the latency
    // histograms must have seen every spawn and wait4.
    const kernel::KernelStats &st = bx.kernel().stats();
    const kernel::LatencyHistogram *spawn_h = st.latency("spawn");
    const kernel::LatencyHistogram *wait_h = st.latency("wait4");
    ASSERT_NE(spawn_h, nullptr);
    ASSERT_NE(wait_h, nullptr);
    EXPECT_EQ(spawn_h->count, static_cast<uint64_t>(parents * 16));
    EXPECT_EQ(wait_h->count, static_cast<uint64_t>(parents * 17))
        << "16 reaps + 1 final ECHILD per parent";
    EXPECT_LE(spawn_h->percentileUs(50), spawn_h->percentileUs(99));
}

// ---------- waitpid edge cases ----------

TEST(ProcStress, WaitpidWnohangAndEchildEdgeCases)
{
    addParkProgram();
    addProgram("stress-wnohang", [](rt::EmEnv &env) -> int {
        // No children at all: ECHILD, blocking or not.
        if (env.waitpid(-1, nullptr, 0) != -ECHILD)
            return 1;
        if (env.waitpid(-1, nullptr, sys::WNOHANG) != -ECHILD)
            return 2;
        int kid = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        if (kid <= 0)
            return 3;
        // Live child, no zombie: WNOHANG returns 0 instead of blocking.
        if (env.waitpid(-1, nullptr, sys::WNOHANG) != 0)
            return 4;
        if (env.waitpid(kid, nullptr, sys::WNOHANG) != 0)
            return 5;
        // A pid that is not our child: ECHILD even while kids are live.
        if (env.waitpid(kid + 7777, nullptr, 0) != -ECHILD)
            return 6;
        if (env.kill(kid, sys::SIGKILL) != 0)
            return 7;
        int st = 0;
        if (env.waitpid(kid, &st, 0) != kid)
            return 8;
        if (sys::wtermsig(st) != sys::SIGKILL)
            return 9;
        // Everything reaped: back to ECHILD.
        if (env.waitpid(-1, nullptr, 0) != -ECHILD)
            return 10;
        if (env.waitpid(kid, nullptr, sys::WNOHANG) != -ECHILD)
            return 11;
        return 0;
    });
    Browsix bx;
    stage(bx, "stress-park");
    stage(bx, "stress-wnohang");
    auto r = bx.runArgv({"/usr/bin/stress-wnohang"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

TEST(ProcStress, WaitAnyReapsInExitOrderAcrossBands)
{
    jsvm::TestClock clock;
    addParkProgram();
    addProgram("stress-fifo", [](rt::EmEnv &env) -> int {
        // Consecutive pids round-robin the table's bands, so a, b and c
        // live in three different shards; reap order must follow exit
        // order (the kill order), not pid or band order.
        int a = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        int b = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        int c = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        if (a <= 0 || b <= 0 || c <= 0)
            return 1;
        env.kill(c, sys::SIGKILL);
        env.kill(a, sys::SIGKILL);
        env.kill(b, sys::SIGKILL);
        int st = 0;
        if (env.waitpid(-1, &st, 0) != c)
            return 2;
        if (env.waitpid(-1, &st, 0) != a)
            return 3;
        if (env.waitpid(-1, &st, 0) != b)
            return 4;
        // Wait-specific removes from the middle of the FIFO: d exits
        // before e, but waiting for e explicitly must not disturb d.
        int d = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        int e = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        if (d <= 0 || e <= 0)
            return 5;
        env.kill(d, sys::SIGKILL);
        env.kill(e, sys::SIGKILL);
        if (env.waitpid(e, &st, 0) != e)
            return 6;
        if (env.waitpid(-1, &st, 0) != d)
            return 7;
        if (env.waitpid(-1, nullptr, 0) != -ECHILD)
            return 8;
        return 0;
    });
    Browsix bx;
    stage(bx, "stress-park");
    stage(bx, "stress-fifo");
    auto r = bx.runArgv({"/usr/bin/stress-fifo"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0) << "reap order diverged from exit order";
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

TEST(ProcStress, WaitAnyRacesWaitSpecific)
{
    // Two wait4s pending on the same parent — the in-kernel waiter list
    // the async convention produces. White-box: children are wired via
    // doSpawn so ppid points at the parked parent, and waiters are
    // registered exactly as sysWait4 would.
    addParkProgram();
    Browsix bx;
    stage(bx, "stress-park");

    int parent_pid = 0;
    bx.kernel().spawnRoot({"/usr/bin/stress-park"}, bx.kernel().defaultEnv,
                          "/", [](int) {}, nullptr, nullptr,
                          [&](int pid) { parent_pid = pid; });
    ASSERT_TRUE(bx.runUntil([&]() { return parent_pid > 0; }, 30000));
    kernel::Task *parent = bx.kernel().task(parent_pid);
    ASSERT_NE(parent, nullptr);

    int c1 = 0, c2 = 0;
    bx.kernel().doSpawn(parent, {"/usr/bin/stress-park"},
                        bx.kernel().defaultEnv, "/", {},
                        jsvm::Value::undefined(),
                        [&](int pid) { c1 = pid; });
    bx.kernel().doSpawn(parent, {"/usr/bin/stress-park"},
                        bx.kernel().defaultEnv, "/", {},
                        jsvm::Value::undefined(),
                        [&](int pid) { c2 = pid; });
    ASSERT_TRUE(bx.runUntil([&]() { return c1 > 0 && c2 > 0; }, 30000));

    // wait-specific(c2) registered before wait-any.
    std::vector<std::pair<int, int>> specific, any;
    parent->addWaitWaiter(
        c2, [&](int pid, int st) { specific.emplace_back(pid, st); });
    parent->addWaitWaiter(
        -1, [&](int pid, int st) { any.emplace_back(pid, st); });
    // The by-pid index mirrors the waiter list: one bucket per awaited
    // pid plus the wait-any (-1) bucket.
    EXPECT_EQ(parent->waitWaiters.size(), 2u);
    EXPECT_EQ(parent->waitersByPid.count(c2), 1u);
    EXPECT_EQ(parent->waitersByPid.count(-1), 1u);

    // c2 dies first: the specific waiter must win it; wait-any must keep
    // waiting even though a zombie existed momentarily.
    EXPECT_EQ(bx.kernel().kill(c2, sys::SIGKILL), 0);
    ASSERT_EQ(specific.size(), 1u);
    EXPECT_EQ(specific[0].first, c2);
    EXPECT_EQ(sys::wtermsig(specific[0].second), sys::SIGKILL);
    EXPECT_TRUE(any.empty())
        << "wait-any stole a zombie from a wait-specific ahead of it";

    EXPECT_EQ(bx.kernel().kill(c1, sys::SIGKILL), 0);
    ASSERT_EQ(any.size(), 1u);
    EXPECT_EQ(any[0].first, c1);
    EXPECT_TRUE(parent->waitWaiters.empty());
    EXPECT_TRUE(parent->waitersByPid.empty())
        << "a completed waiter must leave no stale index bucket";

    // Index stress: many specific waiters registered out of pid order —
    // each exit must route to exactly its own waiter via the index, and
    // an interleaved wait-any (registered last) must only get the one
    // exit nobody selected.
    constexpr int kKids = 12;
    std::vector<int> kids(kKids, 0);
    for (int i = 0; i < kKids; i++) {
        bx.kernel().doSpawn(parent, {"/usr/bin/stress-park"},
                            bx.kernel().defaultEnv, "/", {},
                            jsvm::Value::undefined(),
                            [&kids, i](int pid) { kids[i] = pid; });
    }
    ASSERT_TRUE(bx.runUntil(
        [&kids]() {
            for (int p : kids)
                if (p <= 0)
                    return false;
            return true;
        },
        30000));
    std::map<int, int> routed; // awaited pid -> delivered pid
    for (int i = kKids - 1; i >= 1; i--) { // skip kids[0]: wait-any's
        int awaited = kids[i];
        parent->addWaitWaiter(awaited, [&routed, awaited](int pid, int) {
            routed[awaited] = pid;
        });
    }
    any.clear();
    parent->addWaitWaiter(
        -1, [&](int pid, int st) { any.emplace_back(pid, st); });
    for (int i = 0; i < kKids; i++)
        EXPECT_EQ(bx.kernel().kill(kids[i], sys::SIGKILL), 0);
    ASSERT_EQ(routed.size(), static_cast<size_t>(kKids - 1));
    for (int i = 1; i < kKids; i++)
        EXPECT_EQ(routed[kids[i]], kids[i])
            << "waiter " << i << " got someone else's child";
    ASSERT_EQ(any.size(), 1u);
    EXPECT_EQ(any[0].first, kids[0])
        << "wait-any must receive only the unselected exit";
    EXPECT_TRUE(parent->waitWaiters.empty());
    EXPECT_TRUE(parent->waitersByPid.empty());

    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&bx]() { return bx.kernel().taskCount() == 0; }, 30000));
}

// ---------- SIGKILL storm against parked ring waiters ----------

TEST(ProcStress, SigkillStormUnwindsParkedRingWaiters)
{
    // Every process parks on its ring wait word (an InterruptToken-held
    // waker); a broadcast SIGKILL must unwind all of them — no hang, no
    // lost exit status, nothing left in the table. The TSan stress job
    // watches this path for waker/terminate races.
    addProgram(
        "stress-ring-park",
        [](rt::EmEnv &env) -> int {
            env.write(1, "parked\n");
            env.ring()->wait(0xdead); // no such seq: parks forever
            return 0;
        },
        apps::RuntimeKind::EmRing);
    Browsix bx;
    stage(bx, "stress-ring-park");

    const int waiters = 24;
    int parked = 0, exited = 0;
    std::vector<int> statuses(waiters, -1);
    for (int i = 0; i < waiters; i++) {
        bx.kernel().spawnRoot(
            {"/usr/bin/stress-ring-park"}, bx.kernel().defaultEnv, "/",
            [&exited, &statuses, i](int st) {
                statuses[i] = st;
                exited++;
            },
            [&parked](const bfs::Buffer &d) {
                for (uint8_t ch : d)
                    if (ch == '\n')
                        parked++;
            },
            nullptr, [](int) {});
    }
    ASSERT_TRUE(bx.runUntil([&]() { return parked == waiters; }, 240000));
    EXPECT_EQ(bx.kernel().taskCount(), static_cast<size_t>(waiters));

    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited == waiters; }, 240000))
        << "SIGKILL storm left parked ring waiters behind";
    for (int i = 0; i < waiters; i++)
        EXPECT_EQ(sys::wtermsig(statuses[i]), sys::SIGKILL) << "waiter " << i;
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
    EXPECT_EQ(bx.kernel().stats().ringCqOverflows, 0u);
}

// ---------- 10k live guests on a fixed pool ----------

namespace {

/** Host-side OS thread count, from /proc/self/status ("Threads:\t<n>").
 * Returns -1 where procfs is unavailable; callers skip the bound then. */
int
hostThreadCount()
{
    std::ifstream st("/proc/self/status");
    std::string line;
    while (std::getline(st, line)) {
        if (line.rfind("Threads:", 0) == 0)
            return std::atoi(line.c_str() + 8);
    }
    return -1;
}

} // namespace

TEST(ProcStress, TenThousandLiveParkedGuestsOnAFixedPool)
{
    // The tentpole population: 10k processes alive AT ONCE, all parked on
    // their pipes. Thread-per-process would need 10-20k OS threads here;
    // the pooled scheduler must hold the host's thread count flat at
    // poolSize plus a small constant while the whole population parks.
    jsvm::TestClock clock;
    addParkProgram();
    Browsix bx;
    stage(bx, "stress-park");

#if defined(BROWSIX_TSAN_BUILD)
    // TSan's thread registry caps out at 8128 simultaneous contexts and
    // every live fiber holds one (__tsan_create_fiber), so the full 10k
    // population cannot exist under TSan. Run the identical protocol at
    // 4k — the race surface is the same; the 10k scale itself is covered
    // by the Release stress leg and the bench_proc_micro p99 gate.
    const int total = 4000, batch = 500;
#else
    const int total = 10000, batch = 500;
#endif
    int spawned = 0, spawn_failures = 0, exited = 0;
    // The default NPROC fence (4096) is per-tenant; these are root
    // processes of independent tenants, so it never engages — but keep
    // headroom anyway so the test still documents the knob.
    bx.kernel().setNprocLimit(total + 16);
    for (int done = 0; done < total; done += batch) {
        for (int i = 0; i < batch; i++) {
            bx.kernel().spawnRoot(
                {"/usr/bin/stress-park"}, bx.kernel().defaultEnv, "/",
                [&](int) { exited++; }, nullptr, nullptr, [&](int pid) {
                    if (pid > 0)
                        spawned++;
                    else
                        spawn_failures++;
                });
        }
        ASSERT_TRUE(bx.runUntil(
            [&]() { return spawned + spawn_failures == done + batch; },
            240000))
            << "stalled at " << spawned << " spawns";
    }
    EXPECT_EQ(spawn_failures, 0);
    ASSERT_EQ(bx.kernel().taskCount(), static_cast<size_t>(total));

    // Let the population quiesce: every guest parked, nothing runnable.
    ASSERT_TRUE(bx.runUntil(
        [&]() { return bx.kernel().scheduler().queueDepth() == 0; },
        240000));
    int threads = hostThreadCount();
    if (threads > 0) {
        EXPECT_LE(threads,
                  static_cast<int>(bx.kernel().scheduler().poolSize()) + 8)
            << "parked guests must cost zero threads";
    }

    // And the whole population must die and reap cleanly.
    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited == total; }, 240000))
        << "only " << exited << " of " << total << " exits arrived";
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

TEST(ProcStress, TenThousandProcessChurnReapsEverything)
{
    // Lifecycle churn at the 10k scale the scheduler is sized for:
    // spawn/exit waves with a bounded live population, total >= 10k.
    jsvm::TestClock clock;
    addProgram("stress-noop", [](rt::EmEnv &) -> int { return 0; });
    Browsix bx;
    stage(bx, "stress-noop");

    const int rounds = 40, batch = 256; // 10240 processes total
    std::set<int> pids_seen;
    int exits = 0, spawn_failures = 0;
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < batch; i++) {
            bx.kernel().spawnRoot(
                {"/usr/bin/stress-noop"}, bx.kernel().defaultEnv, "/",
                [&](int) { exits++; }, nullptr, nullptr, [&](int pid) {
                    if (pid > 0)
                        pids_seen.insert(pid);
                    else
                        spawn_failures++;
                });
        }
        ASSERT_TRUE(bx.runUntil(
            [&]() { return exits + spawn_failures == (r + 1) * batch; },
            240000))
            << "round " << r << ": only " << exits << " exits";
    }
    EXPECT_EQ(spawn_failures, 0);
    EXPECT_EQ(pids_seen.size(), static_cast<size_t>(rounds * batch));
    EXPECT_EQ(bx.kernel().taskCount(), 0u) << "no zombies, no leaks";
}

// ---------- fork-bomb containment ----------

TEST(ProcStress, ForkBombIsContainedByNprocQuota)
{
    // A classic fork bomb: every process spawns copies of itself in a
    // loop. The per-tenant NPROC fence must cap the tenant's live
    // population at the limit — the bomb burns -EAGAINs, not kernel
    // memory — and the whole tree must still die and reap on SIGKILL.
    addProgram("stress-bomb", [](rt::EmEnv &env) -> int {
        // Each generation tries to double; -EAGAIN ends the loop. The
        // quota (not this loop bound) is what must stop the explosion.
        for (int i = 0; i < 64; i++) {
            int pid = env.spawn({env.argv()[0]}, std::vector<int>{});
            if (pid == -EAGAIN)
                break;
            if (pid < 0)
                return 1;
        }
        // Stay alive so the population holds at the cap until the host
        // inspects it.
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 2;
        bfs::Buffer buf;
        env.read(fds[0], buf, 1);
        return 0;
    });
    Browsix bx;
    const int limit = 48;
    bx.kernel().setNprocLimit(limit);
    stage(bx, "stress-bomb");

    int root_pid = 0, root_exit = -1;
    bx.kernel().spawnRoot({"/usr/bin/stress-bomb"}, bx.kernel().defaultEnv,
                          "/", [&](int st) { root_exit = st; }, nullptr,
                          nullptr, [&](int pid) { root_pid = pid; });
    ASSERT_TRUE(bx.runUntil([&]() { return root_pid > 0; }, 30000));

    // Population may only reach the fence; watch it until it stabilizes
    // there (every live bomber parked, run queue drained).
    size_t peak = 0;
    ASSERT_TRUE(bx.runUntil(
        [&]() {
            peak = std::max(peak, bx.kernel().taskCount());
            EXPECT_LE(bx.kernel().taskCount(), static_cast<size_t>(limit))
                << "quota breached mid-explosion";
            return bx.kernel().taskCount() == static_cast<size_t>(limit) &&
                   bx.kernel().scheduler().queueDepth() == 0;
        },
        240000))
        << "bomb never filled its quota (peak " << peak << ")";
    EXPECT_EQ(peak, static_cast<size_t>(limit));

    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&]() { return bx.kernel().taskCount() == 0; }, 240000))
        << "bomb tree did not fully reap";
    EXPECT_NE(root_exit, -1);
    EXPECT_EQ(sys::wtermsig(root_exit), sys::SIGKILL);

    // The fence releases on reap: a fresh tenant spawns fine afterwards.
    int fresh = 0;
    bx.kernel().spawnRoot({"/usr/bin/stress-bomb"}, bx.kernel().defaultEnv,
                          "/", [](int) {}, nullptr, nullptr,
                          [&](int pid) { fresh = pid; });
    ASSERT_TRUE(bx.runUntil([&]() { return fresh > 0; }, 30000));
    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil(
        [&]() { return bx.kernel().taskCount() == 0; }, 240000));
}

// ---------- spawn/kill teardown race ----------

TEST(ProcStress, SpawnKillTeardownRaceLeaksNothing)
{
    // Kill each process the instant its spawn callback fires: the worker
    // may be Queued (guest fiber never started), mid-boot on a pool
    // thread, or already parked. All three interleavings must tear down
    // without leaks or lost statuses — the TSan stress job watches this
    // for worker/fiber teardown racing the first step.
    addParkProgram();
    Browsix bx;
    stage(bx, "stress-park");

    const int iterations = 64;
    int exited = 0, killed = 0;
    std::vector<int> statuses(iterations, -1);
    for (int i = 0; i < iterations; i++) {
        bx.kernel().spawnRoot(
            {"/usr/bin/stress-park"}, bx.kernel().defaultEnv, "/",
            [&exited, &statuses, i](int st) {
                statuses[i] = st;
                exited++;
            },
            nullptr, nullptr, [&bx, &killed](int pid) {
                ASSERT_GT(pid, 0);
                EXPECT_EQ(bx.kernel().kill(pid, sys::SIGKILL), 0);
                killed++;
            });
        // No runUntil between iterations: let spawns and kills pile up
        // so teardown overlaps boot across the pool.
    }
    ASSERT_TRUE(bx.runUntil(
        [&]() { return killed == iterations && exited == iterations; },
        240000))
        << killed << " killed, " << exited << " exited";
    for (int i = 0; i < iterations; i++)
        EXPECT_EQ(sys::wtermsig(statuses[i]), sys::SIGKILL) << "victim " << i;
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

// ---------- broadcast semantics ----------

TEST(ProcStress, BroadcastKillWithNoProcessesIsEsrch)
{
    Browsix bx;
    EXPECT_EQ(bx.kernel().kill(-1, sys::SIGKILL), ESRCH);
}

TEST(ProcStress, GuestBroadcastKillExcludesTheCaller)
{
    // Linux kill(-1) never signals the issuing process: a guest cleaning
    // up its jobs with kill(-1, SIGKILL) must survive to reap them.
    addParkProgram();
    addProgram("stress-bcast", [](rt::EmEnv &env) -> int {
        int a = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        int b = env.spawn({"/usr/bin/stress-park"}, std::vector<int>{});
        if (a <= 0 || b <= 0)
            return 1;
        if (env.kill(-1, sys::SIGKILL) != 0)
            return 2;
        // Broadcast delivery walks pids ascending, so exit order is a, b.
        int st = 0;
        if (env.waitpid(-1, &st, 0) != a)
            return 3;
        if (sys::wtermsig(st) != sys::SIGKILL)
            return 4;
        if (env.waitpid(-1, &st, 0) != b)
            return 5;
        if (env.waitpid(-1, nullptr, 0) != -ECHILD)
            return 6;
        return 0;
    });
    Browsix bx;
    stage(bx, "stress-park");
    stage(bx, "stress-bcast");
    auto r = bx.runArgv({"/usr/bin/stress-bcast"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0) << "caller died in its own broadcast";
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}
