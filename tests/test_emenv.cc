/**
 * @file
 * In-worker POSIX surface tests: a C-style test program runs inside a
 * Browsix process and exercises every EmEnv call — parameterized over
 * the two syscall conventions (§3.2), so each operation is verified both
 * through structured-clone messages and through the shared-heap path
 * (string marshalling, heap out-copies, packed stats, dirent records).
 *
 * The program reports failures as "FAIL <what>" lines on stdout and its
 * exit code is the failure count; the host asserts on both.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "apps/registry.h"
#include "core/browsix.h"

using namespace browsix;

namespace {

/** The in-process assertion helper. */
struct Checker
{
    rt::EmEnv &env;
    int failures = 0;

    void
    check(bool ok, const std::string &what)
    {
        if (!ok) {
            env.write(1, "FAIL " + what + "\n");
            failures++;
        }
    }
};

int
posixTestMain(rt::EmEnv &env)
{
    Checker t{env};
    using bfs::flags::APPEND;
    using bfs::flags::CREAT;
    using bfs::flags::RDONLY;
    using bfs::flags::RDWR;
    using bfs::flags::TRUNC;
    using bfs::flags::WRONLY;

    // --- open/write/read/llseek ---
    int fd = env.open("/tmp/posix.txt", CREAT | TRUNC | RDWR);
    t.check(fd >= 0, "open CREAT");
    t.check(env.write(fd, std::string("hello world")) == 11, "write 11");
    t.check(env.llseek(fd, 0, 0) == 0, "llseek SET 0");
    bfs::Buffer buf;
    t.check(env.read(fd, buf, 5) == 5 &&
                std::string(buf.begin(), buf.end()) == "hello",
            "read 5 after seek");
    t.check(env.llseek(fd, -5, 2) == 6, "llseek END-5");
    t.check(env.read(fd, buf, 16) == 5 &&
                std::string(buf.begin(), buf.end()) == "world",
            "read tail");

    // --- pread/pwrite do not move the cursor ---
    t.check(env.pwrite(fd, "WORLD", 5, 6) == 5, "pwrite at 6");
    t.check(env.pread(fd, buf, 5, 6) == 5 &&
                std::string(buf.begin(), buf.end()) == "WORLD",
            "pread at 6");
    t.check(env.read(fd, buf, 16) == 0, "cursor still at EOF");

    // --- writev gather (iovec SQE / sync call under the shared-heap
    // conventions; concatenated single write under async) ---
    int vfd = env.open("/tmp/posix-writev.txt", CREAT | TRUNC | RDWR);
    t.check(vfd >= 0, "open writev file");
    std::vector<std::string> parts = {"alpha ", "", "beta ", "gamma"};
    t.check(env.writev(vfd, parts) == 16, "writev total");
    t.check(env.llseek(vfd, 0, 0) == 0, "llseek writev SET 0");
    t.check(env.read(vfd, buf, 64) == 16 &&
                std::string(buf.begin(), buf.end()) ==
                    "alpha beta gamma",
            "writev content in order");
    // Hundreds of fragments exercise the chunking path end to end.
    std::vector<std::string> many(300, "x");
    t.check(env.writev(vfd, many) == 300, "writev 300 fragments");
    t.check(env.writev(vfd, {}) == 0, "empty writev is a no-op");
    t.check(env.close(vfd) == 0, "close writev file");

    // --- fstat / stat ---
    sys::StatX st;
    t.check(env.fstat(fd, st) == 0 && st.size == 11 && st.isFile(),
            "fstat size/type");
    t.check(env.stat("/tmp/posix.txt", st) == 0 && st.size == 11,
            "stat by path");
    t.check(env.close(fd) == 0, "close");
    t.check(env.close(fd) < 0, "double close fails");

    // --- dup/dup2 share the description ---
    int a = env.open("/tmp/dup.txt", CREAT | TRUNC | WRONLY);
    int b = env.dup(a);
    t.check(b >= 0 && b != a, "dup returns new fd");
    t.check(env.write(a, std::string("xx")) == 2, "write via a");
    t.check(env.write(b, std::string("yy")) == 2, "write via b");
    env.close(a);
    env.close(b);
    t.check(env.stat("/tmp/dup.txt", st) == 0 && st.size == 4,
            "dup'd fds share the offset");
    int c = env.open("/tmp/dup.txt", RDONLY);
    t.check(env.dup2(c, 17) == 17, "dup2 to chosen fd");
    t.check(env.read(17, buf, 4) == 4, "read via dup2'd fd");
    env.close(c);
    env.close(17);

    // --- append mode ---
    int ap = env.open("/tmp/dup.txt", WRONLY | APPEND);
    env.write(ap, std::string("!"));
    env.close(ap);
    env.stat("/tmp/dup.txt", st);
    t.check(st.size == 5, "O_APPEND writes at the end");

    // --- directories & dirents ---
    t.check(env.mkdir("/tmp/dir") == 0, "mkdir");
    t.check(env.mkdir("/tmp/dir") < 0, "mkdir EEXIST");
    env.close(env.open("/tmp/dir/f1", CREAT | WRONLY));
    env.close(env.open("/tmp/dir/f2", CREAT | WRONLY));
    int dfd = env.open("/tmp/dir", RDONLY);
    std::vector<sys::Dirent> entries;
    t.check(env.getdents(dfd, entries) == 0, "getdents");
    env.close(dfd);
    size_t regular = 0;
    for (const auto &e : entries)
        if (e.type == sys::DT_REG)
            regular++;
    t.check(regular == 2, "getdents finds 2 files");
    t.check(env.rmdir("/tmp/dir") < 0, "rmdir non-empty fails");
    t.check(env.unlink("/tmp/dir/f1") == 0 &&
                env.unlink("/tmp/dir/f2") == 0 &&
                env.rmdir("/tmp/dir") == 0,
            "unlink+rmdir");

    // --- rename / access / utimes ---
    t.check(env.rename("/tmp/dup.txt", "/tmp/renamed.txt") == 0, "rename");
    t.check(env.access("/tmp/renamed.txt", 0) == 0, "access new");
    t.check(env.access("/tmp/dup.txt", 0) < 0, "access old gone");
    t.check(env.utimes("/tmp/renamed.txt", 5000000, 7000000) == 0,
            "utimes");
    env.stat("/tmp/renamed.txt", st);
    t.check(st.mtimeUs == 7000000, "utimes mtime visible");

    // --- symlink / readlink ---
    t.check(env.symlink("/tmp/renamed.txt", "/tmp/link") == 0, "symlink");
    std::string target;
    t.check(env.readlink("/tmp/link", target) == 0 &&
                target == "/tmp/renamed.txt",
            "readlink");
    int lf = env.open("/tmp/link", RDONLY);
    t.check(lf >= 0, "open through symlink");
    env.close(lf);
    t.check(env.lstat("/tmp/link", st) == 0 && st.isSymlink(),
            "lstat sees the link");

    // --- cwd ---
    t.check(env.chdir("/tmp") == 0, "chdir");
    t.check(env.getcwd() == "/tmp", "getcwd");
    t.check(env.access("renamed.txt", 0) == 0, "relative path after chdir");
    t.check(env.chdir("/tmp/renamed.txt") < 0, "chdir to file fails");

    // --- process metadata ---
    t.check(env.getpid() > 0, "getpid");
    t.check(env.getppid() == 0, "root task has ppid 0");
    t.check(env.nowMs() > 0, "gettimeofday");
    t.check(env.ioctlIsatty(1) == 0, "stdout isatty (callback sink)");

    // --- error paths ---
    t.check(env.open("/no/such/file", RDONLY) == -ENOENT, "ENOENT open");
    bfs::Buffer scratch;
    t.check(env.read(99, scratch, 4) == -EBADF, "EBADF read");
    t.check(env.unlink("/tmp") == -EISDIR, "EISDIR unlink");

    return t.failures;
}

void
registerPosixTest()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    apps::registerAllPrograms();
    auto &reg = apps::ProgramRegistry::instance();
    reg.add(apps::ProgramSpec{"posixtest-sync", apps::RuntimeKind::EmSync,
                              64, posixTestMain, nullptr});
    reg.add(apps::ProgramSpec{"posixtest-async",
                              apps::RuntimeKind::EmAsync, 64,
                              posixTestMain, nullptr});
    reg.add(apps::ProgramSpec{"posixtest-ring", apps::RuntimeKind::EmRing,
                              64, posixTestMain, nullptr});
}

class EmEnvPosix : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EmEnvPosix, FullSurface)
{
    registerPosixTest();
    Browsix bx;
    std::string prog = GetParam();
    bx.rootFs().writeFile(
        "/usr/bin/" + prog,
        apps::ProgramRegistry::instance().bundleFor(prog));
    auto r = bx.runArgv({"/usr/bin/" + prog}, 60000);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.out, "") << "in-process assertion failures:\n" << r.out;
    EXPECT_EQ(r.exitCode(), 0) << prog << " reported failures";
}

INSTANTIATE_TEST_SUITE_P(Conventions, EmEnvPosix,
                         ::testing::Values("posixtest-sync",
                                           "posixtest-async",
                                           "posixtest-ring"),
                         [](const ::testing::TestParamInfo<const char *> &i) {
                             std::string p(i.param);
                             if (p.find("ring") != std::string::npos)
                                 return std::string("Ring");
                             if (p.find("async") != std::string::npos)
                                 return std::string("AsyncEmterpreter");
                             return std::string("Sync");
                         });

TEST(EmEnvSignals, HandlerRunsAtSyscallBoundary)
{
    registerPosixTest();
    apps::ProgramRegistry::instance().add(apps::ProgramSpec{
        "sigwait-test", apps::RuntimeKind::EmAsync, 64,
        [](rt::EmEnv &env) -> int {
            bool got_usr1 = false;
            env.signal(sys::SIGUSR1,
                       [&got_usr1](int) { got_usr1 = true; });
            // Tell the host we're ready, then wait for the signal by
            // polling at syscall boundaries (JS cannot be preempted).
            env.write(1, "ready\n");
            for (int i = 0; i < 2000 && !got_usr1; i++)
                env.getpid(); // each call polls pending signals
            env.write(1, got_usr1 ? "handled\n" : "missed\n");
            return got_usr1 ? 0 : 1;
        },
        nullptr});
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/sigwait-test",
        apps::ProgramRegistry::instance().bundleFor("sigwait-test"));

    std::string out;
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/sigwait-test"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(
        bx.runUntil([&]() { return out.find("ready") != std::string::npos; },
                    10000));
    bx.kernel().kill(pid, sys::SIGUSR1);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000));
    EXPECT_EQ(sys::wexitstatus(status), 0);
    EXPECT_NE(out.find("handled"), std::string::npos) << out;
}

TEST(EmEnvSignals, IgnoredSignalDoesNotKill)
{
    registerPosixTest();
    apps::ProgramRegistry::instance().add(apps::ProgramSpec{
        "sigign-test", apps::RuntimeKind::EmAsync, 64,
        [](rt::EmEnv &env) -> int {
            env.signal(sys::SIGTERM, [](int) {}); // handler: survive
            env.write(1, "ready\n");
            for (int i = 0; i < 50; i++)
                env.getpid();
            env.write(1, "survived\n");
            return 0;
        },
        nullptr});
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/sigign-test",
        apps::ProgramRegistry::instance().bundleFor("sigign-test"));
    std::string out;
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/sigign-test"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(
        bx.runUntil([&]() { return out.find("ready") != std::string::npos; },
                    10000));
    bx.kernel().kill(pid, sys::SIGTERM);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000));
    EXPECT_TRUE(sys::wifExited(status))
        << "SIGTERM with a handler must not terminate";
    EXPECT_NE(out.find("survived"), std::string::npos);
}

TEST(EmEnvPipes, PipeBetweenParentAndSpawnedChild)
{
    registerPosixTest();
    apps::ProgramRegistry::instance().add(apps::ProgramSpec{
        "pipespawn-test", apps::RuntimeKind::EmAsync, 64,
        [](rt::EmEnv &env) -> int {
            // parent: pipe2, spawn `echo` with stdout = write end, read
            // the result back through the pipe.
            int fds[2];
            if (env.pipe2(fds) != 0)
                return 1;
            int pid = env.spawn({"/usr/bin/echo", "through-pipe"},
                                {0, fds[1], 2});
            if (pid < 0)
                return 2;
            env.close(fds[1]);
            std::string got;
            for (;;) {
                bfs::Buffer chunk;
                int64_t n = env.read(fds[0], chunk, 4096);
                if (n <= 0)
                    break;
                got.append(chunk.begin(), chunk.end());
            }
            env.close(fds[0]);
            int status = 0;
            env.waitpid(pid, &status, 0);
            if (got != "through-pipe\n")
                return 3;
            if (sys::wexitstatus(status) != 0)
                return 4;
            return 0;
        },
        nullptr});
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/pipespawn-test",
        apps::ProgramRegistry::instance().bundleFor("pipespawn-test"));
    auto r = bx.runArgv({"/usr/bin/pipespawn-test"}, 60000);
    EXPECT_EQ(r.exitCode(), 0)
        << "pipe/spawn/wait through EmEnv failed with code "
        << r.exitCode();
}

TEST(EmEnvWait, WnohangReturnsZeroForRunningChild)
{
    registerPosixTest();
    apps::ProgramRegistry::instance().add(apps::ProgramSpec{
        "wnohang-test", apps::RuntimeKind::EmAsync, 64,
        [](rt::EmEnv &env) -> int {
            int pid = env.spawn({"/usr/bin/primes"});
            if (pid < 0)
                return 1;
            int status = -1;
            // Child is computing: WNOHANG sees nothing yet (0), a
            // blocking wait then reaps it.
            int rc1 = env.waitpid(pid, &status, sys::WNOHANG);
            int rc2 = env.waitpid(pid, &status, 0);
            if (rc2 != pid)
                return 2;
            if (rc1 != 0 && rc1 != pid)
                return 3;
            // ECHILD afterwards: already reaped.
            if (env.waitpid(pid, &status, 0) != -ECHILD)
                return 4;
            return 0;
        },
        nullptr});
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/wnohang-test",
        apps::ProgramRegistry::instance().bundleFor("wnohang-test"));
    auto r = bx.runArgv({"/usr/bin/wnohang-test"}, 60000);
    EXPECT_EQ(r.exitCode(), 0) << "code " << r.exitCode();
}

} // namespace
