/**
 * @file
 * Ring syscall convention tests: registration validation, SQ-full
 * backpressure, whole-batch draining in a single kernel pump, the
 * one-notify-per-batch contract (under a deterministic TestClock), and
 * worker termination unwinding a parked ring waiter.
 *
 * Test programs run inside real Browsix processes (RuntimeKind::EmRing)
 * and reach the batch API via EmEnv::ring(); the host asserts on exit
 * codes and on the kernel's ring counters.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "apps/registry.h"
#include "core/browsix.h"
#include "jsvm/test_clock.h"
#include "runtime/syscall_ring.h"
#include "tests/test_util.h"

using namespace browsix;

namespace {

using testutil::stage;

void
addProgram(const std::string &name, rt::EmProgramFn fn,
           apps::RuntimeKind kind = apps::RuntimeKind::EmRing)
{
    testutil::addProgram(name, std::move(fn), kind);
}

} // namespace

TEST(RingLayout, ValidationRejectsMalformedRegions)
{
    using sys::RingLayout;
    const size_t heap = 1 << 20;
    EXPECT_TRUE(RingLayout::valid(16, 64, heap));
    EXPECT_FALSE(RingLayout::valid(-4, 64, heap)) << "negative base";
    EXPECT_FALSE(RingLayout::valid(18, 64, heap)) << "misaligned base";
    EXPECT_FALSE(RingLayout::valid(16, 48, heap)) << "non-power-of-two";
    EXPECT_FALSE(RingLayout::valid(16, 0, heap)) << "zero entries";
    EXPECT_FALSE(RingLayout::valid(16, 8192, heap)) << "entries cap";
    // 64 entries need 32 + 64*48 = 3104 bytes: reject a heap too small.
    EXPECT_FALSE(RingLayout::valid(16, 64, 3000));
    EXPECT_TRUE(RingLayout::valid(0, 64, 3104));
}

TEST(RingSyscalls, KernelRejectsBogusRegistration)
{
    // ring_personality validates offset/entries against the heap, and a
    // second registration is refused (EBUSY): replacing a live ring
    // would orphan SQEs already written to the old region.
    addProgram("ring-reject", [](rt::EmEnv &env) -> int {
        rt::CallResult r =
            rt::blockingCall(env.client(), "ring_personality",
                             {jsvm::Value(-4), jsvm::Value(64)});
        if (r.r0 != -EINVAL)
            return 1;
        r = rt::blockingCall(env.client(), "ring_personality",
                             {jsvm::Value(16), jsvm::Value(48)});
        if (r.r0 != -EINVAL)
            return 2;
        rt::RingSyscalls ring(*env.syncCalls(), 8); // the one real ring
        if (ring.call(sys::GETPID, {}) != env.pid())
            return 3;
        r = rt::blockingCall(env.client(), "ring_personality",
                             {jsvm::Value(16), jsvm::Value(8)});
        if (r.r0 != -EBUSY)
            return 4;
        return 0;
    }, apps::RuntimeKind::EmSync);
    Browsix bx;
    stage(bx, "ring-reject");
    auto r = bx.runArgv({"/usr/bin/ring-reject"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0) << "kernel accepted a malformed ring";
}

TEST(RingSyscalls, SingleCallsRouteThroughRing)
{
    addProgram("ring-single", [](rt::EmEnv &env) -> int {
        if (env.getpid() <= 0)
            return 1;
        // Since the deferral protocol, read rides the ring too: a drained
        // READ SQE that would block parks kernel-side and its CQE is
        // deferred. Against a regular file it completes in the same
        // drain pass.
        int fd = env.open("/tmp/ring.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 2;
        if (env.write(fd, std::string("ring")) != 4)
            return 3;
        if (env.llseek(fd, 0, 0) != 0)
            return 4;
        bfs::Buffer buf;
        if (env.read(fd, buf, 16) != 4 ||
            std::string(buf.begin(), buf.end()) != "ring")
            return 5;
        sys::StatX st;
        if (env.fstat(fd, st) != 0 || st.size != 4)
            return 6;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-single");
    auto r = bx.runArgv({"/usr/bin/ring-single"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_GT(bx.kernel().stats().ringSyscallCount, 0u)
        << "Ring-mode getpid/open/... should use the ring";
    EXPECT_EQ(bx.kernel().stats().syncSyscallCount, 0u)
        << "every call in this program is ring-eligible now — read "
           "included, via the completion-deferral protocol";
}

TEST(RingSyscalls, SqFullBackpressureCompletesEveryCall)
{
    // A 4-entry ring, 16 getpids submitted before any wait: submit()
    // must park on the full SQ/in-flight window and resume as the
    // kernel frees slots — no call lost, no deadlock. EmSync mode: this
    // hand-built ring is the process's one registered ring.
    addProgram("ring-backpressure", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls small(*env.syncCalls(), 4);
        std::vector<uint32_t> seqs;
        for (int i = 0; i < 16; i++)
            seqs.push_back(small.submit(sys::GETPID, {}));
        small.flush();
        for (uint32_t seq : seqs) {
            if (small.wait(seq).r0 != env.pid())
                return 1;
        }
        return 0;
    }, apps::RuntimeKind::EmSync);
    Browsix bx;
    stage(bx, "ring-backpressure");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-backpressure"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringSyscallCount - before.ringSyscallCount, 16u);
    EXPECT_GE(after.ringBatchesDrained - before.ringBatchesDrained, 2u)
        << "a 4-entry ring cannot take 16 calls in one batch";
    EXPECT_EQ(after.ringCqOverflows, 0u)
        << "the in-flight window must protect the CQ";
}

TEST(RingSyscalls, BatchOf64DrainsInOnePumpWithOneNotify)
{
    // The tentpole contract, deterministically: 64 SQEs published under
    // a single doorbell are drained in one kernel pump and answered
    // with exactly one Atomics notify. TestClock turns the cost-model
    // charges into virtual time so the run is exact and fast.
    jsvm::TestClock clock;
    addProgram("ring-batch64", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        if (!ring || ring->capacity() != 64)
            return 2;
        std::vector<uint32_t> seqs;
        for (int i = 0; i < 64; i++)
            seqs.push_back(ring->submit(sys::GETPID, {}));
        ring->flush();
        if (ring->doorbellsRung() != 1)
            return 3;
        for (uint32_t seq : seqs) {
            if (ring->wait(seq).r0 != env.pid())
                return 1;
        }
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-batch64");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-batch64"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_EQ(after.ringSyscallCount - before.ringSyscallCount, 64u);
    EXPECT_EQ(after.ringBatchesDrained - before.ringBatchesDrained, 1u)
        << "one doorbell -> one drain pass";
    EXPECT_EQ(after.ringNotifies - before.ringNotifies, 1u)
        << "64 completions must coalesce into a single notify";
}

TEST(RingSyscalls, CountersAndLatencyHistogramsTrackRingCalls)
{
    // PR 2 added the ring counters without direct assertions; pin them
    // down together with the per-syscall latency histograms so the stats
    // refactor cannot silently regress either.
    jsvm::TestClock clock;
    addProgram("ring-hist", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        if (!ring)
            return 2;
        std::vector<uint32_t> seqs;
        for (int i = 0; i < 32; i++)
            seqs.push_back(ring->submit(sys::GETPID, {}));
        ring->flush();
        for (uint32_t seq : seqs) {
            if (ring->wait(seq).r0 != env.pid())
                return 1;
        }
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-hist");
    auto r = bx.runArgv({"/usr/bin/ring-hist"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);

    const kernel::KernelStats &st = bx.kernel().stats();
    EXPECT_EQ(st.ringCqOverflows, 0u)
        << "a conforming producer must never overflow its CQ";
    EXPECT_GE(st.ringSyscallCount, 32u);
    EXPECT_GE(st.ringBatchesDrained, 1u);
    EXPECT_LT(st.ringNotifies, st.ringSyscallCount)
        << "batching exists to keep notifies below per-call count";

    const kernel::LatencyHistogram *h = st.latency("getpid");
    ASSERT_NE(h, nullptr) << "ring getpids must land in the histogram";
    EXPECT_GE(h->count, 32u);
    uint64_t bucket_sum = 0;
    for (uint64_t b : h->buckets)
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, h->count);
    EXPECT_LE(h->percentileUs(50), h->percentileUs(99));
    EXPECT_LE(h->percentileUs(99), h->maxUs);
    EXPECT_EQ(st.latency("no-such-syscall"), nullptr);
}

TEST(RingSyscalls, TerminateUnwindsParkedRingWaiter)
{
    // A waiter parked on the ring wait word holds an InterruptToken
    // waker; SIGKILL must wake it, unwind the app thread via
    // WorkerTerminated, and let the worker join — no hang, no
    // use-after-free (the ASan/TSan CI jobs watch this path).
    addProgram("ring-park", [](rt::EmEnv &env) -> int {
        env.write(1, "parked\n");
        // Never-completing wait: nothing was submitted under this seq.
        env.ring()->wait(0xdead);
        return 0; // unreachable
    });
    Browsix bx;
    stage(bx, "ring-park");
    std::string out;
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/ring-park"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find("parked") != std::string::npos; }, 10000));
    EXPECT_EQ(bx.kernel().kill(pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000))
        << "SIGKILL must unwind a parked ring waiter";
    EXPECT_EQ(sys::wtermsig(status), sys::SIGKILL);
}

TEST(RingSyscalls, PointerArgsAndOutDataThroughTheRing)
{
    // stat/getcwd marshal strings in and packed/str results out through
    // heap offsets carried in ring entries.
    addProgram("ring-pointers", [](rt::EmEnv &env) -> int {
        if (env.mkdir("/tmp/ringdir") != 0)
            return 1;
        sys::StatX st;
        if (env.stat("/tmp/ringdir", st) != 0 || !st.isDir())
            return 2;
        if (env.chdir("/tmp/ringdir") != 0)
            return 3;
        if (env.getcwd() != "/tmp/ringdir")
            return 4;
        if (env.rmdir("/tmp/../tmp/ringdir") != 0)
            return 5;
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-pointers");
    auto r = bx.runArgv({"/usr/bin/ring-pointers"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_GT(bx.kernel().stats().ringSyscallCount, 0u);
}

TEST(RingSyscalls, ZeroCopyPreadFillsGuestHeapInPlace)
{
    // The tentpole read path: pread through the ring resolves the guest
    // destination up front and the backend fills it in place — byte-exact
    // content in the guest heap, no intermediate bfs::Buffer bounce.
    addProgram("ring-zerocopy", [](rt::EmEnv &env) -> int {
        const std::string payload = "zero-copy straight into the heap";
        int fd = env.open("/tmp/zc.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 1;
        if (env.write(fd, payload) !=
            static_cast<int64_t>(payload.size()))
            return 2;
        bfs::Buffer buf;
        if (env.pread(fd, buf, 64, 0) !=
            static_cast<int64_t>(payload.size()))
            return 3;
        if (std::string(buf.begin(), buf.end()) != payload)
            return 4;
        // Offset read: the window starts mid-file.
        if (env.pread(fd, buf, 64, 10) !=
            static_cast<int64_t>(payload.size()) - 10)
            return 5;
        if (std::string(buf.begin(), buf.end()) != payload.substr(10))
            return 6;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-zerocopy");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-zerocopy"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.zeroCopyCompletions - before.zeroCopyCompletions, 2u)
        << "both preads must complete through the in-place path";
    EXPECT_EQ(after.copiedCompletions, before.copiedCompletions)
        << "no syscall in this program may bounce an intermediate copy";
}

TEST(RingSyscalls, HostileSqeHeapOffsetsCompleteWithEfault)
{
    // A corrupt (or hostile) SQE whose pointer arguments fall outside
    // the personality heap must be rejected at drain time with -EFAULT,
    // not reach the kernel's heap-write (or string-scan) paths.
    addProgram("ring-efault", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int32_t heap_len = static_cast<int32_t>(sync->heapSize());

        // pread destination starting at end-of-heap.
        int fd = env.open("/tmp/ef.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 2;
        uint32_t s1 = ring->submit(sys::PREAD, {fd, heap_len, 16, 0, 0, 0});
        // getcwd window that overruns the heap end.
        uint32_t s2 =
            ring->submit(sys::GETCWD, {heap_len - 8, 4096, 0, 0, 0, 0});
        // stat with a negative path pointer.
        sync->resetScratch();
        uint32_t sp = sync->alloc(sys::STAT_BYTES);
        uint32_t s3 = ring->submit(
            sys::STAT, {-4, static_cast<int32_t>(sp), 0, 0, 0, 0});
        ring->flush();
        if (ring->wait(s1).r0 != -EFAULT)
            return 3;
        if (ring->wait(s2).r0 != -EFAULT)
            return 4;
        if (ring->wait(s3).r0 != -EFAULT)
            return 5;
        // readlink with bufsiz <= 0 must be the POSIX -EINVAL through
        // the ring too, not an -EFAULT from the drain-time validator.
        sync->resetScratch();
        int32_t lp =
            static_cast<int32_t>(sync->pushString("/tmp/ef.txt"));
        uint32_t s4 = ring->submit(sys::READLINK, {lp, 16, -1, 0, 0, 0});
        ring->flush();
        if (ring->wait(s4).r0 != -EINVAL)
            return 6;
        // The ring stays usable after rejected entries.
        if (ring->call(sys::GETPID, {}) != env.pid())
            return 7;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-efault");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-efault"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringEfaults - before.ringEfaults, 3u)
        << "each hostile SQE must be counted as a drain-time EFAULT";
}

TEST(RingSyscalls, WritevZeroCopyGathersGuestHeapByteExact)
{
    // The tentpole write path: one writev SQE names three non-adjacent
    // guest-heap fragments; the kernel consumes them in place (no
    // argData Buffer) and the backend receives the exact bytes. The
    // read-back goes through the zero-copy pread leg, so the whole
    // program moves data without a single bounced completion.
    addProgram("ring-writev", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int fd = env.open("/tmp/wv.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 2;
        sync->resetScratch();
        const std::string a = "gather-", b = "scatter ", c = "write!";
        uint32_t pa = sync->pushString(a);
        sync->alloc(24); // gaps force three distinct spans
        uint32_t pb = sync->pushString(b);
        sync->alloc(40);
        uint32_t pc = sync->pushString(c);
        std::vector<sys::IoVec> iovs = {
            {static_cast<int32_t>(pa), static_cast<int32_t>(a.size())},
            {static_cast<int32_t>(pb), static_cast<int32_t>(b.size())},
            {static_cast<int32_t>(pc), static_cast<int32_t>(c.size())}};
        uint32_t seq = ring->submitv(sys::WRITEV, fd, iovs);
        ring->flush();
        const std::string want = a + b + c;
        if (ring->wait(seq).r0 != static_cast<int32_t>(want.size()))
            return 3;
        bfs::Buffer buf;
        if (env.pread(fd, buf, 64, 0) !=
            static_cast<int64_t>(want.size()))
            return 4;
        if (std::string(buf.begin(), buf.end()) != want)
            return 5;
        // pwritev overwrites the middle through the same gather path.
        std::vector<sys::IoVec> over = {
            {static_cast<int32_t>(pc), static_cast<int32_t>(c.size())}};
        seq = ring->submitv(sys::PWRITEV, fd, over, 7);
        ring->flush();
        if (ring->wait(seq).r0 != static_cast<int32_t>(c.size()))
            return 6;
        if (env.pread(fd, buf, 64, 0) <= 0)
            return 7;
        if (std::string(buf.begin(), buf.end()) !=
            "gather-write!r write!")
            return 8;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-writev");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-writev"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.zeroCopyCompletions - before.zeroCopyCompletions, 4u)
        << "writev, pwritev and both preads must complete in place";
    EXPECT_EQ(after.copiedCompletions, before.copiedCompletions)
        << "no syscall in this program may bounce an intermediate copy";
}

TEST(RingSyscalls, HostileIovsCompleteWithEfault)
{
    // Vectored SQEs are validated at drain time: a hostile iovec array
    // pointer, or an entry whose span leaves the heap, completes with
    // -EFAULT before any handler touches it; degenerate counts keep the
    // handler's POSIX EINVAL; the ring stays usable afterwards.
    addProgram("ring-iov-efault", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int fd = env.open("/tmp/iov.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 2;
        int32_t heap_len = static_cast<int32_t>(sync->heapSize());

        // The iovec array itself outside the heap.
        uint32_t s1 =
            ring->submit(sys::WRITEV, {fd, heap_len, 2, 0, 0, 0});
        // A well-placed array whose second entry's span leaves the heap.
        sync->resetScratch();
        uint32_t good = sync->alloc(8);
        std::memcpy(sync->heapData() + good, "datadata", 8);
        sys::IoVec bad[2] = {{static_cast<int32_t>(good), 8},
                             {heap_len - 2, 16}};
        uint32_t arr = sync->alloc(sizeof(bad));
        std::memcpy(sync->heapData() + arr, bad, sizeof(bad));
        uint32_t s2 = ring->submit(
            sys::WRITEV, {fd, static_cast<int32_t>(arr), 2, 0, 0, 0});
        // A negative entry pointer.
        sys::IoVec neg[1] = {{-16, 8}};
        uint32_t narr = sync->alloc(sizeof(neg));
        std::memcpy(sync->heapData() + narr, neg, sizeof(neg));
        uint32_t s3 = ring->submit(
            sys::READV, {fd, static_cast<int32_t>(narr), 1, 0, 0, 0});
        // Degenerate counts pass validation; the handler EINVALs.
        uint32_t s4 = ring->submit(
            sys::WRITEV, {fd, static_cast<int32_t>(arr), 0, 0, 0, 0});
        uint32_t s5 = ring->submit(sys::WRITEV,
                                   {fd, static_cast<int32_t>(arr),
                                    sys::kIovMax + 1, 0, 0, 0});
        ring->flush();
        if (ring->wait(s1).r0 != -EFAULT)
            return 3;
        if (ring->wait(s2).r0 != -EFAULT)
            return 4;
        if (ring->wait(s3).r0 != -EFAULT)
            return 5;
        if (ring->wait(s4).r0 != -EINVAL)
            return 6;
        if (ring->wait(s5).r0 != -EINVAL)
            return 7;
        // Negative file offset: EINVAL before the uint64 cast can wrap
        // backend offset arithmetic into a wild write.
        sys::IoVec ok1[1] = {{static_cast<int32_t>(good), 8}};
        uint32_t oarr = sync->alloc(sizeof(ok1));
        std::memcpy(sync->heapData() + oarr, ok1, sizeof(ok1));
        uint32_t s7 = ring->submit(
            sys::PWRITEV,
            {fd, static_cast<int32_t>(oarr), 1, -5, 0, 0});
        ring->flush();
        if (ring->wait(s7).r0 != -EINVAL)
            return 11;

        // All-zero-length iovs: a valid no-op, not a fault.
        std::vector<sys::IoVec> zs = {{static_cast<int32_t>(good), 0},
                                      {static_cast<int32_t>(good), 0}};
        uint32_t s6 = ring->submitv(sys::WRITEV, fd, zs);
        ring->flush();
        if (ring->wait(s6).r0 != 0)
            return 8;
        // The ring (and the file) stay healthy after rejected entries.
        if (ring->call(sys::GETPID, {}) != env.pid())
            return 9;
        if (env.write(fd, std::string("ok")) != 2)
            return 10;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-iov-efault");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-iov-efault"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringEfaults - before.ringEfaults, 3u)
        << "each hostile vectored SQE must be an -EFAULT at drain time";
}

TEST(RingSyscalls, CoalescedDoorbellSkipsMessagesAcrossBursts)
{
    // Adaptive doorbell coalescing, deterministically under TestClock:
    // a producer that keeps the SQ warm (pipelined bursts of 8) pays at
    // most a handful of doorbell messages for the whole run — while a
    // kernel drain pass is scheduled, flush() skips the message and the
    // scheduled pass picks up the published tail. Every burst still
    // completes, and notifies stay coalesced (≈ one per productive
    // drain, far below one per call).
    jsvm::TestClock clock;
    constexpr int kBatch = 8;
    constexpr int kMaxBursts = 512; // safety valve, typically a handful
    addProgram("ring-coalesce", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        if (!ring)
            return 1;
        // Pipelined bursts: submit the next batch before reaping the
        // previous, keeping the SQ warm, until at least one flush was
        // absorbed by an armed drain pipeline (or the valve trips —
        // which would mean coalescing never engages).
        std::vector<uint32_t> prev, cur;
        int bursts = 0;
        while (bursts < kMaxBursts && ring->doorbellsCoalesced() == 0) {
            cur.clear();
            for (int i = 0; i < kBatch; i++)
                cur.push_back(ring->submit(sys::GETPID, {}));
            ring->flush();
            bursts++;
            for (uint32_t seq : prev) {
                if (ring->wait(seq).r0 != env.pid())
                    return 2;
            }
            prev = cur;
        }
        for (uint32_t seq : prev) {
            if (ring->wait(seq).r0 != env.pid())
                return 3;
        }
        if (ring->doorbellsCoalesced() == 0)
            return 4; // never once skipped a message: coalescing broken
        // Far fewer messages than bursts: a flush is either a message,
        // a drainPending skip, or covered by a still-in-flight doorbell.
        if (ring->doorbellsRung() >= static_cast<uint64_t>(bursts))
            return 5;
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-coalesce");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-coalesce"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    uint64_t calls = after.ringSyscallCount - before.ringSyscallCount;
    uint64_t notifies = after.ringNotifies - before.ringNotifies;
    uint64_t bursts = calls / kBatch;
    EXPECT_GT(after.ringDrainsScheduled, before.ringDrainsScheduled)
        << "productive drains must keep the coalescing pipeline armed";
    // One notify per coalesced burst: every productive drain issues one
    // notify for its whole batch (split drains can add a few), far
    // below one per call.
    EXPECT_LE(notifies, 2 * bursts + 4)
        << "notifies must track bursts, not calls";
    EXPECT_LT(notifies, calls / 2);
}

TEST(RingSyscalls, MoreComingHintDropsDoorbellsForWaitThenSubmitBursts)
{
    // The producer-side "more coming" hint: a strict wait-then-submit
    // loop (submit one, flush, wait — the worst case for coalescing,
    // since the SQ is empty whenever the producer is parked) declares
    // the burst via hintMore(true). The kernel's drain pipeline then
    // stays armed through the gaps where the producer is reaping, so
    // every flush after the first finds drainPending set and skips its
    // doorbell message. Without the hint each round would re-ring once
    // the pipeline's one-pass grace expired.
    jsvm::TestClock clock;
    constexpr int kRounds = 32;
    addProgram("ring-morehint", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        if (!ring)
            return 1;
        rt::HintScope hint(ring);
        for (int i = 0; i < kRounds; i++) {
            uint32_t seq = ring->submit(sys::GETPID, {});
            ring->flush();
            if (ring->wait(seq).r0 != env.pid())
                return 2;
        }
        // The message-count drop is the whole point: one doorbell buys
        // the entire burst (a small allowance for a pipeline wind-down
        // losing a race with the next round's flush).
        if (ring->doorbellsRung() > 3)
            return 3;
        if (ring->doorbellsCoalesced() < kRounds - 4)
            return 4;
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-morehint");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-morehint"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_EQ(after.ringSyscallCount - before.ringSyscallCount,
              static_cast<uint64_t>(kRounds))
        << "every round must still complete through the ring";
    EXPECT_LE(after.ringDoorbells - before.ringDoorbells, 3u)
        << "the hint must absorb the per-round doorbell messages";
}

TEST(RingSyscalls, BatchedStatSweepCoalescesNotifies)
{
    // EmEnv::statBatch: a 32-path metadata sweep submits every SQE under
    // one doorbell, so the kernel answers the whole sweep with one
    // (coalesced) notify instead of one per stat — the batched coreutils
    // hot-path contract.
    addProgram("ring-statbatch", [](rt::EmEnv &env) -> int {
        std::vector<std::string> paths;
        for (int i = 0; i < 32; i++)
            paths.push_back("/batch/f" + std::to_string(i));
        paths.push_back("/batch/missing");
        auto res = env.statBatch(paths);
        if (res.size() != paths.size())
            return 1;
        for (int i = 0; i < 32; i++) {
            if (res[i].err != 0 || res[i].st.size != 64 ||
                !res[i].st.isFile())
                return 2;
        }
        if (res[32].err != -ENOENT)
            return 3;
        return 0;
    });
    Browsix bx;
    bx.rootFs().mkdirAll("/batch");
    for (int i = 0; i < 32; i++)
        bx.rootFs().writeFile("/batch/f" + std::to_string(i),
                              std::string(64, 'x'));
    stage(bx, "ring-statbatch");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-statbatch"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    uint64_t stats_made = after.ringSyscallCount - before.ringSyscallCount;
    uint64_t notifies = after.ringNotifies - before.ringNotifies;
    EXPECT_GE(stats_made, 33u);
    EXPECT_LE(notifies, 8u)
        << "a batched sweep must coalesce wakes, not pay one per stat";
}

TEST(RingSyscalls, DeferredCqeCompletesParkedPipeRead)
{
    // The deferral tentpole: a READ SQE drained against an empty pipe
    // parks kernel-side (its ctx joins the pipe's read-waiter queue) and
    // the CQE is pushed when a writer in another process supplies bytes.
    // That push happens outside any drain pass of the reader's ring, so
    // it counts as a deferred completion and pays its own notify — and
    // the writer's guest window lands in the parked reader's guest
    // window directly (span-to-span), so both sides complete zero-copy.
    jsvm::TestClock clock;
    addProgram("deferred-writer", [](rt::EmEnv &env) -> int {
        // fd 0 is the pipe's write end, wired up by the parent's spawn.
        return env.write(0, std::string("deferred!")) == 9 ? 0 : 1;
    });
    addProgram("deferred-reader", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 2;
        sync->resetScratch();
        uint32_t buf = sync->alloc(32);
        uint32_t seq = ring->submit(
            sys::READ, {fds[0], static_cast<int32_t>(buf), 32, 0, 0, 0});
        ring->flush(); // drained now; the empty pipe parks the SQE
        int child = env.spawn({"/usr/bin/deferred-writer"}, {fds[1], 1, 2});
        if (child < 0)
            return 3;
        rt::RingSyscalls::Completion c = ring->wait(seq);
        if (c.r0 != 9)
            return 4;
        if (std::string(reinterpret_cast<char *>(sync->heapData() + buf),
                        9) != "deferred!")
            return 5;
        int status = 0;
        if (env.waitpid(child, &status, 0) != child)
            return 6;
        return 0;
    });
    Browsix bx;
    stage(bx, "deferred-reader");
    stage(bx, "deferred-writer");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/deferred-reader"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringDeferredCompletions - before.ringDeferredCompletions,
              1u)
        << "the parked READ's CQE must land outside a drain pass";
    EXPECT_GE(after.zeroCopyCompletions - before.zeroCopyCompletions, 2u)
        << "writer window -> parked reader window must skip the bounce "
           "buffer on both completions";
    EXPECT_EQ(after.ringCqOverflows, before.ringCqOverflows)
        << "a parked SQE keeps its CQ reservation";
}

TEST(RingSyscalls, SigkillUnwindsParkedDeferredSqe)
{
    // A genuinely parked SQE (kernel-side, on the pipe's waiter queue —
    // not just a producer waiting on a bogus seq) must not strand its
    // in-flight slot or its worker when the process is SIGKILLed: exit
    // teardown drops the pipe ends, the collapsing waiter list completes
    // the parked ctx, and finishRing no-ops on the dead task.
    addProgram("deferred-park", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 2;
        env.write(1, "parked\n");
        sync->resetScratch();
        uint32_t buf = sync->alloc(16);
        uint32_t seq = ring->submit(
            sys::READ, {fds[0], static_cast<int32_t>(buf), 16, 0, 0, 0});
        ring->flush();
        ring->wait(seq); // no writer ever comes; SIGKILL unwinds
        return 0;        // unreachable
    });
    Browsix bx;
    stage(bx, "deferred-park");
    std::string out;
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/deferred-park"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find("parked") != std::string::npos; }, 10000));
    EXPECT_EQ(bx.kernel().kill(pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000))
        << "SIGKILL must unwind a kernel-side parked SQE";
    EXPECT_EQ(sys::wtermsig(status), sys::SIGKILL);
    EXPECT_EQ(bx.kernel().stats().ringCqOverflows, 0u);
}

TEST(RingSyscalls, PollReadinessRidesTheDeferralProtocol)
{
    // poll: one SQE names the whole descriptor set. Ready descriptors
    // complete in the drain pass; an all-blocked set parks against every
    // polled object's readiness watcher and the CQE is deferred until
    // one fires. Doorbell coalescing keeps working across the park.
    jsvm::TestClock clock;
    addProgram("poll-writer", [](rt::EmEnv &env) -> int {
        return env.write(0, std::string("x")) == 1 ? 0 : 1;
    });
    addProgram("poll-prog", [](rt::EmEnv &env) -> int {
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 1;
        // Immediate leg: buffered bytes mean POLLIN, free space POLLOUT.
        if (env.write(fds[1], std::string("hi")) != 2)
            return 2;
        std::vector<rt::EmEnv::PollSpec> set(2);
        set[0].fd = fds[0];
        set[0].events = sys::POLLIN_;
        set[1].fd = fds[1];
        set[1].events = sys::POLLOUT_;
        if (env.poll(set) != 2)
            return 3;
        if (!(set[0].revents & sys::POLLIN_))
            return 4;
        if (!(set[1].revents & sys::POLLOUT_))
            return 5;
        bfs::Buffer drain;
        if (env.read(fds[0], drain, 16) != 2)
            return 6;
        // Parked leg: the pipe is empty again, so nothing is ready; the
        // SQE parks on the pipe's readiness watcher until the spawned
        // writer fires it.
        int child = env.spawn({"/usr/bin/poll-writer"}, {fds[1], 1, 2});
        if (child < 0)
            return 7;
        std::vector<rt::EmEnv::PollSpec> parked(1);
        parked[0].fd = fds[0];
        parked[0].events = sys::POLLIN_;
        if (env.poll(parked) != 1)
            return 8;
        if (!(parked[0].revents & sys::POLLIN_))
            return 9;
        if (env.read(fds[0], drain, 16) != 1)
            return 10;
        int status = 0;
        if (env.waitpid(child, &status, 0) != child)
            return 11;
        // A closed descriptor number reports POLLNVAL (still "ready").
        std::vector<rt::EmEnv::PollSpec> bad(1);
        bad[0].fd = 99;
        bad[0].events = sys::POLLIN_;
        if (env.poll(bad) != 1)
            return 12;
        if (bad[0].revents != sys::POLLNVAL_)
            return 13;
        // The ring stays healthy after the parked completion.
        return env.getpid() > 0 ? 0 : 14;
    });
    Browsix bx;
    stage(bx, "poll-prog");
    stage(bx, "poll-writer");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/poll-prog"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringDeferredCompletions - before.ringDeferredCompletions,
              1u)
        << "the parked poll's CQE must land outside a drain pass";
    EXPECT_EQ(after.ringCqOverflows, 0u);
    // Each drained batch pays at most one notify; a deferred completion
    // pays exactly one of its own. More than that would mean the park
    // broke the doorbell/drainPending coalescing.
    EXPECT_LE(after.ringNotifies - before.ringNotifies,
              (after.ringBatchesDrained - before.ringBatchesDrained) +
                  (after.ringDeferredCompletions -
                   before.ringDeferredCompletions))
        << "a parked poll must not cost extra wakes";
    const kernel::LatencyHistogram *h = after.latency("poll");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->count, 3u);
}

TEST(RingSyscalls, AcceptDefersUntilConnectArrives)
{
    // accept-then-connect ordering: the server's ACCEPT SQE drains with
    // no pending connection and parks on the listener; the host-side
    // connect (main loop, outside any drain pass of the server's ring)
    // enqueues the peer and the deferred CQE carries the accepted fd and
    // remote port. Data then flows both ways over the accepted socket.
    jsvm::TestClock clock;
    addProgram("ring-server", [](rt::EmEnv &env) -> int {
        int s = env.socket();
        if (s < 0)
            return 1;
        if (env.bind(s, 8080) != 0)
            return 2;
        if (env.listen(s, 4) != 0)
            return 3;
        // Submit the ACCEPT SQE and let it park BEFORE announcing the
        // port: the host's connect must find it already parked, or the
        // race (connect landing before the accept drains) lets accept
        // complete in-drain and the deferred-CQE assertion below flakes.
        rt::RingSyscalls *ring = env.ring();
        if (!ring)
            return 9;
        uint32_t seq = ring->submit(sys::ACCEPT, {s, 0, 0, 0, 0, 0});
        ring->flush(); // drained now; no pending connection -> parks
        env.write(1, "listening\n");
        rt::RingSyscalls::Completion ac = ring->wait(seq);
        int c = static_cast<int>(ac.r0);
        int rport = static_cast<int>(ac.r1);
        if (c < 0)
            return 4;
        if (rport <= 0)
            return 5;
        bfs::Buffer buf;
        if (env.read(c, buf, 16) != 4)
            return 6;
        if (std::string(buf.begin(), buf.end()) != "ping")
            return 7;
        if (env.write(c, std::string("pong")) != 4)
            return 8;
        env.close(c);
        env.close(s);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-server");
    auto before = bx.kernel().stats();
    std::string out, got;
    bool exited = false;
    int status = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/ring-server"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int) {});
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find("listening") != std::string::npos; },
        10000));
    std::shared_ptr<kernel::Kernel::HostConn> conn;
    bx.kernel().connect(
        8080, [&](const bfs::Buffer &d) { got.append(d.begin(), d.end()); },
        nullptr, [&](int err, std::shared_ptr<kernel::Kernel::HostConn> c) {
            ASSERT_EQ(err, 0);
            conn = std::move(c);
        });
    ASSERT_TRUE(bx.runUntil([&]() { return conn != nullptr; }, 10000));
    conn->write(bfs::Buffer{'p', 'i', 'n', 'g'});
    ASSERT_TRUE(bx.runUntil([&]() { return got == "pong"; }, 10000));
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000));
    EXPECT_EQ(sys::wexitstatus(status), 0);
    conn->close();
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringDeferredCompletions - before.ringDeferredCompletions,
              1u)
        << "the parked ACCEPT's CQE must land outside a drain pass";
    EXPECT_EQ(after.ringCqOverflows, 0u);
}

TEST(RingSyscalls, Wait4ParksOnProcessTableAndSigkillCompletesIt)
{
    // A WAIT4 SQE for a live child drains, finds no zombie and parks on
    // the process table's wait-waiter list. When the host SIGKILLs the
    // child, completeWaits pushes the deferred CQE and writes the wait
    // status into the guest heap window in place — no sync fallback.
    jsvm::TestClock clock;
    addProgram("wait-sleeper", [](rt::EmEnv &env) -> int {
        bfs::Buffer b;
        env.read(0, b, 1); // fd 0 is a pipe whose writer never comes
        return 0;          // unreachable: SIGKILL ends the process
    });
    addProgram("wait-parent", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 2;
        int child = env.spawn({"/usr/bin/wait-sleeper"}, {fds[0], 1, 2});
        if (child < 0)
            return 3;
        sync->resetScratch();
        uint32_t sp = sync->alloc(4);
        uint32_t seq = ring->submit(
            sys::WAIT4, {child, static_cast<int32_t>(sp), 0, 0, 0, 0});
        ring->flush(); // drained; the child is alive -> parks
        env.write(1, "child=" + std::to_string(child) + "\n");
        rt::RingSyscalls::Completion c = ring->wait(seq);
        if (c.r0 != child)
            return 4;
        int status = 0;
        std::memcpy(&status, sync->heapData() + sp, 4);
        if (sys::wtermsig(status) != sys::SIGKILL)
            return 5;
        return 0;
    });
    Browsix bx;
    stage(bx, "wait-parent");
    stage(bx, "wait-sleeper");
    auto before = bx.kernel().stats();
    std::string out;
    bool exited = false;
    int status = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/wait-parent"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int) {});
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find('\n') != std::string::npos; }, 10000));
    size_t at = out.find("child=");
    ASSERT_NE(at, std::string::npos);
    int child_pid = std::atoi(out.c_str() + at + 6);
    ASSERT_GT(child_pid, 0);
    ASSERT_TRUE(bx.runUntil(
        [&]() {
            return bx.kernel().stats().wait4Parked > before.wait4Parked;
        },
        10000))
        << "the WAIT4 SQE must park on the wait-waiter list";
    EXPECT_EQ(bx.kernel().kill(child_pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000));
    EXPECT_EQ(sys::wexitstatus(status), 0)
        << "parent must see the child's pid and SIGKILL termsig";
    auto after = bx.kernel().stats();
    EXPECT_GE(after.wait4Parked - before.wait4Parked, 1u);
    EXPECT_GE(after.ringDeferredCompletions - before.ringDeferredCompletions,
              1u)
        << "the parked WAIT4's CQE must land outside a drain pass";
    EXPECT_EQ(after.ringCqOverflows, 0u);
}

TEST(RingSyscalls, ConnectParkedOnFullBacklogRefusedWhenListenerDies)
{
    // connect against a full backlog parks on the listener's rendezvous.
    // When the listener's process is SIGKILLed, teardown closes the
    // listening socket, which refuses every parked connect: the deferred
    // CQE carries -ECONNREFUSED and the client exits cleanly.
    jsvm::TestClock clock;
    addProgram("refuse-server", [](rt::EmEnv &env) -> int {
        int s = env.socket();
        if (s < 0)
            return 1;
        if (env.bind(s, 8081) != 0)
            return 2;
        if (env.listen(s, 1) != 0)
            return 3;
        env.write(1, "srvup\n");
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 4;
        bfs::Buffer b;
        env.read(fds[0], b, 1); // parks forever; SIGKILL tears down
        return 0;               // unreachable
    });
    addProgram("refuse-client", [](rt::EmEnv &env) -> int {
        int s = env.socket();
        if (s < 0)
            return 1;
        // Backlog already holds the host's connection, so this CONNECT
        // SQE parks until the listener dies.
        int rc = env.connect(s, 8081);
        return rc == -ECONNREFUSED ? 0 : 2;
    });
    Browsix bx;
    stage(bx, "refuse-server");
    stage(bx, "refuse-client");
    auto before = bx.kernel().stats();
    std::string out;
    bool srv_exited = false, cli_exited = false;
    int srv_pid = 0, cli_status = -1;
    bx.kernel().spawnRoot(
        {"/usr/bin/refuse-server"}, bx.kernel().defaultEnv, "/",
        [&](int) { srv_exited = true; },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { srv_pid = p; });
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find("srvup") != std::string::npos; }, 10000));
    // Fill the backlog (1) with a host connection nobody accepts.
    std::shared_ptr<kernel::Kernel::HostConn> conn;
    bx.kernel().connect(
        8081, [](const bfs::Buffer &) {}, nullptr,
        [&](int err, std::shared_ptr<kernel::Kernel::HostConn> c) {
            ASSERT_EQ(err, 0);
            conn = std::move(c);
        });
    ASSERT_TRUE(bx.runUntil([&]() { return conn != nullptr; }, 10000));
    bx.kernel().spawnRoot(
        {"/usr/bin/refuse-client"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            cli_status = st;
            cli_exited = true;
        },
        [](const bfs::Buffer &) {}, nullptr, [&](int) {});
    ASSERT_TRUE(bx.runUntil(
        [&]() {
            return bx.kernel().stats().connectsParked > before.connectsParked;
        },
        10000))
        << "the client's CONNECT must park on the full backlog";
    EXPECT_FALSE(cli_exited);
    EXPECT_EQ(bx.kernel().kill(srv_pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return srv_exited && cli_exited; },
                            10000));
    EXPECT_EQ(sys::wexitstatus(cli_status), 0)
        << "parked connect must complete with -ECONNREFUSED, not hang";
    auto after = bx.kernel().stats();
    EXPECT_GE(after.connectsParked - before.connectsParked, 1u);
    EXPECT_GE(after.ringDeferredCompletions - before.ringDeferredCompletions,
              1u)
        << "the refused CONNECT's CQE must land outside a drain pass";
    EXPECT_EQ(after.ringCqOverflows, 0u);
}

TEST(RingSyscalls, EpollInterestListSurvivesParkAndClosedFd)
{
    // epoll: the interest list lives kernel-side; epoll_wait re-checks it
    // level-triggered, parks (one SQE) when nothing is ready, and reports
    // a closed-but-still-registered descriptor as POLLERR|POLLHUP instead
    // of parking forever — the caller prunes it with EPOLL_CTL_DEL.
    jsvm::TestClock clock;
    addProgram("epoll-writer", [](rt::EmEnv &env) -> int {
        return env.write(0, std::string("x")) == 1 ? 0 : 1;
    });
    addProgram("epoll-prog", [](rt::EmEnv &env) -> int {
        int ep = env.epollCreate();
        if (ep < 0)
            return 1;
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 2;
        if (env.epollCtl(ep, sys::EPOLL_CTL_ADD_, fds[0], sys::POLLIN_) != 0)
            return 3;
        // ctl edge cases: duplicate ADD, MOD of an unregistered fd, ADD
        // of a descriptor that does not exist, ctl on a non-epoll fd.
        if (env.epollCtl(ep, sys::EPOLL_CTL_ADD_, fds[0], sys::POLLIN_) !=
            -EEXIST)
            return 4;
        if (env.epollCtl(ep, sys::EPOLL_CTL_MOD_, 99, sys::POLLIN_) !=
            -ENOENT)
            return 5;
        if (env.epollCtl(ep, sys::EPOLL_CTL_ADD_, 99, sys::POLLIN_) !=
            -EBADF)
            return 6;
        if (env.epollCtl(fds[0], sys::EPOLL_CTL_ADD_, ep, 0) != -EINVAL)
            return 7;
        // Immediate leg: buffered bytes mean the wait completes in-drain.
        if (env.write(fds[1], std::string("hi")) != 2)
            return 8;
        std::vector<rt::EmEnv::PollSpec> evs(4);
        if (env.epollWait(ep, evs) != 1)
            return 9;
        if (evs[0].fd != fds[0] || !(evs[0].revents & sys::POLLIN_))
            return 10;
        bfs::Buffer drain;
        if (env.read(fds[0], drain, 16) != 2)
            return 11;
        // Parked leg: the pipe is empty again; the wait parks against the
        // registered set's readiness watchers until the writer fires.
        int child = env.spawn({"/usr/bin/epoll-writer"}, {fds[1], 1, 2});
        if (child < 0)
            return 12;
        if (env.epollWait(ep, evs) != 1)
            return 13;
        if (evs[0].fd != fds[0] || !(evs[0].revents & sys::POLLIN_))
            return 14;
        if (env.read(fds[0], drain, 16) != 1)
            return 15;
        int status = 0;
        if (env.waitpid(child, &status, 0) != child)
            return 16;
        // Closed-registered-fd leg: the interest list still names fds[0]
        // after close; the wait reports it ERR|HUP rather than parking.
        env.close(fds[0]);
        if (env.epollWait(ep, evs) != 1)
            return 17;
        if (evs[0].fd != fds[0])
            return 18;
        if (evs[0].revents != (sys::POLLERR_ | sys::POLLHUP_))
            return 19;
        if (env.epollCtl(ep, sys::EPOLL_CTL_DEL_, fds[0], 0) != 0)
            return 20;
        env.close(fds[1]);
        env.close(ep);
        return 0;
    });
    Browsix bx;
    stage(bx, "epoll-prog");
    stage(bx, "epoll-writer");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/epoll-prog"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.epollWaitsParked - before.epollWaitsParked, 1u);
    EXPECT_GE(after.ringDeferredCompletions - before.ringDeferredCompletions,
              1u)
        << "the parked epoll_wait's CQE must land outside a drain pass";
    EXPECT_EQ(after.ringCqOverflows, 0u);
}

TEST(RingSyscalls, SendfileMovesKernelSideAndShortCountsAtEof)
{
    // sendfile moves file bytes into a pipe entirely kernel-side. The
    // count is an upper bound: a read past EOF short-counts to the bytes
    // actually present; an offset at/past EOF moves zero.
    addProgram("sendfile-prog", [](rt::EmEnv &env) -> int {
        const std::string payload = "sendfile!!"; // 10 bytes
        int fd = env.open("/tmp/sf.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 1;
        if (env.write(fd, payload) != 10)
            return 2;
        int fds[2];
        if (env.pipe2(fds) != 0)
            return 3;
        // EOF short count: ask for 64, the file holds 10.
        if (env.sendfile(fds[1], fd, 0, 64) != 10)
            return 4;
        bfs::Buffer buf;
        if (env.read(fds[0], buf, 64) != 10)
            return 5;
        if (std::string(buf.begin(), buf.end()) != payload)
            return 6;
        // Offset past EOF moves nothing (0, not an error).
        if (env.sendfile(fds[1], fd, 100, 16) != 0)
            return 7;
        // Mid-file offset short-counts to the tail.
        if (env.sendfile(fds[1], fd, 4, 64) != 6)
            return 8;
        if (env.read(fds[0], buf, 64) != 6)
            return 9;
        if (std::string(buf.begin(), buf.end()) != payload.substr(4))
            return 10;
        if (env.sendfile(fds[1], 99, 0, 8) != -EBADF)
            return 11;
        if (env.sendfile(fds[1], fd, -1, 8) != -EINVAL)
            return 12;
        if (env.sendfile(fds[1], fd, 0, -8) != -EINVAL)
            return 13;
        // The source must be seekable: a pipe end is ESPIPE.
        if (env.sendfile(fds[1], fds[0], 0, 8) != -ESPIPE)
            return 14;
        if (env.sendfile(fds[1], fd, 0, 0) != 0)
            return 15;
        env.close(fds[0]);
        env.close(fds[1]);
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "sendfile-prog");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/sendfile-prog"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_EQ(after.sendfileBytes - before.sendfileBytes, 16u)
        << "10 bytes from offset 0 plus 6 from offset 4, nothing else";
    EXPECT_EQ(after.ringCqOverflows, 0u);
}
