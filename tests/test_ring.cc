/**
 * @file
 * Ring syscall convention tests: registration validation, SQ-full
 * backpressure, whole-batch draining in a single kernel pump, the
 * one-notify-per-batch contract (under a deterministic TestClock), and
 * worker termination unwinding a parked ring waiter.
 *
 * Test programs run inside real Browsix processes (RuntimeKind::EmRing)
 * and reach the batch API via EmEnv::ring(); the host asserts on exit
 * codes and on the kernel's ring counters.
 */
#include <gtest/gtest.h>

#include "apps/registry.h"
#include "core/browsix.h"
#include "jsvm/test_clock.h"
#include "runtime/syscall_ring.h"
#include "tests/test_util.h"

using namespace browsix;

namespace {

using testutil::stage;

void
addProgram(const std::string &name, rt::EmProgramFn fn,
           apps::RuntimeKind kind = apps::RuntimeKind::EmRing)
{
    testutil::addProgram(name, std::move(fn), kind);
}

} // namespace

TEST(RingLayout, ValidationRejectsMalformedRegions)
{
    using sys::RingLayout;
    const size_t heap = 1 << 20;
    EXPECT_TRUE(RingLayout::valid(16, 64, heap));
    EXPECT_FALSE(RingLayout::valid(-4, 64, heap)) << "negative base";
    EXPECT_FALSE(RingLayout::valid(18, 64, heap)) << "misaligned base";
    EXPECT_FALSE(RingLayout::valid(16, 48, heap)) << "non-power-of-two";
    EXPECT_FALSE(RingLayout::valid(16, 0, heap)) << "zero entries";
    EXPECT_FALSE(RingLayout::valid(16, 8192, heap)) << "entries cap";
    // 64 entries need 32 + 64*48 = 3104 bytes: reject a heap too small.
    EXPECT_FALSE(RingLayout::valid(16, 64, 3000));
    EXPECT_TRUE(RingLayout::valid(0, 64, 3104));
}

TEST(RingSyscalls, KernelRejectsBogusRegistration)
{
    // ring_personality validates offset/entries against the heap, and a
    // second registration is refused (EBUSY): replacing a live ring
    // would orphan SQEs already written to the old region.
    addProgram("ring-reject", [](rt::EmEnv &env) -> int {
        rt::CallResult r =
            rt::blockingCall(env.client(), "ring_personality",
                             {jsvm::Value(-4), jsvm::Value(64)});
        if (r.r0 != -EINVAL)
            return 1;
        r = rt::blockingCall(env.client(), "ring_personality",
                             {jsvm::Value(16), jsvm::Value(48)});
        if (r.r0 != -EINVAL)
            return 2;
        rt::RingSyscalls ring(*env.syncCalls(), 8); // the one real ring
        if (ring.call(sys::GETPID, {}) != env.pid())
            return 3;
        r = rt::blockingCall(env.client(), "ring_personality",
                             {jsvm::Value(16), jsvm::Value(8)});
        if (r.r0 != -EBUSY)
            return 4;
        return 0;
    }, apps::RuntimeKind::EmSync);
    Browsix bx;
    stage(bx, "ring-reject");
    auto r = bx.runArgv({"/usr/bin/ring-reject"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0) << "kernel accepted a malformed ring";
}

TEST(RingSyscalls, SingleCallsRouteThroughRing)
{
    addProgram("ring-single", [](rt::EmEnv &env) -> int {
        if (env.getpid() <= 0)
            return 1;
        // A blocking-capable call falls back to the sync convention but
        // must still work end to end in Ring mode.
        int fd = env.open("/tmp/ring.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 2;
        if (env.write(fd, std::string("ring")) != 4)
            return 3;
        if (env.llseek(fd, 0, 0) != 0)
            return 4;
        bfs::Buffer buf;
        if (env.read(fd, buf, 16) != 4 ||
            std::string(buf.begin(), buf.end()) != "ring")
            return 5;
        sys::StatX st;
        if (env.fstat(fd, st) != 0 || st.size != 4)
            return 6;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-single");
    auto r = bx.runArgv({"/usr/bin/ring-single"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_GT(bx.kernel().stats().ringSyscallCount, 0u)
        << "Ring-mode getpid/open/... should use the ring";
    EXPECT_GT(bx.kernel().stats().syncSyscallCount, 0u)
        << "read must fall back to the sync convention";
}

TEST(RingSyscalls, SqFullBackpressureCompletesEveryCall)
{
    // A 4-entry ring, 16 getpids submitted before any wait: submit()
    // must park on the full SQ/in-flight window and resume as the
    // kernel frees slots — no call lost, no deadlock. EmSync mode: this
    // hand-built ring is the process's one registered ring.
    addProgram("ring-backpressure", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls small(*env.syncCalls(), 4);
        std::vector<uint32_t> seqs;
        for (int i = 0; i < 16; i++)
            seqs.push_back(small.submit(sys::GETPID, {}));
        small.flush();
        for (uint32_t seq : seqs) {
            if (small.wait(seq).r0 != env.pid())
                return 1;
        }
        return 0;
    }, apps::RuntimeKind::EmSync);
    Browsix bx;
    stage(bx, "ring-backpressure");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-backpressure"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringSyscallCount - before.ringSyscallCount, 16u);
    EXPECT_GE(after.ringBatchesDrained - before.ringBatchesDrained, 2u)
        << "a 4-entry ring cannot take 16 calls in one batch";
    EXPECT_EQ(after.ringCqOverflows, 0u)
        << "the in-flight window must protect the CQ";
}

TEST(RingSyscalls, BatchOf64DrainsInOnePumpWithOneNotify)
{
    // The tentpole contract, deterministically: 64 SQEs published under
    // a single doorbell are drained in one kernel pump and answered
    // with exactly one Atomics notify. TestClock turns the cost-model
    // charges into virtual time so the run is exact and fast.
    jsvm::TestClock clock;
    addProgram("ring-batch64", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        if (!ring || ring->capacity() != 64)
            return 2;
        std::vector<uint32_t> seqs;
        for (int i = 0; i < 64; i++)
            seqs.push_back(ring->submit(sys::GETPID, {}));
        ring->flush();
        if (ring->doorbellsRung() != 1)
            return 3;
        for (uint32_t seq : seqs) {
            if (ring->wait(seq).r0 != env.pid())
                return 1;
        }
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-batch64");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-batch64"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_EQ(after.ringSyscallCount - before.ringSyscallCount, 64u);
    EXPECT_EQ(after.ringBatchesDrained - before.ringBatchesDrained, 1u)
        << "one doorbell -> one drain pass";
    EXPECT_EQ(after.ringNotifies - before.ringNotifies, 1u)
        << "64 completions must coalesce into a single notify";
}

TEST(RingSyscalls, CountersAndLatencyHistogramsTrackRingCalls)
{
    // PR 2 added the ring counters without direct assertions; pin them
    // down together with the per-syscall latency histograms so the stats
    // refactor cannot silently regress either.
    jsvm::TestClock clock;
    addProgram("ring-hist", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        if (!ring)
            return 2;
        std::vector<uint32_t> seqs;
        for (int i = 0; i < 32; i++)
            seqs.push_back(ring->submit(sys::GETPID, {}));
        ring->flush();
        for (uint32_t seq : seqs) {
            if (ring->wait(seq).r0 != env.pid())
                return 1;
        }
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-hist");
    auto r = bx.runArgv({"/usr/bin/ring-hist"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);

    const kernel::KernelStats &st = bx.kernel().stats();
    EXPECT_EQ(st.ringCqOverflows, 0u)
        << "a conforming producer must never overflow its CQ";
    EXPECT_GE(st.ringSyscallCount, 32u);
    EXPECT_GE(st.ringBatchesDrained, 1u);
    EXPECT_LT(st.ringNotifies, st.ringSyscallCount)
        << "batching exists to keep notifies below per-call count";

    const kernel::LatencyHistogram *h = st.latency("getpid");
    ASSERT_NE(h, nullptr) << "ring getpids must land in the histogram";
    EXPECT_GE(h->count, 32u);
    uint64_t bucket_sum = 0;
    for (uint64_t b : h->buckets)
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, h->count);
    EXPECT_LE(h->percentileUs(50), h->percentileUs(99));
    EXPECT_LE(h->percentileUs(99), h->maxUs);
    EXPECT_EQ(st.latency("no-such-syscall"), nullptr);
}

TEST(RingSyscalls, TerminateUnwindsParkedRingWaiter)
{
    // A waiter parked on the ring wait word holds an InterruptToken
    // waker; SIGKILL must wake it, unwind the app thread via
    // WorkerTerminated, and let the worker join — no hang, no
    // use-after-free (the ASan/TSan CI jobs watch this path).
    addProgram("ring-park", [](rt::EmEnv &env) -> int {
        env.write(1, "parked\n");
        // Never-completing wait: nothing was submitted under this seq.
        env.ring()->wait(0xdead);
        return 0; // unreachable
    });
    Browsix bx;
    stage(bx, "ring-park");
    std::string out;
    bool exited = false;
    int status = 0;
    int pid = 0;
    bx.kernel().spawnRoot(
        {"/usr/bin/ring-park"}, bx.kernel().defaultEnv, "/",
        [&](int st) {
            status = st;
            exited = true;
        },
        [&](const bfs::Buffer &d) { out.append(d.begin(), d.end()); },
        nullptr, [&](int p) { pid = p; });
    ASSERT_TRUE(bx.runUntil(
        [&]() { return out.find("parked") != std::string::npos; }, 10000));
    EXPECT_EQ(bx.kernel().kill(pid, sys::SIGKILL), 0);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000))
        << "SIGKILL must unwind a parked ring waiter";
    EXPECT_EQ(sys::wtermsig(status), sys::SIGKILL);
}

TEST(RingSyscalls, PointerArgsAndOutDataThroughTheRing)
{
    // stat/getcwd marshal strings in and packed/str results out through
    // heap offsets carried in ring entries.
    addProgram("ring-pointers", [](rt::EmEnv &env) -> int {
        if (env.mkdir("/tmp/ringdir") != 0)
            return 1;
        sys::StatX st;
        if (env.stat("/tmp/ringdir", st) != 0 || !st.isDir())
            return 2;
        if (env.chdir("/tmp/ringdir") != 0)
            return 3;
        if (env.getcwd() != "/tmp/ringdir")
            return 4;
        if (env.rmdir("/tmp/../tmp/ringdir") != 0)
            return 5;
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-pointers");
    auto r = bx.runArgv({"/usr/bin/ring-pointers"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_GT(bx.kernel().stats().ringSyscallCount, 0u);
}

TEST(RingSyscalls, ZeroCopyPreadFillsGuestHeapInPlace)
{
    // The tentpole read path: pread through the ring resolves the guest
    // destination up front and the backend fills it in place — byte-exact
    // content in the guest heap, no intermediate bfs::Buffer bounce.
    addProgram("ring-zerocopy", [](rt::EmEnv &env) -> int {
        const std::string payload = "zero-copy straight into the heap";
        int fd = env.open("/tmp/zc.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 1;
        if (env.write(fd, payload) !=
            static_cast<int64_t>(payload.size()))
            return 2;
        bfs::Buffer buf;
        if (env.pread(fd, buf, 64, 0) !=
            static_cast<int64_t>(payload.size()))
            return 3;
        if (std::string(buf.begin(), buf.end()) != payload)
            return 4;
        // Offset read: the window starts mid-file.
        if (env.pread(fd, buf, 64, 10) !=
            static_cast<int64_t>(payload.size()) - 10)
            return 5;
        if (std::string(buf.begin(), buf.end()) != payload.substr(10))
            return 6;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-zerocopy");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-zerocopy"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.zeroCopyCompletions - before.zeroCopyCompletions, 2u)
        << "both preads must complete through the in-place path";
    EXPECT_EQ(after.copiedCompletions, before.copiedCompletions)
        << "no syscall in this program may bounce an intermediate copy";
}

TEST(RingSyscalls, HostileSqeHeapOffsetsCompleteWithEfault)
{
    // A corrupt (or hostile) SQE whose pointer arguments fall outside
    // the personality heap must be rejected at drain time with -EFAULT,
    // not reach the kernel's heap-write (or string-scan) paths.
    addProgram("ring-efault", [](rt::EmEnv &env) -> int {
        rt::RingSyscalls *ring = env.ring();
        rt::SyncSyscalls *sync = env.syncCalls();
        if (!ring || !sync)
            return 1;
        int32_t heap_len = static_cast<int32_t>(sync->heapSize());

        // pread destination starting at end-of-heap.
        int fd = env.open("/tmp/ef.txt",
                          bfs::flags::CREAT | bfs::flags::RDWR);
        if (fd < 0)
            return 2;
        uint32_t s1 = ring->submit(sys::PREAD, {fd, heap_len, 16, 0, 0, 0});
        // getcwd window that overruns the heap end.
        uint32_t s2 =
            ring->submit(sys::GETCWD, {heap_len - 8, 4096, 0, 0, 0, 0});
        // stat with a negative path pointer.
        sync->resetScratch();
        uint32_t sp = sync->alloc(sys::STAT_BYTES);
        uint32_t s3 = ring->submit(
            sys::STAT, {-4, static_cast<int32_t>(sp), 0, 0, 0, 0});
        ring->flush();
        if (ring->wait(s1).r0 != -EFAULT)
            return 3;
        if (ring->wait(s2).r0 != -EFAULT)
            return 4;
        if (ring->wait(s3).r0 != -EFAULT)
            return 5;
        // readlink with bufsiz <= 0 must be the POSIX -EINVAL through
        // the ring too, not an -EFAULT from the drain-time validator.
        sync->resetScratch();
        int32_t lp =
            static_cast<int32_t>(sync->pushString("/tmp/ef.txt"));
        uint32_t s4 = ring->submit(sys::READLINK, {lp, 16, -1, 0, 0, 0});
        ring->flush();
        if (ring->wait(s4).r0 != -EINVAL)
            return 6;
        // The ring stays usable after rejected entries.
        if (ring->call(sys::GETPID, {}) != env.pid())
            return 7;
        env.close(fd);
        return 0;
    });
    Browsix bx;
    stage(bx, "ring-efault");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-efault"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    EXPECT_GE(after.ringEfaults - before.ringEfaults, 3u)
        << "each hostile SQE must be counted as a drain-time EFAULT";
}

TEST(RingSyscalls, BatchedStatSweepCoalescesNotifies)
{
    // EmEnv::statBatch: a 32-path metadata sweep submits every SQE under
    // one doorbell, so the kernel answers the whole sweep with one
    // (coalesced) notify instead of one per stat — the batched coreutils
    // hot-path contract.
    addProgram("ring-statbatch", [](rt::EmEnv &env) -> int {
        std::vector<std::string> paths;
        for (int i = 0; i < 32; i++)
            paths.push_back("/batch/f" + std::to_string(i));
        paths.push_back("/batch/missing");
        auto res = env.statBatch(paths);
        if (res.size() != paths.size())
            return 1;
        for (int i = 0; i < 32; i++) {
            if (res[i].err != 0 || res[i].st.size != 64 ||
                !res[i].st.isFile())
                return 2;
        }
        if (res[32].err != -ENOENT)
            return 3;
        return 0;
    });
    Browsix bx;
    bx.rootFs().mkdirAll("/batch");
    for (int i = 0; i < 32; i++)
        bx.rootFs().writeFile("/batch/f" + std::to_string(i),
                              std::string(64, 'x'));
    stage(bx, "ring-statbatch");
    auto before = bx.kernel().stats();
    auto r = bx.runArgv({"/usr/bin/ring-statbatch"});
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.exitCode(), 0);
    auto after = bx.kernel().stats();
    uint64_t stats_made = after.ringSyscallCount - before.ringSyscallCount;
    uint64_t notifies = after.ringNotifies - before.ringNotifies;
    EXPECT_GE(stats_made, 33u);
    EXPECT_LE(notifies, 8u)
        << "a batched sweep must coalesce wakes, not pay one per stat";
}
