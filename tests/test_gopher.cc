/**
 * @file
 * GopherJS-runtime tests: Chan<T> semantics (FIFO, capacity blocking,
 * close, interruption) and full Go programs running as Browsix processes
 * with goroutines coordinating over channels and syscalls.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "apps/registry.h"
#include "core/browsix.h"
#include "runtime/gopher/go_runtime.h"

using namespace browsix;
using rt::Chan;

TEST(Chan, FifoOrder)
{
    jsvm::InterruptToken token;
    Chan<int> ch(&token);
    ch.send(1);
    ch.send(2);
    ch.send(3);
    int v = 0;
    EXPECT_TRUE(ch.recv(v));
    EXPECT_EQ(v, 1);
    ch.recv(v);
    EXPECT_EQ(v, 2);
    ch.recv(v);
    EXPECT_EQ(v, 3);
}

TEST(Chan, RecvBlocksUntilSend)
{
    jsvm::InterruptToken token;
    Chan<std::string> ch(&token);
    std::string got;
    std::thread consumer([&]() {
        ch.recv(got);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(got.empty());
    ch.send("late");
    consumer.join();
    EXPECT_EQ(got, "late");
}

TEST(Chan, BoundedSendBlocksUntilDrained)
{
    jsvm::InterruptToken token;
    Chan<int> ch(&token, 1);
    ch.send(1);
    std::atomic<bool> second_sent{false};
    std::thread producer([&]() {
        ch.send(2); // capacity full: must wait
        second_sent = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(second_sent);
    int v;
    ch.recv(v);
    producer.join();
    EXPECT_TRUE(second_sent);
}

TEST(Chan, CloseDrainsThenReportsClosed)
{
    jsvm::InterruptToken token;
    Chan<int> ch(&token);
    ch.send(7);
    ch.close();
    int v = 0;
    EXPECT_TRUE(ch.recv(v)) << "buffered values survive close";
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(ch.recv(v)) << "drained closed channel reports closed";
}

TEST(Chan, CloseWakesBlockedReceiver)
{
    jsvm::InterruptToken token;
    Chan<int> ch(&token);
    std::atomic<bool> returned{false};
    bool ok = true;
    std::thread consumer([&]() {
        int v;
        ok = ch.recv(v);
        returned = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ch.close();
    consumer.join();
    EXPECT_TRUE(returned);
    EXPECT_FALSE(ok);
}

TEST(Chan, InterruptUnblocksWithWorkerTerminated)
{
    jsvm::InterruptToken token;
    Chan<int> ch(&token);
    std::atomic<bool> threw{false};
    std::thread consumer([&]() {
        try {
            int v;
            ch.recv(v);
        } catch (jsvm::WorkerTerminated &) {
            threw = true;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.interrupt();
    consumer.join();
    EXPECT_TRUE(threw);
}

namespace {

void
registerGoPrograms()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    apps::registerAllPrograms();
    auto &reg = apps::ProgramRegistry::instance();

    // Goroutine fan-in: N workers compute squares, a channel collects,
    // main sums and writes the result to the shared FS.
    reg.add(apps::ProgramSpec{
        "go-fanin", apps::RuntimeKind::Gopher, 128, nullptr,
        [](rt::GoEnv &env) {
            auto ch = std::make_shared<Chan<int>>(env.token());
            for (int i = 1; i <= 5; i++) {
                env.go([ch, i]() { ch->send(i * i); });
            }
            int sum = 0;
            for (int i = 0; i < 5; i++) {
                int v = 0;
                ch->recv(v);
                sum += v;
            }
            bfs::Buffer out;
            std::string s = std::to_string(sum) + "\n";
            env.writeFile("/tmp/fanin.txt",
                          bfs::Buffer(s.begin(), s.end()));
            env.write(1, s);
        }});

    // Pipeline: generator -> squarer goroutines chained by channels.
    reg.add(apps::ProgramSpec{
        "go-pipeline", apps::RuntimeKind::Gopher, 128, nullptr,
        [](rt::GoEnv &env) {
            auto nums = std::make_shared<Chan<int>>(env.token(), 2);
            auto squares = std::make_shared<Chan<int>>(env.token(), 2);
            env.go([nums]() {
                for (int i = 1; i <= 4; i++)
                    nums->send(i);
                nums->close();
            });
            env.go([nums, squares]() {
                int v;
                while (nums->recv(v))
                    squares->send(v * v);
                squares->close();
            });
            std::string out;
            int v;
            while (squares->recv(v))
                out += std::to_string(v) + " ";
            out += "\n";
            env.write(1, out);
        }});
}

} // namespace

TEST(GoRuntime, GoroutineFanInOverChannels)
{
    registerGoPrograms();
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/go-fanin",
        apps::ProgramRegistry::instance().bundleFor("go-fanin"));
    auto r = bx.runArgv({"/usr/bin/go-fanin"}, 30000);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "55\n") << "1+4+9+16+25";
    bfs::Buffer f;
    ASSERT_EQ(bx.fs().readFileSync("/tmp/fanin.txt", f), 0)
        << "goroutine results must reach the shared filesystem";
    EXPECT_EQ(std::string(f.begin(), f.end()), "55\n");
}

TEST(GoRuntime, ChannelPipelinePreservesOrder)
{
    registerGoPrograms();
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/go-pipeline",
        apps::ProgramRegistry::instance().bundleFor("go-pipeline"));
    auto r = bx.runArgv({"/usr/bin/go-pipeline"}, 30000);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "1 4 9 16 \n");
}

TEST(GoRuntime, KilledServerGoroutinesUnwindCleanly)
{
    // A Go process blocked in accept() plus per-connection goroutines
    // must all unwind when the worker is terminated (no hangs/leaks).
    BootConfig cfg;
    cfg.memeAssets = true;
    Browsix bx(cfg);
    int pid = 0;
    bool exited = false;
    bx.kernel().spawnRoot({"/usr/bin/meme-server"},
                          {{"MEME_PORT", "8123"}}, "/",
                          [&](int) { exited = true; }, nullptr, nullptr,
                          [&](int p) { pid = p; });
    ASSERT_TRUE(bx.waitForPort(8123, 10000));
    // Open a connection the server is mid-reading, then SIGKILL.
    net::HttpRequest req;
    req.target = "/api/images";
    auto x = bx.xhr(8123, req);
    EXPECT_EQ(x.err, 0);
    bx.kernel().kill(pid, sys::SIGKILL);
    ASSERT_TRUE(bx.runUntil([&]() { return exited; }, 10000));
    EXPECT_EQ(bx.kernel().taskCount(), 0u);
}

TEST(GoRuntime, RawSyscallReturnsKernelData)
{
    registerGoPrograms();
    apps::ProgramRegistry::instance().add(apps::ProgramSpec{
        "go-raw", apps::RuntimeKind::Gopher, 128, nullptr,
        [](rt::GoEnv &env) {
            rt::CallResult r = env.rawSyscall("getpid", {});
            rt::CallResult cwd = env.rawSyscall("getcwd", {});
            env.write(1, "pid>0:" +
                             std::string(r.r0 > 0 ? "y" : "n") + " cwd:" +
                             (cwd.data.isString() ? cwd.data.asString()
                                                  : "?") +
                             "\n");
        }});
    Browsix bx;
    bx.rootFs().writeFile(
        "/usr/bin/go-raw",
        apps::ProgramRegistry::instance().bundleFor("go-raw"));
    auto r = bx.runArgv({"/usr/bin/go-raw"}, 30000);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.out, "pid>0:y cwd:/\n");
}
