/**
 * @file
 * Browsix-enhanced Emscripten runtime (§4.3, C and C++).
 *
 * "Compiled" C programs are C++ callables written against EmEnv, a
 * blocking POSIX-style API. Two modes exist, selected at "compile time"
 * exactly as in the paper:
 *
 *  - Sync (asm.js + SharedArrayBuffer): system calls use the synchronous
 *    convention — arguments marshalled into the shared heap, the program
 *    thread blocked in Atomics.wait. Fast, but fork is unavailable.
 *
 *  - Ring: like Sync, plus an io_uring-style SQ/CQ pair in the shared
 *    heap. Ring-eligible calls are batched (one doorbell message and one
 *    wake per batch); calls that may park indefinitely fall back to the
 *    sync convention per call. Programs reach the batch API via ring().
 *
 *  - AsyncEmterpreter: system calls are asynchronous; the "Emterpreter"
 *    (our app thread + the emvm bytecode VM for compute kernels) can
 *    suspend and resume, which also enables fork. A program compiled
 *    *without* the Emterpreter that calls fork fails at runtime with
 *    ENOSYS (§2.2's warning about misconfigured builds).
 *
 * fork for C-style callables: the program supplies a small resume-state
 * string; the kernel ships it (like the heap+PC payload) to the child,
 * whose main() starts with resumeState() set. Bytecode programs hosted by
 * EmVmHost get full-fidelity fork: the entire VM state is the snapshot.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "jsvm/cost_model.h"
#include "runtime/emvm/vm.h"
#include "runtime/syscall_client.h"

namespace browsix {
namespace rt {

enum class EmMode { Sync, Ring, AsyncEmterpreter };

/** Thrown by EmEnv::exit; unwinds the program thread. */
struct ExitRequested
{
    int code;
};

class EmEnv
{
  public:
    EmEnv(std::shared_ptr<SyscallClient> client, EmMode mode,
          bool emterpreter, const jsvm::CostModel &costs);

    // --- process identity / startup ---
    const std::vector<std::string> &argv() const { return init_.args; }
    const std::map<std::string, std::string> &environ() const
    {
        return init_.env;
    }
    std::string getenv(const std::string &key) const;
    int pid() const { return init_.pid; }
    bool emterpreted() const { return emterpreter_; }
    EmMode mode() const { return mode_; }
    const jsvm::CostModel &costs() const { return costs_; }
    /** Non-empty when this process is a fork/exec resumption. */
    const std::string &resumeState() const { return resumeState_; }

    // --- file I/O (all blocking; negative returns are -errno) ---
    int open(const std::string &path, int oflags, int mode = 0644);
    int close(int fd);
    int64_t read(int fd, bfs::Buffer &out, size_t n);
    int64_t write(int fd, const void *data, size_t n);
    int64_t write(int fd, const std::string &s);
    /**
     * Gather write — the stdio hot path for printf-heavy programs (els
     * emits its whole listing through one of these): fragments are
     * marshalled into the shared heap and each writev syscall covers a
     * whole chunk of them, capped by the iovec limit and a scratch-byte
     * budget. In Ring mode each chunk is a single SQE (one ring entry,
     * one CQE) via RingSyscalls::submitv instead of one ring round-trip
     * per fragment; Sync mode issues one call per chunk; the async
     * convention (no shared heap for the iovec array to point into)
     * falls back to concatenating into a single write. Returns the
     * total bytes written (short-count on a partial chunk).
     */
    int64_t writev(int fd, const std::vector<std::string> &parts);
    int64_t pread(int fd, bfs::Buffer &out, size_t n, int64_t off);
    int64_t pwrite(int fd, const void *data, size_t n, int64_t off);
    int64_t llseek(int fd, int64_t off, int whence);
    int stat(const std::string &path, sys::StatX &out);
    int lstat(const std::string &path, sys::StatX &out);
    int fstat(int fd, sys::StatX &out);

    /** One entry of a batched metadata scan. */
    struct StatResult
    {
        int err = 0; ///< 0 or -errno, per path
        sys::StatX st;
    };

    /**
     * stat (or lstat) many paths in one go — the coreutils/make hot path
     * (`ls -lR` per-entry stats, make's dependency scans). In Ring mode
     * the scan is chunked through RingSyscalls::submit + one flush per
     * chunk: one doorbell message and one Atomics wake cover a whole
     * chunk of calls instead of one each. Other modes fall back to one
     * call per path with identical results.
     */
    std::vector<StatResult> statBatch(const std::vector<std::string> &paths,
                                      bool follow = true);
    int access(const std::string &path, int amode);
    int unlink(const std::string &path);
    int mkdir(const std::string &path, int mode = 0755);
    int rmdir(const std::string &path);
    int rename(const std::string &from, const std::string &to);
    int readlink(const std::string &path, std::string &out);
    int symlink(const std::string &target, const std::string &path);
    int utimes(const std::string &path, int64_t atime_us, int64_t mtime_us);
    int getdents(int fd, std::vector<sys::Dirent> &out);
    int ioctlIsatty(int fd);

    // --- directories / process metadata ---
    int chdir(const std::string &path);
    std::string getcwd();
    int getpid();
    int getppid();
    int64_t nowMs();

    // --- pipes / descriptors ---
    int pipe2(int fds_out[2]);
    int dup(int fd);
    int dup2(int oldfd, int newfd);

    // --- sockets / readiness ---
    int socket();
    int bind(int fd, int port);
    int listen(int fd, int backlog);
    /**
     * Accept one connection; blocks until a peer connects. Ring-eligible:
     * with no pending connection the SQE parks kernel-side and the CQE
     * arrives with the connection (the deferral protocol). Returns the
     * connected fd; *remote_port (if non-null) gets the peer's port.
     */
    int accept(int fd, int *remote_port = nullptr);
    int connect(int fd, int port);
    /** Returns the bound port (>= 0) or -errno. */
    int getsockname(int fd);
    /** shutdown(2): how is sys::SHUT_RD_/SHUT_WR_/SHUT_RDWR_. */
    int shutdown(int fd, int how);

    /** One descriptor's poll interest/result (mirrors sys::PollFd). */
    struct PollSpec
    {
        int fd = -1;
        int16_t events = 0;  ///< requested: sys::POLLIN_ / POLLOUT_
        int16_t revents = 0; ///< granted: may add POLLERR_/POLLHUP_/POLLNVAL_
    };

    /**
     * Readiness wait over a descriptor set — one syscall, one SQE in Ring
     * mode, no timeout (blocks until something is ready). Returns the
     * number of ready descriptors (> 0) or -errno; revents is updated in
     * place for every entry. Requires the shared-heap personality
     * (-ENOSYS under the async convention).
     */
    int poll(std::vector<PollSpec> &fds);

    /**
     * Stateful readiness: a kernel-side registered interest list. Create
     * an epoll descriptor, edit its set with ctl (op is one of
     * sys::EPOLL_CTL_ADD_/MOD_/DEL_; events uses the POLL*_ bits), then
     * wait — only ready (events, fd) pairs travel back, nothing is
     * re-marshalled per call. epollWait blocks level-triggered (one SQE
     * in Ring mode, parked kernel-side until something is ready) and
     * fills `out` with up to its existing size() records, returning the
     * ready count (> 0) or -errno. Requires the shared-heap personality
     * (-ENOSYS under the async convention).
     */
    int epollCreate();
    int epollCtl(int epfd, int op, int fd, int32_t events);
    int epollWait(int epfd, std::vector<PollSpec> &out);

    /**
     * Move up to `count` bytes from in_fd at `off` into out_fd entirely
     * kernel-side (file → pipe/socket with no guest-heap bounce).
     * Returns bytes moved — short at EOF — or -errno.
     */
    int64_t sendfile(int out_fd, int in_fd, int64_t off, int64_t count);

    // --- processes & signals ---
    int spawn(const std::vector<std::string> &argv,
              const std::vector<int> &fds = {0, 1, 2});
    int spawn(const std::vector<std::string> &argv,
              const std::map<std::string, std::string> &env,
              const std::string &cwd, const std::vector<int> &fds);
    int waitpid(int pid, int *status, int options);
    int kill(int pid, int sig);
    /** Register a handler; runs at syscall boundaries (JS cannot preempt
     * running code, so neither do we). */
    void signal(int sig, std::function<void(int)> handler);
    int fork(const std::string &resume_state);
    int execv(const std::vector<std::string> &argv);
    [[noreturn]] void exit(int code);

    /**
     * Run a compute kernel. In AsyncEmterpreter mode the bytecode is
     * genuinely interpreted (the Emterpreter tax); in Sync mode the
     * caller's native callable runs instead, scaled by the profile's
     * asm.js factor via costs().
     */
    int64_t runInterpreted(const emvm::Image &image, const std::string &fn,
                           std::vector<int64_t> args);

    /** Drain queued async-delivered signals; called at syscall bounds. */
    void pollSignals();

    /** Enqueue a kernel-delivered signal (runs on the worker loop). */
    void queueSignal(int sig);

    /** The ring façade (batch submit/flush/wait); null unless Ring mode. */
    RingSyscalls *ring() { return ring_.get(); }
    /** The sync façade; null in AsyncEmterpreter mode. */
    SyncSyscalls *syncCalls() { return sync_.get(); }
    SyscallClient &client() { return *client_; }

  private:
    friend class EmscriptenRuntime;

    /** True when syscalls use the shared-heap i32 encoding (Sync/Ring). */
    bool usesSharedHeap() const
    {
        return mode_ != EmMode::AsyncEmterpreter;
    }
    /** Shared-heap call, routed through the ring when eligible. */
    int64_t heapCall(int trap, std::array<int32_t, 6> args,
                     int32_t *r1_out = nullptr);
    CallResult invoke(int trap, jsvm::Value::Array async_args,
                      std::array<int32_t, 6> sync_args,
                      bool sync_capable = true);
    int64_t pathCall(int trap, const std::string &path, int32_t a = 0,
                     int32_t b = 0);
    int statCall(int trap, const std::string &path, int fd,
                 sys::StatX &out);

    std::shared_ptr<SyscallClient> client_;
    EmMode mode_;
    bool emterpreter_;
    const jsvm::CostModel &costs_;
    InitInfo init_;
    std::string resumeState_;
    std::unique_ptr<SyncSyscalls> sync_;
    std::unique_ptr<RingSyscalls> ring_;

    std::mutex sigMutex_;
    std::vector<int> pendingSignals_;
    std::map<int, std::function<void(int)>> handlers_;
};

using EmProgramFn = std::function<int(EmEnv &)>;

/** Boot a "compiled C program" inside a worker. */
class EmscriptenRuntime
{
  public:
    static void boot(jsvm::WorkerScope &scope,
                     std::shared_ptr<SyscallClient> client,
                     EmProgramFn program, EmMode mode, bool emterpreter);
};

/** Boot a bytecode (BSXBC) executable: full-fidelity Emterpreter. */
class EmVmHost
{
  public:
    static void boot(jsvm::WorkerScope &scope,
                     std::shared_ptr<SyscallClient> client,
                     emvm::Image image);
};

} // namespace rt
} // namespace browsix
