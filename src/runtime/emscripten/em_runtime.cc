#include "runtime/emscripten/em_runtime.h"

#include <algorithm>
#include <cstring>

#include "jsvm/util.h"

namespace browsix {
namespace rt {

namespace {

jsvm::Value
bytesValue(const void *data, size_t n)
{
    return jsvm::Value::bytes(static_cast<const uint8_t *>(data), n);
}

} // namespace

EmEnv::EmEnv(std::shared_ptr<SyscallClient> client, EmMode mode,
             bool emterpreter, const jsvm::CostModel &costs)
    : client_(std::move(client)), mode_(mode), emterpreter_(emterpreter),
      costs_(costs)
{
    init_ = client_->init();
    if (!init_.snapshot.empty()) {
        // fork/exec resume payload ("EMSTATE1" + program-defined bytes).
        const char tag[] = "EMSTATE1";
        if (init_.snapshot.size() >= 8 &&
            std::memcmp(init_.snapshot.data(), tag, 8) == 0) {
            resumeState_.assign(init_.snapshot.begin() + 8,
                                init_.snapshot.end());
        }
    }
    if (usesSharedHeap()) {
        sync_ = std::make_unique<SyncSyscalls>(*client_, 1 << 20);
        sync_->signalHandler = [this](int sig) { queueSignal(sig); };
        if (mode_ == EmMode::Ring)
            ring_ = std::make_unique<RingSyscalls>(*sync_);
    }
}

int64_t
EmEnv::heapCall(int trap, std::array<int32_t, 6> args, int32_t *r1_out)
{
    if (ring_ && RingSyscalls::ringEligible(trap))
        return ring_->call(trap, args, r1_out);
    return sync_->call(trap, args, r1_out);
}

std::string
EmEnv::getenv(const std::string &key) const
{
    auto it = init_.env.find(key);
    return it == init_.env.end() ? "" : it->second;
}

void
EmEnv::queueSignal(int sig)
{
    std::lock_guard<std::mutex> lk(sigMutex_);
    pendingSignals_.push_back(sig);
}

void
EmEnv::pollSignals()
{
    std::vector<int> sigs;
    {
        std::lock_guard<std::mutex> lk(sigMutex_);
        sigs.swap(pendingSignals_);
    }
    for (int sig : sigs) {
        std::function<void(int)> h;
        {
            std::lock_guard<std::mutex> lk(sigMutex_);
            auto it = handlers_.find(sig);
            if (it != handlers_.end())
                h = it->second;
        }
        if (h)
            h(sig);
    }
}

CallResult
EmEnv::invoke(int trap, jsvm::Value::Array async_args,
              std::array<int32_t, 6> sync_args, bool sync_capable)
{
    pollSignals();
    CallResult r;
    if (usesSharedHeap() && sync_capable) {
        int32_t r1 = 0;
        r.r0 = heapCall(trap, sync_args, &r1);
        r.r1 = r1;
    } else {
        r = blockingCall(*client_, sys::trapName(trap),
                         std::move(async_args));
    }
    pollSignals();
    return r;
}

int64_t
EmEnv::pathCall(int trap, const std::string &path, int32_t a, int32_t b)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t p = sync_->pushString(path);
        return heapCall(trap, {static_cast<int32_t>(p), a, b, 0, 0, 0});
    }
    return invoke(trap, {jsvm::Value(path), jsvm::Value(a), jsvm::Value(b)},
                  {}, false)
        .r0;
}

int
EmEnv::open(const std::string &path, int oflags, int mode)
{
    return static_cast<int>(pathCall(sys::OPEN, path, oflags, mode));
}

int
EmEnv::close(int fd)
{
    return static_cast<int>(
        invoke(sys::CLOSE, {jsvm::Value(fd)}, {fd}).r0);
}

int64_t
EmEnv::read(int fd, bfs::Buffer &out, size_t n)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t buf = sync_->alloc(n);
        int64_t r = heapCall(
            sys::READ,
            {fd, static_cast<int32_t>(buf), static_cast<int32_t>(n), 0, 0,
             0});
        if (r > 0) {
            out.assign(sync_->heapData() + buf, sync_->heapData() + buf + r);
        } else {
            out.clear();
        }
        return r;
    }
    CallResult r = blockingCall(*client_, "read",
                                {jsvm::Value(fd),
                                 jsvm::Value(static_cast<double>(n))});
    if (r.r0 >= 0 && r.data.isBytes() && r.data.asBytes())
        out = *r.data.asBytes();
    else
        out.clear();
    return r.r0;
}

int64_t
EmEnv::write(int fd, const void *data, size_t n)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t buf = sync_->alloc(n);
        std::memcpy(sync_->heapData() + buf, data, n);
        return heapCall(
            sys::WRITE,
            {fd, static_cast<int32_t>(buf), static_cast<int32_t>(n), 0, 0,
             0});
    }
    return blockingCall(*client_, "write",
                        {jsvm::Value(fd), bytesValue(data, n)})
        .r0;
}

int64_t
EmEnv::write(int fd, const std::string &s)
{
    return write(fd, s.data(), s.size());
}

int64_t
EmEnv::writev(int fd, const std::vector<std::string> &parts)
{
    if (parts.empty())
        return 0;
    if (!usesSharedHeap()) {
        std::string joined;
        for (const auto &p : parts)
            joined += p;
        return write(fd, joined);
    }
    pollSignals();
    // Chunked like statBatch: each writev call is capped both by the
    // iovec limit and by a scratch-byte budget (the 1 MiB heap also
    // holds the ring region), so arbitrarily long fragment lists — a
    // whole `ls -lR` listing — gather safely.
    const size_t kScratchBudget = 256 * 1024;
    // Multi-chunk gathers are wait-then-submit bursts (one writev per
    // chunk): the hint keeps the kernel's drain pipeline armed between
    // chunks so only the first pays a doorbell message. Guard-scoped:
    // a short write or error return mid-gather must still clear it.
    HintScope hint(ring_.get());
    int64_t total = 0;
    size_t i = 0;
    while (i < parts.size()) {
        // A single fragment that cannot fit a chunk streams through
        // plain write() slices instead of tripping the scratch-overflow
        // panic in alloc().
        const std::string &head = parts[i];
        if (head.size() + sys::IOVEC_BYTES > kScratchBudget) {
            size_t done = 0;
            while (done < head.size()) {
                size_t n = std::min(kScratchBudget, head.size() - done);
                int64_t r = write(fd, head.data() + done, n);
                if (r < 0) {
                    pollSignals();
                    return total > 0 ? total : r;
                }
                total += r;
                done += static_cast<size_t>(r);
                if (r < static_cast<int64_t>(n)) {
                    pollSignals();
                    return total; // short write ends the gather
                }
            }
            i++;
            continue;
        }
        sync_->resetScratch();
        std::vector<sys::IoVec> iovs;
        size_t chunk_bytes = 0;
        int64_t chunk_len = 0;
        while (i < parts.size() &&
               iovs.size() < static_cast<size_t>(sys::kIovMax)) {
            const std::string &p = parts[i];
            if (chunk_bytes + p.size() + sys::IOVEC_BYTES >
                kScratchBudget)
                break; // oversized head restarts via the slice path
            uint32_t buf = sync_->alloc(p.size());
            if (!p.empty())
                std::memcpy(sync_->heapData() + buf, p.data(), p.size());
            iovs.push_back(sys::IoVec{static_cast<int32_t>(buf),
                                      static_cast<int32_t>(p.size())});
            chunk_bytes += p.size() + sys::IOVEC_BYTES;
            chunk_len += static_cast<int64_t>(p.size());
            i++;
        }
        int64_t r;
        if (ring_ && RingSyscalls::ringEligible(sys::WRITEV)) {
            uint32_t seq = ring_->submitv(sys::WRITEV, fd, iovs);
            ring_->flush();
            r = ring_->wait(seq).r0;
        } else {
            uint32_t arr = sync_->pushIovArray(iovs);
            r = sync_->call(sys::WRITEV,
                            {fd, static_cast<int32_t>(arr),
                             static_cast<int32_t>(iovs.size()), 0, 0, 0});
        }
        if (r < 0) {
            pollSignals();
            return total > 0 ? total : r; // POSIX short-count semantics
        }
        total += r;
        if (r < chunk_len)
            break; // short write ends the gather
    }
    pollSignals();
    return total;
}

int64_t
EmEnv::pread(int fd, bfs::Buffer &out, size_t n, int64_t off)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t buf = sync_->alloc(n);
        int64_t r = heapCall(sys::PREAD,
                                {fd, static_cast<int32_t>(buf),
                                 static_cast<int32_t>(n),
                                 static_cast<int32_t>(off), 0, 0});
        if (r > 0)
            out.assign(sync_->heapData() + buf, sync_->heapData() + buf + r);
        else
            out.clear();
        return r;
    }
    CallResult r = blockingCall(
        *client_, "pread",
        {jsvm::Value(fd), jsvm::Value(static_cast<double>(n)),
         jsvm::Value(static_cast<double>(off))});
    if (r.r0 >= 0 && r.data.isBytes() && r.data.asBytes())
        out = *r.data.asBytes();
    else
        out.clear();
    return r.r0;
}

int64_t
EmEnv::pwrite(int fd, const void *data, size_t n, int64_t off)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t buf = sync_->alloc(n);
        std::memcpy(sync_->heapData() + buf, data, n);
        return heapCall(sys::PWRITE,
                           {fd, static_cast<int32_t>(buf),
                            static_cast<int32_t>(n),
                            static_cast<int32_t>(off), 0, 0});
    }
    return blockingCall(*client_, "pwrite",
                        {jsvm::Value(fd), bytesValue(data, n),
                         jsvm::Value(static_cast<double>(off))})
        .r0;
}

int64_t
EmEnv::llseek(int fd, int64_t off, int whence)
{
    return invoke(sys::LLSEEK,
                  {jsvm::Value(fd), jsvm::Value(static_cast<double>(off)),
                   jsvm::Value(whence)},
                  {fd, static_cast<int32_t>(off), whence})
        .r0;
}

int
EmEnv::statCall(int trap, const std::string &path, int fd, sys::StatX &out)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        int32_t a0;
        if (trap == sys::FSTAT) {
            a0 = fd;
        } else {
            a0 = static_cast<int32_t>(sync_->pushString(path));
        }
        uint32_t sp = sync_->alloc(sys::STAT_BYTES);
        int64_t r = heapCall(trap,
                             {a0, static_cast<int32_t>(sp), 0, 0, 0, 0});
        if (r == 0)
            out = sys::unpackStat(sync_->heapData() + sp);
        return static_cast<int>(r);
    }
    jsvm::Value::Array args;
    if (trap == sys::FSTAT)
        args.push_back(jsvm::Value(fd));
    else
        args.push_back(jsvm::Value(path));
    CallResult r = blockingCall(*client_, sys::trapName(trap),
                                std::move(args));
    if (r.r0 == 0 && r.data.isObject())
        out = sys::statFromValue(r.data);
    return static_cast<int>(r.r0);
}

int
EmEnv::stat(const std::string &path, sys::StatX &out)
{
    return statCall(sys::STAT, path, -1, out);
}

std::vector<EmEnv::StatResult>
EmEnv::statBatch(const std::vector<std::string> &paths, bool follow)
{
    int trap = follow ? sys::STAT : sys::LSTAT;
    std::vector<StatResult> out(paths.size());
    if (!ring_) {
        for (size_t i = 0; i < paths.size(); i++)
            out[i].err = statCall(trap, paths[i], -1, out[i].st);
        return out;
    }
    pollSignals();
    // Chunked: each chunk's path strings + stat buffers live in the
    // scratch region together, so the chunk is bounded both by the ring
    // capacity and by a scratch-byte budget (the 1 MiB heap also holds
    // the ring region itself).
    const size_t kScratchBudget = 256 * 1024;
    // A multi-chunk batch is a wait-then-submit burst: declare it, so the
    // kernel's drain pipeline stays armed across the reap gap between
    // chunks and every chunk after the first skips its doorbell message.
    HintScope hint(ring_.get());
    size_t i = 0;
    while (i < paths.size()) {
        sync_->resetScratch();
        size_t base = i;
        size_t scratch_used = 0;
        std::vector<uint32_t> seqs;
        std::vector<uint32_t> stat_ptrs;
        while (i < paths.size() && seqs.size() < ring_->capacity()) {
            size_t need = paths[i].size() + 1 + sys::STAT_BYTES + 16;
            if (scratch_used + need > kScratchBudget && !seqs.empty())
                break;
            uint32_t p = sync_->pushString(paths[i]);
            uint32_t sp = sync_->alloc(sys::STAT_BYTES);
            seqs.push_back(ring_->submit(
                trap, {static_cast<int32_t>(p), static_cast<int32_t>(sp),
                       0, 0, 0, 0}));
            stat_ptrs.push_back(sp);
            scratch_used += need;
            i++;
        }
        ring_->flush(); // one doorbell covers the whole chunk
        for (size_t j = 0; j < seqs.size(); j++) {
            rt::RingSyscalls::Completion c = ring_->wait(seqs[j]);
            out[base + j].err = c.r0;
            if (c.r0 == 0)
                out[base + j].st =
                    sys::unpackStat(sync_->heapData() + stat_ptrs[j]);
        }
    }
    pollSignals();
    return out;
}


int
EmEnv::lstat(const std::string &path, sys::StatX &out)
{
    return statCall(sys::LSTAT, path, -1, out);
}

int
EmEnv::fstat(int fd, sys::StatX &out)
{
    return statCall(sys::FSTAT, "", fd, out);
}

int
EmEnv::access(const std::string &path, int amode)
{
    return static_cast<int>(pathCall(sys::ACCESS, path, amode));
}

int
EmEnv::unlink(const std::string &path)
{
    return static_cast<int>(pathCall(sys::UNLINK, path));
}

int
EmEnv::mkdir(const std::string &path, int mode)
{
    return static_cast<int>(pathCall(sys::MKDIR, path, mode));
}

int
EmEnv::rmdir(const std::string &path)
{
    return static_cast<int>(pathCall(sys::RMDIR, path));
}

int
EmEnv::rename(const std::string &from, const std::string &to)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t a = sync_->pushString(from);
        uint32_t b = sync_->pushString(to);
        return static_cast<int>(
            heapCall(sys::RENAME, {static_cast<int32_t>(a),
                                   static_cast<int32_t>(b), 0, 0, 0, 0}));
    }
    return static_cast<int>(
        blockingCall(*client_, "rename",
                     {jsvm::Value(from), jsvm::Value(to)})
            .r0);
}

int
EmEnv::readlink(const std::string &path, std::string &out)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t p = sync_->pushString(path);
        uint32_t buf = sync_->alloc(4096);
        int64_t r = heapCall(sys::READLINK,
                                {static_cast<int32_t>(p),
                                 static_cast<int32_t>(buf), 4096, 0, 0, 0});
        if (r >= 0)
            out.assign(reinterpret_cast<char *>(sync_->heapData() + buf),
                       static_cast<size_t>(r));
        return static_cast<int>(r < 0 ? r : 0);
    }
    CallResult r =
        blockingCall(*client_, "readlink", {jsvm::Value(path)});
    if (r.r0 >= 0 && r.data.isString()) {
        out = r.data.asString();
        return 0;
    }
    return static_cast<int>(r.r0);
}

int
EmEnv::symlink(const std::string &target, const std::string &path)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t a = sync_->pushString(target);
        uint32_t b = sync_->pushString(path);
        return static_cast<int>(
            heapCall(sys::SYMLINK,
                     {static_cast<int32_t>(a), static_cast<int32_t>(b),
                      0, 0, 0, 0}));
    }
    return static_cast<int>(
        blockingCall(*client_, "symlink",
                     {jsvm::Value(target), jsvm::Value(path)})
            .r0);
}

int
EmEnv::utimes(const std::string &path, int64_t atime_us, int64_t mtime_us)
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t p = sync_->pushString(path);
        return static_cast<int>(heapCall(
            sys::UTIMES,
            {static_cast<int32_t>(p),
             static_cast<int32_t>(atime_us / 1000000),
             static_cast<int32_t>(mtime_us / 1000000), 0, 0, 0}));
    }
    return static_cast<int>(
        blockingCall(*client_, "utimes",
                     {jsvm::Value(path),
                      jsvm::Value(static_cast<double>(atime_us)),
                      jsvm::Value(static_cast<double>(mtime_us))})
            .r0);
}

int
EmEnv::getdents(int fd, std::vector<sys::Dirent> &out)
{
    out.clear();
    for (;;) {
        constexpr size_t kBuf = 8192;
        bfs::Buffer data;
        int64_t r;
        if (usesSharedHeap()) {
            sync_->resetScratch();
            uint32_t buf = sync_->alloc(kBuf);
            r = heapCall(sys::GETDENTS64,
                            {fd, static_cast<int32_t>(buf),
                             static_cast<int32_t>(kBuf), 0, 0, 0});
            if (r > 0)
                data.assign(sync_->heapData() + buf,
                            sync_->heapData() + buf + r);
        } else {
            CallResult cr = blockingCall(
                *client_, "getdents64",
                {jsvm::Value(fd),
                 jsvm::Value(static_cast<double>(kBuf))});
            r = cr.r0;
            if (r > 0 && cr.data.isBytes() && cr.data.asBytes())
                data = *cr.data.asBytes();
        }
        if (r < 0)
            return static_cast<int>(r);
        if (r == 0 || data.empty())
            return 0;
        auto batch = sys::decodeDirents(data.data(), data.size());
        out.insert(out.end(), batch.begin(), batch.end());
    }
}

int
EmEnv::ioctlIsatty(int fd)
{
    return static_cast<int>(
        invoke(sys::IOCTL, {jsvm::Value(fd), jsvm::Value(0)}, {fd, 0}).r0);
}

int
EmEnv::chdir(const std::string &path)
{
    return static_cast<int>(pathCall(sys::CHDIR, path));
}

std::string
EmEnv::getcwd()
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t buf = sync_->alloc(4096);
        int64_t r = heapCall(
            sys::GETCWD, {static_cast<int32_t>(buf), 4096, 0, 0, 0, 0});
        if (r < 0)
            return "/";
        return std::string(
            reinterpret_cast<char *>(sync_->heapData() + buf));
    }
    CallResult r = blockingCall(*client_, "getcwd", {});
    return r.data.isString() ? r.data.asString() : "/";
}

int
EmEnv::getpid()
{
    return static_cast<int>(invoke(sys::GETPID, {}, {}).r0);
}

int
EmEnv::getppid()
{
    return static_cast<int>(invoke(sys::GETPPID, {}, {}).r0);
}

int64_t
EmEnv::nowMs()
{
    return invoke(sys::GETTIMEOFDAY, {}, {}).r0;
}

int
EmEnv::pipe2(int fds_out[2])
{
    if (usesSharedHeap()) {
        sync_->resetScratch();
        uint32_t p = sync_->alloc(8);
        int64_t r = heapCall(sys::PIPE2,
                             {static_cast<int32_t>(p), 0, 0, 0, 0, 0});
        if (r >= 0) {
            std::memcpy(fds_out, sync_->heapData() + p, 8);
            return 0;
        }
        return static_cast<int>(r);
    }
    CallResult r = blockingCall(*client_, "pipe2", {jsvm::Value(0)});
    if (r.r0 < 0)
        return static_cast<int>(r.r0);
    fds_out[0] = static_cast<int>(r.r0);
    fds_out[1] = static_cast<int>(r.r1);
    return 0;
}

int
EmEnv::dup(int fd)
{
    return static_cast<int>(invoke(sys::DUP, {jsvm::Value(fd)}, {fd}).r0);
}

int
EmEnv::dup2(int oldfd, int newfd)
{
    return static_cast<int>(invoke(sys::DUP2,
                                   {jsvm::Value(oldfd), jsvm::Value(newfd)},
                                   {oldfd, newfd})
                                .r0);
}

int
EmEnv::socket()
{
    return static_cast<int>(invoke(sys::SOCKET, {}, {}).r0);
}

int
EmEnv::bind(int fd, int port)
{
    return static_cast<int>(
        invoke(sys::BIND, {jsvm::Value(fd), jsvm::Value(port)}, {fd, port})
            .r0);
}

int
EmEnv::listen(int fd, int backlog)
{
    return static_cast<int>(invoke(sys::LISTEN,
                                   {jsvm::Value(fd), jsvm::Value(backlog)},
                                   {fd, backlog})
                                .r0);
}

int
EmEnv::accept(int fd, int *remote_port)
{
    CallResult r = invoke(sys::ACCEPT, {jsvm::Value(fd)}, {fd});
    if (r.r0 >= 0 && remote_port)
        *remote_port = static_cast<int>(r.r1);
    return static_cast<int>(r.r0);
}

int
EmEnv::connect(int fd, int port)
{
    return static_cast<int>(invoke(sys::CONNECT,
                                   {jsvm::Value(fd), jsvm::Value(port)},
                                   {fd, port})
                                .r0);
}

int
EmEnv::getsockname(int fd)
{
    return static_cast<int>(
        invoke(sys::GETSOCKNAME, {jsvm::Value(fd)}, {fd}).r0);
}

int
EmEnv::shutdown(int fd, int how)
{
    return static_cast<int>(invoke(sys::SHUTDOWN,
                                   {jsvm::Value(fd), jsvm::Value(how)},
                                   {fd, how})
                                .r0);
}

int
EmEnv::epollCreate()
{
    if (!usesSharedHeap())
        return -ENOSYS; // epoll_wait's record window needs the heap
    return static_cast<int>(heapCall(sys::EPOLL_CREATE, {}));
}

int
EmEnv::epollCtl(int epfd, int op, int fd, int32_t events)
{
    if (!usesSharedHeap())
        return -ENOSYS;
    return static_cast<int>(
        heapCall(sys::EPOLL_CTL, {epfd, op, fd, events, 0, 0}));
}

int
EmEnv::epollWait(int epfd, std::vector<PollSpec> &out)
{
    if (!usesSharedHeap())
        return -ENOSYS;
    if (out.empty() ||
        out.size() > static_cast<size_t>(sys::kEpollMaxEvents))
        return -EINVAL;
    pollSignals();
    sync_->resetScratch();
    uint32_t arr = sync_->alloc(out.size() * sys::EPOLL_EVENT_BYTES);
    // Nothing to marshal in: the interest list lives kernel-side and
    // only the ready records come back. In Ring mode this is one SQE
    // whose CQE is deferred until something in the list is ready.
    int64_t r = heapCall(sys::EPOLL_WAIT,
                         {epfd, static_cast<int32_t>(arr),
                          static_cast<int32_t>(out.size()), 0, 0, 0});
    int n = static_cast<int>(r);
    for (int i = 0; i < n && i < static_cast<int>(out.size()); i++) {
        sys::EpollEvent ev;
        std::memcpy(&ev,
                    sync_->heapData() + arr + i * sys::EPOLL_EVENT_BYTES,
                    sys::EPOLL_EVENT_BYTES);
        out[i].fd = ev.fd;
        out[i].events = static_cast<int16_t>(ev.events);
        out[i].revents = static_cast<int16_t>(ev.events);
    }
    pollSignals();
    return n;
}

int64_t
EmEnv::sendfile(int out_fd, int in_fd, int64_t off, int64_t count)
{
    // All-integer arguments: works under every convention, and the data
    // plane never touches this process's heap at all.
    return invoke(sys::SENDFILE,
                  {jsvm::Value(out_fd), jsvm::Value(in_fd),
                   jsvm::Value(static_cast<double>(off)),
                   jsvm::Value(static_cast<double>(count))},
                  {out_fd, in_fd, static_cast<int32_t>(off),
                   static_cast<int32_t>(count)})
        .r0;
}

int
EmEnv::poll(std::vector<PollSpec> &fds)
{
    if (!usesSharedHeap())
        return -ENOSYS; // no personality heap for the record array
    if (fds.empty() ||
        fds.size() > static_cast<size_t>(sys::kPollMaxFds))
        return -EINVAL;
    pollSignals();
    sync_->resetScratch();
    uint32_t arr = sync_->alloc(fds.size() * sys::POLLFD_BYTES);
    for (size_t i = 0; i < fds.size(); i++) {
        sys::PollFd p;
        p.fd = fds[i].fd;
        p.events = fds[i].events;
        p.revents = 0;
        std::memcpy(sync_->heapData() + arr + i * sys::POLLFD_BYTES, &p,
                    sys::POLLFD_BYTES);
    }
    // One call covers the whole set; in Ring mode this is one SQE whose
    // CQE is deferred until a descriptor turns ready.
    int64_t r = heapCall(sys::POLL,
                         {static_cast<int32_t>(arr),
                          static_cast<int32_t>(fds.size()), 0, 0, 0, 0});
    for (size_t i = 0; i < fds.size(); i++) {
        sys::PollFd p;
        std::memcpy(&p, sync_->heapData() + arr + i * sys::POLLFD_BYTES,
                    sys::POLLFD_BYTES);
        fds[i].revents = p.revents;
    }
    pollSignals();
    return static_cast<int>(r);
}

int
EmEnv::spawn(const std::vector<std::string> &argv,
             const std::vector<int> &fds)
{
    return spawn(argv, init_.env, "", fds);
}

int
EmEnv::spawn(const std::vector<std::string> &argv,
             const std::map<std::string, std::string> &env,
             const std::string &cwd, const std::vector<int> &fds)
{
    jsvm::Value argv_v = jsvm::Value::array();
    for (const auto &a : argv)
        argv_v.push(jsvm::Value(a));
    jsvm::Value env_v = jsvm::Value::object();
    for (const auto &[k, v] : env)
        env_v.set(k, jsvm::Value(v));
    jsvm::Value fds_v = jsvm::Value::array();
    for (int fd : fds)
        fds_v.push(jsvm::Value(fd));
    CallResult r = blockingCall(
        *client_, "spawn",
        {std::move(argv_v), std::move(env_v), jsvm::Value(cwd),
         std::move(fds_v)});
    return static_cast<int>(r.r0);
}

int
EmEnv::waitpid(int pid, int *status, int options)
{
    if (usesSharedHeap()) {
        // Ring-native wait4: (pid, status_ptr, options) with a 4-byte
        // status window in scratch the kernel fills in place — the
        // deferred CQE from completeWaits then carries the reaped pid in
        // r0 and nothing else needs to travel.
        pollSignals();
        sync_->resetScratch();
        uint32_t stat_ptr = status ? sync_->alloc(4) : 0;
        int64_t r = heapCall(
            sys::WAIT4,
            {pid, static_cast<int32_t>(stat_ptr), options, 0, 0, 0});
        if (r > 0 && status)
            std::memcpy(status, sync_->heapData() + stat_ptr, 4);
        pollSignals();
        return static_cast<int>(r);
    }
    CallResult r = blockingCall(
        *client_, "wait4", {jsvm::Value(pid), jsvm::Value(options)});
    pollSignals();
    if (r.r0 > 0 && status)
        *status = static_cast<int>(r.r1);
    return static_cast<int>(r.r0);
}

int
EmEnv::kill(int pid, int sig)
{
    return static_cast<int>(
        invoke(sys::KILL, {jsvm::Value(pid), jsvm::Value(sig)}, {pid, sig})
            .r0);
}

void
EmEnv::signal(int sig, std::function<void(int)> handler)
{
    {
        std::lock_guard<std::mutex> lk(sigMutex_);
        if (handler)
            handlers_[sig] = std::move(handler);
        else
            handlers_.erase(sig);
    }
    int action = handlers_.count(sig)
                     ? static_cast<int>(sys::SigDisposition::Handler)
                     : static_cast<int>(sys::SigDisposition::Default);
    invoke(sys::SIGACTION, {jsvm::Value(sig), jsvm::Value(action)},
           {sig, action});
}

int
EmEnv::fork(const std::string &resume_state)
{
    if (!emterpreter_) {
        // §2.2: a program compiled without the Emterpreter "will fail at
        // runtime when it attempts to invoke fork".
        return -ENOSYS;
    }
    bfs::Buffer snap;
    const char tag[] = "EMSTATE1";
    snap.insert(snap.end(), tag, tag + 8);
    snap.insert(snap.end(), resume_state.begin(), resume_state.end());
    CallResult r = blockingCall(
        *client_, "fork",
        {jsvm::Value::bytes(snap.data(), snap.size())});
    return static_cast<int>(r.r0);
}

int
EmEnv::execv(const std::vector<std::string> &argv)
{
    jsvm::Value argv_v = jsvm::Value::array();
    for (const auto &a : argv)
        argv_v.push(jsvm::Value(a));
    jsvm::Value env_v = jsvm::Value::object();
    for (const auto &[k, v] : init_.env)
        env_v.set(k, jsvm::Value(v));
    // Only a failed exec returns.
    CallResult r = blockingCall(*client_, "execve",
                                {std::move(argv_v), std::move(env_v)});
    return static_cast<int>(r.r0);
}

void
EmEnv::exit(int code)
{
    throw ExitRequested{code};
}

int64_t
EmEnv::runInterpreted(const emvm::Image &image, const std::string &fn,
                      std::vector<int64_t> args)
{
    emvm::Vm vm(image);
    if (!vm.start(fn, args))
        return -1;
    emvm::RunState st = vm.run(&client_->scope().token());
    if (st != emvm::RunState::Done)
        jsvm::panic("runInterpreted: kernel bytecode made a syscall/fault: " +
                    vm.trapMessage());
    return vm.exitCode();
}

// ---------------------------------------------------------------------------

void
EmscriptenRuntime::boot(jsvm::WorkerScope &scope,
                        std::shared_ptr<SyscallClient> client,
                        EmProgramFn program, EmMode mode, bool emterpreter)
{
    client->onInit([&scope, client, program = std::move(program), mode,
                    emterpreter](const InitInfo &) {
        // The program runs as a guest context owned by the worker (a
        // pooled fiber, or a legacy thread joined at exit) — it can never
        // outlive the scope it captures.
        scope.startGuest([&scope, client, program, mode, emterpreter]() {
            try {
                auto env = std::make_shared<EmEnv>(client, mode, emterpreter,
                                                   scope.costs());
                // Route kernel signal messages into the program's
                // pending queue; handlers run at syscall boundaries
                // (§4.2: signals arrive over the same message
                // interface as system calls).
                std::weak_ptr<EmEnv> weak = env;
                client->scope().loop().post([client, weak]() {
                    client->onSignal([weak](int sig) {
                        if (auto e = weak.lock())
                            e->queueSignal(sig);
                    });
                });
                int code = program(*env);
                client->post("exit", {jsvm::Value(code)});
            } catch (ExitRequested &e) {
                client->post("exit", {jsvm::Value(e.code)});
            }
        });
    });
}

// ---------------------------------------------------------------------------

namespace {

/** Service one VM syscall under the async convention. */
int64_t
vmSyscall(SyscallClient &client, emvm::Vm &vm, int trap,
          const std::vector<int64_t> &args, bool &exited, int &exit_code)
{
    using jsvm::Value;
    switch (trap) {
      case sys::EXIT:
        exited = true;
        exit_code = args.empty() ? 0 : static_cast<int>(args[0]);
        return 0;
      case sys::WRITE: {
        // (fd, ptr, len)
        bfs::Buffer data;
        data.resize(args.size() > 2 ? static_cast<size_t>(args[2]) : 0);
        if (!data.empty() &&
            !vm.memRead(static_cast<uint64_t>(args[1]), data.data(),
                        data.size()))
            return -EFAULT;
        return blockingCall(client, "write",
                            {Value(static_cast<int>(args[0])),
                             Value::bytes(data.data(), data.size())})
            .r0;
      }
      case sys::READ: {
        // (fd, ptr, len)
        CallResult r = blockingCall(
            client, "read",
            {Value(static_cast<int>(args[0])),
             Value(static_cast<double>(args[2]))});
        if (r.r0 > 0 && r.data.isBytes() && r.data.asBytes()) {
            if (!vm.memWrite(static_cast<uint64_t>(args[1]),
                             r.data.asBytes()->data(),
                             r.data.asBytes()->size()))
                return -EFAULT;
        }
        return r.r0;
      }
      case sys::OPEN: {
        std::string path = vm.memStr(static_cast<uint64_t>(args[0]));
        return blockingCall(client, "open",
                            {Value(path), Value(static_cast<int>(args[1])),
                             Value(static_cast<int>(args[2]))})
            .r0;
      }
      case sys::CLOSE:
        return blockingCall(client, "close",
                            {Value(static_cast<int>(args[0]))})
            .r0;
      case sys::GETPID:
        return blockingCall(client, "getpid", {}).r0;
      case sys::KILL:
        return blockingCall(client, "kill",
                            {Value(static_cast<int>(args[0])),
                             Value(static_cast<int>(args[1]))})
            .r0;
      case sys::WAIT4: {
        CallResult r = blockingCall(
            client, "wait4",
            {Value(static_cast<int>(args[0])),
             Value(args.size() > 2 ? static_cast<int>(args[2]) : 0)});
        // status written at args[1] if a pointer was supplied
        if (r.r0 > 0 && args.size() > 1 && args[1] != 0) {
            int32_t status = static_cast<int32_t>(r.r1);
            vm.memWrite(static_cast<uint64_t>(args[1]),
                        reinterpret_cast<uint8_t *>(&status), 4);
        }
        return r.r0;
      }
      case sys::FORK: {
        // Full-fidelity fork: ship the machine state. The parent's VM is
        // snapshotted *awaiting this syscall's result*; the kernel boots
        // a sibling worker that resumes with 0 pushed.
        std::vector<uint8_t> snap = vm.snapshot();
        CallResult r = blockingCall(
            client, "fork", {Value::bytes(snap.data(), snap.size())});
        return r.r0;
      }
      default:
        return -ENOSYS;
    }
}

} // namespace

void
EmVmHost::boot(jsvm::WorkerScope &scope,
               std::shared_ptr<SyscallClient> client, emvm::Image image)
{
    client->onInit([&scope, client,
                    image = std::move(image)](const InitInfo &init) {
        // Guest context owned by the worker (fiber or joined thread); the
        // old detached-thread-capturing-&scope pattern could use the scope
        // after it died when a teardown raced the guest's exit.
        scope.startGuest([&scope, client, image, init]() {
            emvm::Vm vm(image);
            bool resumed = false;
            if (!init.snapshot.empty() && init.snapshot.size() > 8 &&
                std::memcmp(init.snapshot.data(), "BSXSNAP1", 8) == 0) {
                if (!emvm::Vm::restore(image, init.snapshot, vm)) {
                    client->post("exit", {jsvm::Value(125)});
                    return;
                }
                vm.resume(0); // we are the fork child
                resumed = true;
            }
            if (!resumed && !vm.start("main", {})) {
                client->post("exit", {jsvm::Value(127)});
                return;
            }
            bool exited = false;
            int exit_code = 0;
            for (;;) {
                emvm::RunState st = vm.run(&scope.token());
                if (st == emvm::RunState::Done) {
                    exit_code = static_cast<int>(vm.exitCode());
                    break;
                }
                if (st == emvm::RunState::Trapped) {
                    exit_code = 139; // "segfault"
                    break;
                }
                int64_t r = vmSyscall(*client, vm, vm.pendingTrap(),
                                      vm.pendingArgs(), exited, exit_code);
                if (exited)
                    break;
                vm.resume(r);
            }
            client->post("exit", {jsvm::Value(exit_code)});
        });
    });
}

} // namespace rt
} // namespace browsix
