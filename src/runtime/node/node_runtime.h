/**
 * @file
 * browser-node (§4.3, Node.js): Node's high-level callback APIs backed by
 * pure replacements for its C++ bindings that issue Browsix system calls.
 *
 * NodeApi is the API surface our utilities (cat, ls, grep, sha1sum, ...)
 * are written against. It has two implementations:
 *   - NodeBrowsixApi (here): bindings that make async Browsix syscalls —
 *     the paper's browser-node. Runs on the worker's event loop, single
 *     threaded and callback-driven exactly like Node.
 *   - NodeDirectApi (bench/fig9): bindings that call the filesystem
 *     directly — "the same utility run under Node.js on Linux", the
 *     middle column of Figure 9.
 *
 * Utilities register themselves by name (registerNodeUtil); an executable
 * script marked "//:node-util:<name>" selects one, mirroring how node
 * resolves and runs a script file.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/syscall_client.h"

namespace browsix {
namespace rt {

class NodeApi
{
  public:
    virtual ~NodeApi() = default;

    // --- process globals ---
    std::vector<std::string> argv; ///< [node, script, args...]
    std::map<std::string, std::string> env;
    std::string cwd = "/";
    int pid = 0;

    using VoidCb = std::function<void(int err)>;
    using IntCb = std::function<void(int64_t r)>;
    using DataCb = std::function<void(int err, bfs::Buffer)>;
    using NamesCb = std::function<void(int err, std::vector<std::string>)>;
    using StatCb = std::function<void(int err, sys::StatX)>;

    // --- fs ---
    virtual void readFile(const std::string &path, DataCb cb) = 0;
    virtual void writeFile(const std::string &path, bfs::Buffer data,
                           VoidCb cb) = 0;
    virtual void appendFile(const std::string &path, bfs::Buffer data,
                            VoidCb cb) = 0;
    virtual void readdir(const std::string &path, NamesCb cb) = 0;
    virtual void stat(const std::string &path, StatCb cb) = 0;
    virtual void lstat(const std::string &path, StatCb cb) = 0;
    virtual void unlink(const std::string &path, VoidCb cb) = 0;
    virtual void mkdir(const std::string &path, VoidCb cb) = 0;
    virtual void rmdir(const std::string &path, VoidCb cb) = 0;
    virtual void rename(const std::string &from, const std::string &to,
                        VoidCb cb) = 0;
    virtual void utimes(const std::string &path, int64_t atime_us,
                        int64_t mtime_us, VoidCb cb) = 0;
    virtual void open(const std::string &path, int oflags, IntCb cb) = 0;
    virtual void read(int fd, size_t n, DataCb cb) = 0;
    virtual void write(int fd, bfs::Buffer data, IntCb cb) = 0;
    virtual void close(int fd, VoidCb cb) = 0;

    // --- stdio ---
    virtual void stdoutWrite(const std::string &s, VoidCb cb = nullptr) = 0;
    virtual void stderrWrite(const std::string &s, VoidCb cb = nullptr) = 0;
    /** Read the next stdin chunk; empty buffer means EOF. */
    virtual void stdinRead(DataCb cb) = 0;

    // --- net (for curl / HTTP utilities) ---
    /** Connect a TCP stream to a local Browsix port; yields an fd. */
    virtual void connect(int port, IntCb cb)
    {
        (void)port;
        cb(-ENOSYS);
    }

    // --- child_process (for xargs / sh integration) ---
    virtual void spawn(const std::vector<std::string> &argv,
                       IntCb cb) = 0;
    virtual void waitPid(int pid, std::function<void(int, int)> cb) = 0;
    virtual void kill(int pid, int sig, VoidCb cb) = 0;

    virtual void exit(int code) = 0;
    virtual int64_t nowMs() = 0;
};

using NodeUtilFn = std::function<void(std::shared_ptr<NodeApi>)>;

/** Register a utility under its command name (e.g. "cat"). */
void registerNodeUtil(const std::string &name, NodeUtilFn fn);
NodeUtilFn lookupNodeUtil(const std::string &name);
std::vector<std::string> nodeUtilNames();

/** Parse "//:node-util:<name>" out of a script's bytes ("" if absent). */
std::string nodeUtilFromScript(const bfs::Buffer &script);

/** The Browsix bindings. */
class NodeBrowsixApi : public NodeApi,
                       public std::enable_shared_from_this<NodeBrowsixApi>
{
  public:
    explicit NodeBrowsixApi(std::shared_ptr<SyscallClient> client);

    void readFile(const std::string &path, DataCb cb) override;
    void writeFile(const std::string &path, bfs::Buffer data,
                   VoidCb cb) override;
    void appendFile(const std::string &path, bfs::Buffer data,
                    VoidCb cb) override;
    void readdir(const std::string &path, NamesCb cb) override;
    void stat(const std::string &path, StatCb cb) override;
    void lstat(const std::string &path, StatCb cb) override;
    void unlink(const std::string &path, VoidCb cb) override;
    void mkdir(const std::string &path, VoidCb cb) override;
    void rmdir(const std::string &path, VoidCb cb) override;
    void rename(const std::string &from, const std::string &to,
                VoidCb cb) override;
    void utimes(const std::string &path, int64_t atime_us, int64_t mtime_us,
                VoidCb cb) override;
    void open(const std::string &path, int oflags, IntCb cb) override;
    void read(int fd, size_t n, DataCb cb) override;
    void write(int fd, bfs::Buffer data, IntCb cb) override;
    void close(int fd, VoidCb cb) override;
    void stdoutWrite(const std::string &s, VoidCb cb) override;
    void stderrWrite(const std::string &s, VoidCb cb) override;
    void stdinRead(DataCb cb) override;
    void connect(int port, IntCb cb) override;
    void spawn(const std::vector<std::string> &argv, IntCb cb) override;
    void waitPid(int pid, std::function<void(int, int)> cb) override;
    void kill(int pid, int sig, VoidCb cb) override;
    void exit(int code) override;
    int64_t nowMs() override;

  private:
    void fdWrite(int fd, const std::string &s, VoidCb cb);

    std::shared_ptr<SyscallClient> client_;
    bool exited_ = false;
};

/** Boot the node executable inside a worker: load the script named in
 * argv[1], resolve the utility, run it. */
class NodeRuntime
{
  public:
    static void boot(jsvm::WorkerScope &scope,
                     std::shared_ptr<SyscallClient> client);
};

} // namespace rt
} // namespace browsix
