#include "runtime/node/node_runtime.h"

#include <map>

#include "jsvm/util.h"

namespace browsix {
namespace rt {

namespace {

std::map<std::string, NodeUtilFn> &
utilRegistry()
{
    static std::map<std::string, NodeUtilFn> registry;
    return registry;
}

} // namespace

void
registerNodeUtil(const std::string &name, NodeUtilFn fn)
{
    utilRegistry()[name] = std::move(fn);
}

NodeUtilFn
lookupNodeUtil(const std::string &name)
{
    auto it = utilRegistry().find(name);
    return it == utilRegistry().end() ? nullptr : it->second;
}

std::vector<std::string>
nodeUtilNames()
{
    std::vector<std::string> names;
    for (const auto &[name, fn] : utilRegistry())
        names.push_back(name);
    return names;
}

std::string
nodeUtilFromScript(const bfs::Buffer &script)
{
    const std::string marker = "//:node-util:";
    std::string text(script.begin(),
                     script.begin() +
                         std::min<size_t>(script.size(), 4096));
    auto pos = text.find(marker);
    if (pos == std::string::npos)
        return "";
    pos += marker.size();
    auto end = text.find_first_of("\r\n \t", pos);
    if (end == std::string::npos)
        end = text.size();
    return text.substr(pos, end - pos);
}

NodeBrowsixApi::NodeBrowsixApi(std::shared_ptr<SyscallClient> client)
    : client_(std::move(client))
{
    const InitInfo &init = client_->init();
    argv = init.args;
    env = init.env;
    cwd = init.cwd;
    pid = init.pid;
}

void
NodeBrowsixApi::readFile(const std::string &path, DataCb cb)
{
    auto self = shared_from_this();
    open(path, 0, [self, cb](int64_t fd) {
        if (fd < 0) {
            cb(static_cast<int>(-fd), {});
            return;
        }
        auto acc = std::make_shared<bfs::Buffer>();
        auto step = std::make_shared<std::function<void()>>();
        *step = [self, fd, acc, step, cb]() {
            self->read(static_cast<int>(fd), 64 * 1024,
                       [self, fd, acc, step, cb](int err, bfs::Buffer data) {
                           if (err) {
                               self->close(static_cast<int>(fd), nullptr);
                               cb(err, {});
                               return;
                           }
                           if (data.empty()) {
                               self->close(static_cast<int>(fd), nullptr);
                               cb(0, std::move(*acc));
                               return;
                           }
                           acc->insert(acc->end(), data.begin(), data.end());
                           (*step)();
                       });
        };
        (*step)();
    });
}

void
NodeBrowsixApi::writeFile(const std::string &path, bfs::Buffer data,
                          VoidCb cb)
{
    auto self = shared_from_this();
    client_->call(
        "open",
        {jsvm::Value(path),
         jsvm::Value(bfs::flags::CREAT | bfs::flags::TRUNC |
                     bfs::flags::WRONLY),
         jsvm::Value(0644)},
        [self, data = std::move(data), cb](int64_t fd, int64_t,
                                           jsvm::Value) {
            if (fd < 0) {
                if (cb)
                    cb(static_cast<int>(-fd));
                return;
            }
            self->write(static_cast<int>(fd), data,
                        [self, fd, cb](int64_t n) {
                            self->close(static_cast<int>(fd), nullptr);
                            if (cb)
                                cb(n < 0 ? static_cast<int>(-n) : 0);
                        });
        });
}

void
NodeBrowsixApi::appendFile(const std::string &path, bfs::Buffer data,
                           VoidCb cb)
{
    auto self = shared_from_this();
    client_->call(
        "open",
        {jsvm::Value(path),
         jsvm::Value(bfs::flags::CREAT | bfs::flags::APPEND |
                     bfs::flags::WRONLY),
         jsvm::Value(0644)},
        [self, data = std::move(data), cb](int64_t fd, int64_t,
                                           jsvm::Value) {
            if (fd < 0) {
                if (cb)
                    cb(static_cast<int>(-fd));
                return;
            }
            self->write(static_cast<int>(fd), data,
                        [self, fd, cb](int64_t n) {
                            self->close(static_cast<int>(fd), nullptr);
                            if (cb)
                                cb(n < 0 ? static_cast<int>(-n) : 0);
                        });
        });
}

void
NodeBrowsixApi::readdir(const std::string &path, NamesCb cb)
{
    client_->call("readdir", {jsvm::Value(path)},
                  [cb](int64_t r0, int64_t, jsvm::Value data) {
                      if (r0 < 0) {
                          cb(static_cast<int>(-r0), {});
                          return;
                      }
                      std::vector<std::string> names;
                      if (data.isArray()) {
                          for (const auto &n : data.asArray())
                              names.push_back(
                                  n.isString() ? n.asString() : "");
                      }
                      cb(0, std::move(names));
                  });
}

void
NodeBrowsixApi::stat(const std::string &path, StatCb cb)
{
    client_->call("stat", {jsvm::Value(path)},
                  [cb](int64_t r0, int64_t, jsvm::Value data) {
                      if (r0 < 0) {
                          cb(static_cast<int>(-r0), {});
                          return;
                      }
                      cb(0, sys::statFromValue(data));
                  });
}

void
NodeBrowsixApi::lstat(const std::string &path, StatCb cb)
{
    client_->call("lstat", {jsvm::Value(path)},
                  [cb](int64_t r0, int64_t, jsvm::Value data) {
                      if (r0 < 0) {
                          cb(static_cast<int>(-r0), {});
                          return;
                      }
                      cb(0, sys::statFromValue(data));
                  });
}

namespace {
NodeApi::VoidCb
errAdapter(NodeApi::VoidCb cb)
{
    return cb ? cb : [](int) {};
}
} // namespace

void
NodeBrowsixApi::unlink(const std::string &path, VoidCb cb)
{
    client_->call("unlink", {jsvm::Value(path)},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::mkdir(const std::string &path, VoidCb cb)
{
    client_->call("mkdir", {jsvm::Value(path), jsvm::Value(0755)},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::rmdir(const std::string &path, VoidCb cb)
{
    client_->call("rmdir", {jsvm::Value(path)},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::rename(const std::string &from, const std::string &to,
                       VoidCb cb)
{
    client_->call("rename", {jsvm::Value(from), jsvm::Value(to)},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::utimes(const std::string &path, int64_t atime_us,
                       int64_t mtime_us, VoidCb cb)
{
    client_->call("utimes",
                  {jsvm::Value(path),
                   jsvm::Value(static_cast<double>(atime_us)),
                   jsvm::Value(static_cast<double>(mtime_us))},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::open(const std::string &path, int oflags, IntCb cb)
{
    client_->call("open",
                  {jsvm::Value(path), jsvm::Value(oflags),
                   jsvm::Value(0644)},
                  [cb](int64_t r0, int64_t, jsvm::Value) { cb(r0); });
}

void
NodeBrowsixApi::read(int fd, size_t n, DataCb cb)
{
    client_->call("read",
                  {jsvm::Value(fd), jsvm::Value(static_cast<double>(n))},
                  [cb](int64_t r0, int64_t, jsvm::Value data) {
                      if (r0 < 0) {
                          cb(static_cast<int>(-r0), {});
                          return;
                      }
                      bfs::Buffer out;
                      if (data.isBytes() && data.asBytes())
                          out = *data.asBytes();
                      cb(0, std::move(out));
                  });
}

void
NodeBrowsixApi::write(int fd, bfs::Buffer data, IntCb cb)
{
    client_->call("write",
                  {jsvm::Value(fd),
                   jsvm::Value::bytes(data.data(), data.size())},
                  [cb](int64_t r0, int64_t, jsvm::Value) {
                      if (cb)
                          cb(r0);
                  });
}

void
NodeBrowsixApi::close(int fd, VoidCb cb)
{
    client_->call("close", {jsvm::Value(fd)},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::fdWrite(int fd, const std::string &s, VoidCb cb)
{
    write(fd,
          bfs::Buffer(s.begin(), s.end()),
          [cb = errAdapter(cb)](int64_t r) {
              cb(r < 0 ? static_cast<int>(-r) : 0);
          });
}

void
NodeBrowsixApi::stdoutWrite(const std::string &s, VoidCb cb)
{
    fdWrite(1, s, std::move(cb));
}

void
NodeBrowsixApi::stderrWrite(const std::string &s, VoidCb cb)
{
    fdWrite(2, s, std::move(cb));
}

void
NodeBrowsixApi::stdinRead(DataCb cb)
{
    read(0, 256 * 1024, std::move(cb));
}

void
NodeBrowsixApi::connect(int port, IntCb cb)
{
    auto self = shared_from_this();
    client_->call("socket", {},
                  [self, port, cb](int64_t fd, int64_t, jsvm::Value) {
                      if (fd < 0) {
                          cb(fd);
                          return;
                      }
                      self->client_->call(
                          "connect",
                          {jsvm::Value(static_cast<int>(fd)),
                           jsvm::Value(port)},
                          [fd, cb](int64_t r0, int64_t, jsvm::Value) {
                              cb(r0 < 0 ? r0 : fd);
                          });
                  });
}

void
NodeBrowsixApi::spawn(const std::vector<std::string> &argv, IntCb cb)
{
    jsvm::Value argv_v = jsvm::Value::array();
    for (const auto &a : argv)
        argv_v.push(jsvm::Value(a));
    jsvm::Value env_v = jsvm::Value::object();
    for (const auto &[k, v] : env)
        env_v.set(k, jsvm::Value(v));
    jsvm::Value fds_v = jsvm::Value::array();
    for (int fd : {0, 1, 2})
        fds_v.push(jsvm::Value(fd));
    client_->call("spawn",
                  {std::move(argv_v), std::move(env_v), jsvm::Value(cwd),
                   std::move(fds_v)},
                  [cb](int64_t r0, int64_t, jsvm::Value) { cb(r0); });
}

void
NodeBrowsixApi::waitPid(int pid, std::function<void(int, int)> cb)
{
    client_->call("wait4", {jsvm::Value(pid), jsvm::Value(0)},
                  [cb](int64_t r0, int64_t r1, jsvm::Value) {
                      cb(static_cast<int>(r0), static_cast<int>(r1));
                  });
}

void
NodeBrowsixApi::kill(int pid, int sig, VoidCb cb)
{
    client_->call("kill", {jsvm::Value(pid), jsvm::Value(sig)},
                  [cb = errAdapter(cb)](int64_t r0, int64_t, jsvm::Value) {
                      cb(r0 < 0 ? static_cast<int>(-r0) : 0);
                  });
}

void
NodeBrowsixApi::exit(int code)
{
    if (exited_)
        return;
    exited_ = true;
    client_->post("exit", {jsvm::Value(code)});
}

int64_t
NodeBrowsixApi::nowMs()
{
    return jsvm::nowUs() / 1000;
}

void
NodeRuntime::boot(jsvm::WorkerScope &scope,
                  std::shared_ptr<SyscallClient> client)
{
    (void)scope;
    client->onInit([client](const InitInfo &init) {
        auto api = std::make_shared<NodeBrowsixApi>(client);
        if (init.args.size() < 2) {
            api->stderrWrite("node: missing script argument\n", nullptr);
            api->exit(1);
            return;
        }
        std::string script = init.args[1];
        api->readFile(script, [api, script](int err, bfs::Buffer data) {
            if (err) {
                api->stderrWrite("node: cannot load " + script + "\n", nullptr);
                api->exit(127);
                return;
            }
            std::string util = nodeUtilFromScript(data);
            NodeUtilFn fn = lookupNodeUtil(util);
            if (!fn) {
                api->stderrWrite("node: " + script +
                                     ": unknown program\n",
                                 nullptr);
                api->exit(127);
                return;
            }
            fn(api);
        });
    });
}

} // namespace rt
} // namespace browsix
