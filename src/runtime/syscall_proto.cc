#include "runtime/syscall_proto.h"

#include <cstring>
#include <map>

#include "jsvm/util.h"

namespace browsix {
namespace sys {

namespace {

const std::map<int, const char *> &
trapTable()
{
    static const std::map<int, const char *> table = {
        {EXIT, "exit"},
        {FORK, "fork"},
        {READ, "read"},
        {WRITE, "write"},
        {OPEN, "open"},
        {CLOSE, "close"},
        {UNLINK, "unlink"},
        {EXECVE, "execve"},
        {CHDIR, "chdir"},
        {GETPID, "getpid"},
        {ACCESS, "access"},
        {KILL, "kill"},
        {RENAME, "rename"},
        {MKDIR, "mkdir"},
        {RMDIR, "rmdir"},
        {DUP, "dup"},
        {PIPE2, "pipe2"},
        {IOCTL, "ioctl"},
        {DUP2, "dup2"},
        {GETPPID, "getppid"},
        {GETTIMEOFDAY, "gettimeofday"},
        {SYMLINK, "symlink"},
        {READLINK, "readlink"},
        {WAIT4, "wait4"},
        {LLSEEK, "llseek"},
        {POLL, "poll"},
        {GETDENTS, "getdents"},
        {READV, "readv"},
        {WRITEV, "writev"},
        {PREAD, "pread"},
        {PWRITE, "pwrite"},
        {SENDFILE, "sendfile"},
        {EPOLL_CREATE, "epoll_create"},
        {EPOLL_CTL, "epoll_ctl"},
        {EPOLL_WAIT, "epoll_wait"},
        {PREADV, "preadv"},
        {PWRITEV, "pwritev"},
        {GETCWD, "getcwd"},
        {STAT, "stat"},
        {LSTAT, "lstat"},
        {FSTAT, "fstat"},
        {GETDENTS64, "getdents64"},
        {UTIMES, "utimes"},
        {SOCKET, "socket"},
        {BIND, "bind"},
        {LISTEN, "listen"},
        {ACCEPT, "accept"},
        {CONNECT, "connect"},
        {GETSOCKNAME, "getsockname"},
        {SHUTDOWN, "shutdown"},
        {SPAWN, "spawn"},
        {READDIR, "readdir"},
        {SIGACTION, "sigaction"},
        {PERSONALITY, "personality"},
        {RING_PERSONALITY, "ring_personality"},
    };
    return table;
}

} // namespace

const char *
trapName(int trap)
{
    auto it = trapTable().find(trap);
    return it == trapTable().end() ? "unknown" : it->second;
}

int
trapFromName(const std::string &name)
{
    static std::map<std::string, int> inverse = [] {
        std::map<std::string, int> m;
        for (const auto &[num, n] : trapTable())
            m[n] = num;
        return m;
    }();
    auto it = inverse.find(name);
    return it == inverse.end() ? -1 : it->second;
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGHUP: return "SIGHUP";
      case SIGINT: return "SIGINT";
      case SIGQUIT: return "SIGQUIT";
      case SIGKILL: return "SIGKILL";
      case SIGUSR1: return "SIGUSR1";
      case SIGUSR2: return "SIGUSR2";
      case SIGPIPE: return "SIGPIPE";
      case SIGTERM: return "SIGTERM";
      case SIGCHLD: return "SIGCHLD";
      case SIGCONT: return "SIGCONT";
      case SIGSTOP: return "SIGSTOP";
      case SIGWINCH: return "SIGWINCH";
      default: return "SIG?";
    }
}

StatX
statXFromBfs(const bfs::Stat &st)
{
    StatX x;
    x.ino = st.ino;
    uint32_t typebits = st.isDir()       ? S_IFDIR_
                        : st.isSymlink() ? S_IFLNK_
                                         : S_IFREG_;
    x.mode = (st.mode & 07777) | typebits;
    x.nlink = st.nlink;
    x.size = st.size;
    x.atimeUs = st.atimeUs;
    x.mtimeUs = st.mtimeUs;
    x.ctimeUs = st.ctimeUs;
    return x;
}

namespace {
void
put32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, 4);
}
void
put64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, 8);
}
uint32_t
get32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}
uint64_t
get64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}
} // namespace

void
packStat(const StatX &st, uint8_t *dst)
{
    put64(dst + 0, st.ino);
    put32(dst + 8, st.mode);
    put32(dst + 12, st.nlink);
    put64(dst + 16, st.size);
    put64(dst + 24, static_cast<uint64_t>(st.atimeUs));
    put64(dst + 32, static_cast<uint64_t>(st.mtimeUs));
    put64(dst + 40, static_cast<uint64_t>(st.ctimeUs));
}

StatX
unpackStat(const uint8_t *src)
{
    StatX st;
    st.ino = get64(src + 0);
    st.mode = get32(src + 8);
    st.nlink = get32(src + 12);
    st.size = get64(src + 16);
    st.atimeUs = static_cast<int64_t>(get64(src + 24));
    st.mtimeUs = static_cast<int64_t>(get64(src + 32));
    st.ctimeUs = static_cast<int64_t>(get64(src + 40));
    return st;
}

jsvm::Value
statToValue(const StatX &st)
{
    jsvm::Value v = jsvm::Value::object();
    v.set("ino", jsvm::Value(static_cast<double>(st.ino)));
    v.set("mode", jsvm::Value(static_cast<double>(st.mode)));
    v.set("nlink", jsvm::Value(static_cast<double>(st.nlink)));
    v.set("size", jsvm::Value(static_cast<double>(st.size)));
    v.set("atimeUs", jsvm::Value(static_cast<double>(st.atimeUs)));
    v.set("mtimeUs", jsvm::Value(static_cast<double>(st.mtimeUs)));
    v.set("ctimeUs", jsvm::Value(static_cast<double>(st.ctimeUs)));
    return v;
}

StatX
statFromValue(const jsvm::Value &v)
{
    StatX st;
    st.ino = static_cast<uint64_t>(v.get("ino").asNumber());
    st.mode = static_cast<uint32_t>(v.get("mode").asNumber());
    st.nlink = static_cast<uint32_t>(v.get("nlink").asNumber());
    st.size = static_cast<uint64_t>(v.get("size").asNumber());
    st.atimeUs = static_cast<int64_t>(v.get("atimeUs").asNumber());
    st.mtimeUs = static_cast<int64_t>(v.get("mtimeUs").asNumber());
    st.ctimeUs = static_cast<int64_t>(v.get("ctimeUs").asNumber());
    return st;
}

size_t
direntRecLen(const Dirent &e)
{
    // layout: ino u64, reclen u16, type u8, name..., NUL (4-aligned)
    size_t base = 8 + 2 + 1 + e.name.size() + 1;
    return (base + 3) & ~size_t{3};
}

size_t
encodeDirentAt(const Dirent &e, uint8_t *dst)
{
    size_t reclen = direntRecLen(e);
    std::memset(dst, 0, reclen);
    put64(dst, e.ino);
    uint16_t rl = static_cast<uint16_t>(reclen);
    std::memcpy(dst + 8, &rl, 2);
    dst[10] = e.type;
    std::memcpy(dst + 11, e.name.data(), e.name.size());
    return reclen;
}

std::vector<uint8_t>
encodeDirents(const std::vector<Dirent> &entries)
{
    std::vector<uint8_t> out;
    for (const auto &e : entries) {
        size_t off = out.size();
        out.resize(off + direntRecLen(e), 0);
        encodeDirentAt(e, out.data() + off);
    }
    return out;
}

std::vector<Dirent>
decodeDirents(const uint8_t *data, size_t len)
{
    std::vector<Dirent> out;
    size_t off = 0;
    while (off + 11 <= len) {
        Dirent e;
        e.ino = get64(data + off);
        uint16_t reclen;
        std::memcpy(&reclen, data + off + 8, 2);
        if (reclen < 12 || off + reclen > len)
            break;
        e.type = data[off + 10];
        const char *name = reinterpret_cast<const char *>(data + off + 11);
        e.name.assign(name, strnlen(name, reclen - 11));
        out.push_back(std::move(e));
        off += reclen;
    }
    return out;
}

uint8_t
direntTypeFromBfs(bfs::FileType t)
{
    switch (t) {
      case bfs::FileType::Directory: return DT_DIR;
      case bfs::FileType::Symlink: return DT_LNK;
      case bfs::FileType::Regular: return DT_REG;
    }
    return DT_REG;
}

} // namespace sys
} // namespace browsix
