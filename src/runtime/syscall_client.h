/**
 * @file
 * Worker-side syscall layer (§4.2 "Common Services"): a typed API for
 * system calls over the browser's message-passing primitives, used by all
 * language runtimes. A Browsix process can have multiple outstanding
 * system calls (which is how GopherJS multiplexes goroutines over one
 * worker). Signals arrive over the same message interface.
 *
 * Three façades:
 *  - SyscallClient: raw async (CPS) calls + init/signal dispatch; must be
 *    used from the worker's loop thread.
 *  - blockingCall(): lets a runtime's "app thread" (the Emterpreter or a
 *    goroutine) issue an async call and park until the reply.
 *  - SyncSyscalls: the synchronous convention — a shared heap registered
 *    with the kernel ("personality"), calls that block in Atomics.wait.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "jsvm/sab.h"
#include "jsvm/worker.h"
#include "runtime/syscall_proto.h"

namespace browsix {
namespace rt {

/** Process start-up parameters, delivered in the kernel's init message
 * (§3.3: runtimes "delay execution of a process's main() function until
 * after the worker has received an 'init' message"). */
struct InitInfo
{
    int pid = 0;
    std::vector<std::string> args;
    std::map<std::string, std::string> env;
    std::string cwd = "/";
    bfs::Buffer snapshot; ///< fork/exec resume state (empty if fresh)
    bool forked = false;
};

class SyscallClient
{
  public:
    /// (r0, r1, extra-data) — Linux convention: r0 < 0 is -errno.
    using RetCb =
        std::function<void(int64_t r0, int64_t r1, jsvm::Value data)>;

    explicit SyscallClient(jsvm::WorkerScope &scope);

    /** Fires (once) when the kernel's init message arrives. */
    void onInit(std::function<void(const InitInfo &)> cb);

    /** Register the signal handler dispatcher. */
    void onSignal(std::function<void(int sig)> cb);

    /** Issue an async syscall; must run on the worker loop thread. */
    void call(const std::string &name, jsvm::Value::Array args, RetCb cb);

    /** Fire-and-forget (exit). Safe from any thread. */
    void post(const std::string &name, jsvm::Value::Array args);

    jsvm::WorkerScope &scope() { return scope_; }
    const InitInfo &init() const { return init_; }
    bool initReceived() const { return initReceived_; }

    uint64_t callsIssued() const { return calls_; }

  private:
    void onMessage(jsvm::Value msg);

    jsvm::WorkerScope &scope_;
    InitInfo init_;
    bool initReceived_ = false;
    std::function<void(const InitInfo &)> initCb_;
    std::function<void(int)> signalCb_;
    double nextId_ = 1;
    std::map<double, RetCb> outstanding_;
    uint64_t calls_ = 0;
};

/** Result of a blocking call. */
struct CallResult
{
    int64_t r0 = 0;
    int64_t r1 = 0;
    jsvm::Value data;
};

/**
 * Issue an async syscall from an app thread and park until the reply;
 * throws jsvm::WorkerTerminated if the worker is killed meanwhile. This
 * is the Emterpreter's save/restore-the-stack trick and GopherJS's
 * suspended goroutine, in substrate form.
 */
CallResult blockingCall(SyscallClient &client, const std::string &name,
                        jsvm::Value::Array args);

/**
 * The synchronous convention (§3.2). Layout of the shared heap:
 *   [0..4)   wake word (Atomics.wait address)
 *   [4..8)   pending-signal slot
 *   [8..16)  return values (two int32)
 *   [16..)   scratch + program memory (bump-allocated per call)
 */
class SyncSyscalls
{
  public:
    static constexpr size_t kWaitOff = 0;
    static constexpr size_t kSigOff = 4;
    static constexpr size_t kRetOff = 8;
    static constexpr size_t kScratchOff = 16;

    /**
     * Allocate the heap and register the personality with the kernel
     * (via an async call, per the paper). Blocking; call from the app
     * thread after init.
     */
    SyncSyscalls(SyscallClient &client, size_t heap_bytes);

    /** Blocking syscall; returns r0 (and r1 via out-param if non-null). */
    int64_t call(int trap, std::array<int32_t, 6> args,
                 int32_t *r1_out = nullptr);

    // --- scratch marshalling helpers (reset per call by the caller) ---
    uint32_t pushString(const std::string &s);
    uint32_t alloc(size_t n);
    void resetScratch() { scratchTop_ = kScratchOff; }
    uint8_t *heapData() { return heap_->data(); }
    size_t heapSize() const { return heap_->size(); }

    /** Handler invoked (on the app thread) when a signal is delivered
     * while blocked in Atomics.wait. */
    std::function<void(int sig)> signalHandler;

    /** Check-and-clear any signal the kernel parked in the signal slot. */
    void pollSignal();

  private:
    SyscallClient &client_;
    jsvm::SabPtr heap_;
    size_t scratchTop_ = kScratchOff;
};

} // namespace rt
} // namespace browsix
