/**
 * @file
 * Worker-side syscall layer (§4.2 "Common Services"): a typed API for
 * system calls over the browser's message-passing primitives, used by all
 * language runtimes. A Browsix process can have multiple outstanding
 * system calls (which is how GopherJS multiplexes goroutines over one
 * worker). Signals arrive over the same message interface.
 *
 * Four façades:
 *  - SyscallClient: raw async (CPS) calls + init/signal dispatch; must be
 *    used from the worker's loop thread.
 *  - blockingCall(): lets a runtime's "app thread" (the Emterpreter or a
 *    goroutine) issue an async call and park until the reply.
 *  - SyncSyscalls: the synchronous convention — a shared heap registered
 *    with the kernel ("personality"), calls that block in Atomics.wait.
 *  - RingSyscalls: the io_uring-style batched convention — SQ/CQ rings
 *    inside the same shared heap; one doorbell message and one Atomics
 *    wake per batch instead of per call. Blocking traps (read on an
 *    empty pipe, accept, poll/epoll_wait, wait4, connect, a sendfile
 *    into a full pipe) ride the kernel's completion-deferral protocol:
 *    their CQE is parked kernel-side and pushed when the event arrives,
 *    so they cost a ring slot while parked instead of a per-call sync
 *    round trip. See docs/ARCHITECTURE.md for the protocol.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "jsvm/sab.h"
#include "jsvm/worker.h"
#include "runtime/syscall_proto.h"
#include "runtime/syscall_ring.h"

namespace browsix {
namespace rt {

/** Process start-up parameters, delivered in the kernel's init message
 * (§3.3: runtimes "delay execution of a process's main() function until
 * after the worker has received an 'init' message"). */
struct InitInfo
{
    int pid = 0;
    std::vector<std::string> args;
    std::map<std::string, std::string> env;
    std::string cwd = "/";
    bfs::Buffer snapshot; ///< fork/exec resume state (empty if fresh)
    bool forked = false;
};

class SyscallClient
{
  public:
    /// (r0, r1, extra-data) — Linux convention: r0 < 0 is -errno.
    using RetCb =
        std::function<void(int64_t r0, int64_t r1, jsvm::Value data)>;

    explicit SyscallClient(jsvm::WorkerScope &scope);

    /** Fires (once) when the kernel's init message arrives. */
    void onInit(std::function<void(const InitInfo &)> cb);

    /** Register the signal handler dispatcher. */
    void onSignal(std::function<void(int sig)> cb);

    /** Issue an async syscall; must run on the worker loop thread. */
    void call(const std::string &name, jsvm::Value::Array args, RetCb cb);

    /** Fire-and-forget (exit). Safe from any thread. */
    void post(const std::string &name, jsvm::Value::Array args);

    jsvm::WorkerScope &scope() { return scope_; }
    const InitInfo &init() const { return init_; }
    bool initReceived() const { return initReceived_; }

    uint64_t callsIssued() const { return calls_; }

  private:
    void onMessage(jsvm::Value msg);

    jsvm::WorkerScope &scope_;
    InitInfo init_;
    bool initReceived_ = false;
    std::function<void(const InitInfo &)> initCb_;
    std::function<void(int)> signalCb_;
    double nextId_ = 1;
    std::map<double, RetCb> outstanding_;
    uint64_t calls_ = 0;
};

/** Result of a blocking call. */
struct CallResult
{
    int64_t r0 = 0;
    int64_t r1 = 0;
    jsvm::Value data;
};

/**
 * Issue an async syscall from an app thread and park until the reply;
 * throws jsvm::WorkerTerminated if the worker is killed meanwhile. This
 * is the Emterpreter's save/restore-the-stack trick and GopherJS's
 * suspended goroutine, in substrate form.
 */
CallResult blockingCall(SyscallClient &client, const std::string &name,
                        jsvm::Value::Array args);

/**
 * The synchronous convention (§3.2). Layout of the shared heap:
 *   [0..4)   wake word (Atomics.wait address)
 *   [4..8)   pending-signal slot
 *   [8..16)  return values (two int32)
 *   [16..)   scratch + program memory (bump-allocated per call)
 */
class SyncSyscalls
{
  public:
    static constexpr size_t kWaitOff = 0;
    static constexpr size_t kSigOff = 4;
    static constexpr size_t kRetOff = 8;
    static constexpr size_t kScratchOff = 16;

    /**
     * Allocate the heap and register the personality with the kernel
     * (via an async call, per the paper). Blocking; call from the app
     * thread after init.
     */
    SyncSyscalls(SyscallClient &client, size_t heap_bytes);

    /** Blocking syscall; returns r0 (and r1 via out-param if non-null). */
    int64_t call(int trap, std::array<int32_t, 6> args,
                 int32_t *r1_out = nullptr);

    // --- scratch marshalling helpers (reset per call by the caller) ---
    uint32_t pushString(const std::string &s);
    /** Marshal a packed iovec array (sys::IoVec x iovs.size()) into
     * scratch; returns its heap offset. Shared by RingSyscalls::submitv
     * and EmEnv::writev's sync fallback. */
    uint32_t pushIovArray(const std::vector<sys::IoVec> &iovs);
    uint32_t alloc(size_t n);
    void resetScratch() { scratchTop_ = scratchBase_; }
    /** Permanently carve n bytes out of the scratch region (8-aligned);
     * resetScratch() no longer reclaims them. Used for ring regions. */
    uint32_t reserve(size_t n);
    uint8_t *heapData() { return heap_->data(); }
    size_t heapSize() const { return heap_->size(); }
    jsvm::SharedArrayBuffer &heap() { return *heap_; }
    SyscallClient &client() { return client_; }

    /** Handler invoked (on the app thread) when a signal is delivered
     * while blocked in Atomics.wait. */
    std::function<void(int sig)> signalHandler;

    /** Check-and-clear any signal the kernel parked in the signal slot. */
    void pollSignal();

  private:
    SyscallClient &client_;
    jsvm::SabPtr heap_;
    size_t scratchBase_ = kScratchOff;
    size_t scratchTop_ = kScratchOff;
};

/**
 * The ring convention, process side. Built over a SyncSyscalls heap: the
 * ring region is reserve()d from the shared heap, so pointer arguments
 * keep the sync convention's encoding (offsets into the heap) and every
 * marshalling helper keeps working.
 *
 * Usage, batched:
 *   uint32_t s0 = ring.submit(sys::GETPID, {});
 *   ...                 // up to capacity() calls in flight
 *   ring.flush();       // one doorbell message for the whole batch
 *   auto r = ring.wait(s0);
 *
 * or per call via call(), which transparently falls back to the sync
 * convention for the one trap still outside the deferral protocol
 * (fork — its reply carries a state snapshot no 16-byte CQE can hold).
 * Blocking ring-eligible traps (read, readv, accept, poll, epoll_wait,
 * wait4, connect, sendfile) park kernel-side and their CQE lands
 * whenever the event arrives; a parked or late completion just occupies
 * its in-flight slot (and CQ reservation) until it does.
 *
 * Single-threaded like the rest of the runtime facades: all methods must
 * run on the process's app thread.
 */
class RingSyscalls
{
  public:
    static constexpr uint32_t kDefaultEntries = 64;

    /** Reserve the ring inside sync's heap and register it with the
     * kernel (blocking; call from the app thread after init). */
    RingSyscalls(SyncSyscalls &sync, uint32_t entries = kDefaultEntries);

    struct Completion
    {
        int32_t r0 = 0;
        int32_t r1 = 0;
    };

    /** True when trap is safe to batch: its completion either never
     * depends on a further action by the submitting thread, or defers
     * through a kernel-side waiter list (read/readv/accept/poll,
     * epoll_wait, wait4, connect, sendfile) so another process's action
     * can land the CQE. */
    static bool ringEligible(int trap);

    /**
     * One call through the ring (submit + flush + wait), or through the
     * sync fallback when the trap is not ring-eligible.
     */
    int64_t call(int trap, std::array<int32_t, 6> args,
                 int32_t *r1_out = nullptr);

    /**
     * Write one SQE; returns its completion tag. Blocks (parking on the
     * ring wait word) when the submission queue or the in-flight window
     * is full — SQ backpressure.
     */
    uint32_t submit(int trap, std::array<int32_t, 6> args);

    /**
     * Vectored submission: write `iovs` as a packed iovec array into the
     * heap's scratch region (the caller owns resetScratch timing, as
     * with every marshalling helper) and submit ONE gather/scatter SQE
     * covering all of them — one ring entry, one CQE, many spans. trap
     * must be one of READV/WRITEV/PREADV/PWRITEV; `off` is the file
     * offset for the positional pair and ignored otherwise.
     */
    uint32_t submitv(int trap, int32_t fd,
                     const std::vector<sys::IoVec> &iovs, int64_t off = 0);

    /**
     * Ring the doorbell if submissions are pending and no doorbell is
     * already in flight. Adaptive coalescing: when the kernel has a
     * drain pass scheduled (the drainPending header word), even the
     * doorbell message is skipped — the scheduled drain will see the
     * published tail — cutting bursty producers below one message per
     * batch.
     */
    void flush();

    /** Park until the completion for seq arrives; reaps the CQ. Throws
     * jsvm::WorkerTerminated if the worker is killed meanwhile. */
    Completion wait(uint32_t seq);

    /**
     * Advisory "more SQEs coming shortly" hint for wait-then-submit
     * bursts (a loop of submit → wait → submit ...). While set, the
     * kernel's drain pipeline stays armed across the gaps where this
     * producer is between completions, so the burst's later batches skip
     * the doorbell message entirely. Set it before the loop, clear it
     * after; forgetting to clear costs the kernel a bounded number of
     * empty drain passes (it caps consecutive idle-with-hint passes).
     */
    void hintMore(bool more);

    uint32_t capacity() const { return layout_.entries(); }
    /** Submitted but not yet reaped. */
    uint32_t inflight() const { return inflight_; }
    uint64_t doorbellsRung() const { return doorbells_; }
    /** Batches whose doorbell message was skipped because the kernel
     * already had a drain scheduled (adaptive coalescing). */
    uint64_t doorbellsCoalesced() const { return coalesced_; }

  private:
    void reap();
    /** Arm the wait word and park until the kernel pokes it (completion,
     * freed SQ space, or signal). pred() short-circuits the park. */
    void park(const std::function<bool()> &pred);

    SyncSyscalls &sync_;
    sys::RingLayout layout_;
    jsvm::RingIndices sq_;
    jsvm::RingIndices cq_;
    uint32_t nextSeq_ = 1;
    uint32_t inflight_ = 0;
    uint32_t unflushed_ = 0; // submitted since the last doorbell coverage
    uint64_t doorbells_ = 0;
    uint64_t coalesced_ = 0;
    std::map<uint32_t, Completion> done_;
};

/**
 * RAII for RingSyscalls::hintMore: declares a wait-then-submit burst for
 * its scope and clears the hint on every exit path (early returns, short
 * writes, exceptions). A null ring makes it a no-op, so callers with an
 * optional ring need no branch.
 */
class HintScope
{
  public:
    explicit HintScope(RingSyscalls *ring) : ring_(ring)
    {
        if (ring_)
            ring_->hintMore(true);
    }
    ~HintScope()
    {
        if (ring_)
            ring_->hintMore(false);
    }
    HintScope(const HintScope &) = delete;
    HintScope &operator=(const HintScope &) = delete;

  private:
    RingSyscalls *ring_;
};

} // namespace rt
} // namespace browsix
