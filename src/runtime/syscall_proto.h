/**
 * @file
 * Shared system-call conventions between the kernel and process runtimes
 * (the paper's "shared syscall module", Figure 2).
 *
 * Two conventions exist (§3.2):
 *  - Asynchronous: the process posts {t:"syscall", id, name, args:[...]}
 *    and the kernel replies {t:"ret", id, ret:[r0,r1], data?}. Arguments
 *    and results are structured-clone copied between heaps.
 *  - Synchronous: the process first registers a "personality" (its heap
 *    SharedArrayBuffer plus return/wake/signal offsets), then posts
 *    {t:"sys", trap, args:[i32 x6]} where pointer arguments are offsets
 *    into the shared heap; it then blocks in Atomics.wait on the wake
 *    word. The kernel writes return values (and out-data, e.g. pread
 *    payloads) directly into the heap and wakes it.
 *
 * Trap numbers use Linux/ia32 values where they exist (the paper's own
 * examples use e.g. 220 for getdents64); Browsix-specific calls use >=400.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bfs/types.h"
#include "jsvm/value.h"

namespace browsix {
namespace sys {

enum Trap : int {
    EXIT = 1,
    FORK = 2,
    READ = 3,
    WRITE = 4,
    OPEN = 5,
    CLOSE = 6,
    UNLINK = 10,
    EXECVE = 11,
    CHDIR = 12,
    GETPID = 20,
    ACCESS = 33,
    KILL = 37,
    RENAME = 38,
    MKDIR = 39,
    RMDIR = 40,
    DUP = 41,
    PIPE2 = 42,
    IOCTL = 54,
    DUP2 = 63,
    GETPPID = 64,
    GETTIMEOFDAY = 78,
    SYMLINK = 83,
    READLINK = 85,
    WAIT4 = 114,
    LLSEEK = 140,
    POLL = 168,
    GETDENTS = 141,
    READV = 145,
    WRITEV = 146,
    PREAD = 180,
    PWRITE = 181,
    GETCWD = 183,
    SENDFILE = 187,
    STAT = 195,
    LSTAT = 196,
    FSTAT = 197,
    GETDENTS64 = 220,
    EPOLL_CREATE = 254,
    EPOLL_CTL = 255,
    EPOLL_WAIT = 256,
    UTIMES = 271,
    PREADV = 333,
    PWRITEV = 334,

    // Browsix-specific
    SOCKET = 400,
    BIND = 401,
    LISTEN = 402,
    ACCEPT = 403,
    CONNECT = 404,
    GETSOCKNAME = 405,
    SHUTDOWN = 406,
    SPAWN = 410,
    READDIR = 411, ///< convenience form: returns entry names (async only)
    SIGACTION = 420,
    PERSONALITY = 422,
    RING_PERSONALITY = 423, ///< register the io_uring-style ring region
};

/**
 * Vectored I/O (readv/writev/preadv/pwritev, shared-heap conventions
 * only): the SQE/sync pointer argument names an iovec array in the
 * personality heap — `iovcnt` packed 8-byte entries, each two little-
 * endian int32s {ptr, len} where ptr is itself a heap offset. One ring
 * entry (one CQE, one wake) covers every span. Argument layout:
 *   readv/writev:   (fd, iov_ptr, iovcnt)
 *   preadv/pwritev: (fd, iov_ptr, iovcnt, off)
 * iovcnt < 1 or > kIovMax is EINVAL from the handler; an iovec entry (or
 * the array itself) outside the heap is -EFAULT at ring drain time
 * (sqeHeapArgsValid) or from the handler for sync callers.
 */
struct IoVec
{
    int32_t ptr = 0; ///< heap offset of the span
    int32_t len = 0;
};

constexpr size_t IOVEC_BYTES = 8;
constexpr int32_t kIovMax = 1024; ///< Linux UIO_MAXIOV

/**
 * The poll readiness trap (shared-heap conventions only): the pointer
 * argument names an array of `nfds` packed 8-byte PollFd records in the
 * personality heap, each {int32 fd, int16 events, int16 revents} in
 * little-endian order (Linux struct pollfd). Argument layout:
 *   poll: (fds_ptr, nfds)
 * The kernel writes each record's revents in place and the call (CQE r0
 * for ring callers) carries the count of ready descriptors. When nothing
 * is ready the SQE parks against every polled object's readiness watcher
 * and the CQE is deferred until one fires — one SQE, one wake, however
 * many descriptors. nfds < 1 or > kPollMaxFds is EINVAL from the
 * handler; a record array outside the heap is -EFAULT at ring drain time
 * (sqeHeapArgsValid) or from the handler for sync callers.
 */
struct PollFd
{
    int32_t fd = 0;
    int16_t events = 0;
    int16_t revents = 0;
};

constexpr size_t POLLFD_BYTES = 8;
constexpr int32_t kPollMaxFds = 64;

/// poll event bits (Linux values).
constexpr int16_t POLLIN_ = 0x001;
constexpr int16_t POLLOUT_ = 0x004;
constexpr int16_t POLLERR_ = 0x008;
constexpr int16_t POLLHUP_ = 0x010;
constexpr int16_t POLLNVAL_ = 0x020;

/**
 * Stateful readiness (shared-heap conventions only). Unlike poll, the
 * interest set lives kernel-side: `epoll_create()` allocates an epoll
 * object as a descriptor, `epoll_ctl(epfd, op, fd, events)` edits its
 * registered interest list (all-integer arguments — no heap pointers),
 * and `epoll_wait(epfd, events_ptr, maxevents)` writes up to `maxevents`
 * packed 8-byte EpollEvent records {int32 events, int32 fd} into the
 * personality heap and completes (CQE r0 for ring callers) with the
 * ready count. Readiness is level-triggered: when nothing in the
 * interest list is ready, the SQE parks against each object's one-shot
 * readiness watcher (re-armed on spurious wakes) and the CQE is
 * deferred. Event bits reuse the POLL*_ values above. maxevents < 1 or
 * > kEpollMaxEvents is EINVAL from the handler; a record window outside
 * the heap is -EFAULT at ring drain time (sqeHeapArgsValid) or from the
 * handler for sync callers.
 */
struct EpollEvent
{
    int32_t events = 0;
    int32_t fd = 0;
};

constexpr size_t EPOLL_EVENT_BYTES = 8;
constexpr int32_t kEpollMaxEvents = 64;

/// epoll_ctl op values (Linux).
constexpr int EPOLL_CTL_ADD_ = 1;
constexpr int EPOLL_CTL_DEL_ = 2;
constexpr int EPOLL_CTL_MOD_ = 3;

/// shutdown(2) `how` values (Linux).
constexpr int SHUT_RD_ = 0;
constexpr int SHUT_WR_ = 1;
constexpr int SHUT_RDWR_ = 2;

/** Human-readable syscall name (also the async message "name" field). */
const char *trapName(int trap);

/** Inverse of trapName; -1 when unknown. */
int trapFromName(const std::string &name);

// These are Browsix's own signal/dirent constants; shed any libc macros
// that leak in transitively (this library never uses host signals).
#ifdef SIGHUP
#undef SIGHUP
#undef SIGINT
#undef SIGQUIT
#undef SIGKILL
#undef SIGUSR1
#undef SIGUSR2
#undef SIGPIPE
#undef SIGTERM
#undef SIGCHLD
#undef SIGCONT
#undef SIGSTOP
#undef SIGWINCH
#endif
#ifdef WNOHANG
#undef WNOHANG
#endif
#ifdef DT_DIR
#undef DT_DIR
#undef DT_REG
#undef DT_LNK
#endif

/// Signal numbers (Linux).
enum Signal : int {
    SIGHUP = 1, SIGINT = 2, SIGQUIT = 3, SIGKILL = 9, SIGUSR1 = 10,
    SIGUSR2 = 12, SIGPIPE = 13, SIGTERM = 15, SIGCHLD = 17, SIGCONT = 18,
    SIGSTOP = 19, SIGWINCH = 28,
};

const char *signalName(int sig);

/// sigaction "action" argument values.
enum class SigDisposition : int { Default = 0, Handler = 1, Ignore = 2 };

/// wait4 options.
constexpr int WNOHANG = 1;

/// Wait-status encoding helpers (POSIX style).
inline int statusFromExitCode(int code) { return (code & 0xff) << 8; }
inline int statusFromSignal(int sig) { return sig & 0x7f; }
inline bool wifExited(int status) { return (status & 0x7f) == 0; }
inline int wexitstatus(int status) { return (status >> 8) & 0xff; }
inline int wtermsig(int status) { return status & 0x7f; }

/// File type bits in packed stat mode (Linux values).
constexpr uint32_t S_IFREG_ = 0100000;
constexpr uint32_t S_IFDIR_ = 0040000;
constexpr uint32_t S_IFLNK_ = 0120000;

/// Packed stat layout used by synchronous calls (fixed 48 bytes).
constexpr size_t STAT_BYTES = 48;

/** The decoded form runtimes hand to programs. */
struct StatX
{
    uint64_t ino = 0;
    uint32_t mode = 0; ///< permission bits | S_IF* type bits
    uint32_t nlink = 1;
    uint64_t size = 0;
    int64_t atimeUs = 0;
    int64_t mtimeUs = 0;
    int64_t ctimeUs = 0;

    bool isDir() const { return (mode & 0170000) == S_IFDIR_; }
    bool isFile() const { return (mode & 0170000) == S_IFREG_; }
    bool isSymlink() const { return (mode & 0170000) == S_IFLNK_; }
};

StatX statXFromBfs(const bfs::Stat &st);

/** Serialize into the 48-byte packed layout (sync convention). */
void packStat(const StatX &st, uint8_t *dst);
StatX unpackStat(const uint8_t *src);

/** Async convention: stat as a structured-clone object. */
jsvm::Value statToValue(const StatX &st);
StatX statFromValue(const jsvm::Value &v);

/// Dirent types (Linux d_type).
constexpr uint8_t DT_DIR = 4;
constexpr uint8_t DT_REG = 8;
constexpr uint8_t DT_LNK = 10;

struct Dirent
{
    uint64_t ino = 0;
    uint8_t type = DT_REG;
    std::string name;
};

/** Bytes one packed getdents64 record occupies (4-aligned). */
size_t direntRecLen(const Dirent &e);

/** Encode one record at dst — exactly direntRecLen(e) bytes, which the
 * caller has already checked fit. Returns the record length. */
size_t encodeDirentAt(const Dirent &e, uint8_t *dst);

/** Pack dirents in getdents64 record format. */
std::vector<uint8_t> encodeDirents(const std::vector<Dirent> &entries);

/** Decode as many whole records as present. */
std::vector<Dirent> decodeDirents(const uint8_t *data, size_t len);

uint8_t direntTypeFromBfs(bfs::FileType t);

} // namespace sys
} // namespace browsix
