/**
 * @file
 * Execution-tier data structures for the Emterpreter VM: the fused
 * instruction stream (superinstructions + threaded dispatch) and the
 * register-allocated hot-loop traces.
 *
 * Everything here speaks TWO coordinate systems and the invariant that
 * connects them is the whole design:
 *
 *   - ORIGINAL coordinates: `Function::code` indices. Frames, snapshots,
 *     fork payloads, CALL return addresses, and Trapped diagnostics use
 *     these, always (vm.h §4.3 — a snapshot must restore byte-exact on
 *     any tier, including the base interpreter).
 *   - FUSED coordinates: indices into `TransFn::code`, the translated
 *     stream the fast tiers execute.
 *
 * `TransFn::fusedOfOrig` maps original→fused (-1 for pcs swallowed into
 * the interior of a superinstruction) and every `FInstr` carries its
 * first original pc, so the mapping is total in both directions. A pc
 * can only be a *resume point* (snapshot/fork/CALL-return) if it is a
 * leader — pc 0, a jump target, or the instruction after a CALL or
 * SYSCALL — and the translator never fuses across a leader, which is
 * why mid-superinstruction resume points cannot arise from well-formed
 * snapshots. Hostile snapshots pointing into an interior pc are still
 * honored: the VM falls back to base-stepping until the next leader.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/emvm/vm.h"

namespace browsix {
namespace emvm {

/**
 * Fused opcodes: every base Op 1:1 (same order, so translation of an
 * unfusable instruction is a cast), then the peephole superinstructions
 * the AWFY/typeset profiles discovered as the hot dispatch pairs/triples.
 */
enum class FOp : uint8_t {
    // 1:1 with Op (keep in the same order as emvm::Op!)
    NOP = 0, PUSH, DUP, POP, SWAP, LOADL, STOREL,
    LOAD8, LOAD32, LOAD64, STORE8, STORE32, STORE64,
    ADD, SUB, MUL, DIVS, MODS, AND, OR, XOR, SHL, SHR,
    EQ, NE, LT, LE, GT, GE,
    JMP, JZ, JNZ, CALL, RET, SYSCALL, HALT,
    // superinstructions
    PUSH_ADD,     ///< PUSH imm; ADD            → tos += imm
    INC_LOCAL,    ///< LOADL a; PUSH imm; ADD; STOREL a → locals[a] += imm
    LL_CMP,       ///< LOADL a; LOADL b; <cmp>  → push cmp(la, lb)
    CMP_BR,       ///< <cmp>; JZ/JNZ            → fused compare-branch
    LL_CMP_BR,    ///< LOADL a; LOADL b; <cmp>; JZ/JNZ
    LOADL_LOAD8,  ///< LOADL a; LOAD8           → push mem8[la]
    LOADL_LOAD32, ///< LOADL a; LOAD32          → push mem32[la]
    LL_STORE8,    ///< LOADL a; LOADL b; STORE8 → mem8[la] = lb
    LL_STORE32,   ///< LOADL a; LOADL b; STORE32
    LP_STORE8,    ///< LOADL a; PUSH imm; STORE8 → mem8[la] = imm
    LP_STORE32,   ///< LOADL a; PUSH imm; STORE32
    LP_CMP_BR,    ///< LOADL a; PUSH imm2; <cmp>; JZ/JNZ
    LL_BIN_SL,    ///< LOADL a; LOADL b; <bin>; STOREL c → lc = la op lb
    LP_BIN_SL,    ///< LOADL a; PUSH imm2; <bin>; STOREL c → lc = la op imm2
    BADOP,        ///< original opcode outside the ISA; faults like base
    COUNT,
};

/** One fused instruction; a span of 1..4 contiguous original ops. */
struct FInstr
{
    FOp op = FOp::NOP;
    uint8_t nOrig = 1;      ///< original instructions this span retires
    Op cmp = Op::NOP;       ///< comparison/binop for the *_CMP_*/*_BIN_* forms
    bool brIfTrue = false;  ///< fused branch sense: true = JNZ, false = JZ
    int32_t a = 0;          ///< local slot (validated at translate time)
    int32_t b = 0;          ///< second local slot
    int32_t c = 0;          ///< destination local slot (*_BIN_SL forms)
    int64_t imm = 0;        ///< immediate, or fused branch target index
    int64_t imm2 = 0;       ///< PUSH constant in the LP_* 4-op fusions
    uint32_t origPc = 0;    ///< first original pc of the span
    uint32_t brOrig = 0;    ///< branches: original target (uint32-truncated
                            ///< like the base tier), for fr.pc at faults
    int32_t hot = -1;       ///< backedge counter index, -1 if not a backedge
};

// ---------------------------------------------------------------------------
// Hot-loop traces: a loop region re-translated with the operand stack
// resolved to virtual registers, executed without per-op pushes/pops.
// ---------------------------------------------------------------------------

enum class TOpc : uint8_t {
    MOVI,    ///< r[a] = imm
    LDL,     ///< r[a] = locals[b]
    STL,     ///< locals[b] = r[a]
    INCL,    ///< locals[a] += imm
    ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, ///< r[a] = r[b] op r[c]
    DIVS, MODS,                            ///< fault on r[c] == 0
    EQ, NE, LT, LE, GT, GE,                ///< r[a] = cmp(r[b], r[c])
    ADDI,    ///< r[a] = r[b] + imm
    LD8, LD32, LD64,   ///< r[a] = mem[r[b]]   (bounds-checked fault)
    ST8, ST32, ST64,   ///< mem[r[a]] = r[b]   (bounds-checked fault)
    JMP,     ///< unconditional intra-trace branch to `dest`
    BRZ,     ///< if r[a] == 0 branch to `dest`
    BRNZ,    ///< if r[a] != 0 branch to `dest`
    EXIT,    ///< deopt: materialize stack map, fr.pc = exitPc, leave trace
    NOPC,    ///< retire-count carrier (folded no-ops at a join boundary)
    // Peephole-fused forms (peepholeTrace): single-use LDL/MOVI feeders
    // folded into their consumer. `a` or `c`/`imm` carries the base TOpc
    // kind; cmp-branches are normalized to branch-if-true.
    CMPBRLL, ///< if cmp[a](locals[b], locals[c]) branch to dest
    CMPBRLI, ///< if cmp[a](locals[b], imm) branch to dest
    CMPBRRI, ///< if cmp[a](r[b], imm) branch to dest
    BINL,    ///< locals[a] = bin[imm](locals[b], locals[c])
    BINLI,   ///< locals[a] = bin[c](locals[b], imm)
    BINRLL,  ///< r[a] = bin[imm](locals[b], locals[c])
    BINRLI,  ///< r[a] = bin[c](locals[b], imm)
    LD8L, LD32L, LD64L,    ///< r[a] = mem[locals[b]]  (bounds-checked)
    ST8LL, ST32LL, ST64LL, ///< mem[locals[a]] = locals[b]
    ST8LI, ST32LI, ST64LI, ///< mem[locals[a]] = imm
    COUNT,
};

/** Branch destinations: a trace-op index, or one of these sentinels. */
constexpr int32_t kTraceDestTop = -2;  ///< loop backedge: continue at op 0
constexpr int32_t kTraceDestExit = -1; ///< side exit: deopt to exitPc

struct TOp
{
    TOpc op = TOpc::NOPC;
    uint8_t nOrig = 0;   ///< original instructions retired by this op
    int32_t a = 0, b = 0, c = 0;
    int64_t imm = 0;
    uint32_t exitPc = 0; ///< original pc for EXIT / fault reconstruction
    int32_t dest = 0;    ///< branch target (op index or kTraceDest*)
    int32_t map = -1;    ///< index into Trace::maps, -1 if none
};

struct Trace
{
    std::vector<TOp> ops;
    uint32_t nregs = 0;
    uint32_t headerPc = 0; ///< original pc of the loop header
    /**
     * Deopt stack maps: the virtual registers that make up the operand
     * stack (bottom→top) at a side exit, or the registers *remaining*
     * after a faulting op's pops — exactly the operand stack the base
     * interpreter would leave, so a deopt or trap is indistinguishable
     * from never having entered the trace.
     */
    std::vector<std::vector<int32_t>> maps;
};

/** Per-backedge profile counter (shared by all branches to one header). */
struct Backedge
{
    uint32_t headerPc = 0;
    uint32_t count = 0;
};

/** A trace slot: `built` distinguishes "not yet tried" from untraceable. */
struct TraceSlot
{
    uint32_t headerPc = 0;
    bool built = false;
    std::unique_ptr<Trace> trace; ///< null after build = untraceable loop
};

/** Translation of one function, owned by the Vm (profile state is per-Vm). */
struct TransFn
{
    std::vector<FInstr> code;
    /**
     * Original pc → fused index; size code.size()+1. -1 marks interior
     * pcs (swallowed by a superinstruction); entry [n] maps to the fused
     * end so a jump past the end faults exactly like the base tier.
     */
    std::vector<int32_t> fusedOfOrig;
    std::vector<Backedge> backedges;
    std::vector<TraceSlot> traces;

    TraceSlot *findSlot(uint32_t headerPc)
    {
        for (auto &s : traces) {
            if (s.headerPc == headerPc)
                return &s;
        }
        return nullptr;
    }
};

/**
 * Translate one function into its fused stream. Pure peephole pass: no
 * profile input; superinstructions never span a leader pc (jump target,
 * post-CALL, post-SYSCALL) so every resume point stays addressable.
 */
std::unique_ptr<TransFn> translateFunction(const Function &fn);

/**
 * Build a register trace for the loop [headerPc, backedgePc]. Returns
 * null when the region is untraceable (contains CALL/SYSCALL/RET/HALT on
 * translation's path requirements, statically-faulting locals, operand
 * stack not empty at a join, or pops that would reach below the entry
 * stack). SYSCALL and CALL inside the region become unconditional
 * side exits *before* the instruction, so the suspend/fork contract
 * (full machine state at every syscall) is untouched by tracing.
 */
std::unique_ptr<Trace> buildTrace(const Function &fn, uint32_t headerPc,
                                  uint32_t backedgePc);

} // namespace emvm
} // namespace browsix
