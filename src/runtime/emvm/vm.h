/**
 * @file
 * The Emterpreter VM: a stack-machine bytecode interpreter standing in for
 * Emscripten's interpreted mode (§3.2, §4.3).
 *
 * Two properties matter to Browsix and both are real here:
 *  1. Interpretation is genuinely slower than native execution — this is
 *     where the paper's async-vs-sync LaTeX gap comes from.
 *  2. The complete machine state (memory, operand stack, call stack, PC)
 *     can be serialized and restored, which is what makes asynchronous
 *     system calls (suspend mid-call) and fork (ship memory+PC to a new
 *     worker) possible for C programs.
 *
 * Executables are images ("BSXBC1" magic) produced by the assembler; a
 * SYSCALL instruction returns control to the hosting runtime, which
 * performs the call under whichever convention it uses and resumes the VM
 * with the result.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jsvm/sab.h"

namespace browsix {
namespace emvm {

struct TransFn; // tier.h: per-function fused stream + trace cache
struct Trace;

enum class Op : uint8_t {
    NOP = 0,
    PUSH,   ///< push imm
    DUP,
    POP,
    SWAP,
    LOADL,  ///< push locals[imm]
    STOREL, ///< locals[imm] = pop
    LOAD8,  ///< pop addr; push mem[addr] (zero-extended)
    LOAD32,
    LOAD64,
    STORE8, ///< pop value, pop addr; mem[addr] = value
    STORE32,
    STORE64,
    ADD, SUB, MUL, DIVS, MODS,
    AND, OR, XOR, SHL, SHR,
    EQ, NE, LT, LE, GT, GE,
    JMP,    ///< pc = imm
    JZ,     ///< pop; if zero pc = imm
    JNZ,
    CALL,   ///< call function imm (args popped into callee locals)
    RET,    ///< pop return value, return to caller
    SYSCALL,///< imm = nargs; stack: trap, a1..aN -> host; result pushed
    HALT,   ///< pop exit code; execution complete
};

struct Instr
{
    Op op = Op::NOP;
    int64_t imm = 0;
};

struct Function
{
    std::string name;
    uint32_t nargs = 0;
    uint32_t nlocals = 0; ///< total locals including args
    std::vector<Instr> code;
};

struct Image
{
    std::vector<Function> functions;
    uint32_t memSize = 4096;
    std::vector<uint8_t> initData; ///< copied to memory offset 0

    int functionIndex(const std::string &name) const;

    std::vector<uint8_t> serialize() const;
    static bool deserialize(const std::vector<uint8_t> &bytes, Image &out);
    static bool isImage(const uint8_t *data, size_t len);

    /**
     * Static well-formedness check: every JMP/JZ/JNZ lands inside its own
     * function, every CALL names an existing function, every SYSCALL arity
     * is sane, and every opcode is in the ISA. Hostile images fail here at
     * load time instead of faulting mid-run (mirrors the ring's
     * hostile-SQE validation). `err` (optional) receives a diagnostic.
     */
    bool validate(std::string *err = nullptr) const;
};

/** Execution tier selection for a Vm (see docs/ARCHITECTURE.md). */
enum class Tier : uint8_t {
    Base,  ///< the original switch interpreter, one Instr per dispatch
    Fused, ///< superinstruction stream, threaded dispatch
    Trace, ///< Fused + hot loops promoted to register traces
};

const char *tierName(Tier t);

/** Execution-tier counters (bench/awfy.cc exposes these in JSON). */
struct VmStats
{
    uint64_t fusedDispatches = 0;     ///< fused-stream dispatches
    uint64_t superinstructionsHit = 0;///< dispatches that fused >1 orig op
    uint64_t tracesTranslated = 0;    ///< hot loops promoted to trace form
    uint64_t tracesEntered = 0;       ///< trace executions begun
    uint64_t traceDeopts = 0;         ///< side exits back to the fused tier
};

/** Why Vm::run returned. */
enum class RunState {
    Done,      ///< HALT executed; exitCode valid
    Syscall,   ///< SYSCALL executed; pendingTrap/pendingArgs valid
    Trapped,   ///< machine fault (bad opcode, OOB memory, stack underflow)
};

class Vm
{
  public:
    explicit Vm(Image image, Tier tier = Tier::Trace);
    ~Vm();
    Vm(const Vm &) = delete;
    Vm &operator=(const Vm &) = delete;
    Vm(Vm &&) = default;
    Vm &operator=(Vm &&) = default;

    /** Prepare to run function `name` with the given arguments. */
    bool start(const std::string &name, const std::vector<int64_t> &args);

    /**
     * Interpret until HALT, SYSCALL, or a fault. Checks the interrupt
     * token every few thousand instructions and throws WorkerTerminated.
     */
    RunState run(jsvm::InterruptToken *token = nullptr);

    /** Resume after a Syscall return with the syscall's result. */
    void resume(int64_t syscall_result);

    int64_t exitCode() const { return exitCode_; }
    int pendingTrap() const { return pendingTrap_; }
    const std::vector<int64_t> &pendingArgs() const { return pendingArgs_; }
    const std::string &trapMessage() const { return trapMsg_; }

    /**
     * Count of ORIGINAL bytecode instructions retired, regardless of
     * tier: a fused superinstruction retires its whole span, a trace op
     * retires the original instructions it subsumes. Identical work
     * yields identical counts on every tier (PR 5's truthful-counters
     * rule), so cost models and tests can rely on it.
     */
    uint64_t instructionsRetired() const { return retired_; }

    Tier tier() const { return tier_; }
    const VmStats &stats() const { return stats_; }

    /**
     * Backedge executions before a loop is promoted to a trace
     * (Tier::Trace only). Tests lower it to force early promotion.
     */
    void setTraceThreshold(uint32_t t) { traceThreshold_ = t; }

    std::vector<uint8_t> &memory() { return mem_; }
    const Image &image() const { return image_; }

    /** Read a NUL-terminated string out of VM memory. */
    std::string memStr(uint64_t addr) const;
    /** Copy bytes into VM memory (bounds-checked). */
    bool memWrite(uint64_t addr, const uint8_t *data, size_t len);
    bool memRead(uint64_t addr, uint8_t *out, size_t len) const;

    /**
     * Serialize the full machine state (memory + stacks + PC), the fork
     * payload of §4.3. A VM restored from a snapshot is indistinguishable
     * from the original — resume() then differs only in the value pushed
     * (child 0, parent the child's pid).
     */
    std::vector<uint8_t> snapshot() const;
    static bool restore(const Image &image,
                        const std::vector<uint8_t> &snap, Vm &out);

  private:
    struct Frame
    {
        uint32_t fn = 0;
        uint32_t pc = 0;
        std::vector<int64_t> locals;
    };

    RunState fault(const std::string &msg);

    /** Lazily translate function `fnIdx` into its fused stream. */
    TransFn &transFor(uint32_t fnIdx);

    /**
     * The original switch interpreter. With `stopAtLeader` it steps until
     * the current frame's pc is a fused-stream leader (used to honor
     * snapshots whose pc points into a superinstruction interior), setting
     * `*reachedLeader`; otherwise it runs to Done/Syscall/Trapped.
     */
    RunState runBase(jsvm::InterruptToken *token, bool stopAtLeader,
                     bool *reachedLeader, int &check);

    /** The fused-stream executor (threaded dispatch, Fused/Trace tiers). */
    RunState runFused(jsvm::InterruptToken *token);

    /**
     * Execute a register trace until a side exit. Returns false when the
     * trace faulted (trapMsg_/fault() already applied); true on a normal
     * deopt with fr.pc updated to original coordinates.
     */
    bool execTrace(const Trace &tr, jsvm::InterruptToken *token,
                   int &check);

    Image image_;
    std::vector<uint8_t> mem_;
    std::vector<int64_t> stack_;
    std::vector<Frame> frames_;
    bool running_ = false;
    bool awaitingSyscall_ = false;
    int64_t exitCode_ = 0;
    int pendingTrap_ = 0;
    std::vector<int64_t> pendingArgs_;
    std::string trapMsg_;
    uint64_t retired_ = 0;

    Tier tier_ = Tier::Trace;
    uint32_t traceThreshold_ = 64;
    VmStats stats_;
    /** Per-function fused translations + trace caches, built lazily. */
    std::vector<std::unique_ptr<TransFn>> tfns_;
    std::vector<int64_t> traceRegs_; ///< scratch register file
    /**
     * Retired locals vectors recycled by the fused tier's CALL/RET, so
     * call-heavy guests (richards, permute) don't pay a heap round-trip
     * per call. Capacity-only cache: contents are dead, CALL re-assigns.
     */
    std::vector<std::vector<int64_t>> localsPool_;
};

} // namespace emvm
} // namespace browsix
