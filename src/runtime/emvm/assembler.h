/**
 * @file
 * Assembler for the Emterpreter VM: the "compiler" producing BSXBC images.
 *
 * Syntax (one instruction per line; ';' starts a comment):
 *   .memory 4096                 ; VM memory size in bytes
 *   .data 256 "hello\n"          ; initialize memory at offset
 *   .data 300 1 2 3              ; raw bytes
 *   .func main 0 3               ; name, nargs, nlocals
 *   loop:                        ; label
 *       push 10
 *       storel 0
 *       loadl 0
 *       jnz loop
 *       push 0
 *       halt
 *   .end
 *
 * `call` takes a function name; jumps take labels. The image's entry point
 * is the function named "main" by convention.
 */
#pragma once

#include <string>

#include "runtime/emvm/vm.h"

namespace browsix {
namespace emvm {

/** Assemble source into an image. Returns false and sets err on failure. */
bool assemble(const std::string &source, Image &out, std::string &err);

} // namespace emvm
} // namespace browsix
