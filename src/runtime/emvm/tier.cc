/**
 * @file
 * Translators for the emvm fast tiers: the peephole superinstruction
 * fuser (fused tier) and the register-trace builder (trace tier). Both
 * are pure functions of `Function::code` — profile state (backedge
 * counters, built traces) lives in the per-Vm `TransFn`, never in the
 * shared Image, so forked children profile independently.
 */
#include "runtime/emvm/tier.h"

#include <algorithm>

namespace browsix {
namespace emvm {

namespace {

bool
isCmp(Op op)
{
    return op == Op::EQ || op == Op::NE || op == Op::LT || op == Op::LE ||
           op == Op::GT || op == Op::GE;
}

bool
isCondBr(Op op)
{
    return op == Op::JZ || op == Op::JNZ;
}

bool
isBranch(Op op)
{
    return op == Op::JMP || op == Op::JZ || op == Op::JNZ;
}

/**
 * Binops legal inside a *_BIN_SL fusion: total functions of their two
 * operands (DIVS/MODS stay unfused so their fault path keeps the base
 * tier's pc/stack reconstruction for free).
 */
bool
isPureBin(Op op)
{
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::MUL:
      case Op::AND: case Op::OR: case Op::XOR:
      case Op::SHL: case Op::SHR:
        return true;
      default:
        return isCmp(op);
    }
}

/** Is `imm` a statically valid local slot for this function? */
bool
validLocal(const Function &fn, int64_t imm)
{
    uint32_t nl = std::max(fn.nlocals, fn.nargs);
    return imm >= 0 && static_cast<uint64_t>(imm) < nl;
}

/**
 * Compute leader pcs: resume points the fused stream must keep
 * addressable. Fusion never spans one, so snapshot/restore and branch
 * targets always land on a fused-instruction boundary.
 */
std::vector<bool>
computeLeaders(const Function &fn)
{
    size_t n = fn.code.size();
    std::vector<bool> leader(n + 1, false);
    leader[0] = true;
    for (size_t i = 0; i < n; i++) {
        const Instr &ins = fn.code[i];
        if (isBranch(ins.op)) {
            // The base tier truncates targets to uint32 before comparing
            // against code.size(); mirror that exactly.
            uint32_t t = static_cast<uint32_t>(ins.imm);
            if (t <= n)
                leader[t] = true;
        }
        if (ins.op == Op::CALL || ins.op == Op::SYSCALL) {
            // The pc after a CALL is a return address; after a SYSCALL it
            // is where resume() continues — both appear in snapshots.
            if (i + 1 <= n)
                leader[i + 1] = true;
        }
    }
    return leader;
}

/** True if pcs (i, i+len) exclusive..exclusive-end are all non-leaders. */
bool
spanFree(const std::vector<bool> &leader, size_t i, size_t len)
{
    for (size_t k = i + 1; k < i + len; k++) {
        if (leader[k])
            return false;
    }
    return true;
}

} // namespace

std::unique_ptr<TransFn>
translateFunction(const Function &fn)
{
    auto tf = std::make_unique<TransFn>();
    const size_t n = fn.code.size();
    const std::vector<bool> leader = computeLeaders(fn);
    tf->fusedOfOrig.assign(n + 1, -1);

    // Pass 1: greedy longest-match fusion. Patterns are tried from the
    // most profitable (longest) down; a span is only legal when no
    // interior pc is a leader.
    size_t i = 0;
    while (i < n) {
        tf->fusedOfOrig[i] = static_cast<int32_t>(tf->code.size());
        const Instr &c0 = fn.code[i];
        FInstr f;
        f.origPc = static_cast<uint32_t>(i);

        auto at = [&](size_t k) -> const Instr & { return fn.code[k]; };
        auto have = [&](size_t len) {
            return i + len <= n && spanFree(leader, i, len);
        };

        // INC_LOCAL: LOADL a; PUSH imm; ADD; STOREL a (same, valid slot)
        if (have(4) && c0.op == Op::LOADL && at(i + 1).op == Op::PUSH &&
            at(i + 2).op == Op::ADD && at(i + 3).op == Op::STOREL &&
            at(i + 3).imm == c0.imm && validLocal(fn, c0.imm)) {
            f.op = FOp::INC_LOCAL;
            f.nOrig = 4;
            f.a = static_cast<int32_t>(c0.imm);
            f.imm = at(i + 1).imm;
            tf->code.push_back(f);
            i += 4;
            continue;
        }
        // LL_CMP_BR: LOADL a; LOADL b; <cmp>; JZ/JNZ
        if (have(4) && c0.op == Op::LOADL && at(i + 1).op == Op::LOADL &&
            isCmp(at(i + 2).op) && isCondBr(at(i + 3).op) &&
            validLocal(fn, c0.imm) && validLocal(fn, at(i + 1).imm)) {
            f.op = FOp::LL_CMP_BR;
            f.nOrig = 4;
            f.a = static_cast<int32_t>(c0.imm);
            f.b = static_cast<int32_t>(at(i + 1).imm);
            f.cmp = at(i + 2).op;
            f.brIfTrue = at(i + 3).op == Op::JNZ;
            f.imm = at(i + 3).imm; // patched to fused index in pass 2
            tf->code.push_back(f);
            i += 4;
            continue;
        }
        // LP_CMP_BR: LOADL a; PUSH imm; <cmp>; JZ/JNZ
        if (have(4) && c0.op == Op::LOADL && at(i + 1).op == Op::PUSH &&
            isCmp(at(i + 2).op) && isCondBr(at(i + 3).op) &&
            validLocal(fn, c0.imm)) {
            f.op = FOp::LP_CMP_BR;
            f.nOrig = 4;
            f.a = static_cast<int32_t>(c0.imm);
            f.imm2 = at(i + 1).imm;
            f.cmp = at(i + 2).op;
            f.brIfTrue = at(i + 3).op == Op::JNZ;
            f.imm = at(i + 3).imm; // patched to fused index in pass 2
            tf->code.push_back(f);
            i += 4;
            continue;
        }
        // LL_BIN_SL: LOADL a; LOADL b; <bin>; STOREL c
        if (have(4) && c0.op == Op::LOADL && at(i + 1).op == Op::LOADL &&
            isPureBin(at(i + 2).op) && at(i + 3).op == Op::STOREL &&
            validLocal(fn, c0.imm) && validLocal(fn, at(i + 1).imm) &&
            validLocal(fn, at(i + 3).imm)) {
            f.op = FOp::LL_BIN_SL;
            f.nOrig = 4;
            f.a = static_cast<int32_t>(c0.imm);
            f.b = static_cast<int32_t>(at(i + 1).imm);
            f.c = static_cast<int32_t>(at(i + 3).imm);
            f.cmp = at(i + 2).op;
            tf->code.push_back(f);
            i += 4;
            continue;
        }
        // LP_BIN_SL: LOADL a; PUSH imm; <bin>; STOREL c (the INC_LOCAL
        // test above already captured the a==c ADD form)
        if (have(4) && c0.op == Op::LOADL && at(i + 1).op == Op::PUSH &&
            isPureBin(at(i + 2).op) && at(i + 3).op == Op::STOREL &&
            validLocal(fn, c0.imm) && validLocal(fn, at(i + 3).imm)) {
            f.op = FOp::LP_BIN_SL;
            f.nOrig = 4;
            f.a = static_cast<int32_t>(c0.imm);
            f.imm2 = at(i + 1).imm;
            f.c = static_cast<int32_t>(at(i + 3).imm);
            f.cmp = at(i + 2).op;
            tf->code.push_back(f);
            i += 4;
            continue;
        }
        // LL_STORE8/32: LOADL addr; LOADL val; STORE8/32
        if (have(3) && c0.op == Op::LOADL && at(i + 1).op == Op::LOADL &&
            (at(i + 2).op == Op::STORE8 || at(i + 2).op == Op::STORE32) &&
            validLocal(fn, c0.imm) && validLocal(fn, at(i + 1).imm)) {
            f.op = at(i + 2).op == Op::STORE8 ? FOp::LL_STORE8
                                              : FOp::LL_STORE32;
            f.nOrig = 3;
            f.a = static_cast<int32_t>(c0.imm);
            f.b = static_cast<int32_t>(at(i + 1).imm);
            tf->code.push_back(f);
            i += 3;
            continue;
        }
        // LP_STORE8/32: LOADL addr; PUSH imm; STORE8/32
        if (have(3) && c0.op == Op::LOADL && at(i + 1).op == Op::PUSH &&
            (at(i + 2).op == Op::STORE8 || at(i + 2).op == Op::STORE32) &&
            validLocal(fn, c0.imm)) {
            f.op = at(i + 2).op == Op::STORE8 ? FOp::LP_STORE8
                                              : FOp::LP_STORE32;
            f.nOrig = 3;
            f.a = static_cast<int32_t>(c0.imm);
            f.imm = at(i + 1).imm;
            tf->code.push_back(f);
            i += 3;
            continue;
        }
        // LL_CMP: LOADL a; LOADL b; <cmp>
        if (have(3) && c0.op == Op::LOADL && at(i + 1).op == Op::LOADL &&
            isCmp(at(i + 2).op) && validLocal(fn, c0.imm) &&
            validLocal(fn, at(i + 1).imm)) {
            f.op = FOp::LL_CMP;
            f.nOrig = 3;
            f.a = static_cast<int32_t>(c0.imm);
            f.b = static_cast<int32_t>(at(i + 1).imm);
            f.cmp = at(i + 2).op;
            tf->code.push_back(f);
            i += 3;
            continue;
        }
        // CMP_BR: <cmp>; JZ/JNZ
        if (have(2) && isCmp(c0.op) && isCondBr(at(i + 1).op)) {
            f.op = FOp::CMP_BR;
            f.nOrig = 2;
            f.cmp = c0.op;
            f.brIfTrue = at(i + 1).op == Op::JNZ;
            f.imm = at(i + 1).imm;
            tf->code.push_back(f);
            i += 2;
            continue;
        }
        // PUSH_ADD: PUSH imm; ADD
        if (have(2) && c0.op == Op::PUSH && at(i + 1).op == Op::ADD) {
            f.op = FOp::PUSH_ADD;
            f.nOrig = 2;
            f.imm = c0.imm;
            tf->code.push_back(f);
            i += 2;
            continue;
        }
        // LOADL_LOAD8/32: LOADL a; LOAD8/32
        if (have(2) && c0.op == Op::LOADL &&
            (at(i + 1).op == Op::LOAD8 || at(i + 1).op == Op::LOAD32) &&
            validLocal(fn, c0.imm)) {
            f.op = at(i + 1).op == Op::LOAD8 ? FOp::LOADL_LOAD8
                                             : FOp::LOADL_LOAD32;
            f.nOrig = 2;
            f.a = static_cast<int32_t>(c0.imm);
            tf->code.push_back(f);
            i += 2;
            continue;
        }

        // 1:1 translation (FOp mirrors Op ordering).
        uint8_t raw = static_cast<uint8_t>(c0.op);
        f.op = raw <= static_cast<uint8_t>(Op::HALT)
                   ? static_cast<FOp>(raw)
                   : FOp::BADOP;
        f.nOrig = 1;
        f.imm = c0.imm;
        tf->code.push_back(f);
        i += 1;
    }
    tf->fusedOfOrig[n] = static_cast<int32_t>(tf->code.size());

    // Pass 2: patch branches to fused coordinates and attach backedge
    // counters. The original target is kept (uint32-truncated, matching
    // the base tier's cast) in brOrig so faults report base-identical
    // pcs; an out-of-range target maps to the fused end, which faults at
    // dispatch exactly like the base tier.
    auto fusedTarget = [&](uint32_t orig) -> int64_t {
        if (orig > n)
            return static_cast<int64_t>(tf->code.size());
        int32_t t = tf->fusedOfOrig[orig];
        // A branch into a superinstruction interior can only happen for
        // targets the fuser proved non-leader — impossible by
        // construction, but be defensive: route to fused end (faults).
        return t >= 0 ? t : static_cast<int64_t>(tf->code.size());
    };
    auto hotIndex = [&](uint32_t headerPc) -> int32_t {
        for (size_t k = 0; k < tf->backedges.size(); k++) {
            if (tf->backedges[k].headerPc == headerPc)
                return static_cast<int32_t>(k);
        }
        tf->backedges.push_back(Backedge{headerPc, 0});
        return static_cast<int32_t>(tf->backedges.size() - 1);
    };
    for (auto &fi : tf->code) {
        switch (fi.op) {
          case FOp::JMP:
          case FOp::JZ:
          case FOp::JNZ:
          case FOp::CMP_BR:
          case FOp::LL_CMP_BR:
          case FOp::LP_CMP_BR:
            break;
          default:
            continue;
        }
        uint32_t target = static_cast<uint32_t>(fi.imm);
        // A backedge targets the start of its own span or earlier.
        if (target <= n && target <= fi.origPc)
            fi.hot = hotIndex(target);
        fi.brOrig = target;
        fi.imm = fusedTarget(target);
    }
    return tf;
}

// ---------------------------------------------------------------------------
// Trace builder
// ---------------------------------------------------------------------------

namespace {

/** Builder state for one loop region translation. */
struct TraceBuilder
{
    const Function &fn;
    uint32_t headerPc;
    uint32_t backedgePc;
    Trace trace;
    std::vector<int32_t> vstack; ///< SSA register ids, bottom→top
    uint32_t nextReg = 0;
    uint8_t pending = 0; ///< retire count awaiting the next emitted op
    bool ok = true;

    explicit TraceBuilder(const Function &f, uint32_t h, uint32_t b)
        : fn(f), headerPc(h), backedgePc(b)
    {
    }

    int32_t newReg() { return static_cast<int32_t>(nextReg++); }

    int32_t addMap()
    {
        trace.maps.push_back(vstack);
        return static_cast<int32_t>(trace.maps.size() - 1);
    }

    TOp &emit(TOpc op)
    {
        trace.ops.push_back(TOp{});
        TOp &t = trace.ops.back();
        t.op = op;
        t.nOrig = pending;
        pending = 0;
        return t;
    }

    bool pop(int32_t &r)
    {
        // Popping below the loop-entry stack would need values the trace
        // doesn't model; bail and leave the loop untraceable.
        if (vstack.empty()) {
            ok = false;
            return false;
        }
        r = vstack.back();
        vstack.pop_back();
        return true;
    }
};

bool
isTCmp(TOpc c)
{
    return c >= TOpc::EQ && c <= TOpc::GE;
}

/** Total binops legal inside a peephole fusion (no fault path). */
bool
isTPureBin(TOpc c)
{
    return (c >= TOpc::ADD && c <= TOpc::SHR) || isTCmp(c);
}

bool
isTBranch(TOpc c)
{
    switch (c) {
      case TOpc::JMP: case TOpc::BRZ: case TOpc::BRNZ:
      case TOpc::CMPBRLL: case TOpc::CMPBRLI: case TOpc::CMPBRRI:
        return true;
      default:
        return false;
    }
}

/** !cmp(x, y) as a cmp: for normalizing BRZ to branch-if-true. */
TOpc
negTCmp(TOpc c)
{
    switch (c) {
      case TOpc::EQ: return TOpc::NE;
      case TOpc::NE: return TOpc::EQ;
      case TOpc::LT: return TOpc::GE;
      case TOpc::GE: return TOpc::LT;
      case TOpc::LE: return TOpc::GT;
      case TOpc::GT: return TOpc::LE;
      default: return c;
    }
}

/** cmp with swapped operands: cmp(x, y) == mirror(cmp)(y, x). */
TOpc
mirrorTCmp(TOpc c)
{
    switch (c) {
      case TOpc::LT: return TOpc::GT;
      case TOpc::GT: return TOpc::LT;
      case TOpc::LE: return TOpc::GE;
      case TOpc::GE: return TOpc::LE;
      default: return c; // EQ/NE are symmetric
    }
}

TOpc
binTOpc(Op op)
{
    switch (op) {
      case Op::ADD: return TOpc::ADD;
      case Op::SUB: return TOpc::SUB;
      case Op::MUL: return TOpc::MUL;
      case Op::DIVS: return TOpc::DIVS;
      case Op::MODS: return TOpc::MODS;
      case Op::AND: return TOpc::AND;
      case Op::OR: return TOpc::OR;
      case Op::XOR: return TOpc::XOR;
      case Op::SHL: return TOpc::SHL;
      case Op::SHR: return TOpc::SHR;
      case Op::EQ: return TOpc::EQ;
      case Op::NE: return TOpc::NE;
      case Op::LT: return TOpc::LT;
      case Op::LE: return TOpc::LE;
      case Op::GT: return TOpc::GT;
      case Op::GE: return TOpc::GE;
      default: return TOpc::COUNT;
    }
}

/**
 * Post-build peephole over a finished trace: fold single-use LDL/MOVI
 * feeders into their consumer so the hot loop executes one fused op where
 * the builder emitted 2–4. SSA makes this safe to verify locally — a
 * consumed register may not be referenced by any op outside the pattern
 * or by any deopt map, and no branch may target a pattern interior.
 */
void
peepholeTrace(Trace &tr)
{
    auto &ops = tr.ops;

    // Is `reg` read or written by any op outside [lo, hi), or kept alive
    // by any deopt stack map?
    auto regReferenced = [&](int32_t reg, size_t lo, size_t hi) -> bool {
        for (size_t k = 0; k < ops.size(); k++) {
            if (k >= lo && k < hi)
                continue;
            const TOp &o = ops[k];
            switch (o.op) {
              case TOpc::MOVI: case TOpc::LDL: case TOpc::BINRLL:
              case TOpc::BINRLI: case TOpc::LD8L: case TOpc::LD32L:
              case TOpc::LD64L:
                if (o.a == reg)
                    return true;
                break;
              case TOpc::STL: case TOpc::BRZ: case TOpc::BRNZ:
                if (o.a == reg)
                    return true;
                break;
              case TOpc::INCL: case TOpc::CMPBRLL: case TOpc::CMPBRLI:
              case TOpc::BINL: case TOpc::BINLI: case TOpc::ST8LL:
              case TOpc::ST32LL: case TOpc::ST64LL: case TOpc::ST8LI:
              case TOpc::ST32LI: case TOpc::ST64LI: case TOpc::JMP:
              case TOpc::EXIT: case TOpc::NOPC:
                break;
              case TOpc::CMPBRRI: // a is a cmp kind, only b is a register
                if (o.b == reg)
                    return true;
                break;
              case TOpc::ADDI:
              case TOpc::LD8: case TOpc::LD32: case TOpc::LD64:
              case TOpc::ST8: case TOpc::ST32: case TOpc::ST64: // c unused
                if (o.a == reg || o.b == reg)
                    return true;
                break;
              default: // binops, DIVS/MODS: a/b/c are registers
                if (o.a == reg || o.b == reg || o.c == reg)
                    return true;
                break;
            }
        }
        for (const auto &m : tr.maps) {
            for (int32_t r : m) {
                if (r == reg)
                    return true;
            }
        }
        return false;
    };

    auto branchIntoInterior = [&](size_t j, size_t len) -> bool {
        for (const auto &o : ops) {
            if (isTBranch(o.op) && o.dest > static_cast<int32_t>(j) &&
                o.dest < static_cast<int32_t>(j + len))
                return true;
        }
        return false;
    };

    // Replace ops [j, j+len) with `f` (keeping the summed retire count)
    // and re-point branch targets past the erased span.
    auto apply = [&](size_t j, size_t len, TOp f) -> bool {
        unsigned sum = 0;
        for (size_t k = j; k < j + len; k++)
            sum += ops[k].nOrig;
        if (sum > 255)
            return false;
        f.nOrig = static_cast<uint8_t>(sum);
        ops[j] = f;
        ops.erase(ops.begin() + j + 1, ops.begin() + j + len);
        for (auto &o : ops) {
            if (isTBranch(o.op) &&
                o.dest >= static_cast<int32_t>(j + len))
                o.dest -= static_cast<int32_t>(len - 1);
        }
        return true;
    };

    auto tryAt = [&](size_t j) -> bool {
        const size_t n = ops.size();
        const TOp &o0 = ops[j];
        const TOp *o1 = j + 1 < n ? &ops[j + 1] : nullptr;
        const TOp *o2 = j + 2 < n ? &ops[j + 2] : nullptr;
        const TOp *o3 = j + 3 < n ? &ops[j + 3] : nullptr;

        // Resolve a binop's (b, c) operand registers against the two
        // feeder defs, giving the operand sources in evaluation order.
        // Returns false when the operands aren't exactly the feeders.
        auto operandOrder = [](const TOp &bin, int32_t r1, int32_t r2,
                               bool &swapped) -> bool {
            if (bin.b == r1 && bin.c == r2) {
                swapped = false;
                return true;
            }
            if (bin.b == r2 && bin.c == r1) {
                swapped = true;
                return true;
            }
            return false;
        };

        // --- length-4 patterns ---------------------------------------
        if (o3 && o0.op == TOpc::LDL && o1->op == TOpc::LDL &&
            !branchIntoInterior(j, 4)) {
            bool swapped;
            // LDL l1; LDL l2; cmp; BRZ/BRNZ → CMPBRLL
            if (isTCmp(o2->op) &&
                (o3->op == TOpc::BRZ || o3->op == TOpc::BRNZ) &&
                o3->a == o2->a &&
                operandOrder(*o2, o0.a, o1->a, swapped) &&
                !regReferenced(o0.a, j, j + 4) &&
                !regReferenced(o1->a, j, j + 4) &&
                !regReferenced(o2->a, j, j + 4)) {
                // Operand slots are stored in evaluation order, so the
                // cmp kind itself never needs mirroring here.
                TOpc kind = o2->op;
                if (o3->op == TOpc::BRZ)
                    kind = negTCmp(kind);
                TOp f;
                f.op = TOpc::CMPBRLL;
                f.a = static_cast<int32_t>(kind);
                f.b = swapped ? o1->b : o0.b;
                f.c = swapped ? o0.b : o1->b;
                f.dest = o3->dest;
                f.exitPc = o3->exitPc;
                f.map = o3->map;
                return apply(j, 4, f);
            }
            // LDL l1; LDL l2; bin; STL l3 → BINL
            if (isTPureBin(o2->op) && o3->op == TOpc::STL &&
                o3->a == o2->a &&
                operandOrder(*o2, o0.a, o1->a, swapped) &&
                !regReferenced(o0.a, j, j + 4) &&
                !regReferenced(o1->a, j, j + 4) &&
                !regReferenced(o2->a, j, j + 4)) {
                TOp f;
                f.op = TOpc::BINL;
                f.a = o3->b;
                f.b = swapped ? o1->b : o0.b;
                f.c = swapped ? o0.b : o1->b;
                f.imm = static_cast<int64_t>(o2->op);
                return apply(j, 4, f);
            }
        }
        if (o3 && o0.op == TOpc::LDL && o1->op == TOpc::MOVI &&
            !branchIntoInterior(j, 4)) {
            // LDL l; MOVI k; cmp; BRZ/BRNZ → CMPBRLI
            if (isTCmp(o2->op) &&
                (o3->op == TOpc::BRZ || o3->op == TOpc::BRNZ) &&
                o3->a == o2->a) {
                bool swapped;
                if (operandOrder(*o2, o0.a, o1->a, swapped) &&
                    !regReferenced(o0.a, j, j + 4) &&
                    !regReferenced(o1->a, j, j + 4) &&
                    !regReferenced(o2->a, j, j + 4)) {
                    TOpc kind = swapped ? mirrorTCmp(o2->op) : o2->op;
                    if (o3->op == TOpc::BRZ)
                        kind = negTCmp(kind);
                    TOp f;
                    f.op = TOpc::CMPBRLI;
                    f.a = static_cast<int32_t>(kind);
                    f.b = o0.b;
                    f.imm = o1->imm;
                    f.dest = o3->dest;
                    f.exitPc = o3->exitPc;
                    f.map = o3->map;
                    return apply(j, 4, f);
                }
            }
            // LDL l; MOVI k; bin; STL l3 → BINLI (natural operand order
            // only: `bin(local, imm)` is what the stack idiom produces)
            if (isTPureBin(o2->op) && o3->op == TOpc::STL &&
                o3->a == o2->a && o2->b == o0.a && o2->c == o1->a &&
                !regReferenced(o0.a, j, j + 4) &&
                !regReferenced(o1->a, j, j + 4) &&
                !regReferenced(o2->a, j, j + 4)) {
                TOp f;
                f.op = TOpc::BINLI;
                f.a = o3->b;
                f.b = o0.b;
                f.c = static_cast<int32_t>(o2->op);
                f.imm = o1->imm;
                return apply(j, 4, f);
            }
        }

        // --- length-3 patterns ---------------------------------------
        if (o2 && !branchIntoInterior(j, 3)) {
            // LDL l; ADDI k; STL l3 → BINLI(ADD)
            if (o0.op == TOpc::LDL && o1->op == TOpc::ADDI &&
                o1->b == o0.a && o2->op == TOpc::STL && o2->a == o1->a &&
                !regReferenced(o0.a, j, j + 3) &&
                !regReferenced(o1->a, j, j + 3)) {
                TOp f;
                f.op = TOpc::BINLI;
                f.a = o2->b;
                f.b = o0.b;
                f.c = static_cast<int32_t>(TOpc::ADD);
                f.imm = o1->imm;
                return apply(j, 3, f);
            }
            // MOVI k; cmp; BRZ/BRNZ → CMPBRRI (the non-const operand
            // register stays live)
            if (o0.op == TOpc::MOVI && isTCmp(o1->op) &&
                (o2->op == TOpc::BRZ || o2->op == TOpc::BRNZ) &&
                o2->a == o1->a) {
                int32_t reg = -1;
                TOpc kind = o1->op;
                if (o1->c == o0.a && o1->b != o0.a) {
                    reg = o1->b;
                } else if (o1->b == o0.a && o1->c != o0.a) {
                    reg = o1->c;
                    kind = mirrorTCmp(kind);
                }
                if (reg >= 0 && !regReferenced(o0.a, j, j + 3) &&
                    !regReferenced(o1->a, j, j + 3)) {
                    if (o2->op == TOpc::BRZ)
                        kind = negTCmp(kind);
                    TOp f;
                    f.op = TOpc::CMPBRRI;
                    f.a = static_cast<int32_t>(kind);
                    f.b = reg;
                    f.imm = o0.imm;
                    f.dest = o2->dest;
                    f.exitPc = o2->exitPc;
                    f.map = o2->map;
                    return apply(j, 3, f);
                }
            }
            if (o0.op == TOpc::LDL && o1->op == TOpc::LDL) {
                bool swapped;
                // LDL l1; LDL l2; bin → BINRLL (result stays in a reg)
                if (isTPureBin(o2->op) &&
                    operandOrder(*o2, o0.a, o1->a, swapped) &&
                    !regReferenced(o0.a, j, j + 3) &&
                    !regReferenced(o1->a, j, j + 3)) {
                    TOp f;
                    f.op = TOpc::BINRLL;
                    f.a = o2->a;
                    f.b = swapped ? o1->b : o0.b;
                    f.c = swapped ? o0.b : o1->b;
                    f.imm = static_cast<int64_t>(o2->op);
                    return apply(j, 3, f);
                }
                // LDL l1; LDL l2; ST8/32/64 → STmLL
                if ((o2->op == TOpc::ST8 || o2->op == TOpc::ST32 ||
                     o2->op == TOpc::ST64) &&
                    ((o2->a == o0.a && o2->b == o1->a) ||
                     (o2->a == o1->a && o2->b == o0.a)) &&
                    !regReferenced(o0.a, j, j + 3) &&
                    !regReferenced(o1->a, j, j + 3)) {
                    bool sw = o2->a == o1->a;
                    TOp f;
                    f.op = o2->op == TOpc::ST8
                               ? TOpc::ST8LL
                               : o2->op == TOpc::ST32 ? TOpc::ST32LL
                                                      : TOpc::ST64LL;
                    f.a = sw ? o1->b : o0.b;
                    f.b = sw ? o0.b : o1->b;
                    f.exitPc = o2->exitPc;
                    f.map = o2->map;
                    return apply(j, 3, f);
                }
            }
            // LDL l; MOVI k; ST8/32/64 → STmLI (addr from the local)
            if (o0.op == TOpc::LDL && o1->op == TOpc::MOVI &&
                (o2->op == TOpc::ST8 || o2->op == TOpc::ST32 ||
                 o2->op == TOpc::ST64) &&
                o2->a == o0.a && o2->b == o1->a &&
                !regReferenced(o0.a, j, j + 3) &&
                !regReferenced(o1->a, j, j + 3)) {
                TOp f;
                f.op = o2->op == TOpc::ST8
                           ? TOpc::ST8LI
                           : o2->op == TOpc::ST32 ? TOpc::ST32LI
                                                  : TOpc::ST64LI;
                f.a = o0.b;
                f.imm = o1->imm;
                f.exitPc = o2->exitPc;
                f.map = o2->map;
                return apply(j, 3, f);
            }
            // LDL l; MOVI k; bin (no STL) → BINRLI, natural order
            if (o0.op == TOpc::LDL && o1->op == TOpc::MOVI &&
                isTPureBin(o2->op) && o2->b == o0.a && o2->c == o1->a &&
                !regReferenced(o0.a, j, j + 3) &&
                !regReferenced(o1->a, j, j + 3)) {
                TOp f;
                f.op = TOpc::BINRLI;
                f.a = o2->a;
                f.b = o0.b;
                f.c = static_cast<int32_t>(o2->op);
                f.imm = o1->imm;
                return apply(j, 3, f);
            }
        }

        // --- length-2 patterns ---------------------------------------
        if (o1 && !branchIntoInterior(j, 2)) {
            // LDL l; ADDI k → BINRLI(ADD)
            if (o0.op == TOpc::LDL && o1->op == TOpc::ADDI &&
                o1->b == o0.a && !regReferenced(o0.a, j, j + 2)) {
                TOp f;
                f.op = TOpc::BINRLI;
                f.a = o1->a;
                f.b = o0.b;
                f.c = static_cast<int32_t>(TOpc::ADD);
                f.imm = o1->imm;
                return apply(j, 2, f);
            }
            // LDL l; LD8/32/64 → LDmL
            if (o0.op == TOpc::LDL &&
                (o1->op == TOpc::LD8 || o1->op == TOpc::LD32 ||
                 o1->op == TOpc::LD64) &&
                o1->b == o0.a && !regReferenced(o0.a, j, j + 2)) {
                TOp f;
                f.op = o1->op == TOpc::LD8
                           ? TOpc::LD8L
                           : o1->op == TOpc::LD32 ? TOpc::LD32L
                                                  : TOpc::LD64L;
                f.a = o1->a;
                f.b = o0.b;
                f.exitPc = o1->exitPc;
                f.map = o1->map;
                return apply(j, 2, f);
            }
        }
        return false;
    };

    for (size_t j = 0; j < ops.size(); j++) {
        // A successful fusion can expose another pattern at the same
        // index (e.g. BINRLI feeding a store); retry until it settles.
        while (tryAt(j)) {
        }
    }
}

} // namespace

std::unique_ptr<Trace>
buildTrace(const Function &fn, uint32_t headerPc, uint32_t backedgePc)
{
    const size_t n = fn.code.size();
    if (headerPc > backedgePc || backedgePc >= n)
        return nullptr;

    // Join pcs: intra-region branch targets (other than the header, which
    // is the trace top). The operand stack must be empty at every join so
    // control-flow merges need no phi registers.
    std::vector<bool> isJoin(n + 1, false);
    for (uint32_t pc = headerPc; pc <= backedgePc; pc++) {
        const Instr &ins = fn.code[pc];
        if (!isBranch(ins.op))
            continue;
        uint32_t t = static_cast<uint32_t>(ins.imm);
        if (t > headerPc && t <= backedgePc)
            isJoin[t] = true;
    }

    TraceBuilder tb(fn, headerPc, backedgePc);
    // Original pc → trace-op index, for intra-trace branch patching.
    std::vector<int32_t> opOfPc(n + 1, -1);
    struct Patch
    {
        size_t opIndex;
        int64_t targetPc;
    };
    std::vector<Patch> patches;
    bool reachable = true;

    auto flushPendingAt = [&](uint32_t pc) {
        // A join target must not inherit retire counts from skipped
        // straight-line code; park pending on a NOPC carrier first.
        if (tb.pending) {
            TOp &t = tb.emit(TOpc::NOPC);
            t.exitPc = pc;
        }
    };

    for (uint32_t pc = headerPc; pc <= backedgePc && tb.ok; pc++) {
        if (isJoin[pc]) {
            if (reachable) {
                flushPendingAt(pc);
                if (!tb.vstack.empty())
                    return nullptr; // non-empty stack at a merge point
            } else {
                tb.pending = 0;
                tb.vstack.clear();
                reachable = true;
            }
        }
        opOfPc[pc] = static_cast<int32_t>(tb.trace.ops.size());
        if (!reachable)
            continue; // dead code: retires nothing, same as base

        const Instr &ins = fn.code[pc];
        tb.pending++;
        switch (ins.op) {
          case Op::NOP:
            break;
          case Op::PUSH: {
            TOp &t = tb.emit(TOpc::MOVI);
            t.a = tb.newReg();
            t.imm = ins.imm;
            tb.vstack.push_back(t.a);
            break;
          }
          case Op::DUP: {
            if (tb.vstack.empty())
                return nullptr; // would fault; let fused handle it
            tb.vstack.push_back(tb.vstack.back()); // SSA: regs immutable
            break;
          }
          case Op::POP: {
            int32_t r;
            if (!tb.pop(r))
                return nullptr;
            break;
          }
          case Op::SWAP: {
            if (tb.vstack.size() < 2)
                return nullptr;
            std::swap(tb.vstack[tb.vstack.size() - 1],
                      tb.vstack[tb.vstack.size() - 2]);
            break;
          }
          case Op::LOADL: {
            if (!validLocal(fn, ins.imm))
                return nullptr; // statically faults
            TOp &t = tb.emit(TOpc::LDL);
            t.a = tb.newReg();
            t.b = static_cast<int32_t>(ins.imm);
            tb.vstack.push_back(t.a);
            break;
          }
          case Op::STOREL: {
            if (!validLocal(fn, ins.imm))
                return nullptr;
            int32_t r;
            if (!tb.pop(r))
                return nullptr;
            TOp &t = tb.emit(TOpc::STL);
            t.a = r;
            t.b = static_cast<int32_t>(ins.imm);
            break;
          }
          case Op::LOAD8:
          case Op::LOAD32:
          case Op::LOAD64: {
            int32_t addr;
            if (!tb.pop(addr))
                return nullptr;
            TOp &t = tb.emit(ins.op == Op::LOAD8
                                 ? TOpc::LD8
                                 : ins.op == Op::LOAD32 ? TOpc::LD32
                                                        : TOpc::LD64);
            t.a = tb.newReg();
            t.b = addr;
            t.exitPc = pc;
            t.map = tb.addMap(); // stack after the pop = base post-fault
            tb.vstack.push_back(t.a);
            break;
          }
          case Op::STORE8:
          case Op::STORE32:
          case Op::STORE64: {
            int32_t val, addr;
            if (!tb.pop(val) || !tb.pop(addr))
                return nullptr;
            TOp &t = tb.emit(ins.op == Op::STORE8
                                 ? TOpc::ST8
                                 : ins.op == Op::STORE32 ? TOpc::ST32
                                                         : TOpc::ST64);
            t.a = addr;
            t.b = val;
            t.exitPc = pc;
            t.map = tb.addMap();
            break;
          }
          case Op::ADD: case Op::SUB: case Op::MUL:
          case Op::AND: case Op::OR: case Op::XOR:
          case Op::SHL: case Op::SHR:
          case Op::EQ: case Op::NE: case Op::LT:
          case Op::LE: case Op::GT: case Op::GE:
          case Op::DIVS: case Op::MODS: {
            int32_t rb, ra;
            if (!tb.pop(rb) || !tb.pop(ra))
                return nullptr;
            // Peephole: fold MOVI k; ADD into ADDI when the immediate is
            // the top operand and was produced by the previous op. DUP can
            // alias the MOVI's register into ra or leave it live deeper in
            // the vstack (PUSH k; DUP; ADD) — either way the erased MOVI
            // would still be read, so the fold requires rb to be dead.
            if (ins.op == Op::ADD && !tb.trace.ops.empty() &&
                tb.trace.ops.back().op == TOpc::MOVI &&
                tb.trace.ops.back().a == rb && ra != rb &&
                std::find(tb.vstack.begin(), tb.vstack.end(), rb) ==
                    tb.vstack.end()) {
                TOp movi = tb.trace.ops.back();
                uint8_t carried = tb.trace.ops.back().nOrig;
                tb.trace.ops.pop_back();
                TOp &t = tb.emit(TOpc::ADDI);
                t.nOrig = static_cast<uint8_t>(t.nOrig + carried);
                t.a = tb.newReg();
                t.b = ra;
                t.imm = movi.imm;
                tb.vstack.push_back(t.a);
                break;
            }
            TOp &t = tb.emit(binTOpc(ins.op));
            t.a = tb.newReg();
            t.b = ra;
            t.c = rb;
            if (ins.op == Op::DIVS || ins.op == Op::MODS) {
                t.exitPc = pc;
                t.map = tb.addMap();
            }
            tb.vstack.push_back(t.a);
            break;
          }
          case Op::JMP: {
            // emit() carries `pending` (which includes this branch), so
            // the straight-line retire count travels with the branch op.
            // Targets truncate to uint32 like the base tier's pc.
            uint32_t target = static_cast<uint32_t>(ins.imm);
            if (target == headerPc) {
                if (!tb.vstack.empty())
                    return nullptr;
                TOp &t = tb.emit(TOpc::JMP);
                t.dest = kTraceDestTop;
            } else if (target > headerPc && target <= backedgePc) {
                if (!tb.vstack.empty())
                    return nullptr;
                tb.emit(TOpc::JMP);
                patches.push_back(
                    {tb.trace.ops.size() - 1, static_cast<int64_t>(target)});
            } else {
                // Leaves the region: side exit at the target.
                TOp &t = tb.emit(TOpc::EXIT);
                t.exitPc = target;
                t.map = tb.addMap();
            }
            reachable = false;
            break;
          }
          case Op::JZ:
          case Op::JNZ: {
            int32_t cond;
            if (!tb.pop(cond))
                return nullptr;
            uint32_t target = static_cast<uint32_t>(ins.imm);
            TOpc brOp = ins.op == Op::JZ ? TOpc::BRZ : TOpc::BRNZ;
            if (target == headerPc && pc == backedgePc) {
                // The loop backedge itself.
                if (!tb.vstack.empty())
                    return nullptr;
                TOp &t = tb.emit(brOp);
                t.a = cond;
                t.dest = kTraceDestTop;
                // Fall-through leaves the loop: exit after the backedge
                // (retires nothing extra — the branch already retired).
                TOp &e = tb.emit(TOpc::EXIT);
                e.exitPc = backedgePc + 1;
                e.map = tb.addMap();
            } else if (target >= headerPc && target <= backedgePc) {
                // Intra-region branch (incl. a non-final branch to the
                // header): taken path must meet the empty-stack join rule.
                if (!tb.vstack.empty())
                    return nullptr;
                TOp &t = tb.emit(brOp);
                t.a = cond;
                if (target == headerPc)
                    t.dest = kTraceDestTop;
                else
                    patches.push_back({tb.trace.ops.size() - 1,
                                       static_cast<int64_t>(target)});
            } else {
                // Taken path exits the region; fall-through continues.
                TOp &t = tb.emit(brOp);
                t.a = cond;
                t.dest = kTraceDestExit;
                t.exitPc = target;
                t.map = tb.addMap();
            }
            break;
          }
          case Op::CALL:
          case Op::SYSCALL:
          case Op::RET:
          case Op::HALT: {
            // These need frame/host machinery: always deopt *before* the
            // instruction so it executes (and retires) in the fused tier.
            // The suspend/fork contract is untouched by tracing.
            tb.pending--; // the instruction itself is not retired here
            TOp &t = tb.emit(TOpc::EXIT);
            t.exitPc = pc;
            t.map = tb.addMap();
            reachable = false;
            break;
          }
          default:
            return nullptr; // illegal opcode: leave it to the fused tier
        }
    }
    if (!tb.ok)
        return nullptr;

    if (reachable) {
        // Fell off the end of the region (the last instruction wasn't an
        // unconditional transfer). Exit after the region, carrying any
        // un-emitted straight-line retire count.
        TOp &t = tb.emit(TOpc::EXIT);
        t.exitPc = backedgePc + 1;
        t.map = tb.addMap();
    }

    for (const auto &p : patches) {
        int32_t dest = opOfPc[p.targetPc];
        if (dest < 0)
            return nullptr;
        tb.trace.ops[p.opIndex].dest = dest;
    }

    tb.trace.nregs = tb.nextReg;
    tb.trace.headerPc = headerPc;
    peepholeTrace(tb.trace);
    return std::make_unique<Trace>(std::move(tb.trace));
}

} // namespace emvm
} // namespace browsix
