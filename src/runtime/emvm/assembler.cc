#include "runtime/emvm/assembler.h"

#include <map>
#include <sstream>
#include <vector>

namespace browsix {
namespace emvm {

namespace {

struct PendingRef
{
    size_t instr;      // index in current function's code
    std::string name;  // label or function name
    bool isCall;
    int line;
};

const std::map<std::string, Op> &
mnemonics()
{
    static const std::map<std::string, Op> m = {
        {"nop", Op::NOP},       {"push", Op::PUSH},   {"dup", Op::DUP},
        {"pop", Op::POP},       {"swap", Op::SWAP},   {"loadl", Op::LOADL},
        {"storel", Op::STOREL}, {"load8", Op::LOAD8}, {"load32", Op::LOAD32},
        {"load64", Op::LOAD64}, {"store8", Op::STORE8},
        {"store32", Op::STORE32}, {"store64", Op::STORE64},
        {"add", Op::ADD},       {"sub", Op::SUB},     {"mul", Op::MUL},
        {"divs", Op::DIVS},     {"mods", Op::MODS},   {"and", Op::AND},
        {"or", Op::OR},         {"xor", Op::XOR},     {"shl", Op::SHL},
        {"shr", Op::SHR},       {"eq", Op::EQ},       {"ne", Op::NE},
        {"lt", Op::LT},         {"le", Op::LE},       {"gt", Op::GT},
        {"ge", Op::GE},         {"jmp", Op::JMP},     {"jz", Op::JZ},
        {"jnz", Op::JNZ},       {"call", Op::CALL},   {"ret", Op::RET},
        {"syscall", Op::SYSCALL}, {"halt", Op::HALT},
    };
    return m;
}

bool
parseInt(const std::string &tok, int64_t &out)
{
    try {
        size_t pos = 0;
        out = std::stoll(tok, &pos, 0);
        return pos == tok.size();
    } catch (...) {
        return false;
    }
}

bool
parseEscapedString(const std::string &tok, std::string &out)
{
    if (tok.size() < 2 || tok.front() != '"' || tok.back() != '"')
        return false;
    out.clear();
    for (size_t i = 1; i + 1 < tok.size(); i++) {
        char c = tok[i];
        if (c == '\\' && i + 2 < tok.size()) {
            char e = tok[++i];
            switch (e) {
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case '0': out.push_back('\0'); break;
              case 'r': out.push_back('\r'); break;
              case '\\': out.push_back('\\'); break;
              case '"': out.push_back('"'); break;
              default: out.push_back(e); break;
            }
        } else {
            out.push_back(c);
        }
    }
    return true;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    size_t i = 0;
    while (i < line.size()) {
        char c = line[i];
        if (c == ';')
            break;
        if (c == ' ' || c == '\t' || c == '\r') {
            i++;
            continue;
        }
        if (c == '"') {
            size_t j = i + 1;
            while (j < line.size()) {
                if (line[j] == '\\')
                    j += 2;
                else if (line[j] == '"')
                    break;
                else
                    j++;
            }
            toks.push_back(line.substr(i, j - i + 1));
            i = j + 1;
            continue;
        }
        size_t j = i;
        while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
               line[j] != ';' && line[j] != '\r')
            j++;
        toks.push_back(line.substr(i, j - i));
        i = j;
    }
    return toks;
}

} // namespace

bool
assemble(const std::string &source, Image &out, std::string &err)
{
    out = Image{};
    std::istringstream is(source);
    std::string line;
    int lineno = 0;

    Function *cur = nullptr;
    std::map<std::string, uint32_t> labels;
    std::vector<PendingRef> refs;      // function-local jump refs
    std::vector<PendingRef> callRefs;  // cross-function call refs
    struct CallPatch
    {
        size_t fnIndex;
        size_t instr;
        std::string target;
        int line;
    };
    std::vector<CallPatch> callPatches;

    auto fail = [&](const std::string &msg) {
        err = "line " + std::to_string(lineno) + ": " + msg;
        return false;
    };

    auto endFunction = [&]() -> bool {
        for (const auto &ref : refs) {
            auto it = labels.find(ref.name);
            if (it == labels.end()) {
                err = "line " + std::to_string(ref.line) +
                      ": unknown label '" + ref.name + "'";
                return false;
            }
            // A label after the last instruction is legal as a marker but
            // not as a jump target: the VM treats pc == code.size() as a
            // fall-off-the-end fault and Image::validate rejects such
            // targets, so catch it here with a line number.
            if (it->second >= cur->code.size()) {
                err = "line " + std::to_string(ref.line) + ": label '" +
                      ref.name + "' points past the last instruction";
                return false;
            }
            cur->code[ref.instr].imm = it->second;
        }
        refs.clear();
        labels.clear();
        cur = nullptr;
        return true;
    };

    while (std::getline(is, line)) {
        lineno++;
        auto toks = tokenize(line);
        if (toks.empty())
            continue;

        if (toks[0] == ".memory") {
            int64_t n;
            if (toks.size() != 2 || !parseInt(toks[1], n) || n <= 0)
                return fail(".memory needs a positive size");
            out.memSize = static_cast<uint32_t>(n);
            continue;
        }
        if (toks[0] == ".data") {
            int64_t off;
            if (toks.size() < 3 || !parseInt(toks[1], off) || off < 0)
                return fail(".data needs offset and payload");
            std::string payload;
            if (toks[2].front() == '"') {
                if (!parseEscapedString(toks[2], payload))
                    return fail("bad string literal");
            } else {
                for (size_t i = 2; i < toks.size(); i++) {
                    int64_t b;
                    if (!parseInt(toks[i], b) || b < 0 || b > 255)
                        return fail("bad data byte");
                    payload.push_back(static_cast<char>(b));
                }
            }
            size_t need = static_cast<size_t>(off) + payload.size();
            if (out.initData.size() < need)
                out.initData.resize(need, 0);
            std::copy(payload.begin(), payload.end(),
                      out.initData.begin() + off);
            if (out.memSize < need)
                out.memSize = static_cast<uint32_t>(need);
            continue;
        }
        if (toks[0] == ".func") {
            if (cur)
                return fail("nested .func");
            int64_t nargs, nlocals;
            if (toks.size() != 4 || !parseInt(toks[2], nargs) ||
                !parseInt(toks[3], nlocals))
                return fail(".func NAME NARGS NLOCALS");
            Function f;
            f.name = toks[1];
            f.nargs = static_cast<uint32_t>(nargs);
            f.nlocals = static_cast<uint32_t>(std::max(nargs, nlocals));
            out.functions.push_back(std::move(f));
            cur = &out.functions.back();
            continue;
        }
        if (toks[0] == ".end") {
            if (!cur)
                return fail(".end without .func");
            if (!endFunction())
                return false;
            continue;
        }

        if (!cur)
            return fail("instruction outside .func");

        // Label?
        if (toks.size() == 1 && toks[0].back() == ':') {
            std::string name = toks[0].substr(0, toks[0].size() - 1);
            if (labels.count(name))
                return fail("duplicate label '" + name + "'");
            labels[name] = static_cast<uint32_t>(cur->code.size());
            continue;
        }

        auto mit = mnemonics().find(toks[0]);
        if (mit == mnemonics().end())
            return fail("unknown mnemonic '" + toks[0] + "'");
        Op op = mit->second;
        Instr ins;
        ins.op = op;

        bool needs_imm = op == Op::PUSH || op == Op::LOADL ||
                         op == Op::STOREL || op == Op::JMP || op == Op::JZ ||
                         op == Op::JNZ || op == Op::CALL ||
                         op == Op::SYSCALL;
        if (needs_imm) {
            if (toks.size() != 2)
                return fail("'" + toks[0] + "' needs one operand");
            if (op == Op::JMP || op == Op::JZ || op == Op::JNZ) {
                refs.push_back(PendingRef{cur->code.size(), toks[1], false,
                                          lineno});
            } else if (op == Op::CALL) {
                callPatches.push_back(CallPatch{out.functions.size() - 1,
                                                cur->code.size(), toks[1],
                                                lineno});
            } else {
                int64_t v;
                if (!parseInt(toks[1], v))
                    return fail("bad operand '" + toks[1] + "'");
                // Match Image::validate so a bad arity is a source-level
                // error with a line number, not a serialize-time panic.
                if (op == Op::SYSCALL && (v < 0 || v > 6))
                    return fail("syscall arity must be 0..6");
                ins.imm = v;
            }
        } else if (toks.size() != 1) {
            return fail("'" + toks[0] + "' takes no operand");
        }
        cur->code.push_back(ins);
    }

    if (cur)
        return fail("missing .end");

    for (const auto &patch : callPatches) {
        int idx = out.functionIndex(patch.target);
        if (idx < 0) {
            err = "line " + std::to_string(patch.line) +
                  ": unknown function '" + patch.target + "'";
            return false;
        }
        out.functions[patch.fnIndex].code[patch.instr].imm = idx;
    }
    (void)callRefs;
    return true;
}

} // namespace emvm
} // namespace browsix
