#include "runtime/emvm/vm.h"

#include <cstring>

#include "jsvm/fiber.h"
#include "jsvm/util.h"
#include "runtime/emvm/tier.h"

namespace browsix {
namespace emvm {

namespace {

constexpr char kMagic[] = "BSXBC1\n";
constexpr size_t kMagicLen = 7;

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    size_t n = out.size();
    out.resize(n + 4);
    std::memcpy(out.data() + n, &v, 4);
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    size_t n = out.size();
    out.resize(n + 8);
    std::memcpy(out.data() + n, &v, 8);
}

struct Reader
{
    const uint8_t *p;
    size_t len;
    size_t off = 0;
    bool ok = true;

    uint32_t u32()
    {
        if (off + 4 > len) {
            ok = false;
            return 0;
        }
        uint32_t v;
        std::memcpy(&v, p + off, 4);
        off += 4;
        return v;
    }
    uint64_t u64()
    {
        if (off + 8 > len) {
            ok = false;
            return 0;
        }
        uint64_t v;
        std::memcpy(&v, p + off, 8);
        off += 8;
        return v;
    }
    std::string str()
    {
        uint32_t n = u32();
        if (!ok || off + n > len) {
            ok = false;
            return "";
        }
        std::string s(reinterpret_cast<const char *>(p + off), n);
        off += n;
        return s;
    }
    bool bytes(uint8_t *dst, size_t n)
    {
        if (off + n > len) {
            ok = false;
            return false;
        }
        std::memcpy(dst, p + off, n);
        off += n;
        return true;
    }
};

} // namespace

int
Image::functionIndex(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); i++) {
        if (functions[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

bool
Image::validate(std::string *err) const
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    for (const auto &f : functions) {
        const uint64_t n = f.code.size();
        for (size_t i = 0; i < n; i++) {
            const Instr &ins = f.code[i];
            if (static_cast<uint8_t>(ins.op) > static_cast<uint8_t>(Op::HALT))
                return fail("illegal opcode in " + f.name);
            switch (ins.op) {
              case Op::JMP:
              case Op::JZ:
              case Op::JNZ:
                // The interpreter truncates targets to uint32; a target
                // that truncates into range would silently change
                // behavior, so reject anything not literally in range.
                if (ins.imm < 0 || static_cast<uint64_t>(ins.imm) >= n)
                    return fail("jump target out of range in " + f.name);
                break;
              case Op::CALL:
                if (ins.imm < 0 ||
                    static_cast<uint64_t>(ins.imm) >= functions.size())
                    return fail("CALL target out of range in " + f.name);
                break;
              case Op::SYSCALL:
                if (ins.imm < 0 || ins.imm > 6)
                    return fail("SYSCALL arity out of range in " + f.name);
                break;
              default:
                break;
            }
        }
    }
    return true;
}

std::vector<uint8_t>
Image::serialize() const
{
    std::string err;
    if (!validate(&err))
        jsvm::panic("Image::serialize: invalid image: " + err);
    std::vector<uint8_t> out(kMagic, kMagic + kMagicLen);
    put32(out, static_cast<uint32_t>(functions.size()));
    for (const auto &f : functions) {
        put32(out, static_cast<uint32_t>(f.name.size()));
        out.insert(out.end(), f.name.begin(), f.name.end());
        put32(out, f.nargs);
        put32(out, f.nlocals);
        put32(out, static_cast<uint32_t>(f.code.size()));
        for (const auto &ins : f.code) {
            out.push_back(static_cast<uint8_t>(ins.op));
            put64(out, static_cast<uint64_t>(ins.imm));
        }
    }
    put32(out, memSize);
    put32(out, static_cast<uint32_t>(initData.size()));
    out.insert(out.end(), initData.begin(), initData.end());
    return out;
}

bool
Image::isImage(const uint8_t *data, size_t len)
{
    return len >= kMagicLen && std::memcmp(data, kMagic, kMagicLen) == 0;
}

bool
Image::deserialize(const std::vector<uint8_t> &bytes, Image &out)
{
    if (!isImage(bytes.data(), bytes.size()))
        return false;
    Reader r{bytes.data(), bytes.size(), kMagicLen};
    uint32_t nfn = r.u32();
    if (nfn > 4096)
        return false;
    out.functions.clear();
    for (uint32_t i = 0; i < nfn && r.ok; i++) {
        Function f;
        f.name = r.str();
        f.nargs = r.u32();
        f.nlocals = r.u32();
        uint32_t n = r.u32();
        if (!r.ok || n > 1u << 22)
            return false;
        f.code.resize(n);
        for (uint32_t j = 0; j < n && r.ok; j++) {
            if (r.off >= r.len) {
                r.ok = false;
                break;
            }
            f.code[j].op = static_cast<Op>(r.p[r.off++]);
            f.code[j].imm = static_cast<int64_t>(r.u64());
        }
        out.functions.push_back(std::move(f));
    }
    out.memSize = r.u32();
    uint32_t dlen = r.u32();
    if (!r.ok || dlen > (64u << 20))
        return false;
    out.initData.resize(dlen);
    if (dlen && !r.bytes(out.initData.data(), dlen))
        return false;
    // Hostile-image parity with the ring's SQE validation: structurally
    // intact but semantically bogus images (wild jumps, CALLs to nowhere)
    // are rejected at load time, not left to fault mid-run.
    return r.ok && out.validate();
}

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Base: return "base";
      case Tier::Fused: return "fused";
      case Tier::Trace: return "trace";
    }
    return "?";
}

Vm::Vm(Image image, Tier tier) : image_(std::move(image)), tier_(tier)
{
    mem_.assign(std::max<uint32_t>(image_.memSize, 64), 0);
    if (!image_.initData.empty()) {
        size_t n = std::min(image_.initData.size(), mem_.size());
        std::memcpy(mem_.data(), image_.initData.data(), n);
    }
}

// Out of line: ~Vm must see the complete TransFn (tier.h).
Vm::~Vm() = default;

TransFn &
Vm::transFor(uint32_t fnIdx)
{
    if (tfns_.size() < image_.functions.size())
        tfns_.resize(image_.functions.size());
    auto &slot = tfns_[fnIdx];
    if (!slot)
        slot = translateFunction(image_.functions[fnIdx]);
    return *slot;
}

bool
Vm::start(const std::string &name, const std::vector<int64_t> &args)
{
    int fn = image_.functionIndex(name);
    if (fn < 0)
        return false;
    const Function &f = image_.functions[fn];
    Frame frame;
    frame.fn = static_cast<uint32_t>(fn);
    frame.pc = 0;
    frame.locals.assign(std::max<uint32_t>(f.nlocals, f.nargs), 0);
    for (size_t i = 0; i < args.size() && i < frame.locals.size(); i++)
        frame.locals[i] = args[i];
    frames_.clear();
    stack_.clear();
    frames_.push_back(std::move(frame));
    running_ = true;
    awaitingSyscall_ = false;
    return true;
}

RunState
Vm::fault(const std::string &msg)
{
    trapMsg_ = msg;
    running_ = false;
    return RunState::Trapped;
}

void
Vm::resume(int64_t syscall_result)
{
    if (!awaitingSyscall_)
        jsvm::panic("Vm::resume without pending syscall");
    awaitingSyscall_ = false;
    stack_.push_back(syscall_result);
}

std::string
Vm::memStr(uint64_t addr) const
{
    std::string out;
    while (addr < mem_.size() && mem_[addr] != 0)
        out.push_back(static_cast<char>(mem_[addr++]));
    return out;
}

bool
Vm::memWrite(uint64_t addr, const uint8_t *data, size_t len)
{
    if (addr + len > mem_.size())
        return false;
    std::memcpy(mem_.data() + addr, data, len);
    return true;
}

bool
Vm::memRead(uint64_t addr, uint8_t *out, size_t len) const
{
    if (addr + len > mem_.size())
        return false;
    std::memcpy(out, mem_.data() + addr, len);
    return true;
}

RunState
Vm::run(jsvm::InterruptToken *token)
{
    if (awaitingSyscall_)
        jsvm::panic("Vm::run while awaiting a syscall result");
    if (!running_ || frames_.empty())
        return fault("vm not started");

    if (tier_ == Tier::Base) {
        int check = 0;
        return runBase(token, false, nullptr, check);
    }
    return runFused(token);
}

RunState
Vm::runBase(jsvm::InterruptToken *token, bool stopAtLeader,
            bool *reachedLeader, int &check)
{
    auto pop = [this](int64_t &v) -> bool {
        if (stack_.empty())
            return false;
        v = stack_.back();
        stack_.pop_back();
        return true;
    };

    for (;;) {
        if (stopAtLeader) {
            // Honoring a snapshot whose pc points into a superinstruction
            // interior: single-step base semantics until the pc is once
            // again addressable in the fused stream.
            Frame &fr = frames_.back();
            TransFn &tf = transFor(fr.fn);
            if (fr.pc >= tf.fusedOfOrig.size() ||
                tf.fusedOfOrig[fr.pc] >= 0) {
                *reachedLeader = true;
                return RunState::Done; // caller resumes fused dispatch
            }
        }
        if (++check >= 4096) {
            check = 0;
            if (token && token->interrupted())
                throw jsvm::WorkerTerminated{};
            // Pooled execution: give the scheduler a time-slice boundary so
            // a compute-bound guest cannot monopolize a pool thread.
            jsvm::Fiber::maybeYield();
        }
        Frame &fr = frames_.back();
        const Function &fn = image_.functions[fr.fn];
        if (fr.pc >= fn.code.size())
            return fault("pc out of range in " + fn.name);
        const Instr ins = fn.code[fr.pc++];
        retired_++;

        int64_t a, b;
        switch (ins.op) {
          case Op::NOP:
            break;
          case Op::PUSH:
            stack_.push_back(ins.imm);
            break;
          case Op::DUP:
            if (stack_.empty())
                return fault("DUP on empty stack");
            stack_.push_back(stack_.back());
            break;
          case Op::POP:
            if (!pop(a))
                return fault("POP on empty stack");
            break;
          case Op::SWAP:
            if (stack_.size() < 2)
                return fault("SWAP underflow");
            std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
            break;
          case Op::LOADL:
            if (ins.imm < 0 ||
                static_cast<size_t>(ins.imm) >= fr.locals.size())
                return fault("LOADL out of range");
            stack_.push_back(fr.locals[ins.imm]);
            break;
          case Op::STOREL:
            if (ins.imm < 0 ||
                static_cast<size_t>(ins.imm) >= fr.locals.size())
                return fault("STOREL out of range");
            if (!pop(a))
                return fault("STOREL underflow");
            fr.locals[ins.imm] = a;
            break;
          case Op::LOAD8:
            if (!pop(a))
                return fault("LOAD8 underflow");
            if (a < 0 || static_cast<size_t>(a) >= mem_.size())
                return fault("LOAD8 out of bounds");
            stack_.push_back(mem_[a]);
            break;
          case Op::LOAD32: {
            if (!pop(a))
                return fault("LOAD32 underflow");
            if (a < 0 || static_cast<size_t>(a) + 4 > mem_.size())
                return fault("LOAD32 out of bounds");
            int32_t v;
            std::memcpy(&v, mem_.data() + a, 4);
            stack_.push_back(v);
            break;
          }
          case Op::LOAD64: {
            if (!pop(a))
                return fault("LOAD64 underflow");
            if (a < 0 || static_cast<size_t>(a) + 8 > mem_.size())
                return fault("LOAD64 out of bounds");
            int64_t v;
            std::memcpy(&v, mem_.data() + a, 8);
            stack_.push_back(v);
            break;
          }
          case Op::STORE8:
            if (!pop(b) || !pop(a))
                return fault("STORE8 underflow");
            if (a < 0 || static_cast<size_t>(a) >= mem_.size())
                return fault("STORE8 out of bounds");
            mem_[a] = static_cast<uint8_t>(b);
            break;
          case Op::STORE32: {
            if (!pop(b) || !pop(a))
                return fault("STORE32 underflow");
            if (a < 0 || static_cast<size_t>(a) + 4 > mem_.size())
                return fault("STORE32 out of bounds");
            int32_t v = static_cast<int32_t>(b);
            std::memcpy(mem_.data() + a, &v, 4);
            break;
          }
          case Op::STORE64:
            if (!pop(b) || !pop(a))
                return fault("STORE64 underflow");
            if (a < 0 || static_cast<size_t>(a) + 8 > mem_.size())
                return fault("STORE64 out of bounds");
            std::memcpy(mem_.data() + a, &b, 8);
            break;

#define BINOP(name, expr)                                                  \
  case Op::name:                                                           \
    if (!pop(b) || !pop(a))                                                \
        return fault(#name " underflow");                                  \
    stack_.push_back(expr);                                                \
    break;
          // Arithmetic wraps mod 2^64 (JS-engine semantics): compute in
          // uint64_t, where overflow is defined, and cast back.
          BINOP(ADD, static_cast<int64_t>(static_cast<uint64_t>(a) +
                                          static_cast<uint64_t>(b)))
          BINOP(SUB, static_cast<int64_t>(static_cast<uint64_t>(a) -
                                          static_cast<uint64_t>(b)))
          BINOP(MUL, static_cast<int64_t>(static_cast<uint64_t>(a) *
                                          static_cast<uint64_t>(b)))
          BINOP(AND, a & b)
          BINOP(OR, a | b)
          BINOP(XOR, a ^ b)
          BINOP(SHL, static_cast<int64_t>(static_cast<uint64_t>(a)
                                          << (b & 63)))
          BINOP(SHR, static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                          (b & 63)))
          BINOP(EQ, a == b ? 1 : 0)
          BINOP(NE, a != b ? 1 : 0)
          BINOP(LT, a < b ? 1 : 0)
          BINOP(LE, a <= b ? 1 : 0)
          BINOP(GT, a > b ? 1 : 0)
          BINOP(GE, a >= b ? 1 : 0)
#undef BINOP
          case Op::DIVS:
            if (!pop(b) || !pop(a))
                return fault("DIVS underflow");
            if (b == 0)
                return fault("division by zero");
            // INT64_MIN / -1 overflows; wrap like the multiply does.
            stack_.push_back(b == -1 ? static_cast<int64_t>(
                                           -static_cast<uint64_t>(a))
                                     : a / b);
            break;
          case Op::MODS:
            if (!pop(b) || !pop(a))
                return fault("MODS underflow");
            if (b == 0)
                return fault("modulo by zero");
            stack_.push_back(b == -1 ? 0 : a % b);
            break;

          case Op::JMP:
            fr.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Op::JZ:
            if (!pop(a))
                return fault("JZ underflow");
            if (a == 0)
                fr.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Op::JNZ:
            if (!pop(a))
                return fault("JNZ underflow");
            if (a != 0)
                fr.pc = static_cast<uint32_t>(ins.imm);
            break;

          case Op::CALL: {
            if (ins.imm < 0 ||
                static_cast<size_t>(ins.imm) >= image_.functions.size())
                return fault("CALL out of range");
            const Function &callee = image_.functions[ins.imm];
            if (stack_.size() < callee.nargs)
                return fault("CALL arg underflow");
            Frame nf;
            nf.fn = static_cast<uint32_t>(ins.imm);
            nf.pc = 0;
            nf.locals.assign(
                std::max(callee.nlocals, callee.nargs), 0);
            for (uint32_t i = 0; i < callee.nargs; i++) {
                nf.locals[callee.nargs - 1 - i] = stack_.back();
                stack_.pop_back();
            }
            if (frames_.size() > 1024)
                return fault("call stack overflow");
            frames_.push_back(std::move(nf));
            break;
          }
          case Op::RET: {
            if (!pop(a))
                return fault("RET underflow");
            frames_.pop_back();
            if (frames_.empty()) {
                exitCode_ = a;
                running_ = false;
                return RunState::Done;
            }
            stack_.push_back(a);
            break;
          }

          case Op::SYSCALL: {
            int nargs = static_cast<int>(ins.imm);
            if (static_cast<int>(stack_.size()) < nargs + 1)
                return fault("SYSCALL underflow");
            pendingArgs_.assign(nargs, 0);
            for (int i = nargs - 1; i >= 0; i--) {
                pendingArgs_[i] = stack_.back();
                stack_.pop_back();
            }
            pendingTrap_ = static_cast<int>(stack_.back());
            stack_.pop_back();
            awaitingSyscall_ = true;
            return RunState::Syscall;
          }

          case Op::HALT:
            if (!pop(a))
                return fault("HALT underflow");
            exitCode_ = a;
            running_ = false;
            return RunState::Done;

          default:
            return fault("illegal opcode");
        }
    }
}

namespace {

int64_t
cmpApply(Op c, int64_t x, int64_t y)
{
    switch (c) {
      case Op::EQ: return x == y ? 1 : 0;
      case Op::NE: return x != y ? 1 : 0;
      case Op::LT: return x < y ? 1 : 0;
      case Op::LE: return x <= y ? 1 : 0;
      case Op::GT: return x > y ? 1 : 0;
      case Op::GE: return x >= y ? 1 : 0;
      default: return 0;
    }
}

/** Evaluate a fused *_BIN_SL binop: the isPureBin set, wrap-mod-2^64. */
int64_t
binApply(Op op, int64_t x, int64_t y)
{
    switch (op) {
      case Op::ADD:
        return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                    static_cast<uint64_t>(y));
      case Op::SUB:
        return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                    static_cast<uint64_t>(y));
      case Op::MUL:
        return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                    static_cast<uint64_t>(y));
      case Op::AND: return x & y;
      case Op::OR: return x | y;
      case Op::XOR: return x ^ y;
      case Op::SHL:
        return static_cast<int64_t>(static_cast<uint64_t>(x) << (y & 63));
      case Op::SHR:
        return static_cast<int64_t>(static_cast<uint64_t>(x) >> (y & 63));
      default: return cmpApply(op, x, y);
    }
}

/** Evaluate the kind operand of a peephole-fused trace op. */
int64_t
tbinApply(TOpc k, int64_t x, int64_t y)
{
    switch (k) {
      case TOpc::ADD:
        return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                    static_cast<uint64_t>(y));
      case TOpc::SUB:
        return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                    static_cast<uint64_t>(y));
      case TOpc::MUL:
        return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                    static_cast<uint64_t>(y));
      case TOpc::AND: return x & y;
      case TOpc::OR: return x | y;
      case TOpc::XOR: return x ^ y;
      case TOpc::SHL:
        return static_cast<int64_t>(static_cast<uint64_t>(x) << (y & 63));
      case TOpc::SHR:
        return static_cast<int64_t>(static_cast<uint64_t>(x) >> (y & 63));
      case TOpc::EQ: return x == y ? 1 : 0;
      case TOpc::NE: return x != y ? 1 : 0;
      case TOpc::LT: return x < y ? 1 : 0;
      case TOpc::LE: return x <= y ? 1 : 0;
      case TOpc::GT: return x > y ? 1 : 0;
      case TOpc::GE: return x >= y ? 1 : 0;
      default: return 0;
    }
}

const char *
cmpUnderflowMsg(Op c)
{
    switch (c) {
      case Op::EQ: return "EQ underflow";
      case Op::NE: return "NE underflow";
      case Op::LT: return "LT underflow";
      case Op::LE: return "LE underflow";
      case Op::GT: return "GT underflow";
      case Op::GE: return "GE underflow";
      default: return "cmp underflow";
    }
}

} // namespace

// Threaded (computed-goto) dispatch where the compiler supports it; the
// portable switch fallback compiles from the same handler bodies.
// -DBROWSIX_EMVM_NO_CGOTO forces the fallback for testing.
#if defined(__GNUC__) && !defined(BROWSIX_EMVM_NO_CGOTO)
#define BSX_EMVM_CGOTO 1
#else
#define BSX_EMVM_CGOTO 0
#endif

RunState
Vm::runFused(jsvm::InterruptToken *token)
{
    int check = 0;
    int64_t a, b;
    Frame *fr = nullptr;
    const Function *fnp = nullptr;
    TransFn *tfp = nullptr;
    const FInstr *code = nullptr;
    const FInstr *ins = nullptr;
    size_t n = 0, ncode = 0, fpc = 0;

    // Dispatch-loop counters accumulate in registers and flush to the Vm
    // on every exit from this function — including the WorkerTerminated
    // throw — so instructionsRetired()/stats() stay truthful without a
    // member read-modify-write on every dispatch.
    struct Acc
    {
        Vm *vm;
        uint64_t disp = 0;  ///< pending stats_.fusedDispatches
        uint64_t super = 0; ///< pending stats_.superinstructionsHit
        int64_t ret = 0;    ///< pending retired_ delta
        ~Acc()
        {
            vm->stats_.fusedDispatches += disp;
            vm->stats_.superinstructionsHit += super;
            vm->retired_ += ret;
        }
    } acc{this, 0, 0, 0};

    auto pop = [this](int64_t &v) -> bool {
        if (stack_.empty())
            return false;
        v = stack_.back();
        stack_.pop_back();
        return true;
    };
    auto ensureTrace = [this](TransFn &tf, const Function &fn,
                              uint32_t headerPc,
                              uint32_t bePc) -> const Trace * {
        TraceSlot *slot = tf.findSlot(headerPc);
        if (!slot) {
            tf.traces.push_back(TraceSlot{headerPc, false, nullptr});
            slot = &tf.traces.back();
        }
        if (!slot->built) {
            slot->built = true; // null after build = untraceable, cached
            slot->trace = buildTrace(fn, headerPc, bePc);
            if (slot->trace)
                stats_.tracesTranslated++;
        }
        return slot->trace.get();
    };

// Per-dispatch prologue: bounds, truthful retire accounting, and the
// InterruptToken cadence — `check` advances by ORIGINAL instructions so
// fused spans cannot stretch the termination window.
#define FETCH()                                                            \
    do {                                                                   \
        if (fpc >= ncode) {                                                \
            fr->pc = static_cast<uint32_t>(n);                             \
            return fault("pc out of range in " + fnp->name);               \
        }                                                                  \
        ins = &code[fpc++];                                                \
        acc.disp++;                                                        \
        acc.super += ins->nOrig > 1 ? 1 : 0;                               \
        acc.ret += ins->nOrig;                                             \
        check += ins->nOrig;                                               \
        if (check >= 4096) {                                               \
            check = 0;                                                     \
            if (token && token->interrupted())                             \
                throw jsvm::WorkerTerminated{};                            \
            jsvm::Fiber::maybeYield();                                     \
        }                                                                  \
    } while (0)

// Faults report original coordinates: the k-th original instruction of
// the span is the one that faulted, and base increments pc at fetch.
// Fault at original-op index k-1 inside the current (super)instruction.
// Base coordinates throughout: the pc lands just past the faulting
// original op (base bumps pc at fetch), and the retired counter gives
// back the original ops FETCH charged for but never ran — base counts
// the faulting instruction itself, none after it.
#define FAULTN(k, msg)                                                     \
    do {                                                                   \
        fr->pc = ins->origPc + (k);                                        \
        acc.ret -= ins->nOrig - (k);                                       \
        return fault(msg);                                                 \
    } while (0)

// A taken branch. Out-of-range targets fault in base coordinates; hot
// backedges bump their profile counter and may enter (or first build) a
// register trace, deopting back here with fr->pc at a span boundary.
#define TAKE_BRANCH()                                                      \
    do {                                                                   \
        if (static_cast<size_t>(ins->imm) >= ncode) {                      \
            fr->pc = ins->brOrig;                                          \
            return fault("pc out of range in " + fnp->name);               \
        }                                                                  \
        if (tier_ == Tier::Trace && ins->hot >= 0) {                       \
            Backedge &be = tfp->backedges[ins->hot];                       \
            if (++be.count >= traceThreshold_) {                           \
                be.count = 0;                                              \
                const Trace *tr =                                          \
                    ensureTrace(*tfp, *fnp, be.headerPc,                   \
                                ins->origPc + ins->nOrig - 1);             \
                if (tr) {                                                  \
                    fr->pc = be.headerPc;                                  \
                    stats_.tracesEntered++;                                \
                    if (!execTrace(*tr, token, check))                     \
                        return RunState::Trapped;                          \
                    stats_.traceDeopts++;                                  \
                    goto refetch_frame;                                    \
                }                                                          \
            }                                                              \
        }                                                                  \
        fpc = static_cast<size_t>(ins->imm);                               \
    } while (0)

refetch_frame:
    fr = &frames_.back();
    fnp = &image_.functions[fr->fn];
    tfp = &transFor(fr->fn);
    n = fnp->code.size();
    if (fr->pc >= n)
        // Base faults here leaving fr.pc untouched; match it.
        return fault("pc out of range in " + fnp->name);
    if (tfp->fusedOfOrig[fr->pc] < 0) {
        // A (doctored) snapshot resumed inside a superinstruction: step
        // base semantics until the pc is a span boundary again.
        bool reached = false;
        RunState rs = runBase(token, true, &reached, check);
        if (!reached)
            return rs;
        goto refetch_frame;
    }
    code = tfp->code.data();
    ncode = tfp->code.size();
    fpc = static_cast<size_t>(tfp->fusedOfOrig[fr->pc]);

#if BSX_EMVM_CGOTO
    static const void *const kLabels[] = {
        &&L_NOP, &&L_PUSH, &&L_DUP, &&L_POP, &&L_SWAP, &&L_LOADL,
        &&L_STOREL, &&L_LOAD8, &&L_LOAD32, &&L_LOAD64, &&L_STORE8,
        &&L_STORE32, &&L_STORE64, &&L_ADD, &&L_SUB, &&L_MUL, &&L_DIVS,
        &&L_MODS, &&L_AND, &&L_OR, &&L_XOR, &&L_SHL, &&L_SHR, &&L_EQ,
        &&L_NE, &&L_LT, &&L_LE, &&L_GT, &&L_GE, &&L_JMP, &&L_JZ, &&L_JNZ,
        &&L_CALL, &&L_RET, &&L_SYSCALL, &&L_HALT, &&L_PUSH_ADD,
        &&L_INC_LOCAL, &&L_LL_CMP, &&L_CMP_BR, &&L_LL_CMP_BR,
        &&L_LOADL_LOAD8, &&L_LOADL_LOAD32, &&L_LL_STORE8, &&L_LL_STORE32,
        &&L_LP_STORE8, &&L_LP_STORE32, &&L_LP_CMP_BR, &&L_LL_BIN_SL,
        &&L_LP_BIN_SL, &&L_BADOP,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      static_cast<size_t>(FOp::COUNT),
                  "dispatch table matches FOp");
#define CASE(x) L_##x:
#define NEXT()                                                             \
    do {                                                                   \
        FETCH();                                                           \
        goto *kLabels[static_cast<size_t>(ins->op)];                       \
    } while (0)
    NEXT();
#else
#define CASE(x) case FOp::x:
#define NEXT() break
    for (;;) {
        FETCH();
        switch (ins->op) {
#endif

    CASE(NOP) { NEXT(); }
    CASE(PUSH)
    {
        stack_.push_back(ins->imm);
        NEXT();
    }
    CASE(DUP)
    {
        if (stack_.empty())
            FAULTN(1, "DUP on empty stack");
        stack_.push_back(stack_.back());
        NEXT();
    }
    CASE(POP)
    {
        if (!pop(a))
            FAULTN(1, "POP on empty stack");
        NEXT();
    }
    CASE(SWAP)
    {
        if (stack_.size() < 2)
            FAULTN(1, "SWAP underflow");
        std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
        NEXT();
    }
    CASE(LOADL)
    {
        if (ins->imm < 0 ||
            static_cast<size_t>(ins->imm) >= fr->locals.size())
            FAULTN(1, "LOADL out of range");
        stack_.push_back(fr->locals[ins->imm]);
        NEXT();
    }
    CASE(STOREL)
    {
        if (ins->imm < 0 ||
            static_cast<size_t>(ins->imm) >= fr->locals.size())
            FAULTN(1, "STOREL out of range");
        if (!pop(a))
            FAULTN(1, "STOREL underflow");
        fr->locals[ins->imm] = a;
        NEXT();
    }
    CASE(LOAD8)
    {
        if (!pop(a))
            FAULTN(1, "LOAD8 underflow");
        if (a < 0 || static_cast<size_t>(a) >= mem_.size())
            FAULTN(1, "LOAD8 out of bounds");
        stack_.push_back(mem_[a]);
        NEXT();
    }
    CASE(LOAD32)
    {
        if (!pop(a))
            FAULTN(1, "LOAD32 underflow");
        if (a < 0 || static_cast<size_t>(a) + 4 > mem_.size())
            FAULTN(1, "LOAD32 out of bounds");
        int32_t v;
        std::memcpy(&v, mem_.data() + a, 4);
        stack_.push_back(v);
        NEXT();
    }
    CASE(LOAD64)
    {
        if (!pop(a))
            FAULTN(1, "LOAD64 underflow");
        if (a < 0 || static_cast<size_t>(a) + 8 > mem_.size())
            FAULTN(1, "LOAD64 out of bounds");
        int64_t v;
        std::memcpy(&v, mem_.data() + a, 8);
        stack_.push_back(v);
        NEXT();
    }
    CASE(STORE8)
    {
        if (!pop(b) || !pop(a))
            FAULTN(1, "STORE8 underflow");
        if (a < 0 || static_cast<size_t>(a) >= mem_.size())
            FAULTN(1, "STORE8 out of bounds");
        mem_[a] = static_cast<uint8_t>(b);
        NEXT();
    }
    CASE(STORE32)
    {
        if (!pop(b) || !pop(a))
            FAULTN(1, "STORE32 underflow");
        if (a < 0 || static_cast<size_t>(a) + 4 > mem_.size())
            FAULTN(1, "STORE32 out of bounds");
        int32_t v = static_cast<int32_t>(b);
        std::memcpy(mem_.data() + a, &v, 4);
        NEXT();
    }
    CASE(STORE64)
    {
        if (!pop(b) || !pop(a))
            FAULTN(1, "STORE64 underflow");
        if (a < 0 || static_cast<size_t>(a) + 8 > mem_.size())
            FAULTN(1, "STORE64 out of bounds");
        std::memcpy(mem_.data() + a, &b, 8);
        NEXT();
    }

#define BINOP_CASE(name, expr)                                             \
    CASE(name)                                                             \
    {                                                                      \
        if (!pop(b) || !pop(a))                                            \
            FAULTN(1, #name " underflow");                                 \
        stack_.push_back(expr);                                            \
        NEXT();                                                            \
    }
    // Same wrap-mod-2^64 semantics as the base tier.
    BINOP_CASE(ADD, static_cast<int64_t>(static_cast<uint64_t>(a) +
                                         static_cast<uint64_t>(b)))
    BINOP_CASE(SUB, static_cast<int64_t>(static_cast<uint64_t>(a) -
                                         static_cast<uint64_t>(b)))
    BINOP_CASE(MUL, static_cast<int64_t>(static_cast<uint64_t>(a) *
                                         static_cast<uint64_t>(b)))
    BINOP_CASE(AND, a & b)
    BINOP_CASE(OR, a | b)
    BINOP_CASE(XOR, a ^ b)
    BINOP_CASE(SHL,
               static_cast<int64_t>(static_cast<uint64_t>(a) << (b & 63)))
    BINOP_CASE(SHR,
               static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63)))
    BINOP_CASE(EQ, a == b ? 1 : 0)
    BINOP_CASE(NE, a != b ? 1 : 0)
    BINOP_CASE(LT, a < b ? 1 : 0)
    BINOP_CASE(LE, a <= b ? 1 : 0)
    BINOP_CASE(GT, a > b ? 1 : 0)
    BINOP_CASE(GE, a >= b ? 1 : 0)
#undef BINOP_CASE

    CASE(DIVS)
    {
        if (!pop(b) || !pop(a))
            FAULTN(1, "DIVS underflow");
        if (b == 0)
            FAULTN(1, "division by zero");
        stack_.push_back(
            b == -1 ? static_cast<int64_t>(-static_cast<uint64_t>(a))
                    : a / b);
        NEXT();
    }
    CASE(MODS)
    {
        if (!pop(b) || !pop(a))
            FAULTN(1, "MODS underflow");
        if (b == 0)
            FAULTN(1, "modulo by zero");
        stack_.push_back(b == -1 ? 0 : a % b);
        NEXT();
    }

    CASE(JMP)
    {
        TAKE_BRANCH();
        NEXT();
    }
    CASE(JZ)
    {
        if (!pop(a))
            FAULTN(1, "JZ underflow");
        if (a == 0)
            TAKE_BRANCH();
        NEXT();
    }
    CASE(JNZ)
    {
        if (!pop(a))
            FAULTN(1, "JNZ underflow");
        if (a != 0)
            TAKE_BRANCH();
        NEXT();
    }

    CASE(CALL)
    {
        if (ins->imm < 0 ||
            static_cast<size_t>(ins->imm) >= image_.functions.size())
            FAULTN(1, "CALL out of range");
        const Function &callee = image_.functions[ins->imm];
        if (stack_.size() < callee.nargs)
            FAULTN(1, "CALL arg underflow");
        Frame nf;
        nf.fn = static_cast<uint32_t>(ins->imm);
        nf.pc = 0;
        if (!localsPool_.empty()) {
            // Reuse a retired frame's heap buffer; assign() re-zeroes.
            nf.locals = std::move(localsPool_.back());
            localsPool_.pop_back();
        }
        nf.locals.assign(std::max(callee.nlocals, callee.nargs), 0);
        for (uint32_t i = 0; i < callee.nargs; i++) {
            nf.locals[callee.nargs - 1 - i] = stack_.back();
            stack_.pop_back();
        }
        // Base checks depth after popping args; keep the fault state
        // byte-identical.
        if (frames_.size() > 1024)
            FAULTN(1, "call stack overflow");
        fr->pc = ins->origPc + 1; // the return address, a leader
        frames_.push_back(std::move(nf));
        goto refetch_frame;
    }
    CASE(RET)
    {
        if (!pop(a))
            FAULTN(1, "RET underflow");
        if (localsPool_.size() < 64)
            localsPool_.push_back(std::move(frames_.back().locals));
        frames_.pop_back();
        if (frames_.empty()) {
            exitCode_ = a;
            running_ = false;
            return RunState::Done;
        }
        stack_.push_back(a);
        goto refetch_frame;
    }

    CASE(SYSCALL)
    {
        int nargs = static_cast<int>(ins->imm);
        if (static_cast<int>(stack_.size()) < nargs + 1)
            FAULTN(1, "SYSCALL underflow");
        pendingArgs_.assign(nargs, 0);
        for (int i = nargs - 1; i >= 0; i--) {
            pendingArgs_[i] = stack_.back();
            stack_.pop_back();
        }
        pendingTrap_ = static_cast<int>(stack_.back());
        stack_.pop_back();
        awaitingSyscall_ = true;
        fr->pc = ins->origPc + 1; // resume() continues at a leader
        return RunState::Syscall;
    }

    CASE(HALT)
    {
        if (!pop(a))
            FAULTN(1, "HALT underflow");
        exitCode_ = a;
        running_ = false;
        fr->pc = ins->origPc + 1;
        return RunState::Done;
    }

    // --- superinstructions ------------------------------------------------

    CASE(PUSH_ADD)
    {
        // PUSH imm; ADD. On underflow base has already pushed and
        // re-popped the immediate: net stack effect identical.
        if (stack_.empty())
            FAULTN(2, "ADD underflow");
        int64_t &tos = stack_.back();
        tos = static_cast<int64_t>(static_cast<uint64_t>(tos) +
                                   static_cast<uint64_t>(ins->imm));
        NEXT();
    }
    CASE(INC_LOCAL)
    {
        // LOADL a; PUSH imm; ADD; STOREL a — slot validated statically.
        int64_t &l = fr->locals[ins->a];
        l = static_cast<int64_t>(static_cast<uint64_t>(l) +
                                 static_cast<uint64_t>(ins->imm));
        NEXT();
    }
    CASE(LL_CMP)
    {
        stack_.push_back(
            cmpApply(ins->cmp, fr->locals[ins->a], fr->locals[ins->b]));
        NEXT();
    }
    CASE(CMP_BR)
    {
        if (!pop(b) || !pop(a))
            FAULTN(1, cmpUnderflowMsg(ins->cmp));
        if ((cmpApply(ins->cmp, a, b) != 0) == ins->brIfTrue)
            TAKE_BRANCH();
        NEXT();
    }
    CASE(LL_CMP_BR)
    {
        if ((cmpApply(ins->cmp, fr->locals[ins->a], fr->locals[ins->b]) !=
             0) == ins->brIfTrue)
            TAKE_BRANCH();
        NEXT();
    }
    CASE(LOADL_LOAD8)
    {
        int64_t addr = fr->locals[ins->a];
        if (addr < 0 || static_cast<size_t>(addr) >= mem_.size())
            FAULTN(2, "LOAD8 out of bounds");
        stack_.push_back(mem_[addr]);
        NEXT();
    }
    CASE(LOADL_LOAD32)
    {
        int64_t addr = fr->locals[ins->a];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > mem_.size())
            FAULTN(2, "LOAD32 out of bounds");
        int32_t v;
        std::memcpy(&v, mem_.data() + addr, 4);
        stack_.push_back(v);
        NEXT();
    }
    CASE(LL_STORE8)
    {
        int64_t addr = fr->locals[ins->a];
        if (addr < 0 || static_cast<size_t>(addr) >= mem_.size())
            FAULTN(3, "STORE8 out of bounds");
        mem_[addr] = static_cast<uint8_t>(fr->locals[ins->b]);
        NEXT();
    }
    CASE(LL_STORE32)
    {
        int64_t addr = fr->locals[ins->a];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > mem_.size())
            FAULTN(3, "STORE32 out of bounds");
        int32_t v = static_cast<int32_t>(fr->locals[ins->b]);
        std::memcpy(mem_.data() + addr, &v, 4);
        NEXT();
    }
    CASE(LP_STORE8)
    {
        int64_t addr = fr->locals[ins->a];
        if (addr < 0 || static_cast<size_t>(addr) >= mem_.size())
            FAULTN(3, "STORE8 out of bounds");
        mem_[addr] = static_cast<uint8_t>(ins->imm);
        NEXT();
    }
    CASE(LP_STORE32)
    {
        int64_t addr = fr->locals[ins->a];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > mem_.size())
            FAULTN(3, "STORE32 out of bounds");
        int32_t v = static_cast<int32_t>(ins->imm);
        std::memcpy(mem_.data() + addr, &v, 4);
        NEXT();
    }

    CASE(LP_CMP_BR)
    {
        if ((cmpApply(ins->cmp, fr->locals[ins->a], ins->imm2) != 0) ==
            ins->brIfTrue)
            TAKE_BRANCH();
        NEXT();
    }
    CASE(LL_BIN_SL)
    {
        // Slots validated statically, binop total: no fault path.
        fr->locals[ins->c] =
            binApply(ins->cmp, fr->locals[ins->a], fr->locals[ins->b]);
        NEXT();
    }
    CASE(LP_BIN_SL)
    {
        fr->locals[ins->c] =
            binApply(ins->cmp, fr->locals[ins->a], ins->imm2);
        NEXT();
    }

    CASE(BADOP) { FAULTN(1, "illegal opcode"); }

#if !BSX_EMVM_CGOTO
          default:
            FAULTN(1, "illegal opcode");
        }
    }
#endif

#undef CASE
#undef NEXT
#undef TAKE_BRANCH
#undef FAULTN
#undef FETCH
}

bool
Vm::execTrace(const Trace &tr, jsvm::InterruptToken *token, int &check)
{
    Frame &fr = frames_.back();
    if (traceRegs_.size() < tr.nregs)
        traceRegs_.resize(tr.nregs);
    int64_t *R = traceRegs_.data();
    // Stable across the whole trace: trace ops never resize locals or
    // memory (CALL/SYSCALL always deopt first), so the data pointers can
    // live in registers instead of being re-derived per op.
    int64_t *L = fr.locals.data();
    uint8_t *M = mem_.data();
    const size_t msize = mem_.size();
    const TOp *ops = tr.ops.data();
    const size_t nops = tr.ops.size();
    const TOp *t = nullptr;
    size_t i = 0;

    // Truthful accounting accumulates in registers; every way out of the
    // trace — side exit, fault, WorkerTerminated — flushes to the Vm.
    int64_t ret = 0;
    int chk = check;

    // Deopt: rebuild the operand stack the base interpreter would have
    // at this point from the map's virtual registers (bottom→top).
    auto materialize = [&](int32_t map) {
        if (map >= 0) {
            for (int32_t r : tr.maps[map])
                stack_.push_back(R[r]);
        }
    };
    auto traceFault = [&](const char *msg) {
        retired_ += ret;
        check = chk;
        materialize(t->map);
        fr.pc = t->exitPc + 1;
        fault(msg);
        return false;
    };
    auto sideExit = [&]() {
        retired_ += ret;
        check = chk;
        materialize(t->map);
        fr.pc = t->exitPc;
        return true;
    };

// Per-op accounting + the termination cadence: an infinite traced loop
// still hits the InterruptToken window, with counters flushed before the
// unwind (and before a fiber switch) so observers never see stale state.
#define TACCOUNT()                                                         \
    do {                                                                   \
        ret += t->nOrig;                                                   \
        chk += t->nOrig;                                                   \
        if (chk >= 4096) {                                                 \
            chk = 0;                                                       \
            retired_ += ret;                                               \
            ret = 0;                                                       \
            check = 0;                                                     \
            if (token && token->interrupted())                             \
                throw jsvm::WorkerTerminated{};                            \
            jsvm::Fiber::maybeYield();                                     \
        }                                                                  \
    } while (0)

#if BSX_EMVM_CGOTO
    static const void *const kTLabels[] = {
        &&T_MOVI, &&T_LDL, &&T_STL, &&T_INCL, &&T_ADD, &&T_SUB, &&T_MUL,
        &&T_AND, &&T_OR, &&T_XOR, &&T_SHL, &&T_SHR, &&T_DIVS, &&T_MODS,
        &&T_EQ, &&T_NE, &&T_LT, &&T_LE, &&T_GT, &&T_GE, &&T_ADDI,
        &&T_LD8, &&T_LD32, &&T_LD64, &&T_ST8, &&T_ST32, &&T_ST64,
        &&T_JMP, &&T_BRZ, &&T_BRNZ, &&T_EXIT, &&T_NOPC, &&T_CMPBRLL,
        &&T_CMPBRLI, &&T_CMPBRRI, &&T_BINL, &&T_BINLI, &&T_BINRLL,
        &&T_BINRLI, &&T_LD8L, &&T_LD32L, &&T_LD64L, &&T_ST8LL,
        &&T_ST32LL, &&T_ST64LL, &&T_ST8LI, &&T_ST32LI, &&T_ST64LI,
    };
    static_assert(sizeof(kTLabels) / sizeof(kTLabels[0]) ==
                      static_cast<size_t>(TOpc::COUNT),
                  "trace dispatch table matches TOpc");
#define TCASE(x) T_##x:
// Replicated dispatch sites (one indirect branch per handler) so the
// host branch predictor learns per-op successor patterns.
#define TDISPATCH()                                                        \
    do {                                                                   \
        if (i >= nops)                                                     \
            goto trace_end;                                                \
        t = &ops[i];                                                       \
        TACCOUNT();                                                        \
        goto *kTLabels[static_cast<size_t>(t->op)];                       \
    } while (0)
#define TNEXT()                                                            \
    do {                                                                   \
        i++;                                                               \
        TDISPATCH();                                                       \
    } while (0)
#define TJUMP(d)                                                           \
    {                                                                      \
        i = static_cast<size_t>(d);                                        \
        TDISPATCH();                                                       \
    }
    TDISPATCH();
#else
#define TCASE(x) case TOpc::x:
#define TNEXT() break
#define TJUMP(d)                                                           \
    {                                                                      \
        i = static_cast<size_t>(d);                                        \
        continue;                                                          \
    }
    for (;;) {
        if (i >= nops)
            goto trace_end;
        t = &ops[i];
        TACCOUNT();
        switch (t->op) {
#endif

    TCASE(MOVI)
    {
        R[t->a] = t->imm;
        TNEXT();
    }
    TCASE(LDL)
    {
        R[t->a] = L[t->b];
        TNEXT();
    }
    TCASE(STL)
    {
        L[t->b] = R[t->a];
        TNEXT();
    }
    TCASE(INCL)
    {
        L[t->a] = static_cast<int64_t>(static_cast<uint64_t>(L[t->a]) +
                                       static_cast<uint64_t>(t->imm));
        TNEXT();
    }
#define TBIN(name, expr)                                                   \
    TCASE(name)                                                            \
    {                                                                      \
        int64_t x = R[t->b], y = R[t->c];                                  \
        (void)x;                                                           \
        (void)y;                                                           \
        R[t->a] = (expr);                                                  \
        TNEXT();                                                           \
    }
    TBIN(ADD, static_cast<int64_t>(static_cast<uint64_t>(x) +
                                   static_cast<uint64_t>(y)))
    TBIN(SUB, static_cast<int64_t>(static_cast<uint64_t>(x) -
                                   static_cast<uint64_t>(y)))
    TBIN(MUL, static_cast<int64_t>(static_cast<uint64_t>(x) *
                                   static_cast<uint64_t>(y)))
    TBIN(AND, x & y)
    TBIN(OR, x | y)
    TBIN(XOR, x ^ y)
    TBIN(SHL, static_cast<int64_t>(static_cast<uint64_t>(x) << (y & 63)))
    TBIN(SHR, static_cast<int64_t>(static_cast<uint64_t>(x) >> (y & 63)))
    TBIN(EQ, x == y ? 1 : 0)
    TBIN(NE, x != y ? 1 : 0)
    TBIN(LT, x < y ? 1 : 0)
    TBIN(LE, x <= y ? 1 : 0)
    TBIN(GT, x > y ? 1 : 0)
    TBIN(GE, x >= y ? 1 : 0)
#undef TBIN
    TCASE(DIVS)
    {
        int64_t x = R[t->b], y = R[t->c];
        if (y == 0)
            return traceFault("division by zero");
        R[t->a] = y == -1 ? static_cast<int64_t>(-static_cast<uint64_t>(x))
                          : x / y;
        TNEXT();
    }
    TCASE(MODS)
    {
        int64_t x = R[t->b], y = R[t->c];
        if (y == 0)
            return traceFault("modulo by zero");
        R[t->a] = y == -1 ? 0 : x % y;
        TNEXT();
    }
    TCASE(ADDI)
    {
        R[t->a] = static_cast<int64_t>(static_cast<uint64_t>(R[t->b]) +
                                       static_cast<uint64_t>(t->imm));
        TNEXT();
    }
    TCASE(LD8)
    {
        int64_t addr = R[t->b];
        if (addr < 0 || static_cast<size_t>(addr) >= msize)
            return traceFault("LOAD8 out of bounds");
        R[t->a] = M[addr];
        TNEXT();
    }
    TCASE(LD32)
    {
        int64_t addr = R[t->b];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > msize)
            return traceFault("LOAD32 out of bounds");
        int32_t v;
        std::memcpy(&v, M + addr, 4);
        R[t->a] = v;
        TNEXT();
    }
    TCASE(LD64)
    {
        int64_t addr = R[t->b];
        if (addr < 0 || static_cast<size_t>(addr) + 8 > msize)
            return traceFault("LOAD64 out of bounds");
        int64_t v;
        std::memcpy(&v, M + addr, 8);
        R[t->a] = v;
        TNEXT();
    }
    TCASE(ST8)
    {
        int64_t addr = R[t->a];
        if (addr < 0 || static_cast<size_t>(addr) >= msize)
            return traceFault("STORE8 out of bounds");
        M[addr] = static_cast<uint8_t>(R[t->b]);
        TNEXT();
    }
    TCASE(ST32)
    {
        int64_t addr = R[t->a];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > msize)
            return traceFault("STORE32 out of bounds");
        int32_t v = static_cast<int32_t>(R[t->b]);
        std::memcpy(M + addr, &v, 4);
        TNEXT();
    }
    TCASE(ST64)
    {
        int64_t addr = R[t->a];
        if (addr < 0 || static_cast<size_t>(addr) + 8 > msize)
            return traceFault("STORE64 out of bounds");
        int64_t v = R[t->b];
        std::memcpy(M + addr, &v, 8);
        TNEXT();
    }
    TCASE(JMP)
    {
        if (t->dest == kTraceDestTop)
            TJUMP(0)
        TJUMP(t->dest)
    }
    TCASE(BRZ)
    {
        if (R[t->a] == 0)
            goto t_branch_taken;
        TNEXT();
    }
    TCASE(BRNZ)
    {
        if (R[t->a] != 0)
            goto t_branch_taken;
        TNEXT();
    }
    t_branch_taken:
    {
        if (t->dest == kTraceDestTop)
            TJUMP(0)
        if (t->dest == kTraceDestExit)
            return sideExit();
        TJUMP(t->dest)
    }
    TCASE(EXIT) { return sideExit(); }
    TCASE(NOPC) { TNEXT(); }

    // --- peephole-fused forms (see peepholeTrace) ---------------------
    TCASE(CMPBRLL)
    {
        if (tbinApply(static_cast<TOpc>(t->a), L[t->b], L[t->c]) != 0)
            goto t_branch_taken;
        TNEXT();
    }
    TCASE(CMPBRLI)
    {
        if (tbinApply(static_cast<TOpc>(t->a), L[t->b], t->imm) != 0)
            goto t_branch_taken;
        TNEXT();
    }
    TCASE(CMPBRRI)
    {
        if (tbinApply(static_cast<TOpc>(t->a), R[t->b], t->imm) != 0)
            goto t_branch_taken;
        TNEXT();
    }
    TCASE(BINL)
    {
        L[t->a] = tbinApply(static_cast<TOpc>(t->imm), L[t->b], L[t->c]);
        TNEXT();
    }
    TCASE(BINLI)
    {
        L[t->a] = tbinApply(static_cast<TOpc>(t->c), L[t->b], t->imm);
        TNEXT();
    }
    TCASE(BINRLL)
    {
        R[t->a] = tbinApply(static_cast<TOpc>(t->imm), L[t->b], L[t->c]);
        TNEXT();
    }
    TCASE(BINRLI)
    {
        R[t->a] = tbinApply(static_cast<TOpc>(t->c), L[t->b], t->imm);
        TNEXT();
    }
    TCASE(LD8L)
    {
        int64_t addr = L[t->b];
        if (addr < 0 || static_cast<size_t>(addr) >= msize)
            return traceFault("LOAD8 out of bounds");
        R[t->a] = M[addr];
        TNEXT();
    }
    TCASE(LD32L)
    {
        int64_t addr = L[t->b];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > msize)
            return traceFault("LOAD32 out of bounds");
        int32_t v;
        std::memcpy(&v, M + addr, 4);
        R[t->a] = v;
        TNEXT();
    }
    TCASE(LD64L)
    {
        int64_t addr = L[t->b];
        if (addr < 0 || static_cast<size_t>(addr) + 8 > msize)
            return traceFault("LOAD64 out of bounds");
        int64_t v;
        std::memcpy(&v, M + addr, 8);
        R[t->a] = v;
        TNEXT();
    }
    TCASE(ST8LL)
    {
        int64_t addr = L[t->a];
        if (addr < 0 || static_cast<size_t>(addr) >= msize)
            return traceFault("STORE8 out of bounds");
        M[addr] = static_cast<uint8_t>(L[t->b]);
        TNEXT();
    }
    TCASE(ST32LL)
    {
        int64_t addr = L[t->a];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > msize)
            return traceFault("STORE32 out of bounds");
        int32_t v = static_cast<int32_t>(L[t->b]);
        std::memcpy(M + addr, &v, 4);
        TNEXT();
    }
    TCASE(ST64LL)
    {
        int64_t addr = L[t->a];
        if (addr < 0 || static_cast<size_t>(addr) + 8 > msize)
            return traceFault("STORE64 out of bounds");
        int64_t v = L[t->b];
        std::memcpy(M + addr, &v, 8);
        TNEXT();
    }
    TCASE(ST8LI)
    {
        int64_t addr = L[t->a];
        if (addr < 0 || static_cast<size_t>(addr) >= msize)
            return traceFault("STORE8 out of bounds");
        M[addr] = static_cast<uint8_t>(t->imm);
        TNEXT();
    }
    TCASE(ST32LI)
    {
        int64_t addr = L[t->a];
        if (addr < 0 || static_cast<size_t>(addr) + 4 > msize)
            return traceFault("STORE32 out of bounds");
        int32_t v = static_cast<int32_t>(t->imm);
        std::memcpy(M + addr, &v, 4);
        TNEXT();
    }
    TCASE(ST64LI)
    {
        int64_t addr = L[t->a];
        if (addr < 0 || static_cast<size_t>(addr) + 8 > msize)
            return traceFault("STORE64 out of bounds");
        int64_t v = t->imm;
        std::memcpy(M + addr, &v, 8);
        TNEXT();
    }

#if !BSX_EMVM_CGOTO
          default:
            break;
        }
        i++;
    }
#endif

trace_end:
    // Unreachable: every translated path ends in EXIT/JMP/BR.
    retired_ += ret;
    check = chk;
    jsvm::panic("emvm trace fell off the end");
    return false;
#undef TCASE
#undef TNEXT
#undef TJUMP
#undef TDISPATCH
#undef TACCOUNT
}

std::vector<uint8_t>
Vm::snapshot() const
{
    std::vector<uint8_t> out = {'B', 'S', 'X', 'S', 'N', 'A', 'P', '1'};
    out.reserve(out.size() + mem_.size() + 16);
    put32(out, static_cast<uint32_t>(mem_.size()));
    out.insert(out.end(), mem_.begin(), mem_.end());
    put32(out, static_cast<uint32_t>(stack_.size()));
    for (int64_t v : stack_)
        put64(out, static_cast<uint64_t>(v));
    put32(out, static_cast<uint32_t>(frames_.size()));
    for (const auto &fr : frames_) {
        put32(out, fr.fn);
        put32(out, fr.pc);
        put32(out, static_cast<uint32_t>(fr.locals.size()));
        for (int64_t v : fr.locals)
            put64(out, static_cast<uint64_t>(v));
    }
    out.push_back(awaitingSyscall_ ? 1 : 0);
    out.push_back(running_ ? 1 : 0);
    return out;
}

bool
Vm::restore(const Image &image, const std::vector<uint8_t> &snap, Vm &out)
{
    if (snap.size() < 8 || std::memcmp(snap.data(), "BSXSNAP1", 8) != 0)
        return false;
    Reader r{snap.data(), snap.size(), 8};
    out.image_ = image;
    // Translations and profile state belong to the old image; rebuild
    // lazily. Counters stay truthful: a restored Vm starts fresh.
    out.tfns_.clear();
    out.stats_ = VmStats{};
    out.retired_ = 0;
    uint32_t memsz = r.u32();
    if (!r.ok || memsz > (256u << 20))
        return false;
    out.mem_.resize(memsz);
    if (memsz && !r.bytes(out.mem_.data(), memsz))
        return false;
    uint32_t stksz = r.u32();
    if (!r.ok || stksz > (1u << 22))
        return false;
    out.stack_.resize(stksz);
    for (uint32_t i = 0; i < stksz; i++)
        out.stack_[i] = static_cast<int64_t>(r.u64());
    uint32_t nframes = r.u32();
    if (!r.ok || nframes > 65536)
        return false;
    out.frames_.clear();
    for (uint32_t i = 0; i < nframes && r.ok; i++) {
        Frame fr;
        fr.fn = r.u32();
        fr.pc = r.u32();
        uint32_t nl = r.u32();
        if (!r.ok || nl > (1u << 20))
            return false;
        fr.locals.resize(nl);
        for (uint32_t j = 0; j < nl; j++)
            fr.locals[j] = static_cast<int64_t>(r.u64());
        if (fr.fn >= image.functions.size())
            return false;
        // Frames are always built with max(nlocals, nargs) slots (start()
        // and CALL); the fused/trace tiers rely on that invariant instead
        // of bounds-checking every local access, so a hostile snapshot
        // with a short locals array must be rejected here, not executed.
        const Function &ffn = image.functions[fr.fn];
        if (nl != std::max<uint32_t>(ffn.nlocals, ffn.nargs))
            return false;
        out.frames_.push_back(std::move(fr));
    }
    if (r.off + 2 > r.len)
        return false;
    out.awaitingSyscall_ = snap[r.off] != 0;
    out.running_ = snap[r.off + 1] != 0;
    return r.ok;
}

} // namespace emvm
} // namespace browsix
