#include "runtime/emvm/vm.h"

#include <cstring>

#include "jsvm/fiber.h"
#include "jsvm/util.h"

namespace browsix {
namespace emvm {

namespace {

constexpr char kMagic[] = "BSXBC1\n";
constexpr size_t kMagicLen = 7;

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    size_t n = out.size();
    out.resize(n + 4);
    std::memcpy(out.data() + n, &v, 4);
}

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    size_t n = out.size();
    out.resize(n + 8);
    std::memcpy(out.data() + n, &v, 8);
}

struct Reader
{
    const uint8_t *p;
    size_t len;
    size_t off = 0;
    bool ok = true;

    uint32_t u32()
    {
        if (off + 4 > len) {
            ok = false;
            return 0;
        }
        uint32_t v;
        std::memcpy(&v, p + off, 4);
        off += 4;
        return v;
    }
    uint64_t u64()
    {
        if (off + 8 > len) {
            ok = false;
            return 0;
        }
        uint64_t v;
        std::memcpy(&v, p + off, 8);
        off += 8;
        return v;
    }
    std::string str()
    {
        uint32_t n = u32();
        if (!ok || off + n > len) {
            ok = false;
            return "";
        }
        std::string s(reinterpret_cast<const char *>(p + off), n);
        off += n;
        return s;
    }
    bool bytes(uint8_t *dst, size_t n)
    {
        if (off + n > len) {
            ok = false;
            return false;
        }
        std::memcpy(dst, p + off, n);
        off += n;
        return true;
    }
};

} // namespace

int
Image::functionIndex(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); i++) {
        if (functions[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<uint8_t>
Image::serialize() const
{
    std::vector<uint8_t> out(kMagic, kMagic + kMagicLen);
    put32(out, static_cast<uint32_t>(functions.size()));
    for (const auto &f : functions) {
        put32(out, static_cast<uint32_t>(f.name.size()));
        out.insert(out.end(), f.name.begin(), f.name.end());
        put32(out, f.nargs);
        put32(out, f.nlocals);
        put32(out, static_cast<uint32_t>(f.code.size()));
        for (const auto &ins : f.code) {
            out.push_back(static_cast<uint8_t>(ins.op));
            put64(out, static_cast<uint64_t>(ins.imm));
        }
    }
    put32(out, memSize);
    put32(out, static_cast<uint32_t>(initData.size()));
    out.insert(out.end(), initData.begin(), initData.end());
    return out;
}

bool
Image::isImage(const uint8_t *data, size_t len)
{
    return len >= kMagicLen && std::memcmp(data, kMagic, kMagicLen) == 0;
}

bool
Image::deserialize(const std::vector<uint8_t> &bytes, Image &out)
{
    if (!isImage(bytes.data(), bytes.size()))
        return false;
    Reader r{bytes.data(), bytes.size(), kMagicLen};
    uint32_t nfn = r.u32();
    if (nfn > 4096)
        return false;
    out.functions.clear();
    for (uint32_t i = 0; i < nfn && r.ok; i++) {
        Function f;
        f.name = r.str();
        f.nargs = r.u32();
        f.nlocals = r.u32();
        uint32_t n = r.u32();
        if (!r.ok || n > 1u << 22)
            return false;
        f.code.resize(n);
        for (uint32_t j = 0; j < n && r.ok; j++) {
            if (r.off >= r.len) {
                r.ok = false;
                break;
            }
            f.code[j].op = static_cast<Op>(r.p[r.off++]);
            f.code[j].imm = static_cast<int64_t>(r.u64());
        }
        out.functions.push_back(std::move(f));
    }
    out.memSize = r.u32();
    uint32_t dlen = r.u32();
    if (!r.ok || dlen > (64u << 20))
        return false;
    out.initData.resize(dlen);
    if (dlen && !r.bytes(out.initData.data(), dlen))
        return false;
    return r.ok;
}

Vm::Vm(Image image) : image_(std::move(image))
{
    mem_.assign(std::max<uint32_t>(image_.memSize, 64), 0);
    if (!image_.initData.empty()) {
        size_t n = std::min(image_.initData.size(), mem_.size());
        std::memcpy(mem_.data(), image_.initData.data(), n);
    }
}

bool
Vm::start(const std::string &name, const std::vector<int64_t> &args)
{
    int fn = image_.functionIndex(name);
    if (fn < 0)
        return false;
    const Function &f = image_.functions[fn];
    Frame frame;
    frame.fn = static_cast<uint32_t>(fn);
    frame.pc = 0;
    frame.locals.assign(std::max<uint32_t>(f.nlocals, f.nargs), 0);
    for (size_t i = 0; i < args.size() && i < frame.locals.size(); i++)
        frame.locals[i] = args[i];
    frames_.clear();
    stack_.clear();
    frames_.push_back(std::move(frame));
    running_ = true;
    awaitingSyscall_ = false;
    return true;
}

RunState
Vm::fault(const std::string &msg)
{
    trapMsg_ = msg;
    running_ = false;
    return RunState::Trapped;
}

void
Vm::resume(int64_t syscall_result)
{
    if (!awaitingSyscall_)
        jsvm::panic("Vm::resume without pending syscall");
    awaitingSyscall_ = false;
    stack_.push_back(syscall_result);
}

std::string
Vm::memStr(uint64_t addr) const
{
    std::string out;
    while (addr < mem_.size() && mem_[addr] != 0)
        out.push_back(static_cast<char>(mem_[addr++]));
    return out;
}

bool
Vm::memWrite(uint64_t addr, const uint8_t *data, size_t len)
{
    if (addr + len > mem_.size())
        return false;
    std::memcpy(mem_.data() + addr, data, len);
    return true;
}

bool
Vm::memRead(uint64_t addr, uint8_t *out, size_t len) const
{
    if (addr + len > mem_.size())
        return false;
    std::memcpy(out, mem_.data() + addr, len);
    return true;
}

RunState
Vm::run(jsvm::InterruptToken *token)
{
    if (awaitingSyscall_)
        jsvm::panic("Vm::run while awaiting a syscall result");
    if (!running_ || frames_.empty())
        return fault("vm not started");

    auto pop = [this](int64_t &v) -> bool {
        if (stack_.empty())
            return false;
        v = stack_.back();
        stack_.pop_back();
        return true;
    };

    int check = 0;
    for (;;) {
        if (++check >= 4096) {
            check = 0;
            if (token && token->interrupted())
                throw jsvm::WorkerTerminated{};
            // Pooled execution: give the scheduler a time-slice boundary so
            // a compute-bound guest cannot monopolize a pool thread.
            jsvm::Fiber::maybeYield();
        }
        Frame &fr = frames_.back();
        const Function &fn = image_.functions[fr.fn];
        if (fr.pc >= fn.code.size())
            return fault("pc out of range in " + fn.name);
        const Instr ins = fn.code[fr.pc++];
        retired_++;

        int64_t a, b;
        switch (ins.op) {
          case Op::NOP:
            break;
          case Op::PUSH:
            stack_.push_back(ins.imm);
            break;
          case Op::DUP:
            if (stack_.empty())
                return fault("DUP on empty stack");
            stack_.push_back(stack_.back());
            break;
          case Op::POP:
            if (!pop(a))
                return fault("POP on empty stack");
            break;
          case Op::SWAP:
            if (stack_.size() < 2)
                return fault("SWAP underflow");
            std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
            break;
          case Op::LOADL:
            if (ins.imm < 0 ||
                static_cast<size_t>(ins.imm) >= fr.locals.size())
                return fault("LOADL out of range");
            stack_.push_back(fr.locals[ins.imm]);
            break;
          case Op::STOREL:
            if (ins.imm < 0 ||
                static_cast<size_t>(ins.imm) >= fr.locals.size())
                return fault("STOREL out of range");
            if (!pop(a))
                return fault("STOREL underflow");
            fr.locals[ins.imm] = a;
            break;
          case Op::LOAD8:
            if (!pop(a))
                return fault("LOAD8 underflow");
            if (a < 0 || static_cast<size_t>(a) >= mem_.size())
                return fault("LOAD8 out of bounds");
            stack_.push_back(mem_[a]);
            break;
          case Op::LOAD32: {
            if (!pop(a))
                return fault("LOAD32 underflow");
            if (a < 0 || static_cast<size_t>(a) + 4 > mem_.size())
                return fault("LOAD32 out of bounds");
            int32_t v;
            std::memcpy(&v, mem_.data() + a, 4);
            stack_.push_back(v);
            break;
          }
          case Op::LOAD64: {
            if (!pop(a))
                return fault("LOAD64 underflow");
            if (a < 0 || static_cast<size_t>(a) + 8 > mem_.size())
                return fault("LOAD64 out of bounds");
            int64_t v;
            std::memcpy(&v, mem_.data() + a, 8);
            stack_.push_back(v);
            break;
          }
          case Op::STORE8:
            if (!pop(b) || !pop(a))
                return fault("STORE8 underflow");
            if (a < 0 || static_cast<size_t>(a) >= mem_.size())
                return fault("STORE8 out of bounds");
            mem_[a] = static_cast<uint8_t>(b);
            break;
          case Op::STORE32: {
            if (!pop(b) || !pop(a))
                return fault("STORE32 underflow");
            if (a < 0 || static_cast<size_t>(a) + 4 > mem_.size())
                return fault("STORE32 out of bounds");
            int32_t v = static_cast<int32_t>(b);
            std::memcpy(mem_.data() + a, &v, 4);
            break;
          }
          case Op::STORE64:
            if (!pop(b) || !pop(a))
                return fault("STORE64 underflow");
            if (a < 0 || static_cast<size_t>(a) + 8 > mem_.size())
                return fault("STORE64 out of bounds");
            std::memcpy(mem_.data() + a, &b, 8);
            break;

#define BINOP(name, expr)                                                  \
  case Op::name:                                                           \
    if (!pop(b) || !pop(a))                                                \
        return fault(#name " underflow");                                  \
    stack_.push_back(expr);                                                \
    break;
          // Arithmetic wraps mod 2^64 (JS-engine semantics): compute in
          // uint64_t, where overflow is defined, and cast back.
          BINOP(ADD, static_cast<int64_t>(static_cast<uint64_t>(a) +
                                          static_cast<uint64_t>(b)))
          BINOP(SUB, static_cast<int64_t>(static_cast<uint64_t>(a) -
                                          static_cast<uint64_t>(b)))
          BINOP(MUL, static_cast<int64_t>(static_cast<uint64_t>(a) *
                                          static_cast<uint64_t>(b)))
          BINOP(AND, a & b)
          BINOP(OR, a | b)
          BINOP(XOR, a ^ b)
          BINOP(SHL, static_cast<int64_t>(static_cast<uint64_t>(a)
                                          << (b & 63)))
          BINOP(SHR, static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                          (b & 63)))
          BINOP(EQ, a == b ? 1 : 0)
          BINOP(NE, a != b ? 1 : 0)
          BINOP(LT, a < b ? 1 : 0)
          BINOP(LE, a <= b ? 1 : 0)
          BINOP(GT, a > b ? 1 : 0)
          BINOP(GE, a >= b ? 1 : 0)
#undef BINOP
          case Op::DIVS:
            if (!pop(b) || !pop(a))
                return fault("DIVS underflow");
            if (b == 0)
                return fault("division by zero");
            // INT64_MIN / -1 overflows; wrap like the multiply does.
            stack_.push_back(b == -1 ? static_cast<int64_t>(
                                           -static_cast<uint64_t>(a))
                                     : a / b);
            break;
          case Op::MODS:
            if (!pop(b) || !pop(a))
                return fault("MODS underflow");
            if (b == 0)
                return fault("modulo by zero");
            stack_.push_back(b == -1 ? 0 : a % b);
            break;

          case Op::JMP:
            fr.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Op::JZ:
            if (!pop(a))
                return fault("JZ underflow");
            if (a == 0)
                fr.pc = static_cast<uint32_t>(ins.imm);
            break;
          case Op::JNZ:
            if (!pop(a))
                return fault("JNZ underflow");
            if (a != 0)
                fr.pc = static_cast<uint32_t>(ins.imm);
            break;

          case Op::CALL: {
            if (ins.imm < 0 ||
                static_cast<size_t>(ins.imm) >= image_.functions.size())
                return fault("CALL out of range");
            const Function &callee = image_.functions[ins.imm];
            if (stack_.size() < callee.nargs)
                return fault("CALL arg underflow");
            Frame nf;
            nf.fn = static_cast<uint32_t>(ins.imm);
            nf.pc = 0;
            nf.locals.assign(
                std::max(callee.nlocals, callee.nargs), 0);
            for (uint32_t i = 0; i < callee.nargs; i++) {
                nf.locals[callee.nargs - 1 - i] = stack_.back();
                stack_.pop_back();
            }
            if (frames_.size() > 1024)
                return fault("call stack overflow");
            frames_.push_back(std::move(nf));
            break;
          }
          case Op::RET: {
            if (!pop(a))
                return fault("RET underflow");
            frames_.pop_back();
            if (frames_.empty()) {
                exitCode_ = a;
                running_ = false;
                return RunState::Done;
            }
            stack_.push_back(a);
            break;
          }

          case Op::SYSCALL: {
            int nargs = static_cast<int>(ins.imm);
            if (static_cast<int>(stack_.size()) < nargs + 1)
                return fault("SYSCALL underflow");
            pendingArgs_.assign(nargs, 0);
            for (int i = nargs - 1; i >= 0; i--) {
                pendingArgs_[i] = stack_.back();
                stack_.pop_back();
            }
            pendingTrap_ = static_cast<int>(stack_.back());
            stack_.pop_back();
            awaitingSyscall_ = true;
            return RunState::Syscall;
          }

          case Op::HALT:
            if (!pop(a))
                return fault("HALT underflow");
            exitCode_ = a;
            running_ = false;
            return RunState::Done;

          default:
            return fault("illegal opcode");
        }
    }
}

std::vector<uint8_t>
Vm::snapshot() const
{
    std::vector<uint8_t> out = {'B', 'S', 'X', 'S', 'N', 'A', 'P', '1'};
    out.reserve(out.size() + mem_.size() + 16);
    put32(out, static_cast<uint32_t>(mem_.size()));
    out.insert(out.end(), mem_.begin(), mem_.end());
    put32(out, static_cast<uint32_t>(stack_.size()));
    for (int64_t v : stack_)
        put64(out, static_cast<uint64_t>(v));
    put32(out, static_cast<uint32_t>(frames_.size()));
    for (const auto &fr : frames_) {
        put32(out, fr.fn);
        put32(out, fr.pc);
        put32(out, static_cast<uint32_t>(fr.locals.size()));
        for (int64_t v : fr.locals)
            put64(out, static_cast<uint64_t>(v));
    }
    out.push_back(awaitingSyscall_ ? 1 : 0);
    out.push_back(running_ ? 1 : 0);
    return out;
}

bool
Vm::restore(const Image &image, const std::vector<uint8_t> &snap, Vm &out)
{
    if (snap.size() < 8 || std::memcmp(snap.data(), "BSXSNAP1", 8) != 0)
        return false;
    Reader r{snap.data(), snap.size(), 8};
    out.image_ = image;
    uint32_t memsz = r.u32();
    if (!r.ok || memsz > (256u << 20))
        return false;
    out.mem_.resize(memsz);
    if (memsz && !r.bytes(out.mem_.data(), memsz))
        return false;
    uint32_t stksz = r.u32();
    if (!r.ok || stksz > (1u << 22))
        return false;
    out.stack_.resize(stksz);
    for (uint32_t i = 0; i < stksz; i++)
        out.stack_[i] = static_cast<int64_t>(r.u64());
    uint32_t nframes = r.u32();
    if (!r.ok || nframes > 65536)
        return false;
    out.frames_.clear();
    for (uint32_t i = 0; i < nframes && r.ok; i++) {
        Frame fr;
        fr.fn = r.u32();
        fr.pc = r.u32();
        uint32_t nl = r.u32();
        if (!r.ok || nl > (1u << 20))
            return false;
        fr.locals.resize(nl);
        for (uint32_t j = 0; j < nl; j++)
            fr.locals[j] = static_cast<int64_t>(r.u64());
        if (fr.fn >= image.functions.size())
            return false;
        out.frames_.push_back(std::move(fr));
    }
    if (r.off + 2 > r.len)
        return false;
    out.awaitingSyscall_ = snap[r.off] != 0;
    out.running_ = snap[r.off + 1] != 0;
    return r.ok;
}

} // namespace emvm
} // namespace browsix
