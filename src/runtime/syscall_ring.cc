#include "runtime/syscall_ring.h"

#include <cstring>

#include "jsvm/sab.h"

namespace browsix {
namespace sys {

bool
RingLayout::valid(int64_t base, int64_t entries, size_t heap_bytes)
{
    if (base < 0 || base % 4 != 0)
        return false;
    if (entries <= 0 || entries > 4096 ||
        (entries & (entries - 1)) != 0)
        return false;
    size_t need = bytesFor(static_cast<uint32_t>(entries));
    return static_cast<size_t>(base) <= heap_bytes &&
           need <= heap_bytes - static_cast<size_t>(base);
}

void
RingLayout::writeSqe(jsvm::SharedArrayBuffer &heap, uint32_t slot,
                     const Sqe &e) const
{
    int32_t words[8] = {e.trap,     static_cast<int32_t>(e.seq),
                        e.args[0],  e.args[1],
                        e.args[2],  e.args[3],
                        e.args[4],  e.args[5]};
    std::memcpy(heap.data() + sqeOff(slot), words, sizeof(words));
}

Sqe
RingLayout::readSqe(const jsvm::SharedArrayBuffer &heap, uint32_t slot) const
{
    int32_t words[8];
    std::memcpy(words, heap.data() + sqeOff(slot), sizeof(words));
    Sqe e;
    e.trap = words[0];
    e.seq = static_cast<uint32_t>(words[1]);
    for (int i = 0; i < 6; i++)
        e.args[i] = words[2 + i];
    return e;
}

void
RingLayout::writeCqe(jsvm::SharedArrayBuffer &heap, uint32_t slot,
                     const Cqe &e) const
{
    int32_t words[4] = {static_cast<int32_t>(e.seq), e.r0, e.r1, 0};
    std::memcpy(heap.data() + cqeOff(slot), words, sizeof(words));
}

Cqe
RingLayout::readCqe(const jsvm::SharedArrayBuffer &heap, uint32_t slot) const
{
    int32_t words[4];
    std::memcpy(words, heap.data() + cqeOff(slot), sizeof(words));
    Cqe e;
    e.seq = static_cast<uint32_t>(words[0]);
    e.r0 = words[1];
    e.r1 = words[2];
    return e;
}

} // namespace sys
} // namespace browsix
