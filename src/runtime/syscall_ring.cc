#include "runtime/syscall_ring.h"

#include <cstring>

#include "jsvm/sab.h"
#include "runtime/syscall_proto.h"

namespace browsix {
namespace sys {

namespace {

/** [off, off+len) lies fully inside a heap of `heap` bytes. */
bool
spanOk(int32_t off, int64_t len, size_t heap)
{
    if (off < 0 || len < 0)
        return false;
    return static_cast<size_t>(off) <= heap &&
           static_cast<size_t>(len) <= heap - static_cast<size_t>(off);
}

/** A NUL-terminated string may start at off (the scan is heap-clamped). */
bool
strOk(int32_t off, size_t heap)
{
    return off >= 0 && static_cast<size_t>(off) < heap;
}

} // namespace

namespace {

/** Vectored traps: the iovec array must fit, and every entry's span must
 * fit. Out-of-range counts pass untouched — the handler's EINVAL must
 * not differ between the sync and ring conventions. */
bool
iovecArgsOk(const jsvm::SharedArrayBuffer &heap, int32_t arr, int32_t cnt)
{
    if (cnt < 1 || cnt > kIovMax)
        return true; // handler territory: EINVAL, not EFAULT
    size_t heap_bytes = heap.size();
    if (!spanOk(arr, static_cast<int64_t>(cnt) * IOVEC_BYTES, heap_bytes))
        return false;
    for (int32_t i = 0; i < cnt; i++) {
        IoVec iov;
        std::memcpy(&iov,
                    heap.data() + static_cast<uint32_t>(arr) +
                        i * IOVEC_BYTES,
                    IOVEC_BYTES);
        if (!spanOk(iov.ptr, iov.len, heap_bytes))
            return false;
    }
    return true;
}

} // namespace

bool
sqeHeapArgsValid(const Sqe &e, const jsvm::SharedArrayBuffer &heap)
{
    const size_t heap_bytes = heap.size();
    const std::array<int32_t, 6> &a = e.args;
    switch (e.trap) {
      case READ:
      case WRITE:
      case PREAD:
      case PWRITE:
      case GETDENTS:
      case GETDENTS64:
        return spanOk(a[1], a[2], heap_bytes); // (fd, buf, len, ...)
      case READV:
      case WRITEV:
      case PREADV:
      case PWRITEV:
        return iovecArgsOk(heap, a[1], a[2]); // (fd, iov, iovcnt, ...)
      case OPEN:
      case UNLINK:
      case CHDIR:
      case ACCESS:
      case MKDIR:
      case RMDIR:
      case UTIMES:
        return strOk(a[0], heap_bytes); // (path, ...)
      case RENAME:
      case SYMLINK:
        return strOk(a[0], heap_bytes) && strOk(a[1], heap_bytes);
      case READLINK:
        // bufsiz <= 0 passes validation untouched: the handler returns
        // the POSIX -EINVAL before resolving the window, and the errno
        // must not differ between the sync and ring conventions.
        return strOk(a[0], heap_bytes) &&
               (a[2] <= 0 || spanOk(a[1], a[2], heap_bytes));
      case GETCWD:
        return spanOk(a[0], a[1], heap_bytes); // (buf, len)
      case STAT:
      case LSTAT:
        return strOk(a[0], heap_bytes) &&
               spanOk(a[1], STAT_BYTES, heap_bytes);
      case FSTAT:
        return spanOk(a[1], STAT_BYTES, heap_bytes); // (fd, statbuf)
      case PIPE2:
        return spanOk(a[0], 8, heap_bytes); // two int32 fds
      case POLL:
        // nfds out of [1, kPollMaxFds] passes untouched: the handler
        // returns EINVAL before resolving the window, and the errno must
        // not differ between the sync and ring conventions.
        if (a[1] < 1 || a[1] > kPollMaxFds)
            return true;
        return spanOk(a[0], static_cast<int64_t>(a[1]) * POLLFD_BYTES,
                      heap_bytes); // (fds_ptr, nfds)
      case EPOLL_WAIT:
        // maxevents out of [1, kEpollMaxEvents] passes untouched for the
        // same EINVAL-parity reason as POLL's nfds.
        if (a[2] < 1 || a[2] > kEpollMaxEvents)
            return true;
        return spanOk(a[1], static_cast<int64_t>(a[2]) * EPOLL_EVENT_BYTES,
                      heap_bytes); // (epfd, events_ptr, maxevents)
      case WAIT4:
        // (pid, status_ptr, options): a null status pointer is valid —
        // the caller just discards the wait status.
        return a[1] == 0 || spanOk(a[1], 4, heap_bytes);
      default:
        return true; // integer-only argument lists (incl. sendfile,
                      // epoll_create, epoll_ctl)
    }
}

bool
RingLayout::valid(int64_t base, int64_t entries, size_t heap_bytes)
{
    if (base < 0 || base % 4 != 0)
        return false;
    if (entries <= 0 || entries > 4096 ||
        (entries & (entries - 1)) != 0)
        return false;
    size_t need = bytesFor(static_cast<uint32_t>(entries));
    return static_cast<size_t>(base) <= heap_bytes &&
           need <= heap_bytes - static_cast<size_t>(base);
}

void
RingLayout::writeSqe(jsvm::SharedArrayBuffer &heap, uint32_t slot,
                     const Sqe &e) const
{
    int32_t words[8] = {e.trap,     static_cast<int32_t>(e.seq),
                        e.args[0],  e.args[1],
                        e.args[2],  e.args[3],
                        e.args[4],  e.args[5]};
    std::memcpy(heap.data() + sqeOff(slot), words, sizeof(words));
}

Sqe
RingLayout::readSqe(const jsvm::SharedArrayBuffer &heap, uint32_t slot) const
{
    int32_t words[8];
    std::memcpy(words, heap.data() + sqeOff(slot), sizeof(words));
    Sqe e;
    e.trap = words[0];
    e.seq = static_cast<uint32_t>(words[1]);
    for (int i = 0; i < 6; i++)
        e.args[i] = words[2 + i];
    return e;
}

void
RingLayout::writeCqe(jsvm::SharedArrayBuffer &heap, uint32_t slot,
                     const Cqe &e) const
{
    int32_t words[4] = {static_cast<int32_t>(e.seq), e.r0, e.r1, 0};
    std::memcpy(heap.data() + cqeOff(slot), words, sizeof(words));
}

Cqe
RingLayout::readCqe(const jsvm::SharedArrayBuffer &heap, uint32_t slot) const
{
    int32_t words[4];
    std::memcpy(words, heap.data() + cqeOff(slot), sizeof(words));
    Cqe e;
    e.seq = static_cast<uint32_t>(words[0]);
    e.r0 = words[1];
    e.r1 = words[2];
    return e;
}

} // namespace sys
} // namespace browsix
