#include "runtime/syscall_client.h"

#include <cstring>

#include "jsvm/fiber.h"
#include "jsvm/util.h"

namespace browsix {
namespace rt {

SyscallClient::SyscallClient(jsvm::WorkerScope &scope) : scope_(scope)
{
    scope_.setOnMessage([this](jsvm::Value msg) { onMessage(std::move(msg)); });
}

void
SyscallClient::onMessage(jsvm::Value msg)
{
    const jsvm::Value &type = msg.get("t");
    if (!type.isString())
        return;
    const std::string &ty = type.asString();

    if (ty == "init") {
        init_.pid = msg.get("pid").asInt();
        init_.args.clear();
        if (msg.get("args").isArray()) {
            for (const auto &a : msg.get("args").asArray())
                init_.args.push_back(a.isString() ? a.asString() : "");
        }
        init_.env.clear();
        if (msg.get("env").isObject()) {
            for (const auto &[k, v] : msg.get("env").asObject())
                init_.env[k] = v.isString() ? v.asString() : "";
        }
        if (msg.get("cwd").isString())
            init_.cwd = msg.get("cwd").asString();
        if (msg.get("snapshot").isBytes() && msg.get("snapshot").asBytes())
            init_.snapshot = *msg.get("snapshot").asBytes();
        init_.forked = msg.get("forked").isBool() &&
                       msg.get("forked").asBool();
        initReceived_ = true;
        if (initCb_) {
            auto cb = std::move(initCb_);
            initCb_ = nullptr;
            cb(init_);
        }
        return;
    }
    if (ty == "ret") {
        double id = msg.get("id").asNumber();
        auto it = outstanding_.find(id);
        if (it == outstanding_.end())
            return;
        RetCb cb = std::move(it->second);
        outstanding_.erase(it);
        const jsvm::Value &ret = msg.get("ret");
        cb(ret.at(0).asInt64(), ret.at(1).asInt64(),
           msg.get("data").clone());
        return;
    }
    if (ty == "signal") {
        if (signalCb_)
            signalCb_(msg.get("sig").asInt());
        return;
    }
}

void
SyscallClient::onInit(std::function<void(const InitInfo &)> cb)
{
    if (initReceived_) {
        cb(init_);
        return;
    }
    initCb_ = std::move(cb);
}

void
SyscallClient::onSignal(std::function<void(int)> cb)
{
    signalCb_ = std::move(cb);
}

void
SyscallClient::call(const std::string &name, jsvm::Value::Array args,
                    RetCb cb)
{
    double id = nextId_++;
    calls_++;
    outstanding_[id] = std::move(cb);
    jsvm::Value msg = jsvm::Value::object();
    msg.set("t", jsvm::Value("syscall"));
    msg.set("id", jsvm::Value(id));
    msg.set("name", jsvm::Value(name));
    msg.set("args", jsvm::Value(std::move(args)));
    scope_.postMessage(msg);
}

void
SyscallClient::post(const std::string &name, jsvm::Value::Array args)
{
    jsvm::Value msg = jsvm::Value::object();
    msg.set("t", jsvm::Value("syscall"));
    msg.set("id", jsvm::Value(0.0));
    msg.set("name", jsvm::Value(name));
    msg.set("args", jsvm::Value(std::move(args)));
    scope_.postMessage(msg);
}

CallResult
blockingCall(SyscallClient &client, const std::string &name,
             jsvm::Value::Array args)
{
    if (jsvm::Fiber *f = jsvm::Fiber::current()) {
        // Pooled mode: fiber execution is serialized with the worker
        // loop's tasks (both run inside Worker::step), so the call can be
        // issued directly; the reply callback runs on a later loop pump
        // and wakes the parked fiber.
        jsvm::InterruptToken &token = client.scope().token();
        struct State
        {
            bool done = false;
            CallResult result;
        };
        auto st = std::make_shared<State>();
        uint64_t waker = token.addWaker([f]() { f->wake(); });
        client.call(name, std::move(args),
                    [st, f](int64_t r0, int64_t r1, jsvm::Value data) {
                        st->result.r0 = r0;
                        st->result.r1 = r1;
                        st->result.data = std::move(data);
                        st->done = true;
                        f->wake();
                    });
        while (!st->done) {
            if (token.interrupted()) {
                token.removeWaker(waker);
                throw jsvm::WorkerTerminated{};
            }
            jsvm::Fiber::park();
        }
        token.removeWaker(waker);
        return st->result;
    }

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    CallResult result;

    jsvm::InterruptToken &token = client.scope().token();
    uint64_t waker = token.addWaker([&]() {
        std::lock_guard<std::mutex> lk(m);
        cv.notify_all();
    });

    // The call itself must be issued from the worker loop thread.
    client.scope().loop().post(
        [&client, name, args = std::move(args), &m, &cv, &done,
         &result]() mutable {
            client.call(name, std::move(args),
                        [&m, &cv, &done, &result](int64_t r0, int64_t r1,
                                                  jsvm::Value data) {
                            std::lock_guard<std::mutex> lk(m);
                            result.r0 = r0;
                            result.r1 = r1;
                            result.data = std::move(data);
                            done = true;
                            cv.notify_all();
                        });
        });

    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&]() { return done || token.interrupted(); });
    lk.unlock();
    token.removeWaker(waker);
    if (!done)
        throw jsvm::WorkerTerminated{};
    return result;
}

SyncSyscalls::SyncSyscalls(SyscallClient &client, size_t heap_bytes)
    : client_(client)
{
    heap_ = std::make_shared<jsvm::SharedArrayBuffer>(
        std::max(heap_bytes, size_t{4096}));
    // Register the personality: heap + offsets, via an async syscall.
    CallResult r = blockingCall(
        client_, "personality",
        {jsvm::Value(heap_), jsvm::Value(static_cast<int>(kRetOff)),
         jsvm::Value(static_cast<int>(kWaitOff)),
         jsvm::Value(static_cast<int>(kSigOff))});
    if (r.r0 != 0)
        jsvm::panic("SyncSyscalls: personality registration failed");
}

uint32_t
SyncSyscalls::pushString(const std::string &s)
{
    uint32_t off = alloc(s.size() + 1);
    std::memcpy(heap_->data() + off, s.data(), s.size());
    heap_->data()[off + s.size()] = 0;
    return off;
}

uint32_t
SyncSyscalls::pushIovArray(const std::vector<sys::IoVec> &iovs)
{
    uint32_t arr = alloc(iovs.size() * sys::IOVEC_BYTES);
    for (size_t i = 0; i < iovs.size(); i++) {
        std::memcpy(heap_->data() + arr + i * sys::IOVEC_BYTES, &iovs[i],
                    sys::IOVEC_BYTES);
    }
    return arr;
}

uint32_t
SyncSyscalls::alloc(size_t n)
{
    size_t off = (scratchTop_ + 7) & ~size_t{7};
    if (off + n > heap_->size())
        jsvm::panic("SyncSyscalls: scratch overflow");
    scratchTop_ = off + n;
    return static_cast<uint32_t>(off);
}

uint32_t
SyncSyscalls::reserve(size_t n)
{
    uint32_t off = alloc(n);
    scratchBase_ = scratchTop_;
    return off;
}

void
SyncSyscalls::pollSignal()
{
    int sig = jsvm::Atomics::load(*heap_, kSigOff);
    if (sig != 0) {
        jsvm::Atomics::store(*heap_, kSigOff, 0);
        if (signalHandler)
            signalHandler(sig);
    }
}

int64_t
SyncSyscalls::call(int trap, std::array<int32_t, 6> args, int32_t *r1_out)
{
    jsvm::InterruptToken &token = client_.scope().token();
    if (token.interrupted())
        throw jsvm::WorkerTerminated{};

    jsvm::Atomics::store(*heap_, kWaitOff, 0);

    jsvm::Value msg = jsvm::Value::object();
    msg.set("t", jsvm::Value("sys"));
    msg.set("trap", jsvm::Value(trap));
    jsvm::Value av = jsvm::Value::array();
    for (int32_t a : args)
        av.push(jsvm::Value(a));
    msg.set("args", std::move(av));
    client_.scope().postMessage(msg);

    // §3.2: block until the kernel completes the call or a signal lands.
    for (;;) {
        jsvm::WaitResult wr =
            jsvm::Atomics::wait(*heap_, kWaitOff, 0, -1, &token);
        if (wr == jsvm::WaitResult::Interrupted)
            throw jsvm::WorkerTerminated{};
        pollSignal();
        if (jsvm::Atomics::load(*heap_, kWaitOff) != 0)
            break;
        // Spurious wake / signal-only wake: keep waiting.
        if (wr == jsvm::WaitResult::NotEqual)
            break;
    }

    int32_t r0, r1;
    std::memcpy(&r0, heap_->data() + kRetOff, 4);
    std::memcpy(&r1, heap_->data() + kRetOff + 4, 4);
    if (r1_out)
        *r1_out = r1;
    return r0;
}

// ---------------------------------------------------------------------------
// RingSyscalls
// ---------------------------------------------------------------------------

RingSyscalls::RingSyscalls(SyncSyscalls &sync, uint32_t entries)
    : sync_(sync),
      layout_(sync.reserve(sys::RingLayout::bytesFor(entries)), entries),
      sq_(sync.heap(), layout_.sqHeadOff(), layout_.sqTailOff(), entries),
      cq_(sync.heap(), layout_.cqHeadOff(), layout_.cqTailOff(), entries)
{
    CallResult r = blockingCall(
        sync_.client(), "ring_personality",
        {jsvm::Value(static_cast<int>(layout_.sqHeadOff())),
         jsvm::Value(static_cast<int>(entries))});
    if (r.r0 != 0)
        jsvm::panic("RingSyscalls: ring registration failed");
}

bool
RingSyscalls::ringEligible(int trap)
{
    switch (trap) {
      // Metadata, descriptors, and I/O whose completion needs no input
      // the caller itself must provide. The kernel never parks — a CQE
      // may simply land late (WRITE defers under pipe backpressure until
      // a reader drains, exactly where the sync convention would block);
      // a late CQE only ties up one in-flight slot meanwhile.
      case sys::GETPID:
      case sys::GETPPID:
      case sys::GETTIMEOFDAY:
      case sys::GETCWD:
      case sys::CHDIR:
      case sys::OPEN:
      case sys::CLOSE:
      case sys::LLSEEK:
      case sys::STAT:
      case sys::LSTAT:
      case sys::FSTAT:
      case sys::ACCESS:
      case sys::UNLINK:
      case sys::MKDIR:
      case sys::RMDIR:
      case sys::RENAME:
      case sys::READLINK:
      case sys::SYMLINK:
      case sys::UTIMES:
      case sys::GETDENTS:
      case sys::GETDENTS64:
      case sys::DUP:
      case sys::DUP2:
      case sys::IOCTL:
      case sys::PREAD:
      case sys::PWRITE:
      case sys::WRITE:
      // Vectored I/O batches like its scalar counterparts.
      case sys::WRITEV:
      case sys::PREADV:
      case sys::PWRITEV:
      // Blocking traps ride the completion-deferral protocol: when the
      // drained SQE would block (read/readv on an empty pipe, accept
      // with no pending connection, poll with nothing ready) the kernel
      // parks the completion against the pipe/socket waiter list and
      // pushes the CQE — with its own notify — when the event arrives.
      // The parked SQE keeps its CQ reservation (in-flight slot), so
      // the late CQE always has room; submitting a blocking trap and
      // then more work behind it is fine, because the kernel drains and
      // dispatches the rest of the batch without waiting on it.
      case sys::READ:
      case sys::READV:
      case sys::ACCEPT:
      case sys::POLL:
      // The process table (wait-waiter list), the socket rendezvous
      // (connect waiters on a full backlog), and the epoll interest
      // list give the same park-and-complete shape to process and
      // readiness waits; sendfile is all-integer arguments and at most
      // blocks in its kernel-side writeFrom, which parks like WRITE.
      case sys::WAIT4:
      case sys::CONNECT:
      case sys::EPOLL_CREATE:
      case sys::EPOLL_CTL:
      case sys::EPOLL_WAIT:
      case sys::SENDFILE:
      // The rest of the socket-lifecycle family is integer-in/
      // integer-out and completes immediately (bind/listen mutate
      // kernel-side state, getsockname/shutdown read or flag it) — a
      // ring-native server's whole setup and teardown batches.
      case sys::SOCKET:
      case sys::BIND:
      case sys::LISTEN:
      case sys::GETSOCKNAME:
      case sys::SHUTDOWN:
        return true;
      default:
        // Only fork still completes through a per-call convention: its
        // reply carries a structured-clone state snapshot that cannot
        // ride a 16-byte CQE.
        return false;
    }
}

void
RingSyscalls::reap()
{
    jsvm::SharedArrayBuffer &heap = sync_.heap();
    while (!cq_.empty()) {
        sys::Cqe e = layout_.readCqe(heap, cq_.slot(cq_.head()));
        cq_.consume();
        done_[e.seq] = Completion{e.r0, e.r1};
        if (inflight_ > 0)
            inflight_--;
    }
}

void
RingSyscalls::park(const std::function<bool()> &pred)
{
    jsvm::SharedArrayBuffer &heap = sync_.heap();
    jsvm::InterruptToken &token = sync_.client().scope().token();
    for (;;) {
        reap();
        if (pred())
            return;
        jsvm::Atomics::store(heap, layout_.waitOff(), 0);
        // Re-check after arming: the kernel may have completed + notified
        // between the reap above and the store (lost-wake guard).
        reap();
        if (pred())
            return;
        jsvm::WaitResult wr = jsvm::Atomics::wait(heap, layout_.waitOff(),
                                                  0, -1, &token);
        if (wr == jsvm::WaitResult::Interrupted)
            throw jsvm::WorkerTerminated{};
        sync_.pollSignal();
    }
}

uint32_t
RingSyscalls::submit(int trap, std::array<int32_t, 6> args)
{
    // Backpressure: the in-flight window doubles as the CQ reservation,
    // so the kernel can never overflow the completion queue.
    if (inflight_ >= capacity() || sq_.full()) {
        flush(); // the kernel must see the batch or we park forever
        park([this]() { return inflight_ < capacity() && !sq_.full(); });
    }
    uint32_t seq = nextSeq_++;
    sys::Sqe e;
    e.trap = trap;
    e.seq = seq;
    e.args = args;
    layout_.writeSqe(sync_.heap(), sq_.slot(sq_.tail()), e);
    sq_.publish();
    inflight_++;
    unflushed_++;
    return seq;
}

uint32_t
RingSyscalls::submitv(int trap, int32_t fd,
                      const std::vector<sys::IoVec> &iovs, int64_t off)
{
    // Marshal the iovec array into scratch; the spans it points at were
    // already placed in the heap by the caller. One SQE then carries the
    // whole gather/scatter list.
    uint32_t arr = sync_.pushIovArray(iovs);
    return submit(trap, {fd, static_cast<int32_t>(arr),
                         static_cast<int32_t>(iovs.size()),
                         static_cast<int32_t>(off), 0, 0});
}

void
RingSyscalls::flush()
{
    // Idempotent per batch: once every local submission is covered by a
    // doorbell, later flush() calls (wait() flushes defensively) are
    // no-ops — probing the shared SQ indices here could double-ring for
    // a batch the kernel is mid-drain on.
    if (unflushed_ == 0)
        return;
    unflushed_ = 0;
    jsvm::SharedArrayBuffer &heap = sync_.heap();
    // Adaptive coalescing: while the kernel has a drain pass scheduled
    // (drainPending armed), the published tail will be observed without
    // any message at all — the kernel only disarms after an empty pass
    // re-checks the tail, so a submission that saw the word armed can
    // never be stranded.
    if (jsvm::Atomics::load(heap, layout_.drainPendingOff()) == 1) {
        coalesced_++;
        return;
    }
    // Only the 0 -> 1 transition posts a message. A CAS failure means a
    // doorbell is already in flight, and the kernel clears the flag
    // before reading the tail — so it will see everything published up
    // to this point either way.
    if (jsvm::Atomics::compareExchange(heap, layout_.doorbellOff(), 0, 1) ==
        0) {
        doorbells_++;
        jsvm::Value msg = jsvm::Value::object();
        msg.set("t", jsvm::Value("ring"));
        sync_.client().scope().postMessage(msg);
    }
}

void
RingSyscalls::hintMore(bool more)
{
    jsvm::Atomics::store(sync_.heap(), layout_.moreHintOff(),
                         more ? 1 : 0);
}

RingSyscalls::Completion
RingSyscalls::wait(uint32_t seq)
{
    flush();
    Completion out;
    park([this, seq, &out]() {
        auto it = done_.find(seq);
        if (it == done_.end())
            return false;
        out = it->second;
        done_.erase(it);
        return true;
    });
    return out;
}

int64_t
RingSyscalls::call(int trap, std::array<int32_t, 6> args, int32_t *r1_out)
{
    if (!ringEligible(trap))
        return sync_.call(trap, args, r1_out);
    uint32_t seq = submit(trap, args);
    Completion c = wait(seq);
    if (r1_out)
        *r1_out = c.r1;
    return c.r0;
}

} // namespace rt
} // namespace browsix
