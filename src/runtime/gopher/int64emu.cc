#include "runtime/gopher/int64emu.h"

#include <cmath>

namespace browsix {
namespace rt {

namespace {

constexpr double kTwo32 = 4294967296.0;
constexpr double kTwo16 = 65536.0;

/** Truncate a double to its low 32 bits (what JS `>>> 0` does). */
inline double
mask32(double x)
{
    return x - std::floor(x / kTwo32) * kTwo32;
}

inline double
mask16(double x)
{
    return x - std::floor(x / kTwo16) * kTwo16;
}

} // namespace

Int64
Int64::operator+(const Int64 &o) const
{
    // Carry propagation through doubles, as the GopherJS runtime does.
    double lo = lo_ + o.lo_;
    double carry = lo >= kTwo32 ? 1.0 : 0.0;
    double hi = hi_ + o.hi_ + carry;
    Int64 r;
    r.lo_ = mask32(lo);
    r.hi_ = mask32(hi);
    return r;
}

Int64
Int64::operator-() const
{
    // two's complement: ~x + 1
    Int64 r;
    r.lo_ = mask32(kTwo32 - 1.0 - lo_);
    r.hi_ = mask32(kTwo32 - 1.0 - hi_);
    return r + Int64(1);
}

Int64
Int64::operator-(const Int64 &o) const
{
    return *this + (-o);
}

Int64
Int64::operator*(const Int64 &o) const
{
    // 16-bit limb decomposition: a = a3:a2:a1:a0, each limb a double.
    double a0 = mask16(lo_);
    double a1 = mask16(std::floor(lo_ / kTwo16));
    double a2 = mask16(hi_);
    double a3 = mask16(std::floor(hi_ / kTwo16));
    double b0 = mask16(o.lo_);
    double b1 = mask16(std::floor(o.lo_ / kTwo16));
    double b2 = mask16(o.hi_);
    double b3 = mask16(std::floor(o.hi_ / kTwo16));

    double c0 = a0 * b0;
    double c1 = a0 * b1 + a1 * b0 + std::floor(c0 / kTwo16);
    c0 = mask16(c0);
    double c2 = a0 * b2 + a1 * b1 + a2 * b0 + std::floor(c1 / kTwo16);
    c1 = mask16(c1);
    double c3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 +
                std::floor(c2 / kTwo16);
    c2 = mask16(c2);
    c3 = mask16(c3);

    Int64 r;
    r.lo_ = c0 + c1 * kTwo16;
    r.hi_ = c2 + c3 * kTwo16;
    return r;
}

bool
Int64::isNegative() const
{
    return hi_ >= kTwo32 / 2;
}

bool
Int64::operator==(const Int64 &o) const
{
    return hi_ == o.hi_ && lo_ == o.lo_;
}

bool
Int64::operator<(const Int64 &o) const
{
    bool an = isNegative(), bn = o.isNegative();
    if (an != bn)
        return an;
    if (hi_ != o.hi_)
        return hi_ < o.hi_;
    return lo_ < o.lo_;
}

bool
Int64::operator<=(const Int64 &o) const
{
    return *this < o || *this == o;
}

Int64
Int64::operator<<(int n) const
{
    n &= 63;
    if (n == 0)
        return *this;
    Int64 r;
    if (n >= 32) {
        r.hi_ = mask32(lo_ * std::pow(2.0, n - 32));
        r.lo_ = 0;
    } else {
        double f = std::pow(2.0, n);
        // Mask the high product before adding the carry: the unmasked
        // sum can span more than 53 significant bits.
        r.hi_ = mask32(mask32(hi_ * f) + std::floor(lo_ * f / kTwo32));
        r.lo_ = mask32(lo_ * f);
    }
    return r;
}

Int64
Int64::shrU(int n) const
{
    n &= 63;
    if (n == 0)
        return *this;
    Int64 r;
    if (n >= 32) {
        r.lo_ = std::floor(hi_ / std::pow(2.0, n - 32));
        r.hi_ = 0;
    } else {
        double f = std::pow(2.0, n);
        r.lo_ = mask32(std::floor(lo_ / f) +
                       mask32(hi_ * std::pow(2.0, 32 - n)));
        r.hi_ = std::floor(hi_ / f);
    }
    return r;
}

Int64
Int64::operator>>(int n) const
{
    n &= 63;
    if (n == 0)
        return *this;
    if (!isNegative())
        return shrU(n);
    // sign-fill: shift, then OR in the high ones.
    Int64 r = shrU(n);
    Int64 ones = Int64(-1) << (64 - n > 63 ? 63 : 64 - n);
    return r | ones;
}

namespace {
inline double
bitop32(double a, double b, char op)
{
    uint32_t x = static_cast<uint32_t>(a);
    uint32_t y = static_cast<uint32_t>(b);
    uint32_t z = op == '&' ? (x & y) : op == '|' ? (x | y) : (x ^ y);
    return static_cast<double>(z);
}
} // namespace

Int64
Int64::operator&(const Int64 &o) const
{
    Int64 r;
    r.hi_ = bitop32(hi_, o.hi_, '&');
    r.lo_ = bitop32(lo_, o.lo_, '&');
    return r;
}

Int64
Int64::operator|(const Int64 &o) const
{
    Int64 r;
    r.hi_ = bitop32(hi_, o.hi_, '|');
    r.lo_ = bitop32(lo_, o.lo_, '|');
    return r;
}

Int64
Int64::operator^(const Int64 &o) const
{
    Int64 r;
    r.hi_ = bitop32(hi_, o.hi_, '^');
    r.lo_ = bitop32(lo_, o.lo_, '^');
    return r;
}

Int64
Int64::operator/(const Int64 &o) const
{
    if (o == Int64(0))
        return Int64(0);
    bool neg = isNegative() != o.isNegative();
    Int64 a = isNegative() ? -*this : *this;
    Int64 b = o.isNegative() ? -o : o;

    // GopherJS fast path: when both magnitudes are exactly representable
    // as doubles (< 2^53), divide as doubles and fix up the truncation.
    constexpr double kTwo21 = 2097152.0; // 2^53 / 2^32
    if (a.hi_ < kTwo21 && b.hi_ < kTwo21) {
        double da = a.hi_ * kTwo32 + a.lo_;
        double db = b.hi_ * kTwo32 + b.lo_;
        double dq = std::floor(da / db);
        Int64 q = Int64::fromParts(
            static_cast<uint32_t>(std::floor(dq / kTwo32)),
            static_cast<uint32_t>(mask32(dq)));
        // One-ulp fix-up: ensure 0 <= a - q*b < b using exact emulation.
        Int64 rem = a - q * b;
        while (rem.isNegative()) {
            q = q - Int64(1);
            rem = rem + b;
        }
        while (rem >= b) {
            q = q + Int64(1);
            rem = rem - b;
        }
        return neg ? -q : q;
    }

    // Shift-subtract long division, one bit at a time (GopherJS's slow
    // runtime helper for full-width values).
    Int64 q(0), rem(0);
    for (int i = 63; i >= 0; i--) {
        rem = rem << 1;
        if ((a.shrU(i) & Int64(1)) == Int64(1))
            rem = rem | Int64(1);
        if (rem >= b) {
            rem = rem - b;
            q = q | (Int64(1) << i);
        }
    }
    return neg ? -q : q;
}

Int64
Int64::operator%(const Int64 &o) const
{
    if (o == Int64(0))
        return Int64(0);
    Int64 q = *this / o;
    return *this - q * o;
}

} // namespace rt
} // namespace browsix
