/**
 * @file
 * GopherJS-style 64-bit integer emulation.
 *
 * JavaScript (pre-BigInt) has no 64-bit integers, so GopherJS represents
 * Go's int64 as a {high, low} pair of 32-bit halves and performs
 * arithmetic through doubles and limb decomposition. The paper blames
 * exactly this for the meme generator's ~10x in-browser slowdown ("missing
 * 64-bit integer primitives when numerical code is compiled to JavaScript
 * with GopherJS", §5.2).
 *
 * Int64 reproduces that representation and cost honestly: addition
 * carries through doubles, multiplication decomposes into 16-bit limbs
 * (partial products in doubles), division is shift-subtract long
 * division. Tested for bit-exactness against native int64_t.
 */
#pragma once

#include <cstdint>

namespace browsix {
namespace rt {

class Int64
{
  public:
    Int64() : hi_(0), lo_(0) {}
    explicit Int64(int64_t v)
        : hi_(static_cast<double>(static_cast<uint32_t>(
              static_cast<uint64_t>(v) >> 32))),
          lo_(static_cast<double>(static_cast<uint32_t>(v)))
    {
    }

    int64_t toInt() const
    {
        return static_cast<int64_t>(
            (static_cast<uint64_t>(static_cast<uint32_t>(hi_)) << 32) |
            static_cast<uint64_t>(static_cast<uint32_t>(lo_)));
    }

    static Int64 fromParts(uint32_t hi, uint32_t lo)
    {
        Int64 v;
        v.hi_ = static_cast<double>(hi);
        v.lo_ = static_cast<double>(lo);
        return v;
    }
    uint32_t high() const { return static_cast<uint32_t>(hi_); }
    uint32_t low() const { return static_cast<uint32_t>(lo_); }

    Int64 operator+(const Int64 &o) const;
    Int64 operator-(const Int64 &o) const;
    Int64 operator*(const Int64 &o) const;
    /** Signed division (quotient toward zero); divide-by-zero yields 0. */
    Int64 operator/(const Int64 &o) const;
    Int64 operator%(const Int64 &o) const;
    Int64 operator-() const;

    Int64 operator<<(int n) const;
    Int64 operator>>(int n) const; ///< arithmetic shift
    Int64 shrU(int n) const;       ///< logical shift
    Int64 operator&(const Int64 &o) const;
    Int64 operator|(const Int64 &o) const;
    Int64 operator^(const Int64 &o) const;

    bool operator==(const Int64 &o) const;
    bool operator!=(const Int64 &o) const { return !(*this == o); }
    bool operator<(const Int64 &o) const;
    bool operator<=(const Int64 &o) const;
    bool operator>(const Int64 &o) const { return o < *this; }
    bool operator>=(const Int64 &o) const { return o <= *this; }

    bool isNegative() const;

  private:
    // The GopherJS representation: two 32-bit halves held as JS numbers.
    double hi_;
    double lo_;
};

} // namespace rt
} // namespace browsix
