/**
 * @file
 * Browsix-enabled GopherJS runtime (§4.3, Go).
 *
 * Go programs are C++ callables against GoEnv. The integration points
 * mirror the paper's: a replacement syscall.RawSyscall that suspends the
 * calling goroutine until the kernel's reply (our goroutines park on a
 * condition variable, GopherJS's unwind the JS stack — same semantics),
 * an overridden net.Listen backed by Browsix sockets, an explicit exit
 * syscall when main returns, and deferred startup until the init message
 * delivers argv/environment.
 *
 * A Browsix process may have many outstanding syscalls at once (§4.2);
 * with one goroutine per connection this happens naturally here too.
 */
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "jsvm/fiber.h"
#include "runtime/gopher/int64emu.h"
#include "runtime/syscall_client.h"

namespace browsix {
namespace rt {

/** Thrown by GoEnv::exit (os.Exit). */
struct GoExit
{
    int code;
};

/** A Go channel: goroutine-blocking, interrupt-aware. */
template <typename T>
class Chan
{
  public:
    explicit Chan(jsvm::InterruptToken *token, size_t capacity = 0)
        : token_(token), capacity_(capacity == 0 ? SIZE_MAX : capacity)
    {
    }

    void
    send(T v)
    {
        std::unique_lock<std::mutex> lk(m_);
        waitOn(lk, [&]() { return q_.size() < capacity_ || closed_; });
        if (closed_)
            return; // send on closed channel: dropped (Go would panic)
        q_.push_back(std::move(v));
        cv_.notifyAll();
    }

    /** Returns false when the channel is closed and drained. */
    bool
    recv(T &out)
    {
        std::unique_lock<std::mutex> lk(m_);
        waitOn(lk, [&]() { return !q_.empty() || closed_; });
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        cv_.notifyAll();
        return true;
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lk(m_);
        closed_ = true;
        cv_.notifyAll();
    }

  private:
    template <typename Pred>
    void
    waitOn(std::unique_lock<std::mutex> &lk, Pred pred)
    {
        uint64_t waker = token_->addWaker([this]() {
            // A goroutine may be a pooled fiber: notifyAll (under the
            // channel mutex) wakes thread and fiber waiters alike.
            std::lock_guard<std::mutex> lk2(m_);
            cv_.notifyAll();
        });
        cv_.wait(lk, [&]() { return pred() || token_->interrupted(); });
        lk.unlock();
        token_->removeWaker(waker);
        lk.lock();
        if (token_->interrupted() && !pred())
            throw jsvm::WorkerTerminated{};
    }

    jsvm::InterruptToken *token_;
    size_t capacity_;
    std::mutex m_;
    jsvm::FiberCv cv_;
    std::deque<T> q_;
    bool closed_ = false;
};

class GoEnv
{
  public:
    GoEnv(std::shared_ptr<SyscallClient> client, jsvm::WorkerScope &scope);

    const std::vector<std::string> &argv() const { return init_.args; }
    const std::map<std::string, std::string> &environ() const
    {
        return init_.env;
    }
    int pid() const { return init_.pid; }
    jsvm::InterruptToken *token();

    /** Spawn a goroutine: a guest context on the worker (a pooled fiber,
     * or a dedicated thread joined when the worker dies). */
    void go(std::function<void()> fn);

    /** syscall.RawSyscall: suspend this goroutine until the reply. */
    CallResult rawSyscall(const std::string &name, jsvm::Value::Array args);

    // --- net, via Browsix sockets (§4.3 net.Listen override) ---
    int listenTcp(int port, int backlog = 16);
    int accept(int listener_fd);
    int connectTcp(int port);
    int64_t read(int fd, bfs::Buffer &out, size_t n);
    int64_t write(int fd, const void *data, size_t n);
    int64_t write(int fd, const std::string &s);
    int close(int fd);
    int getsockname(int fd);
    /** shutdown(2): how is sys::SHUT_RD_/SHUT_WR_/SHUT_RDWR_. */
    int shutdown(int fd, int how);

    // --- os / io ---
    int readFile(const std::string &path, bfs::Buffer &out);
    int writeFile(const std::string &path, const bfs::Buffer &data);
    std::vector<std::string> readDir(const std::string &path, int &err);
    int64_t nowMs();
    [[noreturn]] void exit(int code) { throw GoExit{code}; }

    /** stderr for log.Printf-style output. */
    void logf(const std::string &line);

  private:
    std::shared_ptr<SyscallClient> client_;
    jsvm::WorkerScope &scope_;
    InitInfo init_;

    friend class GoRuntime;
};

using GoProgramFn = std::function<void(GoEnv &)>;

class GoRuntime
{
  public:
    static void boot(jsvm::WorkerScope &scope,
                     std::shared_ptr<SyscallClient> client,
                     GoProgramFn program);
};

} // namespace rt
} // namespace browsix
