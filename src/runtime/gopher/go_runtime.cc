#include "runtime/gopher/go_runtime.h"

#include "jsvm/util.h"

namespace browsix {
namespace rt {

GoEnv::GoEnv(std::shared_ptr<SyscallClient> client, jsvm::WorkerScope &scope)
    : client_(std::move(client)), scope_(scope)
{
    init_ = client_->init();
}

jsvm::InterruptToken *
GoEnv::token()
{
    return &scope_.token();
}

void
GoEnv::go(std::function<void()> fn)
{
    scope_.startGuest([fn = std::move(fn)]() {
        try {
            fn();
        } catch (GoExit &) {
            // os.Exit from a non-main goroutine: swallowed here; the main
            // goroutine owns process exit.
        }
    });
}

CallResult
GoEnv::rawSyscall(const std::string &name, jsvm::Value::Array args)
{
    return blockingCall(*client_, name, std::move(args));
}

int
GoEnv::listenTcp(int port, int backlog)
{
    CallResult s = rawSyscall("socket", {});
    if (s.r0 < 0)
        return static_cast<int>(s.r0);
    int fd = static_cast<int>(s.r0);
    CallResult b = rawSyscall("bind", {jsvm::Value(fd), jsvm::Value(port)});
    if (b.r0 < 0)
        return static_cast<int>(b.r0);
    CallResult l =
        rawSyscall("listen", {jsvm::Value(fd), jsvm::Value(backlog)});
    if (l.r0 < 0)
        return static_cast<int>(l.r0);
    return fd;
}

int
GoEnv::accept(int listener_fd)
{
    return static_cast<int>(
        rawSyscall("accept", {jsvm::Value(listener_fd)}).r0);
}

int
GoEnv::connectTcp(int port)
{
    CallResult s = rawSyscall("socket", {});
    if (s.r0 < 0)
        return static_cast<int>(s.r0);
    int fd = static_cast<int>(s.r0);
    CallResult c =
        rawSyscall("connect", {jsvm::Value(fd), jsvm::Value(port)});
    if (c.r0 < 0)
        return static_cast<int>(c.r0);
    return fd;
}

int64_t
GoEnv::read(int fd, bfs::Buffer &out, size_t n)
{
    CallResult r = rawSyscall(
        "read", {jsvm::Value(fd), jsvm::Value(static_cast<double>(n))});
    if (r.r0 > 0 && r.data.isBytes() && r.data.asBytes())
        out = *r.data.asBytes();
    else
        out.clear();
    return r.r0;
}

int64_t
GoEnv::write(int fd, const void *data, size_t n)
{
    return rawSyscall(
               "write",
               {jsvm::Value(fd),
                jsvm::Value::bytes(static_cast<const uint8_t *>(data), n)})
        .r0;
}

int64_t
GoEnv::write(int fd, const std::string &s)
{
    return write(fd, s.data(), s.size());
}

int
GoEnv::close(int fd)
{
    return static_cast<int>(rawSyscall("close", {jsvm::Value(fd)}).r0);
}

int
GoEnv::getsockname(int fd)
{
    return static_cast<int>(
        rawSyscall("getsockname", {jsvm::Value(fd)}).r0);
}

int
GoEnv::shutdown(int fd, int how)
{
    return static_cast<int>(
        rawSyscall("shutdown", {jsvm::Value(fd), jsvm::Value(how)}).r0);
}

int
GoEnv::readFile(const std::string &path, bfs::Buffer &out)
{
    CallResult o =
        rawSyscall("open", {jsvm::Value(path), jsvm::Value(0),
                            jsvm::Value(0)});
    if (o.r0 < 0)
        return static_cast<int>(o.r0);
    int fd = static_cast<int>(o.r0);
    out.clear();
    for (;;) {
        bfs::Buffer chunk;
        int64_t n = read(fd, chunk, 64 * 1024);
        if (n < 0) {
            close(fd);
            return static_cast<int>(n);
        }
        if (n == 0)
            break;
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    close(fd);
    return 0;
}

int
GoEnv::writeFile(const std::string &path, const bfs::Buffer &data)
{
    CallResult o = rawSyscall(
        "open", {jsvm::Value(path),
                 jsvm::Value(bfs::flags::CREAT | bfs::flags::TRUNC |
                             bfs::flags::WRONLY),
                 jsvm::Value(0644)});
    if (o.r0 < 0)
        return static_cast<int>(o.r0);
    int fd = static_cast<int>(o.r0);
    int64_t n = write(fd, data.data(), data.size());
    close(fd);
    return n < 0 ? static_cast<int>(n) : 0;
}

std::vector<std::string>
GoEnv::readDir(const std::string &path, int &err)
{
    CallResult r = rawSyscall("readdir", {jsvm::Value(path)});
    std::vector<std::string> names;
    if (r.r0 < 0) {
        err = static_cast<int>(-r.r0);
        return names;
    }
    err = 0;
    if (r.data.isArray()) {
        for (const auto &n : r.data.asArray())
            names.push_back(n.isString() ? n.asString() : "");
    }
    return names;
}

int64_t
GoEnv::nowMs()
{
    return rawSyscall("gettimeofday", {}).r0;
}

void
GoEnv::logf(const std::string &line)
{
    write(2, line + "\n");
}

void
GoRuntime::boot(jsvm::WorkerScope &scope,
                std::shared_ptr<SyscallClient> client, GoProgramFn program)
{
    client->onInit([&scope, client,
                    program = std::move(program)](const InitInfo &) {
        auto env = std::make_shared<GoEnv>(client, scope);
        // The main goroutine is a guest context (fiber or thread; see
        // WorkerScope::startGuest) that owns process exit.
        scope.startGuest([client, env, program]() {
            int code = 0;
            try {
                program(*env);
            } catch (GoExit &e) {
                code = e.code;
            }
            // §4.3: "an explicit call to the exit system call when the
            // main function exits".
            client->post("exit", {jsvm::Value(code)});
        });
    });
}

} // namespace rt
} // namespace browsix
