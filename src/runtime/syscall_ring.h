/**
 * @file
 * The third syscall convention: an io_uring-style submission/completion
 * ring pair in the process's shared heap.
 *
 * Motivation: the sync convention (§3.2) already avoids the reply message,
 * but still pays one postMessage and one Atomics wake per call. The ring
 * amortizes both across a batch: the process writes fixed-size entries
 * (trap + 6 i32 args, pointer args as heap offsets, exactly the sync
 * convention's argument encoding) into a submission queue and posts a
 * single doorbell message; the kernel drains the whole batch in one
 * event-loop turn, writes results into the completion queue, and issues a
 * single Atomics notify for the batch.
 *
 * Layout (byte offsets relative to the ring region's base, which the
 * runtime reserves inside its personality heap and registers with the
 * kernel via the ring_personality call):
 *
 *   +0   sqHead    SQ consumer index (kernel-owned)
 *   +4   sqTail    SQ producer index (process-owned)
 *   +8   cqHead    CQ consumer index (process-owned)
 *   +12  cqTail    CQ producer index (kernel-owned)
 *   +16  wait word the process parks here; the kernel stores 1 + notifies
 *   +20  doorbell  1 while a doorbell message is in flight (CAS-guarded so
 *                  a burst of submissions posts one message, not many)
 *   +24  drainPending  1 while the kernel has a drain pass scheduled
 *                  (adaptive doorbell coalescing): producers that see it
 *                  skip the doorbell message entirely — the scheduled
 *                  drain will observe their published tail. Kernel-owned:
 *                  armed before a drain starts, and only disarmed after a
 *                  pass that found the SQ empty re-checks the tail (so a
 *                  producer that skipped the message is never stranded).
 *   +28  moreHint  1 while the producer is mid-burst ("more SQEs coming
 *                  shortly"): the kernel's drain pipeline stays armed
 *                  through empty passes instead of disarming, so the rest
 *                  of the burst rides the already-scheduled drains and
 *                  pays zero doorbell messages. Process-owned; advisory —
 *                  the kernel caps consecutive idle-with-hint passes so a
 *                  producer that dies mid-burst cannot pin the pipeline.
 *   +32  SQ entries: entries × 32 B, each 8 × i32:
 *          [trap, seq, arg0..arg5]
 *   +32 + entries*32  CQ entries: entries × 16 B, each 4 × i32:
 *          [seq, r0, r1, reserved]
 *
 * head/tail are free-running counters managed by jsvm::RingIndices; both
 * queues hold `entries` slots (a power of two). The runtime caps in-flight
 * calls at `entries`, so the CQ can never overflow a conforming producer.
 *
 * Completion deferral: a drained SQE whose trap would block (read on an
 * empty pipe, accept with no pending connection, poll with nothing
 * ready) does NOT produce a CQE in the same drain pass. The kernel
 * parks the completion against the pipe/socket waiter list and pushes
 * the CQE — with its own Atomics notify — when the event arrives. The
 * in-flight cap above is what makes this safe: a parked SQE keeps its
 * CQ reservation, so however late the completion lands there is a slot
 * for it, and the producer's reap loop picks it up whenever it runs.
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace browsix {
namespace jsvm {
class SharedArrayBuffer;
}

namespace sys {

/** One submission-queue entry, decoded. */
struct Sqe
{
    int32_t trap = 0;
    uint32_t seq = 0;
    std::array<int32_t, 6> args{};
};

/** One completion-queue entry, decoded. */
struct Cqe
{
    uint32_t seq = 0;
    int32_t r0 = 0;
    int32_t r1 = 0;
};

/**
 * True when every heap-offset argument carried by this SQE names memory
 * fully inside the personality heap: (pointer, length) out/in-buffers
 * must fit end to end, string pointers must start in bounds (the NUL
 * scan itself is heap-clamped), and for the vectored traps (readv/
 * writev/preadv/pwritev) both the iovec array itself and every entry's
 * (ptr, len) span must fit — which is why this takes the heap, not just
 * its size: per-iov validation reads the entries. The kernel checks this
 * at drain time so a corrupt or hostile SQE completes with -EFAULT
 * instead of reaching the heap-write path out of bounds. Traps without
 * heap arguments always validate.
 */
bool sqeHeapArgsValid(const Sqe &e, const jsvm::SharedArrayBuffer &heap);

/** Byte offsets of a ring region registered at `base` in a shared heap. */
class RingLayout
{
  public:
    static constexpr size_t kHeaderBytes = 32;
    static constexpr size_t kSqeBytes = 32;
    static constexpr size_t kCqeBytes = 16;

    RingLayout(uint32_t base, uint32_t entries)
        : base_(base), entries_(entries)
    {
    }

    /** Total bytes a ring with `entries` slots occupies. */
    static size_t bytesFor(uint32_t entries)
    {
        return kHeaderBytes + entries * (kSqeBytes + kCqeBytes);
    }

    /** True when (base, entries) describes a well-formed ring that fits
     * inside a heap of heap_bytes. */
    static bool valid(int64_t base, int64_t entries, size_t heap_bytes);

    uint32_t entries() const { return entries_; }

    size_t sqHeadOff() const { return base_ + 0; }
    size_t sqTailOff() const { return base_ + 4; }
    size_t cqHeadOff() const { return base_ + 8; }
    size_t cqTailOff() const { return base_ + 12; }
    size_t waitOff() const { return base_ + 16; }
    size_t doorbellOff() const { return base_ + 20; }
    size_t drainPendingOff() const { return base_ + 24; }
    size_t moreHintOff() const { return base_ + 28; }

    size_t sqeOff(uint32_t slot) const
    {
        return base_ + kHeaderBytes + slot * kSqeBytes;
    }
    size_t cqeOff(uint32_t slot) const
    {
        return base_ + kHeaderBytes + entries_ * kSqeBytes +
               slot * kCqeBytes;
    }

    // --- payload (plain, non-atomic) slot access; callers order these
    // with the RingIndices publish/consume edges ---
    void writeSqe(jsvm::SharedArrayBuffer &heap, uint32_t slot,
                  const Sqe &e) const;
    Sqe readSqe(const jsvm::SharedArrayBuffer &heap, uint32_t slot) const;
    void writeCqe(jsvm::SharedArrayBuffer &heap, uint32_t slot,
                  const Cqe &e) const;
    Cqe readCqe(const jsvm::SharedArrayBuffer &heap, uint32_t slot) const;

  private:
    uint32_t base_;
    uint32_t entries_;
};

} // namespace sys
} // namespace browsix
