#include "core/browsix.h"

#include "apps/coreutils/coreutils.h"
#include "apps/awfy/awfy.h"
#include "apps/emvm_programs.h"
#include "apps/meme/server.h"
#include "apps/registry.h"
#include "jsvm/util.h"
#include "runtime/emvm/vm.h"
#include "runtime/gopher/go_runtime.h"
#include "runtime/node/node_runtime.h"

namespace browsix {

kernel::Kernel::Bootstrapper
makeBootstrapper()
{
    return [](jsvm::WorkerScope &scope,
              std::shared_ptr<const std::vector<uint8_t>> code) {
        auto client = std::make_shared<rt::SyscallClient>(scope);
        // Anchor the client's lifetime to the worker.
        scope.atExit([client]() {});

        // Bytecode executable: full-fidelity Emterpreter.
        if (emvm::Image::isImage(code->data(), code->size())) {
            emvm::Image image;
            if (emvm::Image::deserialize(*code, image)) {
                rt::EmVmHost::boot(scope, client, std::move(image));
            } else {
                client->onInit([client](const rt::InitInfo &) {
                    client->post("exit", {jsvm::Value(126)});
                });
            }
            return;
        }

        // Compiled-JS bundle: resolve the program and its runtime.
        std::string name = apps::ProgramRegistry::programFromBundle(
            bfs::Buffer(code->begin(), code->end()));
        const apps::ProgramSpec *spec =
            apps::ProgramRegistry::instance().find(name);
        if (!spec) {
            client->onInit([client](const rt::InitInfo &) {
                client->post("exit", {jsvm::Value(126)}); // ENOEXEC-ish
            });
            return;
        }
        switch (spec->kind) {
          case apps::RuntimeKind::Node:
            rt::NodeRuntime::boot(scope, client);
            return;
          case apps::RuntimeKind::EmSync:
            rt::EmscriptenRuntime::boot(scope, client, spec->emMain,
                                        rt::EmMode::Sync,
                                        /*emterpreter=*/false);
            return;
          case apps::RuntimeKind::EmRing:
            rt::EmscriptenRuntime::boot(scope, client, spec->emMain,
                                        rt::EmMode::Ring,
                                        /*emterpreter=*/false);
            return;
          case apps::RuntimeKind::EmAsync:
            rt::EmscriptenRuntime::boot(scope, client, spec->emMain,
                                        rt::EmMode::AsyncEmterpreter,
                                        /*emterpreter=*/true);
            return;
          case apps::RuntimeKind::Gopher:
            rt::GoRuntime::boot(scope, client, spec->goMain);
            return;
        }
    };
}

Browsix::Browsix(BootConfig cfg)
{
    apps::registerAllPrograms();
    apps::registerCoreutils();

    browser_ = std::make_unique<jsvm::Browser>(cfg.profile);
    root_ = std::make_shared<bfs::InMemBackend>();
    vfs_ = std::make_shared<bfs::Vfs>();
    vfs_->mount("/", root_);

    stageSystem(cfg);

    if (cfg.texlive) {
        texStore_ = std::make_shared<bfs::HttpStore>();
        apps::populateTexliveStore(*texStore_, cfg.texPackages);
        texCache_ = cfg.httpCache ? cfg.httpCache
                                  : std::make_shared<bfs::BrowserHttpCache>();
        texHttp_ = std::make_shared<bfs::HttpBackend>(
            texStore_, texCache_, &browser_->mainLoop(), cfg.texliveNet);
        auto upper = std::make_shared<bfs::InMemBackend>();
        texOverlay_ = std::make_shared<bfs::OverlayBackend>(
            upper, texHttp_,
            bfs::OverlayBackend::Options(cfg.lazyOverlay));
        bool init_done = false;
        texOverlay_->initialize([&init_done](int) { init_done = true; });
        vfs_->mount("/texlive", texOverlay_);
        // Eager initialization walks the whole remote tree via the main
        // loop; pump until it settles.
        if (!cfg.lazyOverlay) {
            browser_->runUntil([&init_done]() { return init_done; },
                               60000);
        }
        apps::stageLatexProject(*root_, "/home", cfg.latexPages);
    }
    if (cfg.memeAssets)
        apps::stageMemeAssets(*root_);

    net::NetBackendPtr net;
    if (cfg.simNet)
        net = std::make_shared<net::SimBackend>(&browser_->mainLoop(),
                                                cfg.simNetLink);
    kernel_ = std::make_unique<kernel::Kernel>(*browser_, vfs_,
                                               std::move(net));
    kernel_->setBootstrapper(makeBootstrapper());
}

Browsix::~Browsix()
{
    kernel_.reset();
    browser_.reset();
}

void
Browsix::stageSystem(const BootConfig &cfg)
{
    auto &reg = apps::ProgramRegistry::instance();
    auto &root = *root_;

    root.mkdirAll("/bin");
    root.mkdirAll("/usr/bin");
    root.mkdirAll("/tmp");
    root.mkdirAll("/home");

    root.writeFile("/bin/dash", reg.bundleFor("dash"));
    bool done = false;
    root.symlink("/bin/dash", "/bin/sh", [&done](int) { done = true; });
    root.writeFile("/usr/bin/make", reg.bundleFor("make"));
    root.writeFile("/usr/bin/pdflatex",
                   reg.bundleFor(cfg.pdflatexSync ? "pdflatex-sync"
                                                  : "pdflatex-emterp"));
    root.writeFile("/usr/bin/bibtex",
                   reg.bundleFor(cfg.pdflatexSync ? "bibtex-sync"
                                                  : "bibtex-emterp"));
    root.writeFile("/usr/bin/node", reg.bundleFor("node"));
    root.writeFile("/usr/bin/els", reg.bundleFor("els"));
    root.writeFile("/usr/bin/ecat", reg.bundleFor("ecat"));
    root.writeFile("/usr/bin/meme-server", reg.bundleFor("meme-server"));
    root.writeFile("/usr/bin/meme-httpd", reg.bundleFor("meme-httpd"));

    // Utilities: small scripts run by the node interpreter via shebang,
    // just as the paper stages them.
    for (const auto &util : rt::nodeUtilNames()) {
        root.writeFile("/usr/bin/" + util,
                       "#!/usr/bin/node\n//:node-util:" + util + "\n");
    }

    // Bytecode executables (Emterpreter demos).
    root.writeFile("/usr/bin/forktest", apps::forktestImageBytes());
    root.writeFile("/usr/bin/primes", apps::primesImageBytes());
    root.writeFile("/usr/bin/hello-em", apps::helloImageBytes());

    // AWFY macro kernels (bench/awfy.cc runs the same images in-VM).
    for (const auto &bench : apps::awfyBenches())
        root.writeFile("/usr/bin/awfy-" + bench.name,
                       apps::awfyImageBytes(bench.name));
}

bool
Browsix::runUntil(const std::function<bool()> &pred, int64_t timeout_ms)
{
    return browser_->runUntil(pred, timeout_ms);
}

RunResult
Browsix::runArgv(const std::vector<std::string> &argv, int64_t timeout_ms,
                 const std::string &stdin_data)
{
    RunResult result;
    bool exited = false;
    int spawn_err = 0;
    kernel_->spawnRoot(
        argv, kernel_->defaultEnv, "/",
        [&](int status) {
            result.status = status;
            exited = true;
        },
        [&](const bfs::Buffer &data) {
            result.out.append(data.begin(), data.end());
        },
        [&](const bfs::Buffer &data) {
            result.err.append(data.begin(), data.end());
        },
        [&](int rc) {
            if (rc < 0) {
                spawn_err = rc;
                exited = true;
            }
        },
        bfs::Buffer(stdin_data.begin(), stdin_data.end()));
    runUntil([&]() { return exited; }, timeout_ms);
    result.ok = exited && spawn_err == 0;
    if (spawn_err < 0)
        result.status = sys::statusFromExitCode(127);
    return result;
}

RunResult
Browsix::run(const std::string &cmd, int64_t timeout_ms,
             const std::string &stdin_data)
{
    return runArgv({"/bin/sh", "-c", cmd}, timeout_ms, stdin_data);
}

Browsix::XhrResult
Browsix::xhr(int port, const net::HttpRequest &req, int64_t timeout_ms)
{
    // All state is heap-held and shared with the connection callbacks:
    // the host-socket pump can deliver a (stale) EOF for this request
    // well after this function has returned.
    struct XhrState
    {
        net::HttpParser parser{net::HttpParser::Mode::Response};
        bool closed = false;
        int connectErr = 0;
        std::shared_ptr<kernel::Kernel::HostConn> conn;
    };
    auto st = std::make_shared<XhrState>();

    kernel_->connect(
        port,
        [st](const bfs::Buffer &data) { st->parser.feed(data); },
        [st]() { st->closed = true; },
        [st, &req](int err, std::shared_ptr<kernel::Kernel::HostConn> c) {
            if (err) {
                st->connectErr = err;
                st->closed = true;
                return;
            }
            st->conn = std::move(c);
            auto bytes = net::serializeRequest(req);
            st->conn->write(bfs::Buffer(bytes.begin(), bytes.end()));
        });

    bool done = runUntil(
        [st]() {
            return st->closed || st->parser.done() || st->parser.failed();
        },
        timeout_ms);
    if (st->conn)
        st->conn->close();
    XhrResult result;
    if (st->connectErr) {
        result.err = st->connectErr;
        return result;
    }
    if (!done || !st->parser.done()) {
        result.err = ETIMEDOUT;
        return result;
    }
    result.response = st->parser.response();
    return result;
}

bool
Browsix::waitForPort(int port, int64_t timeout_ms)
{
    bool listening = false;
    kernel_->onPortListen(port, [&listening]() { listening = true; });
    return runUntil([&]() { return listening; }, timeout_ms);
}

} // namespace browsix
