/**
 * @file
 * The public Browsix API (§4.1 "Browser Environment Extensions"): what an
 * embedding web application sees. Boot a kernel over a configured
 * filesystem, run commands Figure-4 style, receive socket notifications,
 * and issue XMLHttpRequest-like calls to in-Browsix HTTP servers.
 *
 * Quickstart:
 *   browsix::BootConfig cfg;
 *   browsix::Browsix bx(cfg);
 *   auto r = bx.run("echo hello | wc");
 *   // r.status == 0, r.out == "1 1 6\n"
 */
#pragma once

#include <memory>
#include <string>

#include "apps/tex/tex.h"
#include "bfs/http_backend.h"
#include "bfs/inmem.h"
#include "bfs/overlay.h"
#include "bfs/vfs.h"
#include "jsvm/browser.h"
#include "kernel/kernel.h"
#include "net/http.h"
#include "net/netsim.h"

namespace browsix {

struct BootConfig
{
    /// Browser cost profile; Fast (zero-cost) for functional use/tests.
    jsvm::BrowserProfile profile = jsvm::BrowserProfile::fast();

    /// Mount the HTTP-backed TeX Live overlay at /texlive and stage a
    /// LaTeX project at /home (§2).
    bool texlive = false;
    size_t texPackages = 60;
    int latexPages = 1;
    bfs::NetworkParams texliveNet{/*rttUs=*/0, /*bytesPerUs=*/0};
    /// Lazy (Browsix) vs eager (original BrowserFS) overlay underlay.
    bool lazyOverlay = true;
    /// Browser HTTP cache; share one across Browsix instances to model
    /// a warm second visit.
    bfs::BrowserHttpCachePtr httpCache;

    /// Stage pdflatex/bibtex compiled for synchronous syscalls (Chrome)
    /// or the Emterpreter (everywhere) — the §3.2 compile-time choice.
    bool pdflatexSync = true;

    /// Stage the meme server's template images at /memes.
    bool memeAssets = false;

    /// Boot the kernel over net::SimBackend: every socket connection's
    /// bytes traverse a simNetLink-shaped simulated link in both
    /// directions (latency + bandwidth), instead of the zero-cost
    /// in-kernel loopback. The connection-scale HTTP bench uses this.
    bool simNet = false;
    net::LinkParams simNetLink = net::LinkParams::localhost();
};

/** Result of a synchronous Browsix::run. */
struct RunResult
{
    bool ok = false; ///< process ran to completion within the timeout
    int status = -1; ///< wait status (exit code via sys::wexitstatus)
    std::string out;
    std::string err;

    int exitCode() const { return sys::wexitstatus(status); }
};

class Browsix
{
  public:
    explicit Browsix(BootConfig cfg = BootConfig());
    ~Browsix();

    jsvm::Browser &browser() { return *browser_; }
    kernel::Kernel &kernel() { return *kernel_; }
    bfs::Vfs &fs() { return *vfs_; }
    bfs::InMemBackend &rootFs() { return *root_; }
    bfs::HttpBackend *texliveHttp() { return texHttp_.get(); }
    bfs::OverlayBackend *texliveOverlay() { return texOverlay_.get(); }

    /** Pump the main loop until pred() (the embedder's event loop). */
    bool runUntil(const std::function<bool()> &pred,
                  int64_t timeout_ms = 30000);

    /**
     * kernel.system + wait, synchronously: runs `/bin/sh -c cmd`,
     * capturing stdout/stderr (Figure 4's flow).
     */
    RunResult run(const std::string &cmd, int64_t timeout_ms = 30000,
                  const std::string &stdin_data = "");

    /** Spawn an executable directly (no shell). */
    RunResult runArgv(const std::vector<std::string> &argv,
                      int64_t timeout_ms = 30000,
                      const std::string &stdin_data = "");

    /** The XMLHttpRequest-like API (§4.1): issue an HTTP request to an
     * in-Browsix server and synchronously await the parsed response. */
    struct XhrResult
    {
        int err = 0; ///< errno-style (ECONNREFUSED, ETIMEDOUT)
        net::HttpResponse response;
    };
    XhrResult xhr(int port, const net::HttpRequest &req,
                  int64_t timeout_ms = 30000);

    /** §4.1 socket notification, blocking flavor: wait for a listener. */
    bool waitForPort(int port, int64_t timeout_ms = 30000);

  private:
    void stageSystem(const BootConfig &cfg);

    std::unique_ptr<jsvm::Browser> browser_;
    std::shared_ptr<bfs::InMemBackend> root_;
    bfs::VfsPtr vfs_;
    std::unique_ptr<kernel::Kernel> kernel_;

    bfs::HttpStorePtr texStore_;
    bfs::BrowserHttpCachePtr texCache_;
    std::shared_ptr<bfs::HttpBackend> texHttp_;
    std::shared_ptr<bfs::OverlayBackend> texOverlay_;
};

/** The worker bootstrap: maps executable bytes to the right runtime.
 * Installed automatically by Browsix; exposed for tests that drive the
 * kernel directly. */
kernel::Kernel::Bootstrapper makeBootstrapper();

} // namespace browsix
