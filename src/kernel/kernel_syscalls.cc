/**
 * @file
 * System-call handlers (Figure 3's table, plus Browsix extensions).
 *
 * Each handler is written once against SyscallCtx and so serves both the
 * asynchronous (message/CPS) and synchronous (shared heap + Atomics)
 * conventions. Handlers re-look-up the task in completion callbacks: the
 * process may have been killed while its call was in flight.
 */
#include <algorithm>
#include <cstring>
#include <functional>
#include <map>

#include "bfs/path.h"
#include "jsvm/util.h"
#include "kernel/epoll.h"
#include "kernel/kernel.h"
#include "kernel/syscall_ctx.h"
#include "runtime/syscall_ring.h"

namespace browsix {
namespace kernel {

namespace {

using Handler = std::function<void(Kernel &, Task &, SyscallCtxPtr)>;

KFilePtr
getFile(Task &t, int fd)
{
    auto it = t.files.find(fd);
    return it == t.files.end() ? nullptr : it->second;
}

std::string
resolvePath(Task &t, const std::string &path)
{
    return bfs::joinPath(t.cwd, path);
}

// ---------- process management ----------

void
sysExit(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    k.doExit(t, sys::statusFromExitCode(ctx->argInt(0)));
    // No reply: the calling context is gone.
}

void
sysFork(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    if (ctx->isSync()) {
        // §3.2: "fork is not compatible with synchronous system calls".
        ctx->completeErr(ENOSYS);
        return;
    }
    jsvm::Value snapshot = ctx->argValue(0);
    if (snapshot.isUndefined() || !snapshot.isBytes()) {
        // The runtime could not serialize its state (no Emterpreter).
        ctx->completeErr(ENOSYS);
        return;
    }
    // Parent sees the child pid; the restored child's runtime makes its
    // own fork() return 0 when it resumes from the snapshot.
    ctx->complete(k.doFork(t, std::move(snapshot)));
}

void
sysSpawn(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    if (ctx->isSync()) {
        ctx->completeErr(ENOSYS);
        return;
    }
    jsvm::Value argv_v = ctx->argValue(0);
    if (!argv_v.isArray() || argv_v.size() == 0) {
        ctx->completeErr(EINVAL);
        return;
    }
    std::vector<std::string> argv;
    for (const auto &a : argv_v.asArray())
        argv.push_back(a.isString() ? a.asString() : "");

    std::map<std::string, std::string> env = t.env;
    jsvm::Value env_v = ctx->argValue(1);
    if (env_v.isObject()) {
        env.clear();
        for (const auto &[key, val] : env_v.asObject())
            env[key] = val.isString() ? val.asString() : "";
    }

    std::string cwd = t.cwd;
    jsvm::Value cwd_v = ctx->argValue(2);
    if (cwd_v.isString() && !cwd_v.asString().empty())
        cwd = resolvePath(t, cwd_v.asString());

    // Descriptor inheritance: child fd i <- parent fd fds[i]; default
    // stdio passthrough.
    std::vector<int> inherit = {0, 1, 2};
    jsvm::Value fds_v = ctx->argValue(3);
    if (fds_v.isArray()) {
        inherit.clear();
        for (const auto &f : fds_v.asArray())
            inherit.push_back(f.asInt());
    }
    std::map<int, KFilePtr> child_fds;
    for (size_t i = 0; i < inherit.size(); i++) {
        if (inherit[i] < 0)
            continue; // explicitly closed in the child
        KFilePtr f = getFile(t, inherit[i]);
        if (!f) {
            for (auto &[fd, file] : child_fds)
                file->unref();
            ctx->completeErr(EBADF);
            return;
        }
        f->ref();
        child_fds[static_cast<int>(i)] = f;
    }

    k.doSpawn(&t, std::move(argv), std::move(env), cwd,
              std::move(child_fds), jsvm::Value::undefined(),
              [ctx](int pid_or_err) { ctx->complete(pid_or_err); });
}

void
sysExecve(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    if (ctx->isSync()) {
        ctx->completeErr(ENOSYS);
        return;
    }
    jsvm::Value argv_v = ctx->argValue(0);
    if (!argv_v.isArray() || argv_v.size() == 0) {
        ctx->completeErr(EINVAL);
        return;
    }
    std::vector<std::string> argv;
    for (const auto &a : argv_v.asArray())
        argv.push_back(a.isString() ? a.asString() : "");
    std::map<std::string, std::string> env;
    jsvm::Value env_v = ctx->argValue(1);
    if (env_v.isObject()) {
        for (const auto &[key, val] : env_v.asObject())
            env[key] = val.isString() ? val.asString() : "";
    }
    k.doExec(t, std::move(argv), std::move(env), [ctx](int rc) {
        // Only a *failed* exec is observable by the caller.
        if (rc < 0)
            ctx->complete(rc);
    });
}

void
sysWait4(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    // The wait status is returned in ret1 under both conventions (§3.3:
    // wait4 "returns immediately if the specified child has already
    // exited, or the WNOHANG option is specified"). Shared-heap callers
    // may additionally pass a status pointer at arg 1 (0 discards): the
    // status int is written into the guest window in place, so a ring
    // wait4's deferred CQE — pushed from completeWaits when the child
    // exits — carries everything the caller needs in r0 alone.
    int wait_pid = ctx->argInt(0);
    int options = ctx->isSync() ? ctx->argInt(2) : ctx->argInt(1);

    std::function<void(int)> put_status = [](int) {};
    if (ctx->isSync() && ctx->argInt(1) != 0) {
        SyscallCtx::HeapSpan win = ctx->heapSpan(1, 4);
        if (!win.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        put_status = [win](int status) {
            std::memcpy(win.span.data, &status, 4);
        };
    }

    // Existing zombies are reaped in exit order (the parent's
    // zombieFifo), not pid order — deterministic FIFO across pid bands.
    int found = 0;
    for (int zombie : t.zombieFifo) {
        if (wait_pid == -1 || wait_pid == zombie) {
            found = zombie;
            break;
        }
    }
    if (found) {
        int status = k.task(found)->exitStatus;
        k.reapTask(found); // also drops it from children + zombieFifo
        put_status(status);
        ctx->complete(found, status);
        return;
    }

    bool has_candidate = false;
    for (int child : t.children) {
        if (wait_pid == -1 || wait_pid == child) {
            has_candidate = true;
            break;
        }
    }
    if (!has_candidate) {
        ctx->completeErr(ECHILD);
        return;
    }
    if (options & sys::WNOHANG) {
        ctx->complete(0, 0);
        return;
    }
    k.statsMut().wait4Parked++;
    t.addWaitWaiter(wait_pid, [ctx, put_status](int pid, int status) {
        put_status(status);
        ctx->complete(pid, status);
    });
}

void
sysGetpid(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    ctx->complete(t.pid);
}

void
sysGetppid(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    ctx->complete(t.ppid);
}

void
sysGetcwd(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    ctx->completeStr(t.cwd, 0, 1);
}

void
sysChdir(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    std::string path = resolvePath(t, ctx->argStr(0));
    int pid = t.pid;
    k.fs().stat(path, [&k, pid, path, ctx](int err, const bfs::Stat &st) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        if (!st.isDir()) {
            ctx->completeErr(ENOTDIR);
            return;
        }
        if (Task *t2 = k.task(pid))
            t2->cwd = path;
        ctx->complete(0);
    });
}

void
sysKill(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    // The caller is excluded from a kill(-1) broadcast (Linux style):
    // killing it mid-syscall would silently drop this completion.
    int rc = k.kill(ctx->argInt(0), ctx->argInt(1), t.pid);
    if (rc)
        ctx->completeErr(rc);
    else
        ctx->complete(0);
}

void
sysSigaction(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int sig = ctx->argInt(0);
    int action = ctx->argInt(1);
    if (sig <= 0 || sig >= 32 || sig == sys::SIGKILL) {
        ctx->completeErr(EINVAL);
        return;
    }
    t.sigDisp[sig] = static_cast<sys::SigDisposition>(action);
    ctx->complete(0);
}

void
sysGettimeofday(Kernel &, Task &, SyscallCtxPtr ctx)
{
    ctx->complete(jsvm::nowUs() / 1000);
}

void
sysPersonality(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    // §3.2: the runtime passes its heap SharedArrayBuffer plus the return
    // value offset and wake offset (we add a signal slot).
    jsvm::Value sab = ctx->argValue(0);
    if (!sab.isShared()) {
        ctx->completeErr(EINVAL);
        return;
    }
    t.heap = sab.asShared();
    t.retOff = ctx->argInt(1);
    t.waitOff = ctx->argInt(2);
    t.sigOff = ctx->argInt(3);
    ctx->complete(0);
}

void
sysRingPersonality(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    // Ring convention: the runtime reserves a SQ/CQ region inside its
    // already-registered personality heap and hands over (offset,
    // entries). See runtime/syscall_ring.h for the layout contract.
    if (!t.heap) {
        ctx->completeErr(EINVAL); // sync personality must come first
        return;
    }
    if (t.ring.registered) {
        // One ring per process: silently replacing it would orphan SQEs
        // already written to the old region (and any facade still
        // submitting there would park forever).
        ctx->completeErr(EBUSY);
        return;
    }
    int32_t off = ctx->argInt(0);
    int32_t entries = ctx->argInt(1);
    if (!sys::RingLayout::valid(off, entries, t.heap->size())) {
        ctx->completeErr(EINVAL);
        return;
    }
    t.ring = Task::RingState{};
    t.ring.registered = true;
    t.ring.off = off;
    t.ring.entries = entries;
    ctx->complete(0);
}

// ---------- file I/O ----------

void
sysOpen(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    std::string path = resolvePath(t, ctx->argStr(0));
    int oflags = ctx->argInt(1);
    uint32_t mode = static_cast<uint32_t>(ctx->argInt(2));
    int pid = t.pid;

    k.fs().stat(path, [&k, pid, path, oflags, mode,
                       ctx](int serr, const bfs::Stat &st) {
        if (serr == 0 && st.isDir()) {
            if (bfs::flags::wantsWrite(oflags)) {
                ctx->completeErr(EISDIR);
                return;
            }
            Task *t2 = k.task(pid);
            if (!t2 || t2->state == TaskState::Zombie)
                return;
            int fd = t2->allocFd();
            t2->files[fd] = std::make_shared<DirFile>(&k.fs(), path);
            ctx->complete(fd);
            return;
        }
        k.fs().open(path, oflags, mode, [&k, pid, oflags,
                                         ctx](int err, bfs::OpenFilePtr f) {
            if (err) {
                ctx->completeErr(err);
                return;
            }
            Task *t2 = k.task(pid);
            if (!t2 || t2->state == TaskState::Zombie) {
                f->close();
                return;
            }
            int fd = t2->allocFd();
            t2->files[fd] = std::make_shared<RegularFile>(
                f, (oflags & bfs::flags::APPEND) != 0);
            ctx->complete(fd);
        });
    });
}

void
sysClose(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    t.files.erase(fd);
    f->unref();
    ctx->complete(0);
}

void
sysRead(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    size_t len = static_cast<uint32_t>(
        ctx->isSync() ? ctx->argInt(2) : ctx->argInt(1));
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    if (ctx->isSync()) {
        // Zero-copy: resolve the guest destination up front and let the
        // file (ultimately the backend) fill it in place.
        SyscallCtx::HeapSpan dst = ctx->heapSpan(1, len);
        if (!dst.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        f->readInto(dst.span, [ctx, f, dst](int err, size_t n) {
            if (err) {
                ctx->completeErr(err);
                return;
            }
            // Never report more than the window: a backend overriding
            // preadInto could lie about its count, and the runtime reads
            // exactly `n` bytes back out of the heap.
            ctx->completeFilled(
                static_cast<int64_t>(std::min(n, dst.span.len)),
                f->spanIoDirect());
        });
        return;
    }
    f->read(len, [ctx, f](int err, bfs::BufferPtr data) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        ctx->completeData(*data, 1);
    });
}

/**
 * POSIX: a write that fails with EPIPE also raises SIGPIPE in the
 * writer. Delivery goes through the regular signal path — SIG_IGN
 * leaves the plain EPIPE return, a handler runs it, and the default
 * disposition terminates the process. The task is re-looked-up by pid:
 * for a parked (deferred-CQE) writer the EPIPE may arrive from another
 * process's close long after the handler's Task& went stale.
 */
void
raiseSigpipe(Kernel &k, int pid)
{
    Task *t = k.task(pid);
    if (t && t->state != TaskState::Zombie)
        k.deliverSignal(*t, sys::SIGPIPE);
}

void
sysWrite(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    int pid = t.pid;
    if (ctx->isSync()) {
        // Zero-copy: resolve the guest source window up front and let
        // the file (ultimately the backend) consume it in place — the
        // write-direction mirror of sysRead, with no intermediate
        // argData Buffer. An out-of-heap window is EFAULT, matching the
        // ring drain validator.
        SyscallCtx::HeapConstSpan src = ctx->heapConstSpan(1, 2);
        if (!src.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        f->writeFrom(src.span, [&k, pid, ctx, f, src](int err, size_t n) {
            if (err) {
                ctx->completeErr(err);
                if (err == EPIPE)
                    raiseSigpipe(k, pid);
                return;
            }
            // Never report more than the window: the runtime believes
            // exactly `n` bytes of its buffer were consumed.
            ctx->completeFilled(
                static_cast<int64_t>(std::min(n, src.span.len)),
                f->spanIoDirect());
        });
        return;
    }
    bfs::Buffer data = ctx->argData(1, 2);
    f->write(std::move(data), [&k, pid, ctx, f](int err, size_t n) {
        if (err) {
            ctx->completeErr(err);
            if (err == EPIPE)
                raiseSigpipe(k, pid);
            return;
        }
        ctx->complete(static_cast<int64_t>(n));
    });
}

void
sysPread(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    size_t len = static_cast<uint32_t>(
        ctx->isSync() ? ctx->argInt(2) : ctx->argInt(1));
    double off_arg = ctx->isSync() ? ctx->argNum(3) : ctx->argNum(2);
    if (off_arg < 0) {
        ctx->completeErr(EINVAL); // POSIX pread(2); see sysPwrite
        return;
    }
    uint64_t off = static_cast<uint64_t>(off_arg);
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    if (ctx->isSync()) {
        SyscallCtx::HeapSpan dst = ctx->heapSpan(1, len);
        if (!dst.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        f->preadInto(off, dst.span, [ctx, f, dst](int err, size_t n) {
            if (err) {
                ctx->completeErr(err);
                return;
            }
            ctx->completeFilled(
                static_cast<int64_t>(std::min(n, dst.span.len)),
                f->spanIoDirect());
        });
        return;
    }
    f->pread(off, len, [ctx, f](int err, bfs::BufferPtr data) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        ctx->completeData(*data, 1);
    });
}

void
sysPwrite(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    double off_arg = ctx->isSync() ? ctx->argNum(3) : ctx->argNum(2);
    if (off_arg < 0) {
        // POSIX EINVAL — and a safety boundary: a negative offset cast
        // to uint64 would wrap backend `off + len` arithmetic and send
        // a memcpy through a wild pointer.
        ctx->completeErr(EINVAL);
        return;
    }
    uint64_t off = static_cast<uint64_t>(off_arg);
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    if (ctx->isSync()) {
        SyscallCtx::HeapConstSpan src = ctx->heapConstSpan(1, 2);
        if (!src.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        f->pwriteFrom(off, src.span, [ctx, f, src](int err, size_t n) {
            if (err) {
                ctx->completeErr(err);
                return;
            }
            ctx->completeFilled(
                static_cast<int64_t>(std::min(n, src.span.len)),
                f->spanIoDirect());
        });
        return;
    }
    f->pwrite(off, ctx->argData(1, 2), [ctx, f](int err, size_t n) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        ctx->complete(static_cast<int64_t>(n));
    });
}

void
sysLlseek(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    int64_t off = static_cast<int64_t>(ctx->argNum(1));
    int whence = ctx->argInt(2);
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    f->seek(off, whence, [ctx, f](int64_t result) { ctx->complete(result); });
}

void
sysGetdents(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = ctx->argInt(0);
    size_t len = static_cast<uint32_t>(
        ctx->isSync() ? ctx->argInt(2) : ctx->argInt(1));
    KFilePtr f = getFile(t, fd);
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    if (ctx->isSync()) {
        // Zero-copy: the directory encodes its records straight into the
        // guest window instead of the clamped bounce copy completeData
        // used to make.
        SyscallCtx::HeapSpan dst = ctx->heapSpan(1, len);
        if (!dst.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        f->getdentsInto(dst.span, [ctx, f, dst](int err, size_t n) {
            if (err) {
                ctx->completeErr(err);
                return;
            }
            ctx->completeFilled(
                static_cast<int64_t>(std::min(n, dst.span.len)),
                f->spanIoDirect());
        });
        return;
    }
    f->getdents(len, [ctx, f](int err, bfs::BufferPtr data) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        ctx->completeData(*data, 1, -1);
    });
}

// ---------- vectored I/O (readv/writev/preadv/pwritev) ----------

/**
 * Resolve the iovec-array argument (ptr at arg 1, count at arg 2; see
 * sys::IoVec for the layout) into bounds-checked heap spans, merging
 * adjacent iovs that are contiguous in the heap so the drive loop issues
 * one backend call per contiguous run. Returns 0 and fills `out`, or the
 * errno to complete with: EINVAL for a count outside [1, kIovMax],
 * EFAULT for any byte — of the array or of an iov's span — outside the
 * personality heap. Shared-heap conventions only.
 */
int
resolveIovs(Task &t, const SyscallCtxPtr &ctx,
            std::vector<bfs::ByteSpan> &out)
{
    if (!t.heap)
        return EFAULT;
    int32_t cnt = ctx->argInt(2);
    if (cnt < 1 || cnt > sys::kIovMax)
        return EINVAL;
    size_t heap_len = t.heap->size();
    size_t arr = static_cast<uint32_t>(ctx->argInt(1));
    size_t arr_bytes = static_cast<size_t>(cnt) * sys::IOVEC_BYTES;
    if (ctx->argInt(1) < 0 || arr > heap_len ||
        arr_bytes > heap_len - arr)
        return EFAULT;
    uint8_t *heap = t.heap->data();
    out.clear();
    out.reserve(static_cast<size_t>(cnt));
    for (int32_t i = 0; i < cnt; i++) {
        sys::IoVec iov;
        std::memcpy(&iov, heap + arr + i * sys::IOVEC_BYTES,
                    sys::IOVEC_BYTES);
        size_t off = static_cast<uint32_t>(iov.ptr);
        size_t len = static_cast<uint32_t>(iov.len);
        if (iov.ptr < 0 || iov.len < 0 || off > heap_len ||
            len > heap_len - off)
            return EFAULT;
        if (len == 0)
            continue; // zero-length iovs contribute nothing
        uint8_t *data = heap + off;
        if (!out.empty() && out.back().data + out.back().len == data)
            out.back().len += len; // coalesce a contiguous run
        else
            out.push_back(bfs::ByteSpan{data, len});
    }
    return 0;
}

/**
 * One in-flight vectored call: drives one zero-copy file operation per
 * contiguous run, accumulating POSIX short-count semantics — a run that
 * moves fewer bytes than its span (EOF, backend short count) or an error
 * after partial progress completes with the bytes moved so far; an error
 * on the first run is the call's error.
 */
struct VectoredIo : std::enable_shared_from_this<VectoredIo>
{
    SyscallCtxPtr ctx;
    KFilePtr f;
    Kernel *k = nullptr; ///< for SIGPIPE on EPIPE write completions
    int pid = 0;
    jsvm::SabPtr heap; ///< pins the spans' backing memory
    std::vector<bfs::ByteSpan> spans;
    size_t i = 0;
    uint64_t done = 0;
    bool positional = false;
    bool writing = false;
    uint64_t off = 0;

    void
    step()
    {
        if (i >= spans.size()) {
            ctx->completeFilled(static_cast<int64_t>(done),
                                f->spanIoDirect());
            return;
        }
        bfs::ByteSpan span = spans[i];
        auto self = shared_from_this();
        bfs::SizeCb finish = [self](int err, size_t n) {
            bfs::ByteSpan cur = self->spans[self->i];
            n = std::min(n, cur.len);
            if (err) {
                if (self->done > 0)
                    self->ctx->completeFilled(
                        static_cast<int64_t>(self->done),
                        self->f->spanIoDirect());
                else {
                    self->ctx->completeErr(err);
                    // A call that *completes* EPIPE raises SIGPIPE;
                    // partial progress returns the short count instead.
                    if (self->writing && err == EPIPE && self->k)
                        raiseSigpipe(*self->k, self->pid);
                }
                return;
            }
            self->done += n;
            if (n < cur.len) { // short run ends the call
                self->ctx->completeFilled(
                    static_cast<int64_t>(self->done),
                    self->f->spanIoDirect());
                return;
            }
            self->i++;
            self->step();
        };
        if (writing) {
            bfs::ConstByteSpan src{span.data, span.len};
            if (positional)
                f->pwriteFrom(off + done, src, std::move(finish));
            else
                f->writeFrom(src, std::move(finish));
        } else {
            if (positional)
                f->preadInto(off + done, span, std::move(finish));
            else
                f->readInto(span, std::move(finish));
        }
    }
};

void
vectoredCommon(Kernel &k, Task &t, SyscallCtxPtr ctx, bool positional,
               bool writing)
{
    if (!ctx->isSync()) {
        // The iovec encoding is heap-offset based; the async convention
        // has no personality heap for the entries to point into.
        ctx->completeErr(ENOSYS);
        return;
    }
    KFilePtr f = getFile(t, ctx->argInt(0));
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    auto io = std::make_shared<VectoredIo>();
    int rc = resolveIovs(t, ctx, io->spans);
    if (rc) {
        ctx->completeErr(rc);
        return;
    }
    io->positional = positional;
    io->writing = writing;
    if (positional) {
        double off_arg = ctx->argNum(3);
        if (off_arg < 0) { // see sysPwrite: EINVAL before the cast wraps
            ctx->completeErr(EINVAL);
            return;
        }
        io->off = static_cast<uint64_t>(off_arg);
    }
    io->ctx = std::move(ctx);
    io->f = std::move(f);
    io->k = &k;
    io->pid = t.pid;
    io->heap = t.heap;
    io->step();
}

void
sysReadv(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    vectoredCommon(k, t, std::move(ctx), false, false);
}

void
sysWritev(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    vectoredCommon(k, t, std::move(ctx), false, true);
}

void
sysPreadv(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    vectoredCommon(k, t, std::move(ctx), true, false);
}

void
sysPwritev(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    vectoredCommon(k, t, std::move(ctx), true, true);
}

void
sysReaddir(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    // Async convenience used by the Node runtime: names as an array.
    std::string path = resolvePath(t, ctx->argStr(0));
    k.fs().readdir(path, [ctx](int err, std::vector<bfs::DirEntry> es) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        jsvm::Value names = jsvm::Value::array();
        for (const auto &e : es)
            names.push(jsvm::Value(e.name));
        ctx->completeValue(static_cast<int64_t>(es.size()),
                           std::move(names));
    });
}

void
sysDup(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    KFilePtr f = getFile(t, ctx->argInt(0));
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    int fd = t.allocFd();
    f->ref();
    t.files[fd] = f;
    ctx->complete(fd);
}

void
sysDup2(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int oldfd = ctx->argInt(0);
    int newfd = ctx->argInt(1);
    KFilePtr f = getFile(t, oldfd);
    if (!f || newfd < 0) {
        ctx->completeErr(EBADF);
        return;
    }
    if (oldfd == newfd) {
        ctx->complete(newfd);
        return;
    }
    if (KFilePtr old = getFile(t, newfd)) {
        t.files.erase(newfd);
        old->unref();
    }
    f->ref();
    t.files[newfd] = f;
    ctx->complete(newfd);
}

void
sysIoctl(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    KFilePtr f = getFile(t, ctx->argInt(0));
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    // Only the isatty probe (TCGETS) is supported.
    ctx->complete(f->isTty() ? 0 : -ENOTTY);
}

// ---------- file metadata & directories ----------

void
statCommon(Kernel &k, Task &t, SyscallCtxPtr ctx, bool follow)
{
    std::string path = resolvePath(t, ctx->argStr(0));
    auto cb = [ctx](int err, const bfs::Stat &st) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        ctx->completeStat(sys::statXFromBfs(st), 1);
    };
    if (follow)
        k.fs().stat(path, cb);
    else
        k.fs().lstat(path, cb);
}

void
sysStat(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    statCommon(k, t, ctx, true);
}

void
sysLstat(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    statCommon(k, t, ctx, false);
}

void
sysFstat(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    KFilePtr f = getFile(t, ctx->argInt(0));
    if (!f) {
        ctx->completeErr(EBADF);
        return;
    }
    f->fstat([ctx, f](int err, const bfs::Stat &st) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        ctx->completeStat(sys::statXFromBfs(st), 1);
    });
}

void
sysAccess(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    std::string path = resolvePath(t, ctx->argStr(0));
    k.fs().access(path, ctx->argInt(1), [ctx](int err) {
        if (err)
            ctx->completeErr(err);
        else
            ctx->complete(0);
    });
}

void
sysUnlink(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    k.fs().unlink(resolvePath(t, ctx->argStr(0)), [ctx](int err) {
        if (err)
            ctx->completeErr(err);
        else
            ctx->complete(0);
    });
}

void
sysMkdir(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    k.fs().mkdir(resolvePath(t, ctx->argStr(0)),
                 static_cast<uint32_t>(ctx->argInt(1)), [ctx](int err) {
                     if (err)
                         ctx->completeErr(err);
                     else
                         ctx->complete(0);
                 });
}

void
sysRmdir(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    k.fs().rmdir(resolvePath(t, ctx->argStr(0)), [ctx](int err) {
        if (err)
            ctx->completeErr(err);
        else
            ctx->complete(0);
    });
}

void
sysRename(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    k.fs().rename(resolvePath(t, ctx->argStr(0)),
                  resolvePath(t, ctx->argStr(1)), [ctx](int err) {
                      if (err)
                          ctx->completeErr(err);
                      else
                          ctx->complete(0);
                  });
}

void
sysReadlink(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    if (ctx->isSync()) {
        // POSIX readlink(2): silently truncate to bufsiz — no ERANGE, no
        // NUL terminator — and return the number of bytes placed.
        // (completeStr's ERANGE is getcwd's contract, not readlink's.)
        int32_t bufsiz = ctx->argInt(2);
        if (bufsiz <= 0) {
            ctx->completeErr(EINVAL);
            return;
        }
        SyscallCtx::HeapSpan dst =
            ctx->heapSpan(1, static_cast<uint32_t>(bufsiz));
        if (!dst.ok()) {
            ctx->completeErr(EFAULT);
            return;
        }
        k.fs().readlink(
            resolvePath(t, ctx->argStr(0)),
            [ctx, dst](int err, const std::string &target) {
                if (err) {
                    ctx->completeErr(err);
                    return;
                }
                size_t n = std::min(target.size(), dst.span.len);
                if (n > 0)
                    std::memcpy(dst.span.data, target.data(), n);
                ctx->completeFilled(static_cast<int64_t>(n));
            });
        return;
    }
    k.fs().readlink(resolvePath(t, ctx->argStr(0)),
                    [ctx](int err, const std::string &target) {
                        if (err) {
                            ctx->completeErr(err);
                            return;
                        }
                        ctx->completeStr(target, 1, 2);
                    });
}

void
sysSymlink(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    k.fs().symlink(ctx->argStr(0), resolvePath(t, ctx->argStr(1)),
                   [ctx](int err) {
                       if (err)
                           ctx->completeErr(err);
                       else
                           ctx->complete(0);
                   });
}

void
sysUtimes(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    int64_t atime = static_cast<int64_t>(ctx->argNum(1));
    int64_t mtime = static_cast<int64_t>(ctx->argNum(2));
    if (ctx->isSync()) { // seconds in the sync convention
        atime *= 1000000;
        mtime *= 1000000;
    }
    k.fs().utimes(resolvePath(t, ctx->argStr(0)), atime, mtime,
                  [ctx](int err) {
                      if (err)
                          ctx->completeErr(err);
                      else
                          ctx->complete(0);
                  });
}

// ---------- pipes ----------

void
sysPipe2(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    auto pipe = std::make_shared<Pipe>();
    int rfd = t.allocFd();
    t.files[rfd] = std::make_shared<PipeEndFile>(pipe, true);
    int wfd = t.allocFd();
    t.files[wfd] = std::make_shared<PipeEndFile>(pipe, false);
    if (ctx->isSync()) {
        int32_t fds[2] = {rfd, wfd};
        bfs::Buffer out(8);
        std::memcpy(out.data(), fds, 8);
        ctx->completeData(out, 0); // fds written at the pointer arg
    } else {
        ctx->complete(rfd, wfd);
    }
}

// ---------- sockets ----------

void
sysSocket(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = t.allocFd();
    t.files[fd] = std::make_shared<SocketFile>();
    ctx->complete(fd);
}

void
sysBind(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    auto *sock = dynamic_cast<SocketFile *>(getFile(t, ctx->argInt(0)).get());
    if (!sock) {
        ctx->completeErr(ENOTSOCK);
        return;
    }
    int port = k.net().allocBindPort(ctx->argInt(1));
    if (port < 0) {
        ctx->completeErr(-port);
        return;
    }
    int rc = sock->bind(port);
    if (rc)
        ctx->completeErr(rc);
    else
        ctx->complete(0);
}

void
sysListen(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    auto sock =
        std::dynamic_pointer_cast<SocketFile>(getFile(t, ctx->argInt(0)));
    if (!sock) {
        ctx->completeErr(ENOTSOCK);
        return;
    }
    if (k.net().portListening(sock->port())) {
        ctx->completeErr(EADDRINUSE);
        return;
    }
    int rc = sock->listen(ctx->argInt(1));
    if (rc) {
        ctx->completeErr(rc);
        return;
    }
    // Socket notification (§4.1): tell the web application the server is
    // ready, so it need not poll.
    int port = sock->port();
    k.notifyListen(port, std::move(sock));
    ctx->complete(0);
}

void
sysAccept(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    auto file = getFile(t, ctx->argInt(0));
    auto *sock = dynamic_cast<SocketFile *>(file.get());
    if (!sock) {
        ctx->completeErr(ENOTSOCK);
        return;
    }
    int pid = t.pid;
    sock->accept([&k, pid, ctx, file](int err, SocketFilePtr peer) {
        if (err) {
            ctx->completeErr(err);
            return;
        }
        Task *t2 = k.task(pid);
        if (!t2 || t2->state == TaskState::Zombie)
            return; // peer collapses when its pipes are dropped
        int fd = t2->allocFd();
        t2->files[fd] = peer;
        ctx->complete(fd, peer->remotePort());
    });
}

void
sysConnect(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    auto sock =
        std::dynamic_pointer_cast<SocketFile>(getFile(t, ctx->argInt(0)));
    if (!sock) {
        ctx->completeErr(ENOTSOCK);
        return;
    }
    // The rendezvous may park (live listener, backlog full) — the
    // completion then rides the deferral protocol and lands when accept
    // frees a slot (0) or the listener closes (ECONNREFUSED). Immediate
    // outcomes run the callback before connectOrPark returns.
    k.connectOrPark(std::move(sock), ctx->argInt(1), [ctx](int err) {
        if (err)
            ctx->completeErr(err);
        else
            ctx->complete(0);
    });
}

void
sysGetsockname(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    auto *sock = dynamic_cast<SocketFile *>(getFile(t, ctx->argInt(0)).get());
    if (!sock) {
        ctx->completeErr(ENOTSOCK);
        return;
    }
    ctx->complete(sock->port());
}

void
sysShutdown(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    auto *sock = dynamic_cast<SocketFile *>(getFile(t, ctx->argInt(0)).get());
    if (!sock) {
        ctx->completeErr(ENOTSOCK);
        return;
    }
    int rc = sock->shutdown(ctx->argInt(1));
    if (rc)
        ctx->completeErr(rc);
    else
        ctx->complete(0);
}

// ---------- poll (readiness over the deferral protocol) ----------

/** Readiness mask for one polled descriptor. POLLHUP/POLLERR report
 * regardless of the requested events, POSIX-style. Descriptor kinds
 * without a wait condition (regular files, ttys, /dev/null) are always
 * ready for whatever was asked. */
int16_t
pollRevents(KFile *f, int16_t events)
{
    int16_t r = 0;
    if (auto *pe = dynamic_cast<PipeEndFile *>(f)) {
        PipePtr p = pe->pipe();
        if (pe->isReader()) {
            if ((events & sys::POLLIN_) &&
                (p->buffered() > 0 || p->writerClosed()))
                r |= sys::POLLIN_;
            if (p->writerClosed())
                r |= sys::POLLHUP_;
        } else {
            if ((events & sys::POLLOUT_) &&
                p->buffered() < p->capacity())
                r |= sys::POLLOUT_;
            if (p->readerClosed())
                r |= sys::POLLERR_;
        }
        return r;
    }
    if (auto *sock = dynamic_cast<SocketFile *>(f)) {
        if ((events & sys::POLLIN_) && sock->readable())
            r |= sys::POLLIN_;
        if ((events & sys::POLLOUT_) && sock->writable())
            r |= sys::POLLOUT_;
        return r;
    }
    return events & (sys::POLLIN_ | sys::POLLOUT_);
}

/**
 * The poll-shaped readiness trap (shared-heap conventions only): one
 * SQE covers the whole fd set. Records are re-read from the guest
 * window on every evaluation — the set lives in the caller's heap for
 * the life of the call. When nothing is ready the completion parks
 * against every polled pipe/socket's one-shot readiness watcher; the
 * first event re-evaluates and pushes the deferred CQE (ready count in
 * r0, revents written in place). A spurious wake — the watcher fired
 * but another poller consumed the event first — re-arms the watchers,
 * so a parked poll is never stranded.
 */
void
sysPoll(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    if (!ctx->isSync()) {
        ctx->completeErr(ENOSYS); // record layout needs the shared heap
        return;
    }
    int32_t nfds = ctx->argInt(1);
    if (nfds < 1 || nfds > sys::kPollMaxFds) {
        ctx->completeErr(EINVAL);
        return;
    }
    SyscallCtx::HeapSpan recs = ctx->heapSpan(
        0, static_cast<size_t>(nfds) * sys::POLLFD_BYTES);
    if (!recs.ok()) {
        ctx->completeErr(EFAULT);
        return;
    }
    int pid = t.pid;

    // Evaluate the whole set: write revents in place, complete with the
    // ready count when any descriptor is ready. Returns true when the
    // call is finished (completed, or its task died — the parked SQE
    // dies with it; finishRing no-ops on a dead task).
    auto attempt = [&k, pid, ctx, recs, nfds]() -> bool {
        Task *t2 = k.task(pid);
        if (!t2 || t2->state == TaskState::Zombie)
            return true;
        int ready = 0;
        for (int32_t i = 0; i < nfds; i++) {
            uint8_t *rec = recs.span.data + i * sys::POLLFD_BYTES;
            sys::PollFd p;
            std::memcpy(&p, rec, sys::POLLFD_BYTES);
            KFilePtr f = getFile(*t2, p.fd);
            p.revents =
                f ? pollRevents(f.get(), p.events) : sys::POLLNVAL_;
            std::memcpy(rec, &p, sys::POLLFD_BYTES);
            if (p.revents)
                ready++;
        }
        if (ready == 0)
            return false;
        ctx->complete(ready);
        return true;
    };
    if (attempt())
        return;

    // Park: one-shot watchers on every waitable descriptor, sharing one
    // wake that re-evaluates the set. registerAll is self-referential
    // (the jsvm closure-pump idiom) so a spurious wake can re-arm.
    auto registerAll = std::make_shared<std::function<void()>>();
    auto wake = [ctx, attempt, registerAll]() {
        if (ctx->completed())
            return;
        if (!attempt())
            (*registerAll)();
    };
    *registerAll = [&k, pid, recs, nfds, wake]() {
        Task *t2 = k.task(pid);
        if (!t2 || t2->state == TaskState::Zombie)
            return;
        for (int32_t i = 0; i < nfds; i++) {
            sys::PollFd p;
            std::memcpy(&p, recs.span.data + i * sys::POLLFD_BYTES,
                        sys::POLLFD_BYTES);
            KFilePtr f = getFile(*t2, p.fd);
            if (!f)
                continue;
            if (auto *pe = dynamic_cast<PipeEndFile *>(f.get())) {
                // Readers watch readability even when events omit
                // POLLIN (the HUP wake); writers mirror with POLLERR.
                if (pe->isReader())
                    pe->pipe()->watchReadable(wake);
                else
                    pe->pipe()->watchWritable(wake);
            } else if (auto *sock =
                           dynamic_cast<SocketFile *>(f.get())) {
                if (p.events & sys::POLLOUT_)
                    sock->watchWritable(wake);
                if ((p.events & sys::POLLIN_) || !(p.events & sys::POLLOUT_))
                    sock->watchReadable(wake);
            }
        }
    };
    (*registerAll)();
}

// ---------- epoll (stateful readiness over the deferral protocol) ----------

void
sysEpollCreate(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    int fd = t.allocFd();
    t.files[fd] = std::make_shared<EpollFile>();
    ctx->complete(fd);
}

void
sysEpollCtl(Kernel &, Task &t, SyscallCtxPtr ctx)
{
    auto *ep = dynamic_cast<EpollFile *>(getFile(t, ctx->argInt(0)).get());
    if (!ep) {
        ctx->completeErr(EINVAL);
        return;
    }
    int op = ctx->argInt(1);
    int fd = ctx->argInt(2);
    if (op == sys::EPOLL_CTL_ADD_ && !getFile(t, fd)) {
        ctx->completeErr(EBADF);
        return;
    }
    int rc = ep->ctl(op, fd, ctx->argInt(3));
    if (rc)
        ctx->completeErr(rc);
    else
        ctx->complete(0);
}

/**
 * epoll_wait over the kernel-side interest list (shared-heap conventions
 * only): (epfd, events_ptr, maxevents). Unlike poll, nothing is
 * re-marshalled per call — the registered set lives in the EpollFile and
 * only ready EpollEvent records travel back through the guest window.
 * Readiness is level-triggered; when nothing is ready the completion
 * parks against every registered object's one-shot watcher (same
 * re-arming shape as sysPoll's) and the CQE is deferred. A registered fd
 * that has since been closed reports POLLERR_|POLLHUP_ — the descriptor
 * table has no close-time back-pointers to epoll sets, so the caller
 * prunes it with EPOLL_CTL_DEL_.
 */
void
sysEpollWait(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    if (!ctx->isSync()) {
        ctx->completeErr(ENOSYS); // record layout needs the shared heap
        return;
    }
    int32_t maxevents = ctx->argInt(2);
    if (maxevents < 1 || maxevents > sys::kEpollMaxEvents) {
        ctx->completeErr(EINVAL);
        return;
    }
    auto ep =
        std::dynamic_pointer_cast<EpollFile>(getFile(t, ctx->argInt(0)));
    if (!ep) {
        ctx->completeErr(EINVAL);
        return;
    }
    SyscallCtx::HeapSpan recs = ctx->heapSpan(
        1, static_cast<size_t>(maxevents) * sys::EPOLL_EVENT_BYTES);
    if (!recs.ok()) {
        ctx->completeErr(EFAULT);
        return;
    }
    int pid = t.pid;

    // Evaluate the interest list: write ready records, complete with the
    // count. Returns true when the call is finished (completed, or its
    // task died — finishRing no-ops on a dead task).
    auto attempt = [&k, pid, ctx, ep, recs, maxevents]() -> bool {
        Task *t2 = k.task(pid);
        if (!t2 || t2->state == TaskState::Zombie)
            return true;
        int32_t ready = 0;
        for (const auto &[fd, mask] : ep->interest()) {
            if (ready >= maxevents)
                break;
            KFilePtr f = getFile(*t2, fd);
            int16_t r =
                f ? pollRevents(f.get(), static_cast<int16_t>(mask))
                  : static_cast<int16_t>(sys::POLLERR_ | sys::POLLHUP_);
            if (!r)
                continue;
            sys::EpollEvent ev;
            ev.events = r;
            ev.fd = fd;
            std::memcpy(recs.span.data + ready * sys::EPOLL_EVENT_BYTES,
                        &ev, sys::EPOLL_EVENT_BYTES);
            ready++;
        }
        if (ready == 0)
            return false;
        ctx->complete(ready);
        return true;
    };
    if (attempt())
        return;

    k.statsMut().epollWaitsParked++;
    auto registerAll = std::make_shared<std::function<void()>>();
    auto wake = [ctx, attempt, registerAll]() {
        if (ctx->completed())
            return;
        if (!attempt())
            (*registerAll)();
    };
    *registerAll = [&k, pid, ep, wake]() {
        Task *t2 = k.task(pid);
        if (!t2 || t2->state == TaskState::Zombie)
            return;
        for (const auto &[fd, mask] : ep->interest()) {
            KFilePtr f = getFile(*t2, fd);
            if (!f)
                continue;
            if (auto *pe = dynamic_cast<PipeEndFile *>(f.get())) {
                // Readers watch readability even when the mask omits
                // POLLIN (the HUP wake); writers mirror with POLLERR.
                if (pe->isReader())
                    pe->pipe()->watchReadable(wake);
                else
                    pe->pipe()->watchWritable(wake);
            } else if (auto *sock = dynamic_cast<SocketFile *>(f.get())) {
                if (mask & sys::POLLOUT_)
                    sock->watchWritable(wake);
                if ((mask & sys::POLLIN_) || !(mask & sys::POLLOUT_))
                    sock->watchReadable(wake);
            }
        }
    };
    (*registerAll)();
}

// ---------- sendfile (file → pipe/socket, kernel-side) ----------

/**
 * One in-flight sendfile: drives preadInto → writeFrom through a kernel
 * staging buffer in 64KiB chunks, so the payload never touches the guest
 * heap — the capstone of the deferral protocol, since a full pipe parks
 * the writeFrom kernel-side and the CQE arrives deferred. A short or
 * empty read is EOF (complete with the bytes moved so far); an error
 * after partial progress is a short count; an error on zero progress is
 * the call's error, with EPIPE raising SIGPIPE like a plain write.
 */
struct SendfileIo : std::enable_shared_from_this<SendfileIo>
{
    static constexpr size_t kChunk = 64 * 1024;

    SyscallCtxPtr ctx;
    KFilePtr in, out;
    Kernel *k = nullptr;
    int pid = 0;
    uint64_t off = 0;
    uint64_t count = 0;
    uint64_t done = 0;
    bfs::Buffer staging;

    void
    step()
    {
        uint64_t left = count - done;
        if (left == 0) {
            finish();
            return;
        }
        size_t chunk =
            static_cast<size_t>(std::min<uint64_t>(left, kChunk));
        staging.resize(chunk);
        auto self = shared_from_this();
        in->preadInto(
            off + done, bfs::ByteSpan{staging.data(), chunk},
            [self, chunk](int err, size_t got) {
                got = std::min(got, chunk);
                if (err) {
                    if (self->done > 0)
                        self->finish();
                    else
                        self->ctx->completeErr(err);
                    return;
                }
                if (got == 0) { // EOF: the short count callers loop on
                    self->finish();
                    return;
                }
                bool eof = got < chunk;
                self->out->writeFrom(
                    bfs::ConstByteSpan{self->staging.data(), got},
                    [self, got, eof](int werr, size_t n) {
                        n = std::min(n, got);
                        if (werr) {
                            if (self->done > 0)
                                self->finish();
                            else {
                                self->ctx->completeErr(werr);
                                if (werr == EPIPE && self->k)
                                    raiseSigpipe(*self->k, self->pid);
                            }
                            return;
                        }
                        self->done += n;
                        if (eof || n < got) {
                            self->finish();
                            return;
                        }
                        self->step();
                    });
            });
    }

    void
    finish()
    {
        if (k)
            k->statsMut().sendfileBytes += done;
        ctx->complete(static_cast<int64_t>(done));
    }
};

void
sysSendfile(Kernel &k, Task &t, SyscallCtxPtr ctx)
{
    // (out_fd, in_fd, off, count): all-integer arguments, so the trap
    // works identically under every convention and needs no pointer
    // validation at ring drain time.
    KFilePtr out = getFile(t, ctx->argInt(0));
    KFilePtr in = getFile(t, ctx->argInt(1));
    if (!out || !in) {
        ctx->completeErr(EBADF);
        return;
    }
    double off_arg = ctx->argNum(2);
    int64_t cnt = static_cast<int64_t>(ctx->argNum(3));
    if (off_arg < 0 || cnt < 0) {
        ctx->completeErr(EINVAL); // see sysPwrite: reject before the cast
        return;
    }
    if (cnt == 0) {
        ctx->complete(0);
        return;
    }
    auto io = std::make_shared<SendfileIo>();
    io->ctx = std::move(ctx);
    io->in = std::move(in);
    io->out = std::move(out);
    io->k = &k;
    io->pid = t.pid;
    io->off = static_cast<uint64_t>(off_arg);
    io->count = static_cast<uint64_t>(cnt);
    io->step();
}

const std::map<std::string, Handler> &
handlerTable()
{
    static const std::map<std::string, Handler> table = {
        {"exit", sysExit},
        {"fork", sysFork},
        {"spawn", sysSpawn},
        {"execve", sysExecve},
        {"wait4", sysWait4},
        {"getpid", sysGetpid},
        {"getppid", sysGetppid},
        {"getcwd", sysGetcwd},
        {"chdir", sysChdir},
        {"kill", sysKill},
        {"sigaction", sysSigaction},
        {"gettimeofday", sysGettimeofday},
        {"personality", sysPersonality},
        {"ring_personality", sysRingPersonality},
        {"open", sysOpen},
        {"close", sysClose},
        {"read", sysRead},
        {"write", sysWrite},
        {"pread", sysPread},
        {"pwrite", sysPwrite},
        {"readv", sysReadv},
        {"writev", sysWritev},
        {"preadv", sysPreadv},
        {"pwritev", sysPwritev},
        {"llseek", sysLlseek},
        {"getdents", sysGetdents},
        {"getdents64", sysGetdents},
        {"readdir", sysReaddir},
        {"dup", sysDup},
        {"dup2", sysDup2},
        {"ioctl", sysIoctl},
        {"stat", sysStat},
        {"lstat", sysLstat},
        {"fstat", sysFstat},
        {"access", sysAccess},
        {"unlink", sysUnlink},
        {"mkdir", sysMkdir},
        {"rmdir", sysRmdir},
        {"rename", sysRename},
        {"readlink", sysReadlink},
        {"symlink", sysSymlink},
        {"utimes", sysUtimes},
        {"pipe2", sysPipe2},
        {"socket", sysSocket},
        {"bind", sysBind},
        {"listen", sysListen},
        {"accept", sysAccept},
        {"connect", sysConnect},
        {"getsockname", sysGetsockname},
        {"shutdown", sysShutdown},
        {"poll", sysPoll},
        {"epoll_create", sysEpollCreate},
        {"epoll_ctl", sysEpollCtl},
        {"epoll_wait", sysEpollWait},
        {"sendfile", sysSendfile},
    };
    return table;
}

} // namespace

void
Kernel::dispatchSyscall(Task &t, SyscallCtxPtr ctx)
{
    auto it = handlerTable().find(ctx->name());
    if (it == handlerTable().end()) {
        ctx->completeErr(ENOSYS);
        return;
    }
    it->second(*this, t, std::move(ctx));
}

void
Kernel::replyTo(Task &, const jsvm::Value &)
{
    // (folded into SyscallCtx; kept for interface stability)
}

} // namespace kernel
} // namespace browsix
