/**
 * @file
 * Kernel file objects: what a file descriptor refers to.
 *
 * Every object a descriptor can name (regular file, directory, pipe end,
 * socket, host-callback sink) implements KFile. The kernel reference-counts
 * these (§3.6: "BROWSIX manages each object (whether it is a file,
 * directory, pipe or socket) with reference counting"): dup and child fd
 * inheritance bump the count; the last close triggers onLastClose, which
 * is what gives pipes their EOF/EPIPE semantics.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bfs/backend.h"
#include "bfs/vfs.h"
#include "runtime/syscall_proto.h"

namespace browsix {
namespace kernel {

/// seek whence values.
constexpr int SEEK_SET_ = 0;
constexpr int SEEK_CUR_ = 1;
constexpr int SEEK_END_ = 2;

class KFile
{
  public:
    virtual ~KFile() = default;

    virtual const char *kind() const = 0;

    /** Sequential read (advances the cursor where one exists). Completing
     * with empty data and err==0 signals EOF. */
    virtual void read(size_t maxlen, bfs::DataCb cb) = 0;

    /**
     * Zero-copy sequential read: fill the caller-provided window (for
     * sync/ring syscalls it aliases the guest heap) and complete with the
     * byte count; 0 with err==0 is EOF. The default bounces through
     * read() — regular files override it to let the backend write the
     * destination directly.
     */
    virtual void readInto(bfs::ByteSpan dst, bfs::SizeCb cb)
    {
        read(dst.len, bfs::bounceIntoSpan(dst, std::move(cb)));
    }

    /** Sequential write; completes with the number of bytes written. */
    virtual void write(bfs::Buffer data, bfs::SizeCb cb) = 0;

    /**
     * Zero-copy sequential write: consume the caller-provided source
     * window (for sync/ring syscalls it aliases the guest heap, pinned by
     * the kernel for the duration of the call). The default bounces the
     * window into a Buffer and calls write() — files whose storage the
     * data must land in anyway (pipes, sinks) keep that single necessary
     * copy, while regular files override to hand the window straight to
     * the backend.
     */
    virtual void writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb)
    {
        write(src.len ? bfs::Buffer(src.data, src.data + src.len)
                      : bfs::Buffer{},
              std::move(cb));
    }

    virtual void pread(uint64_t off, size_t len, bfs::DataCb cb)
    {
        (void)off;
        (void)len;
        cb(ESPIPE, nullptr);
    }

    /** Zero-copy positional read; same contract as readInto. The default
     * routes through pread(), so non-seekable files keep their ESPIPE. */
    virtual void preadInto(uint64_t off, bfs::ByteSpan dst, bfs::SizeCb cb)
    {
        pread(off, dst.len, bfs::bounceIntoSpan(dst, std::move(cb)));
    }

    virtual void pwrite(uint64_t off, bfs::Buffer data, bfs::SizeCb cb)
    {
        (void)off;
        (void)data;
        cb(ESPIPE, 0);
    }

    /** Zero-copy positional write; same contract as writeFrom. The
     * default routes through pwrite(), so non-seekable files keep their
     * ESPIPE. */
    virtual void pwriteFrom(uint64_t off, bfs::ConstByteSpan src,
                            bfs::SizeCb cb)
    {
        pwrite(off,
               src.len ? bfs::Buffer(src.data, src.data + src.len)
                       : bfs::Buffer{},
               std::move(cb));
    }

    virtual void fstat(bfs::StatCb cb)
    {
        bfs::Stat st;
        st.type = bfs::FileType::Regular;
        cb(0, st);
    }

    /** Completes with the new offset, or -errno. */
    virtual void seek(int64_t off, int whence,
                      std::function<void(int64_t)> cb)
    {
        (void)off;
        (void)whence;
        cb(-ESPIPE);
    }

    virtual void getdents(size_t max_bytes, bfs::DataCb cb)
    {
        (void)max_bytes;
        cb(ENOTDIR, nullptr);
    }

    /**
     * Zero-copy getdents: encode dirent records directly into the
     * caller-provided window (for sync/ring syscalls: the guest heap)
     * and complete with the encoded byte count; 0 at end-of-directory.
     * The default bounces through getdents() — directories override to
     * skip the intermediate record buffer.
     */
    virtual void getdentsInto(bfs::ByteSpan dst, bfs::SizeCb cb)
    {
        getdents(dst.len, bfs::bounceIntoSpan(dst, std::move(cb)));
    }

    virtual bool isTty() const { return false; }

    /**
     * True when this file's span operations (readInto/writeFrom/
     * pwriteFrom/getdentsInto) move data through the caller's window
     * directly, rather than via the base-class Buffer bounce. Syscall
     * handlers pass this to completeFilled so the kernel's zero-copy vs
     * copied counters report the path the data actually took.
     */
    virtual bool spanIoDirect() const { return false; }

    // --- descriptor reference counting ---
    void ref() { refs_++; }
    /** Drop a reference; runs onLastClose when it was the last. */
    void unref()
    {
        if (--refs_ == 0)
            onLastClose();
    }
    int refCount() const { return refs_; }

  protected:
    virtual void onLastClose() {}

  private:
    int refs_ = 1;
};

using KFilePtr = std::shared_ptr<KFile>;

/** A regular file: a backend OpenFile plus a cursor. */
class RegularFile : public KFile
{
  public:
    RegularFile(bfs::OpenFilePtr f, bool append)
        : file_(std::move(f)), append_(append)
    {
    }

    const char *kind() const override { return "file"; }
    bool spanIoDirect() const override { return true; }

    void read(size_t maxlen, bfs::DataCb cb) override;
    void readInto(bfs::ByteSpan dst, bfs::SizeCb cb) override;
    void write(bfs::Buffer data, bfs::SizeCb cb) override;
    void writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb) override;
    void pread(uint64_t off, size_t len, bfs::DataCb cb) override;
    void preadInto(uint64_t off, bfs::ByteSpan dst, bfs::SizeCb cb) override;
    void pwrite(uint64_t off, bfs::Buffer data, bfs::SizeCb cb) override;
    void pwriteFrom(uint64_t off, bfs::ConstByteSpan src,
                    bfs::SizeCb cb) override;
    void fstat(bfs::StatCb cb) override;
    void seek(int64_t off, int whence,
              std::function<void(int64_t)> cb) override;

  private:
    bfs::OpenFilePtr file_;
    uint64_t offset_ = 0;
    bool append_;
};

/** An open directory, supporting getdents with a cursor. */
class DirFile : public KFile
{
  public:
    DirFile(bfs::Vfs *vfs, std::string path)
        : vfs_(vfs), path_(std::move(path))
    {
    }

    const char *kind() const override { return "dir"; }
    bool spanIoDirect() const override { return true; }

    void read(size_t, bfs::DataCb cb) override { cb(EISDIR, nullptr); }
    void write(bfs::Buffer, bfs::SizeCb cb) override { cb(EISDIR, 0); }
    void fstat(bfs::StatCb cb) override { vfs_->stat(path_, cb); }
    void getdents(size_t max_bytes, bfs::DataCb cb) override;
    void getdentsInto(bfs::ByteSpan dst, bfs::SizeCb cb) override;

    const std::string &path() const { return path_; }

  private:
    /** Load the entry list once, then run serve() against the cursor. */
    void withEntries(bfs::ErrCb fail, std::function<void()> serve);

    bfs::Vfs *vfs_;
    std::string path_;
    bool loaded_ = false;
    std::vector<sys::Dirent> entries_;
    size_t cursor_ = 0;
};

/**
 * Write-only sink delivering output to a host callback: how standard
 * output/error of a `kernel.system()` process reaches the web application
 * (Figure 4's logStdout/logStderr parameters).
 */
class CallbackSinkFile : public KFile
{
  public:
    using Sink = std::function<void(const bfs::Buffer &)>;

    explicit CallbackSinkFile(Sink sink, bool tty = true)
        : sink_(std::move(sink)), tty_(tty)
    {
    }

    const char *kind() const override { return "tty"; }

    void read(size_t, bfs::DataCb cb) override
    {
        cb(0, std::make_shared<bfs::Buffer>()); // EOF
    }

    void write(bfs::Buffer data, bfs::SizeCb cb) override
    {
        size_t n = data.size();
        if (sink_)
            sink_(data);
        cb(0, n);
    }

    bool isTty() const override { return tty_; }

  private:
    Sink sink_;
    bool tty_;
};

/** /dev/null: reads EOF, writes vanish. */
class NullFile : public KFile
{
  public:
    const char *kind() const override { return "null"; }

    void read(size_t, bfs::DataCb cb) override
    {
        cb(0, std::make_shared<bfs::Buffer>());
    }

    void write(bfs::Buffer data, bfs::SizeCb cb) override
    {
        cb(0, data.size());
    }
};

/** In-memory data source used as stdin for host-fed processes. */
class BufferSourceFile : public KFile
{
  public:
    explicit BufferSourceFile(bfs::Buffer data) : data_(std::move(data)) {}

    const char *kind() const override { return "bufsrc"; }

    void read(size_t maxlen, bfs::DataCb cb) override
    {
        auto out = std::make_shared<bfs::Buffer>();
        if (pos_ < data_.size()) {
            size_t n = std::min(maxlen, data_.size() - pos_);
            out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
            pos_ += n;
        }
        cb(0, std::move(out));
    }

    void write(bfs::Buffer, bfs::SizeCb cb) override { cb(EBADF, 0); }

  private:
    bfs::Buffer data_;
    size_t pos_ = 0;
};

} // namespace kernel
} // namespace browsix
