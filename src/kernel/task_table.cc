#include "kernel/task_table.h"

#include <algorithm>

#include "jsvm/util.h"

namespace browsix {
namespace kernel {

Task *
TaskTable::find(int pid) const
{
    const auto &band = bands_[bandOf(pid)];
    auto it = band.find(pid);
    return it == band.end() ? nullptr : it->second.get();
}

Task *
TaskTable::insert(std::unique_ptr<Task> t)
{
    Task *raw = t.get();
    int band = bandOf(raw->pid);
    auto [it, fresh] = bands_[band].emplace(raw->pid, std::move(t));
    if (!fresh)
        jsvm::panic("TaskTable: duplicate pid " +
                    std::to_string(raw->pid));
    size_++;
    // Lazy hint advance: occupying the hinted slot pushes the hint to
    // the band's next candidate; lowestFreeInBand re-probes from there.
    if (raw->pid == freeHint_[band])
        freeHint_[band] += kBands;
    return it->second.get();
}

bool
TaskTable::erase(int pid)
{
    int band = bandOf(pid);
    size_t n = bands_[band].erase(pid);
    size_ -= n;
    // A freed pid is a known-free candidate below (or at) the hint.
    if (n > 0 && freeHint_[band] != 0 && pid < freeHint_[band])
        freeHint_[band] = pid;
    return n > 0;
}

int
TaskTable::lowestFreeInBand(int band, int max_pid)
{
    int p = freeHint_[band];
    if (p == 0)
        p = bandFloor(band);
    const auto &m = bands_[band];
    while (p <= max_pid && m.count(p))
        p += kBands;
    freeHint_[band] = p; // everything below was just probed occupied
    return p <= max_pid ? p : -1;
}

std::vector<int>
TaskTable::pids() const
{
    std::vector<int> out;
    out.reserve(size_);
    forEach([&out](const Task &t) { out.push_back(t.pid); });
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace kernel
} // namespace browsix
