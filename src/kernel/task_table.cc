#include "kernel/task_table.h"

#include <algorithm>

#include "jsvm/util.h"

namespace browsix {
namespace kernel {

Task *
TaskTable::find(int pid) const
{
    const auto &band = bands_[bandOf(pid)];
    auto it = band.find(pid);
    return it == band.end() ? nullptr : it->second.get();
}

Task *
TaskTable::insert(std::unique_ptr<Task> t)
{
    Task *raw = t.get();
    auto [it, fresh] =
        bands_[bandOf(raw->pid)].emplace(raw->pid, std::move(t));
    if (!fresh)
        jsvm::panic("TaskTable: duplicate pid " +
                    std::to_string(raw->pid));
    size_++;
    return it->second.get();
}

bool
TaskTable::erase(int pid)
{
    size_t n = bands_[bandOf(pid)].erase(pid);
    size_ -= n;
    return n > 0;
}

std::vector<int>
TaskTable::pids() const
{
    std::vector<int> out;
    out.reserve(size_);
    forEach([&out](const Task &t) { out.push_back(t.pid); });
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace kernel
} // namespace browsix
