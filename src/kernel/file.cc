#include "kernel/file.h"

namespace browsix {
namespace kernel {

void
RegularFile::read(size_t maxlen, bfs::DataCb cb)
{
    file_->pread(offset_, maxlen, [this, cb](int err, bfs::BufferPtr data) {
        if (!err && data)
            offset_ += data->size();
        cb(err, std::move(data));
    });
}

void
RegularFile::readInto(bfs::ByteSpan dst, bfs::SizeCb cb)
{
    file_->preadInto(offset_, dst, [this, dst, cb](int err, size_t n) {
        if (!err) {
            // A backend may only have filled the window; never let a
            // lying count run the cursor (or the caller) past it.
            n = std::min(n, dst.len);
            offset_ += n;
        }
        cb(err, n);
    });
}

void
RegularFile::write(bfs::Buffer data, bfs::SizeCb cb)
{
    if (append_) {
        file_->fstat([this, data = std::move(data), cb](int err,
                                                        const bfs::Stat &st) {
            if (err) {
                cb(err, 0);
                return;
            }
            offset_ = st.size;
            file_->pwrite(offset_, data.data(), data.size(),
                          [this, cb](int werr, size_t n) {
                              if (!werr)
                                  offset_ += n;
                              cb(werr, n);
                          });
        });
        return;
    }
    auto buf = std::make_shared<bfs::Buffer>(std::move(data));
    file_->pwrite(offset_, buf->data(), buf->size(),
                  [this, buf, cb](int werr, size_t n) {
                      if (!werr)
                          offset_ += n;
                      cb(werr, n);
                  });
}

void
RegularFile::writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb)
{
    // The caller pins the source window until the callback runs, so the
    // backend consumes it directly — no intermediate Buffer even across
    // the append-mode fstat hop.
    if (append_) {
        file_->fstat([this, src, cb](int err, const bfs::Stat &st) {
            if (err) {
                cb(err, 0);
                return;
            }
            offset_ = st.size;
            file_->pwriteFrom(offset_, src, [this, cb](int werr, size_t n) {
                if (!werr)
                    offset_ += n;
                cb(werr, n);
            });
        });
        return;
    }
    file_->pwriteFrom(offset_, src, [this, cb](int werr, size_t n) {
        if (!werr)
            offset_ += n;
        cb(werr, n);
    });
}

void
RegularFile::pread(uint64_t off, size_t len, bfs::DataCb cb)
{
    file_->pread(off, len, std::move(cb));
}

void
RegularFile::preadInto(uint64_t off, bfs::ByteSpan dst, bfs::SizeCb cb)
{
    file_->preadInto(off, dst, std::move(cb));
}

void
RegularFile::pwrite(uint64_t off, bfs::Buffer data, bfs::SizeCb cb)
{
    auto buf = std::make_shared<bfs::Buffer>(std::move(data));
    file_->pwrite(off, buf->data(), buf->size(),
                  [buf, cb](int err, size_t n) { cb(err, n); });
}

void
RegularFile::pwriteFrom(uint64_t off, bfs::ConstByteSpan src, bfs::SizeCb cb)
{
    file_->pwriteFrom(off, src, std::move(cb));
}

void
RegularFile::fstat(bfs::StatCb cb)
{
    file_->fstat(std::move(cb));
}

void
RegularFile::seek(int64_t off, int whence, std::function<void(int64_t)> cb)
{
    switch (whence) {
      case SEEK_SET_:
        if (off < 0) {
            cb(-EINVAL);
            return;
        }
        offset_ = static_cast<uint64_t>(off);
        cb(static_cast<int64_t>(offset_));
        return;
      case SEEK_CUR_: {
        int64_t next = static_cast<int64_t>(offset_) + off;
        if (next < 0) {
            cb(-EINVAL);
            return;
        }
        offset_ = static_cast<uint64_t>(next);
        cb(next);
        return;
      }
      case SEEK_END_:
        file_->fstat([this, off, cb](int err, const bfs::Stat &st) {
            if (err) {
                cb(-err);
                return;
            }
            int64_t next = static_cast<int64_t>(st.size) + off;
            if (next < 0) {
                cb(-EINVAL);
                return;
            }
            offset_ = static_cast<uint64_t>(next);
            cb(next);
        });
        return;
      default:
        cb(-EINVAL);
    }
}

void
DirFile::withEntries(bfs::ErrCb fail, std::function<void()> serve)
{
    if (loaded_) {
        serve();
        return;
    }
    vfs_->readdir(path_, [this, fail = std::move(fail),
                          serve = std::move(serve)](
                             int err, std::vector<bfs::DirEntry> es) {
        if (err) {
            fail(err);
            return;
        }
        entries_.clear();
        entries_.push_back(sys::Dirent{1, sys::DT_DIR, "."});
        entries_.push_back(sys::Dirent{1, sys::DT_DIR, ".."});
        for (const auto &e : es)
            entries_.push_back(sys::Dirent{e.ino ? e.ino : 1,
                                           sys::direntTypeFromBfs(e.type),
                                           e.name});
        loaded_ = true;
        serve();
    });
}

void
DirFile::getdents(size_t max_bytes, bfs::DataCb cb)
{
    withEntries([cb](int err) { cb(err, nullptr); },
                [this, max_bytes, cb]() {
        std::vector<sys::Dirent> batch;
        size_t bytes = 0;
        while (cursor_ < entries_.size()) {
            const auto &e = entries_[cursor_];
            size_t reclen = sys::direntRecLen(e);
            if (bytes + reclen > max_bytes && !batch.empty())
                break;
            if (reclen > max_bytes) { // entry alone exceeds buffer
                cb(EINVAL, nullptr);
                return;
            }
            batch.push_back(e);
            bytes += reclen;
            cursor_++;
        }
        cb(0, std::make_shared<bfs::Buffer>(sys::encodeDirents(batch)));
    });
}

void
DirFile::getdentsInto(bfs::ByteSpan dst, bfs::SizeCb cb)
{
    // Encode each record directly into the caller's window (for
    // sync/ring syscalls: the guest heap) — the zero-copy successor to
    // the getdents() bounce. Same cursor, same clamp semantics: serve as
    // many whole records as fit, EINVAL when even one record cannot.
    withEntries([cb](int err) { cb(err, 0); }, [this, dst, cb]() {
        size_t bytes = 0;
        while (cursor_ < entries_.size()) {
            const sys::Dirent &e = entries_[cursor_];
            size_t reclen = sys::direntRecLen(e);
            if (bytes + reclen > dst.len) {
                if (bytes == 0) {
                    cb(EINVAL, 0); // one record alone exceeds the window
                    return;
                }
                break;
            }
            sys::encodeDirentAt(e, dst.data + bytes);
            bytes += reclen;
            cursor_++;
        }
        cb(0, bytes);
    });
}

} // namespace kernel
} // namespace browsix
