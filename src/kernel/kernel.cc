#include "kernel/kernel.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "bfs/path.h"
#include "jsvm/util.h"
#include "kernel/syscall_ctx.h"
#include "runtime/syscall_ring.h"

namespace browsix {
namespace kernel {

Kernel::Kernel(jsvm::Browser &browser, bfs::VfsPtr vfs,
               net::NetBackendPtr net)
    : browser_(browser), vfs_(std::move(vfs)),
      sched_(std::make_shared<Scheduler>()),
      net_(net ? std::move(net)
               : std::make_shared<net::LoopbackBackend>())
{
    // Every worker this browser creates from now on is a run-queue item
    // on the shared pool — processes stop costing host threads.
    browser_.setExecutor(sched_);
}

Kernel::~Kernel()
{
    forEachTask([](Task &t) {
        if (t.worker)
            t.worker->terminate();
    });
    // Drain the pool before the Tasks (and their workers) are destroyed:
    // shutdown steps every queued worker so terminated guests unwind.
    sched_->shutdown();
    browser_.setExecutor(nullptr);
}

void
Kernel::setPoolThreads(unsigned threads)
{
    if (taskCount() != 0)
        jsvm::panic("Kernel.setPoolThreads: processes already running");
    sched_->shutdown();
    sched_ = std::make_shared<Scheduler>(threads);
    browser_.setExecutor(sched_);
}

RunState
Kernel::runState(int pid)
{
    Task *t = task(pid);
    if (!t || t->state == TaskState::Zombie || !t->worker)
        return RunState::Zombie;
    switch (t->worker->runPhase()) {
      case jsvm::Worker::RunPhase::Queued:
        return RunState::Runnable;
      case jsvm::Worker::RunPhase::Parked:
        return RunState::Parked;
      case jsvm::Worker::RunPhase::Running:
      case jsvm::Worker::RunPhase::Dedicated:
        break;
    }
    return RunState::Running;
}

Task *
Kernel::task(int pid)
{
    return tasks_.find(pid);
}

std::vector<int>
Kernel::pids() const
{
    return tasks_.pids();
}

int
Kernel::allocPid()
{
    // The cursor hands out consecutive pids (round-robining the table's
    // bands) and wraps at kMaxPid. A pid still present in the table —
    // live or zombie — is skipped, so a long-lived session can never
    // hand out a duplicate.
    int pid = nextPid_;
    nextPid_ = nextPid_ >= kMaxPid ? 1 : nextPid_ + 1;
    if (!tasks_.find(pid))
        return pid; // fast path: the cursor pid is free
    // Collision: the cursor landed on a live pid (wraparound under a
    // well-populated table). Instead of probing one pid at a time,
    // consult the per-band free-pid hints — amortized O(1) even when
    // the table is nearly full.
    int band = TaskTable::bandOf(pid);
    for (int i = 0; i < TaskTable::kBands; i++) {
        int b = (band + i) & (TaskTable::kBands - 1);
        int p = tasks_.lowestFreeInBand(b, kMaxPid);
        if (p > 0) {
            nextPid_ = p >= kMaxPid ? 1 : p + 1;
            return p;
        }
    }
    return -EAGAIN; // kMaxPid live tasks: the table is genuinely full
}

void
Kernel::resolveExecutable(
    std::vector<std::string> argv, const std::string &cwd, int depth,
    std::function<void(int err, bfs::BufferPtr, std::vector<std::string>)>
        cb)
{
    if (argv.empty()) {
        cb(EINVAL, nullptr, {});
        return;
    }
    if (depth > 4) { // runaway shebang chain
        cb(ELOOP, nullptr, {});
        return;
    }
    std::string path = bfs::joinPath(cwd, argv[0]);
    vfs_->readFile(path, [this, argv = std::move(argv), cwd, depth, path,
                          cb](int err, bfs::BufferPtr data) mutable {
        if (err) {
            cb(err, nullptr, {});
            return;
        }
        argv[0] = path;
        // Shebang (§3.3): executables include "file[s] beginning with a
        // shebang line"; the kernel re-spawns the named interpreter.
        if (data->size() > 2 && (*data)[0] == '#' && (*data)[1] == '!') {
            size_t eol = 2;
            while (eol < data->size() && (*data)[eol] != '\n')
                eol++;
            std::string line(data->begin() + 2, data->begin() + eol);
            std::vector<std::string> words;
            std::string cur;
            for (char c : line) {
                if (c == ' ' || c == '\t' || c == '\r') {
                    if (!cur.empty()) {
                        words.push_back(cur);
                        cur.clear();
                    }
                } else {
                    cur.push_back(c);
                }
            }
            if (!cur.empty())
                words.push_back(cur);
            if (words.empty()) {
                cb(ENOEXEC, nullptr, {});
                return;
            }
            std::vector<std::string> next;
            if (bfs::basename(words[0]) == "env" && words.size() >= 2) {
                // "#!/usr/bin/env node": resolve the named program.
                next.push_back("/usr/bin/" + words[1]);
                next.insert(next.end(), words.begin() + 2, words.end());
            } else {
                next = words;
            }
            next.push_back(path); // the script itself
            next.insert(next.end(), argv.begin() + 1, argv.end());
            resolveExecutable(std::move(next), cwd, depth + 1, cb);
            return;
        }
        cb(0, std::move(data), std::move(argv));
    });
}

void
Kernel::doSpawn(Task *parent, std::vector<std::string> argv,
                std::map<std::string, std::string> env, std::string cwd,
                std::map<int, KFilePtr> fds, jsvm::Value snapshot,
                SpawnCb cb, ExitCb root_exit)
{
    int ppid = parent ? parent->pid : 0;
    // NPROC quota (charged up front, released on any failure path): a
    // child joins its parent's tenant counter; a root process starts a
    // fresh one. Checking before the async executable resolution keeps a
    // fork bomb from queueing unbounded spawn work.
    std::shared_ptr<int> nproc = parent ? parent->nproc : nullptr;
    if (nproc && *nproc >= nprocLimit_) {
        for (auto &[fd, f] : fds)
            f->unref();
        cb(-EAGAIN);
        return;
    }
    if (!nproc)
        nproc = std::make_shared<int>(0);
    ++*nproc;
    resolveExecutable(
        std::move(argv), cwd, 0,
        [this, ppid, nproc, env = std::move(env), cwd,
         fds = std::move(fds), snapshot = std::move(snapshot),
         cb = std::move(cb), root_exit = std::move(root_exit)](
            int err, bfs::BufferPtr code,
            std::vector<std::string> final_argv) mutable {
            if (err) {
                // Inherited descriptors were pre-referenced by the caller.
                for (auto &[fd, f] : fds)
                    f->unref();
                --*nproc;
                cb(-err);
                return;
            }
            if (!bootstrapper_)
                jsvm::panic("Kernel: no bootstrapper registered");

            int pid = allocPid();
            if (pid < 0) {
                for (auto &[fd, f] : fds)
                    f->unref();
                --*nproc;
                cb(pid);
                return;
            }
            std::string url = browser_.blobs().createObjectUrl(*code);
            auto worker = browser_.createWorker(url, bootstrapper_);

            auto t = std::make_unique<Task>();
            t->pid = pid;
            t->ppid = ppid;
            t->worker = worker;
            t->cwd = cwd.empty() ? "/" : bfs::normalizePath(cwd);
            t->files = std::move(fds);
            t->argv = final_argv;
            t->env = env;
            t->blobUrl = url;
            t->execPath = final_argv.empty() ? "" : final_argv[0];
            t->state = TaskState::Running;
            t->onExit = std::move(root_exit);
            t->nproc = std::move(nproc);

            worker->setOnMessage([this, pid](jsvm::Value msg) {
                onWorkerMessage(pid, std::move(msg));
            });

            if (Task *p = ppid ? task(ppid) : nullptr)
                p->children.insert(pid);

            jsvm::Value init = jsvm::Value::object();
            init.set("t", jsvm::Value("init"));
            init.set("pid", jsvm::Value(pid));
            jsvm::Value args = jsvm::Value::array();
            for (const auto &a : final_argv)
                args.push(jsvm::Value(a));
            init.set("args", std::move(args));
            jsvm::Value envv = jsvm::Value::object();
            for (const auto &[k, v] : env)
                envv.set(k, jsvm::Value(v));
            init.set("env", std::move(envv));
            init.set("cwd", jsvm::Value(t->cwd));
            if (!snapshot.isUndefined())
                init.set("snapshot", std::move(snapshot));

            tasks_.insert(std::move(t));
            stats_.processesSpawned++;
            stats_.messagesSent++;
            worker->postMessage(init);
            cb(pid);
        });
}

void
Kernel::doExec(Task &t, std::vector<std::string> argv,
               std::map<std::string, std::string> env, SpawnCb cb)
{
    int pid = t.pid;
    resolveExecutable(
        std::move(argv), t.cwd, 0,
        [this, pid, env = std::move(env), cb = std::move(cb)](
            int err, bfs::BufferPtr code,
            std::vector<std::string> final_argv) mutable {
            Task *t = task(pid);
            if (!t || t->state == TaskState::Zombie) {
                cb(-ESRCH);
                return;
            }
            if (err) {
                cb(-err); // caller survives a failed exec
                return;
            }
            // Point of no return: replace the process image.
            t->worker->terminate();
            if (!t->blobUrl.empty())
                browser_.blobs().revokeObjectUrl(t->blobUrl);

            std::string url = browser_.blobs().createObjectUrl(*code);
            auto worker = browser_.createWorker(url, bootstrapper_);
            t->worker = worker;
            t->blobUrl = url;
            t->argv = final_argv;
            if (!env.empty())
                t->env = std::move(env);
            t->execPath = final_argv.empty() ? "" : final_argv[0];
            t->heap = nullptr; // personality does not survive exec
            t->retOff = t->waitOff = t->sigOff = -1;
            t->ring = Task::RingState{};
            t->sigDisp.clear();

            worker->setOnMessage([this, pid](jsvm::Value msg) {
                onWorkerMessage(pid, std::move(msg));
            });

            jsvm::Value init = jsvm::Value::object();
            init.set("t", jsvm::Value("init"));
            init.set("pid", jsvm::Value(pid));
            jsvm::Value args = jsvm::Value::array();
            for (const auto &a : final_argv)
                args.push(jsvm::Value(a));
            init.set("args", std::move(args));
            jsvm::Value envv = jsvm::Value::object();
            for (const auto &[k, v] : t->env)
                envv.set(k, jsvm::Value(v));
            init.set("env", std::move(envv));
            init.set("cwd", jsvm::Value(t->cwd));
            stats_.messagesSent++;
            worker->postMessage(init);
            cb(pid);
        });
}

int
Kernel::doFork(Task &parent, jsvm::Value snapshot)
{
    auto code = browser_.blobs().resolve(parent.blobUrl);
    if (!code)
        return -ENOENT;
    // NPROC quota: the forked child shares the parent's tenant counter.
    // This is the fork-bomb fence — `while(1) fork()` hits -EAGAIN once
    // its tree holds nprocLimit_ live processes.
    if (parent.nproc && *parent.nproc >= nprocLimit_)
        return -EAGAIN;
    int pid = allocPid();
    if (pid < 0)
        return pid;
    if (parent.nproc)
        ++*parent.nproc;
    // Workers cannot be cloned (§3.3): boot a fresh worker from the same
    // executable and hand it the serialized memory + program counter.
    // The child gets its own blob URL: revocation at its exit/exec must
    // not strand the parent's executable.
    std::string child_url = browser_.blobs().createObjectUrl(*code);
    auto worker = browser_.createWorker(child_url, bootstrapper_);

    auto t = std::make_unique<Task>();
    t->pid = pid;
    t->ppid = parent.pid;
    t->worker = worker;
    t->cwd = parent.cwd;
    t->argv = parent.argv;
    t->env = parent.env;
    t->blobUrl = child_url;
    t->execPath = parent.execPath;
    t->state = TaskState::Running;
    t->sigDisp = parent.sigDisp;
    t->nproc = parent.nproc;

    // Children inherit the descriptor table (§3.6): same file objects,
    // reference counts bumped.
    for (auto &[fd, f] : parent.files) {
        f->ref();
        t->files[fd] = f;
    }

    worker->setOnMessage([this, pid](jsvm::Value msg) {
        onWorkerMessage(pid, std::move(msg));
    });
    parent.children.insert(pid);

    jsvm::Value init = jsvm::Value::object();
    init.set("t", jsvm::Value("init"));
    init.set("pid", jsvm::Value(pid));
    jsvm::Value args = jsvm::Value::array();
    for (const auto &a : parent.argv)
        args.push(jsvm::Value(a));
    init.set("args", std::move(args));
    jsvm::Value envv = jsvm::Value::object();
    for (const auto &[k, v] : parent.env)
        envv.set(k, jsvm::Value(v));
    init.set("env", std::move(envv));
    init.set("cwd", jsvm::Value(t->cwd));
    init.set("snapshot", std::move(snapshot));
    init.set("forked", jsvm::Value(true));

    tasks_.insert(std::move(t));
    stats_.processesSpawned++;
    stats_.messagesSent++;
    worker->postMessage(init);
    return pid;
}

void
Kernel::doExit(Task &t, int status)
{
    if (t.state == TaskState::Zombie)
        return;
    t.state = TaskState::Zombie;
    t.exitStatus = status;

    // Listening ports owned by this task die with it.
    for (auto &[fd, f] : t.files) {
        if (auto *sock = dynamic_cast<SocketFile *>(f.get())) {
            if (sock->state() == SocketFile::State::Listening)
                net_->dropListener(sock->port());
        }
    }
    for (auto &[fd, f] : t.files)
        f->unref();
    t.files.clear();
    t.clearWaitWaiters();

    if (t.worker) {
        t.worker->terminate();
        t.worker = nullptr;
    }
    if (!t.blobUrl.empty()) {
        browser_.blobs().revokeObjectUrl(t.blobUrl);
        t.blobUrl.clear();
    }

    // Orphaned children are re-parented to the kernel and auto-reaped.
    for (int child : t.children) {
        if (Task *c = task(child)) {
            c->ppid = 0;
            c->onExit = nullptr;
            if (c->state == TaskState::Zombie)
                reapTask(child);
        }
    }
    t.children.clear();
    t.zombieFifo.clear();

    int pid = t.pid;
    if (t.ppid != 0) {
        if (Task *parent = task(t.ppid)) {
            // "required us to implement the zombie task state" (§3.3).
            // Exit order is recorded per parent: wait-any reaps FIFO.
            parent->zombieFifo.push_back(pid);
            if (parent->dispositionFor(sys::SIGCHLD) ==
                sys::SigDisposition::Handler)
                deliverSignal(*parent, sys::SIGCHLD);
            completeWaits(*parent);
            return;
        }
    }
    // Root (embedder-owned) task: notify and reap immediately.
    auto on_exit = std::move(t.onExit);
    reapTask(pid);
    if (on_exit)
        on_exit(status);
}

void
Kernel::completeWaits(Task &parent)
{
    // Zombies are consulted in exit order (the parent's zombieFifo), and
    // each is matched against the earliest-registered waiter selecting
    // it through the by-pid index — the wait-specific bucket for its own
    // pid plus the wait-any (-1) bucket — so completion cost scales with
    // the zombie count, not the waiter-list length.
    for (;;) {
        int found = 0;
        uint64_t seq = 0;
        for (int zombie : parent.zombieFifo) {
            uint64_t best = UINT64_MAX;
            auto consider = [&parent, &best](int key) {
                auto it = parent.waitersByPid.find(key);
                if (it != parent.waitersByPid.end() &&
                    !it->second.empty())
                    best = std::min(best, *it->second.begin());
            };
            consider(zombie);
            consider(-1);
            if (best != UINT64_MAX) {
                found = zombie;
                seq = best;
                break;
            }
        }
        if (!found)
            return;
        auto wit = parent.waitWaiters.find(seq);
        auto done = std::move(wit->second.done);
        int wait_for = wit->second.waitFor;
        parent.waitWaiters.erase(wit);
        auto bit = parent.waitersByPid.find(wait_for);
        bit->second.erase(seq);
        if (bit->second.empty())
            parent.waitersByPid.erase(bit);
        int status = task(found)->exitStatus;
        reapTask(found); // also drops it from children + zombieFifo
        done(found, status);
    }
}

void
Kernel::reapTask(int pid)
{
    Task *t = task(pid);
    if (!t)
        return;
    if (t->nproc)
        --*t->nproc; // release the tenant's NPROC charge
    if (t->ppid != 0) {
        if (Task *parent = task(t->ppid)) {
            parent->children.erase(pid);
            auto &fifo = parent->zombieFifo;
            fifo.erase(std::remove(fifo.begin(), fifo.end(), pid),
                       fifo.end());
        }
    }
    tasks_.erase(pid);
}

int
Kernel::kill(int pid, int sig, int skip_pid)
{
    if (pid == -1) {
        // POSIX kill(-1): signal every process (except the issuing one,
        // per Linux — sysKill passes it as skip_pid). Snapshot the pids
        // first: delivery can exit tasks, reparent children, and reap
        // zombies, all of which mutate the table mid-walk.
        int hit = 0;
        for (int p : tasks_.pids()) {
            if (p == skip_pid)
                continue;
            Task *t = task(p);
            if (!t || t->state == TaskState::Zombie)
                continue;
            deliverSignal(*t, sig);
            hit++;
        }
        return hit ? 0 : ESRCH;
    }
    Task *t = task(pid);
    if (!t || t->state == TaskState::Zombie)
        return ESRCH;
    deliverSignal(*t, sig);
    return 0;
}

void
Kernel::deliverSignal(Task &t, int sig)
{
    stats_.signalsDelivered++;
    if (sig == sys::SIGKILL) {
        doExit(t, sys::statusFromSignal(sig));
        return;
    }
    if (sig == sys::SIGSTOP || sig == sys::SIGCONT)
        return; // job control is out of scope, as in the paper

    switch (t.dispositionFor(sig)) {
      case sys::SigDisposition::Ignore:
        return;
      case sys::SigDisposition::Default: {
        static const std::set<int> terminating = {
            sys::SIGHUP, sys::SIGINT, sys::SIGQUIT, sys::SIGPIPE,
            sys::SIGTERM, sys::SIGUSR1, sys::SIGUSR2};
        if (terminating.count(sig))
            doExit(t, sys::statusFromSignal(sig));
        return;
      }
      case sys::SigDisposition::Handler:
        break;
    }

    if (t.usesSyncCalls()) {
        // §3.2: a blocked process "is awakened when the system call has
        // completed or a signal is received". The signal number is placed
        // in the agreed heap slot and the wait word is poked; a process
        // parked on its ring's wait word is woken the same way.
        jsvm::Atomics::store(*t.heap, static_cast<uint32_t>(t.sigOff), sig);
        jsvm::Atomics::notify(*t.heap, static_cast<uint32_t>(t.waitOff));
        if (t.ring.registered)
            ringNotify(t);
        return;
    }
    jsvm::Value msg = jsvm::Value::object();
    msg.set("t", jsvm::Value("signal"));
    msg.set("sig", jsvm::Value(sig));
    msg.set("name", jsvm::Value(sys::signalName(sig)));
    stats_.messagesSent++;
    if (t.worker)
        t.worker->postMessage(msg);
}

// The connect/listen surface below delegates to the NetBackend, which
// owns the port namespace, the rendezvous, and the per-connection byte
// streams (Pipe pairs for loopback, shaped links for netsim).

int
Kernel::doConnect(Task *, SocketFile &client, int port)
{
    return net_->connect(client, port);
}

bool
Kernel::connectOrPark(SocketFilePtr client, int port,
                      std::function<void(int err)> done)
{
    bool parked = net_->connectOrPark(std::move(client), port,
                                      std::move(done));
    if (parked)
        stats_.connectsParked++;
    return parked;
}

void
Kernel::notifyListen(int port, SocketFilePtr listener)
{
    net_->addListener(port, std::move(listener));
}

void
Kernel::onPortListen(int port, std::function<void()> cb)
{
    net_->onPortListen(port, std::move(cb));
}

bool
Kernel::portListening(int port) const
{
    return net_->portListening(port);
}

void
Kernel::connect(int port, std::function<void(const bfs::Buffer &)> on_data,
                std::function<void()> on_close,
                std::function<void(int err, std::shared_ptr<HostConn>)> cb)
{
    auto client = std::make_shared<SocketFile>();
    int rc = doConnect(nullptr, *client, port);
    if (rc != 0) {
        cb(rc, nullptr);
        return;
    }
    auto conn = std::make_shared<HostConn>();
    conn->write = [client](bfs::Buffer data) {
        client->write(std::move(data), [](int, size_t) {});
    };
    conn->close = [client]() { client->unref(); };

    // Pump received bytes to the host callback.
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [client, on_data, on_close, pump]() {
        client->read(64 * 1024, [client, on_data, on_close,
                                 pump](int err, bfs::BufferPtr data) {
            if (err || !data || data->empty()) {
                if (on_close)
                    on_close();
                return;
            }
            if (on_data)
                on_data(*data);
            (*pump)();
        });
    };
    (*pump)();
    cb(0, conn);
}

void
Kernel::spawnRoot(std::vector<std::string> argv,
                  std::map<std::string, std::string> env, std::string cwd,
                  ExitCb on_exit, OutputCb out, OutputCb err, SpawnCb cb,
                  bfs::Buffer stdin_data)
{
    std::map<int, KFilePtr> fds;
    if (stdin_data.empty())
        fds[0] = std::make_shared<NullFile>();
    else
        fds[0] = std::make_shared<BufferSourceFile>(std::move(stdin_data));
    fds[1] = std::make_shared<CallbackSinkFile>(out);
    fds[2] = std::make_shared<CallbackSinkFile>(err);
    doSpawn(nullptr, std::move(argv), std::move(env), std::move(cwd),
            std::move(fds), jsvm::Value::undefined(), std::move(cb),
            std::move(on_exit));
}

void
Kernel::system(const std::string &cmd, ExitCb on_exit, OutputCb out,
               OutputCb err)
{
    // A missing or unreadable /bin/sh is an embedder-visible error, not a
    // kernel bug: surface the negative errno through on_exit (once — the
    // shared slot is cleared so a spawn failure can't double-fire it).
    auto exit_cb = std::make_shared<ExitCb>(std::move(on_exit));
    spawnRoot(
        {"/bin/sh", "-c", cmd}, defaultEnv, "/",
        [exit_cb](int status) {
            if (auto cb = std::exchange(*exit_cb, nullptr))
                cb(status);
        },
        std::move(out), std::move(err),
        [exit_cb](int rc) {
            if (rc < 0)
                if (auto cb = std::exchange(*exit_cb, nullptr))
                    cb(rc);
        });
}

void
Kernel::onWorkerMessage(int pid, jsvm::Value msg)
{
    Task *t = task(pid);
    if (!t || t->state == TaskState::Zombie)
        return;
    const jsvm::Value &type = msg.get("t");
    if (!type.isString())
        return;
    const std::string &ty = type.asString();

    if (ty == "syscall") {
        stats_.syscallCount++;
        stats_.asyncSyscallCount++;
        auto ctx = std::make_shared<SyscallCtx>(
            *this, pid, msg.get("id").asNumber(),
            msg.get("name").asString(), msg.get("args").clone());
        dispatchSyscall(*t, std::move(ctx));
        return;
    }
    if (ty == "sys") {
        stats_.syscallCount++;
        stats_.syncSyscallCount++;
        std::array<int32_t, 6> args{};
        const jsvm::Value &av = msg.get("args");
        for (size_t i = 0; i < 6 && i < av.size(); i++)
            args[i] = av.at(i).asInt();
        auto ctx = std::make_shared<SyscallCtx>(
            *this, pid, msg.get("trap").asInt(), args);
        dispatchSyscall(*t, std::move(ctx));
        return;
    }
    if (ty == "ring") {
        // Doorbell: the process published SQEs and rang once for the
        // whole batch (the CAS-guarded doorbell word suppresses
        // duplicates). One doorbell -> one drain pass.
        stats_.ringDoorbells++;
        drainSyscallRing(pid);
        return;
    }
}

void
Kernel::ringNotify(Task &t)
{
    if (!t.ring.registered || !t.heap)
        return;
    sys::RingLayout ring(static_cast<uint32_t>(t.ring.off),
                         static_cast<uint32_t>(t.ring.entries));
    jsvm::Atomics::store(*t.heap, ring.waitOff(), 1);
    jsvm::Atomics::notify(*t.heap, ring.waitOff());
    stats_.ringNotifies++;
}

void
Kernel::scheduleRingDrain(int pid, int idle_grace)
{
    stats_.ringDrainsScheduled++;
    browser_.mainLoop().post(
        [this, pid, idle_grace, alive = std::weak_ptr<int>(aliveTag_)]() {
            if (alive.expired())
                return; // the kernel is gone; the loop task outlived it
            drainSyscallRing(pid, idle_grace);
        });
}

void
Kernel::drainSyscallRing(int pid, int idle_grace)
{
    Task *t = task(pid);
    if (!t || t->state == TaskState::Zombie || !t->ring.registered ||
        !t->heap)
        return;
    // The SAB outlives the task: a handler in this batch may exit the
    // process, freeing the Task while we still reference the rings.
    jsvm::SabPtr heap = t->heap;
    sys::RingLayout ring(static_cast<uint32_t>(t->ring.off),
                         static_cast<uint32_t>(t->ring.entries));
    jsvm::RingIndices sq(*heap, ring.sqHeadOff(), ring.sqTailOff(),
                         ring.entries());

    // Arm the coalescing word BEFORE clearing the doorbell: a producer
    // always observes at least one of the two set, so whether it skips
    // the message (drainPending armed) or its doorbell CAS fails, this
    // pass — or the follow-up it schedules — sees its published tail.
    jsvm::Atomics::store(*heap, ring.drainPendingOff(), 1);
    jsvm::Atomics::store(*heap, ring.doorbellOff(), 0);
    t->ring.draining = true;
    t->ring.deferredNotify = false;

    int64_t pass_start_us = jsvm::nowUs();
    size_t consumed = 0;
    while (!sq.empty()) {
        sys::Sqe e = ring.readSqe(*heap, sq.slot(sq.head()));
        // Release the SQ slot before dispatching: a handler completing
        // synchronously frees a parked producer that much sooner.
        sq.consume();
        consumed++;
        stats_.syscallCount++;
        stats_.ringSyscallCount++;
        auto ctx =
            std::make_shared<SyscallCtx>(*this, pid, e.trap, e.args, e.seq);
        Task *cur = task(pid);
        if (!cur || cur->state == TaskState::Zombie)
            return;
        // Only the submitting process writes SQEs, so a heap-offset
        // argument outside the personality heap means a corrupt (or
        // hostile) entry: complete it with -EFAULT at the boundary
        // instead of letting a handler reach heapWrite out of bounds.
        if (!sys::sqeHeapArgsValid(e, *heap)) {
            stats_.ringEfaults++;
            ctx->completeErr(EFAULT);
            continue;
        }
        dispatchSyscall(*cur, std::move(ctx));
        // The handler may have exited or exec'd the process.
        cur = task(pid);
        if (!cur || cur->state == TaskState::Zombie ||
            !cur->ring.registered)
            return;
    }
    t->ring.draining = false;
    if (consumed > 0) {
        // Batches count consumed work: a doorbell that raced an earlier
        // drain and found the SQ empty is not a batch. One notify per
        // batch: wake the waiter for the completions that landed (and
        // for any SQ slots a backpressure-parked producer is waiting on).
        stats_.ringBatchesDrained++;
        stats_.ringBatchDepth.record(consumed);
        stats_.ringDrainUs.record(
            static_cast<uint64_t>(jsvm::nowUs() - pass_start_us));
        t->ring.idleHintPasses = 0;
        ringNotify(*t);
        // Adaptive doorbell coalescing: keep drainPending armed and
        // queue a follow-up pass, so a bursty producer's next batch
        // skips even the one message per batch. The pipeline winds down
        // once a pass (plus its grace) finds the SQ empty.
        scheduleRingDrain(pid, 1);
        return;
    }
    if (t->ring.deferredNotify)
        ringNotify(*t);
    if (idle_grace > 0) {
        // Linger armed for one more pass: the producer this pipeline is
        // serving was woken a moment ago and its next batch is likely
        // mid-publish — disarming now would cost it a doorbell message.
        scheduleRingDrain(pid, idle_grace - 1);
        return;
    }
    // More-coming hint: the producer declared a wait-then-submit burst in
    // flight, so stay armed through the gap where it is reaping the last
    // completion and publishing the next batch — its whole burst then
    // rides one doorbell message. The hint is advisory: a liveness cap
    // bounds how many consecutive empty passes it can buy, so a producer
    // that died (or forgot to clear it) cannot pin the pipeline.
    constexpr int kIdleHintCap = 64;
    if (jsvm::Atomics::load(*heap, ring.moreHintOff()) == 1 &&
        t->ring.idleHintPasses < kIdleHintCap) {
        t->ring.idleHintPasses++;
        // Give the producer (a pool thread) the CPU before the next
        // pass: on a loaded host the re-posting main loop would
        // otherwise spin through the whole cap before the producer got
        // a slice to publish its next batch.
        std::this_thread::yield();
        scheduleRingDrain(pid, 0);
        return;
    }
    t->ring.idleHintPasses = 0;
    // Idle: disarm, then re-check the tail. A producer publishing
    // between the loop's empty check and this store saw drainPending
    // armed and skipped its doorbell message — it must not be stranded,
    // so hand any late tail to a fresh pass (which re-arms).
    jsvm::Atomics::store(*heap, ring.drainPendingOff(), 0);
    if (!sq.empty())
        scheduleRingDrain(pid, 0);
}

} // namespace kernel
} // namespace browsix
