#include "kernel/syscall_ctx.h"

#include <algorithm>
#include <cstring>

#include "jsvm/sab.h"
#include "jsvm/util.h"
#include "kernel/kernel.h"
#include "runtime/syscall_ring.h"

namespace browsix {
namespace kernel {

SyscallCtx::SyscallCtx(Kernel &k, int pid, double id, std::string name,
                       jsvm::Value args)
    : kernel_(k), pid_(pid), conv_(SyscallConv::Async), id_(id),
      name_(std::move(name)), args_(std::move(args)),
      startUs_(jsvm::nowUs())
{
}

SyscallCtx::SyscallCtx(Kernel &k, int pid, int trap,
                       std::array<int32_t, 6> args)
    : kernel_(k), pid_(pid), conv_(SyscallConv::Sync),
      name_(sys::trapName(trap)), sargs_(args), trap_(trap),
      startUs_(jsvm::nowUs())
{
}

SyscallCtx::SyscallCtx(Kernel &k, int pid, int trap,
                       std::array<int32_t, 6> args, uint32_t seq)
    : kernel_(k), pid_(pid), conv_(SyscallConv::Ring),
      name_(sys::trapName(trap)), sargs_(args), seq_(seq), trap_(trap),
      startUs_(jsvm::nowUs())
{
}

void
SyscallCtx::markCompleted()
{
    if (completed_)
        jsvm::panic("syscall " + name_ + " completed twice");
    completed_ = true;
    int64_t elapsed = jsvm::nowUs() - startUs_;
    kernel_.noteSyscallLatency(trap_, name_,
                               elapsed < 0 ? 0
                                           : static_cast<uint64_t>(elapsed));
}

Task *
SyscallCtx::taskOrNull() const
{
    Task *t = kernel_.task(pid_);
    if (!t || t->state == TaskState::Zombie)
        return nullptr;
    return t;
}

size_t
SyscallCtx::argCount() const
{
    return isSync() ? 6 : args_.size();
}

int32_t
SyscallCtx::argInt(size_t i) const
{
    if (isSync())
        return i < 6 ? sargs_[i] : 0;
    return args_.at(i).isNumber() ? args_.at(i).asInt() : 0;
}

double
SyscallCtx::argNum(size_t i) const
{
    if (isSync())
        return i < 6 ? sargs_[i] : 0;
    return args_.at(i).isNumber() ? args_.at(i).asNumber() : 0;
}

std::string
SyscallCtx::argStr(size_t i) const
{
    if (!isSync()) {
        const jsvm::Value &v = args_.at(i);
        return v.isString() ? v.asString() : std::string();
    }
    Task *t = taskOrNull();
    if (!t || !t->heap)
        return std::string();
    size_t off = static_cast<uint32_t>(sargs_[i]);
    const uint8_t *heap = t->heap->data();
    size_t size = t->heap->size();
    std::string out;
    while (off < size && heap[off] != 0)
        out.push_back(static_cast<char>(heap[off++]));
    return out;
}

bfs::Buffer
SyscallCtx::argData(size_t i, size_t len_idx) const
{
    if (!isSync()) {
        const jsvm::Value &v = args_.at(i);
        if (v.isBytes() && v.asBytes())
            return *v.asBytes();
        if (v.isString()) {
            const std::string &s = v.asString();
            return bfs::Buffer(s.begin(), s.end());
        }
        return {};
    }
    Task *t = taskOrNull();
    if (!t || !t->heap)
        return {};
    size_t off = static_cast<uint32_t>(sargs_[i]);
    size_t len = static_cast<uint32_t>(sargs_[len_idx]);
    if (off > t->heap->size())
        return {};
    len = std::min(len, t->heap->size() - off);
    const uint8_t *heap = t->heap->data();
    return bfs::Buffer(heap + off, heap + off + len);
}

jsvm::Value
SyscallCtx::argValue(size_t i) const
{
    if (isSync())
        jsvm::panic("SyscallCtx::argValue on a sync call: " + name_);
    return args_.at(i);
}

SyscallCtx::HeapSpan
SyscallCtx::heapSpan(size_t dst_ptr_idx, size_t len) const
{
    HeapSpan out;
    if (!isSync())
        return out;
    Task *t = taskOrNull();
    if (!t || !t->heap)
        return out;
    size_t off = static_cast<uint32_t>(sargs_[dst_ptr_idx]);
    if (off > t->heap->size() || len > t->heap->size() - off)
        return out; // any byte outside the heap: EFAULT territory
    out.heap = t->heap;
    out.span.data = t->heap->data() + off;
    out.span.len = len;
    return out;
}

SyscallCtx::HeapConstSpan
SyscallCtx::heapConstSpan(size_t ptr_idx, size_t len_idx) const
{
    HeapConstSpan out;
    if (!isSync())
        return out;
    Task *t = taskOrNull();
    if (!t || !t->heap)
        return out;
    size_t off = static_cast<uint32_t>(sargs_[ptr_idx]);
    size_t len = static_cast<uint32_t>(sargs_[len_idx]);
    if (off > t->heap->size() || len > t->heap->size() - off)
        return out; // any byte outside the heap: EFAULT territory
    out.heap = t->heap;
    out.span.data = t->heap->data() + off;
    out.span.len = len;
    return out;
}

bool
SyscallCtx::heapWrite(size_t off, const uint8_t *data, size_t len) const
{
    Task *t = taskOrNull();
    if (!t || !t->heap)
        return false;
    if (off + len > t->heap->size())
        return false;
    if (len > 0) // empty payloads carry a null data pointer
        std::memcpy(t->heap->data() + off, data, len);
    return true;
}

void
SyscallCtx::finishSync(int64_t r0, int64_t r1)
{
    Task *t = taskOrNull();
    if (!t || !t->heap)
        return; // task died while the call was in flight
    int32_t ret0 = static_cast<int32_t>(r0);
    int32_t ret1 = static_cast<int32_t>(r1);
    heapWrite(static_cast<uint32_t>(t->retOff),
              reinterpret_cast<const uint8_t *>(&ret0), 4);
    heapWrite(static_cast<uint32_t>(t->retOff) + 4,
              reinterpret_cast<const uint8_t *>(&ret1), 4);
    jsvm::Atomics::store(*t->heap, static_cast<uint32_t>(t->waitOff), 1);
    jsvm::Atomics::notify(*t->heap, static_cast<uint32_t>(t->waitOff));
}

void
SyscallCtx::finishRing(int64_t r0, int64_t r1)
{
    Task *t = taskOrNull();
    if (!t || !t->heap || !t->ring.registered)
        return; // task died or dropped its ring while the call was in flight
    sys::RingLayout ring(static_cast<uint32_t>(t->ring.off),
                         static_cast<uint32_t>(t->ring.entries));
    jsvm::RingIndices cq(*t->heap, ring.cqHeadOff(), ring.cqTailOff(),
                         ring.entries());
    if (cq.full()) {
        // Only a producer that overruns the in-flight cap can get here.
        kernel_.stats_.ringCqOverflows++;
        return;
    }
    sys::Cqe e;
    e.seq = seq_;
    e.r0 = static_cast<int32_t>(r0);
    e.r1 = static_cast<int32_t>(r1);
    ring.writeCqe(*t->heap, cq.slot(cq.tail()), e);
    cq.publish();
    if (t->ring.draining) {
        t->ring.deferredNotify = true; // coalesced: one notify per batch
    } else {
        // A CQE landing outside a drain pass is a deferred completion:
        // the SQE parked (empty pipe, no pending connection, nothing
        // pollable) and this event-driven push is what un-parks the
        // producer. It pays its own notify.
        kernel_.stats_.ringDeferredCompletions++;
        kernel_.ringNotify(*t);
    }
}

void
SyscallCtx::finishHeap(int64_t r0, int64_t r1)
{
    if (conv_ == SyscallConv::Ring)
        finishRing(r0, r1);
    else
        finishSync(r0, r1);
}

void
SyscallCtx::finishAsync(int64_t r0, int64_t r1, jsvm::Value extra)
{
    Task *t = taskOrNull();
    if (!t || !t->worker)
        return;
    jsvm::Value msg = jsvm::Value::object();
    msg.set("t", jsvm::Value("ret"));
    msg.set("id", jsvm::Value(id_));
    jsvm::Value ret = jsvm::Value::array();
    ret.push(jsvm::Value(static_cast<double>(r0)));
    ret.push(jsvm::Value(static_cast<double>(r1)));
    msg.set("ret", std::move(ret));
    if (!extra.isUndefined())
        msg.set("data", std::move(extra));
    kernel_.stats_.messagesSent++;
    t->worker->postMessage(msg);
}

void
SyscallCtx::complete(int64_t r0, int64_t r1)
{
    markCompleted();
    if (isSync())
        finishHeap(r0, r1);
    else
        finishAsync(r0, r1, jsvm::Value::undefined());
}

void
SyscallCtx::completeData(const bfs::Buffer &data, size_t dst_ptr_idx,
                         int len_idx)
{
    markCompleted();
    if (isSync()) {
        size_t n = data.size();
        if (len_idx >= 0)
            n = std::min(n, static_cast<size_t>(static_cast<uint32_t>(
                                sargs_[len_idx])));
        if (!heapWrite(static_cast<uint32_t>(sargs_[dst_ptr_idx]),
                       data.data(), n)) {
            // The destination window is not inside the heap: refuse
            // rather than report bytes that were never delivered.
            finishHeap(-EFAULT, 0);
            return;
        }
        kernel_.stats_.copiedCompletions++;
        finishHeap(static_cast<int64_t>(n), 0);
    } else {
        finishAsync(static_cast<int64_t>(data.size()), 0,
                    jsvm::Value::bytes(data.data(), data.size()));
    }
}

void
SyscallCtx::completeFilled(int64_t n, bool zero_copy)
{
    if (!isSync())
        jsvm::panic("completeFilled on async call " + name_);
    markCompleted();
    if (zero_copy)
        kernel_.stats_.zeroCopyCompletions++;
    else
        kernel_.stats_.copiedCompletions++;
    finishHeap(n, 0);
}

void
SyscallCtx::completeStr(const std::string &s, size_t dst_ptr_idx,
                        size_t max_len_idx)
{
    markCompleted();
    if (isSync()) {
        size_t max_len = static_cast<uint32_t>(sargs_[max_len_idx]);
        if (s.size() + 1 > max_len) {
            finishHeap(-ERANGE, 0);
            return;
        }
        bfs::Buffer out(s.begin(), s.end());
        out.push_back(0);
        heapWrite(static_cast<uint32_t>(sargs_[dst_ptr_idx]), out.data(),
                  out.size());
        finishHeap(static_cast<int64_t>(s.size()), 0);
    } else {
        finishAsync(static_cast<int64_t>(s.size()), 0, jsvm::Value(s));
    }
}

void
SyscallCtx::completeStat(const sys::StatX &st, size_t dst_ptr_idx)
{
    markCompleted();
    if (isSync()) {
        uint8_t packed[sys::STAT_BYTES];
        sys::packStat(st, packed);
        heapWrite(static_cast<uint32_t>(sargs_[dst_ptr_idx]), packed,
                  sizeof(packed));
        finishHeap(0, 0);
    } else {
        finishAsync(0, 0, sys::statToValue(st));
    }
}

void
SyscallCtx::completeValue(int64_t r0, jsvm::Value extra)
{
    if (isSync())
        jsvm::panic("completeValue on sync call " + name_);
    markCompleted();
    finishAsync(r0, 0, std::move(extra));
}

} // namespace kernel
} // namespace browsix
