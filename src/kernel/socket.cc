#include "kernel/socket.h"

namespace browsix {
namespace kernel {

void
SocketFile::read(size_t maxlen, bfs::DataCb cb)
{
    if (state_ != State::Connected) {
        cb(ENOTCONN, nullptr);
        return;
    }
    if (shutRd_) {
        cb(0, std::make_shared<bfs::Buffer>()); // EOF after SHUT_RD
        return;
    }
    rx_->read(maxlen, std::move(cb));
}

void
SocketFile::write(bfs::Buffer data, bfs::SizeCb cb)
{
    if (state_ != State::Connected) {
        cb(ENOTCONN, 0);
        return;
    }
    if (shutWr_) {
        cb(EPIPE, 0); // POSIX: write after SHUT_WR is EPIPE, not EBADF
        return;
    }
    tx_->write(std::move(data), std::move(cb));
}

void
SocketFile::readInto(bfs::ByteSpan dst, bfs::SizeCb cb)
{
    if (state_ != State::Connected) {
        cb(ENOTCONN, 0);
        return;
    }
    if (shutRd_) {
        cb(0, 0); // EOF after SHUT_RD
        return;
    }
    rx_->readInto(dst, std::move(cb));
}

void
SocketFile::writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb)
{
    if (state_ != State::Connected) {
        cb(ENOTCONN, 0);
        return;
    }
    if (shutWr_) {
        cb(EPIPE, 0);
        return;
    }
    tx_->writeFrom(src, std::move(cb));
}

int
SocketFile::shutdown(int how)
{
    constexpr int kShutRd = 0, kShutWr = 1, kShutRdWr = 2;
    if (state_ != State::Connected)
        return ENOTCONN;
    if (how != kShutRd && how != kShutWr && how != kShutRdWr)
        return EINVAL;
    if (how == kShutRd || how == kShutRdWr) {
        shutRd_ = true;
        rx_->closeReader();
    }
    if (how == kShutWr || how == kShutRdWr) {
        shutWr_ = true;
        tx_->closeWriter(); // FIN: the peer drains, then reads EOF
    }
    return 0;
}

void
SocketFile::watchReadable(std::function<void()> fn)
{
    if (readable()) {
        fn();
        return;
    }
    if (state_ == State::Connected) {
        rx_->watchReadable(std::move(fn));
        return;
    }
    readyWatchers_.push_back(std::move(fn)); // Listening: fires on enqueue
}

void
SocketFile::watchWritable(std::function<void()> fn)
{
    if (writable()) {
        fn();
        return;
    }
    tx_->watchWritable(std::move(fn)); // only Connected can be unwritable
}

int
SocketFile::bind(int port)
{
    if (state_ != State::Unbound)
        return EINVAL;
    port_ = port;
    state_ = State::Bound;
    return 0;
}

int
SocketFile::listen(int backlog)
{
    if (state_ != State::Bound)
        return EINVAL;
    backlog_ = backlog > 0 ? backlog : 8;
    state_ = State::Listening;
    return 0;
}

int
SocketFile::enqueueConnection(SocketFilePtr peer)
{
    if (state_ != State::Listening)
        return ECONNREFUSED;
    if (!acceptWaiters_.empty()) {
        auto cb = std::move(acceptWaiters_.front());
        acceptWaiters_.pop_front();
        cb(0, std::move(peer));
        return 0;
    }
    if (static_cast<int>(pending_.size()) >= backlog_)
        return ECONNREFUSED;
    pending_.push_back(std::move(peer));
    if (!readyWatchers_.empty()) {
        std::vector<std::function<void()>> fns;
        fns.swap(readyWatchers_);
        for (auto &fn : fns)
            fn();
    }
    return 0;
}

bool
SocketFile::enqueueConnectionOrPark(SocketFilePtr peer,
                                    std::function<void(int err)> done)
{
    if (state_ != State::Listening) {
        done(ECONNREFUSED);
        return false;
    }
    if (!acceptWaiters_.empty() ||
        static_cast<int>(pending_.size()) < backlog_) {
        done(enqueueConnection(std::move(peer)));
        return false;
    }
    connectWaiters_.push_back({std::move(peer), std::move(done)});
    return true;
}

void
SocketFile::promoteConnectWaiter()
{
    if (connectWaiters_.empty())
        return;
    ConnectWaiter w = std::move(connectWaiters_.front());
    connectWaiters_.pop_front();
    int rc = enqueueConnection(std::move(w.peer));
    w.done(rc);
}

void
SocketFile::accept(std::function<void(int err, SocketFilePtr)> cb)
{
    if (state_ != State::Listening) {
        cb(EINVAL, nullptr);
        return;
    }
    if (!pending_.empty()) {
        SocketFilePtr peer = std::move(pending_.front());
        pending_.pop_front();
        promoteConnectWaiter();
        cb(0, std::move(peer));
        return;
    }
    acceptWaiters_.push_back(std::move(cb));
}

void
SocketFile::establish(PipePtr rx, PipePtr tx, int local_port,
                      int remote_port)
{
    rx_ = std::move(rx);
    tx_ = std::move(tx);
    port_ = local_port;
    remotePort_ = remote_port;
    state_ = State::Connected;
}

void
SocketFile::onLastClose()
{
    if (state_ == State::Connected) {
        rx_->closeReader();
        tx_->closeWriter();
    }
    while (!acceptWaiters_.empty()) {
        auto cb = std::move(acceptWaiters_.front());
        acceptWaiters_.pop_front();
        cb(EBADF, nullptr);
    }
    // Parked connects can never be promoted now: refuse them, collapsing
    // each waiting peer's streams the same way as the never-accepted
    // pending_ connections below.
    while (!connectWaiters_.empty()) {
        ConnectWaiter w = std::move(connectWaiters_.front());
        connectWaiters_.pop_front();
        if (w.peer && w.peer->state_ == State::Connected) {
            w.peer->rx_->closeReader();
            w.peer->tx_->closeWriter();
        }
        w.done(ECONNREFUSED);
    }
    // Collapse never-accepted peers' streams (ECONNRESET-style): the
    // listener's side of each pipe pair is gone, so the peer's reads
    // must wake with EOF and its writes must fail with EPIPE. Dropping
    // the queue without closing the pipe ends left a guest parked in
    // read() on such a peer hung forever.
    while (!pending_.empty()) {
        SocketFilePtr peer = std::move(pending_.front());
        pending_.pop_front();
        if (peer && peer->state_ == State::Connected) {
            peer->rx_->closeReader(); // EPIPEs the far side's writes
            peer->tx_->closeWriter(); // wakes its parked reads with EOF
        }
    }
    state_ = State::Unbound;
}

} // namespace kernel
} // namespace browsix
