/**
 * @file
 * Log2-bucketed latency histogram for per-syscall completion times.
 *
 * Recording is a count-leading-zeros and two increments — cheap enough
 * for the syscall hot path. Bucket 0 holds sub-microsecond completions;
 * bucket i (i >= 1) holds [2^(i-1), 2^i) microseconds; the top bucket
 * absorbs everything from 2^30 µs (~18 minutes) up. Percentiles are
 * estimated as the ceiling of the covering bucket, clamped to the true
 * observed maximum.
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace browsix {
namespace kernel {

struct LatencyHistogram
{
    static constexpr size_t kBuckets = 32;

    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sumUs = 0;
    uint64_t maxUs = 0;

    /** Bucket index covering an elapsed time. */
    static size_t bucketFor(uint64_t us);

    /** Largest value (µs) the bucket can report (0 for bucket 0). */
    static uint64_t bucketCeilingUs(size_t bucket);

    void record(uint64_t us);

    double meanUs() const
    {
        return count ? static_cast<double>(sumUs) / static_cast<double>(count)
                     : 0.0;
    }

    /** Percentile estimate for p in (0, 100]. */
    uint64_t percentileUs(double p) const;
};

} // namespace kernel
} // namespace browsix
