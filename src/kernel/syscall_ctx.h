/**
 * @file
 * SyscallCtx: one in-flight system call, abstracting over the three
 * conventions so every syscall handler is written exactly once.
 *
 * Async calls carry structured-clone Values; sync and ring calls carry
 * six int32s, where "pointer" arguments are offsets into the calling
 * task's shared heap. Out-data (pread payloads, getdents records, getcwd
 * strings) is written directly into the caller's heap for sync/ring
 * calls — the paper's zero-extra-copy property — and attached to the
 * reply message for async calls. Completion differs per convention: a
 * reply message (async), a heap write + immediate Atomics notify (sync),
 * or a CQE push whose notify coalesces per batch (ring).
 */
#pragma once

#include <array>
#include <memory>
#include <string>

#include "jsvm/value.h"
#include "kernel/task.h"
#include "runtime/syscall_proto.h"

namespace browsix {
namespace kernel {

class Kernel;

/** Which transport carried this call (and will carry its completion). */
enum class SyscallConv { Async, Sync, Ring };

class SyscallCtx : public std::enable_shared_from_this<SyscallCtx>
{
  public:
    /** Async form. */
    SyscallCtx(Kernel &k, int pid, double id, std::string name,
               jsvm::Value args);

    /** Sync form. */
    SyscallCtx(Kernel &k, int pid, int trap,
               std::array<int32_t, 6> args);

    /** Ring form: one SQE; completion is CQE seq. */
    SyscallCtx(Kernel &k, int pid, int trap, std::array<int32_t, 6> args,
               uint32_t seq);

    const std::string &name() const { return name_; }
    SyscallConv conv() const { return conv_; }
    /** True for the shared-heap argument encoding (sync AND ring): six
     * int32s with pointer args as heap offsets. */
    bool isSync() const { return conv_ != SyscallConv::Async; }
    int pid() const { return pid_; }
    size_t argCount() const;

    // --- argument accessors ---
    int32_t argInt(size_t i) const;
    double argNum(size_t i) const;
    /** Async: string arg; sync: NUL-terminated string in the heap. */
    std::string argStr(size_t i) const;
    /** Async: Bytes at i; sync: heap slice (ptr at i, length at len_idx). */
    bfs::Buffer argData(size_t i, size_t len_idx) const;
    /** Async only: the raw Value (arrays/objects, e.g. spawn argv). */
    jsvm::Value argValue(size_t i) const;

    /**
     * A guest destination window resolved up front: the byte span plus a
     * reference pinning the backing personality heap, so a backend may
     * fill it after the task is gone (the write lands in still-live
     * shared memory and is simply never observed).
     */
    struct HeapSpan
    {
        jsvm::SabPtr heap; ///< null when resolution failed (the EFAULT case)
        bfs::ByteSpan span;
        bool ok() const { return heap != nullptr; }
    };

    /**
     * Resolve [sargs[dst_ptr_idx], +len) against the caller's personality
     * heap, bounds-checked: fails (null heap) when the call is async, the
     * task died, or any byte of the window falls outside the heap — the
     * handler should then complete with -EFAULT. This is what makes the
     * sync/ring read path zero-copy: backends write through span.data and
     * the handler finishes with completeFilled(n).
     */
    HeapSpan heapSpan(size_t dst_ptr_idx, size_t len) const;

    /** The read-only counterpart for zero-copy writes: same pinning and
     * bounds rules as HeapSpan, but the window is a source. */
    struct HeapConstSpan
    {
        jsvm::SabPtr heap; ///< null when resolution failed (the EFAULT case)
        bfs::ConstByteSpan span;
        bool ok() const { return heap != nullptr; }
    };

    /**
     * Resolve [sargs[ptr_idx], +sargs[len_idx]) as a guest *source*
     * window, bounds-checked and SAB-pinned exactly like heapSpan. This
     * is what makes the sync/ring write path zero-copy: sysWrite/
     * sysPwrite hand span straight to writeFrom/pwriteFrom instead of
     * materializing argData's intermediate Buffer.
     */
    HeapConstSpan heapConstSpan(size_t ptr_idx, size_t len_idx) const;

    // --- completion (exactly once) ---
    void complete(int64_t r0, int64_t r1 = 0);
    void completeErr(int err) { complete(-static_cast<int64_t>(err)); }
    /**
     * Deliver out-data: sync writes into heap at arg[dst_ptr_idx]. When
     * len_idx >= 0 the write (and the returned count) is clamped to the
     * caller-supplied length argument sargs[len_idx] — a backend handing
     * back more than requested must never overrun the guest buffer.
     */
    void completeData(const bfs::Buffer &data, size_t dst_ptr_idx,
                      int len_idx = -1);
    /** Sync/ring only: complete a call whose data moved through a
     * heapSpan()/heapConstSpan() window — out-data written in place
     * (reads, getdents) or in-data consumed in place (writes). The
     * no-copy successor to completeData in both directions. zero_copy
     * feeds the zeroCopyCompletions/copiedCompletions counters; handlers
     * pass KFile::spanIoDirect() so files whose span ops fall back to
     * the Buffer bounce (pipes, sinks) are counted truthfully. */
    void completeFilled(int64_t n, bool zero_copy = true);
    /** Deliver a string result (getcwd, readlink). */
    void completeStr(const std::string &s, size_t dst_ptr_idx,
                     size_t max_len_idx);
    /** Deliver a packed/object stat. */
    void completeStat(const sys::StatX &st, size_t dst_ptr_idx);
    /** Async only: complete with an arbitrary extra value. */
    void completeValue(int64_t r0, jsvm::Value extra);

    bool completed() const { return completed_; }

  private:
    Task *taskOrNull() const;
    /** Exactly-once guard shared by every complete* entry point: panics
     * on double completion and records dispatch→completion latency into
     * the kernel's per-syscall histogram. */
    void markCompleted();
    /** Route r0/r1 to the caller per convention (sync heap write + wake,
     * or ring CQE push). */
    void finishHeap(int64_t r0, int64_t r1);
    void finishSync(int64_t r0, int64_t r1);
    void finishRing(int64_t r0, int64_t r1);
    void finishAsync(int64_t r0, int64_t r1, jsvm::Value extra);
    bool heapWrite(size_t off, const uint8_t *data, size_t len) const;

    Kernel &kernel_;
    int pid_;
    SyscallConv conv_;
    double id_ = 0;
    std::string name_;
    jsvm::Value args_;                 // async
    std::array<int32_t, 6> sargs_{};   // sync/ring
    uint32_t seq_ = 0;                 // ring completion tag
    int trap_ = -1;                    // sync/ring trap (latency fast path)
    int64_t startUs_ = 0;              // dispatch time (latency histogram)
    bool completed_ = false;
};

using SyscallCtxPtr = std::shared_ptr<SyscallCtx>;

} // namespace kernel
} // namespace browsix
