/**
 * @file
 * Epoll-shaped stateful readiness: a kernel-side registered interest list.
 *
 * poll re-marshals its whole PollFd set through the heap on every call; a
 * server's interest set is stable, so `epoll_create` materialises it as a
 * descriptor instead. EpollFile only owns the interest map (fd → event
 * mask); readiness evaluation and parking live with the epoll_wait
 * syscall handler, which re-arms the registered objects' one-shot
 * `watchReadable`/`watchWritable` watchers level-triggered — the same
 * hooks the poll trap parks against (see docs/ARCHITECTURE.md).
 */
#pragma once

#include <cstdint>
#include <map>

#include "kernel/file.h"

namespace browsix {
namespace kernel {

class EpollFile : public KFile
{
  public:
    const char *kind() const override { return "epoll"; }

    /** An epoll descriptor is not a stream. */
    void read(size_t, bfs::DataCb cb) override { cb(EINVAL, nullptr); }
    void write(bfs::Buffer, bfs::SizeCb cb) override { cb(EINVAL, 0); }

    /**
     * Edit the interest list (EPOLL_CTL_ADD_/MOD_/DEL_). Returns 0 or an
     * errno: EEXIST adding a registered fd, ENOENT modifying/deleting an
     * unregistered one, EINVAL for an unknown op.
     */
    int ctl(int op, int fd, int32_t events);

    /** Drop an fd if registered (closed descriptors stay registered
     * until the caller prunes or re-ctls them — Linux semantics would
     * auto-remove, but our fd table has no back-pointers; epoll_wait
     * reports a closed registered fd as POLLERR_|POLLHUP_ instead). */
    void forget(int fd) { interest_.erase(fd); }

    const std::map<int, int32_t> &interest() const { return interest_; }

  private:
    std::map<int, int32_t> interest_; ///< fd → requested POLL*_ mask
};

using EpollFilePtr = std::shared_ptr<EpollFile>;

} // namespace kernel
} // namespace browsix
