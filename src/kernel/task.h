/**
 * @file
 * The per-process task structure (§3.3): "Each BROWSIX process has an
 * associated task structure that lives in the kernel that contains its
 * process ID, parent's process ID, Web Worker object, current working
 * directory, and map of open file descriptors."
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "jsvm/sab.h"
#include "jsvm/worker.h"
#include "kernel/file.h"
#include "runtime/syscall_proto.h"

namespace browsix {
namespace kernel {

enum class TaskState { Starting, Running, Zombie };

struct Task
{
    int pid = 0;
    int ppid = 0;
    std::shared_ptr<jsvm::Worker> worker;
    std::string cwd = "/";
    std::map<int, KFilePtr> files;
    TaskState state = TaskState::Starting;
    int exitStatus = 0;

    std::vector<std::string> argv;
    std::map<std::string, std::string> env;

    /// The executable this task was booted from (reused by fork/exec).
    std::string blobUrl;
    std::string execPath;

    /// Synchronous-syscall personality (§3.2): heap + agreed offsets.
    jsvm::SabPtr heap;
    int32_t retOff = -1;
    int32_t waitOff = -1;
    int32_t sigOff = -1;

    /// Ring personality: the io_uring-style SQ/CQ region inside `heap`
    /// (see runtime/syscall_ring.h). `draining` and `deferredNotify` are
    /// kernel-side batch state: completions that land while the kernel is
    /// draining this task's SQ coalesce into one end-of-batch notify.
    ///
    /// Parked (deferred-CQE) SQEs have no representation here: the
    /// in-flight call IS its SyscallCtx, held alive by whatever waiter
    /// list it parked on (pipe read queue, socket accept queue, poll
    /// watchers). On task exit the file teardown collapses those lists,
    /// each parked ctx completes, and finishRing drops the late CQE on
    /// the floor because the task is gone — nothing to unwind by hand.
    struct RingState
    {
        bool registered = false;
        int32_t off = -1;
        int32_t entries = 0;
        bool draining = false;
        bool deferredNotify = false;
        /// Consecutive empty drain passes kept alive only by the
        /// producer's more-coming hint; capped so a producer that dies
        /// (or lies) mid-burst cannot pin the drain pipeline forever.
        int idleHintPasses = 0;
    };
    RingState ring;

    /// Signal dispositions registered via sigaction.
    std::map<int, sys::SigDisposition> sigDisp;

    std::set<int> children;

    /// Zombie children in exit order. wait-any reaps from the front —
    /// deterministic FIFO regardless of which pid band a child lives in —
    /// while wait-specific and reapTask remove from the middle.
    std::deque<int> zombieFifo;

    /// Pending wait4 completions: (pid-selector, completion).
    struct WaitWaiter
    {
        int waitFor; // pid or -1 for any child
        std::function<void(int pid, int status)> done;
    };
    /// Waiters keyed by registration sequence (earliest-first priority
    /// when several select the same zombie), with a by-awaited-pid index
    /// (-1 = wait-any bucket) so completeWaits matches a zombie without
    /// scanning the whole waiter list — shells running hundreds of jobs
    /// keep wait4 completion O(log waiters) per exit.
    std::map<uint64_t, WaitWaiter> waitWaiters;
    std::unordered_map<int, std::set<uint64_t>> waitersByPid;
    uint64_t nextWaiterSeq = 1;

    /** Register a wait4 waiter in both structures. */
    void addWaitWaiter(int wait_for,
                       std::function<void(int pid, int status)> done)
    {
        uint64_t seq = nextWaiterSeq++;
        waitWaiters.emplace(seq, WaitWaiter{wait_for, std::move(done)});
        waitersByPid[wait_for].insert(seq);
    }

    void clearWaitWaiters()
    {
        waitWaiters.clear();
        waitersByPid.clear();
    }

    /// Root-task (ppid 0) exit notification for the embedder.
    std::function<void(int status)> onExit;

    /// Live-process counter shared by this task's whole tenant tree (the
    /// root process and every descendant). Charged at spawn/fork against
    /// the kernel's NPROC limit, released at reap — the fork-bomb fence.
    std::shared_ptr<int> nproc;

    /** Lowest unused descriptor number. */
    int allocFd() const
    {
        int fd = 0;
        while (files.count(fd))
            fd++;
        return fd;
    }

    bool usesSyncCalls() const { return heap != nullptr; }

    sys::SigDisposition dispositionFor(int sig) const
    {
        auto it = sigDisp.find(sig);
        return it == sigDisp.end() ? sys::SigDisposition::Default
                                   : it->second;
    }
};

} // namespace kernel
} // namespace browsix
