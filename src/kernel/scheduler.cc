#include "kernel/scheduler.h"

#include <algorithm>
#include <chrono>

#include "jsvm/util.h"

namespace browsix {
namespace kernel {

Scheduler::Scheduler(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads < 2)
            threads = 2;
    }
    poolSize_ = threads;
}

Scheduler::~Scheduler()
{
    shutdown();
}

void
Scheduler::startThreadsLocked()
{
    started_ = true;
    threads_.reserve(poolSize_);
    for (unsigned i = 0; i < poolSize_; i++)
        threads_.emplace_back([this]() { threadMain(); });
}

void
Scheduler::enqueue(std::shared_ptr<jsvm::Worker> w)
{
    {
        std::unique_lock<std::mutex> lk(mutex_);
        if (!shutdownDone_) {
            if (!started_)
                startThreadsLocked();
            queue_.push_back(std::move(w));
            lk.unlock();
            cv_.notify_one();
            return;
        }
    }
    // Pool retired: run the step on the caller so late-terminated workers
    // still unwind their guests instead of leaking suspended fibers.
    steps_.fetch_add(1, std::memory_order_relaxed);
    w->step();
}

void
Scheduler::scheduleTimer(std::shared_ptr<jsvm::Worker> w, int64_t due_us)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!shutdownDone_) {
            timers_.push_back(PendingTimer{due_us, w});
            cv_.notify_one();
            return;
        }
    }
    // Retired pool: no thread will ever sleep on this deadline. Wake the
    // worker now if it is already due (signalWork routes back through
    // enqueue, which runs the step inline after shutdown); a future
    // deadline is dropped — terminate() drives the final unwind step.
    if (due_us <= jsvm::nowUs())
        w->signalWork();
}

int64_t
Scheduler::promoteDueTimersLocked(
    int64_t now, std::vector<std::shared_ptr<jsvm::Worker>> &due)
{
    int64_t next = -1;
    for (auto it = timers_.begin(); it != timers_.end();) {
        if (it->due_us <= now) {
            if (auto w = it->worker.lock())
                due.push_back(std::move(w));
            it = timers_.erase(it);
        } else {
            if (next < 0 || it->due_us < next)
                next = it->due_us;
            ++it;
        }
    }
    return next;
}

void
Scheduler::threadMain()
{
    std::vector<std::shared_ptr<jsvm::Worker>> due;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        int64_t next_due = promoteDueTimersLocked(jsvm::nowUs(), due);
        if (!due.empty()) {
            // Wake due workers through signalWork, never a raw queue push:
            // its Idle->Queued CAS dedupes against concurrent wakes, so a
            // worker can never hold two queue entries (two pool threads
            // would then step the same fibers concurrently). signalWork
            // re-enters enqueue(), so the mutex must be dropped first.
            lk.unlock();
            for (auto &w : due)
                w->signalWork();
            due.clear();
            lk.lock();
            continue;
        }
        if (stopping_)
            return;
        if (queue_.empty()) {
            if (next_due < 0) {
                cv_.wait(lk);
            } else {
                // Bounded wait: under a TestClock, virtual time advances
                // without real time passing, so poll rather than oversleep.
                int64_t delta = next_due - jsvm::nowUs();
                delta = std::min<int64_t>(std::max<int64_t>(delta, 0), 50000);
                cv_.wait_for(lk, std::chrono::microseconds(delta + 1));
            }
            continue;
        }
        auto w = std::move(queue_.front());
        queue_.pop_front();
        lk.unlock();
        steps_.fetch_add(1, std::memory_order_relaxed);
        w->step();
        w.reset();
        lk.lock();
    }
}

void
Scheduler::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (shutdownDone_ && threads_.empty())
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
    std::deque<std::shared_ptr<jsvm::Worker>> drain;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        threads_.clear();
        drain.swap(queue_);
        timers_.clear();
        shutdownDone_ = true;
    }
    // Final inline steps: every queued worker gets its quantum so
    // terminated guests unwind before the scheduler goes away.
    for (auto &w : drain) {
        steps_.fetch_add(1, std::memory_order_relaxed);
        w->step();
    }
}

size_t
Scheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.size();
}

} // namespace kernel
} // namespace browsix
