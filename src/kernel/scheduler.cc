#include "kernel/scheduler.h"

#include <algorithm>
#include <chrono>

#include "jsvm/util.h"

namespace browsix {
namespace kernel {

Scheduler::Scheduler(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads < 2)
            threads = 2;
    }
    poolSize_ = threads;
}

Scheduler::~Scheduler()
{
    shutdown();
}

void
Scheduler::startThreadsLocked()
{
    started_ = true;
    threads_.reserve(poolSize_);
    for (unsigned i = 0; i < poolSize_; i++)
        threads_.emplace_back([this]() { threadMain(); });
}

void
Scheduler::enqueue(std::shared_ptr<jsvm::Worker> w)
{
    {
        std::unique_lock<std::mutex> lk(mutex_);
        if (!shutdownDone_) {
            if (!started_)
                startThreadsLocked();
            queue_.push_back(std::move(w));
            lk.unlock();
            cv_.notify_one();
            return;
        }
    }
    // Pool retired: run the step on the caller so late-terminated workers
    // still unwind their guests instead of leaking suspended fibers.
    steps_.fetch_add(1, std::memory_order_relaxed);
    w->step();
}

void
Scheduler::scheduleTimer(std::shared_ptr<jsvm::Worker> w, int64_t due_us)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!shutdownDone_) {
            timers_.push_back(PendingTimer{due_us, w});
            cv_.notify_one();
            return;
        }
    }
    // Retired pool: no thread will ever fire the timer; step the worker
    // once now so its loop can promote whatever became due.
    steps_.fetch_add(1, std::memory_order_relaxed);
    w->step();
}

int64_t
Scheduler::promoteDueTimersLocked(int64_t now)
{
    int64_t next = -1;
    for (auto it = timers_.begin(); it != timers_.end();) {
        if (it->due_us <= now) {
            if (auto w = it->worker.lock())
                queue_.push_back(std::move(w));
            it = timers_.erase(it);
        } else {
            if (next < 0 || it->due_us < next)
                next = it->due_us;
            ++it;
        }
    }
    return next;
}

void
Scheduler::threadMain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        int64_t next_due = promoteDueTimersLocked(jsvm::nowUs());
        if (stopping_)
            return;
        if (queue_.empty()) {
            if (next_due < 0) {
                cv_.wait(lk);
            } else {
                // Bounded wait: under a TestClock, virtual time advances
                // without real time passing, so poll rather than oversleep.
                int64_t delta = next_due - jsvm::nowUs();
                delta = std::min<int64_t>(std::max<int64_t>(delta, 0), 50000);
                cv_.wait_for(lk, std::chrono::microseconds(delta + 1));
            }
            continue;
        }
        auto w = std::move(queue_.front());
        queue_.pop_front();
        lk.unlock();
        steps_.fetch_add(1, std::memory_order_relaxed);
        w->step();
        w.reset();
        lk.lock();
    }
}

void
Scheduler::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (shutdownDone_ && threads_.empty())
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
    std::deque<std::shared_ptr<jsvm::Worker>> drain;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        threads_.clear();
        drain.swap(queue_);
        timers_.clear();
        shutdownDone_ = true;
    }
    // Final inline steps: every queued worker gets its quantum so
    // terminated guests unwind before the scheduler goes away.
    for (auto &w : drain) {
        steps_.fetch_add(1, std::memory_order_relaxed);
        w->step();
    }
}

size_t
Scheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.size();
}

} // namespace kernel
} // namespace browsix
