#include "kernel/epoll.h"

#include "runtime/syscall_proto.h"

namespace browsix {
namespace kernel {

int
EpollFile::ctl(int op, int fd, int32_t events)
{
    switch (op) {
      case sys::EPOLL_CTL_ADD_:
        if (interest_.count(fd))
            return EEXIST;
        interest_[fd] = events;
        return 0;
      case sys::EPOLL_CTL_MOD_: {
        auto it = interest_.find(fd);
        if (it == interest_.end())
            return ENOENT;
        it->second = events;
        return 0;
      }
      case sys::EPOLL_CTL_DEL_:
        if (!interest_.count(fd))
            return ENOENT;
        interest_.erase(fd);
        return 0;
      default:
        return EINVAL;
    }
}

} // namespace kernel
} // namespace browsix
