/**
 * @file
 * The kernel run queue: a fixed pool of host threads driving pooled
 * workers (jsvm::WorkerExecutor implementation).
 *
 * Decouples "process" from "thread" (ROADMAP item 1): every guest process
 * is a queue item, not a thread pair, so 10k+ live processes share
 * hardware_concurrency host threads. FIFO ordering gives starvation
 * freedom at worker granularity — a CPU-bound guest yields at the end of
 * its step and re-queues behind everyone else.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "jsvm/worker.h"

namespace browsix {
namespace kernel {

class Scheduler final : public jsvm::WorkerExecutor
{
  public:
    /** threads == 0 sizes the pool to hardware_concurrency (min 2). */
    explicit Scheduler(unsigned threads = 0);
    ~Scheduler() override;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Push a worker onto the run queue; pool threads start lazily on the
     * first enqueue. After shutdown(), runs the step inline instead (so
     * late terminations still unwind their guests). */
    void enqueue(std::shared_ptr<jsvm::Worker> w) override;

    /** Re-enqueue w once jsvm::nowUs() reaches due_us. */
    void scheduleTimer(std::shared_ptr<jsvm::Worker> w,
                       int64_t due_us) override;

    /**
     * Stop the pool: drains the remaining queue (stepping each worker so
     * terminated guests unwind), then joins every thread. Idempotent.
     */
    void shutdown();

    unsigned poolSize() const { return poolSize_; }

    /** Total steps executed (pool + inline); scheduling observability. */
    uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

    /** Run-queue depth right now. */
    size_t queueDepth() const;

  private:
    void threadMain();
    void startThreadsLocked();
    // Collect workers whose timers are due into `due`; returns the next
    // pending due time (us) or -1. Caller holds mutex_ and must drop it
    // before waking the collected workers via Worker::signalWork (whose
    // Idle->Queued CAS dedupes — a raw queue_ push could double-queue a
    // worker and let two pool threads step it concurrently).
    int64_t promoteDueTimersLocked(int64_t now,
                                   std::vector<std::shared_ptr<jsvm::Worker>> &due);

    struct PendingTimer
    {
        int64_t due_us;
        std::weak_ptr<jsvm::Worker> worker;
    };

    unsigned poolSize_;
    std::atomic<uint64_t> steps_{0};

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<jsvm::Worker>> queue_;
    std::vector<PendingTimer> timers_;
    std::vector<std::thread> threads_;
    bool started_ = false;
    bool stopping_ = false;
    bool shutdownDone_ = false;
};

} // namespace kernel
} // namespace browsix
