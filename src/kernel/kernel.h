/**
 * @file
 * The Browsix kernel (§3): lives in the main browser context, owns the
 * shared Unix subsystems (filesystem, pipes, sockets, task structures),
 * dispatches system calls from processes, and delivers signals.
 *
 * Threading model: everything here runs on the browser's main event loop.
 * Processes post syscall messages from their workers; the postMessage
 * machinery delivers them here as loop tasks, so kernel state needs no
 * locks — exactly like JavaScript.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bfs/vfs.h"
#include "jsvm/browser.h"
#include "kernel/socket.h"
#include "kernel/task.h"

namespace browsix {
namespace kernel {

class SyscallCtx;
using SyscallCtxPtr = std::shared_ptr<SyscallCtx>;

/** Experiment counters, one per interesting kernel event. Read-only for
 * embedders via Kernel::stats(). */
struct KernelStats
{
    uint64_t syscallCount = 0;
    uint64_t asyncSyscallCount = 0;
    uint64_t syncSyscallCount = 0;
    uint64_t ringSyscallCount = 0;
    /// Ring batching effectiveness: doorbells serviced, Atomics notifies
    /// issued (the whole point is notifies << ring syscalls), and CQEs
    /// dropped because a non-conforming producer overflowed its CQ.
    uint64_t ringBatchesDrained = 0;
    uint64_t ringNotifies = 0;
    uint64_t ringCqOverflows = 0;
    uint64_t messagesSent = 0;
    uint64_t signalsDelivered = 0;
    uint64_t processesSpawned = 0;
};

class Kernel
{
  public:
    /// Runs inside a freshly-created worker; instantiates the right
    /// language runtime for the executable bytes (set by core/).
    using Bootstrapper = std::function<void(
        jsvm::WorkerScope &,
        std::shared_ptr<const std::vector<uint8_t>> code)>;

    using OutputCb = std::function<void(const bfs::Buffer &)>;
    using ExitCb = std::function<void(int status)>;
    using SpawnCb = std::function<void(int err_or_pid)>;

    Kernel(jsvm::Browser &browser, bfs::VfsPtr vfs);
    ~Kernel();

    void setBootstrapper(Bootstrapper b) { bootstrapper_ = std::move(b); }

    bfs::Vfs &fs() { return *vfs_; }
    jsvm::Browser &browser() { return browser_; }

    /// Default environment for root processes (PATH etc.).
    std::map<std::string, std::string> defaultEnv = {
        {"PATH", "/usr/bin:/bin"}, {"HOME", "/"}, {"TERM", "xterm"}};

    // ----- embedder API (§4.1) -----

    /**
     * Run a shell command, Figure 4 style: stdout/stderr are delivered to
     * the callbacks, on_exit receives the wait status.
     */
    void system(const std::string &cmd, ExitCb on_exit, OutputCb out,
                OutputCb err);

    /** Spawn a root process (ppid 0) with callback-wired stdio. */
    void spawnRoot(std::vector<std::string> argv,
                   std::map<std::string, std::string> env, std::string cwd,
                   ExitCb on_exit, OutputCb out, OutputCb err, SpawnCb cb,
                   bfs::Buffer stdin_data = {});

    /** Send a signal (kernel.kill). */
    int kill(int pid, int sig);

    /** Register a socket notification: cb fires when a process starts
     * listening on port (§4.1 "Socket notifications"). */
    void onPortListen(int port, std::function<void()> cb);

    /** True once some process is listening on port. */
    bool portListening(int port) const;

    /**
     * Host-side connection into a Browsix socket server, used by the
     * XMLHttpRequest-like API. on_data fires per received chunk; on_close
     * at EOF. The returned functions write to / close the connection.
     */
    struct HostConn
    {
        std::function<void(bfs::Buffer)> write;
        std::function<void()> close;
    };
    void connect(int port,
                 std::function<void(const bfs::Buffer &)> on_data,
                 std::function<void()> on_close,
                 std::function<void(int err, std::shared_ptr<HostConn>)> cb);

    // ----- introspection / experiment counters -----
    size_t taskCount() const { return tasks_.size(); }
    Task *task(int pid);
    std::vector<int> pids() const;

    const KernelStats &stats() const { return stats_; }

    // ----- internal (used by syscall handlers; public for the ctx) -----

    void doSpawn(Task *parent, std::vector<std::string> argv,
                 std::map<std::string, std::string> env, std::string cwd,
                 std::map<int, KFilePtr> fds, jsvm::Value snapshot,
                 SpawnCb cb, ExitCb root_exit = nullptr);
    void doExec(Task &t, std::vector<std::string> argv,
                std::map<std::string, std::string> env, SpawnCb cb);
    /** fork(): duplicate the task, booting the child from the parent's
     * executable blob with the serialized heap+PC snapshot (§4.3). */
    int doFork(Task &parent, jsvm::Value snapshot);
    void doExit(Task &t, int status);
    void deliverSignal(Task &t, int sig);
    /**
     * Drain the task's submission ring: consume every published SQE,
     * dispatch it, and issue (at most) one Atomics notify for the whole
     * batch. Invoked per doorbell message; a batch submitted under one
     * doorbell is drained in one pump.
     */
    void drainSyscallRing(int pid);
    /** Wake a ring waiter (wait word := 1 + notify). Used at end-of-batch
     * and for completions that land outside a drain. */
    void ringNotify(Task &t);
    int doConnect(Task *client_task, SocketFile &client, int port);
    void notifyListen(int port, SocketFile *listener);
    void completeWaits(Task &parent);
    void reapTask(int pid);

    std::map<int, SocketFile *> &ports() { return ports_; }

  private:
    void onWorkerMessage(int pid, jsvm::Value msg);
    void dispatchSyscall(Task &t, SyscallCtxPtr ctx);
    void replyTo(Task &t, const jsvm::Value &msg);

    /** Resolve shebangs: yields final executable bytes + argv. */
    void resolveExecutable(std::vector<std::string> argv,
                           const std::string &cwd, int depth,
                           std::function<void(int err, bfs::BufferPtr,
                                              std::vector<std::string>)>
                               cb);

    jsvm::Browser &browser_;
    bfs::VfsPtr vfs_;
    Bootstrapper bootstrapper_;
    KernelStats stats_;

    int nextPid_ = 1;
    std::map<int, std::unique_ptr<Task>> tasks_;
    std::map<int, SocketFile *> ports_; // bound port -> listening socket
    std::multimap<int, std::function<void()>> listenWatchers_;

    friend class SyscallCtx;
};

} // namespace kernel
} // namespace browsix
