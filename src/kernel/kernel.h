/**
 * @file
 * The Browsix kernel (§3): lives in the main browser context, owns the
 * shared Unix subsystems (filesystem, pipes, sockets, task structures),
 * dispatches system calls from processes, and delivers signals.
 *
 * Threading model: everything here runs on the browser's main event loop.
 * Processes post syscall messages from their workers; the postMessage
 * machinery delivers them here as loop tasks, so kernel state needs no
 * locks — exactly like JavaScript.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bfs/vfs.h"
#include "jsvm/browser.h"
#include "kernel/latency_histogram.h"
#include "kernel/scheduler.h"
#include "kernel/socket.h"
#include "kernel/task.h"
#include "kernel/task_table.h"
#include "net/net_backend.h"

namespace browsix {
namespace kernel {

class SyscallCtx;
using SyscallCtxPtr = std::shared_ptr<SyscallCtx>;

/**
 * A process's run state, decoupled from host threads (ROADMAP item 1):
 * a parked process holds no thread, just a queue-able worker.
 */
enum class RunState {
    Runnable, ///< in the run queue, waiting for a pool thread
    Running,  ///< a pool thread is executing it right now
    Parked,   ///< blocked (syscall wait, channel, timer): costs no thread
    Zombie    ///< exited, awaiting reap
};

/** Experiment counters, one per interesting kernel event. Read-only for
 * embedders via Kernel::stats(). */
struct KernelStats
{
    uint64_t syscallCount = 0;
    uint64_t asyncSyscallCount = 0;
    uint64_t syncSyscallCount = 0;
    uint64_t ringSyscallCount = 0;
    /// Ring batching effectiveness: doorbells serviced, Atomics notifies
    /// issued (the whole point is notifies << ring syscalls), and CQEs
    /// dropped because a non-conforming producer overflowed its CQ.
    uint64_t ringBatchesDrained = 0;
    /// Doorbell messages received ("ring" worker messages). Under the
    /// coalesced doorbell this stays below the batch count: producers
    /// skip the message while a drain pass is scheduled.
    uint64_t ringDoorbells = 0;
    uint64_t ringNotifies = 0;
    uint64_t ringCqOverflows = 0;
    /// Adaptive doorbell coalescing: follow-up drain passes the kernel
    /// scheduled after a productive batch. While one is pending the
    /// drainPending header word stays armed and producers skip the
    /// doorbell message entirely (see syscall_ring.h).
    uint64_t ringDrainsScheduled = 0;
    /// SQEs rejected at drain time because a heap-offset argument fell
    /// outside the personality heap (completed with -EFAULT, never
    /// dispatched to a handler).
    uint64_t ringEfaults = 0;
    /// Completion-deferral protocol: CQEs pushed outside a drain pass.
    /// The SQE's trap would have blocked (read on an empty pipe, accept
    /// with no pending connection, poll with nothing ready), so the
    /// completion parked against a pipe/socket waiter list and landed
    /// when the event arrived, paying its own notify.
    uint64_t ringDeferredCompletions = 0;
    /// Deferral-protocol coverage beyond pipe reads: wait4 calls parked
    /// against the process table's wait-waiter list (completed later by
    /// completeWaits), connect calls parked on a full listener backlog
    /// (completed when accept frees a slot, or ECONNREFUSED when the
    /// listener closes), and epoll_wait calls parked against their
    /// registered interest list's readiness watchers.
    uint64_t wait4Parked = 0;
    uint64_t connectsParked = 0;
    uint64_t epollWaitsParked = 0;
    /// Bytes sendfile moved file→pipe/socket entirely kernel-side (no
    /// guest-heap bounce: preadInto a staging window, writeFrom it out).
    uint64_t sendfileBytes = 0;
    /// Read-path data movement: completions whose out-data the backend
    /// wrote directly into the guest heap through a heapSpan window
    /// (zero-copy), vs completions that bounced an intermediate
    /// bfs::Buffer through a kernel-side memcpy (completeData).
    uint64_t zeroCopyCompletions = 0;
    uint64_t copiedCompletions = 0;
    uint64_t messagesSent = 0;
    uint64_t signalsDelivered = 0;
    uint64_t processesSpawned = 0;

    /// Ring drain-pass shape: SQEs consumed per productive pass (the
    /// batching the one-notify-per-batch design amortizes against) and
    /// how long each pass took, wall-clock µs. Both feed the bench
    /// trajectory gates alongside the per-syscall histograms.
    LatencyHistogram ringBatchDepth;
    LatencyHistogram ringDrainUs;

    /// Per-syscall dispatch→completion latency, log2-bucketed in µs.
    /// Keyed by syscall name; only calls actually observed appear. Calls
    /// that never complete (exit, a read parked when its process dies)
    /// are not recorded.
    std::map<std::string, LatencyHistogram> syscallLatencyUs;

    /** Histogram for one syscall, or nullptr if never observed. */
    const LatencyHistogram *latency(const std::string &name) const
    {
        auto it = syscallLatencyUs.find(name);
        return it == syscallLatencyUs.end() ? nullptr : &it->second;
    }
};

class Kernel
{
  public:
    /// Runs inside a freshly-created worker; instantiates the right
    /// language runtime for the executable bytes (set by core/).
    using Bootstrapper = std::function<void(
        jsvm::WorkerScope &,
        std::shared_ptr<const std::vector<uint8_t>> code)>;

    using OutputCb = std::function<void(const bfs::Buffer &)>;
    using ExitCb = std::function<void(int status)>;
    using SpawnCb = std::function<void(int err_or_pid)>;

    /**
     * `net` selects the connection transport every socket on this kernel
     * uses (port namespace + per-connection byte streams); nullptr means
     * the in-kernel LoopbackBackend — the classic Browsix behavior.
     */
    Kernel(jsvm::Browser &browser, bfs::VfsPtr vfs,
           net::NetBackendPtr net = nullptr);
    ~Kernel();

    void setBootstrapper(Bootstrapper b) { bootstrapper_ = std::move(b); }

    bfs::Vfs &fs() { return *vfs_; }
    jsvm::Browser &browser() { return browser_; }

    /// Default environment for root processes (PATH etc.).
    std::map<std::string, std::string> defaultEnv = {
        {"PATH", "/usr/bin:/bin"}, {"HOME", "/"}, {"TERM", "xterm"}};

    // ----- embedder API (§4.1) -----

    /**
     * Run a shell command, Figure 4 style: stdout/stderr are delivered to
     * the callbacks, on_exit receives the wait status.
     */
    void system(const std::string &cmd, ExitCb on_exit, OutputCb out,
                OutputCb err);

    /** Spawn a root process (ppid 0) with callback-wired stdio. */
    void spawnRoot(std::vector<std::string> argv,
                   std::map<std::string, std::string> env, std::string cwd,
                   ExitCb on_exit, OutputCb out, OutputCb err, SpawnCb cb,
                   bfs::Buffer stdin_data = {});

    /** Send a signal (kernel.kill). pid == -1 broadcasts to every
     * process except skip_pid — sysKill passes the calling task so a
     * guest kill(-1) excludes itself, Linux style, while embedder
     * teardown (skip_pid 0) hits everything. ESRCH when no process was
     * signalled. */
    int kill(int pid, int sig, int skip_pid = 0);

    /** Register a socket notification: cb fires when a process starts
     * listening on port (§4.1 "Socket notifications"). */
    void onPortListen(int port, std::function<void()> cb);

    /** True once some process is listening on port. */
    bool portListening(int port) const;

    /**
     * Host-side connection into a Browsix socket server, used by the
     * XMLHttpRequest-like API. on_data fires per received chunk; on_close
     * at EOF. The returned functions write to / close the connection.
     */
    struct HostConn
    {
        std::function<void(bfs::Buffer)> write;
        std::function<void()> close;
    };
    void connect(int port,
                 std::function<void(const bfs::Buffer &)> on_data,
                 std::function<void()> on_close,
                 std::function<void(int err, std::shared_ptr<HostConn>)> cb);

    // ----- introspection / experiment counters -----
    size_t taskCount() const { return tasks_.size(); }
    Task *task(int pid);
    std::vector<int> pids() const;

    /** The run state of pid (ESRCH-gone pids read as Zombie). */
    RunState runState(int pid);

    /** The worker-pool run queue driving every process. */
    Scheduler &scheduler() { return *sched_; }

    /**
     * Test hook: replace the pool with one of `threads` threads. Must be
     * called before the first spawn (pool threads start lazily on the
     * first enqueue, so the swap is cheap until then).
     */
    void setPoolThreads(unsigned threads);

    /**
     * Per-tenant process quota, RLIMIT_NPROC-shaped: every root process
     * and its descendants share one live-process budget; spawn/fork past
     * it fails with -EAGAIN. This is what contains a fork bomb to its own
     * process tree instead of exhausting the pid table.
     */
    void setNprocLimit(int limit) { nprocLimit_ = limit < 1 ? 1 : limit; }
    int nprocLimit() const { return nprocLimit_; }

    /** Visit every task band by band — the only sanctioned whole-table
     * walk (shutdown, broadcast). fn must not spawn or reap. */
    template <typename Fn>
    void forEachTask(Fn &&fn)
    {
        tasks_.forEach(std::forward<Fn>(fn));
    }

    const KernelStats &stats() const { return stats_; }
    /** Mutable counters for the syscall handlers (kernel_syscalls.cc),
     * which live outside the class and record deferral-protocol events
     * (wait4Parked, epollWaitsParked, sendfileBytes, ...). */
    KernelStats &statsMut() { return stats_; }

    /// Pid allocation wraps past this; the allocator then skips pids
    /// still present in the table (Linux's PID_MAX_LIMIT).
    static constexpr int kMaxPid = 4 * 1024 * 1024;

    /** Test hook: move the pid-allocation cursor (wraparound coverage in
     * the stress suite). Clamped to [1, kMaxPid]. */
    void setNextPid(int pid)
    {
        nextPid_ = (pid < 1 || pid > kMaxPid) ? 1 : pid;
    }

    // ----- internal (used by syscall handlers; public for the ctx) -----

    void doSpawn(Task *parent, std::vector<std::string> argv,
                 std::map<std::string, std::string> env, std::string cwd,
                 std::map<int, KFilePtr> fds, jsvm::Value snapshot,
                 SpawnCb cb, ExitCb root_exit = nullptr);
    void doExec(Task &t, std::vector<std::string> argv,
                std::map<std::string, std::string> env, SpawnCb cb);
    /** fork(): duplicate the task, booting the child from the parent's
     * executable blob with the serialized heap+PC snapshot (§4.3). */
    int doFork(Task &parent, jsvm::Value snapshot);
    void doExit(Task &t, int status);
    void deliverSignal(Task &t, int sig);
    /**
     * Drain the task's submission ring: consume every published SQE,
     * dispatch it, and issue (at most) one Atomics notify for the whole
     * batch. Invoked per doorbell message and per scheduled follow-up
     * pass; a batch submitted under one doorbell is drained in one pump.
     * idle_grace: how many consecutive empty passes may linger (armed,
     * rescheduling) before the coalescing pipeline disarms — one pass of
     * grace bridges the gap between a producer being woken and its next
     * batch landing in the SQ.
     */
    void drainSyscallRing(int pid, int idle_grace = 1);
    /**
     * Queue a follow-up drain pass for pid on the main loop (adaptive
     * doorbell coalescing): the ring's drainPending word stays armed
     * until a pass (and its grace passes) find the SQ empty, so
     * producers publishing meanwhile skip the doorbell message entirely.
     */
    void scheduleRingDrain(int pid, int idle_grace);
    /** Wake a ring waiter (wait word := 1 + notify). Used at end-of-batch
     * and for completions that land outside a drain. */
    void ringNotify(Task &t);
    int doConnect(Task *client_task, SocketFile &client, int port);
    /**
     * Deferral-protocol connect: like doConnect, but when the listener's
     * backlog is full the rendezvous parks on the socket and `done` fires
     * later — with 0 when accept frees a slot (the client endpoint is
     * established by then), or ECONNREFUSED when the listener closes.
     * Immediate outcomes run `done` before returning. Returns true when
     * the completion parked.
     */
    bool connectOrPark(SocketFilePtr client, int port,
                       std::function<void(int err)> done);
    void notifyListen(int port, SocketFilePtr listener);
    void completeWaits(Task &parent);
    void reapTask(int pid);
    /**
     * Record one completed syscall's dispatch→completion time into the
     * per-name latency histogram (called by SyscallCtx). Sync/ring calls
     * pass their trap number so the hot path is an array index into a
     * cached histogram pointer; only async calls (trap < 0) and each
     * trap's first completion pay the name-keyed map lookup.
     */
    void noteSyscallLatency(int trap, const std::string &name, uint64_t us)
    {
        if (trap >= 0 && trap < kTrapHistSlots) {
            LatencyHistogram *&slot = trapHist_[trap];
            if (!slot)
                slot = &stats_.syscallLatencyUs[name]; // map nodes are stable
            slot->record(us);
            return;
        }
        stats_.syscallLatencyUs[name].record(us);
    }

    /** The connection transport behind every socket on this kernel. */
    net::NetBackend &net() { return *net_; }

  private:
    void onWorkerMessage(int pid, jsvm::Value msg);
    void dispatchSyscall(Task &t, SyscallCtxPtr ctx);
    void replyTo(Task &t, const jsvm::Value &msg);

    /** Resolve shebangs: yields final executable bytes + argv. */
    void resolveExecutable(std::vector<std::string> argv,
                           const std::string &cwd, int depth,
                           std::function<void(int err, bfs::BufferPtr,
                                              std::vector<std::string>)>
                               cb);

    /** Next free pid from the round-robin cursor (skips pids still in
     * the table after wraparound), or -EAGAIN when the table is full. */
    int allocPid();

    jsvm::Browser &browser_;
    bfs::VfsPtr vfs_;
    Bootstrapper bootstrapper_;
    KernelStats stats_;
    /// The worker pool every process runs on (installed as the Browser's
    /// executor in the ctor, so workers are pooled from birth).
    std::shared_ptr<Scheduler> sched_;
    int nprocLimit_ = 4096;
    /// Liveness tag for loop tasks the kernel posts to itself (scheduled
    /// ring drains): a task whose weak_ptr expired outlived the kernel
    /// and must do nothing.
    std::shared_ptr<int> aliveTag_ = std::make_shared<int>(0);

    int nextPid_ = 1;
    TaskTable tasks_;
    /// Trap-indexed cache of histogram map nodes (covers every sys::Trap
    /// value; 423 = RING_PERSONALITY is the current ceiling).
    static constexpr int kTrapHistSlots = 512;
    std::array<LatencyHistogram *, kTrapHistSlots> trapHist_{};
    /// Connection transport: port namespace, rendezvous, byte streams.
    net::NetBackendPtr net_;

    friend class SyscallCtx;
};

} // namespace kernel
} // namespace browsix
