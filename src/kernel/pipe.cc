#include "kernel/pipe.h"

#include <algorithm>
#include <cstring>

namespace browsix {
namespace kernel {

size_t
Pipe::serveReadersFrom(const uint8_t *data, size_t len, bool src_is_span)
{
    size_t off = 0;
    while (off < len && !readWaiters_.empty()) {
        // Pop before invoking: the callback may reenter read()/write()
        // and reallocate the deque.
        ReadWaiter r = std::move(readWaiters_.front());
        readWaiters_.pop_front();
        size_t want = r.spanShaped() ? r.span.len : r.maxlen;
        size_t n = std::min(want, len - off);
        bytesTransferred_ += n;
        if (r.spanShaped()) {
            std::memcpy(r.span.data, data + off, n);
            if (src_is_span)
                spanToSpanBytes_ += n;
            off += n;
            r.scb(0, n);
        } else {
            auto out =
                std::make_shared<bfs::Buffer>(data + off, data + off + n);
            off += n;
            r.cb(0, std::move(out));
        }
    }
    return off;
}

void
Pipe::pump()
{
    // Reentrant calls (a completion callback re-entering read()/write()
    // on this pipe) fold into the active scan: every loop below re-reads
    // the deques after each callback, and no reference into a deque is
    // held across one — a callback that pushes or pops waiters can
    // reallocate the storage (the PR 6 dangling-reference fix).
    if (pumping_)
        return;
    pumping_ = true;
    for (;;) {
        bool progress = false;

        // Parked readers drink straight from stalled writers while the
        // buffer is empty — window-to-window when both sides are spans,
        // skipping the deque transit entirely.
        while (buf_.empty() && !readWaiters_.empty() &&
               !writeWaiters_.empty()) {
            const WriteWaiter &front = writeWaiters_.front();
            const uint8_t *p = front.bytes() + front.off;
            size_t remain = front.total - front.off;
            bool src_span = front.span_shaped;
            size_t n = serveReadersFrom(p, remain, src_span);
            if (n == 0)
                break;
            progress = true;
            WriteWaiter &w = writeWaiters_.front();
            w.off += n;
            if (w.off == w.total) {
                WriteWaiter done = std::move(writeWaiters_.front());
                writeWaiters_.pop_front();
                done.cb(0, done.total);
            }
        }

        // Move queued writer data into freed buffer space. The waiter is
        // popped (moved out) before its callback runs.
        while (!writeWaiters_.empty() && buf_.size() < capacity_) {
            WriteWaiter &w = writeWaiters_.front();
            size_t space = capacity_ - buf_.size();
            size_t n = std::min(space, w.total - w.off);
            const uint8_t *p = w.bytes() + w.off;
            buf_.insert(buf_.end(), p, p + n);
            w.off += n;
            progress = progress || n > 0;
            if (w.off == w.total) {
                WriteWaiter done = std::move(writeWaiters_.front());
                writeWaiters_.pop_front();
                done.cb(0, done.total);
            } else {
                break; // buffer full again
            }
        }

        // Satisfy readers from the buffer (deque -> window for
        // span-shaped waiters: still no intermediate bfs::Buffer).
        while (!readWaiters_.empty() && !buf_.empty()) {
            ReadWaiter r = std::move(readWaiters_.front());
            readWaiters_.pop_front();
            if (r.spanShaped()) {
                size_t n = std::min(r.span.len, buf_.size());
                std::copy(buf_.begin(), buf_.begin() + n, r.span.data);
                buf_.erase(buf_.begin(), buf_.begin() + n);
                bytesTransferred_ += n;
                progress = true;
                r.scb(0, n);
            } else {
                size_t n = std::min(r.maxlen, buf_.size());
                auto out = std::make_shared<bfs::Buffer>(buf_.begin(),
                                                         buf_.begin() + n);
                buf_.erase(buf_.begin(), buf_.begin() + n);
                bytesTransferred_ += n;
                progress = true;
                r.cb(0, std::move(out));
            }
        }

        // Writer gone: wake remaining readers with EOF.
        if (writerClosed_ && buf_.empty() && writeWaiters_.empty()) {
            while (!readWaiters_.empty()) {
                ReadWaiter r = std::move(readWaiters_.front());
                readWaiters_.pop_front();
                progress = true;
                if (r.spanShaped())
                    r.scb(0, 0);
                else
                    r.cb(0, std::make_shared<bfs::Buffer>());
            }
        }

        // Reader gone: queued writes fail with EPIPE, and any reads the
        // (former) reader still had queued complete with EOF.
        if (readerClosed_) {
            while (!writeWaiters_.empty()) {
                WriteWaiter w = std::move(writeWaiters_.front());
                writeWaiters_.pop_front();
                progress = true;
                w.cb(EPIPE, 0);
            }
            while (!readWaiters_.empty()) {
                ReadWaiter r = std::move(readWaiters_.front());
                readWaiters_.pop_front();
                progress = true;
                if (r.spanShaped())
                    r.scb(0, 0);
                else
                    r.cb(0, std::make_shared<bfs::Buffer>());
            }
        }

        if (!progress)
            break;
    }
    pumping_ = false;
    fireWatchers();
}

void
Pipe::fireWatchers()
{
    if (!readWatchers_.empty() && readable()) {
        std::vector<std::function<void()>> fns;
        fns.swap(readWatchers_);
        for (auto &fn : fns)
            fn();
    }
    if (!writeWatchers_.empty() && writable()) {
        std::vector<std::function<void()>> fns;
        fns.swap(writeWatchers_);
        for (auto &fn : fns)
            fn();
    }
}

void
Pipe::watchReadable(std::function<void()> fn)
{
    if (readable()) {
        fn();
        return;
    }
    readWatchers_.push_back(std::move(fn));
}

void
Pipe::watchWritable(std::function<void()> fn)
{
    if (writable()) {
        fn();
        return;
    }
    writeWatchers_.push_back(std::move(fn));
}

void
Pipe::read(size_t maxlen, bfs::DataCb cb)
{
    if (maxlen == 0) {
        cb(0, std::make_shared<bfs::Buffer>());
        return;
    }
    if (!buf_.empty()) {
        size_t n = std::min(maxlen, buf_.size());
        auto out =
            std::make_shared<bfs::Buffer>(buf_.begin(), buf_.begin() + n);
        buf_.erase(buf_.begin(), buf_.begin() + n);
        bytesTransferred_ += n;
        cb(0, std::move(out));
        pump();
        return;
    }
    if (writerClosed_) {
        cb(0, std::make_shared<bfs::Buffer>()); // EOF
        return;
    }
    readWaiters_.push_back(
        ReadWaiter{maxlen, std::move(cb), bfs::ByteSpan{}, bfs::SizeCb{}});
}

void
Pipe::readInto(bfs::ByteSpan dst, bfs::SizeCb cb)
{
    if (dst.len == 0) {
        cb(0, 0);
        return;
    }
    if (!buf_.empty()) {
        size_t n = std::min(dst.len, buf_.size());
        std::copy(buf_.begin(), buf_.begin() + n, dst.data);
        buf_.erase(buf_.begin(), buf_.begin() + n);
        bytesTransferred_ += n;
        cb(0, n);
        pump();
        return;
    }
    if (writerClosed_) {
        cb(0, 0); // EOF
        return;
    }
    // Park the caller-pinned window; a later write lands bytes in it
    // directly and the deferred completion fires then.
    readWaiters_.push_back(
        ReadWaiter{dst.len, bfs::DataCb{}, dst, std::move(cb)});
}

void
Pipe::write(bfs::Buffer data, bfs::SizeCb cb)
{
    if (readerClosed_) {
        cb(EPIPE, 0);
        return;
    }
    if (writerClosed_) {
        cb(EBADF, 0);
        return;
    }
    size_t total = data.size();
    if (total == 0) {
        cb(0, 0);
        return;
    }
    size_t space = capacity_ > buf_.size() ? capacity_ - buf_.size() : 0;
    size_t n = std::min(space, total);
    buf_.insert(buf_.end(), data.begin(), data.begin() + n);
    if (n == total) {
        cb(0, total);
    } else {
        stalls_++;
        writeWaiters_.push_back(WriteWaiter{std::move(data),
                                            bfs::ConstByteSpan{}, n, total,
                                            std::move(cb), false});
    }
    pump();
}

void
Pipe::writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb)
{
    if (readerClosed_) {
        cb(EPIPE, 0);
        return;
    }
    if (writerClosed_) {
        cb(EBADF, 0);
        return;
    }
    size_t total = src.len;
    if (total == 0) {
        cb(0, 0);
        return;
    }
    size_t off = 0;
    // The zero-copy leg: with nothing buffered and no writers queued
    // ahead, parked readers are served straight from the caller's
    // window (span-to-span when the reader parked a window too).
    if (writeWaiters_.empty() && buf_.empty())
        off = serveReadersFrom(src.data, total, /*src_is_span=*/true);
    if (readerClosed_) { // a served reader's callback closed its end
        cb(EPIPE, 0);
        return;
    }
    size_t space = capacity_ > buf_.size() ? capacity_ - buf_.size() : 0;
    size_t n = std::min(space, total - off);
    std::copy(src.data + off, src.data + off + n,
              std::back_inserter(buf_));
    off += n;
    if (off == total) {
        cb(0, total);
    } else {
        stalls_++;
        // Park the window itself: the completion callback's captures pin
        // the backing heap, so no defensive Buffer copy is needed.
        writeWaiters_.push_back(WriteWaiter{bfs::Buffer{}, src, off, total,
                                            std::move(cb), true});
    }
    pump();
}

void
Pipe::closeReader()
{
    if (readerClosed_)
        return;
    readerClosed_ = true;
    pump();
}

void
Pipe::closeWriter()
{
    if (writerClosed_)
        return;
    writerClosed_ = true;
    pump();
}

} // namespace kernel
} // namespace browsix
