#include "kernel/pipe.h"

#include <algorithm>

namespace browsix {
namespace kernel {

void
Pipe::pump()
{
    // Move queued writer data into freed buffer space, then satisfy
    // readers, repeating until no further progress is possible.
    for (;;) {
        bool progress = false;

        while (!writeWaiters_.empty() && buf_.size() < capacity_) {
            WriteWaiter &w = writeWaiters_.front();
            size_t space = capacity_ - buf_.size();
            size_t n = std::min(space, w.data.size() - w.off);
            buf_.insert(buf_.end(), w.data.begin() + w.off,
                        w.data.begin() + w.off + n);
            w.off += n;
            progress = progress || n > 0;
            if (w.off == w.data.size()) {
                auto cb = std::move(w.cb);
                size_t total = w.total;
                writeWaiters_.pop_front();
                cb(0, total);
            } else {
                break; // buffer full again
            }
        }

        while (!readWaiters_.empty() && !buf_.empty()) {
            ReadWaiter r = std::move(readWaiters_.front());
            readWaiters_.pop_front();
            size_t n = std::min(r.maxlen, buf_.size());
            auto out = std::make_shared<bfs::Buffer>(buf_.begin(),
                                                     buf_.begin() + n);
            buf_.erase(buf_.begin(), buf_.begin() + n);
            bytesTransferred_ += n;
            progress = true;
            r.cb(0, std::move(out));
        }

        // Writer gone: wake remaining readers with EOF.
        if (writerClosed_ && buf_.empty() && writeWaiters_.empty()) {
            while (!readWaiters_.empty()) {
                ReadWaiter r = std::move(readWaiters_.front());
                readWaiters_.pop_front();
                r.cb(0, std::make_shared<bfs::Buffer>());
                progress = true;
            }
        }

        // Reader gone: queued writes fail with EPIPE, and any reads the
        // (former) reader still had queued complete with EOF.
        if (readerClosed_) {
            while (!writeWaiters_.empty()) {
                WriteWaiter w = std::move(writeWaiters_.front());
                writeWaiters_.pop_front();
                w.cb(EPIPE, 0);
                progress = true;
            }
            while (!readWaiters_.empty()) {
                ReadWaiter r = std::move(readWaiters_.front());
                readWaiters_.pop_front();
                r.cb(0, std::make_shared<bfs::Buffer>());
                progress = true;
            }
        }

        if (!progress)
            return;
    }
}

void
Pipe::read(size_t maxlen, bfs::DataCb cb)
{
    if (maxlen == 0) {
        cb(0, std::make_shared<bfs::Buffer>());
        return;
    }
    if (!buf_.empty()) {
        size_t n = std::min(maxlen, buf_.size());
        auto out =
            std::make_shared<bfs::Buffer>(buf_.begin(), buf_.begin() + n);
        buf_.erase(buf_.begin(), buf_.begin() + n);
        bytesTransferred_ += n;
        cb(0, std::move(out));
        pump();
        return;
    }
    if (writerClosed_) {
        cb(0, std::make_shared<bfs::Buffer>()); // EOF
        return;
    }
    readWaiters_.push_back(ReadWaiter{maxlen, std::move(cb)});
}

void
Pipe::write(bfs::Buffer data, bfs::SizeCb cb)
{
    if (readerClosed_) {
        cb(EPIPE, 0);
        return;
    }
    if (writerClosed_) {
        cb(EBADF, 0);
        return;
    }
    size_t total = data.size();
    if (total == 0) {
        cb(0, 0);
        return;
    }
    size_t space = capacity_ > buf_.size() ? capacity_ - buf_.size() : 0;
    size_t n = std::min(space, total);
    buf_.insert(buf_.end(), data.begin(), data.begin() + n);
    if (n == total) {
        cb(0, total);
    } else {
        stalls_++;
        writeWaiters_.push_back(
            WriteWaiter{std::move(data), n, total, std::move(cb)});
    }
    pump();
}

void
Pipe::closeReader()
{
    if (readerClosed_)
        return;
    readerClosed_ = true;
    pump();
}

void
Pipe::closeWriter()
{
    if (writerClosed_)
        return;
    writerClosed_ = true;
    pump();
}

} // namespace kernel
} // namespace browsix
