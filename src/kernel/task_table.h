/**
 * @file
 * The kernel's process table, sharded by pid band.
 *
 * Pids come from a round-robin allocation cursor, so consecutive pids
 * land in consecutive bands: band = pid mod kBands. Lookup hashes within
 * a single band (O(1)); whole-table walks — pids(), signal broadcast,
 * kernel shutdown — go band by band through forEach and never assume one
 * ordered map, which is what lets the table grow to thousands of live
 * processes without the walkers dominating.
 */
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kernel/task.h"

namespace browsix {
namespace kernel {

class TaskTable
{
  public:
    static constexpr int kBands = 64; // power of two: band is a mask

    static int bandOf(int pid) { return pid & (kBands - 1); }

    Task *find(int pid) const;

    /**
     * Take ownership of t, keyed by t->pid. The pid allocator guarantees
     * uniqueness; a duplicate insert panics (it would mean a recycled
     * pid collided with a live task).
     */
    Task *insert(std::unique_ptr<Task> t);

    bool erase(int pid);

    size_t size() const { return size_; }

    /**
     * Lowest free pid in a band (pids ≡ band mod kBands, within
     * [1, max_pid]), or -1 when the band is full. Amortized O(1): each
     * band keeps a free-pid hint — every band pid below it is occupied —
     * that insert() advances lazily and erase() lowers, so allocation
     * under a nearly full table stops probing pids one at a time.
     * Returning a pid does NOT reserve it; the hint only advances once
     * the pid is insert()ed.
     */
    int lowestFreeInBand(int band, int max_pid);

    /** Test hook: the band's current free-pid hint. */
    int freeHint(int band) const { return freeHint_[band]; }

    /** Visit every task, band by band (order within a band is
     * unspecified). The visitor must not insert or erase. */
    template <typename Fn>
    void forEach(Fn &&fn)
    {
        for (auto &band : bands_)
            for (auto &[pid, t] : band)
                fn(*t);
    }

    /** Read-only visit: a const table hands out const Tasks. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const auto &band : bands_)
            for (const auto &[pid, t] : band)
                fn(static_cast<const Task &>(*t));
    }

    /** Every pid in the table, ascending (stable embedder-facing order). */
    std::vector<int> pids() const;

  private:
    /** Smallest pid a band can hold: pids are ≥ 1, so band 0's first
     * slot is kBands itself. */
    static int bandFloor(int band) { return band == 0 ? kBands : band; }

    std::array<std::unordered_map<int, std::unique_ptr<Task>>, kBands>
        bands_;
    /// Per-band free-pid hint: initialized lazily to the band floor (0
    /// means "not yet initialized"). Invariant: every pid of the band
    /// below the hint is occupied.
    std::array<int, kBands> freeHint_{};
    size_t size_ = 0;
};

} // namespace kernel
} // namespace browsix
