#include "kernel/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace browsix {
namespace kernel {

size_t
LatencyHistogram::bucketFor(uint64_t us)
{
    if (us == 0)
        return 0;
    // floor(log2(us)) + 1: us == 1 -> bucket 1, us in [2,3] -> bucket 2.
    auto b = static_cast<size_t>(64 - __builtin_clzll(us));
    return std::min(b, kBuckets - 1);
}

uint64_t
LatencyHistogram::bucketCeilingUs(size_t bucket)
{
    if (bucket == 0)
        return 0;
    return (uint64_t(1) << bucket) - 1;
}

void
LatencyHistogram::record(uint64_t us)
{
    buckets[bucketFor(us)]++;
    count++;
    sumUs += us;
    maxUs = std::max(maxUs, us);
}

uint64_t
LatencyHistogram::percentileUs(double p) const
{
    if (count == 0)
        return 0;
    auto target = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count)));
    target = std::max<uint64_t>(1, std::min(target, count));
    uint64_t cum = 0;
    for (size_t b = 0; b < kBuckets; b++) {
        cum += buckets[b];
        if (cum >= target)
            return std::min(bucketCeilingUs(b), maxUs);
    }
    return maxUs;
}

} // namespace kernel
} // namespace browsix
